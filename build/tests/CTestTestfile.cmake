# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ops_test "/root/repo/build/tests/ops_test")
set_tests_properties(ops_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autodiff_test "/root/repo/build/tests/autodiff_test")
set_tests_properties(autodiff_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(layers_test "/root/repo/build/tests/layers_test")
set_tests_properties(layers_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(io_test "/root/repo/build/tests/io_test")
set_tests_properties(io_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(models_test "/root/repo/build/tests/models_test")
set_tests_properties(models_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(webgl_test "/root/repo/build/tests/webgl_test")
set_tests_properties(webgl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(async_test "/root/repo/build/tests/async_test")
set_tests_properties(async_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rnn_test "/root/repo/build/tests/rnn_test")
set_tests_properties(rnn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;24;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline_test "/root/repo/build/tests/pipeline_test")
set_tests_properties(pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;26;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(misc_test "/root/repo/build/tests/misc_test")
set_tests_properties(misc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;28;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_executor_test "/root/repo/build/tests/graph_executor_test")
set_tests_properties(graph_executor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;30;tfjs_test;/root/repo/tests/CMakeLists.txt;0;")
