file(REMOVE_RECURSE
  "CMakeFiles/graph_executor_test.dir/graph_executor_test.cc.o"
  "CMakeFiles/graph_executor_test.dir/graph_executor_test.cc.o.d"
  "CMakeFiles/graph_executor_test.dir/test_main.cc.o"
  "CMakeFiles/graph_executor_test.dir/test_main.cc.o.d"
  "graph_executor_test"
  "graph_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
