
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/ops_test.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops_test.cc.o.d"
  "/root/repo/tests/test_main.cc" "tests/CMakeFiles/ops_test.dir/test_main.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/test_main.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/tfjs_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/tfjs_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/cpu/CMakeFiles/tfjs_backend_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/native/CMakeFiles/tfjs_backend_native.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/common/CMakeFiles/tfjs_backend_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfjs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
