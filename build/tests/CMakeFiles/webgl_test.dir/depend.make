# Empty dependencies file for webgl_test.
# This may be replaced when dependencies are built.
