file(REMOVE_RECURSE
  "CMakeFiles/webgl_test.dir/test_main.cc.o"
  "CMakeFiles/webgl_test.dir/test_main.cc.o.d"
  "CMakeFiles/webgl_test.dir/webgl_test.cc.o"
  "CMakeFiles/webgl_test.dir/webgl_test.cc.o.d"
  "webgl_test"
  "webgl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webgl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
