file(REMOVE_RECURSE
  "CMakeFiles/rnn_test.dir/rnn_test.cc.o"
  "CMakeFiles/rnn_test.dir/rnn_test.cc.o.d"
  "CMakeFiles/rnn_test.dir/test_main.cc.o"
  "CMakeFiles/rnn_test.dir/test_main.cc.o.d"
  "rnn_test"
  "rnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
