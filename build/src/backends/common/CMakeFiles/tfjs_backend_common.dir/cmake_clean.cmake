file(REMOVE_RECURSE
  "CMakeFiles/tfjs_backend_common.dir/ref_backend.cc.o"
  "CMakeFiles/tfjs_backend_common.dir/ref_backend.cc.o.d"
  "libtfjs_backend_common.a"
  "libtfjs_backend_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_backend_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
