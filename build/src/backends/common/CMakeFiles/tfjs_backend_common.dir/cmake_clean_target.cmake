file(REMOVE_RECURSE
  "libtfjs_backend_common.a"
)
