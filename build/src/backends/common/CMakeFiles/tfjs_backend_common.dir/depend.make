# Empty dependencies file for tfjs_backend_common.
# This may be replaced when dependencies are built.
