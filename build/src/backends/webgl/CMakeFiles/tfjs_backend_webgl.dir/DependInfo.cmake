
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/webgl/gpgpu_context.cc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/gpgpu_context.cc.o" "gcc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/gpgpu_context.cc.o.d"
  "/root/repo/src/backends/webgl/shader_compiler.cc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/shader_compiler.cc.o" "gcc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/shader_compiler.cc.o.d"
  "/root/repo/src/backends/webgl/tex_util.cc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/tex_util.cc.o" "gcc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/tex_util.cc.o.d"
  "/root/repo/src/backends/webgl/texture_manager.cc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/texture_manager.cc.o" "gcc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/texture_manager.cc.o.d"
  "/root/repo/src/backends/webgl/webgl_backend.cc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/webgl_backend.cc.o" "gcc" "src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/webgl_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backends/common/CMakeFiles/tfjs_backend_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfjs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
