file(REMOVE_RECURSE
  "CMakeFiles/tfjs_backend_webgl.dir/gpgpu_context.cc.o"
  "CMakeFiles/tfjs_backend_webgl.dir/gpgpu_context.cc.o.d"
  "CMakeFiles/tfjs_backend_webgl.dir/shader_compiler.cc.o"
  "CMakeFiles/tfjs_backend_webgl.dir/shader_compiler.cc.o.d"
  "CMakeFiles/tfjs_backend_webgl.dir/tex_util.cc.o"
  "CMakeFiles/tfjs_backend_webgl.dir/tex_util.cc.o.d"
  "CMakeFiles/tfjs_backend_webgl.dir/texture_manager.cc.o"
  "CMakeFiles/tfjs_backend_webgl.dir/texture_manager.cc.o.d"
  "CMakeFiles/tfjs_backend_webgl.dir/webgl_backend.cc.o"
  "CMakeFiles/tfjs_backend_webgl.dir/webgl_backend.cc.o.d"
  "libtfjs_backend_webgl.a"
  "libtfjs_backend_webgl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_backend_webgl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
