file(REMOVE_RECURSE
  "libtfjs_backend_webgl.a"
)
