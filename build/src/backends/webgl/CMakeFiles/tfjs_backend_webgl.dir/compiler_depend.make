# Empty compiler generated dependencies file for tfjs_backend_webgl.
# This may be replaced when dependencies are built.
