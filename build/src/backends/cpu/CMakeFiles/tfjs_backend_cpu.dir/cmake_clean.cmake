file(REMOVE_RECURSE
  "CMakeFiles/tfjs_backend_cpu.dir/cpu_backend.cc.o"
  "CMakeFiles/tfjs_backend_cpu.dir/cpu_backend.cc.o.d"
  "libtfjs_backend_cpu.a"
  "libtfjs_backend_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_backend_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
