file(REMOVE_RECURSE
  "libtfjs_backend_cpu.a"
)
