# Empty dependencies file for tfjs_backend_cpu.
# This may be replaced when dependencies are built.
