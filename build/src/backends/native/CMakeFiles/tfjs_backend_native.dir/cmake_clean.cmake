file(REMOVE_RECURSE
  "CMakeFiles/tfjs_backend_native.dir/native_backend.cc.o"
  "CMakeFiles/tfjs_backend_native.dir/native_backend.cc.o.d"
  "libtfjs_backend_native.a"
  "libtfjs_backend_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_backend_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
