
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/native/native_backend.cc" "src/backends/native/CMakeFiles/tfjs_backend_native.dir/native_backend.cc.o" "gcc" "src/backends/native/CMakeFiles/tfjs_backend_native.dir/native_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backends/common/CMakeFiles/tfjs_backend_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfjs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
