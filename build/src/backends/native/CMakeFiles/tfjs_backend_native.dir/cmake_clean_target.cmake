file(REMOVE_RECURSE
  "libtfjs_backend_native.a"
)
