# Empty compiler generated dependencies file for tfjs_backend_native.
# This may be replaced when dependencies are built.
