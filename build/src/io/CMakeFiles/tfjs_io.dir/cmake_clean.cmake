file(REMOVE_RECURSE
  "CMakeFiles/tfjs_io.dir/converter.cc.o"
  "CMakeFiles/tfjs_io.dir/converter.cc.o.d"
  "CMakeFiles/tfjs_io.dir/graph_executor.cc.o"
  "CMakeFiles/tfjs_io.dir/graph_executor.cc.o.d"
  "CMakeFiles/tfjs_io.dir/model_io.cc.o"
  "CMakeFiles/tfjs_io.dir/model_io.cc.o.d"
  "CMakeFiles/tfjs_io.dir/weights.cc.o"
  "CMakeFiles/tfjs_io.dir/weights.cc.o.d"
  "libtfjs_io.a"
  "libtfjs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
