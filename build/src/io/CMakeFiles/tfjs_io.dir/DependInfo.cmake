
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/converter.cc" "src/io/CMakeFiles/tfjs_io.dir/converter.cc.o" "gcc" "src/io/CMakeFiles/tfjs_io.dir/converter.cc.o.d"
  "/root/repo/src/io/graph_executor.cc" "src/io/CMakeFiles/tfjs_io.dir/graph_executor.cc.o" "gcc" "src/io/CMakeFiles/tfjs_io.dir/graph_executor.cc.o.d"
  "/root/repo/src/io/model_io.cc" "src/io/CMakeFiles/tfjs_io.dir/model_io.cc.o" "gcc" "src/io/CMakeFiles/tfjs_io.dir/model_io.cc.o.d"
  "/root/repo/src/io/weights.cc" "src/io/CMakeFiles/tfjs_io.dir/weights.cc.o" "gcc" "src/io/CMakeFiles/tfjs_io.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/tfjs_json.dir/DependInfo.cmake"
  "/root/repo/build/src/layers/CMakeFiles/tfjs_layers.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/tfjs_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tfjs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/tfjs_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfjs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
