file(REMOVE_RECURSE
  "libtfjs_io.a"
)
