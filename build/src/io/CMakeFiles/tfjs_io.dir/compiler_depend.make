# Empty compiler generated dependencies file for tfjs_io.
# This may be replaced when dependencies are built.
