file(REMOVE_RECURSE
  "CMakeFiles/tfjs_json.dir/json.cc.o"
  "CMakeFiles/tfjs_json.dir/json.cc.o.d"
  "libtfjs_json.a"
  "libtfjs_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
