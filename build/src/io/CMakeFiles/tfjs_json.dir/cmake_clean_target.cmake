file(REMOVE_RECURSE
  "libtfjs_json.a"
)
