# Empty dependencies file for tfjs_json.
# This may be replaced when dependencies are built.
