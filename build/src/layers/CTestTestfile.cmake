# CMake generated Testfile for 
# Source directory: /root/repo/src/layers
# Build directory: /root/repo/build/src/layers
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
