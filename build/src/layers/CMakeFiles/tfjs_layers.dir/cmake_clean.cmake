file(REMOVE_RECURSE
  "CMakeFiles/tfjs_layers.dir/conv_layers.cc.o"
  "CMakeFiles/tfjs_layers.dir/conv_layers.cc.o.d"
  "CMakeFiles/tfjs_layers.dir/core_layers.cc.o"
  "CMakeFiles/tfjs_layers.dir/core_layers.cc.o.d"
  "CMakeFiles/tfjs_layers.dir/initializers.cc.o"
  "CMakeFiles/tfjs_layers.dir/initializers.cc.o.d"
  "CMakeFiles/tfjs_layers.dir/layer.cc.o"
  "CMakeFiles/tfjs_layers.dir/layer.cc.o.d"
  "CMakeFiles/tfjs_layers.dir/losses.cc.o"
  "CMakeFiles/tfjs_layers.dir/losses.cc.o.d"
  "CMakeFiles/tfjs_layers.dir/rnn_layers.cc.o"
  "CMakeFiles/tfjs_layers.dir/rnn_layers.cc.o.d"
  "CMakeFiles/tfjs_layers.dir/sequential.cc.o"
  "CMakeFiles/tfjs_layers.dir/sequential.cc.o.d"
  "libtfjs_layers.a"
  "libtfjs_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
