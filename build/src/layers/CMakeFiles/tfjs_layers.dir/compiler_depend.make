# Empty compiler generated dependencies file for tfjs_layers.
# This may be replaced when dependencies are built.
