
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layers/conv_layers.cc" "src/layers/CMakeFiles/tfjs_layers.dir/conv_layers.cc.o" "gcc" "src/layers/CMakeFiles/tfjs_layers.dir/conv_layers.cc.o.d"
  "/root/repo/src/layers/core_layers.cc" "src/layers/CMakeFiles/tfjs_layers.dir/core_layers.cc.o" "gcc" "src/layers/CMakeFiles/tfjs_layers.dir/core_layers.cc.o.d"
  "/root/repo/src/layers/initializers.cc" "src/layers/CMakeFiles/tfjs_layers.dir/initializers.cc.o" "gcc" "src/layers/CMakeFiles/tfjs_layers.dir/initializers.cc.o.d"
  "/root/repo/src/layers/layer.cc" "src/layers/CMakeFiles/tfjs_layers.dir/layer.cc.o" "gcc" "src/layers/CMakeFiles/tfjs_layers.dir/layer.cc.o.d"
  "/root/repo/src/layers/losses.cc" "src/layers/CMakeFiles/tfjs_layers.dir/losses.cc.o" "gcc" "src/layers/CMakeFiles/tfjs_layers.dir/losses.cc.o.d"
  "/root/repo/src/layers/rnn_layers.cc" "src/layers/CMakeFiles/tfjs_layers.dir/rnn_layers.cc.o" "gcc" "src/layers/CMakeFiles/tfjs_layers.dir/rnn_layers.cc.o.d"
  "/root/repo/src/layers/sequential.cc" "src/layers/CMakeFiles/tfjs_layers.dir/sequential.cc.o" "gcc" "src/layers/CMakeFiles/tfjs_layers.dir/sequential.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/tfjs_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/tfjs_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/tfjs_json.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tfjs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfjs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
