file(REMOVE_RECURSE
  "libtfjs_layers.a"
)
