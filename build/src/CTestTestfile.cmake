# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("backends")
subdirs("ops")
subdirs("autodiff")
subdirs("layers")
subdirs("io")
subdirs("data")
subdirs("models")
