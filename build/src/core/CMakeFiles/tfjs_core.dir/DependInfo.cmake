
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conv_util.cc" "src/core/CMakeFiles/tfjs_core.dir/conv_util.cc.o" "gcc" "src/core/CMakeFiles/tfjs_core.dir/conv_util.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/tfjs_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/tfjs_core.dir/engine.cc.o.d"
  "/root/repo/src/core/event_loop.cc" "src/core/CMakeFiles/tfjs_core.dir/event_loop.cc.o" "gcc" "src/core/CMakeFiles/tfjs_core.dir/event_loop.cc.o.d"
  "/root/repo/src/core/random.cc" "src/core/CMakeFiles/tfjs_core.dir/random.cc.o" "gcc" "src/core/CMakeFiles/tfjs_core.dir/random.cc.o.d"
  "/root/repo/src/core/tensor.cc" "src/core/CMakeFiles/tfjs_core.dir/tensor.cc.o" "gcc" "src/core/CMakeFiles/tfjs_core.dir/tensor.cc.o.d"
  "/root/repo/src/core/util.cc" "src/core/CMakeFiles/tfjs_core.dir/util.cc.o" "gcc" "src/core/CMakeFiles/tfjs_core.dir/util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
