file(REMOVE_RECURSE
  "libtfjs_core.a"
)
