# Empty compiler generated dependencies file for tfjs_core.
# This may be replaced when dependencies are built.
