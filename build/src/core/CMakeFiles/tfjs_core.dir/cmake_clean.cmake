file(REMOVE_RECURSE
  "CMakeFiles/tfjs_core.dir/conv_util.cc.o"
  "CMakeFiles/tfjs_core.dir/conv_util.cc.o.d"
  "CMakeFiles/tfjs_core.dir/engine.cc.o"
  "CMakeFiles/tfjs_core.dir/engine.cc.o.d"
  "CMakeFiles/tfjs_core.dir/event_loop.cc.o"
  "CMakeFiles/tfjs_core.dir/event_loop.cc.o.d"
  "CMakeFiles/tfjs_core.dir/random.cc.o"
  "CMakeFiles/tfjs_core.dir/random.cc.o.d"
  "CMakeFiles/tfjs_core.dir/tensor.cc.o"
  "CMakeFiles/tfjs_core.dir/tensor.cc.o.d"
  "CMakeFiles/tfjs_core.dir/util.cc.o"
  "CMakeFiles/tfjs_core.dir/util.cc.o.d"
  "libtfjs_core.a"
  "libtfjs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
