file(REMOVE_RECURSE
  "CMakeFiles/tfjs_data.dir/pipeline.cc.o"
  "CMakeFiles/tfjs_data.dir/pipeline.cc.o.d"
  "CMakeFiles/tfjs_data.dir/synthetic.cc.o"
  "CMakeFiles/tfjs_data.dir/synthetic.cc.o.d"
  "libtfjs_data.a"
  "libtfjs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
