file(REMOVE_RECURSE
  "libtfjs_data.a"
)
