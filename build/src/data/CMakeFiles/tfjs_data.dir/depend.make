# Empty dependencies file for tfjs_data.
# This may be replaced when dependencies are built.
