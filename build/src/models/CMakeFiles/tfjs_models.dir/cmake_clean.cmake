file(REMOVE_RECURSE
  "CMakeFiles/tfjs_models.dir/mobilenet.cc.o"
  "CMakeFiles/tfjs_models.dir/mobilenet.cc.o.d"
  "CMakeFiles/tfjs_models.dir/posenet.cc.o"
  "CMakeFiles/tfjs_models.dir/posenet.cc.o.d"
  "libtfjs_models.a"
  "libtfjs_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
