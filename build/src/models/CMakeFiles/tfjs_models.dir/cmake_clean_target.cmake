file(REMOVE_RECURSE
  "libtfjs_models.a"
)
