# Empty compiler generated dependencies file for tfjs_models.
# This may be replaced when dependencies are built.
