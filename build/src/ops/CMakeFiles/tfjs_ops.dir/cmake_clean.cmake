file(REMOVE_RECURSE
  "CMakeFiles/tfjs_ops.dir/advanced.cc.o"
  "CMakeFiles/tfjs_ops.dir/advanced.cc.o.d"
  "CMakeFiles/tfjs_ops.dir/binary.cc.o"
  "CMakeFiles/tfjs_ops.dir/binary.cc.o.d"
  "CMakeFiles/tfjs_ops.dir/conv.cc.o"
  "CMakeFiles/tfjs_ops.dir/conv.cc.o.d"
  "CMakeFiles/tfjs_ops.dir/creation.cc.o"
  "CMakeFiles/tfjs_ops.dir/creation.cc.o.d"
  "CMakeFiles/tfjs_ops.dir/matmul.cc.o"
  "CMakeFiles/tfjs_ops.dir/matmul.cc.o.d"
  "CMakeFiles/tfjs_ops.dir/norm.cc.o"
  "CMakeFiles/tfjs_ops.dir/norm.cc.o.d"
  "CMakeFiles/tfjs_ops.dir/reduction.cc.o"
  "CMakeFiles/tfjs_ops.dir/reduction.cc.o.d"
  "CMakeFiles/tfjs_ops.dir/transform.cc.o"
  "CMakeFiles/tfjs_ops.dir/transform.cc.o.d"
  "CMakeFiles/tfjs_ops.dir/unary.cc.o"
  "CMakeFiles/tfjs_ops.dir/unary.cc.o.d"
  "libtfjs_ops.a"
  "libtfjs_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
