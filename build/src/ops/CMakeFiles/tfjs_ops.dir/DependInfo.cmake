
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/advanced.cc" "src/ops/CMakeFiles/tfjs_ops.dir/advanced.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/advanced.cc.o.d"
  "/root/repo/src/ops/binary.cc" "src/ops/CMakeFiles/tfjs_ops.dir/binary.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/binary.cc.o.d"
  "/root/repo/src/ops/conv.cc" "src/ops/CMakeFiles/tfjs_ops.dir/conv.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/conv.cc.o.d"
  "/root/repo/src/ops/creation.cc" "src/ops/CMakeFiles/tfjs_ops.dir/creation.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/creation.cc.o.d"
  "/root/repo/src/ops/matmul.cc" "src/ops/CMakeFiles/tfjs_ops.dir/matmul.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/matmul.cc.o.d"
  "/root/repo/src/ops/norm.cc" "src/ops/CMakeFiles/tfjs_ops.dir/norm.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/norm.cc.o.d"
  "/root/repo/src/ops/reduction.cc" "src/ops/CMakeFiles/tfjs_ops.dir/reduction.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/reduction.cc.o.d"
  "/root/repo/src/ops/transform.cc" "src/ops/CMakeFiles/tfjs_ops.dir/transform.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/transform.cc.o.d"
  "/root/repo/src/ops/unary.cc" "src/ops/CMakeFiles/tfjs_ops.dir/unary.cc.o" "gcc" "src/ops/CMakeFiles/tfjs_ops.dir/unary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tfjs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
