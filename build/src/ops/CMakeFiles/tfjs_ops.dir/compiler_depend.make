# Empty compiler generated dependencies file for tfjs_ops.
# This may be replaced when dependencies are built.
