file(REMOVE_RECURSE
  "libtfjs_ops.a"
)
