file(REMOVE_RECURSE
  "libtfjs_autodiff.a"
)
