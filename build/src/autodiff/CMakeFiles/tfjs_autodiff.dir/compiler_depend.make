# Empty compiler generated dependencies file for tfjs_autodiff.
# This may be replaced when dependencies are built.
