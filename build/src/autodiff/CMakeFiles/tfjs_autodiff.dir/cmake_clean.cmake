file(REMOVE_RECURSE
  "CMakeFiles/tfjs_autodiff.dir/optimizers.cc.o"
  "CMakeFiles/tfjs_autodiff.dir/optimizers.cc.o.d"
  "CMakeFiles/tfjs_autodiff.dir/tape.cc.o"
  "CMakeFiles/tfjs_autodiff.dir/tape.cc.o.d"
  "libtfjs_autodiff.a"
  "libtfjs_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfjs_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
