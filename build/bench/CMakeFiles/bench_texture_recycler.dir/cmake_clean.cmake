file(REMOVE_RECURSE
  "CMakeFiles/bench_texture_recycler.dir/bench_texture_recycler.cpp.o"
  "CMakeFiles/bench_texture_recycler.dir/bench_texture_recycler.cpp.o.d"
  "bench_texture_recycler"
  "bench_texture_recycler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_texture_recycler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
