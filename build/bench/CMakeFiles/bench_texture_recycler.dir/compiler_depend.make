# Empty compiler generated dependencies file for bench_texture_recycler.
# This may be replaced when dependencies are built.
