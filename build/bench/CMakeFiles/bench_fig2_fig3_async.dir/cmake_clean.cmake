file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fig3_async.dir/bench_fig2_fig3_async.cpp.o"
  "CMakeFiles/bench_fig2_fig3_async.dir/bench_fig2_fig3_async.cpp.o.d"
  "bench_fig2_fig3_async"
  "bench_fig2_fig3_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fig3_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
