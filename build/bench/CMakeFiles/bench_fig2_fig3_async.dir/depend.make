# Empty dependencies file for bench_fig2_fig3_async.
# This may be replaced when dependencies are built.
