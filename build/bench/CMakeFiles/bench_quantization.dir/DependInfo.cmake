
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_quantization.cpp" "bench/CMakeFiles/bench_quantization.dir/bench_quantization.cpp.o" "gcc" "bench/CMakeFiles/bench_quantization.dir/bench_quantization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/tfjs_models.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/tfjs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/layers/CMakeFiles/tfjs_layers.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tfjs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/tfjs_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/tfjs_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/cpu/CMakeFiles/tfjs_backend_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/native/CMakeFiles/tfjs_backend_native.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/webgl/CMakeFiles/tfjs_backend_webgl.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/tfjs_json.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/common/CMakeFiles/tfjs_backend_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfjs_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
