file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_elementwise.dir/bench_fig4_elementwise.cpp.o"
  "CMakeFiles/bench_fig4_elementwise.dir/bench_fig4_elementwise.cpp.o.d"
  "bench_fig4_elementwise"
  "bench_fig4_elementwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_elementwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
