# Empty dependencies file for bench_fig4_elementwise.
# This may be replaced when dependencies are built.
