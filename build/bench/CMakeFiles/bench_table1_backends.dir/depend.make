# Empty dependencies file for bench_table1_backends.
# This may be replaced when dependencies are built.
