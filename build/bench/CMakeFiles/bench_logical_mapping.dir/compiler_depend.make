# Empty compiler generated dependencies file for bench_logical_mapping.
# This may be replaced when dependencies are built.
