file(REMOVE_RECURSE
  "CMakeFiles/bench_logical_mapping.dir/bench_logical_mapping.cpp.o"
  "CMakeFiles/bench_logical_mapping.dir/bench_logical_mapping.cpp.o.d"
  "bench_logical_mapping"
  "bench_logical_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logical_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
