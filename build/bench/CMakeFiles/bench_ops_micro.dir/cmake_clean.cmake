file(REMOVE_RECURSE
  "CMakeFiles/bench_ops_micro.dir/bench_ops_micro.cpp.o"
  "CMakeFiles/bench_ops_micro.dir/bench_ops_micro.cpp.o.d"
  "bench_ops_micro"
  "bench_ops_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ops_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
