# Empty compiler generated dependencies file for bench_ops_micro.
# This may be replaced when dependencies are built.
