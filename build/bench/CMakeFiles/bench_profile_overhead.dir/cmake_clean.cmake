file(REMOVE_RECURSE
  "CMakeFiles/bench_profile_overhead.dir/bench_profile_overhead.cpp.o"
  "CMakeFiles/bench_profile_overhead.dir/bench_profile_overhead.cpp.o.d"
  "bench_profile_overhead"
  "bench_profile_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profile_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
