file(REMOVE_RECURSE
  "CMakeFiles/mnist_train.dir/mnist_train.cpp.o"
  "CMakeFiles/mnist_train.dir/mnist_train.cpp.o.d"
  "mnist_train"
  "mnist_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
