# Empty compiler generated dependencies file for mnist_train.
# This may be replaced when dependencies are built.
