# Empty compiler generated dependencies file for sequence_rnn.
# This may be replaced when dependencies are built.
