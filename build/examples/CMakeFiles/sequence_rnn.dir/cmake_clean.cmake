file(REMOVE_RECURSE
  "CMakeFiles/sequence_rnn.dir/sequence_rnn.cpp.o"
  "CMakeFiles/sequence_rnn.dir/sequence_rnn.cpp.o.d"
  "sequence_rnn"
  "sequence_rnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
