file(REMOVE_RECURSE
  "CMakeFiles/convert_model.dir/convert_model.cpp.o"
  "CMakeFiles/convert_model.dir/convert_model.cpp.o.d"
  "convert_model"
  "convert_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
