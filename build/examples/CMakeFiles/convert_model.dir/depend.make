# Empty dependencies file for convert_model.
# This may be replaced when dependencies are built.
