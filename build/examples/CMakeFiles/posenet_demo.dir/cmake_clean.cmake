file(REMOVE_RECURSE
  "CMakeFiles/posenet_demo.dir/posenet_demo.cpp.o"
  "CMakeFiles/posenet_demo.dir/posenet_demo.cpp.o.d"
  "posenet_demo"
  "posenet_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posenet_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
