# Empty compiler generated dependencies file for posenet_demo.
# This may be replaced when dependencies are built.
