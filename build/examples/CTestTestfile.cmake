# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_posenet_demo "/root/repo/build/examples/posenet_demo")
set_tests_properties(example_posenet_demo PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mnist_train "/root/repo/build/examples/mnist_train")
set_tests_properties(example_mnist_train PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transfer_learning "/root/repo/build/examples/transfer_learning")
set_tests_properties(example_transfer_learning PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sequence_rnn "/root/repo/build/examples/sequence_rnn")
set_tests_properties(example_sequence_rnn PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_convert_model "/root/repo/build/examples/convert_model")
set_tests_properties(example_convert_model PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_backend_tour "/root/repo/build/examples/backend_tour")
set_tests_properties(example_backend_tour PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
