#!/usr/bin/env bash
# Full local CI: the tier-1 build + test cycle (ROADMAP.md), then the
# sanitizer legs (tools/run_tsan.sh: TSan, ASan, UBSan over the
# threading/memory/int8-sensitive subset plus the graph differential
# fuzzer). Mirrors what a hosted pipeline would run; each stage fails the
# script on first error.
#
# Usage: tools/ci.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build =="
cmake -B build -S .
cmake --build build -j

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== sanitizer legs =="
tools/run_tsan.sh

echo "== CI green =="
