#!/usr/bin/env bash
# Full local CI: the tier-1 build + test cycle (ROADMAP.md), then the
# sanitizer legs (tools/run_tsan.sh: TSan, ASan, UBSan over the
# threading/memory/int8-sensitive subset plus the graph differential
# fuzzer, each followed by a fixed-seed extended fuzzer block). Mirrors
# what a hosted pipeline would run; each stage fails the script on first
# error.
#
# Usage: tools/ci.sh [--smoke]   (from the repo root)
#   --smoke   additionally run the graph-exec bench gates at reduced
#             timing repeats (bench_graph_exec --smoke): MobileNet >=1.2x,
#             elementwise chain >=1.5x fused vs unfused, zero plan
#             re-instantiations across a batch-size sweep — all at
#             bit-identical outputs. Wall-clock thresholds on a loaded CI
#             box are noisy; the bit-identical and zero-recompile gates
#             are the stable part.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S .
cmake --build build -j

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [ "$smoke" = 1 ]; then
  echo "== bench gates (smoke) =="
  cmake --build build -j --target bench_graph_exec
  ./build/bench/bench_graph_exec --smoke
fi

echo "== sanitizer legs =="
tools/run_tsan.sh

echo "== CI green =="
