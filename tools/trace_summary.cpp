// trace_summary: aggregates a chrome://tracing JSON file produced by
// tfjs::trace::TraceExporter (or any TFJS_TRACE=<file> run) into a per-event
// table: count, total/mean wall time and share of traced time, grouped by
// (category, name). Also prints the metrics snapshot embedded under
// otherData.metrics and the dropped-event count.
//
// Usage:  trace_summary <trace.json>
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/io/json.h"

namespace {

struct Agg {
  std::size_t count = 0;
  double totalUs = 0;
  double maxUs = 0;
};

void printMetricsObject(const tfjs::io::Json& metrics) {
  if (metrics.has("counters")) {
    for (const auto& [name, value] : metrics.at("counters").asObject()) {
      std::printf("  counter    %-28s %12.0f\n", name.c_str(),
                  value.asDouble());
    }
  }
  if (metrics.has("gauges")) {
    for (const auto& [name, value] : metrics.at("gauges").asObject()) {
      std::printf("  gauge      %-28s %12.0f\n", name.c_str(),
                  value.asDouble());
    }
  }
  if (metrics.has("histograms")) {
    for (const auto& [name, h] : metrics.at("histograms").asObject()) {
      std::printf("  histogram  %-28s count=%-8.0f mean=%.4f ms\n",
                  name.c_str(), h.at("count").asDouble(),
                  h.has("mean") ? h.at("mean").asDouble() : 0.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 2;
  }
  std::ifstream f(argv[1]);
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << f.rdbuf();

  tfjs::io::Json doc;
  try {
    doc = tfjs::io::Json::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s is not valid JSON: %s\n", argv[1],
                 e.what());
    return 1;
  }
  if (!doc.has("traceEvents")) {
    std::fprintf(stderr, "error: %s has no traceEvents array\n", argv[1]);
    return 1;
  }

  // key = "category/name"; spans aggregate duration, instants/counters count.
  std::map<std::string, Agg> spans;
  std::map<std::string, Agg> others;
  double spanTotalUs = 0;
  std::size_t numEvents = 0;
  for (const auto& e : doc.at("traceEvents").asArray()) {
    if (!e.isObject() || !e.has("ph") || !e.has("name")) continue;
    ++numEvents;
    const std::string cat = e.has("cat") ? e.at("cat").asString() : "?";
    const std::string key = cat + "/" + e.at("name").asString();
    const std::string& ph = e.at("ph").asString();
    if (ph == "X") {
      const double durUs = e.has("dur") ? e.at("dur").asDouble() : 0;
      Agg& a = spans[key];
      ++a.count;
      a.totalUs += durUs;
      a.maxUs = std::max(a.maxUs, durUs);
      spanTotalUs += durUs;
    } else {
      ++others[key].count;
    }
  }

  std::printf("%s: %zu events\n\n", argv[1], numEvents);

  // Spans, heaviest first.
  std::vector<std::pair<std::string, Agg>> rows(spans.begin(), spans.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.totalUs > b.second.totalUs;
  });
  std::printf("%-36s %8s %12s %10s %10s %7s\n", "span (cat/name)", "count",
              "total ms", "mean ms", "max ms", "share");
  for (const auto& [key, a] : rows) {
    std::printf("%-36s %8zu %12.3f %10.4f %10.4f %6.1f%%\n", key.c_str(),
                a.count, a.totalUs / 1000.0,
                a.totalUs / 1000.0 / static_cast<double>(a.count),
                a.maxUs / 1000.0,
                spanTotalUs > 0 ? 100.0 * a.totalUs / spanTotalUs : 0.0);
  }

  if (!others.empty()) {
    std::printf("\n%-36s %8s\n", "instants / counters", "count");
    for (const auto& [key, a] : others) {
      std::printf("%-36s %8zu\n", key.c_str(), a.count);
    }
  }

  // Elementwise-fusion attribution: how long the fuse_elementwise pass ran
  // at capture time, and what share of replay op time went through fused
  // regions (op/fusedRegion = the executor's single-loop replay span;
  // kernel/native.fusedRegion etc. appear in the main table per backend).
  {
    double opTotalUs = 0;
    double regionUs = 0;
    std::size_t regionCount = 0;
    for (const auto& [key, a] : spans) {
      if (key.rfind("op/", 0) == 0) opTotalUs += a.totalUs;
      if (key == "op/fusedRegion") {
        regionUs = a.totalUs;
        regionCount = a.count;
      }
    }
    const auto pass = spans.find("graph/fuse_elementwise");
    if (pass != spans.end() || regionCount > 0) {
      std::printf("\nelementwise fusion:\n");
      if (pass != spans.end()) {
        std::printf("  pass graph/fuse_elementwise         %8zu x %10.4f ms\n",
                    pass->second.count,
                    pass->second.totalUs / 1000.0 /
                        static_cast<double>(pass->second.count));
      }
      if (regionCount > 0) {
        std::printf(
            "  fused-region replays                %8zu   %10.3f ms"
            " (%.1f%% of op time)\n",
            regionCount, regionUs / 1000.0,
            opTotalUs > 0 ? 100.0 * regionUs / opTotalUs : 0.0);
      }
      // Region shape from the embedded metrics snapshot, when present.
      if (doc.has("otherData") && doc.at("otherData").has("metrics") &&
          doc.at("otherData").at("metrics").has("counters")) {
        const auto& c = doc.at("otherData").at("metrics").at("counters");
        const auto get = [&](const char* name) {
          return c.has(name) ? c.at(name).asDouble() : 0.0;
        };
        const double regions = get("graph.fused_regions");
        if (regions > 0) {
          std::printf(
              "  regions formed %.0f (avg %.1f ops each); plan compiles"
              " %.0f; arena evictions %.0f\n",
              regions, get("graph.region_ops") / regions,
              get("graph.plan_compiles"), get("pool.arena_evictions"));
        }
      }
    }
  }

  if (doc.has("otherData")) {
    const auto& other = doc.at("otherData");
    if (other.has("dropped") && other.at("dropped").asDouble() > 0) {
      std::printf("\ndropped events (ring overflow): %.0f\n",
                  other.at("dropped").asDouble());
    }
    if (other.has("metrics")) {
      std::printf("\nmetrics snapshot:\n");
      printMetricsObject(other.at("metrics"));
    }
  }
  return 0;
}
