#!/usr/bin/env bash
# Builds the threading-sensitive tests under ThreadSanitizer and runs them,
# then repeats the memory-sensitive subset under AddressSanitizer (the
# buffer pool hands raw storage between tensors, in-place ops and backend
# scratch buffers — exactly where lifetime bugs would hide), and finally the
# int8 kernels under UndefinedBehaviorSanitizer (narrowing conversions,
# shifts and overflow in the quantization math).
# async_test covers the multi-producer EventLoop::postTask path,
# serving_test the whole client-threads/scheduler-thread serving stack, and
# quant_test the quantized kernels whose packed-weight cache is shared
# across serving sessions (a fresh race surface). graph_fuzz_test runs on
# every leg: the differential fuzzer's random DAGs reach the capture
# recorder, every optimization pass (elementwise region fusion included),
# the arena allocator, and the replay path on all three CPU backends — the
# widest single net over the graph subsystem. After each leg's ctest, an
# extended fixed-seed fuzzer block replays the same seed set on that leg
# (both fuzz modes — general DAGs and elementwise-chain-heavy), so any
# divergence or sanitizer report reproduces bit-for-bit on every leg.
# Uses separate build trees (build-tsan/, build-asan/, build-ubsan/) so the
# regular build is untouched.
#
# Usage: tools/run_tsan.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

# Fixed seeds beyond the in-test corpus (1..kNumSeeds); identical on every
# leg. TFJS_GRAPH_FUZZ_SEED=<n> switches both fuzz tests to single-seed
# replay, so each invocation runs one general case and one elementwise case.
extended_fuzz() {
  local build_dir="$1"
  echo "== extended fixed-seed fuzzer block ($build_dir) =="
  local seed
  for seed in 1001 1007 1013 1019 1025 1031; do
    TFJS_GRAPH_FUZZ_SEED="$seed" "$build_dir/tests/graph_fuzz_test"
  done
}

cmake -B build-tsan -S . -DTFJS_SANITIZE=thread
cmake --build build-tsan -j --target thread_pool_test native_parity_test \
  quant_test trace_test buffer_pool_test async_test serving_test \
  graph_fuzz_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'thread_pool_test|native_parity_test|quant_test|trace_test|buffer_pool_test|async_test|serving_test|graph_fuzz_test'
extended_fuzz build-tsan

cmake -B build-asan -S . -DTFJS_SANITIZE=address
cmake --build build-asan -j --target buffer_pool_test fusion_test \
  quant_test serving_test graph_fuzz_test
ctest --test-dir build-asan --output-on-failure \
  -R 'buffer_pool_test|fusion_test|quant_test|serving_test|graph_fuzz_test'
extended_fuzz build-asan

cmake -B build-ubsan -S . -DTFJS_SANITIZE=undefined
cmake --build build-ubsan -j --target quant_test native_parity_test \
  serving_test graph_fuzz_test
ctest --test-dir build-ubsan --output-on-failure \
  -R 'quant_test|native_parity_test|serving_test|graph_fuzz_test'
extended_fuzz build-ubsan
