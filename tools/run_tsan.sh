#!/usr/bin/env bash
# Builds the threading-sensitive tests under ThreadSanitizer and runs them.
# Uses a separate build tree (build-tsan/) so the regular build is untouched.
#
# Usage: tools/run_tsan.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DTFJS_SANITIZE=thread
cmake --build build-tsan -j --target thread_pool_test native_parity_test \
  trace_test
cd build-tsan
ctest --output-on-failure -R 'thread_pool_test|native_parity_test|trace_test'
