#!/usr/bin/env bash
# Builds the threading-sensitive tests under ThreadSanitizer and runs them,
# then repeats the memory-sensitive subset under AddressSanitizer (the
# buffer pool hands raw storage between tensors, in-place ops and backend
# scratch buffers — exactly where lifetime bugs would hide), and finally the
# int8 kernels under UndefinedBehaviorSanitizer (narrowing conversions,
# shifts and overflow in the quantization math).
# async_test covers the multi-producer EventLoop::postTask path,
# serving_test the whole client-threads/scheduler-thread serving stack, and
# quant_test the quantized kernels whose packed-weight cache is shared
# across serving sessions (a fresh race surface). graph_fuzz_test runs on
# every leg: the differential fuzzer's random DAGs reach the capture
# recorder, every optimization pass, the arena allocator, and the replay
# path on all three CPU backends — the widest single net over the graph
# subsystem.
# Uses separate build trees (build-tsan/, build-asan/, build-ubsan/) so the
# regular build is untouched.
#
# Usage: tools/run_tsan.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DTFJS_SANITIZE=thread
cmake --build build-tsan -j --target thread_pool_test native_parity_test \
  quant_test trace_test buffer_pool_test async_test serving_test \
  graph_fuzz_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'thread_pool_test|native_parity_test|quant_test|trace_test|buffer_pool_test|async_test|serving_test|graph_fuzz_test'

cmake -B build-asan -S . -DTFJS_SANITIZE=address
cmake --build build-asan -j --target buffer_pool_test fusion_test \
  quant_test serving_test graph_fuzz_test
ctest --test-dir build-asan --output-on-failure \
  -R 'buffer_pool_test|fusion_test|quant_test|serving_test|graph_fuzz_test'

cmake -B build-ubsan -S . -DTFJS_SANITIZE=undefined
cmake --build build-ubsan -j --target quant_test native_parity_test \
  serving_test graph_fuzz_test
ctest --test-dir build-ubsan --output-on-failure \
  -R 'quant_test|native_parity_test|serving_test|graph_fuzz_test'
