// Internal plumbing shared by the op implementations: kernel dispatch,
// profiler/debug notification, and gradient-tape recording.
#pragma once

#include <initializer_list>
#include <vector>

#include "core/engine.h"
#include "ops/ops.h"

namespace tfjs::ops::internal {

inline Engine& E() { return Engine::get(); }

/// Wraps a kernel-produced buffer in a tracked tensor and notifies the
/// engine (profiler records / debug-mode NaN check, paper section 3.8).
inline Tensor wrapOutput(const char* name, DataId id, const Shape& shape,
                         DType dtype) {
  Tensor t = E().makeTensorFromDataId(id, shape, dtype);
  E().onKernelDispatched(name, t);
  return t;
}

/// Records a pullback onto the active tape when gradients are being traced
/// through any of the inputs.
inline void record(const char* name, std::initializer_list<Tensor> inputs,
                   const Tensor& output, GradFunc grad) {
  TapeRecorder* tape = E().tape();
  if (tape == nullptr) return;
  std::vector<Tensor> ins(inputs);
  if (!tape->watched(ins)) return;
  tape->record(name, ins, output, std::move(grad));
}

/// Sums `dy` over the axes that broadcasting expanded, then reshapes to
/// `target` — the standard gradient adjoint of implicit broadcasting.
Tensor reduceGradTo(const Tensor& dy, const Shape& target);

/// RAII tape suspension for ops that are internally composite: the helper
/// steps are not recorded; the public op records one composite gradient.
class TapePause {
 public:
  TapePause() : saved_(E().tape()) { E().setTape(nullptr); }
  ~TapePause() { E().setTape(saved_); }
  TapePause(const TapePause&) = delete;
  TapePause& operator=(const TapePause&) = delete;

 private:
  TapeRecorder* saved_;
};

}  // namespace tfjs::ops::internal
