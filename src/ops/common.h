// Internal plumbing shared by the op implementations: kernel dispatch,
// profiler/debug notification, and gradient-tape recording.
#pragma once

#include <initializer_list>
#include <vector>

#include "core/engine.h"
#include "core/trace.h"
#include "ops/op_id.h"
#include "ops/ops.h"

namespace tfjs::ops::internal {

inline Engine& E() { return Engine::get(); }

// ---- graph-capture recording (src/graph) ---------------------------------
//
// Public ops report themselves to the engine's OpObserver so capture(fn)
// can rebuild the dispatch sequence as IR. Composite ops (softmax, the
// fused fallbacks, batchNorm's pieces...) must record as ONE node, not as
// their internals, so every recording site opens a CaptureFrame: only
// depth-1 events (the outermost public op on this thread) reach the
// observer; nested dispatches are suppressed.

/// Depth of public-op nesting on this thread. 0 = user code.
inline thread_local int captureDepth = 0;

/// RAII nesting marker opened by every observed public op. Placed AFTER an
/// op's delegation branches (e.g. matMul routing int8 weights to
/// quantizedMatMul) so the delegate records itself as the node.
class CaptureFrame {
 public:
  CaptureFrame() { ++captureDepth; }
  ~CaptureFrame() { --captureDepth; }
  CaptureFrame(const CaptureFrame&) = delete;
  CaptureFrame& operator=(const CaptureFrame&) = delete;
};

/// True when the outermost public op should report to a capture observer.
inline bool observing() {
  return captureDepth == 1 && E().opObserver() != nullptr;
}

/// Reports one op-level dispatch to the active observer. Call while holding
/// this op's CaptureFrame, after the output tensor exists.
inline void observeOp(OpId id, std::initializer_list<Tensor> inputs,
                      const Tensor& output,
                      std::initializer_list<double> attrs = {},
                      const Shape* shapeAttr = nullptr) {
  if (!observing()) return;
  std::vector<Tensor> ins(inputs);
  std::vector<double> at(attrs);
  E().opObserver()->onOp(static_cast<int>(id), ins, output, at, shapeAttr);
}

/// Span overloads for variadic inputs (concat) / computed attrs.
inline void observeOp(OpId id, std::span<const Tensor> inputs,
                      const Tensor& output, std::span<const double> attrs,
                      const Shape* shapeAttr = nullptr) {
  if (!observing()) return;
  E().opObserver()->onOp(static_cast<int>(id), inputs, output, attrs,
                         shapeAttr);
}
inline void observeOp(OpId id, std::initializer_list<Tensor> inputs,
                      const Tensor& output, std::span<const double> attrs,
                      const Shape* shapeAttr = nullptr) {
  if (!observing()) return;
  std::vector<Tensor> ins(inputs);
  E().opObserver()->onOp(static_cast<int>(id), ins, output, attrs, shapeAttr);
}

/// Per-dispatch instrumentation scope: construct before calling into the
/// backend, then wrap() the kernel-produced buffer. The scope captures a
/// start timestamp (only when tracing is active — otherwise it is a single
/// relaxed atomic load) so Engine::notifyKernel can emit an "op" span
/// covering input preparation + backend dispatch.
///
///   KernelScope k("transpose");
///   const DataId id = E().backend().transpose(...);
///   return k.wrap(id, outShape, x.dtype());
///
/// Composite ops that build their output from sub-ops use notify(y) instead
/// of wrap(); the sub-ops' own spans are recorded too, so profile() reports
/// both the composite and its pieces (matching the upstream profiler).
class KernelScope {
 public:
  explicit KernelScope(const char* name)
      : name_(name), startUs_(trace::active() ? trace::nowUs() : -1) {
    // A kernel firing outside any CaptureFrame while a capture observer is
    // installed has no op-level recording: the capture layer fails loudly
    // (uninstrumented op) instead of silently folding the output into a
    // constant. Creation kernels with no tensor inputs are exempt — a
    // constant is exactly what they are.
    if (captureDepth == 0) {
      if (OpObserver* obs = E().opObserver()) obs->onUnrecordedKernel(name);
    }
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  /// Wraps a kernel-produced buffer in a tracked tensor and notifies the
  /// engine (trace span, metrics, debug-mode NaN check — section 3.8).
  Tensor wrap(DataId id, const Shape& shape, DType dtype) {
    Tensor t = E().makeTensorFromDataId(id, shape, dtype);
    notify(t);
    return t;
  }

  /// Notifies the engine for an already-wrapped output (multi-output and
  /// composite kernels). Restarts the clock so a second output gets its own
  /// span instead of double-counting the first.
  void notify(const Tensor& t) {
    E().notifyKernel(name_, t, startUs_);
    if (startUs_ >= 0) startUs_ = trace::nowUs();
  }

 private:
  const char* name_;
  double startUs_;
};

/// Records a pullback onto the active tape when gradients are being traced
/// through any of the inputs.
inline void record(const char* name, std::initializer_list<Tensor> inputs,
                   const Tensor& output, GradFunc grad) {
  TapeRecorder* tape = E().tape();
  if (tape == nullptr) return;
  std::vector<Tensor> ins(inputs);
  if (!tape->watched(ins)) return;
  tape->record(name, ins, output, std::move(grad));
}

/// Sums `dy` over the axes that broadcasting expanded, then reshapes to
/// `target` — the standard gradient adjoint of implicit broadcasting.
Tensor reduceGradTo(const Tensor& dy, const Shape& target);

/// RAII tape suspension for ops that are internally composite: the helper
/// steps are not recorded; the public op records one composite gradient.
class TapePause {
 public:
  TapePause() : saved_(E().tape()) { E().setTape(nullptr); }
  ~TapePause() { E().setTape(saved_); }
  TapePause(const TapePause&) = delete;
  TapePause& operator=(const TapePause&) = delete;

 private:
  TapeRecorder* saved_;
};

}  // namespace tfjs::ops::internal
