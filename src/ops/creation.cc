#include <cmath>

#include "core/random.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;

Tensor tensor(std::span<const float> values, const Shape& shape, DType dtype) {
  return E().makeTensorFromHost(values, shape, dtype);
}

Tensor tensor(std::initializer_list<float> values, const Shape& shape,
              DType dtype) {
  return tensor(std::span<const float>(values.begin(), values.size()), shape,
                dtype);
}

Tensor tensor1d(std::span<const float> values, DType dtype) {
  return tensor(values, Shape{static_cast<int>(values.size())}, dtype);
}

Tensor tensor1d(std::initializer_list<float> values, DType dtype) {
  return tensor1d(std::span<const float>(values.begin(), values.size()),
                  dtype);
}

Tensor tensor2d(std::span<const float> values, int rows, int cols,
                DType dtype) {
  return tensor(values, Shape{rows, cols}, dtype);
}

Tensor tensor2d(std::initializer_list<float> values, int rows, int cols,
                DType dtype) {
  return tensor2d(std::span<const float>(values.begin(), values.size()), rows,
                  cols, dtype);
}

Tensor scalar(float value, DType dtype) {
  return tensor(std::span<const float>(&value, 1), Shape{}, dtype);
}

Tensor fill(const Shape& shape, float value, DType dtype) {
  internal::KernelScope k("fill");
  const DataId id = E().backend().fill(shape.size(), value);
  return k.wrap(id, shape, dtype);
}

Tensor zeros(const Shape& shape, DType dtype) { return fill(shape, 0, dtype); }
Tensor ones(const Shape& shape, DType dtype) { return fill(shape, 1, dtype); }

Tensor zerosLike(const Tensor& t) { return zeros(t.shape(), t.dtype()); }
Tensor onesLike(const Tensor& t) { return ones(t.shape(), t.dtype()); }

Tensor eye(int n) {
  TFJS_ARG_CHECK(n > 0, "eye requires n > 0");
  std::vector<float> v(static_cast<std::size_t>(n) * n, 0.f);
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i) * n + i] = 1.f;
  return tensor(v, Shape{n, n});
}

Tensor range(float start, float stop, float step, DType dtype) {
  TFJS_ARG_CHECK(step != 0, "range step must be non-zero");
  std::vector<float> v;
  if (step > 0) {
    for (float x = start; x < stop; x += step) v.push_back(x);
  } else {
    for (float x = start; x > stop; x += step) v.push_back(x);
  }
  return tensor1d(v, dtype);
}

Tensor linspace(float start, float stop, int num) {
  TFJS_ARG_CHECK(num > 0, "linspace requires num > 0");
  std::vector<float> v(static_cast<std::size_t>(num));
  const float step = num == 1 ? 0 : (stop - start) / static_cast<float>(num - 1);
  for (int i = 0; i < num; ++i) v[static_cast<std::size_t>(i)] = start + step * i;
  return tensor1d(v);
}

Tensor randomNormal(const Shape& shape, float mean, float stddev,
                    std::uint64_t seed) {
  Random rng(seed);
  return tensor(rng.normalVector(shape.size(), mean, stddev), shape);
}

Tensor randomUniform(const Shape& shape, float lo, float hi,
                     std::uint64_t seed) {
  Random rng(seed);
  return tensor(rng.uniformVector(shape.size(), lo, hi), shape);
}

}  // namespace tfjs::ops
