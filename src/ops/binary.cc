// Element-wise binary ops with NumPy-style broadcasting, plus their
// gradients (adjoint of broadcasting = sum over the expanded axes).
#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;
using internal::reduceGradTo;

namespace {

/// Dispatches a binary kernel with broadcasting; outDtype defaults to the
/// promoted input dtype.
Tensor dispatch(const char* name, BinaryOp op, const Tensor& a,
                const Tensor& b, DType outDtype) {
  internal::CaptureFrame frame;
  internal::KernelScope k(name);
  const TensorSpec sa = E().prepareInput(a);
  const TensorSpec sb = E().prepareInput(b);
  const Shape out = util::broadcastShapes(sa.shape, sb.shape);
  const DataId id = E().backend().binary(op, sa, sb, out);
  Tensor y = k.wrap(id, out, outDtype);
  internal::observeOp(OpId::kBinary, {a, b}, y,
                      {static_cast<double>(op),
                       static_cast<double>(outDtype)});
  return y;
}

Tensor dispatchNum(const char* name, BinaryOp op, const Tensor& a,
                   const Tensor& b) {
  return dispatch(name, op, a, b, promoteTypes(a.dtype(), b.dtype()));
}

Tensor dispatchBool(const char* name, BinaryOp op, const Tensor& a,
                    const Tensor& b) {
  return dispatch(name, op, a, b, DType::b8);
}

/// Gradient mask helper: dy * (bool mask as float).
Tensor maskedGrad(const Tensor& dy, const Tensor& mask, const Shape& target) {
  return reduceGradTo(mul(dy, cast(mask, DType::f32)), target);
}

/// In-place fast path for a move-consumed first operand; see
/// tryUnaryInPlace in unary.cc. Additionally requires that broadcasting
/// leaves the first operand's shape unchanged (the output must fit exactly
/// in its buffer).
Tensor tryBinaryInPlace(const char* name, BinaryOp op, const Tensor& arg,
                        const Tensor& b, DType outDtype) {
  // See tryUnaryInPlace: capture takes the allocating, recordable path.
  if (internal::captureDepth == 0 && E().opObserver() != nullptr) return {};
  if (!E().canReuseInput(arg)) return {};
  if (dtypeBytes(outDtype) != dtypeBytes(arg.dtype())) return {};
  const Shape out = util::broadcastShapes(arg.shape(), b.shape());
  if (!(arg.shape() == out)) return {};
  internal::KernelScope k(name);
  const TensorSpec sa = E().prepareInput(arg);
  const TensorSpec sb = E().prepareInput(b);
  const DataId id = E().backend().binaryInto(op, sa, sb, out, sa.id);
  if (id != sa.id) {
    Tensor y = E().makeTensorFromDataId(id, out, outDtype);
    k.notify(y);
    arg.dispose();
    return y;
  }
  Tensor y = E().reuseInputAsOutput(arg, out, outDtype);
  k.notify(y);
  return y;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor y = dispatchNum("add", BinaryOp::kAdd, a, b);
  record("add", {a, b}, y, [a, b](const Tensor& dy) {
    return std::vector<Tensor>{reduceGradTo(dy, a.shape()),
                               reduceGradTo(dy, b.shape())};
  });
  return y;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor y = dispatchNum("sub", BinaryOp::kSub, a, b);
  record("sub", {a, b}, y, [a, b](const Tensor& dy) {
    return std::vector<Tensor>{reduceGradTo(dy, a.shape()),
                               reduceGradTo(neg(dy), b.shape())};
  });
  return y;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor y = dispatchNum("mul", BinaryOp::kMul, a, b);
  record("mul", {a, b}, y, [a, b](const Tensor& dy) {
    return std::vector<Tensor>{reduceGradTo(mul(dy, b), a.shape()),
                               reduceGradTo(mul(dy, a), b.shape())};
  });
  return y;
}

Tensor div(const Tensor& a, const Tensor& b) {
  Tensor y = dispatch("div", BinaryOp::kDiv, a, b, DType::f32);
  record("div", {a, b}, y, [a, b](const Tensor& dy) {
    Tensor da = reduceGradTo(div(dy, b), a.shape());
    Tensor db = reduceGradTo(neg(div(mul(dy, a), mul(b, b))), b.shape());
    return std::vector<Tensor>{da, db};
  });
  return y;
}

Tensor floorDiv(const Tensor& a, const Tensor& b) {
  return dispatchNum("floorDiv", BinaryOp::kFloorDiv, a, b);
}

Tensor mod(const Tensor& a, const Tensor& b) {
  return dispatchNum("mod", BinaryOp::kMod, a, b);
}

Tensor pow(const Tensor& a, const Tensor& b) {
  Tensor y = dispatch("pow", BinaryOp::kPow, a, b, DType::f32);
  record("pow", {a, b}, y, [a, b, y](const Tensor& dy) {
    // da = dy * b * a^(b-1);  db = dy * y * ln(a), with ln(a) zeroed for
    // a <= 0 (matching the upstream convention).
    Tensor da = reduceGradTo(
        mul(dy, mul(b, pow(a, sub(b, scalar(1))))), a.shape());
    Tensor safeLog = where(greater(a, scalar(0)), log(maximum(a, scalar(1e-30f))),
                           zerosLike(a));
    Tensor db = reduceGradTo(mul(dy, mul(y, safeLog)), b.shape());
    return std::vector<Tensor>{da, db};
  });
  return y;
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  Tensor y = dispatchNum("maximum", BinaryOp::kMaximum, a, b);
  record("maximum", {a, b}, y, [a, b](const Tensor& dy) {
    Tensor aWins = greaterEqual(a, b);
    return std::vector<Tensor>{maskedGrad(dy, aWins, a.shape()),
                               maskedGrad(dy, logicalNot(aWins), b.shape())};
  });
  return y;
}

Tensor minimum(const Tensor& a, const Tensor& b) {
  Tensor y = dispatchNum("minimum", BinaryOp::kMinimum, a, b);
  record("minimum", {a, b}, y, [a, b](const Tensor& dy) {
    Tensor aWins = lessEqual(a, b);
    return std::vector<Tensor>{maskedGrad(dy, aWins, a.shape()),
                               maskedGrad(dy, logicalNot(aWins), b.shape())};
  });
  return y;
}

Tensor squaredDifference(const Tensor& a, const Tensor& b) {
  Tensor y = dispatchNum("squaredDifference", BinaryOp::kSquaredDiff, a, b);
  record("squaredDifference", {a, b}, y, [a, b](const Tensor& dy) {
    Tensor two = scalar(2);
    Tensor d = mul(dy, mul(two, sub(a, b)));
    return std::vector<Tensor>{reduceGradTo(d, a.shape()),
                               reduceGradTo(neg(d), b.shape())};
  });
  return y;
}

Tensor atan2(const Tensor& a, const Tensor& b) {
  return dispatch("atan2", BinaryOp::kAtan2, a, b, DType::f32);
}

// Move-consuming overloads; a watched first operand falls back to the
// copying overload (canReuseInput refuses it), which records normally.

Tensor add(Tensor&& a, const Tensor& b) {
  const Tensor arg = std::move(a);
  if (Tensor y = tryBinaryInPlace("add", BinaryOp::kAdd, arg, b,
                                  promoteTypes(arg.dtype(), b.dtype()));
      y.defined()) {
    return y;
  }
  Tensor y = add(arg, b);
  arg.dispose();
  return y;
}

Tensor sub(Tensor&& a, const Tensor& b) {
  const Tensor arg = std::move(a);
  if (Tensor y = tryBinaryInPlace("sub", BinaryOp::kSub, arg, b,
                                  promoteTypes(arg.dtype(), b.dtype()));
      y.defined()) {
    return y;
  }
  Tensor y = sub(arg, b);
  arg.dispose();
  return y;
}

Tensor mul(Tensor&& a, const Tensor& b) {
  const Tensor arg = std::move(a);
  if (Tensor y = tryBinaryInPlace("mul", BinaryOp::kMul, arg, b,
                                  promoteTypes(arg.dtype(), b.dtype()));
      y.defined()) {
    return y;
  }
  Tensor y = mul(arg, b);
  arg.dispose();
  return y;
}

Tensor div(Tensor&& a, const Tensor& b) {
  const Tensor arg = std::move(a);
  if (Tensor y = tryBinaryInPlace("div", BinaryOp::kDiv, arg, b, DType::f32);
      y.defined()) {
    return y;
  }
  Tensor y = div(arg, b);
  arg.dispose();
  return y;
}

Tensor addScalar(const Tensor& a, float s) { return add(a, scalar(s)); }
Tensor subScalar(const Tensor& a, float s) { return sub(a, scalar(s)); }
Tensor mulScalar(const Tensor& a, float s) { return mul(a, scalar(s)); }
Tensor divScalar(const Tensor& a, float s) { return div(a, scalar(s)); }

Tensor equal(const Tensor& a, const Tensor& b) {
  return dispatchBool("equal", BinaryOp::kEqual, a, b);
}
Tensor notEqual(const Tensor& a, const Tensor& b) {
  return dispatchBool("notEqual", BinaryOp::kNotEqual, a, b);
}
Tensor greater(const Tensor& a, const Tensor& b) {
  return dispatchBool("greater", BinaryOp::kGreater, a, b);
}
Tensor greaterEqual(const Tensor& a, const Tensor& b) {
  return dispatchBool("greaterEqual", BinaryOp::kGreaterEqual, a, b);
}
Tensor less(const Tensor& a, const Tensor& b) {
  return dispatchBool("less", BinaryOp::kLess, a, b);
}
Tensor lessEqual(const Tensor& a, const Tensor& b) {
  return dispatchBool("lessEqual", BinaryOp::kLessEqual, a, b);
}
Tensor logicalAnd(const Tensor& a, const Tensor& b) {
  return dispatchBool("logicalAnd", BinaryOp::kLogicalAnd, a, b);
}
Tensor logicalOr(const Tensor& a, const Tensor& b) {
  return dispatchBool("logicalOr", BinaryOp::kLogicalOr, a, b);
}
Tensor logicalXor(const Tensor& a, const Tensor& b) {
  return dispatchBool("logicalXor", BinaryOp::kLogicalXor, a, b);
}

Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b) {
  internal::CaptureFrame frame;
  internal::KernelScope k("where");
  const TensorSpec sc = E().prepareInput(cond);
  const TensorSpec sa = E().prepareInput(a);
  const TensorSpec sb = E().prepareInput(b);
  Shape out = util::broadcastShapes(util::broadcastShapes(sc.shape, sa.shape),
                                    sb.shape);
  const DataId id = E().backend().select(sc, sa, sb, out);
  Tensor y = k.wrap(id, out, promoteTypes(a.dtype(), b.dtype()));
  internal::observeOp(OpId::kSelect, {cond, a, b}, y);
  record("where", {a, b}, y, [cond, a, b](const Tensor& dy) {
    Tensor zero = zerosLike(dy);
    return std::vector<Tensor>{
        reduceGradTo(where(cond, dy, zero), a.shape()),
        reduceGradTo(where(cond, zero, dy), b.shape())};
  });
  return y;
}

}  // namespace tfjs::ops
