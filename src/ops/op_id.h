// Stable op identities for the graph IR (DESIGN.md "Graph capture &
// optimization"). Every public op the capture recorder understands maps to
// one OpId; elementwise families reuse the backend's BinaryOp/UnaryOp/
// ReduceOp/ArgOp codes as attributes instead of minting one id per op, so
// the IR vocabulary stays small and the backend enums remain the single
// source of kernel identity.
//
// The numeric values are serialized into IR dumps and golden tests:
// append new ids at the end, never renumber.
//
// Attribute conventions (Node::attrs, doubles):
//   kUnary        {UnaryOp code, alpha, beta, out DType code}
//   kBinary       {BinaryOp code, out DType code}
//   kSelect       {}                                  inputs: cond, a, b
//   kMatMul       {tA, tB}
//   kFusedMatMul  {act, tA, tB, hasBias}              inputs: a, b[, bias]
//   kQuantMatMul  {act, hasBias, hasOutQ, outScale, outZeroPoint}
//   kConv2d       {sH, sW, pad, dH, dW}
//   kFusedConv2d  {act, hasBias, sH, sW, pad, dH, dW} inputs: x, f[, bias]
//   kQuantConv2d  {act, hasBias, hasOutQ, outScale, outZeroPoint,
//                  sH, sW, pad, dH, dW}
//   kDepthwiseConv2d {sH, sW, pad, dH, dW}
//   kPool         {PoolMode code, kH, kW, sH, sW, pad}
//   kReduce       {ReduceOp code, keepDims, out DType code, axes...}
//   kArg          {ArgOp code, axis}
//   kSoftmax / kLogSoftmax {axis}
//   kTranspose    {perm...}
//   kConcat       {axis}                              inputs: variadic
//   kSlice        {begin..., size...}  (rank entries each)
//   kPad          {value, before0, after0, before1, after1, ...}
//   kAlias        {[kind]}      + Node::shapeAttr / outDtype. kind (default
//                                 0): 0 = view shapeAttr + cast to outDtype
//                                 (capture); 1 = squeeze; 2 = identity;
//                                 3 = view shapeAttr with -1 inference
//                                 (io import; kinds 1-3 keep input dtype)
//   kCast         {out DType code}
//   kQuantize     {scale, zeroPoint}
//   kDequantize   {}
//   kFusedRegion  {numInputs, numInstrs, then per instruction
//                  {kind, opcode, a, b, c, alpha, beta}} — the encoded
//                  RegionProgram of a fused elementwise region (see
//                  graph/passes.h encode/decodeRegionProgram). Operand
//                  refs a/b/c: < 0 → external input slot (-1 - ref);
//                  >= 0 → prior instruction index. inputs: variadic
#pragma once

namespace tfjs::ops {

enum class OpId : int {
  kInput = 0,   ///< graph placeholder (capture example input / feed)
  kConst = 1,   ///< constant-table entry (captured closure tensor / weight)
  kAlias = 2,   ///< metadata-only view: reshape / clone / widening cast
  kUnary = 3,
  kBinary = 4,
  kSelect = 5,
  kMatMul = 6,
  kFusedMatMul = 7,
  kQuantMatMul = 8,
  kConv2d = 9,
  kFusedConv2d = 10,
  kQuantConv2d = 11,
  kDepthwiseConv2d = 12,
  kPool = 13,
  kReduce = 14,
  kArg = 15,
  kSoftmax = 16,
  kLogSoftmax = 17,
  kTranspose = 18,
  kConcat = 19,
  kSlice = 20,
  kPad = 21,
  kCast = 22,
  kQuantize = 23,
  kDequantize = 24,
  kFusedRegion = 25,  ///< compiled elementwise region (single-pass loop)
};

/// Stable lowercase name, used by Graph::toString() golden dumps.
inline const char* opIdName(OpId id) {
  switch (id) {
    case OpId::kInput: return "input";
    case OpId::kConst: return "const";
    case OpId::kAlias: return "alias";
    case OpId::kUnary: return "unary";
    case OpId::kBinary: return "binary";
    case OpId::kSelect: return "select";
    case OpId::kMatMul: return "matMul";
    case OpId::kFusedMatMul: return "fusedMatMul";
    case OpId::kQuantMatMul: return "quantMatMul";
    case OpId::kConv2d: return "conv2d";
    case OpId::kFusedConv2d: return "fusedConv2d";
    case OpId::kQuantConv2d: return "quantConv2d";
    case OpId::kDepthwiseConv2d: return "depthwiseConv2d";
    case OpId::kPool: return "pool";
    case OpId::kReduce: return "reduce";
    case OpId::kArg: return "arg";
    case OpId::kSoftmax: return "softmax";
    case OpId::kLogSoftmax: return "logSoftmax";
    case OpId::kTranspose: return "transpose";
    case OpId::kConcat: return "concat";
    case OpId::kSlice: return "slice";
    case OpId::kPad: return "pad";
    case OpId::kCast: return "cast";
    case OpId::kQuantize: return "quantize";
    case OpId::kDequantize: return "dequantize";
    case OpId::kFusedRegion: return "fusedRegion";
  }
  return "?";
}

}  // namespace tfjs::ops
