// Element-wise unary ops and their gradients.
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;

namespace {

Tensor dispatch(const char* name, UnaryOp op, const Tensor& x, float alpha = 0,
                float beta = 0, DType outDtype = DType::f32) {
  internal::CaptureFrame frame;
  internal::KernelScope k(name);
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().unary(op, sx, alpha, beta);
  Tensor y = k.wrap(id, sx.shape, outDtype);
  internal::observeOp(OpId::kUnary, {x}, y,
                      {static_cast<double>(op), alpha, beta,
                       static_cast<double>(outDtype)});
  return y;
}

/// In-place fast path for a move-consumed input: when the engine proves sole
/// ownership and the element width is unchanged, the kernel overwrites the
/// input's buffer and the output tensor takes over its storage. Returns an
/// undefined Tensor when the fast path does not apply (caller falls back to
/// the allocating op and disposes the consumed input afterwards).
Tensor tryUnaryInPlace(const char* name, UnaryOp op, const Tensor& arg,
                       float alpha, float beta, DType outDtype) {
  // During capture the allocating path records the op; the in-place path
  // would overwrite an input the recorder may still need to snapshot.
  if (internal::captureDepth == 0 && E().opObserver() != nullptr) return {};
  if (!E().canReuseInput(arg)) return {};
  if (dtypeBytes(outDtype) != dtypeBytes(arg.dtype())) return {};
  internal::KernelScope k(name);
  const TensorSpec sx = E().prepareInput(arg);
  const DataId id = E().backend().unaryInto(op, sx, alpha, beta, sx.id);
  if (id != sx.id) {
    // Backend declined the in-place write and allocated.
    Tensor y = E().makeTensorFromDataId(id, sx.shape, outDtype);
    k.notify(y);
    arg.dispose();
    return y;
  }
  Tensor y = E().reuseInputAsOutput(arg, sx.shape, outDtype);
  k.notify(y);
  return y;
}

}  // namespace

Tensor neg(const Tensor& x) {
  Tensor y = dispatch("neg", UnaryOp::kNeg, x, 0, 0, x.dtype());
  record("neg", {x}, y,
         [](const Tensor& dy) { return std::vector<Tensor>{neg(dy)}; });
  return y;
}

Tensor abs(const Tensor& x) {
  Tensor y = dispatch("abs", UnaryOp::kAbs, x, 0, 0, x.dtype());
  record("abs", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, sign(x))};
  });
  return y;
}

Tensor exp(const Tensor& x) {
  Tensor y = dispatch("exp", UnaryOp::kExp, x);
  record("exp", {x}, y, [y](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, y)};
  });
  return y;
}

Tensor expm1(const Tensor& x) {
  Tensor y = dispatch("expm1", UnaryOp::kExpm1, x);
  record("expm1", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, exp(x))};
  });
  return y;
}

Tensor log(const Tensor& x) {
  Tensor y = dispatch("log", UnaryOp::kLog, x);
  record("log", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{div(dy, x)};
  });
  return y;
}

Tensor log1p(const Tensor& x) {
  Tensor y = dispatch("log1p", UnaryOp::kLog1p, x);
  record("log1p", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{div(dy, addScalar(x, 1))};
  });
  return y;
}

Tensor sqrt(const Tensor& x) {
  Tensor y = dispatch("sqrt", UnaryOp::kSqrt, x);
  record("sqrt", {x}, y, [y](const Tensor& dy) {
    return std::vector<Tensor>{div(dy, mulScalar(y, 2))};
  });
  return y;
}

Tensor rsqrt(const Tensor& x) {
  Tensor y = dispatch("rsqrt", UnaryOp::kRsqrt, x);
  record("rsqrt", {x}, y, [x](const Tensor& dy) {
    // d/dx x^{-1/2} = -1/2 x^{-3/2}
    return std::vector<Tensor>{
        neg(div(dy, mulScalar(mul(x, sqrt(x)), 2)))};
  });
  return y;
}

Tensor square(const Tensor& x) {
  Tensor y = dispatch("square", UnaryOp::kSquare, x, 0, 0, x.dtype());
  record("square", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, mulScalar(x, 2))};
  });
  return y;
}

Tensor reciprocal(const Tensor& x) {
  Tensor y = dispatch("reciprocal", UnaryOp::kReciprocal, x);
  record("reciprocal", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{neg(div(dy, mul(x, x)))};
  });
  return y;
}

Tensor floor(const Tensor& x) { return dispatch("floor", UnaryOp::kFloor, x, 0, 0, x.dtype()); }
Tensor ceil(const Tensor& x) { return dispatch("ceil", UnaryOp::kCeil, x, 0, 0, x.dtype()); }
Tensor round(const Tensor& x) { return dispatch("round", UnaryOp::kRound, x, 0, 0, x.dtype()); }
Tensor sign(const Tensor& x) { return dispatch("sign", UnaryOp::kSign, x, 0, 0, x.dtype()); }

Tensor sin(const Tensor& x) {
  Tensor y = dispatch("sin", UnaryOp::kSin, x);
  record("sin", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, cos(x))};
  });
  return y;
}

Tensor cos(const Tensor& x) {
  Tensor y = dispatch("cos", UnaryOp::kCos, x);
  record("cos", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{neg(mul(dy, sin(x)))};
  });
  return y;
}

Tensor tan(const Tensor& x) {
  Tensor y = dispatch("tan", UnaryOp::kTan, x);
  record("tan", {x}, y, [x](const Tensor& dy) {
    Tensor c = cos(x);
    return std::vector<Tensor>{div(dy, mul(c, c))};
  });
  return y;
}

Tensor asin(const Tensor& x) { return dispatch("asin", UnaryOp::kAsin, x); }
Tensor acos(const Tensor& x) { return dispatch("acos", UnaryOp::kAcos, x); }
Tensor atan(const Tensor& x) { return dispatch("atan", UnaryOp::kAtan, x); }
Tensor sinh(const Tensor& x) { return dispatch("sinh", UnaryOp::kSinh, x); }
Tensor cosh(const Tensor& x) { return dispatch("cosh", UnaryOp::kCosh, x); }

Tensor tanh(const Tensor& x) {
  Tensor y = dispatch("tanh", UnaryOp::kTanh, x);
  record("tanh", {x}, y, [y](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, sub(scalar(1), mul(y, y)))};
  });
  return y;
}

Tensor erf(const Tensor& x) {
  Tensor y = dispatch("erf", UnaryOp::kErf, x);
  record("erf", {x}, y, [x](const Tensor& dy) {
    // d erf / dx = 2/sqrt(pi) * exp(-x^2)
    constexpr float kTwoOverSqrtPi = 1.1283791670955126f;
    return std::vector<Tensor>{
        mul(dy, mulScalar(exp(neg(mul(x, x))), kTwoOverSqrtPi))};
  });
  return y;
}

Tensor relu(const Tensor& x) {
  Tensor y = dispatch("relu", UnaryOp::kRelu, x);
  record("relu", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, step(x))};
  });
  return y;
}

Tensor relu6(const Tensor& x) {
  Tensor y = dispatch("relu6", UnaryOp::kRelu6, x);
  record("relu6", {x}, y, [x](const Tensor& dy) {
    Tensor inRange = logicalAnd(greater(x, scalar(0)), less(x, scalar(6)));
    return std::vector<Tensor>{mul(dy, cast(inRange, DType::f32))};
  });
  return y;
}

Tensor leakyRelu(const Tensor& x, float alpha) {
  Tensor y = dispatch("leakyRelu", UnaryOp::kLeakyRelu, x, alpha);
  record("leakyRelu", {x}, y, [x, alpha](const Tensor& dy) {
    Tensor slope =
        where(greaterEqual(x, scalar(0)), onesLike(x), fill(x.shape(), alpha));
    return std::vector<Tensor>{mul(dy, slope)};
  });
  return y;
}

Tensor elu(const Tensor& x) {
  Tensor y = dispatch("elu", UnaryOp::kElu, x);
  record("elu", {x}, y, [x, y](const Tensor& dy) {
    Tensor slope =
        where(greaterEqual(x, scalar(0)), onesLike(x), addScalar(y, 1));
    return std::vector<Tensor>{mul(dy, slope)};
  });
  return y;
}

Tensor selu(const Tensor& x) {
  Tensor y = dispatch("selu", UnaryOp::kSelu, x);
  record("selu", {x}, y, [x](const Tensor& dy) {
    constexpr float kAlpha = 1.6732632423543772f;
    constexpr float kScale = 1.0507009873554805f;
    Tensor slope = where(greaterEqual(x, scalar(0)),
                         fill(x.shape(), kScale),
                         mulScalar(exp(x), kScale * kAlpha));
    return std::vector<Tensor>{mul(dy, slope)};
  });
  return y;
}

Tensor sigmoid(const Tensor& x) {
  Tensor y = dispatch("sigmoid", UnaryOp::kSigmoid, x);
  record("sigmoid", {x}, y, [y](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, mul(y, sub(scalar(1), y)))};
  });
  return y;
}

Tensor softplus(const Tensor& x) {
  Tensor y = dispatch("softplus", UnaryOp::kSoftplus, x);
  record("softplus", {x}, y, [x](const Tensor& dy) {
    return std::vector<Tensor>{mul(dy, sigmoid(x))};
  });
  return y;
}

Tensor clipByValue(const Tensor& x, float lo, float hi) {
  TFJS_ARG_CHECK(lo <= hi, "clipByValue requires lo <= hi, got " << lo << ", "
                                                                 << hi);
  Tensor y = dispatch("clipByValue", UnaryOp::kClipByValue, x, lo, hi,
                      x.dtype());
  record("clipByValue", {x}, y, [x, lo, hi](const Tensor& dy) {
    Tensor inRange = logicalAnd(greaterEqual(x, scalar(lo)),
                                lessEqual(x, scalar(hi)));
    return std::vector<Tensor>{mul(dy, cast(inRange, DType::f32))};
  });
  return y;
}

Tensor step(const Tensor& x, float alpha) {
  return dispatch("step", UnaryOp::kStep, x, alpha);
}

Tensor powScalar(const Tensor& a, float exponent) {
  Tensor y = dispatch("powScalar", UnaryOp::kPowScalar, a, exponent);
  record("powScalar", {a}, y, [a, exponent](const Tensor& dy) {
    return std::vector<Tensor>{
        mul(dy, mulScalar(powScalar(a, exponent - 1), exponent))};
  });
  return y;
}

Tensor isNaN(const Tensor& x) {
  return dispatch("isNaN", UnaryOp::kIsNan, x, 0, 0, DType::b8);
}
Tensor isFinite(const Tensor& x) {
  return dispatch("isFinite", UnaryOp::kIsFinite, x, 0, 0, DType::b8);
}
Tensor logicalNot(const Tensor& x) {
  return dispatch("logicalNot", UnaryOp::kLogicalNot, x, 0, 0, DType::b8);
}

// Move-consuming overloads. No tape recording is needed on the in-place
// path: canReuseInput() refuses tensors a tape is watching, so a watched
// input always takes the copying overload below (which records normally).

Tensor neg(Tensor&& x) {
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("neg", UnaryOp::kNeg, arg, 0, 0, arg.dtype());
      y.defined()) {
    return y;
  }
  Tensor y = neg(arg);
  arg.dispose();
  return y;
}

Tensor exp(Tensor&& x) {
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("exp", UnaryOp::kExp, arg, 0, 0, DType::f32);
      y.defined()) {
    return y;
  }
  Tensor y = exp(arg);
  arg.dispose();
  return y;
}

Tensor sqrt(Tensor&& x) {
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("sqrt", UnaryOp::kSqrt, arg, 0, 0,
                                 DType::f32);
      y.defined()) {
    return y;
  }
  Tensor y = sqrt(arg);
  arg.dispose();
  return y;
}

Tensor square(Tensor&& x) {
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("square", UnaryOp::kSquare, arg, 0, 0,
                                 arg.dtype());
      y.defined()) {
    return y;
  }
  Tensor y = square(arg);
  arg.dispose();
  return y;
}

Tensor tanh(Tensor&& x) {
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("tanh", UnaryOp::kTanh, arg, 0, 0,
                                 DType::f32);
      y.defined()) {
    return y;
  }
  Tensor y = tanh(arg);
  arg.dispose();
  return y;
}

Tensor relu(Tensor&& x) {
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("relu", UnaryOp::kRelu, arg, 0, 0,
                                 DType::f32);
      y.defined()) {
    return y;
  }
  Tensor y = relu(arg);
  arg.dispose();
  return y;
}

Tensor relu6(Tensor&& x) {
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("relu6", UnaryOp::kRelu6, arg, 0, 0,
                                 DType::f32);
      y.defined()) {
    return y;
  }
  Tensor y = relu6(arg);
  arg.dispose();
  return y;
}

Tensor sigmoid(Tensor&& x) {
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("sigmoid", UnaryOp::kSigmoid, arg, 0, 0,
                                 DType::f32);
      y.defined()) {
    return y;
  }
  Tensor y = sigmoid(arg);
  arg.dispose();
  return y;
}

Tensor clipByValue(Tensor&& x, float lo, float hi) {
  TFJS_ARG_CHECK(lo <= hi, "clipByValue requires lo <= hi, got " << lo << ", "
                                                                 << hi);
  const Tensor arg = std::move(x);
  if (Tensor y = tryUnaryInPlace("clipByValue", UnaryOp::kClipByValue, arg, lo,
                                 hi, arg.dtype());
      y.defined()) {
    return y;
  }
  Tensor y = clipByValue(arg, lo, hi);
  arg.dispose();
  return y;
}

Tensor cast(const Tensor& x, DType dtype) {
  // Widening casts are aliases and record their identity gradient in
  // Engine::makeAlias; narrowing casts are not differentiable. Either way
  // capture records one kCast node (the frame suppresses the alias event).
  internal::CaptureFrame frame;
  Tensor y = x.cast(dtype);
  internal::observeOp(OpId::kCast, {x}, y, {static_cast<double>(dtype)});
  return y;
}

}  // namespace tfjs::ops
