// The Ops API (paper section 3.1): lower-level linear-algebra operations that
// mirror the tf.* namespace of TensorFlow.js.
//
// Ops are backend-agnostic: they validate shapes, resolve broadcasting and
// padding, dispatch to the active Backend's kernels (section 3.3), and — when
// a gradient tape is active — record pullback closures for the eager autodiff
// engine (section 3.5). Like the upstream library, every op is synchronous
// and returns immediately; on the webgl-sim backend the returned tensor's
// data may still be pending on the GPU command queue (section 3.6).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/tensor.h"

namespace tfjs::ops {

// ---------------------------------------------------------------- creation

/// Creates a tensor from host data with an explicit shape.
Tensor tensor(std::span<const float> values, const Shape& shape,
              DType dtype = DType::f32);
Tensor tensor(std::initializer_list<float> values, const Shape& shape,
              DType dtype = DType::f32);
/// 1-D tensor from values.
Tensor tensor1d(std::span<const float> values, DType dtype = DType::f32);
Tensor tensor1d(std::initializer_list<float> values, DType dtype = DType::f32);
Tensor tensor2d(std::span<const float> values, int rows, int cols,
                DType dtype = DType::f32);
Tensor tensor2d(std::initializer_list<float> values, int rows, int cols,
                DType dtype = DType::f32);
/// 0-D (single value) tensor.
Tensor scalar(float value, DType dtype = DType::f32);

Tensor zeros(const Shape& shape, DType dtype = DType::f32);
Tensor ones(const Shape& shape, DType dtype = DType::f32);
Tensor fill(const Shape& shape, float value, DType dtype = DType::f32);
Tensor zerosLike(const Tensor& t);
Tensor onesLike(const Tensor& t);
/// n x n identity matrix.
Tensor eye(int n);
/// [start, stop) with the given step, like tf.range.
Tensor range(float start, float stop, float step = 1, DType dtype = DType::f32);
/// `num` evenly spaced values in [start, stop].
Tensor linspace(float start, float stop, int num);
/// Seeded normal / uniform random tensors (deterministic across runs).
Tensor randomNormal(const Shape& shape, float mean = 0, float stddev = 1,
                    std::uint64_t seed = 42);
Tensor randomUniform(const Shape& shape, float lo = 0, float hi = 1,
                     std::uint64_t seed = 42);

// -------------------------------------------------------------- arithmetic

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor floorDiv(const Tensor& a, const Tensor& b);
Tensor mod(const Tensor& a, const Tensor& b);
Tensor pow(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);
Tensor squaredDifference(const Tensor& a, const Tensor& b);
Tensor atan2(const Tensor& a, const Tensor& b);
/// Scalar-broadcast conveniences.
Tensor addScalar(const Tensor& a, float s);
Tensor subScalar(const Tensor& a, float s);
Tensor mulScalar(const Tensor& a, float s);
Tensor divScalar(const Tensor& a, float s);
Tensor powScalar(const Tensor& a, float exponent);

/// Move-consuming overloads: `a` is disposed either way, and when the
/// engine can prove sole ownership (refcount 1, not kept, not on a tape)
/// and the output shape/dtype-width match, the kernel writes into `a`'s
/// buffer in place instead of allocating. Results are bit-identical to the
/// copying overloads.
Tensor add(Tensor&& a, const Tensor& b);
Tensor sub(Tensor&& a, const Tensor& b);
Tensor mul(Tensor&& a, const Tensor& b);
Tensor div(Tensor&& a, const Tensor& b);

// -------------------------------------------------------------- comparison

Tensor equal(const Tensor& a, const Tensor& b);
Tensor notEqual(const Tensor& a, const Tensor& b);
Tensor greater(const Tensor& a, const Tensor& b);
Tensor greaterEqual(const Tensor& a, const Tensor& b);
Tensor less(const Tensor& a, const Tensor& b);
Tensor lessEqual(const Tensor& a, const Tensor& b);
Tensor logicalAnd(const Tensor& a, const Tensor& b);
Tensor logicalOr(const Tensor& a, const Tensor& b);
Tensor logicalXor(const Tensor& a, const Tensor& b);
Tensor logicalNot(const Tensor& x);
/// Elements of a where cond is true, of b otherwise (tf.where).
Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b);

// ------------------------------------------------------------------- unary

Tensor neg(const Tensor& x);
Tensor abs(const Tensor& x);
Tensor exp(const Tensor& x);
Tensor expm1(const Tensor& x);
Tensor log(const Tensor& x);
Tensor log1p(const Tensor& x);
Tensor sqrt(const Tensor& x);
Tensor rsqrt(const Tensor& x);
Tensor square(const Tensor& x);
Tensor reciprocal(const Tensor& x);
Tensor floor(const Tensor& x);
Tensor ceil(const Tensor& x);
Tensor round(const Tensor& x);
Tensor sign(const Tensor& x);
Tensor sin(const Tensor& x);
Tensor cos(const Tensor& x);
Tensor tan(const Tensor& x);
Tensor asin(const Tensor& x);
Tensor acos(const Tensor& x);
Tensor atan(const Tensor& x);
Tensor sinh(const Tensor& x);
Tensor cosh(const Tensor& x);
Tensor tanh(const Tensor& x);
Tensor erf(const Tensor& x);
Tensor relu(const Tensor& x);
Tensor relu6(const Tensor& x);
Tensor leakyRelu(const Tensor& x, float alpha = 0.2f);
Tensor elu(const Tensor& x);
Tensor selu(const Tensor& x);
Tensor sigmoid(const Tensor& x);
Tensor softplus(const Tensor& x);
Tensor clipByValue(const Tensor& x, float lo, float hi);
Tensor step(const Tensor& x, float alpha = 0);
Tensor isNaN(const Tensor& x);
Tensor isFinite(const Tensor& x);

/// Move-consuming overloads of the hot activations/elementwise ops (see the
/// binary-op overloads above for the in-place contract).
Tensor neg(Tensor&& x);
Tensor exp(Tensor&& x);
Tensor sqrt(Tensor&& x);
Tensor square(Tensor&& x);
Tensor tanh(Tensor&& x);
Tensor relu(Tensor&& x);
Tensor relu6(Tensor&& x);
Tensor sigmoid(Tensor&& x);
Tensor clipByValue(Tensor&& x, float lo, float hi);

// ------------------------------------------------------------------ matmul

/// Matrix product. Rank-2 inputs multiply directly; rank-3 inputs are
/// treated as batched with broadcasting batch dims, mirroring tf.matMul.
Tensor matMul(const Tensor& a, const Tensor& b, bool transposeA = false,
              bool transposeB = false);
/// Dot product of two 1-D tensors.
Tensor dot(const Tensor& a, const Tensor& b);
Tensor outerProduct(const Tensor& a, const Tensor& b);

// ----------------------------------------------------------- convolutions

/// 2-D convolution over NHWC input with HWIO filter.
Tensor conv2d(const Tensor& x, const Tensor& filter, int strideH, int strideW,
              PadMode pad, int dilationH = 1, int dilationW = 1);
Tensor depthwiseConv2d(const Tensor& x, const Tensor& filter, int strideH,
                       int strideW, PadMode pad, int dilationH = 1,
                       int dilationW = 1);
/// Depthwise followed by pointwise convolution (MobileNet's building block).
Tensor separableConv2d(const Tensor& x, const Tensor& depthwiseFilter,
                       const Tensor& pointwiseFilter, int strideH, int strideW,
                       PadMode pad);
Tensor maxPool(const Tensor& x, int filterH, int filterW, int strideH,
               int strideW, PadMode pad);
Tensor avgPool(const Tensor& x, int filterH, int filterW, int strideH,
               int strideW, PadMode pad);

// ------------------------------------------------------------------- fused

/// Maps a Layers-style activation name to a fusible epilogue activation:
/// "" / "linear" -> kNone, "relu" -> kRelu, "relu6" -> kRelu6,
/// "sigmoid" -> kSigmoid. nullopt for everything else (caller must fall
/// back to the unfused composition).
std::optional<FusedActivation> fusibleActivation(const std::string& name);

/// matMul + optional bias add (rank-1, length n) + activation epilogue in
/// one kernel on backends that support it (supportsFusedKernels()), else an
/// unfused composition of the public ops. Both paths are bit-identical to
/// matMul -> add -> activation on the active backend, including gradients.
/// Pass a default-constructed Tensor as `bias` to skip the bias add.
Tensor fusedMatMul(const Tensor& a, const Tensor& b, const Tensor& bias,
                   FusedActivation act, bool transposeA = false,
                   bool transposeB = false);

/// conv2d + optional bias add (rank-1, length outC) + activation epilogue;
/// same contract as fusedMatMul.
Tensor fusedConv2d(const Tensor& x, const Tensor& filter, const Tensor& bias,
                   FusedActivation act, int strideH, int strideW, PadMode pad,
                   int dilationH = 1, int dilationW = 1);

/// Evaluates a fused elementwise region (graph-executor fusion): the
/// program's unary/binary/select steps applied per output element in their
/// original order, in a single pass on backends with
/// supportsFusedRegions(), else as the equivalent op-by-op kernel chain.
/// Both paths are bit-identical to dispatching the ops one at a time.
/// The output shape is the broadcast closure of the input shapes under the
/// program; `outDtype` is the terminal op's recorded result dtype.
/// Inference-only: no gradient is recorded.
Tensor fusedRegion(const RegionProgram& program, std::span<const Tensor> inputs,
                   DType outDtype = DType::f32);
/// Move-consuming variant: `first` is inputs[0]; when the engine proves
/// sole ownership (and the backend confirms the aliasing is safe) the fused
/// loop writes into its buffer instead of allocating.
Tensor fusedRegion(const RegionProgram& program, Tensor&& first,
                   std::span<const Tensor> rest, DType outDtype = DType::f32);

/// Node::attrs encoding of a RegionProgram — {numInputs, numInstrs, then
/// {kind, op, a, b, c, alpha, beta} per instruction} (see ops/op_id.h).
std::vector<double> encodeRegionProgram(const RegionProgram& program);
RegionProgram decodeRegionProgram(std::span<const double> attrs);

// ------------------------------------------------------------ quantization

/// Symmetric per-channel int8 quantization of a weight tensor along its last
/// axis (matMul weights [k, n]: channel = n; conv HWIO filters: channel = O):
/// q = clamp(round(w / scale[c]), -127, 127), scale[c] = maxAbs(c) / 127.
/// An all-zero channel gets scale 0 and all-zero codes (see core/quant.h).
/// Returns an i8 tensor with the parameters attached.
Tensor quantizePerChannel(const Tensor& w);

/// Per-tensor affine quantization to int8:
/// q = clamp(round(x / scale) + zeroPoint, -127, 127).
Tensor quantize(const Tensor& x, float scale, std::int32_t zeroPoint = 0);

/// f32 values from an int8 tensor and its attached parameters:
/// real = (code - zeroPoint[c]) * scale[c].
Tensor dequantize(const Tensor& q);

/// matMul of an f32 activation against int8 weights with a fused bias +
/// activation epilogue. Activations are quantized dynamically per GEMM row
/// inside the kernel (u8 codes, i32 accumulators); output is f32, or int8
/// codes requantized with `outQ` when non-null. Backends without quantized
/// kernels (and kernels hitting a fallback condition — see core/backend.h)
/// compute the dequantized f32 fused path instead. Inference-only: no
/// gradient is recorded. fusedMatMul / matMul route here automatically when
/// their weight argument is an int8 tensor.
Tensor quantizedMatMul(const Tensor& a, const Tensor& b, const Tensor& bias,
                       FusedActivation act = FusedActivation::kNone,
                       const OutQuant* outQ = nullptr);

/// conv2d against an int8 HWIO filter; same contract as quantizedMatMul.
Tensor quantizedConv2d(const Tensor& x, const Tensor& filter,
                       const Tensor& bias, FusedActivation act, int strideH,
                       int strideW, PadMode pad, int dilationH = 1,
                       int dilationW = 1, const OutQuant* outQ = nullptr);

// -------------------------------------------------------------- reductions

Tensor sum(const Tensor& x, std::span<const int> axes = {},
           bool keepDims = false);
Tensor mean(const Tensor& x, std::span<const int> axes = {},
            bool keepDims = false);
Tensor max(const Tensor& x, std::span<const int> axes = {},
           bool keepDims = false);
Tensor min(const Tensor& x, std::span<const int> axes = {},
           bool keepDims = false);
Tensor prod(const Tensor& x, std::span<const int> axes = {},
            bool keepDims = false);
Tensor any(const Tensor& x, std::span<const int> axes = {},
           bool keepDims = false);
Tensor all(const Tensor& x, std::span<const int> axes = {},
           bool keepDims = false);
/// Index of the max/min element along `axis` (i32 result).
Tensor argMax(const Tensor& x, int axis = -1);
Tensor argMin(const Tensor& x, int axis = -1);

// ------------------------------------------------------------- transforms

Tensor reshape(const Tensor& x, const Shape& shape);
Tensor flatten(const Tensor& x);
Tensor cast(const Tensor& x, DType dtype);
Tensor transpose(const Tensor& x, std::span<const int> perm = {});
Tensor slice(const Tensor& x, std::span<const int> begin,
             std::span<const int> size);
Tensor concat(std::span<const Tensor> xs, int axis = 0);
Tensor concat(std::initializer_list<Tensor> xs, int axis = 0);
/// Stacks along a new axis / splits into equal parts.
Tensor stack(std::span<const Tensor> xs, int axis = 0);
std::vector<Tensor> unstack(const Tensor& x, int axis = 0);
std::vector<Tensor> split(const Tensor& x, int numSplits, int axis);
Tensor pad(const Tensor& x, std::span<const std::pair<int, int>> paddings,
           float constantValue = 0);
Tensor gather(const Tensor& x, const Tensor& indices, int axis = 0);
Tensor tile(const Tensor& x, std::span<const int> reps);
Tensor reverse(const Tensor& x, std::span<const int> axes);
Tensor expandDims(const Tensor& x, int axis = 0);
Tensor squeeze(const Tensor& x);
Tensor resizeBilinear(const Tensor& x, int newH, int newW,
                      bool alignCorners = false);
Tensor oneHot(const Tensor& indices, int depth, float onValue = 1,
              float offValue = 0);

// ------------------------------------------------ activations & normalizers

/// Numerically stable softmax along the last axis.
Tensor softmax(const Tensor& logits, int axis = -1);
Tensor logSoftmax(const Tensor& logits, int axis = -1);
/// y = (x - mean) / sqrt(var + eps) * scale + offset, broadcast over the
/// trailing channel dimension (inference-style batch norm).
Tensor batchNorm(const Tensor& x, const Tensor& mean, const Tensor& variance,
                 const Tensor& offset, const Tensor& scale,
                 float varianceEpsilon = 1e-3f);
/// Randomly zeroes elements with probability `rate`, scaling the survivors
/// by 1/(1-rate); identity when rate == 0.
Tensor dropout(const Tensor& x, float rate, std::uint64_t seed = 42);

// ------------------------------------------------------------ advanced ops

/// Values and indices of the k largest elements along the last axis, sorted
/// descending (tf.topk).
struct TopK {
  Tensor values;   ///< [..., k]
  Tensor indices;  ///< [..., k], i32
};
TopK topk(const Tensor& x, int k, bool sorted = true);

/// Cumulative sum along `axis` (tf.cumsum); differentiable.
Tensor cumsum(const Tensor& x, int axis = 0, bool exclusive = false,
              bool reverse = false);

/// x / max(||x||_2, sqrt(eps)) over `axes` (all axes when empty).
Tensor l2Normalize(const Tensor& x, std::span<const int> axes = {},
                   float epsilon = 1e-12f);

/// Mean and variance over `axes` (tf.moments).
struct Moments {
  Tensor mean;
  Tensor variance;
};
Moments moments(const Tensor& x, std::span<const int> axes = {},
                bool keepDims = false);

/// log(sum(exp(x))) over `axes`, computed stably via the max shift.
Tensor logSumExp(const Tensor& x, std::span<const int> axes = {},
                 bool keepDims = false);

/// Parametric ReLU: x where positive, alpha*x otherwise (alpha broadcasts).
Tensor prelu(const Tensor& x, const Tensor& alpha);

/// L^p norm over `axes`: p in {1, 2} or infinity (p <= 0 selects inf).
Tensor norm(const Tensor& x, float p = 2, std::span<const int> axes = {},
            bool keepDims = false);

// ---------------------------------------------------------------- operators

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }

}  // namespace tfjs::ops
