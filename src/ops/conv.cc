// Convolutions and pooling. Geometry (SAME/VALID padding, strides,
// dilations) is resolved here into an explicit Conv2DInfo/Pool2DInfo; the
// backends only ever see resolved numbers.
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;

namespace {

Tensor convBackpropInput(const Tensor& dy, const Tensor& filter,
                         const Conv2DInfo& info) {
  internal::KernelScope k("conv2dBackpropInput");
  const TensorSpec sdy = E().prepareInput(dy);
  const TensorSpec sf = E().prepareInput(filter);
  const DataId id = E().backend().conv2dBackpropInput(sdy, sf, info);
  return k.wrap(id, Shape{info.batch, info.inH, info.inW, info.inC},
                DType::f32);
}

Tensor convBackpropFilter(const Tensor& x, const Tensor& dy,
                          const Conv2DInfo& info) {
  internal::KernelScope k("conv2dBackpropFilter");
  const TensorSpec sx = E().prepareInput(x);
  const TensorSpec sdy = E().prepareInput(dy);
  const DataId id = E().backend().conv2dBackpropFilter(sx, sdy, info);
  return k.wrap(id, Shape{info.filterH, info.filterW, info.inC, info.outC},
                DType::f32);
}

Tensor dwBackpropInput(const Tensor& dy, const Tensor& filter,
                       const Conv2DInfo& info) {
  internal::KernelScope k("depthwiseConv2dBackpropInput");
  const TensorSpec sdy = E().prepareInput(dy);
  const TensorSpec sf = E().prepareInput(filter);
  const DataId id = E().backend().depthwiseConv2dBackpropInput(sdy, sf, info);
  return k.wrap(id, Shape{info.batch, info.inH, info.inW, info.inC},
                DType::f32);
}

Tensor dwBackpropFilter(const Tensor& x, const Tensor& dy,
                        const Conv2DInfo& info) {
  internal::KernelScope k("depthwiseConv2dBackpropFilter");
  const TensorSpec sx = E().prepareInput(x);
  const TensorSpec sdy = E().prepareInput(dy);
  const DataId id = E().backend().depthwiseConv2dBackpropFilter(sx, sdy, info);
  return k.wrap(id,
                Shape{info.filterH, info.filterW, info.inC, info.channelMult},
                DType::f32);
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& filter, int strideH, int strideW,
              PadMode pad, int dilationH, int dilationW) {
  // Int8 filters route to the quantized kernel (inference-only).
  if (filter.dtype() == DType::i8 && filter.quantParams() != nullptr) {
    return quantizedConv2d(x, filter, Tensor{}, FusedActivation::kNone,
                           strideH, strideW, pad, dilationH, dilationW);
  }
  const Conv2DInfo info = conv_util::computeConv2DInfo(
      x.shape(), filter.shape(), strideH, strideW, pad, dilationH, dilationW,
      /*depthwise=*/false);
  internal::CaptureFrame frame;
  internal::KernelScope k("conv2d");
  const TensorSpec sx = E().prepareInput(x);
  const TensorSpec sf = E().prepareInput(filter);
  const DataId id = E().backend().conv2d(sx, sf, info);
  Tensor y =
      k.wrap(id, Shape{info.batch, info.outH, info.outW, info.outC},
             DType::f32);
  internal::observeOp(OpId::kConv2d, {x, filter}, y,
                      {static_cast<double>(strideH),
                       static_cast<double>(strideW),
                       static_cast<double>(pad),
                       static_cast<double>(dilationH),
                       static_cast<double>(dilationW)});
  record("conv2d", {x, filter}, y, [x, filter, info](const Tensor& dy) {
    return std::vector<Tensor>{convBackpropInput(dy, filter, info),
                               convBackpropFilter(x, dy, info)};
  });
  return y;
}

Tensor depthwiseConv2d(const Tensor& x, const Tensor& filter, int strideH,
                       int strideW, PadMode pad, int dilationH,
                       int dilationW) {
  // Depthwise filters are not quantized (their per-channel reuse is too low
  // to pay for the codec); an int8 filter is dequantized up front.
  if (filter.dtype() == DType::i8 && filter.quantParams() != nullptr) {
    Tensor ff = dequantize(filter);
    Tensor y = depthwiseConv2d(x, ff, strideH, strideW, pad, dilationH,
                               dilationW);
    ff.dispose();
    return y;
  }
  const Conv2DInfo info = conv_util::computeConv2DInfo(
      x.shape(), filter.shape(), strideH, strideW, pad, dilationH, dilationW,
      /*depthwise=*/true);
  internal::CaptureFrame frame;
  internal::KernelScope k("depthwiseConv2d");
  const TensorSpec sx = E().prepareInput(x);
  const TensorSpec sf = E().prepareInput(filter);
  const DataId id = E().backend().depthwiseConv2d(sx, sf, info);
  Tensor y =
      k.wrap(id, Shape{info.batch, info.outH, info.outW, info.outC},
             DType::f32);
  internal::observeOp(OpId::kDepthwiseConv2d, {x, filter}, y,
                      {static_cast<double>(strideH),
                       static_cast<double>(strideW),
                       static_cast<double>(pad),
                       static_cast<double>(dilationH),
                       static_cast<double>(dilationW)});
  record("depthwiseConv2d", {x, filter}, y,
         [x, filter, info](const Tensor& dy) {
           return std::vector<Tensor>{dwBackpropInput(dy, filter, info),
                                      dwBackpropFilter(x, dy, info)};
         });
  return y;
}

Tensor separableConv2d(const Tensor& x, const Tensor& depthwiseFilter,
                       const Tensor& pointwiseFilter, int strideH, int strideW,
                       PadMode pad) {
  Tensor dw = depthwiseConv2d(x, depthwiseFilter, strideH, strideW, pad);
  Tensor y = conv2d(dw, pointwiseFilter, 1, 1, PadMode::kValid);
  dw.dispose();
  return y;
}

Tensor maxPool(const Tensor& x, int filterH, int filterW, int strideH,
               int strideW, PadMode pad) {
  const Pool2DInfo info = conv_util::computePool2DInfo(
      x.shape(), filterH, filterW, strideH, strideW, pad);
  internal::CaptureFrame frame;
  internal::KernelScope k("maxPool");
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().pool2d(PoolMode::kMax, sx, info);
  Tensor y =
      k.wrap(id, Shape{info.batch, info.outH, info.outW, info.channels},
             DType::f32);
  internal::observeOp(OpId::kPool, {x}, y,
                      {static_cast<double>(PoolMode::kMax),
                       static_cast<double>(filterH),
                       static_cast<double>(filterW),
                       static_cast<double>(strideH),
                       static_cast<double>(strideW),
                       static_cast<double>(pad)});
  record("maxPool", {x}, y, [x, info](const Tensor& dy) {
    internal::KernelScope kg("maxPoolBackprop");
    const TensorSpec sdy = E().prepareInput(dy);
    const TensorSpec sxIn = E().prepareInput(x);
    const DataId gid = E().backend().maxPoolBackprop(sdy, sxIn, info);
    return std::vector<Tensor>{kg.wrap(
        gid, Shape{info.batch, info.inH, info.inW, info.channels},
        DType::f32)};
  });
  return y;
}

Tensor avgPool(const Tensor& x, int filterH, int filterW, int strideH,
               int strideW, PadMode pad) {
  const Pool2DInfo info = conv_util::computePool2DInfo(
      x.shape(), filterH, filterW, strideH, strideW, pad);
  internal::CaptureFrame frame;
  internal::KernelScope k("avgPool");
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().pool2d(PoolMode::kAvg, sx, info);
  Tensor y =
      k.wrap(id, Shape{info.batch, info.outH, info.outW, info.channels},
             DType::f32);
  internal::observeOp(OpId::kPool, {x}, y,
                      {static_cast<double>(PoolMode::kAvg),
                       static_cast<double>(filterH),
                       static_cast<double>(filterW),
                       static_cast<double>(strideH),
                       static_cast<double>(strideW),
                       static_cast<double>(pad)});
  record("avgPool", {x}, y, [info](const Tensor& dy) {
    internal::KernelScope kg("avgPoolBackprop");
    const TensorSpec sdy = E().prepareInput(dy);
    const DataId gid = E().backend().avgPoolBackprop(sdy, info);
    return std::vector<Tensor>{kg.wrap(
        gid, Shape{info.batch, info.inH, info.inW, info.channels},
        DType::f32)};
  });
  return y;
}

}  // namespace tfjs::ops
