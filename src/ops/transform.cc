// Shape transforms and data movement ops.
#include <algorithm>
#include <numeric>

#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;

Tensor reshape(const Tensor& x, const Shape& shape) {
  // Resolve a single -1 ("infer this dimension").
  std::vector<int> dims = shape.dims();
  int inferAxis = -1;
  std::size_t known = 1;
  for (int i = 0; i < static_cast<int>(dims.size()); ++i) {
    if (dims[static_cast<std::size_t>(i)] == -1) {
      TFJS_SHAPE_CHECK(inferAxis == -1, "reshape allows at most one -1 dim");
      inferAxis = i;
    } else {
      known *= static_cast<std::size_t>(dims[static_cast<std::size_t>(i)]);
    }
  }
  Shape target = shape;
  if (inferAxis >= 0) {
    TFJS_SHAPE_CHECK(known > 0 && x.size() % known == 0,
                     "reshape cannot infer dim: " << x.size()
                         << " elements into " << shape.toString());
    dims[static_cast<std::size_t>(inferAxis)] =
        static_cast<int>(x.size() / known);
    target = Shape(dims);
  }
  // The alias creation itself records the gradient (Engine::makeAlias).
  return x.reshape(target);
}

Tensor flatten(const Tensor& x) {
  return reshape(x, Shape{static_cast<int>(x.size())});
}

Tensor transpose(const Tensor& x, std::span<const int> permIn) {
  std::vector<int> perm(permIn.begin(), permIn.end());
  if (perm.empty()) {  // default: reverse all axes
    perm.resize(static_cast<std::size_t>(x.rank()));
    std::iota(perm.rbegin(), perm.rend(), 0);
  }
  TFJS_SHAPE_CHECK(static_cast<int>(perm.size()) == x.rank(),
                   "transpose perm length " << perm.size()
                       << " != rank " << x.rank());
  std::vector<int> outDims(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    outDims[i] = x.shape()[perm[i]];
  }
  const Shape outShape(outDims);
  internal::CaptureFrame frame;
  internal::KernelScope k("transpose");
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().transpose(sx, perm, outShape);
  Tensor y = k.wrap(id, outShape, x.dtype());
  if (internal::observing()) {
    std::vector<double> attrs;
    for (int p : perm) attrs.push_back(static_cast<double>(p));
    internal::observeOp(OpId::kTranspose, {x}, y, attrs);
  }
  record("transpose", {x}, y, [x, perm](const Tensor& dy) {
    std::vector<int> inverse(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      inverse[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);
    }
    return std::vector<Tensor>{transpose(dy, inverse)};
  });
  return y;
}

Tensor slice(const Tensor& x, std::span<const int> begin,
             std::span<const int> size) {
  TFJS_SHAPE_CHECK(static_cast<int>(begin.size()) == x.rank() &&
                       static_cast<int>(size.size()) == x.rank(),
                   "slice begin/size must match rank " << x.rank());
  std::vector<int> outDims(size.begin(), size.end());
  for (int d = 0; d < x.rank(); ++d) {
    if (outDims[static_cast<std::size_t>(d)] == -1) {
      outDims[static_cast<std::size_t>(d)] =
          x.shape()[d] - begin[static_cast<std::size_t>(d)];
    }
    TFJS_SHAPE_CHECK(
        begin[static_cast<std::size_t>(d)] >= 0 &&
            begin[static_cast<std::size_t>(d)] +
                    outDims[static_cast<std::size_t>(d)] <=
                x.shape()[d],
        "slice out of bounds on axis " << d << " for shape "
                                       << x.shape().toString());
  }
  const Shape outShape(outDims);
  internal::CaptureFrame frame;
  internal::KernelScope k("slice");
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().slice(sx, begin, outShape);
  Tensor y = k.wrap(id, outShape, x.dtype());
  if (internal::observing()) {
    // Record begin + the resolved sizes (a -1 size means "to the end").
    std::vector<double> attrs;
    for (int b : begin) attrs.push_back(static_cast<double>(b));
    for (int d = 0; d < x.rank(); ++d) {
      attrs.push_back(static_cast<double>(outDims[static_cast<std::size_t>(d)]));
    }
    internal::observeOp(OpId::kSlice, {x}, y, attrs);
  }
  const std::vector<int> beginV(begin.begin(), begin.end());
  record("slice", {x}, y, [x, beginV](const Tensor& dy) {
    std::vector<std::pair<int, int>> pads(
        static_cast<std::size_t>(x.rank()));
    for (int d = 0; d < x.rank(); ++d) {
      pads[static_cast<std::size_t>(d)] = {
          beginV[static_cast<std::size_t>(d)],
          x.shape()[d] - beginV[static_cast<std::size_t>(d)] -
              dy.shape()[d]};
    }
    return std::vector<Tensor>{pad(dy, pads, 0)};
  });
  return y;
}

Tensor concat(std::span<const Tensor> xs, int axis) {
  TFJS_ARG_CHECK(!xs.empty(), "concat requires at least one tensor");
  const int rank = xs[0].rank();
  const int norm = axis < 0 ? axis + rank : axis;
  TFJS_SHAPE_CHECK(norm >= 0 && norm < rank,
                   "concat axis " << axis << " out of range for rank "
                                  << rank);
  internal::CaptureFrame frame;
  internal::KernelScope k("concat");
  std::vector<int> outDims = xs[0].shape().dims();
  std::vector<TensorSpec> specs;
  specs.reserve(xs.size());
  specs.push_back(E().prepareInput(xs[0]));
  for (std::size_t i = 1; i < xs.size(); ++i) {
    TFJS_SHAPE_CHECK(xs[i].rank() == rank, "concat rank mismatch");
    for (int d = 0; d < rank; ++d) {
      if (d == norm) continue;
      TFJS_SHAPE_CHECK(
          xs[i].shape()[d] == outDims[static_cast<std::size_t>(d)],
          "concat shape mismatch on axis " << d);
    }
    outDims[static_cast<std::size_t>(norm)] += xs[i].shape()[norm];
    specs.push_back(E().prepareInput(xs[i]));
  }
  const Shape outShape(outDims);
  const DataId id = E().backend().concat(specs, norm, outShape);
  Tensor y = k.wrap(id, outShape, xs[0].dtype());
  {
    const double axisAttr[] = {static_cast<double>(norm)};
    internal::observeOp(OpId::kConcat, xs, y, axisAttr);
  }

  if (TapeRecorder* tape = E().tape()) {
    std::vector<Tensor> ins(xs.begin(), xs.end());
    if (tape->watched(ins)) {
      std::vector<int> sizes;
      for (const auto& t : xs) sizes.push_back(t.shape()[norm]);
      tape->record("concat", ins, y, [sizes, norm, rank](const Tensor& dy) {
        std::vector<Tensor> grads;
        int offset = 0;
        for (int s : sizes) {
          std::vector<int> begin(static_cast<std::size_t>(rank), 0);
          std::vector<int> size = dy.shape().dims();
          begin[static_cast<std::size_t>(norm)] = offset;
          size[static_cast<std::size_t>(norm)] = s;
          grads.push_back(slice(dy, begin, size));
          offset += s;
        }
        return grads;
      });
    }
  }
  return y;
}

Tensor concat(std::initializer_list<Tensor> xs, int axis) {
  return concat(std::span<const Tensor>(xs.begin(), xs.size()), axis);
}

Tensor stack(std::span<const Tensor> xs, int axis) {
  TFJS_ARG_CHECK(!xs.empty(), "stack requires at least one tensor");
  std::vector<Tensor> expanded;
  expanded.reserve(xs.size());
  for (const auto& t : xs) expanded.push_back(expandDims(t, axis));
  Tensor y = concat(expanded, axis);
  for (auto& t : expanded) t.dispose();
  return y;
}

std::vector<Tensor> unstack(const Tensor& x, int axis) {
  const int norm = axis < 0 ? axis + x.rank() : axis;
  std::vector<Tensor> parts = split(x, x.shape()[norm], norm);
  std::vector<Tensor> out;
  out.reserve(parts.size());
  for (auto& p : parts) {
    std::vector<int> dims = p.shape().dims();
    dims.erase(dims.begin() + norm);
    out.push_back(reshape(p, Shape(dims)));
    p.dispose();
  }
  return out;
}

std::vector<Tensor> split(const Tensor& x, int numSplits, int axis) {
  const int norm = axis < 0 ? axis + x.rank() : axis;
  TFJS_SHAPE_CHECK(norm >= 0 && norm < x.rank(), "split axis out of range");
  const int dim = x.shape()[norm];
  TFJS_SHAPE_CHECK(numSplits > 0 && dim % numSplits == 0,
                   "split: axis size " << dim << " not divisible by "
                                       << numSplits);
  const int part = dim / numSplits;
  std::vector<Tensor> out;
  for (int i = 0; i < numSplits; ++i) {
    std::vector<int> begin(static_cast<std::size_t>(x.rank()), 0);
    std::vector<int> size = x.shape().dims();
    begin[static_cast<std::size_t>(norm)] = i * part;
    size[static_cast<std::size_t>(norm)] = part;
    out.push_back(slice(x, begin, size));
  }
  return out;
}

Tensor pad(const Tensor& x, std::span<const std::pair<int, int>> paddings,
           float constantValue) {
  TFJS_SHAPE_CHECK(static_cast<int>(paddings.size()) == x.rank(),
                   "pad expects one (before, after) pair per axis");
  std::vector<int> outDims = x.shape().dims();
  for (int d = 0; d < x.rank(); ++d) {
    const auto& [before, after] = paddings[static_cast<std::size_t>(d)];
    TFJS_ARG_CHECK(before >= 0 && after >= 0, "pad amounts must be >= 0");
    outDims[static_cast<std::size_t>(d)] += before + after;
  }
  const Shape outShape(outDims);
  internal::CaptureFrame frame;
  internal::KernelScope k("pad");
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().pad(sx, paddings, constantValue, outShape);
  Tensor y = k.wrap(id, outShape, x.dtype());
  if (internal::observing()) {
    std::vector<double> attrs{static_cast<double>(constantValue)};
    for (const auto& [before, after] : paddings) {
      attrs.push_back(static_cast<double>(before));
      attrs.push_back(static_cast<double>(after));
    }
    internal::observeOp(OpId::kPad, {x}, y, attrs);
  }
  const std::vector<std::pair<int, int>> padsV(paddings.begin(),
                                               paddings.end());
  record("pad", {x}, y, [x, padsV](const Tensor& dy) {
    std::vector<int> begin, size;
    for (int d = 0; d < x.rank(); ++d) {
      begin.push_back(padsV[static_cast<std::size_t>(d)].first);
      size.push_back(x.shape()[d]);
    }
    return std::vector<Tensor>{slice(dy, begin, size)};
  });
  return y;
}

Tensor gather(const Tensor& x, const Tensor& indices, int axis) {
  const int norm = axis < 0 ? axis + x.rank() : axis;
  TFJS_SHAPE_CHECK(norm >= 0 && norm < x.rank(), "gather axis out of range");
  TFJS_SHAPE_CHECK(indices.rank() == 1, "gather expects 1-D indices");
  std::vector<int> outDims = x.shape().dims();
  outDims[static_cast<std::size_t>(norm)] =
      static_cast<int>(indices.size());
  const Shape outShape(outDims);
  internal::KernelScope k("gather");
  const TensorSpec sx = E().prepareInput(x);
  const TensorSpec si = E().prepareInput(indices);
  const DataId id = E().backend().gather(sx, si, norm, outShape);
  Tensor y = k.wrap(id, outShape, x.dtype());
  if (norm == 0) {
    // Scatter-add adjoint expressed as a one-hot matmul (axis 0 only — the
    // embedding-lookup case): dx = oneHot(indices)^T · dy. The indices are
    // a recorded input (so they stay alive for backward) with no gradient.
    record("gather", {x, indices}, y, [x, indices](const Tensor& dy) {
      internal::TapePause pause;
      const int axisDim = x.shape()[0];
      const int inner = static_cast<int>(x.size()) / std::max(axisDim, 1);
      Tensor hot = oneHot(indices, axisDim);  // [n, axisDim]
      Tensor dy2d = dy.reshape(
          Shape{static_cast<int>(indices.size()), inner});
      Tensor dx2d = matMul(hot, dy2d, /*transposeA=*/true);
      Tensor dx = dx2d.reshape(x.shape());
      hot.dispose();
      dy2d.dispose();
      dx2d.dispose();
      return std::vector<Tensor>{dx, Tensor()};  // indices: no gradient
    });
  }
  return y;
}

Tensor tile(const Tensor& x, std::span<const int> reps) {
  TFJS_SHAPE_CHECK(static_cast<int>(reps.size()) == x.rank(),
                   "tile expects one repetition count per axis");
  std::vector<int> outDims = x.shape().dims();
  for (int d = 0; d < x.rank(); ++d) {
    TFJS_ARG_CHECK(reps[static_cast<std::size_t>(d)] >= 1,
                   "tile reps must be >= 1");
    outDims[static_cast<std::size_t>(d)] *= reps[static_cast<std::size_t>(d)];
  }
  const Shape outShape(outDims);
  internal::KernelScope k("tile");
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().tile(sx, reps, outShape);
  return k.wrap(id, outShape, x.dtype());
}

Tensor reverse(const Tensor& x, std::span<const int> axes) {
  const std::vector<int> norm = util::normalizeAxes(axes, x.rank());
  internal::KernelScope k("reverse");
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().reverse(sx, norm);
  Tensor y = k.wrap(id, x.shape(), x.dtype());
  record("reverse", {x}, y, [norm](const Tensor& dy) {
    return std::vector<Tensor>{reverse(dy, norm)};
  });
  return y;
}

Tensor expandDims(const Tensor& x, int axis) {
  const int norm = axis < 0 ? axis + x.rank() + 1 : axis;
  TFJS_SHAPE_CHECK(norm >= 0 && norm <= x.rank(),
                   "expandDims axis out of range");
  std::vector<int> dims = x.shape().dims();
  dims.insert(dims.begin() + norm, 1);
  return reshape(x, Shape(dims));
}

Tensor squeeze(const Tensor& x) { return reshape(x, x.shape().squeezed()); }

Tensor resizeBilinear(const Tensor& x, int newH, int newW,
                      bool alignCorners) {
  TFJS_SHAPE_CHECK(x.rank() == 4, "resizeBilinear expects NHWC input");
  TFJS_ARG_CHECK(newH > 0 && newW > 0, "resizeBilinear size must be > 0");
  internal::KernelScope k("resizeBilinear");
  const TensorSpec sx = E().prepareInput(x);
  const DataId id = E().backend().resizeBilinear(sx, newH, newW, alignCorners);
  const Shape outShape{x.shape()[0], newH, newW, x.shape()[3]};
  return k.wrap(id, outShape, x.dtype());
}

Tensor oneHot(const Tensor& indices, int depth, float onValue,
              float offValue) {
  TFJS_ARG_CHECK(depth > 0, "oneHot depth must be > 0");
  internal::KernelScope k("oneHot");
  const TensorSpec si = E().prepareInput(indices);
  const DataId id = E().backend().oneHot(si, depth, onValue, offValue);
  std::vector<int> outDims = indices.shape().dims();
  outDims.push_back(depth);
  return k.wrap(id, Shape(outDims), DType::f32);
}

}  // namespace tfjs::ops
