// Fused matMul/conv2d: bias add + activation folded into the producing
// kernel on backends that support it (supportsFusedKernels()), mirroring
// tf.fused.matMul / the upstream fused conv path that Layers' Dense and
// Conv2D emit. Backends without fused kernels get the equivalent
// composition of public ops; both paths are bit-identical to the unfused
// chain on the active backend — the epilogue applies exactly the same
// scalar formulas after the full accumulation (see DESIGN.md "Memory
// reuse").
#include "core/metrics.h"
#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;
using internal::reduceGradTo;

namespace {

/// Normalizes a rank-2 tensor to rank-3 with batch 1 (alias, free).
Tensor to3d(const Tensor& t) {
  if (t.rank() == 3) return t.clone();
  return t.reshape(Shape{1, t.shape()[0], t.shape()[1]});
}

/// Applies the consumed activation when composing from public ops.
Tensor applyActivationOp(FusedActivation act, Tensor&& y) {
  switch (act) {
    case FusedActivation::kNone:
      return std::move(y);
    case FusedActivation::kRelu:
      return relu(std::move(y));
    case FusedActivation::kRelu6:
      return relu6(std::move(y));
    case FusedActivation::kSigmoid:
      return sigmoid(std::move(y));
  }
  throw InternalError("unknown FusedActivation");
}

/// dL/d(pre-activation) from dy and the fused output y. Every supported
/// activation's derivative is expressible from its own output, so the
/// pre-activation values never need to be materialized.
Tensor activationGrad(FusedActivation act, const Tensor& dy, const Tensor& y) {
  switch (act) {
    case FusedActivation::kNone:
      return dy.clone();
    case FusedActivation::kRelu:
      return mul(dy, cast(greater(y, scalar(0)), DType::f32));
    case FusedActivation::kRelu6:
      return mul(dy, cast(logicalAnd(greater(y, scalar(0)),
                                     less(y, scalar(6))),
                          DType::f32));
    case FusedActivation::kSigmoid:
      return mul(dy, mul(y, sub(scalar(1), y)));
  }
  throw InternalError("unknown FusedActivation");
}

/// The four transpose-case matMul adjoints (same as matmul.cc) applied to
/// the pre-activation gradient dt.
std::pair<Tensor, Tensor> matMulAdjoints(const Tensor& a, const Tensor& b,
                                         bool transposeA, bool transposeB,
                                         const Tensor& dt) {
  Tensor da3, db3;
  if (!transposeA && !transposeB) {
    da3 = matMul(dt, b, false, true);
    db3 = matMul(a, dt, true, false);
  } else if (!transposeA && transposeB) {
    da3 = matMul(dt, b, false, false);
    db3 = matMul(dt, a, true, false);
  } else if (transposeA && !transposeB) {
    da3 = matMul(b, dt, false, true);
    db3 = matMul(a, dt, false, false);
  } else {
    da3 = matMul(b, dt, true, true);
    db3 = matMul(dt, a, true, true);
  }
  Tensor da = reduceGradTo(da3, a.shape());
  Tensor db = reduceGradTo(db3, b.shape());
  da3.dispose();
  db3.dispose();
  return {da, db};
}

Tensor convBackpropInput(const Tensor& dy, const Tensor& filter,
                         const Conv2DInfo& info) {
  internal::KernelScope k("conv2dBackpropInput");
  const TensorSpec sdy = E().prepareInput(dy);
  const TensorSpec sf = E().prepareInput(filter);
  const DataId id = E().backend().conv2dBackpropInput(sdy, sf, info);
  return k.wrap(id, Shape{info.batch, info.inH, info.inW, info.inC},
                DType::f32);
}

Tensor convBackpropFilter(const Tensor& x, const Tensor& dy,
                          const Conv2DInfo& info) {
  internal::KernelScope k("conv2dBackpropFilter");
  const TensorSpec sx = E().prepareInput(x);
  const TensorSpec sdy = E().prepareInput(dy);
  const DataId id = E().backend().conv2dBackpropFilter(sx, sdy, info);
  return k.wrap(id, Shape{info.filterH, info.filterW, info.inC, info.outC},
                DType::f32);
}

}  // namespace

std::optional<FusedActivation> fusibleActivation(const std::string& name) {
  if (name.empty() || name == "linear") return FusedActivation::kNone;
  if (name == "relu") return FusedActivation::kRelu;
  if (name == "relu6") return FusedActivation::kRelu6;
  if (name == "sigmoid") return FusedActivation::kSigmoid;
  return std::nullopt;
}

Tensor fusedMatMul(const Tensor& a, const Tensor& b, const Tensor& bias,
                   FusedActivation act, bool transposeA, bool transposeB) {
  TFJS_SHAPE_CHECK(a.rank() == 2 || a.rank() == 3,
                   "fusedMatMul expects rank 2 or 3 for a, got " << a.rank());
  TFJS_SHAPE_CHECK(b.rank() == 2 || b.rank() == 3,
                   "fusedMatMul expects rank 2 or 3 for b, got " << b.rank());

  // Int8 weights route to the quantized kernel (inference-only; the
  // transposed cases fall back to dequantized f32 weights).
  if (b.dtype() == DType::i8 && b.quantParams() != nullptr) {
    if (!transposeA && !transposeB) return quantizedMatMul(a, b, bias, act);
    Tensor bf = dequantize(b);
    Tensor y = fusedMatMul(a, bf, bias, act, transposeA, transposeB);
    bf.dispose();
    return y;
  }

  // One recorded node for either execution strategy below.
  internal::CaptureFrame frame;
  const auto observe = [&](const Tensor& y) {
    const std::initializer_list<double> attrs{
        static_cast<double>(act), static_cast<double>(transposeA),
        static_cast<double>(transposeB),
        static_cast<double>(bias.defined())};
    if (bias.defined()) {
      internal::observeOp(OpId::kFusedMatMul, {a, b, bias}, y, attrs);
    } else {
      internal::observeOp(OpId::kFusedMatMul, {a, b}, y, attrs);
    }
  };

  if (!E().backend().supportsFusedKernels()) {
    // Compose from public ops; each records its own gradient, and the
    // move-consuming overloads reclaim the intermediates (on the webgl-sim
    // backend this keeps every intermediate alive until its consumer has
    // been queued, which a backend-level dispose could not guarantee).
    Tensor y = matMul(a, b, transposeA, transposeB);
    if (bias.defined()) y = add(std::move(y), bias);
    y = applyActivationOp(act, std::move(y));
    observe(y);
    return y;
  }

  static metrics::Counter& fusions =
      metrics::Registry::get().counter("fusion.matmul");
  fusions.inc();

  internal::KernelScope k("fusedMatMul");
  Tensor y;
  {
    internal::TapePause pause;
    Tensor a3 = to3d(a);
    Tensor b3 = to3d(b);
    const int kA = transposeA ? a3.shape()[1] : a3.shape()[2];
    const int kB = transposeB ? b3.shape()[2] : b3.shape()[1];
    TFJS_SHAPE_CHECK(kA == kB, "fusedMatMul inner dimensions must agree: "
                                   << a.shape().toString() << " x "
                                   << b.shape().toString());
    const int bA = a3.shape()[0], bB = b3.shape()[0];
    TFJS_SHAPE_CHECK(bA == bB || bA == 1 || bB == 1,
                     "fusedMatMul batch dims must match or broadcast");
    const int m = transposeA ? a3.shape()[2] : a3.shape()[1];
    const int n = transposeB ? b3.shape()[1] : b3.shape()[2];
    const TensorSpec sa = E().prepareInput(a3);
    const TensorSpec sb = E().prepareInput(b3);
    TensorSpec sbias;
    const TensorSpec* biasPtr = nullptr;
    if (bias.defined()) {
      TFJS_SHAPE_CHECK(bias.rank() == 1 && bias.shape()[0] == n,
                       "fusedMatMul bias must be rank 1 of length "
                           << n << ", got " << bias.shape().toString());
      sbias = E().prepareInput(bias);
      biasPtr = &sbias;
    }
    const DataId id =
        E().backend().fusedMatMul(sa, sb, transposeA, transposeB, biasPtr, act);
    const Shape out3{std::max(bA, bB), m, n};
    Tensor y3 = E().makeTensorFromDataId(id, out3, DType::f32);
    if (a.rank() == 2 && b.rank() == 2) {
      y = y3.reshape(Shape{m, n});
      y3.dispose();
    } else {
      y = y3;
    }
    a3.dispose();
    b3.dispose();
  }
  k.notify(y);
  observe(y);

  auto gradCore = [a, b, transposeA, transposeB, act, y](const Tensor& dy) {
    Tensor dt = activationGrad(act, dy, y);
    auto [da, db] = matMulAdjoints(a, b, transposeA, transposeB, dt);
    return std::make_tuple(dt, da, db);
  };
  if (bias.defined()) {
    record("fusedMatMul", {a, b, bias}, y,
           [gradCore, bias](const Tensor& dy) {
             auto [dt, da, db] = gradCore(dy);
             Tensor dbias = reduceGradTo(dt, bias.shape());
             dt.dispose();
             return std::vector<Tensor>{da, db, dbias};
           });
  } else {
    record("fusedMatMul", {a, b}, y, [gradCore](const Tensor& dy) {
      auto [dt, da, db] = gradCore(dy);
      dt.dispose();
      return std::vector<Tensor>{da, db};
    });
  }
  return y;
}

Tensor fusedConv2d(const Tensor& x, const Tensor& filter, const Tensor& bias,
                   FusedActivation act, int strideH, int strideW, PadMode pad,
                   int dilationH, int dilationW) {
  if (filter.dtype() == DType::i8 && filter.quantParams() != nullptr) {
    return quantizedConv2d(x, filter, bias, act, strideH, strideW, pad,
                           dilationH, dilationW);
  }

  // One recorded node for either execution strategy below.
  internal::CaptureFrame frame;
  const auto observe = [&](const Tensor& y) {
    const std::initializer_list<double> attrs{
        static_cast<double>(act), static_cast<double>(bias.defined()),
        static_cast<double>(strideH), static_cast<double>(strideW),
        static_cast<double>(pad), static_cast<double>(dilationH),
        static_cast<double>(dilationW)};
    if (bias.defined()) {
      internal::observeOp(OpId::kFusedConv2d, {x, filter, bias}, y, attrs);
    } else {
      internal::observeOp(OpId::kFusedConv2d, {x, filter}, y, attrs);
    }
  };

  if (!E().backend().supportsFusedKernels()) {
    Tensor y = conv2d(x, filter, strideH, strideW, pad, dilationH, dilationW);
    if (bias.defined()) y = add(std::move(y), bias);
    y = applyActivationOp(act, std::move(y));
    observe(y);
    return y;
  }

  static metrics::Counter& fusions =
      metrics::Registry::get().counter("fusion.conv2d");
  fusions.inc();

  const Conv2DInfo info = conv_util::computeConv2DInfo(
      x.shape(), filter.shape(), strideH, strideW, pad, dilationH, dilationW,
      /*depthwise=*/false);
  internal::KernelScope k("fusedConv2d");
  const TensorSpec sx = E().prepareInput(x);
  const TensorSpec sf = E().prepareInput(filter);
  TensorSpec sbias;
  const TensorSpec* biasPtr = nullptr;
  if (bias.defined()) {
    TFJS_SHAPE_CHECK(bias.rank() == 1 && bias.shape()[0] == info.outC,
                     "fusedConv2d bias must be rank 1 of length "
                         << info.outC << ", got " << bias.shape().toString());
    sbias = E().prepareInput(bias);
    biasPtr = &sbias;
  }
  const DataId id = E().backend().fusedConv2d(sx, sf, info, biasPtr, act);
  Tensor y = k.wrap(id, Shape{info.batch, info.outH, info.outW, info.outC},
                    DType::f32);
  observe(y);

  auto gradCore = [x, filter, info, act, y](const Tensor& dy) {
    Tensor dt = activationGrad(act, dy, y);
    Tensor dx = convBackpropInput(dt, filter, info);
    Tensor df = convBackpropFilter(x, dt, info);
    return std::make_tuple(dt, dx, df);
  };
  if (bias.defined()) {
    record("fusedConv2d", {x, filter, bias}, y,
           [gradCore, bias](const Tensor& dy) {
             auto [dt, dx, df] = gradCore(dy);
             Tensor dbias = reduceGradTo(dt, bias.shape());
             dt.dispose();
             return std::vector<Tensor>{dx, df, dbias};
           });
  } else {
    record("fusedConv2d", {x, filter}, y, [gradCore](const Tensor& dy) {
      auto [dt, dx, df] = gradCore(dy);
      dt.dispose();
      return std::vector<Tensor>{dx, df};
    });
  }
  return y;
}

}  // namespace tfjs::ops
