// Reductions. Internally the input is transposed (if needed) so the reduced
// axes are trailing, viewed as [outer, inner], and handed to the backend's
// reduce kernel. The internal steps run with the tape paused; each public op
// records one composite gradient.
#include <algorithm>
#include <array>

#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;

namespace internal {

Tensor reduceGradTo(const Tensor& dy, const Shape& target) {
  if (dy.shape() == target) return dy.clone();
  const std::vector<int> axes = util::broadcastedAxes(target, dy.shape());
  TapePause pause;
  Tensor summed = axes.empty() ? dy.clone() : sum(dy, axes, /*keepDims=*/true);
  Tensor out = summed.reshape(target);
  summed.dispose();
  return out;
}

}  // namespace internal

namespace {

struct ReducePlan {
  Tensor prepared;     ///< input with reduce axes trailing (may alias x)
  std::size_t outer = 1, inner = 1;
  Shape outShape;      ///< result shape (respecting keepDims)
  Shape keepShape;     ///< result shape with keepDims=true (for gradients)
  std::vector<int> axes;
};

ReducePlan plan(const Tensor& x, std::span<const int> axesIn, bool keepDims) {
  ReducePlan p;
  std::vector<int> allAxes;
  if (axesIn.empty()) {
    for (int i = 0; i < x.rank(); ++i) allAxes.push_back(i);
  } else {
    allAxes = util::normalizeAxes(axesIn, x.rank());
  }
  p.axes = allAxes;
  p.outShape = util::reducedShape(x.shape(), allAxes, keepDims);
  p.keepShape = util::reducedShape(x.shape(), allAxes, /*keepDims=*/true);

  // Are the reduce axes already trailing?
  bool trailing = true;
  for (std::size_t i = 0; i < allAxes.size(); ++i) {
    if (allAxes[i] != x.rank() - static_cast<int>(allAxes.size()) +
                          static_cast<int>(i)) {
      trailing = false;
      break;
    }
  }
  if (trailing) {
    p.prepared = x.clone();
  } else {
    std::vector<int> perm;
    for (int i = 0; i < x.rank(); ++i) {
      if (std::find(allAxes.begin(), allAxes.end(), i) == allAxes.end()) {
        perm.push_back(i);
      }
    }
    for (int a : allAxes) perm.push_back(a);
    p.prepared = transpose(x, perm);
  }
  for (int a : allAxes) p.inner *= static_cast<std::size_t>(x.shape()[a]);
  p.outer = x.size() / std::max<std::size_t>(p.inner, 1);
  if (p.inner == 0) p.inner = 1;  // reducing an empty-dim tensor
  return p;
}

Tensor dispatchReduce(const char* name, ReduceOp op, const Tensor& x,
                      std::span<const int> axes, bool keepDims, DType dtype) {
  internal::CaptureFrame frame;
  internal::KernelScope k(name);
  internal::TapePause pause;
  ReducePlan p = plan(x, axes, keepDims);
  const TensorSpec spec = E().prepareInput(p.prepared);
  const DataId id = E().backend().reduce(op, spec, p.outer, p.inner);
  Tensor flat = E().makeTensorFromDataId(
      id, Shape{static_cast<int>(p.outer)}, dtype);
  Tensor y = flat.reshape(p.outShape);
  flat.dispose();
  p.prepared.dispose();
  k.notify(y);
  if (internal::observing()) {
    // Record the resolved axes (empty input = all axes) so replay is exact.
    std::vector<double> attrs{static_cast<double>(op),
                              static_cast<double>(keepDims),
                              static_cast<double>(dtype)};
    for (int a : p.axes) attrs.push_back(static_cast<double>(a));
    internal::observeOp(OpId::kReduce, {x}, y, attrs);
  }
  return y;
}

}  // namespace

Tensor sum(const Tensor& x, std::span<const int> axes, bool keepDims) {
  Tensor y = dispatchReduce("sum", ReduceOp::kSum, x, axes, keepDims,
                            x.dtype() == DType::b8 ? DType::i32 : x.dtype());
  // Empty `axes` means all axes; recompute for the gradient closure.
  std::vector<int> allAxes = axes.empty()
                                 ? [&] {
                                     std::vector<int> v;
                                     for (int i = 0; i < x.rank(); ++i)
                                       v.push_back(i);
                                     return v;
                                   }()
                                 : util::normalizeAxes(axes, x.rank());
  const Shape keep = util::reducedShape(x.shape(), allAxes, true);
  record("sum", {x}, y, [x, keep](const Tensor& dy) {
    Tensor dyK = dy.reshape(keep);
    Tensor dx = mul(dyK, onesLike(x));
    dyK.dispose();
    return std::vector<Tensor>{dx};
  });
  return y;
}

Tensor mean(const Tensor& x, std::span<const int> axes, bool keepDims) {
  Tensor y = dispatchReduce("mean", ReduceOp::kMean, x, axes, keepDims,
                            DType::f32);
  std::vector<int> allAxes = axes.empty()
                                 ? [&] {
                                     std::vector<int> v;
                                     for (int i = 0; i < x.rank(); ++i)
                                       v.push_back(i);
                                     return v;
                                   }()
                                 : util::normalizeAxes(axes, x.rank());
  const Shape keep = util::reducedShape(x.shape(), allAxes, true);
  const float n = static_cast<float>(x.size() / std::max<std::size_t>(
                                                    keep.size(), 1));
  record("mean", {x}, y, [x, keep, n](const Tensor& dy) {
    Tensor dyK = dy.reshape(keep);
    Tensor dx = mul(divScalar(dyK, n), onesLike(x));
    dyK.dispose();
    return std::vector<Tensor>{dx};
  });
  return y;
}

namespace {
/// Shared gradient for max/min: route dy to the extremal positions.
GradFunc extremeGrad(const Tensor& x, const Tensor& y, const Shape& keep) {
  return [x, y, keep](const Tensor& dy) {
    Tensor yK = y.reshape(keep);
    Tensor dyK = dy.reshape(keep);
    Tensor mask = cast(equal(x, yK), DType::f32);
    Tensor dx = mul(dyK, mask);
    yK.dispose();
    dyK.dispose();
    mask.dispose();
    return std::vector<Tensor>{dx};
  };
}
}  // namespace

Tensor max(const Tensor& x, std::span<const int> axes, bool keepDims) {
  Tensor y =
      dispatchReduce("max", ReduceOp::kMax, x, axes, keepDims, x.dtype());
  std::vector<int> allAxes = axes.empty()
                                 ? [&] {
                                     std::vector<int> v;
                                     for (int i = 0; i < x.rank(); ++i)
                                       v.push_back(i);
                                     return v;
                                   }()
                                 : util::normalizeAxes(axes, x.rank());
  const Shape keep = util::reducedShape(x.shape(), allAxes, true);
  record("max", {x}, y, extremeGrad(x, y, keep));
  return y;
}

Tensor min(const Tensor& x, std::span<const int> axes, bool keepDims) {
  Tensor y =
      dispatchReduce("min", ReduceOp::kMin, x, axes, keepDims, x.dtype());
  std::vector<int> allAxes = axes.empty()
                                 ? [&] {
                                     std::vector<int> v;
                                     for (int i = 0; i < x.rank(); ++i)
                                       v.push_back(i);
                                     return v;
                                   }()
                                 : util::normalizeAxes(axes, x.rank());
  const Shape keep = util::reducedShape(x.shape(), allAxes, true);
  record("min", {x}, y, extremeGrad(x, y, keep));
  return y;
}

Tensor prod(const Tensor& x, std::span<const int> axes, bool keepDims) {
  return dispatchReduce("prod", ReduceOp::kProd, x, axes, keepDims, x.dtype());
}

Tensor any(const Tensor& x, std::span<const int> axes, bool keepDims) {
  return dispatchReduce("any", ReduceOp::kAny, x, axes, keepDims, DType::b8);
}

Tensor all(const Tensor& x, std::span<const int> axes, bool keepDims) {
  return dispatchReduce("all", ReduceOp::kAll, x, axes, keepDims, DType::b8);
}

namespace {
Tensor dispatchArg(const char* name, ArgOp op, const Tensor& x, int axis) {
  internal::CaptureFrame frame;
  internal::KernelScope k(name);
  internal::TapePause pause;
  const int norm = axis < 0 ? axis + x.rank() : axis;
  TFJS_SHAPE_CHECK(norm >= 0 && norm < x.rank(),
                   name << ": axis " << axis << " out of range for rank "
                        << x.rank());
  const std::array<int, 1> axes{norm};
  ReducePlan p = plan(x, axes, /*keepDims=*/false);
  const TensorSpec spec = E().prepareInput(p.prepared);
  const DataId id = E().backend().arg(op, spec, p.outer, p.inner);
  Tensor flat = E().makeTensorFromDataId(
      id, Shape{static_cast<int>(p.outer)}, DType::i32);
  Tensor y = flat.reshape(p.outShape);
  flat.dispose();
  p.prepared.dispose();
  k.notify(y);
  internal::observeOp(OpId::kArg, {x}, y,
                      {static_cast<double>(op), static_cast<double>(norm)});
  return y;
}
}  // namespace

Tensor argMax(const Tensor& x, int axis) {
  return dispatchArg("argMax", ArgOp::kArgMax, x, axis);
}

Tensor argMin(const Tensor& x, int axis) {
  return dispatchArg("argMin", ArgOp::kArgMin, x, axis);
}

}  // namespace tfjs::ops
