// Quantization ops: int8 weight/activation codecs and the quantized
// matMul/conv2d entry points (DESIGN.md "Quantized execution").
//
// The quantized kernels are inference-only — none of these ops record a
// gradient. Weight quantization runs on the host (it happens once, at
// conversion or load time); dequantize composes on-device ops so device
// backends keep their dataflow.
#include <cmath>

#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;

namespace {

/// Normalizes a rank-2 tensor to rank-3 with batch 1 (alias, free).
Tensor to3d(const Tensor& t) {
  if (t.rank() == 3) return t.clone();
  return t.reshape(Shape{1, t.shape()[0], t.shape()[1]});
}

float clampCode(float code) {
  return std::min(std::max(code, static_cast<float>(kInt8Min)),
                  static_cast<float>(kInt8Max));
}

}  // namespace

Tensor quantizePerChannel(const Tensor& w) {
  TFJS_ARG_CHECK(w.dtype() == DType::f32,
                 "quantizePerChannel expects an f32 tensor, got "
                     << dtypeName(w.dtype()));
  TFJS_SHAPE_CHECK(w.rank() >= 2,
                   "quantizePerChannel expects rank >= 2, got " << w.rank());
  const std::vector<float> data = w.dataSync();
  const int n = w.shape()[w.rank() - 1];
  const std::size_t rows = data.size() / static_cast<std::size_t>(n);

  auto params = std::make_shared<QuantParams>();
  params->axis = w.rank() - 1;
  params->scale.assign(static_cast<std::size_t>(n), 0.f);
  params->zeroPoint.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = data.data() + r * n;
    for (int j = 0; j < n; ++j) {
      params->scale[j] = std::max(params->scale[j], std::fabs(row[j]));
    }
  }
  for (int j = 0; j < n; ++j) {
    params->scale[j] =
        params->scale[j] > 0 ? params->scale[j] / kInt8Max : 0.f;
  }

  std::vector<float> codes(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float s = params->scale[i % static_cast<std::size_t>(n)];
    codes[i] =
        s > 0 ? clampCode(static_cast<float>(std::lround(data[i] / s))) : 0.f;
  }
  Tensor q = tensor(codes, w.shape(), DType::i8);
  q.setQuantParams(std::move(params));
  return q;
}

Tensor quantize(const Tensor& x, float scale, std::int32_t zeroPoint) {
  TFJS_ARG_CHECK(x.dtype() == DType::f32,
                 "quantize expects an f32 tensor, got "
                     << dtypeName(x.dtype()));
  TFJS_ARG_CHECK(scale > 0, "quantize scale must be positive, got " << scale);
  internal::CaptureFrame frame;
  const std::vector<float> data = x.dataSync();
  std::vector<float> codes(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    codes[i] = clampCode(static_cast<float>(
        std::lround(data[i] / scale) + zeroPoint));
  }
  Tensor q = tensor(codes, x.shape(), DType::i8);
  q.setQuantParams(
      std::make_shared<QuantParams>(QuantParams::perTensor(scale, zeroPoint)));
  internal::observeOp(OpId::kQuantize, {x}, q,
                      {static_cast<double>(scale),
                       static_cast<double>(zeroPoint)});
  return q;
}

Tensor dequantize(const Tensor& q) {
  TFJS_ARG_CHECK(q.dtype() == DType::i8 && q.quantParams() != nullptr,
                 "dequantize expects an int8 tensor with attached "
                 "quantization parameters");
  const QuantParamsPtr qp = q.quantParams();
  qp->validate();
  internal::CaptureFrame frame;
  internal::KernelScope k("dequantize");
  Tensor y;
  {
    internal::TapePause pause;
    Tensor qf = cast(q, DType::f32);  // alias; drops the quant metadata
    if (!qp->perChannel()) {
      Tensor shifted = qp->zeroPointFor(0) != 0
                           ? addScalar(qf, -static_cast<float>(
                                               qp->zeroPointFor(0)))
                           : qf.clone();
      y = mulScalar(shifted, qp->scaleFor(0));
      shifted.dispose();
    } else {
      TFJS_SHAPE_CHECK(
          qp->channels() ==
              static_cast<std::size_t>(q.shape()[q.rank() - 1]),
          "dequantize per-channel parameter count must match the last axis");
      Tensor scaleT = tensor1d(qp->scale);
      if (qp->symmetric()) {
        y = mul(qf, scaleT);
      } else {
        std::vector<float> zps(qp->zeroPoint.begin(), qp->zeroPoint.end());
        Tensor zpT = tensor1d(zps);
        Tensor centered = sub(qf, zpT);
        y = mul(centered, scaleT);
        centered.dispose();
        zpT.dispose();
      }
      scaleT.dispose();
    }
    qf.dispose();
  }
  k.notify(y);
  internal::observeOp(OpId::kDequantize, {q}, y);
  return y;
}

Tensor quantizedMatMul(const Tensor& a, const Tensor& b, const Tensor& bias,
                       FusedActivation act, const OutQuant* outQ) {
  TFJS_ARG_CHECK(a.dtype() == DType::f32,
                 "quantizedMatMul expects f32 activations, got "
                     << dtypeName(a.dtype()));
  TFJS_ARG_CHECK(b.dtype() == DType::i8 && b.quantParams() != nullptr,
                 "quantizedMatMul expects int8 weights with attached "
                 "quantization parameters");
  TFJS_SHAPE_CHECK(a.rank() == 2 || a.rank() == 3,
                   "quantizedMatMul expects rank 2 or 3 for a, got "
                       << a.rank());
  TFJS_SHAPE_CHECK(b.rank() == 2 || b.rank() == 3,
                   "quantizedMatMul expects rank 2 or 3 for b, got "
                       << b.rank());

  // One recorded node whether the backend has quantized kernels or falls
  // back to dequantize + fused f32.
  internal::CaptureFrame frame;
  const auto observe = [&](const Tensor& y) {
    const std::initializer_list<double> attrs{
        static_cast<double>(act), static_cast<double>(bias.defined()),
        static_cast<double>(outQ != nullptr),
        outQ != nullptr ? static_cast<double>(outQ->scale) : 0.0,
        outQ != nullptr ? static_cast<double>(outQ->zeroPoint) : 0.0};
    if (bias.defined()) {
      internal::observeOp(OpId::kQuantMatMul, {a, b, bias}, y, attrs);
    } else {
      internal::observeOp(OpId::kQuantMatMul, {a, b}, y, attrs);
    }
  };

  if (!E().backend().supportsQuantizedKernels()) {
    // Device backends keep their f32 dataflow: dequantize the weights once
    // and run the fused path, requantizing at the edge if requested.
    Tensor bf = dequantize(b);
    Tensor y = fusedMatMul(a, bf, bias, act);
    bf.dispose();
    if (outQ != nullptr) {
      Tensor qy = quantize(y, outQ->scale, outQ->zeroPoint);
      y.dispose();
      observe(qy);
      return qy;
    }
    observe(y);
    return y;
  }

  internal::KernelScope k("quantizedMatMul");
  Tensor y;
  {
    internal::TapePause pause;
    Tensor a3 = to3d(a);
    Tensor b3 = to3d(b);  // alias: per-channel params survive (last axis kept)
    TFJS_SHAPE_CHECK(a3.shape()[2] == b3.shape()[1],
                     "quantizedMatMul inner dimensions must agree: "
                         << a.shape().toString() << " x "
                         << b.shape().toString());
    TFJS_SHAPE_CHECK(b3.shape()[0] == 1,
                     "quantizedMatMul weights cannot be batched");
    const int m = a3.shape()[1], n = b3.shape()[2];
    const TensorSpec sa = E().prepareInput(a3);
    const TensorSpec sb = E().prepareInput(b3);
    TensorSpec sbias;
    const TensorSpec* biasPtr = nullptr;
    if (bias.defined()) {
      TFJS_SHAPE_CHECK(bias.rank() == 1 && bias.shape()[0] == n,
                       "quantizedMatMul bias must be rank 1 of length "
                           << n << ", got " << bias.shape().toString());
      sbias = E().prepareInput(bias);
      biasPtr = &sbias;
    }
    const DataId id = E().backend().quantizedMatMul(
        sa, sb, *b3.quantParams(), biasPtr, act, outQ);
    const Shape out3{a3.shape()[0], m, n};
    const DType outDtype = outQ != nullptr ? DType::i8 : DType::f32;
    Tensor y3 = E().makeTensorFromDataId(id, out3, outDtype);
    if (outQ != nullptr) {
      y3.setQuantParams(std::make_shared<QuantParams>(
          QuantParams::perTensor(outQ->scale, outQ->zeroPoint)));
    }
    if (a.rank() == 2 && b.rank() == 2) {
      y = y3.reshape(Shape{m, n});
      y3.dispose();
    } else {
      y = y3;
    }
    a3.dispose();
    b3.dispose();
  }
  k.notify(y);
  observe(y);
  return y;
}

Tensor quantizedConv2d(const Tensor& x, const Tensor& filter,
                       const Tensor& bias, FusedActivation act, int strideH,
                       int strideW, PadMode pad, int dilationH, int dilationW,
                       const OutQuant* outQ) {
  TFJS_ARG_CHECK(x.dtype() == DType::f32,
                 "quantizedConv2d expects f32 activations, got "
                     << dtypeName(x.dtype()));
  TFJS_ARG_CHECK(filter.dtype() == DType::i8 &&
                     filter.quantParams() != nullptr,
                 "quantizedConv2d expects an int8 filter with attached "
                 "quantization parameters");

  internal::CaptureFrame frame;
  const auto observe = [&](const Tensor& y) {
    const std::initializer_list<double> attrs{
        static_cast<double>(act), static_cast<double>(bias.defined()),
        static_cast<double>(outQ != nullptr),
        outQ != nullptr ? static_cast<double>(outQ->scale) : 0.0,
        outQ != nullptr ? static_cast<double>(outQ->zeroPoint) : 0.0,
        static_cast<double>(strideH), static_cast<double>(strideW),
        static_cast<double>(pad), static_cast<double>(dilationH),
        static_cast<double>(dilationW)};
    if (bias.defined()) {
      internal::observeOp(OpId::kQuantConv2d, {x, filter, bias}, y, attrs);
    } else {
      internal::observeOp(OpId::kQuantConv2d, {x, filter}, y, attrs);
    }
  };

  if (!E().backend().supportsQuantizedKernels()) {
    Tensor ff = dequantize(filter);
    Tensor y = fusedConv2d(x, ff, bias, act, strideH, strideW, pad, dilationH,
                           dilationW);
    ff.dispose();
    if (outQ != nullptr) {
      Tensor qy = quantize(y, outQ->scale, outQ->zeroPoint);
      y.dispose();
      observe(qy);
      return qy;
    }
    observe(y);
    return y;
  }

  const Conv2DInfo info = conv_util::computeConv2DInfo(
      x.shape(), filter.shape(), strideH, strideW, pad, dilationH, dilationW,
      /*depthwise=*/false);
  internal::KernelScope k("quantizedConv2d");
  Tensor y;
  {
    internal::TapePause pause;
    const TensorSpec sx = E().prepareInput(x);
    const TensorSpec sf = E().prepareInput(filter);
    TensorSpec sbias;
    const TensorSpec* biasPtr = nullptr;
    if (bias.defined()) {
      TFJS_SHAPE_CHECK(bias.rank() == 1 && bias.shape()[0] == info.outC,
                       "quantizedConv2d bias must be rank 1 of length "
                           << info.outC << ", got "
                           << bias.shape().toString());
      sbias = E().prepareInput(bias);
      biasPtr = &sbias;
    }
    const DataId id = E().backend().quantizedConv2d(
        sx, sf, info, *filter.quantParams(), biasPtr, act, outQ);
    const DType outDtype = outQ != nullptr ? DType::i8 : DType::f32;
    y = E().makeTensorFromDataId(
        id, Shape{info.batch, info.outH, info.outW, info.outC}, outDtype);
    if (outQ != nullptr) {
      y.setQuantParams(std::make_shared<QuantParams>(
          QuantParams::perTensor(outQ->scale, outQ->zeroPoint)));
    }
  }
  k.notify(y);
  observe(y);
  return y;
}

}  // namespace tfjs::ops
