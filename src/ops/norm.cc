// Softmax / logSoftmax (custom composite gradients), batch normalization
// (fully composite — gradients fall out of the tape), and dropout.
#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;

Tensor softmax(const Tensor& logits, int axis) {
  const int norm = axis < 0 ? axis + logits.rank() : axis;
  TFJS_SHAPE_CHECK(norm == logits.rank() - 1,
                   "softmax currently supports the last axis only");
  internal::CaptureFrame frame;
  internal::KernelScope k("softmax");
  Tensor y;
  {
    internal::TapePause pause;
    const std::array<int, 1> axes{norm};
    Tensor mx = max(logits, axes, /*keepDims=*/true);
    Tensor shifted = sub(logits, mx);
    Tensor e = exp(shifted);
    Tensor denom = sum(e, axes, /*keepDims=*/true);
    y = div(e, denom);
    mx.dispose();
    shifted.dispose();
    e.dispose();
    denom.dispose();
  }
  k.notify(y);
  internal::observeOp(OpId::kSoftmax, {logits}, y,
                      {static_cast<double>(norm)});
  const int lastAxis = norm;
  record("softmax", {logits}, y, [y, lastAxis](const Tensor& dy) {
    // dx = (dy - sum(dy * y, axis, keep)) * y
    const std::array<int, 1> axes{lastAxis};
    Tensor dyTimesY = mul(dy, y);
    Tensor s = sum(dyTimesY, axes, /*keepDims=*/true);
    Tensor dx = mul(sub(dy, s), y);
    dyTimesY.dispose();
    s.dispose();
    return std::vector<Tensor>{dx};
  });
  return y;
}

Tensor logSoftmax(const Tensor& logits, int axis) {
  const int norm = axis < 0 ? axis + logits.rank() : axis;
  TFJS_SHAPE_CHECK(norm == logits.rank() - 1,
                   "logSoftmax currently supports the last axis only");
  internal::CaptureFrame frame;
  internal::KernelScope k("logSoftmax");
  Tensor y;
  {
    internal::TapePause pause;
    const std::array<int, 1> axes{norm};
    Tensor mx = max(logits, axes, true);
    Tensor shifted = sub(logits, mx);
    Tensor e = exp(shifted);
    Tensor denom = sum(e, axes, true);
    Tensor logDenom = log(denom);
    y = sub(shifted, logDenom);
    mx.dispose();
    shifted.dispose();
    e.dispose();
    denom.dispose();
    logDenom.dispose();
  }
  k.notify(y);
  internal::observeOp(OpId::kLogSoftmax, {logits}, y,
                      {static_cast<double>(norm)});
  const int lastAxis = norm;
  record("logSoftmax", {logits}, y, [y, lastAxis](const Tensor& dy) {
    // dx = dy - softmax(x) * sum(dy, axis, keep)
    const std::array<int, 1> axes{lastAxis};
    Tensor sm = exp(y);
    Tensor s = sum(dy, axes, true);
    Tensor dx = sub(dy, mul(sm, s));
    sm.dispose();
    s.dispose();
    return std::vector<Tensor>{dx};
  });
  return y;
}

Tensor batchNorm(const Tensor& x, const Tensor& mean, const Tensor& variance,
                 const Tensor& offset, const Tensor& scale,
                 float varianceEpsilon) {
  // Fully composite: every step is a recorded elementary op, so gradients
  // w.r.t. x / mean / variance / offset / scale come from the tape.
  return Engine::get().tidy([&] {
    Tensor inv = rsqrt(addScalar(variance, varianceEpsilon));
    Tensor normed = mul(sub(x, mean), inv);
    return add(mul(normed, scale), offset);
  });
}

Tensor dropout(const Tensor& x, float rate, std::uint64_t seed) {
  TFJS_ARG_CHECK(rate >= 0 && rate < 1, "dropout rate must be in [0, 1)");
  if (rate == 0) return x.clone();
  return Engine::get().tidy([&] {
    Tensor noise = randomUniform(x.shape(), 0, 1, seed);
    Tensor mask = cast(greaterEqual(noise, scalar(rate)), DType::f32);
    return div(mul(x, mask), scalar(1.0f - rate));
  });
}

}  // namespace tfjs::ops
