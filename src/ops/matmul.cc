// Matrix multiplication (rank-2 or batched rank-3, mirroring tf.matMul),
// with the standard four-case transpose gradients.
#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;
using internal::reduceGradTo;

namespace {

/// Normalizes a rank-2 tensor to rank-3 with batch 1 (alias, free).
Tensor to3d(const Tensor& t) {
  if (t.rank() == 3) return t.clone();
  return t.reshape(Shape{1, t.shape()[0], t.shape()[1]});
}

}  // namespace

Tensor matMul(const Tensor& a, const Tensor& b, bool transposeA,
              bool transposeB) {
  TFJS_SHAPE_CHECK(a.rank() == 2 || a.rank() == 3,
                   "matMul expects rank 2 or 3 for a, got " << a.rank());
  TFJS_SHAPE_CHECK(b.rank() == 2 || b.rank() == 3,
                   "matMul expects rank 2 or 3 for b, got " << b.rank());

  // Int8 weights route to the quantized kernel (inference-only; the
  // transposed cases fall back to dequantized f32 weights).
  if (b.dtype() == DType::i8 && b.quantParams() != nullptr) {
    if (!transposeA && !transposeB) {
      return quantizedMatMul(a, b, Tensor{}, FusedActivation::kNone);
    }
    Tensor bf = dequantize(b);
    Tensor y = matMul(a, bf, transposeA, transposeB);
    bf.dispose();
    return y;
  }

  // The frame opens after the delegation above so the quantized op records
  // itself; from here on this op is the recorded node.
  internal::CaptureFrame frame;
  internal::KernelScope k("matMul");
  Tensor y;
  {
    internal::TapePause pause;
    Tensor a3 = to3d(a);
    Tensor b3 = to3d(b);
    const int kA = transposeA ? a3.shape()[1] : a3.shape()[2];
    const int kB = transposeB ? b3.shape()[2] : b3.shape()[1];
    TFJS_SHAPE_CHECK(kA == kB, "matMul inner dimensions must agree: "
                                   << a.shape().toString() << " x "
                                   << b.shape().toString());
    const int bA = a3.shape()[0], bB = b3.shape()[0];
    TFJS_SHAPE_CHECK(bA == bB || bA == 1 || bB == 1,
                     "matMul batch dims must match or broadcast");
    const TensorSpec sa = E().prepareInput(a3);
    const TensorSpec sb = E().prepareInput(b3);
    const DataId id = E().backend().matMul(sa, sb, transposeA, transposeB);
    const int m = transposeA ? a3.shape()[2] : a3.shape()[1];
    const int n = transposeB ? b3.shape()[1] : b3.shape()[2];
    const Shape out3{std::max(bA, bB), m, n};
    Tensor y3 = E().makeTensorFromDataId(id, out3, DType::f32);
    if (a.rank() == 2 && b.rank() == 2) {
      y = y3.reshape(Shape{m, n});
      y3.dispose();
    } else {
      y = y3;
    }
    a3.dispose();
    b3.dispose();
  }
  k.notify(y);
  internal::observeOp(OpId::kMatMul, {a, b}, y,
                      {static_cast<double>(transposeA),
                       static_cast<double>(transposeB)});

  record("matMul", {a, b}, y, [a, b, transposeA, transposeB](const Tensor& dy) {
    // Standard transpose-aware adjoints, then reduce over broadcast batch.
    Tensor da3, db3;
    if (!transposeA && !transposeB) {
      da3 = matMul(dy, b, false, true);
      db3 = matMul(a, dy, true, false);
    } else if (!transposeA && transposeB) {
      da3 = matMul(dy, b, false, false);
      db3 = matMul(dy, a, true, false);
    } else if (transposeA && !transposeB) {
      da3 = matMul(b, dy, false, true);
      db3 = matMul(a, dy, false, false);
    } else {
      da3 = matMul(b, dy, true, true);
      db3 = matMul(dy, a, true, true);
    }
    Tensor da = reduceGradTo(da3, a.shape());
    Tensor db = reduceGradTo(db3, b.shape());
    da3.dispose();
    db3.dispose();
    return std::vector<Tensor>{da, db};
  });
  return y;
}

Tensor dot(const Tensor& a, const Tensor& b) {
  TFJS_SHAPE_CHECK(a.rank() == 1 && b.rank() == 1,
                   "dot expects two 1-D tensors");
  TFJS_SHAPE_CHECK(a.size() == b.size(), "dot length mismatch");
  Tensor a2 = a.reshape(Shape{1, static_cast<int>(a.size())});
  Tensor b2 = b.reshape(Shape{static_cast<int>(b.size()), 1});
  Tensor y2 = matMul(a2, b2);
  Tensor y = y2.reshape(Shape{});
  a2.dispose();
  b2.dispose();
  y2.dispose();
  return y;
}

Tensor outerProduct(const Tensor& a, const Tensor& b) {
  TFJS_SHAPE_CHECK(a.rank() == 1 && b.rank() == 1,
                   "outerProduct expects two 1-D tensors");
  Tensor a2 = a.reshape(Shape{static_cast<int>(a.size()), 1});
  Tensor b2 = b.reshape(Shape{1, static_cast<int>(b.size())});
  Tensor y = matMul(a2, b2);
  a2.dispose();
  b2.dispose();
  return y;
}

}  // namespace tfjs::ops
