// Fused elementwise regions: the graph executor's fusion pass collapses
// chains/DAGs of unary/binary/select ops into one kFusedRegion node, and
// this op evaluates the region — in a single pass over the output on
// backends with supportsFusedRegions(), or as the equivalent op-by-op
// kernel chain otherwise. Both paths apply the exact same scalar formulas
// per element in the original program order, so fused outputs are
// bit-identical to the unfused chain on the active backend (the
// bitwise-parity argument is in DESIGN.md "Graph capture & optimization").
#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;

namespace {

/// Throws unless refs are well-formed: every operand names an external
/// input slot or a *prior* instruction.
void validateRegion(const RegionProgram& p, std::size_t numInputs) {
  TFJS_ARG_CHECK(!p.instrs.empty(), "fusedRegion: empty program");
  TFJS_ARG_CHECK(static_cast<std::size_t>(p.numInputs) == numInputs,
                 "fusedRegion: program expects " << p.numInputs
                                                 << " inputs, got "
                                                 << numInputs);
  const auto ok = [&](int r, std::size_t k) {
    return r < 0 ? static_cast<std::size_t>(-1 - r) < numInputs
                 : static_cast<std::size_t>(r) < k;
  };
  for (std::size_t k = 0; k < p.instrs.size(); ++k) {
    const RegionInstr& si = p.instrs[k];
    bool valid = ok(si.a, k);
    if (si.kind != RegionInstr::Kind::kUnary) valid = valid && ok(si.b, k);
    if (si.kind == RegionInstr::Kind::kSelect) valid = valid && ok(si.c, k);
    TFJS_ARG_CHECK(valid, "fusedRegion: bad operand ref in instruction " << k);
  }
}

/// Per-instruction result shapes under broadcasting; the terminal one is
/// the region's output shape. Computed from the actual feed shapes (not the
/// capture example's), which is what makes replayed regions
/// shape-polymorphic: for pure elementwise programs, evaluating every
/// interior value at the final output's coordinates reproduces the op-by-op
/// chain bit for bit whatever the broadcast pattern.
std::vector<Shape> regionShapes(const RegionProgram& p,
                                std::span<const Tensor> inputs) {
  std::vector<Shape> shapes(p.instrs.size());
  const auto shapeOf = [&](int r) -> const Shape& {
    return r < 0 ? inputs[static_cast<std::size_t>(-1 - r)].shape()
                 : shapes[static_cast<std::size_t>(r)];
  };
  for (std::size_t k = 0; k < p.instrs.size(); ++k) {
    const RegionInstr& si = p.instrs[k];
    switch (si.kind) {
      case RegionInstr::Kind::kUnary:
        shapes[k] = shapeOf(si.a);
        break;
      case RegionInstr::Kind::kBinary:
        shapes[k] = util::broadcastShapes(shapeOf(si.a), shapeOf(si.b));
        break;
      case RegionInstr::Kind::kSelect:
        shapes[k] = util::broadcastShapes(
            util::broadcastShapes(shapeOf(si.a), shapeOf(si.b)),
            shapeOf(si.c));
        break;
    }
  }
  return shapes;
}

/// Op-by-op fallback for backends without fused-region kernels: dispatches
/// each instruction to the standalone unary/binary/select kernel — exactly
/// the chain the fusion pass replaced, so values cannot differ.
DataId regionFallback(const RegionProgram& p,
                      std::span<const TensorSpec> inputs,
                      std::span<const Shape> shapes) {
  Backend& b = E().backend();
  std::vector<TensorSpec> interm(p.instrs.size());
  const auto spec = [&](int r) -> const TensorSpec& {
    return r < 0 ? inputs[static_cast<std::size_t>(-1 - r)]
                 : interm[static_cast<std::size_t>(r)];
  };
  for (std::size_t k = 0; k < p.instrs.size(); ++k) {
    const RegionInstr& si = p.instrs[k];
    DataId id = 0;
    switch (si.kind) {
      case RegionInstr::Kind::kUnary:
        id = b.unary(static_cast<UnaryOp>(si.op), spec(si.a), si.alpha,
                     si.beta);
        break;
      case RegionInstr::Kind::kBinary:
        id = b.binary(static_cast<BinaryOp>(si.op), spec(si.a), spec(si.b),
                      shapes[k]);
        break;
      case RegionInstr::Kind::kSelect:
        id = b.select(spec(si.a), spec(si.b), spec(si.c), shapes[k]);
        break;
    }
    interm[k] = {id, shapes[k], DType::f32};
  }
  for (std::size_t k = 0; k + 1 < interm.size(); ++k) {
    b.disposeData(interm[k].id);
  }
  return interm.back().id;
}

}  // namespace

std::vector<double> encodeRegionProgram(const RegionProgram& p) {
  std::vector<double> at;
  at.reserve(2 + p.instrs.size() * 7);
  at.push_back(static_cast<double>(p.numInputs));
  at.push_back(static_cast<double>(p.instrs.size()));
  for (const RegionInstr& si : p.instrs) {
    at.push_back(static_cast<double>(si.kind));
    at.push_back(static_cast<double>(si.op));
    at.push_back(static_cast<double>(si.a));
    at.push_back(static_cast<double>(si.b));
    at.push_back(static_cast<double>(si.c));
    at.push_back(static_cast<double>(si.alpha));
    at.push_back(static_cast<double>(si.beta));
  }
  return at;
}

RegionProgram decodeRegionProgram(std::span<const double> attrs) {
  TFJS_ARG_CHECK(attrs.size() >= 2, "fusedRegion: truncated attrs");
  RegionProgram p;
  p.numInputs = static_cast<int>(attrs[0]);
  const auto numInstrs = static_cast<std::size_t>(attrs[1]);
  TFJS_ARG_CHECK(attrs.size() == 2 + numInstrs * 7,
                 "fusedRegion: attrs length mismatch");
  p.instrs.resize(numInstrs);
  for (std::size_t k = 0; k < numInstrs; ++k) {
    const double* a = attrs.data() + 2 + k * 7;
    RegionInstr& si = p.instrs[k];
    si.kind = static_cast<RegionInstr::Kind>(static_cast<int>(a[0]));
    si.op = static_cast<int>(a[1]);
    si.a = static_cast<int>(a[2]);
    si.b = static_cast<int>(a[3]);
    si.c = static_cast<int>(a[4]);
    si.alpha = static_cast<float>(a[5]);
    si.beta = static_cast<float>(a[6]);
  }
  return p;
}

Tensor fusedRegion(const RegionProgram& program, std::span<const Tensor> inputs,
                   DType outDtype) {
  validateRegion(program, inputs.size());
  internal::CaptureFrame frame;
  internal::KernelScope k("fusedRegion");
  std::vector<TensorSpec> specs;
  specs.reserve(inputs.size());
  for (const Tensor& t : inputs) specs.push_back(E().prepareInput(t));
  const std::vector<Shape> shapes = regionShapes(program, inputs);
  const Shape& outShape = shapes.back();
  const DataId id =
      E().backend().supportsFusedRegions()
          ? E().backend().fusedRegion(program, specs, outShape, 0)
          : regionFallback(program, specs, shapes);
  Tensor y = k.wrap(id, outShape, outDtype);
  {
    const std::vector<double> at = encodeRegionProgram(program);
    internal::observeOp(OpId::kFusedRegion, inputs, y, at);
  }
  return y;
}

Tensor fusedRegion(const RegionProgram& program, Tensor&& first,
                   std::span<const Tensor> rest, DType outDtype) {
  const Tensor arg = std::move(first);
  std::vector<Tensor> all;
  all.reserve(rest.size() + 1);
  all.push_back(arg);
  all.insert(all.end(), rest.begin(), rest.end());
  // Same sole-ownership gate as tryUnaryInPlace/tryBinaryInPlace; the
  // backend additionally verifies dst aliases exactly one (dense) input
  // and otherwise allocates.
  const bool tryInPlace = E().backend().supportsFusedRegions() &&
                          !(internal::captureDepth == 0 &&
                            E().opObserver() != nullptr) &&
                          E().canReuseInput(arg) &&
                          dtypeBytes(outDtype) == dtypeBytes(arg.dtype());
  if (tryInPlace) {
    validateRegion(program, all.size());
    const std::vector<Shape> shapes = regionShapes(program, all);
    const Shape& outShape = shapes.back();
    if (arg.shape() == outShape) {
      internal::CaptureFrame frame;
      internal::KernelScope k("fusedRegion");
      std::vector<TensorSpec> specs;
      specs.reserve(all.size());
      for (const Tensor& t : all) specs.push_back(E().prepareInput(t));
      const DataId id =
          E().backend().fusedRegion(program, specs, outShape, specs[0].id);
      if (id == specs[0].id) {
        Tensor y = E().reuseInputAsOutput(arg, outShape, outDtype);
        k.notify(y);
        return y;
      }
      Tensor y = E().makeTensorFromDataId(id, outShape, outDtype);
      k.notify(y);
      arg.dispose();
      return y;
    }
  }
  Tensor y = fusedRegion(program, all, outDtype);
  arg.dispose();
  return y;
}

}  // namespace tfjs::ops
