// Advanced ops: topk / cumsum (backend kernels) and composite utilities
// (l2Normalize, moments, logSumExp, prelu, norm). Composites run with the
// tape active, so their gradients come from the recorded elementary ops.
#include <algorithm>
#include <array>

#include "core/util.h"
#include "ops/common.h"

namespace tfjs::ops {

using internal::E;
using internal::record;

TopK topk(const Tensor& x, int k, bool sorted) {
  (void)sorted;  // results are always sorted descending
  TFJS_SHAPE_CHECK(x.rank() >= 1, "topk requires rank >= 1");
  const int lastDim = x.shape()[x.rank() - 1];
  TFJS_SHAPE_CHECK(k >= 1 && k <= lastDim,
                   "topk: k=" << k << " out of range for last dim " << lastDim);
  internal::KernelScope kvScope("topkValues");
  internal::TapePause pause;
  const TensorSpec sx = E().prepareInput(x);
  const std::size_t inner = static_cast<std::size_t>(lastDim);
  const std::size_t outer = x.size() / inner;

  std::vector<int> outDims = x.shape().dims();
  outDims.back() = k;
  const Shape outShape(outDims);

  TopK result;
  const DataId values = E().backend().topkValues(sx, outer, inner, k);
  Tensor valuesFlat = E().makeTensorFromDataId(
      values, Shape{static_cast<int>(outer), k}, DType::f32);
  result.values = valuesFlat.reshape(outShape);
  valuesFlat.dispose();
  kvScope.notify(result.values);

  internal::KernelScope kiScope("topkIndices");
  const DataId indices = E().backend().topkIndices(sx, outer, inner, k);
  Tensor indicesFlat = E().makeTensorFromDataId(
      indices, Shape{static_cast<int>(outer), k}, DType::i32);
  result.indices = indicesFlat.reshape(outShape);
  indicesFlat.dispose();
  kiScope.notify(result.indices);
  return result;
}

Tensor cumsum(const Tensor& x, int axis, bool exclusive, bool reverse) {
  const int norm = axis < 0 ? axis + x.rank() : axis;
  TFJS_SHAPE_CHECK(norm >= 0 && norm < x.rank(),
                   "cumsum axis " << axis << " out of range");
  internal::KernelScope k("cumsum");
  Tensor y;
  {
    internal::TapePause pause;
    // Move the scanned axis to the back, run the kernel on [outer, inner],
    // and move it back — the standard kernel-normalization dance.
    Tensor prepared;
    std::vector<int> perm;
    const bool trailing = norm == x.rank() - 1;
    if (trailing) {
      prepared = x.clone();
    } else {
      for (int d = 0; d < x.rank(); ++d) {
        if (d != norm) perm.push_back(d);
      }
      perm.push_back(norm);
      prepared = transpose(x, perm);
    }
    const std::size_t inner = static_cast<std::size_t>(x.shape()[norm]);
    const std::size_t outer = x.size() / std::max<std::size_t>(inner, 1);
    const TensorSpec spec = E().prepareInput(prepared);
    const DataId id =
        E().backend().cumsum(spec, outer, inner, exclusive, reverse);
    Tensor flat = E().makeTensorFromDataId(
        id, Shape{static_cast<int>(outer), static_cast<int>(inner)},
        x.dtype());
    Tensor shaped = flat.reshape(prepared.shape());
    flat.dispose();
    if (trailing) {
      y = shaped;
    } else {
      std::vector<int> inverse(perm.size());
      for (std::size_t i = 0; i < perm.size(); ++i) {
        inverse[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);
      }
      y = transpose(shaped, inverse);
      shaped.dispose();
    }
    prepared.dispose();
  }
  k.notify(y);
  record("cumsum", {x}, y, [norm, exclusive, reverse](const Tensor& dy) {
    // Adjoint of a prefix sum is the suffix sum (and vice versa).
    return std::vector<Tensor>{cumsum(dy, norm, exclusive, !reverse)};
  });
  return y;
}

Tensor l2Normalize(const Tensor& x, std::span<const int> axes, float epsilon) {
  return Engine::get().tidy([&] {
    Tensor sq = sum(square(x), axes, /*keepDims=*/true);
    Tensor denom = sqrt(maximum(sq, scalar(epsilon)));
    return div(x, denom);
  });
}

Moments moments(const Tensor& x, std::span<const int> axes, bool keepDims) {
  // Composite with recorded ops: E[x] and E[(x - E[x])^2].
  Moments m;
  std::vector<Tensor> outs = Engine::get().tidy([&]() -> std::vector<Tensor> {
    Tensor mean_ = mean(x, axes, /*keepDims=*/true);
    Tensor variance = mean(square(sub(x, mean_)), axes, keepDims);
    Tensor meanOut =
        keepDims ? mean_.clone()
                 : mean_.reshape(util::reducedShape(
                       x.shape(),
                       axes.empty()
                           ? [&] {
                               std::vector<int> v;
                               for (int i = 0; i < x.rank(); ++i)
                                 v.push_back(i);
                               return v;
                             }()
                           : util::normalizeAxes(axes, x.rank()),
                       false));
    return {meanOut, variance};
  });
  m.mean = outs[0];
  m.variance = outs[1];
  return m;
}

Tensor logSumExp(const Tensor& x, std::span<const int> axes, bool keepDims) {
  return Engine::get().tidy([&] {
    Tensor mx = max(x, axes, /*keepDims=*/true);
    Tensor shifted = sub(x, mx);
    Tensor lse = add(log(sum(exp(shifted), axes, /*keepDims=*/true)), mx);
    if (keepDims) return lse;
    const std::vector<int> norm =
        axes.empty() ? [&] {
          std::vector<int> v;
          for (int i = 0; i < x.rank(); ++i) v.push_back(i);
          return v;
        }()
                     : util::normalizeAxes(axes, x.rank());
    return lse.reshape(util::reducedShape(x.shape(), norm, false));
  });
}

Tensor prelu(const Tensor& x, const Tensor& alpha) {
  return Engine::get().tidy([&] {
    Tensor positive = relu(x);
    Tensor negative = mul(alpha, minimum(x, scalar(0)));
    return add(positive, negative);
  });
}

Tensor norm(const Tensor& x, float p, std::span<const int> axes,
            bool keepDims) {
  return Engine::get().tidy([&] {
    if (p == 1) return sum(abs(x), axes, keepDims);
    if (p == 2) return sqrt(sum(square(x), axes, keepDims));
    TFJS_ARG_CHECK(p <= 0, "norm supports p = 1, 2 or infinity (p <= 0)");
    return max(abs(x), axes, keepDims);
  });
}

}  // namespace tfjs::ops
