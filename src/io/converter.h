// The model converter (paper section 5.1): "TensorFlow.js optimizes the
// model by pruning unnecessary operations (e.g. training operations) and
// packs weights into 4MB files", optionally quantizing them.
//
// The paper's converter consumes TensorFlow SavedModels; here the input is a
// minimal SavedModel-like GraphDef — nodes with op types, inputs, and
// attached weights — which the converter dead-code-eliminates against the
// inference outputs (dropping optimizer/gradient/save subgraphs) and lowers
// into ModelArtifacts (topology + sharded, optionally quantized weights).
#pragma once

#include <string>
#include <vector>

#include "io/model_io.h"

namespace tfjs::io {

/// A SavedModel-like computation graph node.
struct GraphNode {
  std::string name;
  std::string op;  ///< e.g. "Conv2D", "VariableV2", "ApplyAdam", "SaveV2"
  std::vector<std::string> inputs;
  /// Weight payload for variable nodes (undefined otherwise).
  Tensor weight;
  /// Op attributes (strides, padding, ...), JSON-encoded like the converter's
  /// serialized attr map. Null for attr-less ops.
  Json attrs;
};

struct GraphDef {
  std::vector<GraphNode> nodes;
  /// Names of the inference outputs (the converter's --output_node_names).
  std::vector<std::string> outputs;
};

struct ConvertStats {
  std::size_t nodesBefore = 0;
  std::size_t nodesAfter = 0;
  std::size_t weightsBytesBefore = 0;
  std::size_t weightsBytesAfter = 0;
  std::size_t shards = 0;
};

/// True for ops that only exist for training/checkpointing (optimizer
/// updates, gradient computation, savers) — the pruning targets.
bool isTrainingOnlyOp(const std::string& op);

/// Removes every node not reachable (via input edges) from the inference
/// outputs, after first dropping training-only ops. Returns the pruned graph.
GraphDef pruneTrainingOps(const GraphDef& graph);

/// Full conversion: prune, then pack the surviving variables' weights into
/// shards with optional quantization. `stats` (optional) reports what the
/// conversion saved.
WeightsManifest convertGraph(const GraphDef& graph,
                             Quantization quantization = Quantization::kNone,
                             std::size_t maxShardBytes = kDefaultShardBytes,
                             ConvertStats* stats = nullptr);

}  // namespace tfjs::io
