// Weight serialization (paper section 5.1): weights are packed into binary
// shards of at most 4 MB ("optimizing for browser auto-caching") and can be
// linearly quantized to uint8/uint16, "reducing the model size by 4X".
//
// The int8 mode goes further than the paper's transport-only quantization:
// weights are stored as per-channel symmetric int8 codes (core/quant.h) and
// decode to int8 tensors *with their parameters attached*, so a loaded model
// keeps its weights int8 at rest and runs the quantized kernels directly —
// no dequantization on load.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/tensor.h"
#include "io/json.h"

namespace tfjs::io {

inline constexpr std::size_t kDefaultShardBytes = 4 * 1024 * 1024;

enum class Quantization { kNone, kUint8, kUint16, kInt8 };

const char* quantizationName(Quantization q);
Quantization quantizationFromName(const std::string& s);

/// Metadata for one serialized weight, mirroring the tfjs weights-manifest
/// entry ({name, shape, dtype, quantization: {min, scale, dtype}}). The
/// int8 mode extends the entry with per-channel affine parameters
/// ({dtype: "int8", axis, scales, zero_points?}).
struct WeightSpec {
  std::string name;
  Shape shape;
  DType dtype = DType::f32;
  Quantization quantization = Quantization::kNone;
  float quantMin = 0;    ///< uint8/uint16: dequantized value of level 0
  float quantScale = 1;  ///< uint8/uint16: dequantized step per level
  /// int8: one scale per channel along `quantAxis` (one entry when
  /// per-tensor); zero points omitted from JSON when all zero (symmetric).
  std::vector<float> quantScales;
  std::vector<std::int32_t> quantZeroPoints;
  int quantAxis = -1;

  Json toJson() const;
  static WeightSpec fromJson(const Json& j);
};

/// A serialized weight set: ordered specs plus binary shards (each at most
/// the shard limit).
struct WeightsManifest {
  std::vector<WeightSpec> specs;
  std::vector<std::vector<std::uint8_t>> shards;

  std::size_t totalBytes() const {
    std::size_t n = 0;
    for (const auto& s : shards) n += s.size();
    return n;
  }
};

/// Serializes named tensors in order, quantizing if requested.
///
/// kInt8 applies per-channel symmetric quantization (last axis) to f32
/// "/kernel" weights of rank >= 2 whose layer is not depthwise (name free of
/// "dw"/"depthwise" — depthwise stays f32, matching the execution path);
/// other f32 tensors are stored raw. Tensors that are already int8 with
/// attached parameters serialize their codes and parameters verbatim.
WeightsManifest encodeWeights(
    std::span<const std::pair<std::string, Tensor>> weights,
    Quantization quantization = Quantization::kNone,
    std::size_t maxShardBytes = kDefaultShardBytes);

/// Reconstructs tensors (on the active backend) from a manifest. uint8 and
/// uint16 weights are dequantized to f32; int8 weights decode to int8
/// tensors with their QuantParams attached (int8 at rest).
std::vector<std::pair<std::string, Tensor>> decodeWeights(
    const WeightsManifest& manifest);

}  // namespace tfjs::io
