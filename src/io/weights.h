// Weight serialization (paper section 5.1): weights are packed into binary
// shards of at most 4 MB ("optimizing for browser auto-caching") and can be
// linearly quantized to uint8/uint16, "reducing the model size by 4X".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/tensor.h"
#include "io/json.h"

namespace tfjs::io {

inline constexpr std::size_t kDefaultShardBytes = 4 * 1024 * 1024;

enum class Quantization { kNone, kUint8, kUint16 };

const char* quantizationName(Quantization q);
Quantization quantizationFromName(const std::string& s);

/// Metadata for one serialized weight, mirroring the tfjs weights-manifest
/// entry ({name, shape, dtype, quantization: {min, scale, dtype}}).
struct WeightSpec {
  std::string name;
  Shape shape;
  DType dtype = DType::f32;
  Quantization quantization = Quantization::kNone;
  float quantMin = 0;    ///< dequantized value of level 0
  float quantScale = 1;  ///< dequantized step per level

  Json toJson() const;
  static WeightSpec fromJson(const Json& j);
};

/// A serialized weight set: ordered specs plus binary shards (each at most
/// the shard limit).
struct WeightsManifest {
  std::vector<WeightSpec> specs;
  std::vector<std::vector<std::uint8_t>> shards;

  std::size_t totalBytes() const {
    std::size_t n = 0;
    for (const auto& s : shards) n += s.size();
    return n;
  }
};

/// Serializes named tensors in order, quantizing if requested.
WeightsManifest encodeWeights(
    std::span<const std::pair<std::string, Tensor>> weights,
    Quantization quantization = Quantization::kNone,
    std::size_t maxShardBytes = kDefaultShardBytes);

/// Reconstructs tensors (on the active backend) from a manifest. Quantized
/// weights are dequantized to f32.
std::vector<std::pair<std::string, Tensor>> decodeWeights(
    const WeightsManifest& manifest);

}  // namespace tfjs::io
