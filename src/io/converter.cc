#include "io/converter.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace tfjs::io {

bool isTrainingOnlyOp(const std::string& op) {
  static const std::unordered_set<std::string> kTrainingOps = {
      "ApplyGradientDescent", "ApplyAdam", "ApplyMomentum", "ApplyRMSProp",
      "ApplyAdagrad", "AssignSub", "AssignAdd",
      "SaveV2", "RestoreV2", "MergeV2Checkpoints",
      "BroadcastGradientArgs", "PreventGradient", "StopGradient",
      "Conv2DBackpropInput", "Conv2DBackpropFilter",
      "MaxPoolGrad", "AvgPoolGrad", "ReluGrad", "BiasAddGrad",
      "SparseSoftmaxCrossEntropyWithLogits", "SoftmaxCrossEntropyWithLogits",
      "NoOp",
  };
  return kTrainingOps.count(op) > 0 || op.rfind("Apply", 0) == 0;
}

namespace {
/// Strips the ":0"-style output-slot suffix and the "^" control-edge prefix
/// from a SavedModel input reference.
std::string canonicalName(const std::string& ref) {
  std::string name = ref;
  if (!name.empty() && name[0] == '^') name = name.substr(1);
  const auto colon = name.find(':');
  if (colon != std::string::npos) name = name.substr(0, colon);
  return name;
}
}  // namespace

GraphDef pruneTrainingOps(const GraphDef& graph) {
  std::unordered_map<std::string, const GraphNode*> byName;
  for (const auto& n : graph.nodes) byName[n.name] = &n;

  // Reverse reachability from the inference outputs, never traversing into
  // training-only ops.
  std::unordered_set<std::string> keep;
  std::deque<std::string> frontier(graph.outputs.begin(),
                                   graph.outputs.end());
  while (!frontier.empty()) {
    const std::string name = canonicalName(frontier.front());
    frontier.pop_front();
    if (keep.count(name)) continue;
    auto it = byName.find(name);
    TFJS_ARG_CHECK(it != byName.end(),
                   "Graph references unknown node '" << name << "'");
    if (isTrainingOnlyOp(it->second->op)) continue;
    keep.insert(name);
    for (const auto& in : it->second->inputs) {
      frontier.push_back(canonicalName(in));
    }
  }

  GraphDef pruned;
  pruned.outputs = graph.outputs;
  for (const auto& n : graph.nodes) {
    if (keep.count(n.name)) pruned.nodes.push_back(n);
  }
  return pruned;
}

WeightsManifest convertGraph(const GraphDef& graph, Quantization quantization,
                             std::size_t maxShardBytes, ConvertStats* stats) {
  auto weightBytes = [](const GraphDef& g) {
    std::size_t bytes = 0;
    for (const auto& n : g.nodes) {
      if (n.weight.defined() && !n.weight.isDisposed()) {
        bytes += n.weight.size() * 4;
      }
    }
    return bytes;
  };

  const GraphDef pruned = pruneTrainingOps(graph);
  std::vector<std::pair<std::string, Tensor>> weights;
  for (const auto& n : pruned.nodes) {
    if (n.weight.defined() && !n.weight.isDisposed()) {
      weights.emplace_back(n.name, n.weight);
    }
  }
  WeightsManifest manifest =
      encodeWeights(weights, quantization, maxShardBytes);

  if (stats != nullptr) {
    stats->nodesBefore = graph.nodes.size();
    stats->nodesAfter = pruned.nodes.size();
    stats->weightsBytesBefore = weightBytes(graph);
    stats->weightsBytesAfter = manifest.totalBytes();
    stats->shards = manifest.shards.size();
  }
  return manifest;
}

}  // namespace tfjs::io
