// Minimal JSON value type + parser/serializer, used for the Keras-compatible
// model topology format (paper sections 3.2 and 5.1). Self-contained: depends
// only on core/error.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/error.h"

namespace tfjs::io {

class Json;
using JsonArray = std::vector<Json>;
/// std::map keeps keys sorted: serialization is deterministic, which the
/// round-trip tests rely on.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(std::size_t i) : v_(static_cast<double>(i)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool isBool() const { return std::holds_alternative<bool>(v_); }
  bool isNumber() const { return std::holds_alternative<double>(v_); }
  bool isString() const { return std::holds_alternative<std::string>(v_); }
  bool isArray() const { return std::holds_alternative<JsonArray>(v_); }
  bool isObject() const { return std::holds_alternative<JsonObject>(v_); }

  bool asBool() const { return get<bool>("bool"); }
  double asDouble() const { return get<double>("number"); }
  int asInt() const { return static_cast<int>(asDouble()); }
  const std::string& asString() const { return get<std::string>("string"); }
  const JsonArray& asArray() const { return get<JsonArray>("array"); }
  JsonArray& asArray() { return getMut<JsonArray>("array"); }
  const JsonObject& asObject() const { return get<JsonObject>("object"); }
  JsonObject& asObject() { return getMut<JsonObject>("object"); }

  /// Object member access; throws when missing (use has() to probe).
  const Json& at(const std::string& key) const {
    const auto& obj = asObject();
    auto it = obj.find(key);
    TFJS_ARG_CHECK(it != obj.end(), "JSON object has no key '" << key << "'");
    return it->second;
  }
  bool has(const std::string& key) const {
    return isObject() && asObject().count(key) > 0;
  }
  Json& operator[](const std::string& key) {
    if (isNull()) v_ = JsonObject{};
    return getMut<JsonObject>("object")[key];
  }

  std::string dump(int indent = 0) const;

  /// Parses a JSON document; throws InvalidArgumentError on malformed input.
  static Json parse(const std::string& text);

 private:
  template <typename T>
  const T& get(const char* what) const {
    const T* p = std::get_if<T>(&v_);
    TFJS_ARG_CHECK(p != nullptr, "JSON value is not a " << what);
    return *p;
  }
  template <typename T>
  T& getMut(const char* what) {
    T* p = std::get_if<T>(&v_);
    TFJS_ARG_CHECK(p != nullptr, "JSON value is not a " << what);
    return *p;
  }

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v_;
};

}  // namespace tfjs::io
