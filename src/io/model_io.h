// Model persistence (paper section 5.1): saveModel writes the tfjs web
// format — a model.json holding the Keras-compatible topology plus a weights
// manifest referencing binary shard files of at most 4 MB — and loadModel is
// the tf.loadModel(url) analogue that reconstructs a ready-to-run model.
#pragma once

#include <memory>
#include <string>

#include "io/weights.h"
#include "layers/sequential.h"

namespace tfjs::io {

struct SaveOptions {
  Quantization quantization = Quantization::kNone;
  std::size_t maxShardBytes = kDefaultShardBytes;
};

/// Serialized artifacts in memory (what the converter produces and the
/// browser fetches): topology JSON + weight shards.
struct ModelArtifacts {
  Json modelJson;  ///< topology + weightsManifest (paths & specs)
  WeightsManifest weights;
};

/// Serializes a built model to in-memory artifacts.
ModelArtifacts serializeModel(const layers::Sequential& model,
                              const Shape& inputShape,
                              const SaveOptions& opts = {});

/// Reconstructs a built model (weights loaded) from artifacts.
std::unique_ptr<layers::Sequential> deserializeModel(
    const ModelArtifacts& artifacts);

/// Writes model.json plus group1-shard{i}of{N}.bin files into `dir`.
void saveModel(const layers::Sequential& model, const Shape& inputShape,
               const std::string& dir, const SaveOptions& opts = {});

/// Loads a model saved by saveModel (the tf.loadModel analogue).
std::unique_ptr<layers::Sequential> loadModel(const std::string& dir);

}  // namespace tfjs::io
