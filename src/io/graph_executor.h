// GraphExecutor: runs a converted SavedModel-style graph (paper section 5.1:
// the converter "can load and execute pre-trained TensorFlow SavedModels" —
// the upstream GraphModel, as opposed to the Keras-topology LayersModel).
//
// The executor evaluates a pruned GraphDef lazily and memoized: each node's
// op is dispatched to the Ops API, so converted graphs run on whichever
// backend is active, with the same async/memory semantics as everything
// else. The supported op set covers the inference graphs the converter
// emits for conv-nets (conv/pool/activations/matmul/normalization/reshape).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "io/converter.h"

namespace tfjs::io {

class GraphExecutor {
 public:
  /// Takes the (ideally already pruned) graph; weight tensors are kept alive
  /// for the executor's lifetime.
  explicit GraphExecutor(GraphDef graph);
  ~GraphExecutor();

  GraphExecutor(const GraphExecutor&) = delete;
  GraphExecutor& operator=(const GraphExecutor&) = delete;

  /// Evaluates the named output nodes given placeholder feeds. Returned
  /// tensors are owned by the caller; intermediates are disposed.
  std::vector<Tensor> execute(const std::map<std::string, Tensor>& feeds,
                              std::span<const std::string> outputs);

  /// Convenience: evaluates the graph's first registered output.
  Tensor execute(const std::map<std::string, Tensor>& feeds);

  const GraphDef& graph() const { return graph_; }

 private:
  Tensor evaluate(const std::string& name,
                  const std::map<std::string, Tensor>& feeds,
                  std::map<std::string, Tensor>& memo,
                  std::vector<std::string>& inProgress);

  GraphDef graph_;
  std::map<std::string, const GraphNode*> byName_;
};

}  // namespace tfjs::io
