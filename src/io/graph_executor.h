// GraphExecutor: runs a converted SavedModel-style graph (paper section 5.1:
// the converter "can load and execute pre-trained TensorFlow SavedModels" —
// the upstream GraphModel, as opposed to the Keras-topology LayersModel).
//
// Since the graph-capture work (DESIGN.md "Graph capture & optimization")
// this is a thin importer: on first execute() for a given output set the
// reachable GraphDef subgraph is translated into the shared graph IR and
// handed to graph::CapturedGraph, which runs the optimization passes
// (constant folding hoists weight decoding out of the per-run path), plans
// memory, and replays through the Ops API — so converted graphs run on
// whichever backend is active, with the same semantics as captured ones.
// Translation stays lazy per output set, preserving the original executor's
// contract: unknown ops, cycles, and missing weights only fail when an
// execute() actually reaches them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/executor.h"
#include "io/converter.h"

namespace tfjs::io {

class GraphExecutor {
 public:
  /// Takes the (ideally already pruned) graph; weight tensors are kept alive
  /// for the executor's lifetime.
  explicit GraphExecutor(GraphDef graph);
  ~GraphExecutor();

  GraphExecutor(const GraphExecutor&) = delete;
  GraphExecutor& operator=(const GraphExecutor&) = delete;

  /// Evaluates the named output nodes given placeholder feeds. Returned
  /// tensors are owned by the caller; intermediates are disposed.
  std::vector<Tensor> execute(const std::map<std::string, Tensor>& feeds,
                              std::span<const std::string> outputs);

  /// Convenience: evaluates the graph's first registered output.
  Tensor execute(const std::map<std::string, Tensor>& feeds);

  const GraphDef& graph() const { return graph_; }

 private:
  struct Compiled {
    graph::CapturedGraph exec;
    std::vector<std::string> placeholders;  ///< feed order of exec's inputs
  };

  /// Translates (and caches) the subgraph reachable from `outputs`.
  Compiled& compiledFor(const std::vector<std::string>& outputs);

  GraphDef graph_;
  std::map<std::string, const GraphNode*> byName_;
  std::map<std::string, std::unique_ptr<Compiled>> cache_;
};

}  // namespace tfjs::io
