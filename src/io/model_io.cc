#include "io/model_io.h"

#include <filesystem>
#include <fstream>

#include "core/engine.h"

namespace tfjs::io {

namespace fs = std::filesystem;

ModelArtifacts serializeModel(const layers::Sequential& model,
                              const Shape& inputShape,
                              const SaveOptions& opts) {
  ModelArtifacts artifacts;

  std::vector<std::pair<std::string, Tensor>> named;
  for (const auto& w : model.weights()) {
    named.emplace_back(w.name(), w.value());
  }
  artifacts.weights =
      encodeWeights(named, opts.quantization, opts.maxShardBytes);

  Json root;
  root["format"] = "tfjs-cpp-layers-model";
  root["generatedBy"] = "tfjs-cpp";
  root["modelTopology"] = model.toConfig();
  JsonArray inputDims;
  for (int d : inputShape.dims()) inputDims.emplace_back(d);
  root["inputShape"] = Json(std::move(inputDims));

  JsonArray paths;
  for (std::size_t i = 0; i < artifacts.weights.shards.size(); ++i) {
    paths.emplace_back("group1-shard" + std::to_string(i + 1) + "of" +
                       std::to_string(artifacts.weights.shards.size()) +
                       ".bin");
  }
  JsonArray specs;
  for (const auto& s : artifacts.weights.specs) specs.push_back(s.toJson());
  Json group;
  group["paths"] = Json(std::move(paths));
  group["weights"] = Json(std::move(specs));
  JsonArray manifest;
  manifest.push_back(std::move(group));
  root["weightsManifest"] = Json(std::move(manifest));

  artifacts.modelJson = std::move(root);
  return artifacts;
}

std::unique_ptr<layers::Sequential> deserializeModel(
    const ModelArtifacts& artifacts) {
  auto model =
      layers::Sequential::fromConfig(artifacts.modelJson.at("modelTopology"));

  std::vector<int> dims;
  for (const auto& d : artifacts.modelJson.at("inputShape").asArray()) {
    dims.push_back(d.asInt());
  }
  model->build(Shape(dims));

  auto named = decodeWeights(artifacts.weights);
  const auto vars = model->weights();
  TFJS_ARG_CHECK(named.size() == vars.size(),
                 "Model has " << vars.size() << " weights; manifest holds "
                              << named.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    vars[i].assign(named[i].second);
  }
  return model;
}

void saveModel(const layers::Sequential& model, const Shape& inputShape,
               const std::string& dir, const SaveOptions& opts) {
  ModelArtifacts artifacts = serializeModel(model, inputShape, opts);
  fs::create_directories(dir);
  {
    std::ofstream out(fs::path(dir) / "model.json");
    TFJS_ARG_CHECK(out.good(), "Cannot write model.json into " << dir);
    out << artifacts.modelJson.dump(2);
  }
  const auto& paths =
      artifacts.modelJson.at("weightsManifest").asArray()[0].at("paths");
  for (std::size_t i = 0; i < artifacts.weights.shards.size(); ++i) {
    std::ofstream out(fs::path(dir) / paths.asArray()[i].asString(),
                      std::ios::binary);
    TFJS_ARG_CHECK(out.good(), "Cannot write weight shard into " << dir);
    out.write(
        reinterpret_cast<const char*>(artifacts.weights.shards[i].data()),
        static_cast<std::streamsize>(artifacts.weights.shards[i].size()));
  }
}

std::unique_ptr<layers::Sequential> loadModel(const std::string& dir) {
  std::ifstream in(fs::path(dir) / "model.json");
  TFJS_ARG_CHECK(in.good(), "No model.json in " << dir);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ModelArtifacts artifacts;
  artifacts.modelJson = Json::parse(text);

  const Json& group = artifacts.modelJson.at("weightsManifest").asArray()[0];
  for (const auto& spec : group.at("weights").asArray()) {
    artifacts.weights.specs.push_back(WeightSpec::fromJson(spec));
  }
  for (const auto& p : group.at("paths").asArray()) {
    std::ifstream shard(fs::path(dir) / p.asString(), std::ios::binary);
    TFJS_ARG_CHECK(shard.good(), "Missing weight shard " << p.asString());
    artifacts.weights.shards.emplace_back(
        (std::istreambuf_iterator<char>(shard)),
        std::istreambuf_iterator<char>());
  }
  return deserializeModel(artifacts);
}

}  // namespace tfjs::io
