#include "io/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace tfjs::io {

namespace {

void dumpString(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dumpValue(const Json& j, std::ostream& os, int indent, int depth) {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : "";
  const std::string padEnd =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : "";
  const char* nl = indent > 0 ? "\n" : "";
  if (j.isNull()) {
    os << "null";
  } else if (j.isBool()) {
    os << (j.asBool() ? "true" : "false");
  } else if (j.isNumber()) {
    const double d = j.asDouble();
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
      os << static_cast<long long>(d);
    } else {
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << d;
      os << tmp.str();
    }
  } else if (j.isString()) {
    dumpString(j.asString(), os);
  } else if (j.isArray()) {
    const auto& a = j.asArray();
    if (a.empty()) {
      os << "[]";
      return;
    }
    os << '[' << nl;
    for (std::size_t i = 0; i < a.size(); ++i) {
      os << pad;
      dumpValue(a[i], os, indent, depth + 1);
      if (i + 1 < a.size()) os << ',';
      os << nl;
    }
    os << padEnd << ']';
  } else {
    const auto& o = j.asObject();
    if (o.empty()) {
      os << "{}";
      return;
    }
    os << '{' << nl;
    std::size_t i = 0;
    for (const auto& [k, v] : o) {
      os << pad;
      dumpString(k, os);
      os << (indent > 0 ? ": " : ":");
      dumpValue(v, os, indent, depth + 1);
      if (++i < o.size()) os << ',';
      os << nl;
    }
    os << padEnd << '}';
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json j = value();
    skipWs();
    TFJS_ARG_CHECK(pos_ == s_.size(), "JSON: trailing characters at " << pos_);
    return j;
  }

 private:
  void skipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skipWs();
    TFJS_ARG_CHECK(pos_ < s_.size(), "JSON: unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    TFJS_ARG_CHECK(peek() == c, "JSON: expected '" << c << "' at " << pos_);
    ++pos_;
  }

  bool consume(const std::string& word) {
    skipWs();
    if (s_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (consume("true")) return Json(true);
    if (consume("false")) return Json(false);
    if (consume("null")) return Json(nullptr);
    return number();
  }

  Json object() {
    expect('{');
    JsonObject o;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(o));
    }
    for (;;) {
      std::string key = string();
      expect(':');
      o.emplace(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(o));
    }
  }

  Json array() {
    expect('[');
    JsonArray a;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(a));
    }
    for (;;) {
      a.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(a));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        TFJS_ARG_CHECK(pos_ < s_.size(), "JSON: bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            TFJS_ARG_CHECK(pos_ + 4 <= s_.size(), "JSON: bad \\u escape");
            const int code = std::stoi(s_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            // Basic-plane ASCII only; multi-byte escapes are re-encoded
            // as UTF-8 best-effort (enough for layer names).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            throw InvalidArgumentError("JSON: unknown escape sequence");
        }
      } else {
        out += c;
      }
    }
    TFJS_ARG_CHECK(pos_ < s_.size(), "JSON: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Json number() {
    skipWs();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      digits = true;
      ++pos_;
    }
    TFJS_ARG_CHECK(digits, "JSON: invalid token at " << start);
    try {
      return Json(std::stod(s_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      throw InvalidArgumentError("JSON: invalid number at " +
                                 std::to_string(start));
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dumpValue(*this, os, indent, 0);
  return os.str();
}

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace tfjs::io
