#include "io/graph_executor.h"

#include <algorithm>

#include "core/engine.h"
#include "ops/ops.h"

namespace tfjs::io {

namespace o = tfjs::ops;

namespace {

std::string canonical(const std::string& ref) {
  std::string name = ref;
  if (!name.empty() && name[0] == '^') name = name.substr(1);
  const auto colon = name.find(':');
  if (colon != std::string::npos) name = name.substr(0, colon);
  return name;
}

/// attrs["strides"] = [1, sH, sW, 1] (NHWC), TF convention.
std::pair<int, int> spatialStrides(const Json& attrs) {
  if (!attrs.has("strides")) return {1, 1};
  const auto& s = attrs.at("strides").asArray();
  TFJS_ARG_CHECK(s.size() == 4, "strides attr must have 4 entries (NHWC)");
  return {s[1].asInt(), s[2].asInt()};
}

PadMode padAttr(const Json& attrs) {
  if (!attrs.has("padding")) return PadMode::kValid;
  const std::string& p = attrs.at("padding").asString();
  if (p == "SAME" || p == "same") return PadMode::kSame;
  if (p == "VALID" || p == "valid") return PadMode::kValid;
  throw InvalidArgumentError("Unknown padding attr: " + p);
}

}  // namespace

GraphExecutor::GraphExecutor(GraphDef graph) : graph_(std::move(graph)) {
  for (const auto& n : graph_.nodes) {
    TFJS_ARG_CHECK(byName_.emplace(n.name, &n).second,
                   "Duplicate graph node '" << n.name << "'");
    if (n.weight.defined() && !n.weight.isDisposed()) n.weight.keep();
  }
}

GraphExecutor::~GraphExecutor() {
  for (const auto& n : graph_.nodes) {
    if (n.weight.defined() && !n.weight.isDisposed()) n.weight.dispose();
  }
}

std::vector<Tensor> GraphExecutor::execute(
    const std::map<std::string, Tensor>& feeds,
    std::span<const std::string> outputs) {
  std::vector<Tensor> results;
  Engine& engine = Engine::get();
  engine.startScope();
  try {
    std::map<std::string, Tensor> memo;
    std::vector<std::string> inProgress;
    for (const auto& out : outputs) {
      results.push_back(
          evaluate(canonical(out), feeds, memo, inProgress).clone());
    }
  } catch (...) {
    engine.endScope({});
    throw;
  }
  engine.endScope(results);
  return results;
}

Tensor GraphExecutor::execute(const std::map<std::string, Tensor>& feeds) {
  TFJS_ARG_CHECK(!graph_.outputs.empty(), "Graph declares no outputs");
  const std::array<std::string, 1> outs{graph_.outputs[0]};
  return execute(feeds, outs)[0];
}

Tensor GraphExecutor::evaluate(const std::string& name,
                               const std::map<std::string, Tensor>& feeds,
                               std::map<std::string, Tensor>& memo,
                               std::vector<std::string>& inProgress) {
  if (auto it = memo.find(name); it != memo.end()) return it->second;
  TFJS_ARG_CHECK(std::find(inProgress.begin(), inProgress.end(), name) ==
                     inProgress.end(),
                 "Graph cycle through node '" << name << "'");
  auto nodeIt = byName_.find(name);
  TFJS_ARG_CHECK(nodeIt != byName_.end(), "Unknown graph node '" << name
                                              << "'");
  const GraphNode& node = *nodeIt->second;
  inProgress.push_back(name);

  auto in = [&](std::size_t i) -> Tensor {
    TFJS_ARG_CHECK(i < node.inputs.size(),
                   "Node '" << name << "' (" << node.op << ") is missing input "
                            << i);
    return evaluate(canonical(node.inputs[i]), feeds, memo, inProgress);
  };

  Tensor result;
  const std::string& op = node.op;
  if (op == "Placeholder") {
    auto fed = feeds.find(name);
    TFJS_ARG_CHECK(fed != feeds.end(),
                   "No feed provided for placeholder '" << name << "'");
    result = fed->second.clone();
  } else if (op == "VariableV2" || op == "Const") {
    TFJS_ARG_CHECK(node.weight.defined() && !node.weight.isDisposed(),
                   "Node '" << name << "' has no weight payload");
    result = node.weight.clone();
  } else if (op == "Identity") {
    result = in(0).clone();
  } else if (op == "Conv2D") {
    const auto [sH, sW] = spatialStrides(node.attrs);
    result = o::conv2d(in(0), in(1), sH, sW, padAttr(node.attrs));
  } else if (op == "DepthwiseConv2dNative") {
    const auto [sH, sW] = spatialStrides(node.attrs);
    result = o::depthwiseConv2d(in(0), in(1), sH, sW, padAttr(node.attrs));
  } else if (op == "MaxPool" || op == "AvgPool") {
    const auto [sH, sW] = spatialStrides(node.attrs);
    int kH = 2, kW = 2;
    if (node.attrs.has("ksize")) {
      const auto& ks = node.attrs.at("ksize").asArray();
      kH = ks[1].asInt();
      kW = ks[2].asInt();
    }
    result = op == "MaxPool"
                 ? o::maxPool(in(0), kH, kW, sH, sW, padAttr(node.attrs))
                 : o::avgPool(in(0), kH, kW, sH, sW, padAttr(node.attrs));
  } else if (op == "Relu") {
    result = o::relu(in(0));
  } else if (op == "Relu6") {
    result = o::relu6(in(0));
  } else if (op == "Sigmoid") {
    result = o::sigmoid(in(0));
  } else if (op == "Tanh") {
    result = o::tanh(in(0));
  } else if (op == "Softmax") {
    result = o::softmax(in(0));
  } else if (op == "Add" || op == "AddV2" || op == "BiasAdd") {
    result = o::add(in(0), in(1));
  } else if (op == "Sub") {
    result = o::sub(in(0), in(1));
  } else if (op == "Mul") {
    result = o::mul(in(0), in(1));
  } else if (op == "RealDiv") {
    result = o::div(in(0), in(1));
  } else if (op == "MatMul") {
    const bool tA = node.attrs.has("transpose_a") &&
                    node.attrs.at("transpose_a").asBool();
    const bool tB = node.attrs.has("transpose_b") &&
                    node.attrs.at("transpose_b").asBool();
    result = o::matMul(in(0), in(1), tA, tB);
  } else if (op == "Reshape") {
    TFJS_ARG_CHECK(node.attrs.has("shape"),
                   "Reshape node '" << name << "' needs a shape attr");
    std::vector<int> dims;
    for (const auto& d : node.attrs.at("shape").asArray()) {
      dims.push_back(d.asInt());
    }
    result = o::reshape(in(0), Shape(dims));
  } else if (op == "Squeeze") {
    result = o::squeeze(in(0));
  } else if (op == "Mean") {
    std::vector<int> axes;
    if (node.attrs.has("axes")) {
      for (const auto& a : node.attrs.at("axes").asArray()) {
        axes.push_back(a.asInt());
      }
    }
    const bool keep =
        node.attrs.has("keep_dims") && node.attrs.at("keep_dims").asBool();
    result = o::mean(in(0), axes, keep);
  } else {
    throw UnimplementedError("GraphExecutor: unsupported op '" + op +
                             "' (node '" + name +
                             "'); run pruneTrainingOps first?");
  }

  inProgress.pop_back();
  memo.emplace(name, result);
  return result;
}

}  // namespace tfjs::io
