#include "io/graph_executor.h"

#include <algorithm>

#include "core/engine.h"

namespace tfjs::io {

namespace {

std::string canonical(const std::string& ref) {
  std::string name = ref;
  if (!name.empty() && name[0] == '^') name = name.substr(1);
  const auto colon = name.find(':');
  if (colon != std::string::npos) name = name.substr(0, colon);
  return name;
}

/// attrs["strides"] = [1, sH, sW, 1] (NHWC), TF convention.
std::pair<int, int> spatialStrides(const Json& attrs) {
  if (!attrs.has("strides")) return {1, 1};
  const auto& s = attrs.at("strides").asArray();
  TFJS_ARG_CHECK(s.size() == 4, "strides attr must have 4 entries (NHWC)");
  return {s[1].asInt(), s[2].asInt()};
}

PadMode padAttr(const Json& attrs) {
  if (!attrs.has("padding")) return PadMode::kValid;
  const std::string& p = attrs.at("padding").asString();
  if (p == "SAME" || p == "same") return PadMode::kSame;
  if (p == "VALID" || p == "valid") return PadMode::kValid;
  throw InvalidArgumentError("Unknown padding attr: " + p);
}

/// Translates the GraphDef subgraph reachable from the requested outputs
/// into the shared graph IR. One importer per output set; memoization by
/// node name keeps shared producers single-noded (the diamond-sharing
/// guarantee the old recursive evaluator gave).
struct Importer {
  const std::map<std::string, const GraphNode*>& byName;
  graph::Graph g;
  std::vector<std::string> placeholders;
  std::map<std::string, int> idByName;
  std::vector<std::string> inProgress;

  int append(graph::Node n, const std::string& name) {
    n.name = name;
    g.nodes.push_back(std::move(n));
    return static_cast<int>(g.nodes.size()) - 1;
  }

  int import(const std::string& name) {
    if (auto it = idByName.find(name); it != idByName.end()) return it->second;
    TFJS_ARG_CHECK(std::find(inProgress.begin(), inProgress.end(), name) ==
                       inProgress.end(),
                   "Graph cycle through node '" << name << "'");
    auto nodeIt = byName.find(name);
    TFJS_ARG_CHECK(nodeIt != byName.end(),
                   "Unknown graph node '" << name << "'");
    const GraphNode& node = *nodeIt->second;
    inProgress.push_back(name);

    auto in = [&](std::size_t i) -> int {
      TFJS_ARG_CHECK(i < node.inputs.size(),
                     "Node '" << name << "' (" << node.op
                              << ") is missing input " << i);
      return import(canonical(node.inputs[i]));
    };

    using ops::OpId;
    graph::Node n;
    const std::string& op = node.op;
    if (op == "Placeholder") {
      n.op = OpId::kInput;
      const int id = append(std::move(n), name);
      g.inputs.push_back(id);
      placeholders.push_back(name);
      inProgress.pop_back();
      idByName[name] = id;
      return id;
    } else if (op == "VariableV2" || op == "Const") {
      TFJS_ARG_CHECK(node.weight.defined() && !node.weight.isDisposed(),
                     "Node '" << name << "' has no weight payload");
      n.op = OpId::kConst;
      n.constant = node.weight.clone().keep();
      n.outShape = node.weight.shape();
      n.outDtype = node.weight.dtype();
    } else if (op == "Identity") {
      n.op = OpId::kAlias;
      n.attrs = {2};
      n.inputs = {in(0)};
    } else if (op == "Reshape") {
      TFJS_ARG_CHECK(node.attrs.has("shape"),
                     "Reshape node '" << name << "' needs a shape attr");
      std::vector<int> dims;
      for (const auto& d : node.attrs.at("shape").asArray()) {
        dims.push_back(d.asInt());
      }
      n.op = OpId::kAlias;
      n.attrs = {3};
      n.shapeAttr = Shape(dims);
      n.inputs = {in(0)};
    } else if (op == "Squeeze") {
      n.op = OpId::kAlias;
      n.attrs = {1};
      n.inputs = {in(0)};
    } else if (op == "Conv2D" || op == "DepthwiseConv2dNative") {
      const auto [sH, sW] = spatialStrides(node.attrs);
      n.op = op == "Conv2D" ? OpId::kConv2d : OpId::kDepthwiseConv2d;
      n.attrs = {static_cast<double>(sH), static_cast<double>(sW),
                 static_cast<double>(padAttr(node.attrs)), 1, 1};
      n.inputs = {in(0), in(1)};
    } else if (op == "MaxPool" || op == "AvgPool") {
      const auto [sH, sW] = spatialStrides(node.attrs);
      int kH = 2, kW = 2;
      if (node.attrs.has("ksize")) {
        const auto& ks = node.attrs.at("ksize").asArray();
        kH = ks[1].asInt();
        kW = ks[2].asInt();
      }
      n.op = OpId::kPool;
      n.attrs = {static_cast<double>(op == "MaxPool" ? PoolMode::kMax
                                                     : PoolMode::kAvg),
                 static_cast<double>(kH), static_cast<double>(kW),
                 static_cast<double>(sH), static_cast<double>(sW),
                 static_cast<double>(padAttr(node.attrs))};
      n.inputs = {in(0)};
    } else if (op == "Relu" || op == "Relu6" || op == "Sigmoid" ||
               op == "Tanh") {
      const UnaryOp code = op == "Relu"    ? UnaryOp::kRelu
                           : op == "Relu6" ? UnaryOp::kRelu6
                           : op == "Sigmoid" ? UnaryOp::kSigmoid
                                             : UnaryOp::kTanh;
      n.op = OpId::kUnary;
      n.attrs = {static_cast<double>(code), 0, 0,
                 static_cast<double>(DType::f32)};
      n.inputs = {in(0)};
    } else if (op == "Softmax") {
      n.op = OpId::kSoftmax;
      n.attrs = {-1};
      n.inputs = {in(0)};
    } else if (op == "Add" || op == "AddV2" || op == "BiasAdd" ||
               op == "Sub" || op == "Mul" || op == "RealDiv") {
      const BinaryOp code = op == "Sub"   ? BinaryOp::kSub
                            : op == "Mul" ? BinaryOp::kMul
                            : op == "RealDiv" ? BinaryOp::kDiv
                                              : BinaryOp::kAdd;
      n.op = OpId::kBinary;
      n.attrs = {static_cast<double>(code), static_cast<double>(DType::f32)};
      n.inputs = {in(0), in(1)};
    } else if (op == "MatMul") {
      const bool tA = node.attrs.has("transpose_a") &&
                      node.attrs.at("transpose_a").asBool();
      const bool tB = node.attrs.has("transpose_b") &&
                      node.attrs.at("transpose_b").asBool();
      n.op = OpId::kMatMul;
      n.attrs = {tA ? 1.0 : 0.0, tB ? 1.0 : 0.0};
      n.inputs = {in(0), in(1)};
    } else if (op == "Mean") {
      n.op = OpId::kReduce;
      const bool keep =
          node.attrs.has("keep_dims") && node.attrs.at("keep_dims").asBool();
      n.attrs = {static_cast<double>(ReduceOp::kMean), keep ? 1.0 : 0.0,
                 static_cast<double>(DType::f32)};
      if (node.attrs.has("axes")) {
        for (const auto& a : node.attrs.at("axes").asArray()) {
          n.attrs.push_back(a.asInt());
        }
      }
      n.inputs = {in(0)};
    } else {
      throw UnimplementedError("GraphExecutor: unsupported op '" + op +
                               "' (node '" + name +
                               "'); run pruneTrainingOps first?");
    }

    const int id = append(std::move(n), name);
    inProgress.pop_back();
    idByName[name] = id;
    return id;
  }
};

}  // namespace

GraphExecutor::GraphExecutor(GraphDef graph) : graph_(std::move(graph)) {
  for (const auto& n : graph_.nodes) {
    TFJS_ARG_CHECK(byName_.emplace(n.name, &n).second,
                   "Duplicate graph node '" << n.name << "'");
    if (n.weight.defined() && !n.weight.isDisposed()) n.weight.keep();
  }
}

GraphExecutor::~GraphExecutor() {
  for (auto& [key, compiled] : cache_) compiled->exec.dispose();
  for (const auto& n : graph_.nodes) {
    if (n.weight.defined() && !n.weight.isDisposed()) n.weight.dispose();
  }
}

GraphExecutor::Compiled& GraphExecutor::compiledFor(
    const std::vector<std::string>& outputs) {
  std::string key;
  for (const auto& out : outputs) {
    key += out;
    key += '\n';
  }
  if (auto it = cache_.find(key); it != cache_.end()) return *it->second;

  Importer imp{byName_, {}, {}, {}, {}};
  for (const auto& out : outputs) {
    imp.g.outputs.push_back(imp.import(out));
  }
  auto compiled = std::make_unique<Compiled>();
  compiled->exec =
      graph::CapturedGraph(std::move(imp.g), graph::PassOptions::fromEnv());
  compiled->exec.setStrictFeedDtypes(false);
  compiled->placeholders = std::move(imp.placeholders);
  auto [it, inserted] = cache_.emplace(key, std::move(compiled));
  return *it->second;
}

std::vector<Tensor> GraphExecutor::execute(
    const std::map<std::string, Tensor>& feeds,
    std::span<const std::string> outputs) {
  std::vector<std::string> names;
  names.reserve(outputs.size());
  for (const auto& out : outputs) names.push_back(canonical(out));
  Compiled& compiled = compiledFor(names);

  std::vector<Tensor> ordered;
  ordered.reserve(compiled.placeholders.size());
  for (const std::string& ph : compiled.placeholders) {
    auto fed = feeds.find(ph);
    TFJS_ARG_CHECK(fed != feeds.end(),
                   "No feed provided for placeholder '" << ph << "'");
    ordered.push_back(fed->second);
  }
  return compiled.exec.run(ordered);
}

Tensor GraphExecutor::execute(const std::map<std::string, Tensor>& feeds) {
  TFJS_ARG_CHECK(!graph_.outputs.empty(), "Graph declares no outputs");
  const std::vector<std::string> outs{graph_.outputs[0]};
  return execute(feeds, outs)[0];
}

}  // namespace tfjs::io
