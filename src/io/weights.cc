#include "io/weights.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/engine.h"

namespace tfjs::io {

const char* quantizationName(Quantization q) {
  switch (q) {
    case Quantization::kNone: return "none";
    case Quantization::kUint8: return "uint8";
    case Quantization::kUint16: return "uint16";
  }
  return "none";
}

Quantization quantizationFromName(const std::string& s) {
  if (s == "none") return Quantization::kNone;
  if (s == "uint8") return Quantization::kUint8;
  if (s == "uint16") return Quantization::kUint16;
  throw InvalidArgumentError("Unknown quantization: " + s);
}

Json WeightSpec::toJson() const {
  Json j;
  j["name"] = name;
  JsonArray dims;
  for (int d : shape.dims()) dims.emplace_back(d);
  j["shape"] = Json(std::move(dims));
  j["dtype"] = dtypeName(dtype);
  if (quantization != Quantization::kNone) {
    Json q;
    q["dtype"] = quantizationName(quantization);
    q["min"] = static_cast<double>(quantMin);
    q["scale"] = static_cast<double>(quantScale);
    j["quantization"] = q;
  }
  return j;
}

WeightSpec WeightSpec::fromJson(const Json& j) {
  WeightSpec s;
  s.name = j.at("name").asString();
  std::vector<int> dims;
  for (const auto& d : j.at("shape").asArray()) dims.push_back(d.asInt());
  s.shape = Shape(dims);
  s.dtype = dtypeFromName(j.at("dtype").asString());
  if (j.has("quantization")) {
    const Json& q = j.at("quantization");
    s.quantization = quantizationFromName(q.at("dtype").asString());
    s.quantMin = static_cast<float>(q.at("min").asDouble());
    s.quantScale = static_cast<float>(q.at("scale").asDouble());
  }
  return s;
}

namespace {

/// Appends bytes to the shard list, splitting at the shard limit — the 4 MB
/// packing of paper section 5.1.
class ShardWriter {
 public:
  explicit ShardWriter(std::size_t limit) : limit_(limit) {}

  void append(const std::uint8_t* data, std::size_t n) {
    while (n > 0) {
      if (shards_.empty() || shards_.back().size() == limit_) {
        shards_.emplace_back();
        shards_.back().reserve(std::min(limit_, n));
      }
      auto& shard = shards_.back();
      const std::size_t take = std::min(n, limit_ - shard.size());
      shard.insert(shard.end(), data, data + take);
      data += take;
      n -= take;
    }
  }

  std::vector<std::vector<std::uint8_t>> take() { return std::move(shards_); }

 private:
  std::size_t limit_;
  std::vector<std::vector<std::uint8_t>> shards_;
};

/// Reads the logically contiguous byte stream back out of the shards.
class ShardReader {
 public:
  explicit ShardReader(const std::vector<std::vector<std::uint8_t>>& shards)
      : shards_(shards) {}

  void read(std::uint8_t* out, std::size_t n) {
    while (n > 0) {
      TFJS_ARG_CHECK(shard_ < shards_.size(),
                     "weights manifest truncated: ran out of shard data");
      const auto& shard = shards_[shard_];
      const std::size_t avail = shard.size() - offset_;
      const std::size_t take = std::min(n, avail);
      std::memcpy(out, shard.data() + offset_, take);
      out += take;
      offset_ += take;
      n -= take;
      if (offset_ == shard.size()) {
        ++shard_;
        offset_ = 0;
      }
    }
  }

 private:
  const std::vector<std::vector<std::uint8_t>>& shards_;
  std::size_t shard_ = 0;
  std::size_t offset_ = 0;
};

}  // namespace

WeightsManifest encodeWeights(
    std::span<const std::pair<std::string, Tensor>> weights,
    Quantization quantization, std::size_t maxShardBytes) {
  TFJS_ARG_CHECK(maxShardBytes > 0, "shard size must be positive");
  WeightsManifest manifest;
  ShardWriter writer(maxShardBytes);

  for (const auto& [name, tensor] : weights) {
    WeightSpec spec;
    spec.name = name;
    spec.shape = tensor.shape();
    spec.dtype = tensor.dtype();
    // Only f32 payloads are quantized; integer/bool weights stay exact.
    const Quantization q =
        tensor.dtype() == DType::f32 ? quantization : Quantization::kNone;
    spec.quantization = q;
    const std::vector<float> values = tensor.dataSync();

    if (q == Quantization::kNone) {
      writer.append(reinterpret_cast<const std::uint8_t*>(values.data()),
                    values.size() * 4);
    } else {
      float lo = std::numeric_limits<float>::infinity();
      float hi = -std::numeric_limits<float>::infinity();
      for (float v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (values.empty()) lo = hi = 0;
      const std::size_t levels = q == Quantization::kUint8 ? 255 : 65535;
      spec.quantMin = lo;
      spec.quantScale =
          hi == lo ? 1.0f : (hi - lo) / static_cast<float>(levels);
      if (q == Quantization::kUint8) {
        std::vector<std::uint8_t> quantized(values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          quantized[i] = static_cast<std::uint8_t>(
              std::lround((values[i] - spec.quantMin) / spec.quantScale));
        }
        writer.append(quantized.data(), quantized.size());
      } else {
        std::vector<std::uint16_t> quantized(values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          quantized[i] = static_cast<std::uint16_t>(
              std::lround((values[i] - spec.quantMin) / spec.quantScale));
        }
        writer.append(
            reinterpret_cast<const std::uint8_t*>(quantized.data()),
            quantized.size() * 2);
      }
    }
    manifest.specs.push_back(std::move(spec));
  }
  manifest.shards = writer.take();
  return manifest;
}

std::vector<std::pair<std::string, Tensor>> decodeWeights(
    const WeightsManifest& manifest) {
  ShardReader reader(manifest.shards);
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& spec : manifest.specs) {
    const std::size_t n = spec.shape.size();
    std::vector<float> values(n);
    switch (spec.quantization) {
      case Quantization::kNone: {
        reader.read(reinterpret_cast<std::uint8_t*>(values.data()), n * 4);
        break;
      }
      case Quantization::kUint8: {
        std::vector<std::uint8_t> q(n);
        reader.read(q.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          values[i] = spec.quantMin + spec.quantScale * static_cast<float>(q[i]);
        }
        break;
      }
      case Quantization::kUint16: {
        std::vector<std::uint16_t> q(n);
        reader.read(reinterpret_cast<std::uint8_t*>(q.data()), n * 2);
        for (std::size_t i = 0; i < n; ++i) {
          values[i] = spec.quantMin + spec.quantScale * static_cast<float>(q[i]);
        }
        break;
      }
    }
    out.emplace_back(spec.name, Engine::get().makeTensorFromHost(
                                    values, spec.shape, spec.dtype));
  }
  return out;
}

}  // namespace tfjs::io
