#include "io/weights.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/engine.h"

namespace tfjs::io {

const char* quantizationName(Quantization q) {
  switch (q) {
    case Quantization::kNone: return "none";
    case Quantization::kUint8: return "uint8";
    case Quantization::kUint16: return "uint16";
    case Quantization::kInt8: return "int8";
  }
  return "none";
}

Quantization quantizationFromName(const std::string& s) {
  if (s == "none") return Quantization::kNone;
  if (s == "uint8") return Quantization::kUint8;
  if (s == "uint16") return Quantization::kUint16;
  if (s == "int8") return Quantization::kInt8;
  throw InvalidArgumentError("Unknown quantization: " + s);
}

Json WeightSpec::toJson() const {
  Json j;
  j["name"] = name;
  JsonArray dims;
  for (int d : shape.dims()) dims.emplace_back(d);
  j["shape"] = Json(std::move(dims));
  j["dtype"] = dtypeName(dtype);
  if (quantization == Quantization::kInt8) {
    Json q;
    q["dtype"] = quantizationName(quantization);
    q["axis"] = quantAxis;
    JsonArray scales;
    for (float s : quantScales) scales.emplace_back(static_cast<double>(s));
    q["scales"] = Json(std::move(scales));
    bool symmetric = true;
    for (std::int32_t z : quantZeroPoints) symmetric = symmetric && z == 0;
    if (!symmetric) {
      JsonArray zps;
      for (std::int32_t z : quantZeroPoints) zps.emplace_back(z);
      q["zero_points"] = Json(std::move(zps));
    }
    j["quantization"] = q;
  } else if (quantization != Quantization::kNone) {
    Json q;
    q["dtype"] = quantizationName(quantization);
    q["min"] = static_cast<double>(quantMin);
    q["scale"] = static_cast<double>(quantScale);
    j["quantization"] = q;
  }
  return j;
}

WeightSpec WeightSpec::fromJson(const Json& j) {
  WeightSpec s;
  s.name = j.at("name").asString();
  std::vector<int> dims;
  for (const auto& d : j.at("shape").asArray()) dims.push_back(d.asInt());
  s.shape = Shape(dims);
  s.dtype = dtypeFromName(j.at("dtype").asString());
  if (j.has("quantization")) {
    const Json& q = j.at("quantization");
    s.quantization = quantizationFromName(q.at("dtype").asString());
    if (s.quantization == Quantization::kInt8) {
      s.quantAxis = q.at("axis").asInt();
      for (const auto& v : q.at("scales").asArray()) {
        s.quantScales.push_back(static_cast<float>(v.asDouble()));
      }
      if (q.has("zero_points")) {
        for (const auto& v : q.at("zero_points").asArray()) {
          s.quantZeroPoints.push_back(v.asInt());
        }
      } else {
        s.quantZeroPoints.assign(s.quantScales.size(), 0);
      }
    } else {
      s.quantMin = static_cast<float>(q.at("min").asDouble());
      s.quantScale = static_cast<float>(q.at("scale").asDouble());
    }
  }
  return s;
}

namespace {

/// Appends bytes to the shard list, splitting at the shard limit — the 4 MB
/// packing of paper section 5.1.
class ShardWriter {
 public:
  explicit ShardWriter(std::size_t limit) : limit_(limit) {}

  void append(const std::uint8_t* data, std::size_t n) {
    while (n > 0) {
      if (shards_.empty() || shards_.back().size() == limit_) {
        shards_.emplace_back();
        shards_.back().reserve(std::min(limit_, n));
      }
      auto& shard = shards_.back();
      const std::size_t take = std::min(n, limit_ - shard.size());
      shard.insert(shard.end(), data, data + take);
      data += take;
      n -= take;
    }
  }

  std::vector<std::vector<std::uint8_t>> take() { return std::move(shards_); }

 private:
  std::size_t limit_;
  std::vector<std::vector<std::uint8_t>> shards_;
};

/// Reads the logically contiguous byte stream back out of the shards.
class ShardReader {
 public:
  explicit ShardReader(const std::vector<std::vector<std::uint8_t>>& shards)
      : shards_(shards) {}

  void read(std::uint8_t* out, std::size_t n) {
    while (n > 0) {
      TFJS_ARG_CHECK(shard_ < shards_.size(),
                     "weights manifest truncated: ran out of shard data");
      const auto& shard = shards_[shard_];
      const std::size_t avail = shard.size() - offset_;
      const std::size_t take = std::min(n, avail);
      std::memcpy(out, shard.data() + offset_, take);
      out += take;
      offset_ += take;
      n -= take;
      if (offset_ == shard.size()) {
        ++shard_;
        offset_ = 0;
      }
    }
  }

 private:
  const std::vector<std::vector<std::uint8_t>>& shards_;
  std::size_t shard_ = 0;
  std::size_t offset_ = 0;
};

/// True for weights the int8 mode quantizes: f32 layer kernels of rank >= 2
/// that are not depthwise filters (the execution path keeps depthwise f32 —
/// its per-channel dot products are too short to amortize quantization).
bool int8Eligible(const std::string& name, const Tensor& t) {
  if (t.dtype() != DType::f32 || t.shape().rank() < 2) return false;
  if (name.size() < 7 || name.rfind("/kernel") != name.size() - 7) {
    return false;
  }
  return name.find("dw") == std::string::npos &&
         name.find("depthwise") == std::string::npos;
}

/// Casts integer-valued float codes (how int8 tensors store their elements,
/// see core/dtype.h) to the 1-byte transport representation.
std::vector<std::uint8_t> codesToBytes(const std::vector<float>& values) {
  std::vector<std::uint8_t> bytes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(
        static_cast<std::int8_t>(std::lround(values[i])));
  }
  return bytes;
}

}  // namespace

WeightsManifest encodeWeights(
    std::span<const std::pair<std::string, Tensor>> weights,
    Quantization quantization, std::size_t maxShardBytes) {
  TFJS_ARG_CHECK(maxShardBytes > 0, "shard size must be positive");
  WeightsManifest manifest;
  ShardWriter writer(maxShardBytes);

  for (const auto& [name, tensor] : weights) {
    WeightSpec spec;
    spec.name = name;
    spec.shape = tensor.shape();
    spec.dtype = tensor.dtype();
    const std::vector<float> values = tensor.dataSync();

    // A tensor that is already int8 with parameters serializes its codes and
    // parameters verbatim, under any requested mode.
    if (tensor.dtype() == DType::i8 && tensor.quantParams() != nullptr) {
      const QuantParams& qp = *tensor.quantParams();
      spec.quantization = Quantization::kInt8;
      spec.quantScales = qp.scale;
      spec.quantZeroPoints = qp.zeroPoint;
      spec.quantAxis = qp.axis;
      const auto bytes = codesToBytes(values);
      writer.append(bytes.data(), bytes.size());
      manifest.specs.push_back(std::move(spec));
      continue;
    }

    // int8 request: quantize eligible kernels per output channel (last
    // axis), symmetric — the same scheme ops::quantizePerChannel uses, so
    // the decoded tensor runs the quantized kernels directly.
    if (quantization == Quantization::kInt8 && int8Eligible(name, tensor)) {
      const int channels = spec.shape[spec.shape.rank() - 1];
      const std::size_t nc = static_cast<std::size_t>(channels);
      spec.dtype = DType::i8;
      spec.quantization = Quantization::kInt8;
      spec.quantAxis = spec.shape.rank() - 1;
      spec.quantScales.assign(nc, 0.f);
      spec.quantZeroPoints.assign(nc, 0);
      for (std::size_t i = 0; i < values.size(); ++i) {
        float& s = spec.quantScales[i % nc];
        s = std::max(s, std::fabs(values[i]));
      }
      // Dead channels (maxAbs 0) keep scale 0 with all-zero codes; kernels
      // multiply by the scale, never divide.
      for (float& s : spec.quantScales) s /= static_cast<float>(kInt8Max);
      std::vector<std::uint8_t> codes(values.size());
      for (std::size_t i = 0; i < values.size(); ++i) {
        const float s = spec.quantScales[i % nc];
        const long q8 = s == 0.f ? 0 : std::lround(values[i] / s);
        codes[i] = static_cast<std::uint8_t>(static_cast<std::int8_t>(
            std::clamp<long>(q8, kInt8Min, kInt8Max)));
      }
      writer.append(codes.data(), codes.size());
      manifest.specs.push_back(std::move(spec));
      continue;
    }

    // Only f32 payloads are quantized; integer/bool weights stay exact —
    // and the int8 mode stores its non-eligible tensors raw.
    const Quantization q =
        tensor.dtype() == DType::f32 && quantization != Quantization::kInt8
            ? quantization
            : Quantization::kNone;
    spec.quantization = q;

    if (q == Quantization::kNone) {
      writer.append(reinterpret_cast<const std::uint8_t*>(values.data()),
                    values.size() * 4);
    } else {
      float lo = std::numeric_limits<float>::infinity();
      float hi = -std::numeric_limits<float>::infinity();
      for (float v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (values.empty()) lo = hi = 0;
      const std::size_t levels = q == Quantization::kUint8 ? 255 : 65535;
      spec.quantMin = lo;
      spec.quantScale =
          hi == lo ? 1.0f : (hi - lo) / static_cast<float>(levels);
      if (q == Quantization::kUint8) {
        std::vector<std::uint8_t> quantized(values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          quantized[i] = static_cast<std::uint8_t>(
              std::lround((values[i] - spec.quantMin) / spec.quantScale));
        }
        writer.append(quantized.data(), quantized.size());
      } else {
        std::vector<std::uint16_t> quantized(values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          quantized[i] = static_cast<std::uint16_t>(
              std::lround((values[i] - spec.quantMin) / spec.quantScale));
        }
        writer.append(
            reinterpret_cast<const std::uint8_t*>(quantized.data()),
            quantized.size() * 2);
      }
    }
    manifest.specs.push_back(std::move(spec));
  }
  manifest.shards = writer.take();
  return manifest;
}

std::vector<std::pair<std::string, Tensor>> decodeWeights(
    const WeightsManifest& manifest) {
  ShardReader reader(manifest.shards);
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& spec : manifest.specs) {
    const std::size_t n = spec.shape.size();
    std::vector<float> values(n);
    switch (spec.quantization) {
      case Quantization::kNone: {
        reader.read(reinterpret_cast<std::uint8_t*>(values.data()), n * 4);
        break;
      }
      case Quantization::kUint8: {
        std::vector<std::uint8_t> q(n);
        reader.read(q.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          values[i] = spec.quantMin + spec.quantScale * static_cast<float>(q[i]);
        }
        break;
      }
      case Quantization::kUint16: {
        std::vector<std::uint16_t> q(n);
        reader.read(reinterpret_cast<std::uint8_t*>(q.data()), n * 2);
        for (std::size_t i = 0; i < n; ++i) {
          values[i] = spec.quantMin + spec.quantScale * static_cast<float>(q[i]);
        }
        break;
      }
      case Quantization::kInt8: {
        std::vector<std::uint8_t> q(n);
        reader.read(q.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          values[i] = static_cast<float>(static_cast<std::int8_t>(q[i]));
        }
        break;
      }
    }
    Tensor t =
        Engine::get().makeTensorFromHost(values, spec.shape, spec.dtype);
    if (spec.quantization == Quantization::kInt8) {
      auto qp = std::make_shared<QuantParams>();
      qp->scale = spec.quantScales;
      qp->zeroPoint = spec.quantZeroPoints;
      qp->axis = spec.quantAxis;
      qp->validate();
      t.setQuantParams(std::move(qp));
    }
    out.emplace_back(spec.name, std::move(t));
  }
  return out;
}

}  // namespace tfjs::io
