// Deterministic, seedable random number generation used for synthetic
// weights and datasets (DESIGN.md substitution: pre-trained weights →
// seeded initializers with architecture-faithful shapes).
#pragma once

#include <cstdint>
#include <vector>

namespace tfjs {

/// Small, fast counter-free PRNG (xoshiro128**) with explicit seeding so
/// every experiment is reproducible run-to-run.
class Random {
 public:
  explicit Random(std::uint64_t seed = 42);

  /// Uniform in [0, 1).
  float uniform();
  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);
  /// Standard normal via Box–Muller.
  float normal();
  float normal(float mean, float stddev);
  /// Uniform integer in [0, n).
  std::uint32_t below(std::uint32_t n);

  std::vector<float> uniformVector(std::size_t n, float lo, float hi);
  std::vector<float> normalVector(std::size_t n, float mean, float stddev);

 private:
  std::uint32_t next();
  std::uint32_t s_[4];
  bool hasSpare_ = false;
  float spare_ = 0;
};

}  // namespace tfjs
