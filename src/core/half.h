// IEEE-754 half-precision (binary16) round-trip, used by the WebGL-sim
// backend's 16-bit texture mode to reproduce the iOS numerical-precision
// behaviour described in paper section 4.1.3 (log(x + 1e-8) underflowing
// because 1e-8 is not representable in fp16 next to x).
#pragma once

#include <cstdint>
#include <cstring>

namespace tfjs {

/// Converts a float to the nearest binary16 value (round-to-nearest-even),
/// returned as its 16-bit pattern.
inline std::uint16_t floatToHalf(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, 4);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::uint32_t mant = x & 0x007FFFFFu;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFF) - 127;

  if (exp == 128) {  // Inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0));
  }
  if (exp > 15) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp >= -14) {  // normal
    std::uint32_t half = sign |
                         (static_cast<std::uint32_t>(exp + 15) << 10) |
                         (mant >> 13);
    // round to nearest even on the 13 truncated bits
    const std::uint32_t rem = mant & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(half);
  }
  if (exp >= -24) {  // subnormal: value = bits * 2^-24
    mant |= 0x00800000u;  // implicit leading 1
    // bits = round(mant * 2^(exp+1)) with round-to-nearest-even.
    const int shift = -exp - 1;  // 14..23
    std::uint32_t half = sign | (mant >> shift);
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(half);
  }
  return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
}

/// Expands a binary16 bit pattern back to float.
inline float halfToFloat(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t expo = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;
  std::uint32_t x;
  if (expo == 0) {
    if (mant == 0) {
      x = sign;  // zero
    } else {     // subnormal: normalize
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      x = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x3FFu) << 13);
    }
  } else if (expo == 31) {
    x = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  } else {
    x = sign | ((expo - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, 4);
  return f;
}

/// Quantizes a float through binary16 and back — the value a 16-bit WebGL
/// texture would actually hold.
inline float roundTripHalf(float f) { return halfToFloat(floatToHalf(f)); }

}  // namespace tfjs
