// Convolution / pooling geometry, resolved once in the ops layer and handed
// to backend kernels as explicit numbers (mirrors tfjs conv_util).
//
// All spatial ops use NHWC activations and HWIO filters ([h, w, inC, outC];
// depthwise filters are [h, w, inC, channelMult]).
#pragma once

#include <string>

#include "core/error.h"
#include "core/shape.h"

namespace tfjs {

enum class PadMode { kValid, kSame };

inline PadMode padModeFromName(const std::string& s) {
  if (s == "valid") return PadMode::kValid;
  if (s == "same") return PadMode::kSame;
  throw InvalidArgumentError("Unknown padding mode: " + s);
}

struct Conv2DInfo {
  int batch = 0;
  int inH = 0, inW = 0, inC = 0;
  int outH = 0, outW = 0, outC = 0;
  int filterH = 0, filterW = 0;
  int strideH = 1, strideW = 1;
  int dilationH = 1, dilationW = 1;
  int padTop = 0, padLeft = 0;
  /// Depthwise channel multiplier (0 for regular convolution).
  int channelMult = 0;

  std::size_t flops() const {
    // 2 (mul+add) per MAC; depthwise has inC*mult output channels with
    // filterH*filterW MACs each, regular conv has inC*filterH*filterW MACs
    // per output element.
    const std::size_t outElems = static_cast<std::size_t>(batch) *
                                 static_cast<std::size_t>(outH) *
                                 static_cast<std::size_t>(outW) *
                                 static_cast<std::size_t>(outC);
    const std::size_t macs =
        channelMult > 0
            ? static_cast<std::size_t>(filterH) * filterW
            : static_cast<std::size_t>(filterH) * filterW * inC;
    return 2 * outElems * macs;
  }
};

struct Pool2DInfo {
  int batch = 0;
  int inH = 0, inW = 0, channels = 0;
  int outH = 0, outW = 0;
  int filterH = 0, filterW = 0;
  int strideH = 1, strideW = 1;
  int padTop = 0, padLeft = 0;
};

namespace conv_util {

/// Output extent along one spatial axis.
inline int outputSize(int in, int filter, int stride, int dilation,
                      PadMode pad) {
  const int effective = (filter - 1) * dilation + 1;
  if (pad == PadMode::kSame) return (in + stride - 1) / stride;
  TFJS_ARG_CHECK(in >= effective,
                 "valid padding requires input " << in
                     << " >= effective filter " << effective);
  return (in - effective) / stride + 1;
}

/// Leading (top/left) padding for SAME; 0 for VALID.
inline int padBefore(int in, int out, int filter, int stride, int dilation,
                     PadMode pad) {
  if (pad == PadMode::kValid) return 0;
  const int effective = (filter - 1) * dilation + 1;
  const int total = (out - 1) * stride + effective - in;
  return total > 0 ? total / 2 : 0;
}

Conv2DInfo computeConv2DInfo(const Shape& x, const Shape& filter, int strideH,
                             int strideW, PadMode pad, int dilationH = 1,
                             int dilationW = 1, bool depthwise = false);

Pool2DInfo computePool2DInfo(const Shape& x, int filterH, int filterW,
                             int strideH, int strideW, PadMode pad);

}  // namespace conv_util
}  // namespace tfjs
