// Quantization parameters carried by int8 tensors (the metadata side of the
// end-to-end int8 inference path; DESIGN.md "Quantized execution").
//
// Scheme:
//  * Weights are quantized symmetrically per output channel along their LAST
//    axis (matMul weights are [k, n] with channel = n; conv filters are HWIO
//    with channel = O): q = clamp(round(w / scale[c]), -127, 127) with
//    zero point 0. A dead channel (all-zero weights) gets scale[c] == 0 and
//    all-zero codes — kernels multiply by the scale, so the column
//    dequantizes to exactly 0 without ever dividing by the zero scale.
//  * Activations are quantized dynamically *inside* the quantized kernels,
//    per GEMM row, to asymmetric uint8 (see backends/common/quant_math.h);
//    only their f32 values ever live in a tensor.
//  * An int8 tensor's elements are stored as float (like i32/b8 — see
//    core/dtype.h); memory accounting and the transport format advertise
//    1 byte per element.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/error.h"

namespace tfjs {

/// Symmetric int8 code range. ±127 (not -128) keeps the code space
/// symmetric, so negating a tensor never overflows a code.
inline constexpr std::int32_t kInt8Min = -127;
inline constexpr std::int32_t kInt8Max = 127;

/// Affine dequantization parameters of an int8 tensor:
///   real = (code - zeroPoint[c]) * scale[c]
/// Per-tensor when axis < 0 (scale/zeroPoint hold one entry); per-channel
/// along `axis` otherwise (one entry per channel). Weight tensors use
/// per-channel symmetric parameters (zeroPoint all 0) along their last axis.
struct QuantParams {
  std::vector<float> scale;
  std::vector<std::int32_t> zeroPoint;
  int axis = -1;  ///< quantized axis; -1 = per-tensor

  bool perChannel() const { return axis >= 0; }
  std::size_t channels() const { return scale.size(); }

  float scaleFor(std::size_t c) const {
    return scale.size() == 1 ? scale[0] : scale[c];
  }
  std::int32_t zeroPointFor(std::size_t c) const {
    return zeroPoint.size() == 1 ? zeroPoint[0] : zeroPoint[c];
  }
  bool symmetric() const {
    for (std::int32_t z : zeroPoint) {
      if (z != 0) return false;
    }
    return true;
  }

  void validate() const {
    TFJS_ARG_CHECK(!scale.empty(), "QuantParams needs at least one scale");
    TFJS_ARG_CHECK(scale.size() == zeroPoint.size(),
                   "QuantParams scale/zeroPoint size mismatch: "
                       << scale.size() << " vs " << zeroPoint.size());
  }

  /// Per-tensor parameters.
  static QuantParams perTensor(float s, std::int32_t zp) {
    QuantParams q;
    q.scale = {s};
    q.zeroPoint = {zp};
    q.axis = -1;
    return q;
  }
};

using QuantParamsPtr = std::shared_ptr<const QuantParams>;

/// Requested output quantization of a quantized kernel: when present the
/// kernel requantizes its f32 epilogue result to int8 codes
/// clamp(round(y / scale) + zeroPoint, -127, 127) inside the panel.
struct OutQuant {
  float scale = 1.f;
  std::int32_t zeroPoint = 0;
};

}  // namespace tfjs
