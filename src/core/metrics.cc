#include "core/metrics.h"

#include <bit>
#include <cstdio>
#include <limits>

namespace tfjs::metrics {

// -------------------------------------------------------------- Histogram

double Histogram::bucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  // 0.001 * 2^i: 0.001, 0.002, 0.004, ... ≈ 4194 (ms-scale latencies).
  return 0.001 * static_cast<double>(std::uint64_t{1} << i);
}

void Histogram::observe(double v) {
  int bucket = 0;
  while (bucket < kNumBuckets - 1 && v > bucketUpperBound(bucket)) ++bucket;
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free sum: CAS on the bit pattern.
  std::uint64_t oldBits = sumBits_.load(std::memory_order_relaxed);
  while (!sumBits_.compare_exchange_weak(
      oldBits, std::bit_cast<std::uint64_t>(std::bit_cast<double>(oldBits) + v),
      std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = std::bit_cast<double>(sumBits_.load(std::memory_order_relaxed));
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sumBits_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- Registry

Registry& Registry::get() {
  // Leaked singleton: cached instrument references in backend/thread-pool
  // code must stay valid through process teardown.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

void appendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string Registry::toJsonString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    const auto s = h->snapshot();
    out += "\"" + name + "\":{\"count\":" + std::to_string(s.count) +
           ",\"sum\":";
    appendDouble(out, s.sum);
    out += ",\"mean\":";
    appendDouble(out, s.mean());
    out += ",\"buckets\":[";
    bool firstBucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const auto n = s.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;  // sparse encoding: only occupied buckets
      if (!firstBucket) out += ",";
      firstBucket = false;
      out += "{\"le\":";
      const double le = Histogram::bucketUpperBound(i);
      if (le == std::numeric_limits<double>::infinity()) {
        out += "\"inf\"";
      } else {
        appendDouble(out, le);
      }
      out += ",\"count\":" + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace tfjs::metrics
