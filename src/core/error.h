// Error hierarchy for tfjs-cpp.
//
// User-facing failures (bad shapes, disposed tensors, unknown backends) throw
// exceptions derived from tfjs::Error; internal invariant violations use
// TFJS_CHECK which throws InternalError with file/line context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tfjs {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed invalid arguments (shape mismatch, bad axis, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// An op rejected the logical geometry of its inputs (rank/shape/axis
/// mismatch). Subclass of InvalidArgumentError so existing catch sites keep
/// working, while callers that care can distinguish shape problems from
/// other bad arguments — and from backend failures (BackendError).
class ShapeError : public InvalidArgumentError {
 public:
  explicit ShapeError(const std::string& what) : InvalidArgumentError(what) {}
};

/// A backend failed to honour a storage or kernel request (unknown DataId,
/// device queue error, ...). Distinct from InvalidArgumentError: the ops
/// layer validated the request, the device layer could not serve it.
class BackendError : public Error {
 public:
  explicit BackendError(const std::string& what) : Error(what) {}
};

/// A tensor (or its backing data) was used after dispose().
class DisposedError : public Error {
 public:
  explicit DisposedError(const std::string& what) : Error(what) {}
};

/// The active backend does not implement a requested kernel.
class UnimplementedError : public Error {
 public:
  explicit UnimplementedError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated (a library bug, not a user error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown by the debug-mode NaN checker (paper section 3.8): identifies the
/// first kernel whose output contains a NaN or Inf.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

namespace internal {
[[noreturn]] inline void checkFailed(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "TFJS_CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}
}  // namespace internal

#define TFJS_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) ::tfjs::internal::checkFailed(#cond, __FILE__, __LINE__, \
                                               "");                       \
  } while (0)

#define TFJS_CHECK_MSG(cond, msg)                                 \
  do {                                                            \
    if (!(cond)) {                                                \
      std::ostringstream os_;                                     \
      os_ << msg;                                                 \
      ::tfjs::internal::checkFailed(#cond, __FILE__, __LINE__,    \
                                    os_.str());                   \
    }                                                             \
  } while (0)

/// Throws InvalidArgumentError with a streamed message when cond is false.
#define TFJS_ARG_CHECK(cond, msg)                  \
  do {                                             \
    if (!(cond)) {                                 \
      std::ostringstream os_;                      \
      os_ << msg;                                  \
      throw ::tfjs::InvalidArgumentError(os_.str()); \
    }                                              \
  } while (0)

/// Throws ShapeError when cond is false — for rank/shape/axis validation in
/// the ops layer.
#define TFJS_SHAPE_CHECK(cond, msg)      \
  do {                                   \
    if (!(cond)) {                       \
      std::ostringstream os_;            \
      os_ << msg;                        \
      throw ::tfjs::ShapeError(os_.str()); \
    }                                    \
  } while (0)

}  // namespace tfjs
