// BufferPool: process-wide recycler for the CPU backends' float buffers —
// the host-memory analogue of the WebGL texture recycler (paper section 3.9).
//
// Kernel outputs churn hard in an eager runtime: every op allocates a fresh
// buffer and dispose frees it a few ops later. The pool intercepts that
// cycle: disposeData() parks the vector in a power-of-two size bucket and the
// next allocation of a compatible size pops it back out, so steady-state
// inference does no heap traffic at all. Buckets are keyed by the vector's
// *capacity* class; acquire() rounds the requested element count up to the
// next power of two on a miss, which guarantees any buffer parked in bucket b
// can serve any request that maps to bucket b.
//
// A byte cap (default 256 MiB, `TFJS_BUFFER_POOL_MB`) bounds parked memory;
// beyond it the least-recently-returned buffers are evicted (freed).
// `TFJS_BUFFER_POOL=0` disables the pool entirely — every acquire falls
// through to the heap and every release frees.
//
// Thread-safe: the native backend's workers release scratch buffers from the
// thread pool while the main thread allocates outputs.
// Graph arenas (DESIGN.md "Graph capture & optimization"): the graph
// executor owns one arena per (graph, backend) and binds it to the thread
// for the duration of a run. While bound, acquire() serves from the arena's
// dedicated slots before touching the shared buckets, and every miss is
// adopted: the fresh buffer joins the arena when released, so by the second
// run the arena holds the graph's full working set and steady-state runs do
// zero shared-bucket traffic and zero heap traffic. The static memory plan
// seeds the slots up front (arenaReserve) so even the first planned run
// mostly hits.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace tfjs::core {

class BufferPool {
 public:
  /// The process-wide pool (leaked singleton, like Engine). Reads the
  /// TFJS_BUFFER_POOL / TFJS_BUFFER_POOL_MB environment on first use.
  static BufferPool& get();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with size() == n. On a pool hit the contents below n are
  /// stale values from the previous owner — callers that do not overwrite
  /// every element must use acquireFilled().
  std::vector<float> acquire(std::size_t n);
  /// acquire() + fill every element with `value` (0 for accumulators).
  std::vector<float> acquireFilled(std::size_t n, float value);
  /// Parks `v` in its capacity bucket for reuse (or frees it when the pool
  /// is disabled), then evicts least-recently-returned buffers while the
  /// parked total exceeds the byte cap.
  void release(std::vector<float> v);

  bool enabled() const;
  void setEnabled(bool on);
  std::size_t capBytes() const;
  void setCapBytes(std::size_t cap);
  /// Frees every parked buffer. Stats keep accumulating.
  void clear();
  /// Re-reads TFJS_BUFFER_POOL / TFJS_BUFFER_POOL_MB (test hook; get()
  /// already ran it once at process start).
  void initFromEnv();

  struct Stats {
    std::uint64_t hits = 0;       ///< acquires served from a bucket
    std::uint64_t misses = 0;     ///< acquires that went to the heap
    std::uint64_t bypasses = 0;   ///< acquires while the pool was disabled
    std::uint64_t returns = 0;    ///< buffers parked by release()
    std::uint64_t evictions = 0;  ///< parked buffers freed by the byte cap
    std::size_t pooledBytes = 0;  ///< bytes currently parked (free to reuse)
  };
  Stats stats() const;
  /// Bytes currently parked — what engine.memory() reports as pooledBytes.
  std::size_t pooledBytes() const;
  void resetStats();

  // ---- graph arenas ----------------------------------------------------
  using ArenaId = int;  ///< 0 = no arena

  /// Creates an empty arena; slots are added by arenaReserve() and by
  /// adoption of bound-run misses.
  ArenaId createArena();
  /// Frees the arena's parked slots and forgets its outstanding loans
  /// (loaned buffers fall back to the shared buckets when released).
  void destroyArena(ArenaId id);
  /// Pre-sizes `count` slots able to serve `elems`-element requests.
  void arenaReserve(ArenaId id, std::size_t elems, int count);
  /// Binds/unbinds the arena to the calling thread: while bound, acquire()
  /// consults the arena first and misses are adopted on release.
  void bindArena(ArenaId id);
  void unbindArena();

  struct ArenaStats {
    std::uint64_t hits = 0;     ///< acquires served from an arena slot
    std::uint64_t misses = 0;   ///< bound acquires that went to the heap
    std::uint64_t adopted = 0;  ///< miss buffers absorbed on release
    std::size_t bytes = 0;      ///< arena capacity (free + loaned out)
  };
  ArenaStats arenaStats(ArenaId id) const;

 private:
  BufferPool();

  struct Entry {
    std::uint64_t stamp = 0;  ///< monotone return order, for LRU eviction
    std::vector<float> buf;
  };

  // 2^47 floats is far beyond any addressable tensor; larger buffers are
  // simply never pooled.
  static constexpr int kBuckets = 48;

  void evictLocked();
  void publishGaugeLocked();

  struct Arena {
    std::deque<std::vector<float>> free[kBuckets];
    ArenaStats stats;
  };

  /// Serves a bound-arena request; returns false when the arena has no free
  /// slot of the right class (caller falls through and the miss is loaned).
  bool arenaAcquireLocked(ArenaId id, std::size_t n, std::vector<float>* out);
  /// Returns/adopts `v` into its owning arena; false when `v` is not an
  /// arena loan (caller parks it in the shared buckets).
  bool arenaReleaseLocked(std::vector<float>& v);

  mutable std::mutex mu_;
  std::deque<Entry> buckets_[kBuckets];
  bool enabled_ = true;
  std::size_t capBytes_;
  std::size_t pooledBytes_ = 0;
  std::uint64_t clock_ = 0;
  Stats stats_;

  struct Loan {
    ArenaId id = 0;
    bool fresh = false;  ///< miss buffer: adopt (and count) on release
  };

  std::map<ArenaId, Arena> arenas_;
  /// Buffers currently loaned out of (hits) or promised to (misses) an
  /// arena, keyed by their heap pointer — vector moves preserve it.
  std::unordered_map<const float*, Loan> loans_;
  ArenaId nextArenaId_ = 1;
  std::size_t arenaBytes_ = 0;  ///< total capacity across all arenas
  static thread_local ArenaId boundArena_;
};

}  // namespace tfjs::core
