// BufferPool: process-wide recycler for the CPU backends' float buffers —
// the host-memory analogue of the WebGL texture recycler (paper section 3.9).
//
// Kernel outputs churn hard in an eager runtime: every op allocates a fresh
// buffer and dispose frees it a few ops later. The pool intercepts that
// cycle: disposeData() parks the vector in a power-of-two size bucket and the
// next allocation of a compatible size pops it back out, so steady-state
// inference does no heap traffic at all. Buckets are keyed by the vector's
// *capacity* class; acquire() rounds the requested element count up to the
// next power of two on a miss, which guarantees any buffer parked in bucket b
// can serve any request that maps to bucket b.
//
// A byte cap (default 256 MiB, `TFJS_BUFFER_POOL_MB`) bounds parked memory;
// beyond it the least-recently-returned buffers are evicted (freed).
// `TFJS_BUFFER_POOL=0` disables the pool entirely — every acquire falls
// through to the heap and every release frees.
//
// Thread-safe: the native backend's workers release scratch buffers from the
// thread pool while the main thread allocates outputs.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace tfjs::core {

class BufferPool {
 public:
  /// The process-wide pool (leaked singleton, like Engine). Reads the
  /// TFJS_BUFFER_POOL / TFJS_BUFFER_POOL_MB environment on first use.
  static BufferPool& get();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with size() == n. On a pool hit the contents below n are
  /// stale values from the previous owner — callers that do not overwrite
  /// every element must use acquireFilled().
  std::vector<float> acquire(std::size_t n);
  /// acquire() + fill every element with `value` (0 for accumulators).
  std::vector<float> acquireFilled(std::size_t n, float value);
  /// Parks `v` in its capacity bucket for reuse (or frees it when the pool
  /// is disabled), then evicts least-recently-returned buffers while the
  /// parked total exceeds the byte cap.
  void release(std::vector<float> v);

  bool enabled() const;
  void setEnabled(bool on);
  std::size_t capBytes() const;
  void setCapBytes(std::size_t cap);
  /// Frees every parked buffer. Stats keep accumulating.
  void clear();
  /// Re-reads TFJS_BUFFER_POOL / TFJS_BUFFER_POOL_MB (test hook; get()
  /// already ran it once at process start).
  void initFromEnv();

  struct Stats {
    std::uint64_t hits = 0;       ///< acquires served from a bucket
    std::uint64_t misses = 0;     ///< acquires that went to the heap
    std::uint64_t bypasses = 0;   ///< acquires while the pool was disabled
    std::uint64_t returns = 0;    ///< buffers parked by release()
    std::uint64_t evictions = 0;  ///< parked buffers freed by the byte cap
    std::size_t pooledBytes = 0;  ///< bytes currently parked (free to reuse)
  };
  Stats stats() const;
  /// Bytes currently parked — what engine.memory() reports as pooledBytes.
  std::size_t pooledBytes() const;
  void resetStats();

 private:
  BufferPool();

  struct Entry {
    std::uint64_t stamp = 0;  ///< monotone return order, for LRU eviction
    std::vector<float> buf;
  };

  // 2^47 floats is far beyond any addressable tensor; larger buffers are
  // simply never pooled.
  static constexpr int kBuckets = 48;

  void evictLocked();
  void publishGaugeLocked();

  mutable std::mutex mu_;
  std::deque<Entry> buckets_[kBuckets];
  bool enabled_ = true;
  std::size_t capBytes_;
  std::size_t pooledBytes_ = 0;
  std::uint64_t clock_ = 0;
  Stats stats_;
};

}  // namespace tfjs::core
