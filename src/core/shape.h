// Shape: the logical N-D extent of a tensor.
//
// Shapes are small value types (rank <= 6 in practice). They are decoupled
// from physical layout — the WebGL-sim backend maps a logical Shape onto a
// 2-D physical texture (paper section 4.1), and reshape never touches data.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/error.h"

namespace tfjs {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<int> dims) : dims_(std::move(dims)) { validate(); }

  int rank() const { return static_cast<int>(dims_.size()); }

  /// Total number of elements (1 for a scalar shape).
  std::size_t size() const {
    std::size_t n = 1;
    for (int d : dims_) n *= static_cast<std::size_t>(d);
    return n;
  }

  int operator[](int axis) const {
    TFJS_CHECK_MSG(axis >= 0 && axis < rank(),
                   "axis " << axis << " out of range for rank " << rank());
    return dims_[static_cast<std::size_t>(axis)];
  }

  const std::vector<int>& dims() const { return dims_; }

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  /// Row-major strides, in elements.
  std::vector<std::size_t> strides() const {
    std::vector<std::size_t> s(dims_.size(), 1);
    for (int i = rank() - 2; i >= 0; --i) {
      s[static_cast<std::size_t>(i)] =
          s[static_cast<std::size_t>(i + 1)] *
          static_cast<std::size_t>(dims_[static_cast<std::size_t>(i + 1)]);
    }
    return s;
  }

  /// Shape with all size-1 dimensions removed (used by the shader compiler's
  /// squeezed-coordinate optimization, paper section 4.1).
  Shape squeezed() const {
    std::vector<int> out;
    for (int d : dims_) {
      if (d != 1) out.push_back(d);
    }
    return Shape(std::move(out));
  }

  std::string toString() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void validate() const {
    for (int d : dims_) {
      // -1 is the "infer this dimension" placeholder accepted (and resolved)
      // by ops::reshape; all other dimensions must be non-negative.
      TFJS_ARG_CHECK(d >= -1, "Shape dimensions must be non-negative, got "
                                  << toString());
    }
  }

  std::vector<int> dims_;
};

}  // namespace tfjs
