// Metrics: a process-wide registry of named counters, gauges and
// histograms, built for always-on use (every instrument is a couple of
// relaxed atomics; no locks on the hot path).
//
// Naming convention is dotted lowercase, subsystem first:
//   engine.kernels_dispatched     backend.bytes_uploaded
//   backend.bytes_downloaded      webgl.recycler_hits / recycler_misses
//   webgl.page_ins / page_outs    webgl.queue_depth (gauge)
//   webgl.commands / webgl.fences threadpool.parallel_fors / chunks
//   eventloop.frames / frames_dropped / tasks
//   eventloop.frame_lateness_ms (histogram)
//
// Call sites cache the reference once:
//   static metrics::Counter& c = metrics::Registry::get().counter("x.y");
//   c.inc();
// References stay valid for the process lifetime (leaked singleton,
// node-stable storage).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tfjs::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, live bytes); can go up and down.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Distribution of observed values in power-of-two buckets spanning
/// [0.001, 4194) with an overflow bucket — sized for millisecond latencies.
class Histogram {
 public:
  static constexpr int kNumBuckets = 24;

  /// Upper bound of bucket i (inclusive); the last bucket is unbounded.
  static double bucketUpperBound(int i);

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    std::array<std::uint64_t, kNumBuckets> buckets{};
    double mean() const { return count ? sum / static_cast<double>(count) : 0; }
  };
  Snapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  /// Stored as bits for a lock-free CAS add.
  std::atomic<std::uint64_t> sumBits_{0};
};

/// Process-wide instrument registry. Lookup takes a mutex (call sites cache
/// the returned reference); updates on the cached instruments are lock-free.
class Registry {
 public:
  static Registry& get();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with names in
  /// lexicographic order (std::map iteration).
  std::string toJsonString() const;

  /// Zeroes every registered instrument (references stay valid). Test hook.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  // unique_ptr nodes so references survive map rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tfjs::metrics
