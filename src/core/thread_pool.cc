#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/trace.h"

namespace tfjs::core {

namespace {
/// True while the current thread is executing a chunk body; nested
/// parallelFor calls detect this and run inline.
thread_local bool tInParallelRegion = false;
}  // namespace

struct ThreadPool::Impl {
  /// One parallelFor invocation. Chunk *partitioning* is fixed by (n, grain);
  /// chunk → thread assignment is first-come (the atomic counter), which is
  /// scheduling-dependent but irrelevant to results: chunks are disjoint and
  /// each runs serially on one thread.
  struct Job {
    std::size_t grain = 1;
    std::size_t n = 0;
    std::size_t numChunks = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> nextChunk{0};
    std::atomic<int> participants{0};
    std::atomic<int> activeWorkers{0};  // workers (not caller) inside runChunks
    std::atomic<bool> cancelled{false};
    /// Snapshot of trace::active() at submit time: chunk spans are emitted
    /// only when someone was listening when the job started.
    bool traced = false;
    std::mutex excMu;
    std::exception_ptr firstExc;
  };

  std::mutex mu;                 // guards workers/targetThreads/job pointer
  std::condition_variable wake;  // workers wait here for a job
  std::condition_variable done;  // caller waits here for workers to drain
  std::vector<std::thread> workers;
  Job* job = nullptr;            // currently published job, null when idle
  std::uint64_t jobSeq = 0;      // bumped per job so workers run it once
  int targetThreads = 1;
  bool shuttingDown = false;
  std::atomic<int> maxParallelismSinceTake{1};

  void noteParticipant(Job& j) {
    const int p = j.participants.fetch_add(1) + 1;
    int prev = maxParallelismSinceTake.load(std::memory_order_relaxed);
    while (prev < p &&
           !maxParallelismSinceTake.compare_exchange_weak(prev, p)) {
    }
  }

  void runChunks(Job& j) {
    bool counted = false;
    for (;;) {
      if (j.cancelled.load(std::memory_order_relaxed)) break;
      const std::size_t c =
          j.nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= j.numChunks) break;
      if (!counted) {
        counted = true;
        noteParticipant(j);
      }
      const std::size_t begin = c * j.grain;
      const std::size_t end = std::min(begin + j.grain, j.n);
      tInParallelRegion = true;
      try {
        trace::Span span("pool", j.traced ? "chunk" : nullptr);
        (*j.fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lk(j.excMu);
        if (!j.firstExc) j.firstExc = std::current_exception();
        j.cancelled.store(true, std::memory_order_relaxed);
      }
      tInParallelRegion = false;
    }
  }

  void workerLoop() {
    std::uint64_t seenSeq = 0;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      wake.wait(lk, [&] {
        return shuttingDown || (job != nullptr && jobSeq != seenSeq);
      });
      if (shuttingDown) return;
      Job* j = job;
      seenSeq = jobSeq;
      // Register under the lock: once the caller unpublishes the job (also
      // under the lock), the set of registered workers is final, so waiting
      // for activeWorkers == 0 cannot race with late joiners.
      j->activeWorkers.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();
      runChunks(*j);
      lk.lock();
      j->activeWorkers.fetch_sub(1, std::memory_order_relaxed);
      done.notify_all();
    }
  }

  void ensureWorkersLocked() {
    // targetThreads counts the caller, so spawn targetThreads - 1 workers.
    while (static_cast<int>(workers.size()) < targetThreads - 1) {
      workers.emplace_back([this] { workerLoop(); });
    }
  }

  void joinWorkersLocked(std::unique_lock<std::mutex>& lk) {
    if (workers.empty()) return;
    shuttingDown = true;
    wake.notify_all();
    std::vector<std::thread> doomed;
    doomed.swap(workers);
    lk.unlock();
    for (auto& w : doomed) w.join();
    lk.lock();
    shuttingDown = false;
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  impl_->targetThreads =
      threadsFromEnv(std::getenv("TFJS_NUM_THREADS"), fallback);
}

ThreadPool& ThreadPool::get() {
  static ThreadPool* pool = new ThreadPool();  // leaked
  return *pool;
}

int ThreadPool::threadsFromEnv(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 1) return fallback;
  return static_cast<int>(std::min<long>(v, 1024));
}

int ThreadPool::numThreads() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->targetThreads;
}

void ThreadPool::setNumThreads(int n) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->joinWorkersLocked(lk);
  impl_->targetThreads = std::max(n, 1);
}

void ThreadPool::parallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t numChunks = (n + grain - 1) / grain;
  static metrics::Counter& parallelFors =
      metrics::Registry::get().counter("threadpool.parallel_fors");
  static metrics::Counter& chunksCounter =
      metrics::Registry::get().counter("threadpool.chunks");
  parallelFors.inc();
  chunksCounter.inc(numChunks);

  // Serial paths: single-threaded config, a single chunk, or a nested call
  // from inside a worker chunk (runs inline; the partition is the same fixed
  // one either way, so nesting does not change results).
  int threads;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    threads = impl_->targetThreads;
  }
  if (threads <= 1 || numChunks == 1 || tInParallelRegion) {
    const bool wasNested = tInParallelRegion;
    for (std::size_t c = 0; c < numChunks; ++c) {
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(begin + grain, n);
      tInParallelRegion = true;
      try {
        fn(begin, end);
      } catch (...) {
        tInParallelRegion = wasNested;
        throw;
      }
      tInParallelRegion = wasNested;
    }
    return;
  }

  trace::Span jobSpan("pool", "parallelFor");
  Impl::Job j;
  j.grain = grain;
  j.n = n;
  j.numChunks = numChunks;
  j.fn = &fn;
  j.traced = jobSpan.live();
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->ensureWorkersLocked();
    impl_->job = &j;
    ++impl_->jobSeq;
  }
  impl_->wake.notify_all();

  // The caller works too, then waits for worker stragglers.
  impl_->runChunks(j);
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->job = nullptr;  // no new workers may register past this point
    impl_->done.wait(lk, [&] {
      return j.activeWorkers.load(std::memory_order_relaxed) == 0;
    });
  }
  if (j.firstExc) std::rethrow_exception(j.firstExc);
}

int ThreadPool::takeLastParallelism() {
  return impl_->maxParallelismSinceTake.exchange(1);
}

}  // namespace tfjs::core
