// Tensor element types.
//
// Mirroring the paper's WebGL backend — which stores every dtype in float
// textures — all backends in tfjs-cpp store elements as float32; the dtype is
// tensor metadata that controls op semantics (e.g. comparisons produce b8,
// floor-division for i32). int32 values are exact up to 2^24 in a float,
// matching the real WebGL backend's limits.
#pragma once

#include <cstddef>
#include <string>

#include "core/error.h"

namespace tfjs {

enum class DType {
  f32,  ///< 32-bit float (default)
  i32,  ///< 32-bit integer semantics (stored as float)
  b8,   ///< boolean semantics: elements are 0.0 or 1.0
  i8,   ///< quantized int8 semantics: elements are integers in [-127, 127]
        ///< (stored as float; see core/quant.h for the affine parameters)
};

inline const char* dtypeName(DType d) {
  switch (d) {
    case DType::f32: return "float32";
    case DType::i32: return "int32";
    case DType::b8: return "bool";
    case DType::i8: return "int8";
  }
  return "unknown";
}

/// Bytes per element as reported by memory accounting. All dtypes occupy a
/// float internally (see file comment); bool and int8 advertise 1 byte to
/// match the upstream library's `memory()` accounting (and, for int8, the
/// one-byte-per-element transport format of io/weights.cc).
inline std::size_t dtypeBytes(DType d) {
  return d == DType::b8 || d == DType::i8 ? 1 : 4;
}

inline DType dtypeFromName(const std::string& s) {
  if (s == "float32") return DType::f32;
  if (s == "int32") return DType::i32;
  if (s == "bool") return DType::b8;
  if (s == "int8") return DType::i8;
  throw InvalidArgumentError("Unknown dtype name: " + s);
}

/// Type-promotion rule for binary ops: float wins over int wins over bool;
/// int8 sits between bool and int32 (it is an 8-bit integer).
inline DType promoteTypes(DType a, DType b) {
  if (a == DType::f32 || b == DType::f32) return DType::f32;
  if (a == DType::i32 || b == DType::i32) return DType::i32;
  if (a == DType::i8 || b == DType::i8) return DType::i8;
  return DType::b8;
}

}  // namespace tfjs
