// Backend: the device abstraction of paper section 3.4.
//
// A backend implements (a) storage — write()/read()/disposeData() over opaque
// DataIds, the analogue of the TypedArray-backed data containers — and
// (b) kernels, device-specific implementations of the math that the ops layer
// dispatches to ("operations call into kernels", section 3.3).
//
// Tensors are decoupled from the data that backs them: the engine's
// DataContainer holds a (Backend*, DataId) pair plus a reference count, so
// reshape/clone never copy and dispose releases storage only when the last
// reference drops (section 3.4).
#pragma once

#include <cstdint>
#include <cstdio>
#include <future>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/conv_util.h"
#include "core/dtype.h"
#include "core/error.h"
#include "core/quant.h"
#include "core/shape.h"

namespace tfjs {

using DataId = std::uint64_t;

/// What a kernel sees of an input tensor: storage id + logical metadata.
struct TensorSpec {
  DataId id = 0;
  Shape shape;
  DType dtype = DType::f32;
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kFloorDiv, kMod, kPow, kMaximum, kMinimum,
  kSquaredDiff, kAtan2,
  // comparisons / logic produce 0.0 / 1.0
  kEqual, kNotEqual, kGreater, kGreaterEqual, kLess, kLessEqual,
  kLogicalAnd, kLogicalOr, kLogicalXor,
};

enum class UnaryOp {
  kNeg, kAbs, kExp, kExpm1, kLog, kLog1p, kSqrt, kRsqrt, kSquare,
  kReciprocal, kFloor, kCeil, kRound, kSign, kTrunc,
  kSin, kCos, kTan, kAsin, kAcos, kAtan, kSinh, kCosh, kTanh,
  kRelu, kRelu6, kSigmoid, kSoftplus, kElu, kSelu, kErf,
  kLogicalNot, kIsNan, kIsFinite, kNotZero,
  // parameterized: alpha (and beta for clip)
  kLeakyRelu,     ///< alpha = negative slope
  kClipByValue,   ///< alpha = min, beta = max
  kStep,          ///< alpha = value for x == 0
  kPowScalar,     ///< alpha = exponent
  kAddScalar,     ///< alpha = addend
  kMulScalar,     ///< alpha = factor
};

/// Epilogue activation of a fused matMul/conv2d (the subset Layers' Dense /
/// Conv2D emit and the paper's mobile models use). Semantics are exactly the
/// matching UnaryOp — fused outputs must stay bit-identical to the unfused
/// kernel chain.
enum class FusedActivation { kNone, kRelu, kRelu6, kSigmoid };

/// One scalar step of a fused elementwise region (graph executor fusion).
/// Operand references `a`/`b`/`c`: values >= 0 name the result of a prior
/// instruction in the same program; values < 0 name an external input slot
/// as `-1 - ref` (so slot 0 is -1, slot 1 is -2, ...). Instructions are the
/// region's ops in their original capture order — backends must apply the
/// exact same scalar formulas as the standalone unary/binary/select kernels
/// so fused outputs stay bit-identical to the op-by-op chain.
struct RegionInstr {
  enum class Kind { kUnary, kBinary, kSelect };
  Kind kind = Kind::kUnary;
  int op = 0;      ///< UnaryOp or BinaryOp code (unused for kSelect)
  int a = 0;       ///< first operand (cond for kSelect)
  int b = 0;       ///< second operand (kBinary/kSelect)
  int c = 0;       ///< third operand (kSelect only)
  float alpha = 0; ///< unary parameter
  float beta = 0;  ///< unary parameter
};

/// A straight-line elementwise program over `numInputs` external tensors.
/// The last instruction's value is the region's output. Inputs broadcast
/// independently to the final output shape; interior values are always
/// evaluated at the final output's coordinates (broadcast composition keeps
/// that bitwise-equal to the op-by-op chain — see DESIGN.md).
struct RegionProgram {
  int numInputs = 0;
  std::vector<RegionInstr> instrs;
};

enum class ReduceOp { kSum, kMean, kProd, kMax, kMin, kAny, kAll };
enum class ArgOp { kArgMax, kArgMin };
enum class PoolMode { kMax, kAvg };

/// Result of time(f) (paper section 3.8): wall time plus device kernel time.
/// On the WebGL-sim backend kernelMs is the modeled GPU time, excluding
/// upload/download, exactly like the EXT_disjoint_timer_query path.
struct TimingInfo {
  double wallMs = 0;
  double kernelMs = 0;

  std::string toString() const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "wall %.3f ms, kernel %.3f ms", wallMs,
                  kernelMs);
    return buf;
  }
};

inline std::ostream& operator<<(std::ostream& os, const TimingInfo& t) {
  return os << t.toString();
}

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  // ---- storage -------------------------------------------------------
  /// Uploads host values; returns an opaque id for the device buffer. The
  /// logical shape lets texture backends choose a physical layout.
  virtual DataId write(std::span<const float> values, const Shape& shape) = 0;
  /// Blocking download (dataSync). Flushes pending device work.
  virtual std::vector<float> read(DataId id) = 0;
  /// Non-blocking download (data()): resolves when the device has finished
  /// all work enqueued before this call.
  virtual std::future<std::vector<float>> readAsync(DataId id) = 0;
  virtual void disposeData(DataId id) = 0;
  /// Blocks until all enqueued device work has completed. Contract: after
  /// flush() returns, read() must observe every kernel enqueued before the
  /// call, and kernelTimeMs() must include their cost. Pure virtual on
  /// purpose — a queueing backend that forgets to implement it would
  /// silently return stale data from read(); synchronous backends implement
  /// it as an empty body (see RefBackend).
  virtual void flush() = 0;
  /// Total accumulated kernel time (ms); device-specific semantics.
  virtual double kernelTimeMs() const = 0;
  /// Bytes currently held by the backend's storage.
  virtual std::size_t memoryBytes() const = 0;

  // ---- kernels -------------------------------------------------------
  virtual DataId binary(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                        const Shape& outShape) = 0;
  virtual DataId unary(UnaryOp op, const TensorSpec& x, float alpha,
                       float beta) = 0;
  virtual DataId select(const TensorSpec& cond, const TensorSpec& a,
                        const TensorSpec& b, const Shape& outShape) = 0;
  /// Batched matmul over rank-3 inputs [batch, m, k] x [batch, k, n]; batch
  /// dims of size 1 broadcast.
  virtual DataId matMul(const TensorSpec& a, const TensorSpec& b,
                        bool transposeA, bool transposeB) = 0;
  virtual DataId conv2d(const TensorSpec& x, const TensorSpec& filter,
                        const Conv2DInfo& info) = 0;
  virtual DataId conv2dBackpropInput(const TensorSpec& dy,
                                     const TensorSpec& filter,
                                     const Conv2DInfo& info) = 0;
  virtual DataId conv2dBackpropFilter(const TensorSpec& x,
                                      const TensorSpec& dy,
                                      const Conv2DInfo& info) = 0;
  virtual DataId depthwiseConv2d(const TensorSpec& x, const TensorSpec& filter,
                                 const Conv2DInfo& info) = 0;
  virtual DataId depthwiseConv2dBackpropInput(const TensorSpec& dy,
                                              const TensorSpec& filter,
                                              const Conv2DInfo& info) = 0;
  virtual DataId depthwiseConv2dBackpropFilter(const TensorSpec& x,
                                               const TensorSpec& dy,
                                               const Conv2DInfo& info) = 0;
  virtual DataId pool2d(PoolMode mode, const TensorSpec& x,
                        const Pool2DInfo& info) = 0;
  virtual DataId maxPoolBackprop(const TensorSpec& dy, const TensorSpec& x,
                                 const Pool2DInfo& info) = 0;
  virtual DataId avgPoolBackprop(const TensorSpec& dy,
                                 const Pool2DInfo& info) = 0;
  /// Reduces the trailing `inner` elements of x viewed as [outer, inner].
  virtual DataId reduce(ReduceOp op, const TensorSpec& x, std::size_t outer,
                        std::size_t inner) = 0;
  /// Index of max/min over the trailing `inner` elements, as float values.
  virtual DataId arg(ArgOp op, const TensorSpec& x, std::size_t outer,
                     std::size_t inner) = 0;
  virtual DataId transpose(const TensorSpec& x, std::span<const int> perm,
                           const Shape& outShape) = 0;
  virtual DataId slice(const TensorSpec& x, std::span<const int> begin,
                       const Shape& outShape) = 0;
  virtual DataId concat(std::span<const TensorSpec> xs, int axis,
                        const Shape& outShape) = 0;
  virtual DataId pad(const TensorSpec& x,
                     std::span<const std::pair<int, int>> paddings,
                     float constantValue, const Shape& outShape) = 0;
  virtual DataId gather(const TensorSpec& x, const TensorSpec& indices,
                        int axis, const Shape& outShape) = 0;
  virtual DataId tile(const TensorSpec& x, std::span<const int> reps,
                      const Shape& outShape) = 0;
  virtual DataId reverse(const TensorSpec& x, std::span<const int> axes) = 0;
  virtual DataId resizeBilinear(const TensorSpec& x, int newH, int newW,
                                bool alignCorners) = 0;
  virtual DataId oneHot(const TensorSpec& indices, int depth, float onValue,
                        float offValue) = 0;
  virtual DataId fill(std::size_t n, float value) = 0;
  /// Top-k values (sorted descending) of each trailing `inner` segment of x
  /// viewed as [outer, inner]; output is [outer, k].
  virtual DataId topkValues(const TensorSpec& x, std::size_t outer,
                            std::size_t inner, int k) = 0;
  /// Indices (as floats) matching topkValues.
  virtual DataId topkIndices(const TensorSpec& x, std::size_t outer,
                             std::size_t inner, int k) = 0;
  /// Prefix sum along the trailing `inner` dimension of [outer, inner].
  virtual DataId cumsum(const TensorSpec& x, std::size_t outer,
                        std::size_t inner, bool exclusive, bool reverse) = 0;

  // ---- optional fast paths (in-place + fused epilogues) ----------------
  /// Like unary(), but MAY write the result into the existing buffer `dst`
  /// (the engine passes dst == x.id after proving sole ownership) and
  /// return dst. The default ignores the hint and dispatches the allocating
  /// kernel — callers must handle either outcome by comparing the returned
  /// id against dst.
  virtual DataId unaryInto(UnaryOp op, const TensorSpec& x, float alpha,
                           float beta, DataId dst) {
    (void)dst;
    return unary(op, x, alpha, beta);
  }
  /// In-place binary. `dst` must alias the operand whose shape equals
  /// outShape (elementwise same-index reads make that aliasing safe; the
  /// other operand may broadcast). Default: allocating kernel.
  virtual DataId binaryInto(BinaryOp op, const TensorSpec& a,
                            const TensorSpec& b, const Shape& outShape,
                            DataId dst) {
    (void)dst;
    return binary(op, a, b, outShape);
  }

  /// True when the backend implements fusedMatMul/fusedConv2d. The ops
  /// layer checks this and otherwise composes the unfused kernel chain
  /// itself (device backends with command queues keep their existing
  /// dataflow that way).
  virtual bool supportsFusedKernels() const { return false; }
  /// matMul with a fused epilogue: optional bias add (`bias` is a length-n
  /// vector, or nullptr) followed by `act`. CPU backends apply the epilogue
  /// while the output tile is still cache-hot; results must be bit-identical
  /// to matMul + broadcast add + activation on the same backend.
  virtual DataId fusedMatMul(const TensorSpec& a, const TensorSpec& b,
                             bool transposeA, bool transposeB,
                             const TensorSpec* bias, FusedActivation act) {
    (void)a, (void)b, (void)transposeA, (void)transposeB, (void)bias,
        (void)act;
    throw BackendError("fusedMatMul not supported by backend " + name());
  }
  /// conv2d with the same fused epilogue contract (`bias` length = outC).
  virtual DataId fusedConv2d(const TensorSpec& x, const TensorSpec& filter,
                             const Conv2DInfo& info, const TensorSpec* bias,
                             FusedActivation act) {
    (void)x, (void)filter, (void)info, (void)bias, (void)act;
    throw BackendError("fusedConv2d not supported by backend " + name());
  }

  /// True when the backend implements fusedRegion(). The ops layer checks
  /// this and otherwise replays the region op by op through the standalone
  /// kernels (bit-identical by construction).
  virtual bool supportsFusedRegions() const { return false; }
  /// Evaluates a fused elementwise region in a single pass over the output:
  /// one load per input element, the program's scalar ops in original order,
  /// one store. `inputs.size() == program.numInputs`; each input broadcasts
  /// to `outShape`. When `dst` is nonzero it aliases a dense input whose
  /// buffer the caller proved safe to overwrite — the kernel MAY write there
  /// and return dst (same contract as unaryInto/binaryInto). Results must be
  /// bit-identical to dispatching the program's ops one at a time.
  virtual DataId fusedRegion(const RegionProgram& program,
                             std::span<const TensorSpec> inputs,
                             const Shape& outShape, DataId dst) {
    (void)program, (void)inputs, (void)outShape, (void)dst;
    throw BackendError("fusedRegion not supported by backend " + name());
  }

  // ---- quantized kernels (int8 inference path) -------------------------
  /// True when the backend implements quantizedMatMul/quantizedConv2d. The
  /// ops layer checks this and otherwise dequantizes the weights and runs
  /// the f32 path (device backends keep their existing dataflow that way).
  virtual bool supportsQuantizedKernels() const { return false; }
  /// matMul against int8 weights: `a` is f32 [batch, m, k]; `b` holds int8
  /// codes [1, k, n] whose per-channel (or per-tensor) parameters are `wq`.
  /// Activations are quantized dynamically per GEMM row inside the kernel
  /// (u8 codes, i32 accumulators); the bias + activation epilogue runs on
  /// the dequantized f32 value per output panel. Output is f32, or int8
  /// codes requantized with `outQ` when non-null. Kernels fall back to the
  /// dequantized f32 fused path when k would overflow the i32 accumulator
  /// or `a` contains non-finite values; every backend must compute
  /// bit-identical results for the same inputs (shared scalar epilogue +
  /// exact integer accumulation).
  virtual DataId quantizedMatMul(const TensorSpec& a, const TensorSpec& b,
                                 const QuantParams& wq, const TensorSpec* bias,
                                 FusedActivation act, const OutQuant* outQ) {
    (void)a, (void)b, (void)wq, (void)bias, (void)act, (void)outQ;
    throw BackendError("quantizedMatMul not supported by backend " + name());
  }
  /// conv2d against an int8 HWIO filter, same contract as quantizedMatMul
  /// (GEMM rows are im2col patch rows; padding quantizes exactly to the
  /// row's zero point).
  virtual DataId quantizedConv2d(const TensorSpec& x, const TensorSpec& filter,
                                 const Conv2DInfo& info, const QuantParams& wq,
                                 const TensorSpec* bias, FusedActivation act,
                                 const OutQuant* outQ) {
    (void)x, (void)filter, (void)info, (void)wq, (void)bias, (void)act,
        (void)outQ;
    throw BackendError("quantizedConv2d not supported by backend " + name());
  }

  /// Smallest additive constant guaranteed distinguishable from zero in the
  /// backend's arithmetic. The WebGL-sim backend returns a larger value on
  /// fp16 devices — the paper's fix for log(x + 1e-8) rounding to log(x)
  /// on iOS (section 4.1.3).
  virtual float epsilon() const { return 1e-7f; }
};

}  // namespace tfjs
