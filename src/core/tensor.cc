#include "core/tensor.h"

#include <cmath>
#include <iostream>
#include <sstream>

#include "core/engine.h"

namespace tfjs {

internal::TensorInfo& Tensor::info() const {
  TFJS_ARG_CHECK(info_ != nullptr, "Use of a null (default-constructed) Tensor");
  if (info_->disposed) {
    throw DisposedError("Tensor " + std::to_string(info_->id) +
                        " is disposed and can no longer be used");
  }
  return *info_;
}

DataId Tensor::dataId() const { return info().container->dataId; }

std::vector<float> Tensor::dataSync() const {
  auto& i = info();
  return i.container->backend->read(i.container->dataId);
}

std::future<std::vector<float>> Tensor::data() const {
  auto& i = info();
  return i.container->backend->readAsync(i.container->dataId);
}

float Tensor::scalarSync() const {
  TFJS_ARG_CHECK(size() == 1, "scalarSync() requires a single-element tensor, "
                                  << "got shape " << shape().toString());
  return dataSync()[0];
}

Tensor Tensor::reshape(const Shape& newShape) const {
  TFJS_ARG_CHECK(newShape.size() == size(),
                 "reshape: cannot view " << shape().toString() << " ("
                     << size() << " elements) as " << newShape.toString()
                     << " (" << newShape.size() << " elements)");
  return Engine::get().makeAlias(*this, newShape, dtype());
}

Tensor Tensor::clone() const {
  return Engine::get().makeAlias(*this, shape(), dtype());
}

Tensor Tensor::flatten() const {
  return reshape(Shape{static_cast<int>(size())});
}

Tensor Tensor::cast(DType target) const {
  auto& i = info();
  if (target == i.dtype) return clone();
  auto& engine = Engine::get();
  const bool widening =
      (i.dtype == DType::b8) ||
      (i.dtype == DType::i32 && target == DType::f32) ||
      (i.dtype == DType::i8 &&
       (target == DType::i32 || target == DType::f32));
  if (widening) {
    return engine.makeAlias(*this, i.shape, target);
  }
  // Narrowing materializes new data on the tensor's own backend.
  Backend* backend = i.container->backend;
  const TensorSpec spec{i.container->dataId, i.shape, i.dtype};
  DataId out;
  if (target == DType::i32) {
    out = backend->unary(UnaryOp::kTrunc, spec, 0, 0);
  } else {  // -> bool: 1.0 where x != 0
    out = backend->unary(UnaryOp::kNotZero, spec, 0, 0);
  }
  return engine.makeTensorFromDataId(out, i.shape, target, backend);
}

void Tensor::dispose() const {
  if (!info_ || info_->disposed) return;
  Engine::get().disposeTensor(*info_);
}

const Tensor& Tensor::keep() const {
  info().kept = true;
  return *this;
}

std::string Tensor::toString(bool verbose) const {
  std::ostringstream os;
  os << "Tensor(shape=" << shape().toString() << ", dtype="
     << dtypeName(dtype()) << ")";
  const auto vals = dataSync();
  const std::size_t limit = verbose ? vals.size() : std::min<std::size_t>(
                                                        vals.size(), 32);
  os << " [";
  for (std::size_t i = 0; i < limit; ++i) {
    if (i) os << ", ";
    os << vals[i];
  }
  if (limit < vals.size()) os << ", ...";
  os << "]";
  return os.str();
}

void Tensor::print(bool verbose) const {
  std::cout << toString(verbose) << "\n";
}

// ---------------------------------------------------------------- Variable

Variable::Variable(const Tensor& initial, std::string name, bool trainable) {
  TFJS_ARG_CHECK(initial.defined(), "Variable requires an initial value");
  static std::int64_t counter = 0;
  if (name.empty()) name = "variable_" + std::to_string(counter++);
  initial.keep();
  state_ = std::make_shared<State>(State{initial, std::move(name), trainable});
  Engine::get().registerVariable(state_->name, *this);
}

const Tensor& Variable::value() const {
  TFJS_ARG_CHECK(state_ != nullptr, "Use of an undefined Variable");
  TFJS_ARG_CHECK(state_->current.defined(), "Variable was disposed");
  return state_->current;
}

const std::string& Variable::name() const {
  TFJS_ARG_CHECK(state_ != nullptr, "Use of an undefined Variable");
  return state_->name;
}

bool Variable::trainable() const {
  TFJS_ARG_CHECK(state_ != nullptr, "Use of an undefined Variable");
  return state_->trainable;
}

void Variable::setTrainable(bool t) {
  TFJS_ARG_CHECK(state_ != nullptr, "Use of an undefined Variable");
  state_->trainable = t;
}

void Variable::assign(const Tensor& next) const {
  TFJS_ARG_CHECK(state_ != nullptr, "Use of an undefined Variable");
  const Tensor& cur = value();
  TFJS_ARG_CHECK(next.shape() == cur.shape(),
                 "Variable::assign shape mismatch: variable is "
                     << cur.shape().toString() << ", new value is "
                     << next.shape().toString());
  const bool quantSwap =
      (next.dtype() == DType::i8 && cur.dtype() == DType::f32) ||
      (next.dtype() == DType::f32 && cur.dtype() == DType::i8);
  TFJS_ARG_CHECK(next.dtype() == cur.dtype() || quantSwap,
                 "Variable::assign dtype mismatch");
  next.keep();
  cur.dispose();
  state_->current = next;
}

void Variable::dispose() const {
  if (!state_) return;
  if (state_->current.defined() && !state_->current.isDisposed()) {
    state_->current.dispose();
  }
  state_->current = Tensor();
}

}  // namespace tfjs
