// ScopedTensor: host-language-assisted memory management.
//
// Paper section 4.2: "Since Node.js and Google's V8 JS engine exposes
// finalization APIs, it eliminates the need for manual memory management,
// reducing the cognitive overhead for our users." C++ has deterministic
// destruction instead of finalizers, which is strictly better: a
// ScopedTensor disposes its tensor at scope exit, so code written against
// it needs neither dispose() nor tidy().
//
// Move-only (the scope owns the storage claim); release() opts back into
// manual management; get()/operator-> hand out the underlying Tensor for op
// calls.
#pragma once

#include "core/tensor.h"

namespace tfjs {

class ScopedTensor {
 public:
  ScopedTensor() = default;
  /// Takes ownership of the tensor's storage claim.
  explicit ScopedTensor(Tensor t) : t_(std::move(t)) {}

  ScopedTensor(const ScopedTensor&) = delete;
  ScopedTensor& operator=(const ScopedTensor&) = delete;

  ScopedTensor(ScopedTensor&& o) noexcept : t_(o.t_) { o.t_ = Tensor(); }
  ScopedTensor& operator=(ScopedTensor&& o) noexcept {
    if (this != &o) {
      reset();
      t_ = o.t_;
      o.t_ = Tensor();
    }
    return *this;
  }

  ~ScopedTensor() { reset(); }

  /// Replaces the held tensor, disposing the previous one.
  void reset(Tensor next = Tensor()) {
    if (t_.defined() && !t_.isDisposed()) t_.dispose();
    t_ = std::move(next);
  }

  /// Releases ownership without disposing; returns the tensor.
  Tensor release() {
    Tensor out = t_;
    t_ = Tensor();
    return out;
  }

  const Tensor& get() const { return t_; }
  const Tensor* operator->() const { return &t_; }
  const Tensor& operator*() const { return t_; }
  explicit operator bool() const { return t_.defined() && !t_.isDisposed(); }

 private:
  Tensor t_;
};

}  // namespace tfjs
