#include "core/event_loop.h"

#include <thread>

#include "core/metrics.h"
#include "core/trace.h"

namespace tfjs::async {

using Clock = std::chrono::steady_clock;

namespace {
double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

EventLoop::EventLoop(double fps) : periodMs_(1000.0 / fps) {}

void EventLoop::postTask(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  // Wake the loop if it is in its idle sleep; a post from the loop thread
  // itself finds the queue before sleeping, so the notify is just cheap.
  taskCv_.notify_one();
}

void EventLoop::onFrame(std::function<void(int)> cb) {
  frameCallback_ = std::move(cb);
}

std::size_t EventLoop::pendingTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

FrameStats EventLoop::run(double durationMs) {
  static metrics::Counter& framesCounter =
      metrics::Registry::get().counter("eventloop.frames");
  static metrics::Counter& framesDroppedCounter =
      metrics::Registry::get().counter("eventloop.frames_dropped");
  static metrics::Counter& tasksCounter =
      metrics::Registry::get().counter("eventloop.tasks");
  static metrics::Histogram& latenessHist =
      metrics::Registry::get().histogram("eventloop.frame_lateness_ms");
  FrameStats stats;
  const auto start = Clock::now();
  double nextFrameAt = 0;
  // Sentinel until the first frame fires: maxStallMs measures gaps between
  // *consecutive* fired frames, so the interval from loop start to the first
  // frame (which includes thread-scheduling delay before the loop even
  // spins) must not count as a stall.
  double lastFrameFired = -1;
  int frameIndex = 0;

  while (msSince(start) < durationMs) {
    const double now = msSince(start);

    if (now + 1e-9 >= nextFrameAt) {
      // Frame is due. Lateness measures how long the main thread was busy
      // (e.g. blocked in dataSync) past the frame's scheduled time.
      const double lateness = now - nextFrameAt;
      ++stats.framesScheduled;
      stats.totalLatenessMs += lateness;
      framesCounter.inc();
      latenessHist.observe(lateness);
      if (lateness <= periodMs_ * 0.5) {
        ++stats.framesOnTime;
      } else {
        ++stats.framesDropped;
        framesDroppedCounter.inc();
      }
      if (lastFrameFired >= 0) {
        stats.maxStallMs = std::max(stats.maxStallMs, now - lastFrameFired);
      }
      lastFrameFired = now;
      if (frameCallback_) {
        trace::Span span("loop", "frame");
        frameCallback_(frameIndex);
      }
      ++frameIndex;
      // Catch up: frames that should have fired while we were blocked are
      // counted as dropped rather than replayed (browsers coalesce rAF).
      while (nextFrameAt <= now) {
        nextFrameAt += periodMs_;
        if (nextFrameAt <= now) {
          ++stats.framesScheduled;
          ++stats.framesDropped;
          framesDroppedCounter.inc();
          stats.totalLatenessMs += now - nextFrameAt;
          trace::instant("loop", "frame_dropped");
        }
      }
      continue;
    }

    std::unique_lock<std::mutex> lock(mu_);
    if (!tasks_.empty()) {
      auto task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      tasksCounter.inc();
      trace::Span span("loop", "task");
      task();  // may block the loop — that is the point of Figure 2
      continue;
    }

    // Idle: sleep until the next frame is due or a cross-thread post lands.
    // The condition variable replaces the old fixed 2 ms sleep chunks, so a
    // post from another thread is picked up immediately instead of after up
    // to 2 ms of quantized sleeping.
    const double sleepMs =
        std::min(nextFrameAt, durationMs) - msSince(start);
    if (sleepMs > 0.05) {
      taskCv_.wait_for(lock,
                       std::chrono::duration<double, std::milli>(sleepMs),
                       [this] { return !tasks_.empty(); });
    }
  }
  return stats;
}

}  // namespace tfjs::async
