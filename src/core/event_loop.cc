#include "core/event_loop.h"

#include <thread>

#include "core/metrics.h"
#include "core/trace.h"

namespace tfjs::async {

using Clock = std::chrono::steady_clock;

namespace {
double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

EventLoop::EventLoop(double fps) : periodMs_(1000.0 / fps) {}

void EventLoop::postTask(std::function<void()> task) {
  tasks_.push_back(std::move(task));
}

void EventLoop::onFrame(std::function<void(int)> cb) {
  frameCallback_ = std::move(cb);
}

FrameStats EventLoop::run(double durationMs) {
  static metrics::Counter& framesCounter =
      metrics::Registry::get().counter("eventloop.frames");
  static metrics::Counter& framesDroppedCounter =
      metrics::Registry::get().counter("eventloop.frames_dropped");
  static metrics::Counter& tasksCounter =
      metrics::Registry::get().counter("eventloop.tasks");
  static metrics::Histogram& latenessHist =
      metrics::Registry::get().histogram("eventloop.frame_lateness_ms");
  FrameStats stats;
  const auto start = Clock::now();
  double nextFrameAt = 0;
  double lastFrameFired = 0;
  int frameIndex = 0;

  while (msSince(start) < durationMs) {
    const double now = msSince(start);

    if (now + 1e-9 >= nextFrameAt) {
      // Frame is due. Lateness measures how long the main thread was busy
      // (e.g. blocked in dataSync) past the frame's scheduled time.
      const double lateness = now - nextFrameAt;
      ++stats.framesScheduled;
      stats.totalLatenessMs += lateness;
      framesCounter.inc();
      latenessHist.observe(lateness);
      if (lateness <= periodMs_ * 0.5) {
        ++stats.framesOnTime;
      } else {
        ++stats.framesDropped;
        framesDroppedCounter.inc();
      }
      stats.maxStallMs = std::max(stats.maxStallMs, now - lastFrameFired);
      lastFrameFired = now;
      if (frameCallback_) {
        trace::Span span("loop", "frame");
        frameCallback_(frameIndex);
      }
      ++frameIndex;
      // Catch up: frames that should have fired while we were blocked are
      // counted as dropped rather than replayed (browsers coalesce rAF).
      while (nextFrameAt <= now) {
        nextFrameAt += periodMs_;
        if (nextFrameAt <= now) {
          ++stats.framesScheduled;
          ++stats.framesDropped;
          framesDroppedCounter.inc();
          stats.totalLatenessMs += now - nextFrameAt;
          trace::instant("loop", "frame_dropped");
        }
      }
      continue;
    }

    if (!tasks_.empty()) {
      auto task = std::move(tasks_.front());
      tasks_.pop_front();
      tasksCounter.inc();
      trace::Span span("loop", "task");
      task();  // may block the loop — that is the point of Figure 2
      continue;
    }

    // Idle: sleep until the next frame is due.
    const double sleepMs = nextFrameAt - msSince(start);
    if (sleepMs > 0.05) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(std::min(sleepMs, 2.0)));
    }
  }
  return stats;
}

}  // namespace tfjs::async
