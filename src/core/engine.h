// Engine: the global runtime of tfjs-cpp (paper sections 3.3–3.8).
//
// Responsibilities, mirroring the upstream engine:
//  * backend registry & the active backend ("webgl-sim", "cpu", "native");
//  * tensor/data-container tracking for memory() accounting;
//  * tidy() scopes that dispose intermediate tensors (section 3.7);
//  * the gradient-tape hook used by the eager autodiff engine (section 3.5);
//  * debug mode (per-kernel NaN checks) and the profiler (section 3.8).
//
// Thread-safety contract (the serving layer relies on this):
//  * tensor creation, aliasing and disposal are safe from any thread —
//    memory accounting and container refcounts are guarded by one mutex,
//    and tidy() scope stacks are thread-local, so concurrent sessions can
//    create/dispose tensors without corrupting memory() or the pool;
//  * op dispatch (prepareInput, backend kernels, the tape) is NOT
//    synchronized: all kernel execution for a given backend must stay on
//    one thread (the serving scheduler confines it to its own thread).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/backend.h"
#include "core/tensor.h"

namespace tfjs {

/// Snapshot of live-memory accounting, as returned by tf.memory().
struct MemoryInfo {
  std::size_t numTensors = 0;
  std::size_t numDataBuffers = 0;
  std::size_t numBytes = 0;
  /// Bytes parked in the CPU BufferPool: backed by no live tensor, free for
  /// the next allocation. Reported separately so numBytes stays an exact
  /// live-tensor count.
  std::size_t pooledBytes = 0;
};

/// Result of profile(f) (paper section 3.8). Since the instrumentation
/// redesign this is a view over the trace stream: profile(f) runs f under an
/// instrumentation::Scope and projects the "op" span events it captured.
struct ProfileInfo {
  std::size_t newTensors = 0;
  std::size_t newBytes = 0;
  std::size_t peakBytes = 0;
  /// Wall time of the profiled function, milliseconds.
  double wallMs = 0;
  /// One record per kernel dispatched inside f, in order.
  struct KernelRecord {
    std::string name;
    Shape outputShape;
    std::size_t outputBytes = 0;
    /// Peak intra-op parallelism the kernel achieved on the shared thread
    /// pool (1 for serial kernels and for device backends, which do not use
    /// the CPU pool).
    int threads = 1;
    /// Span timing relative to the profile start, milliseconds. wallMs is
    /// host-side dispatch time (device backends may still be executing).
    double startMs = 0;
    double wallMs = 0;
    /// Backend that served the dispatch.
    std::string backend;
  };
  std::vector<KernelRecord> kernels;

  /// Multi-line human-readable report (memory summary + kernel table).
  std::string toString() const;
};

std::ostream& operator<<(std::ostream& os, const ProfileInfo& p);

/// Computes input gradients given the output gradient. Created by the ops
/// layer as a closure over the op's saved inputs.
using GradFunc = std::function<std::vector<Tensor>(const Tensor& dy)>;

/// Tape interface implemented by the autodiff module; the engine only knows
/// how to forward op records to it.
class TapeRecorder {
 public:
  virtual ~TapeRecorder() = default;
  virtual void record(const std::string& opName,
                      std::span<const Tensor> inputs, const Tensor& output,
                      GradFunc gradFunc) = 0;
  /// True if gradients flow through any of these tensors.
  virtual bool watched(std::span<const Tensor> inputs) const = 0;
};

/// Recording hook for graph capture (src/graph). The ops layer reports
/// every public op dispatch (onOp), the engine reports metadata-only
/// aliases (onAlias), and KernelScope reports kernels that fired without an
/// op-level recording (onUnrecordedKernel — the capture layer turns those
/// into loud errors instead of silently baking wrong constants).
///
/// `opId` is an ops::OpId cast to int — the core layer stays below the ops
/// vocabulary. The observer pointer is thread-local: capture on a serving
/// scheduler thread never observes ops dispatched by other threads.
class OpObserver {
 public:
  virtual ~OpObserver() = default;
  virtual void onOp(int opId, std::span<const Tensor> inputs,
                    const Tensor& output, std::span<const double> attrs,
                    const Shape* shapeAttr) = 0;
  virtual void onAlias(const Tensor& src, const Tensor& alias) = 0;
  virtual void onUnrecordedKernel(const char* name) = 0;
};

class Engine {
 public:
  /// The process-wide engine. Never destroyed (leaked singleton) so that
  /// tensors in static storage never outlive their backends.
  static Engine& get();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- backends ------------------------------------------------------
  using BackendFactory = std::function<std::unique_ptr<Backend>()>;
  /// Registers a backend under `name`. Higher priority wins the default
  /// election (the paper's automatic fallback order: webgl > native > cpu).
  void registerBackend(const std::string& name, BackendFactory factory,
                       int priority = 0);
  /// Switches the active backend, instantiating it on first use.
  void setBackend(const std::string& name);
  Backend& backend();
  const std::string& backendName();
  std::vector<std::string> registeredBackends() const;
  /// Destroys a live backend instance (its factory stays registered). All
  /// tensors on that backend must have been disposed.
  void removeBackendInstance(const std::string& name);

  // ---- tensor creation & tracking -------------------------------------
  /// Uploads host data to the active backend and returns a tracked tensor.
  Tensor makeTensorFromHost(std::span<const float> values, const Shape& shape,
                            DType dtype = DType::f32);
  /// Wraps a backend-produced buffer (kernel output) in a tracked tensor.
  Tensor makeTensorFromDataId(DataId id, const Shape& shape, DType dtype,
                              Backend* backend = nullptr);
  /// New tensor aliasing `t`'s container with different metadata (reshape,
  /// clone, metadata-only cast).
  Tensor makeAlias(const Tensor& t, const Shape& shape, DType dtype);

  void disposeTensor(const internal::TensorInfo& info);

  MemoryInfo memory() const;

  // ---- in-place reuse (buffer-recycling fast path) ---------------------
  /// True when a kernel may overwrite `t`'s storage: the handle is its
  /// container's only owner, is not kept (Variables keep their values), and
  /// no gradient tape will read it during backward. The ops layer only asks
  /// for tensors it received by rvalue, so no caller alias can observe the
  /// overwrite.
  bool canReuseInput(const Tensor& t);
  /// Re-wraps `t`'s storage as a fresh output tensor (new id and metadata,
  /// same container) and consumes `t`. Only valid after canReuseInput(t)
  /// returned true and the kernel has written the result into the buffer;
  /// shape/dtype must describe the same byte count.
  Tensor reuseInputAsOutput(const Tensor& t, const Shape& shape, DType dtype);

  /// Ensures `t`'s data lives on the active backend, migrating (download +
  /// upload) if it was created on another backend.
  TensorSpec prepareInput(const Tensor& t);

  // ---- scopes (tidy) ---------------------------------------------------
  void startScope();
  /// Ends the innermost scope; tensors in `escaping` (plus kept tensors)
  /// survive and transfer to the parent scope.
  void endScope(std::span<const Tensor> escaping);

  /// Runs f inside a scope and disposes every intermediate tensor except the
  /// returned one (paper section 3.7).
  Tensor tidy(const std::function<Tensor()>& f);
  std::vector<Tensor> tidy(const std::function<std::vector<Tensor>()>& f);
  /// Scope for side-effecting blocks with no surviving tensors.
  void tidyVoid(const std::function<void()>& f);

  // ---- autodiff hook ---------------------------------------------------
  TapeRecorder* tape() { return tape_; }
  void setTape(TapeRecorder* t) { tape_ = t; }

  // ---- graph-capture hook (src/graph) ----------------------------------
  /// Installs/clears the current thread's capture observer. The ops layer
  /// notifies it on every depth-0 public-op dispatch; makeAlias notifies it
  /// on every alias creation. Defined out of line: accessing the
  /// thread_local through the TLS wrapper from other TUs trips a spurious
  /// UBSan null-pointer diagnostic under GCC; the defining TU is clean.
  void setOpObserver(OpObserver* o);
  OpObserver* opObserver() const;

  // ---- debugging & profiling (section 3.8) -----------------------------
  bool debugMode() const { return debug_; }
  void setDebugMode(bool on) { debug_ = on; }

  /// Called by the ops layer (via ops::internal::KernelScope) after each
  /// kernel dispatch. Emits an "op" trace event carrying kernel metadata
  /// when tracing is active — `startUs` is the trace timestamp taken before
  /// the backend call (pass a negative value for an untimed notification) —
  /// and, in debug mode, runs the NaN check. The profiler consumes these
  /// events through an instrumentation::Scope; there is no engine-side
  /// profile state anymore.
  void notifyKernel(const std::string& opName, const Tensor& output,
                    double startUs = -1);

  /// Both are thin views over the trace stream (instrumentation::Scope).
  TimingInfo time(const std::function<void()>& f);
  ProfileInfo profile(const std::function<void()>& f);

  // ---- intra-op threading (native backend) -----------------------------
  /// Target CPU parallelism for backend kernels (the shared thread pool).
  /// Defaults to TFJS_NUM_THREADS or hardware_concurrency; 1 gives the
  /// deterministic fully-serial path. Results are bit-identical at any
  /// setting (fixed chunk partitioning).
  void setNumThreads(int n);
  int numThreads() const;

  // ---- variables -------------------------------------------------------
  void registerVariable(const std::string& name, const Variable& v);
  std::vector<Variable> trainableVariables() const;

  std::int64_t nextTensorId() {
    return nextTensorId_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  Engine() = default;
  void trackTensor(const std::shared_ptr<internal::TensorInfo>& info);

  struct RegisteredBackend {
    BackendFactory factory;
    int priority = 0;
    std::unique_ptr<Backend> instance;
  };

  std::unordered_map<std::string, RegisteredBackend> backends_;
  std::string activeBackend_;

  /// Guards memory_, peakBytes_ and every DataContainer's refCount /
  /// released flag — the state concurrent creates/disposes touch.
  mutable std::mutex memMu_;
  MemoryInfo memory_;
  std::size_t peakBytes_ = 0;

  /// tidy() scope stacks are per-thread: each thread's scopes collect only
  /// the tensors that thread created, so a scheduler thread can run tidy
  /// while client threads create/dispose tensors of their own.
  static thread_local std::vector<
      std::vector<std::shared_ptr<internal::TensorInfo>>>
      scopes_;

  TapeRecorder* tape_ = nullptr;
  static thread_local OpObserver* opObserver_;
  bool debug_ = false;

  std::vector<std::pair<std::string, Variable>> variables_;

  std::atomic<std::int64_t> nextTensorId_{1};
};

/// Convenience free functions mirroring the tf.* namespace.
inline MemoryInfo memory() { return Engine::get().memory(); }
inline Tensor tidy(const std::function<Tensor()>& f) {
  return Engine::get().tidy(f);
}
inline std::vector<Tensor> tidyAll(
    const std::function<std::vector<Tensor>()>& f) {
  return Engine::get().tidy(f);
}
inline void tidyVoid(const std::function<void()>& f) {
  Engine::get().tidyVoid(f);
}
inline TimingInfo time(const std::function<void()>& f) {
  return Engine::get().time(f);
}
inline ProfileInfo profile(const std::function<void()>& f) {
  return Engine::get().profile(f);
}
inline void setBackend(const std::string& name) {
  Engine::get().setBackend(name);
}
inline const std::string& getBackendName() {
  return Engine::get().backendName();
}
inline void setNumThreads(int n) { Engine::get().setNumThreads(n); }
inline int getNumThreads() { return Engine::get().numThreads(); }

}  // namespace tfjs
