// ThreadPool: the intra-op worker pool behind the native backend's parallel
// kernels (the analogue of TensorFlow's intra-op Eigen pool, the first-order
// CPU optimisation the paper's Node.js backend inherits from the TF C
// library).
//
// Design constraints, in priority order:
//  * Determinism. parallelFor() splits [0, n) into fixed chunks of `grain`
//    indices; the partition depends only on (n, grain) — never on the thread
//    count or on scheduling — and every chunk is executed serially by exactly
//    one thread. A kernel that writes disjoint outputs per chunk (all of ours
//    do) therefore produces bit-identical results at any thread count,
//    including the single-threaded fallback.
//  * Laziness. Workers are spawned on the first parallelFor that can use
//    them; a process that never touches the native backend never starts a
//    thread.
//  * Debuggability. TFJS_NUM_THREADS=1 (or setNumThreads(1)) gives a pure
//    serial path: every chunk runs inline on the calling thread, no workers
//    are ever created, and stack traces stay linear.
//
// Nested parallelFor calls (a parallel kernel invoking another parallel
// helper, e.g. conv2d chunks calling the GEMM core) execute inline on the
// worker — the pool never blocks a worker on other workers, so it cannot
// deadlock.
//
// Exceptions thrown by chunk bodies are captured; the first one is rethrown
// on the calling thread after all in-flight chunks drain, and remaining
// unstarted chunks are abandoned.
#pragma once

#include <cstddef>
#include <functional>

namespace tfjs::core {

class ThreadPool {
 public:
  /// The process-wide pool (leaked singleton, like the Engine, so worker
  /// threads never outlive static tensors they might touch).
  static ThreadPool& get();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Target parallelism (callers + workers), >= 1. Initialised from
  /// TFJS_NUM_THREADS, falling back to hardware_concurrency().
  int numThreads() const;

  /// Reconfigures the pool; joins existing workers, clamps n to >= 1.
  /// Workers for the new size are re-spawned lazily.
  void setNumThreads(int n);

  /// Runs fn(begin, end) over every chunk of the fixed partition of [0, n)
  /// into ceil(n / grain) chunks of `grain` indices (last chunk ragged).
  /// Blocks until all chunks complete. The calling thread participates, so
  /// parallelism is min(numThreads, numChunks). grain == 0 is treated as 1.
  void parallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Highest parallelism (distinct threads that executed at least one chunk)
  /// observed by any parallelFor since the last takeLastParallelism() call;
  /// 1 if none ran. Feeds ProfileInfo::KernelRecord::threads.
  int takeLastParallelism();

  /// Parses a TFJS_NUM_THREADS-style value: returns the parsed positive
  /// count, or `fallback` when value is null, empty, non-numeric, or < 1.
  /// Exposed for tests.
  static int threadsFromEnv(const char* value, int fallback);

 private:
  ThreadPool();
  ~ThreadPool() = delete;  // leaked singleton

  struct Impl;
  Impl* impl_;
};

}  // namespace tfjs::core
