// A simulated browser main thread (UI thread) used to reproduce the
// timelines of paper Figures 2 and 3.
//
// The loop fires an animation-frame callback on a fixed cadence (default
// 60 FPS). Tasks posted to the loop run on the same thread — exactly the
// single-threaded JS model of section 2.1. A blocking dataSync() inside a
// task therefore starves frames (Figure 2); an async data() future lets the
// loop keep painting while the simulated GPU works (Figure 3). FrameStats
// quantifies the difference: on-time frames, dropped frames, and the longest
// main-thread stall.
//
// postTask is thread-safe: worker threads (the serving scheduler, device
// readback completions) post results back to the loop the way browser APIs
// resolve promises onto the JS main thread. A post from another thread wakes
// an idle loop immediately instead of waiting out the idle-sleep quantum.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

namespace tfjs::async {

struct FrameStats {
  int framesScheduled = 0;
  int framesOnTime = 0;
  int framesDropped = 0;   ///< frames that fired >50% of a period late
  double maxStallMs = 0;   ///< longest gap between consecutive fired frames
  double totalLatenessMs = 0;
};

class EventLoop {
 public:
  explicit EventLoop(double fps = 60.0);

  /// Posts a task to run on the loop thread as soon as possible. Safe to
  /// call from any thread; wakes the loop if it is sleeping idle.
  void postTask(std::function<void()> task);

  /// Registers the per-frame callback (the "requestAnimationFrame" handler).
  /// Not thread-safe: register before run(), from the loop's owner.
  void onFrame(std::function<void(int frameIndex)> cb);

  /// Runs the loop on the calling thread for `durationMs` of wall time,
  /// interleaving frames and posted tasks. Returns frame statistics.
  FrameStats run(double durationMs);

  double framePeriodMs() const { return periodMs_; }

  /// Tasks posted but not yet run (thread-safe snapshot).
  std::size_t pendingTasks() const;

 private:
  double periodMs_;
  mutable std::mutex mu_;            ///< guards tasks_ (multi-producer)
  std::condition_variable taskCv_;   ///< wakes an idle run() on cross-thread post
  std::deque<std::function<void()>> tasks_;
  std::function<void(int)> frameCallback_;
};

}  // namespace tfjs::async
