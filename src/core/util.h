// Shape/index utilities shared by every backend: broadcasting, coordinate
// arithmetic, and validation helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/shape.h"

namespace tfjs::util {

/// NumPy-style broadcast of two shapes; throws InvalidArgumentError when the
/// shapes are incompatible.
Shape broadcastShapes(const Shape& a, const Shape& b);

/// True when `from` can broadcast to exactly `to`.
bool broadcastsTo(const Shape& from, const Shape& to);

/// Axes of `inShape` (after left-padding to outRank) that were broadcast —
/// used to reduce gradients back to an input's shape.
std::vector<int> broadcastedAxes(const Shape& inShape, const Shape& outShape);

/// Converts a flat row-major index into per-axis coordinates.
void unravelIndex(std::size_t flat, const Shape& shape, std::span<int> coords);

/// Converts per-axis coordinates into a flat row-major index.
std::size_t ravelIndex(std::span<const int> coords, const Shape& shape);

/// Flat index into `inShape` for the element that broadcasting maps to the
/// given coordinates of the (larger) broadcast result.
std::size_t broadcastIndex(std::span<const int> outCoords, const Shape& inShape,
                           const Shape& outShape);

/// Canonicalizes (possibly negative) reduction axes; throws on out-of-range
/// or duplicate axes.
std::vector<int> normalizeAxes(std::span<const int> axes, int rank);

/// Shape after reducing `axes` of `shape` (keepDims=false drops them).
Shape reducedShape(const Shape& shape, std::span<const int> axes,
                   bool keepDims);

}  // namespace tfjs::util
