// Tensor: the immutable, multi-dimensional value handle of paper section 3.1,
// decoupled from its backing storage (section 3.4).
//
// A Tensor is a cheap value type: copying it copies a shared_ptr to the
// TensorInfo. reshape()/clone() create a *new* tensor over the *same*
// DataContainer (reference counted), so they are effectively free. dispose()
// decrements the container's reference count; storage is released when it
// reaches zero. Using a disposed tensor throws DisposedError — the observable
// analogue of the WebGL-memory discipline the paper describes (section 3.7).
#pragma once

#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/dtype.h"
#include "core/quant.h"
#include "core/shape.h"

namespace tfjs {

class Engine;

namespace internal {

/// Reference-counted device buffer; the analogue of the TypedArray-backed
/// data container of section 3.4. Owned jointly by all tensors that alias it.
struct DataContainer {
  Backend* backend = nullptr;
  DataId dataId = 0;
  std::size_t sizeElems = 0;
  std::size_t bytes = 0;
  int refCount = 0;
  bool released = false;
};

struct TensorInfo {
  std::int64_t id = 0;
  Shape shape;
  DType dtype = DType::f32;
  /// Dequantization parameters of an int8 tensor (null otherwise). Shared
  /// by aliases; immutable once attached.
  QuantParamsPtr quant;
  std::shared_ptr<DataContainer> container;
  bool disposed = false;
  bool kept = false;   ///< survives tidy() scope teardown
  bool taped = false;  ///< referenced by the active gradient tape: scope
                       ///< teardown defers disposal until backward is done
};

}  // namespace internal

class Tensor {
 public:
  /// Null handle; most APIs throw if used. Test with defined().
  Tensor() = default;

  bool defined() const { return info_ != nullptr; }

  const Shape& shape() const { return info().shape; }
  DType dtype() const { return info().dtype; }
  int rank() const { return info().shape.rank(); }
  std::size_t size() const { return info().shape.size(); }
  /// Unique id of this tensor (not of its data container).
  std::int64_t id() const { return info().id; }
  /// Id of the shared data container — equal across reshape/clone aliases.
  DataId dataId() const;

  bool isDisposed() const { return !info_ || info_->disposed; }

  /// Dequantization parameters of an int8 tensor; null for other dtypes
  /// (or for an int8 tensor that was never given parameters).
  const QuantParamsPtr& quantParams() const { return info().quant; }
  /// Attaches quantization metadata (ops::quantize* and the io loaders).
  void setQuantParams(QuantParamsPtr q) const { info().quant = std::move(q); }

  /// Blocking download of the tensor's values (paper: tensor.dataSync()).
  std::vector<float> dataSync() const;
  /// Asynchronous download; resolves when the device finishes pending work
  /// (paper: tensor.data()).
  std::future<std::vector<float>> data() const;
  /// Convenience for scalars.
  float scalarSync() const;

  /// New tensor over the same storage with a different logical shape; free.
  Tensor reshape(const Shape& newShape) const;
  /// New tensor aliasing the same storage; free.
  Tensor clone() const;
  /// Flattened view ([size()]).
  Tensor flatten() const;
  /// Returns this tensor as the given dtype. Metadata-only when widening
  /// (b8→i32→f32); narrowing to i32/b8 materializes via the active backend.
  Tensor cast(DType dtype) const;

  /// Releases this tensor's claim on its storage (section 3.7).
  void dispose() const;
  /// Marks the tensor to survive enclosing tidy() scopes.
  const Tensor& keep() const;

  std::string toString(bool verbose = false) const;
  void print(bool verbose = false) const;

  // Internal: used by the engine/ops layers.
  const std::shared_ptr<internal::TensorInfo>& infoPtr() const { return info_; }
  explicit Tensor(std::shared_ptr<internal::TensorInfo> info)
      : info_(std::move(info)) {}

 private:
  internal::TensorInfo& info() const;

  std::shared_ptr<internal::TensorInfo> info_;
};

/// A mutable, named weight: survives tidy() and can be re-assigned in place
/// (the target of optimizer updates). Mirrors tf.Variable.
class Variable {
 public:
  Variable() = default;
  /// Takes ownership of `initial` (it is kept and tracked by the variable).
  explicit Variable(const Tensor& initial, std::string name = "",
                    bool trainable = true);

  bool defined() const { return state_ != nullptr; }
  const Tensor& value() const;
  const std::string& name() const;
  bool trainable() const;
  void setTrainable(bool t);
  const Shape& shape() const { return value().shape(); }
  DType dtype() const { return value().dtype(); }

  /// Replaces the variable's value; the previous value is disposed and
  /// `next` is kept. Shapes must match; dtypes must match too, except that
  /// swapping between f32 and i8 is allowed (weight quantization replaces a
  /// float kernel with its int8 codes and vice versa).
  void assign(const Tensor& next) const;
  /// Disposes the current value and detaches the variable.
  void dispose() const;

 private:
  struct State {
    Tensor current;
    std::string name;
    bool trainable = true;
  };
  std::shared_ptr<State> state_;
};

}  // namespace tfjs
