#include "core/random.h"

#include <cmath>

namespace tfjs {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

Random::Random(std::uint64_t seed) {
  // splitmix64 expansion of the seed into the xoshiro state.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 4; ++i) {
    z += 0x9E3779B97F4A7C15ull;
    std::uint64_t t = z;
    t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
    t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
    s_[i] = static_cast<std::uint32_t>((t ^ (t >> 31)) >> 16) | 1u;
  }
}

std::uint32_t Random::next() {
  const std::uint32_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint32_t t = s_[1] << 9;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 11);
  return result;
}

float Random::uniform() {
  return static_cast<float>(next() >> 8) * (1.0f / 16777216.0f);
}

float Random::uniform(float lo, float hi) {
  return lo + (hi - lo) * uniform();
}

float Random::normal() {
  if (hasSpare_) {
    hasSpare_ = false;
    return spare_;
  }
  float u1 = uniform();
  while (u1 <= 1e-12f) u1 = uniform();
  const float u2 = uniform();
  const float mag = std::sqrt(-2.0f * std::log(u1));
  const float twoPi = 6.28318530717958647692f;
  spare_ = mag * std::sin(twoPi * u2);
  hasSpare_ = true;
  return mag * std::cos(twoPi * u2);
}

float Random::normal(float mean, float stddev) {
  return mean + stddev * normal();
}

std::uint32_t Random::below(std::uint32_t n) {
  return n == 0 ? 0 : next() % n;
}

std::vector<float> Random::uniformVector(std::size_t n, float lo, float hi) {
  std::vector<float> v(n);
  for (auto& x : v) x = uniform(lo, hi);
  return v;
}

std::vector<float> Random::normalVector(std::size_t n, float mean,
                                        float stddev) {
  std::vector<float> v(n);
  for (auto& x : v) x = normal(mean, stddev);
  return v;
}

}  // namespace tfjs
