#include "core/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "core/metrics.h"

namespace tfjs::core {

namespace {

constexpr std::size_t kDefaultCapBytes = std::size_t{256} << 20;  // 256 MiB

/// Bucket that can serve a request for n elements: ceil(log2(n)).
int bucketForRequest(std::size_t n) {
  return n <= 1 ? 0 : std::bit_width(n - 1);
}

/// Bucket a buffer of this capacity belongs to: floor(log2(capacity)).
int bucketForCapacity(std::size_t capacity) {
  return static_cast<int>(std::bit_width(capacity)) - 1;
}

metrics::Counter& hitsCounter() {
  static metrics::Counter& c = metrics::Registry::get().counter("pool.hits");
  return c;
}
metrics::Counter& missesCounter() {
  static metrics::Counter& c = metrics::Registry::get().counter("pool.misses");
  return c;
}
metrics::Counter& returnsCounter() {
  static metrics::Counter& c = metrics::Registry::get().counter("pool.returns");
  return c;
}
metrics::Counter& evictionsCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("pool.evictions");
  return c;
}
metrics::Gauge& bytesGauge() {
  static metrics::Gauge& g = metrics::Registry::get().gauge("pool.bytes");
  return g;
}
metrics::Counter& arenaHitsCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("pool.arena_hits");
  return c;
}
metrics::Counter& arenaMissesCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("pool.arena_misses");
  return c;
}
metrics::Gauge& arenaBytesGauge() {
  static metrics::Gauge& g = metrics::Registry::get().gauge("pool.arena_bytes");
  return g;
}

}  // namespace

thread_local BufferPool::ArenaId BufferPool::boundArena_ = 0;

BufferPool& BufferPool::get() {
  static BufferPool* pool = [] {
    auto* p = new BufferPool();
    p->initFromEnv();
    return p;
  }();
  return *pool;
}

BufferPool::BufferPool() : capBytes_(kDefaultCapBytes) {}

void BufferPool::initFromEnv() {
  std::lock_guard<std::mutex> lock(mu_);
  if (const char* v = std::getenv("TFJS_BUFFER_POOL")) {
    enabled_ = !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
                 std::strcmp(v, "off") == 0);
  } else {
    enabled_ = true;
  }
  if (const char* v = std::getenv("TFJS_BUFFER_POOL_MB")) {
    const long mb = std::strtol(v, nullptr, 10);
    if (mb >= 0) capBytes_ = static_cast<std::size_t>(mb) << 20;
  } else {
    capBytes_ = kDefaultCapBytes;
  }
  evictLocked();
  publishGaugeLocked();
}

std::vector<float> BufferPool::acquire(std::size_t n) {
  if (n == 0) return {};
  std::unique_lock<std::mutex> lock(mu_);
  if (boundArena_ != 0) {
    std::vector<float> v;
    if (arenaAcquireLocked(boundArena_, n, &v)) {
      lock.unlock();
      arenaHitsCounter().inc();
      // Slot capacity >= 2^bucket >= n by the bucket invariant.
      v.resize(n);
      return v;
    }
    if (auto it = arenas_.find(boundArena_); it != arenas_.end()) {
      // Arena miss: heap-allocate and promise the buffer to the arena so
      // its release adopts it — the arena self-sizes to the graph's
      // working set by the second run.
      ++it->second.stats.misses;
      const int b = bucketForRequest(n);
      std::vector<float> fresh;
      if (b < kBuckets) fresh.reserve(std::size_t{1} << b);
      fresh.resize(n);
      loans_[fresh.data()] = Loan{boundArena_, /*fresh=*/true};
      lock.unlock();
      arenaMissesCounter().inc();
      return fresh;
    }
    // Stale binding (arena destroyed): fall through to the shared pool.
  }
  if (!enabled_) {
    ++stats_.bypasses;
    lock.unlock();
    return std::vector<float>(n);
  }
  const int b = bucketForRequest(n);
  if (b < kBuckets && !buckets_[b].empty()) {
    Entry e = std::move(buckets_[b].back());
    buckets_[b].pop_back();
    pooledBytes_ -= e.buf.capacity() * sizeof(float);
    ++stats_.hits;
    stats_.pooledBytes = pooledBytes_;
    publishGaugeLocked();
    lock.unlock();
    hitsCounter().inc();
    // capacity >= 2^b >= n by the bucket invariant: no reallocation.
    e.buf.resize(n);
    return std::move(e.buf);
  }
  ++stats_.misses;
  lock.unlock();
  missesCounter().inc();
  std::vector<float> v;
  // Round the capacity up to the bucket's power of two so the buffer comes
  // back to a bucket that can serve any request mapping there.
  if (b < kBuckets) v.reserve(std::size_t{1} << b);
  v.resize(n);
  return v;
}

std::vector<float> BufferPool::acquireFilled(std::size_t n, float value) {
  std::vector<float> v = acquire(n);
  std::fill(v.begin(), v.end(), value);
  return v;
}

void BufferPool::release(std::vector<float> v) {
  if (v.capacity() == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Arena loans return home first — even when the shared pool is disabled
  // and even from a thread with no arena bound (outputs that escaped a run
  // come back whenever they are finally disposed).
  if (arenaReleaseLocked(v)) return;
  if (!enabled_) return;  // v destructs on return: freed
  const int b = bucketForCapacity(v.capacity());
  if (b < 0 || b >= kBuckets) return;
  pooledBytes_ += v.capacity() * sizeof(float);
  ++stats_.returns;
  returnsCounter().inc();
  buckets_[b].push_back(Entry{++clock_, std::move(v)});
  evictLocked();
  stats_.pooledBytes = pooledBytes_;
  publishGaugeLocked();
}

void BufferPool::evictLocked() {
  while (pooledBytes_ > capBytes_) {
    // Oldest entry across all buckets: each deque is stamp-ordered, so only
    // the fronts need comparing (at most kBuckets of them).
    int victim = -1;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (int b = 0; b < kBuckets; ++b) {
      if (!buckets_[b].empty() && buckets_[b].front().stamp < oldest) {
        oldest = buckets_[b].front().stamp;
        victim = b;
      }
    }
    if (victim < 0) break;
    pooledBytes_ -= buckets_[victim].front().buf.capacity() * sizeof(float);
    buckets_[victim].pop_front();
    ++stats_.evictions;
    evictionsCounter().inc();
  }
  stats_.pooledBytes = pooledBytes_;
}

void BufferPool::publishGaugeLocked() {
  bytesGauge().set(static_cast<std::int64_t>(pooledBytes_));
}

bool BufferPool::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void BufferPool::setEnabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
  if (!on) {
    for (auto& bucket : buckets_) bucket.clear();
    pooledBytes_ = 0;
    stats_.pooledBytes = 0;
    publishGaugeLocked();
  }
}

std::size_t BufferPool::capBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capBytes_;
}

void BufferPool::setCapBytes(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capBytes_ = cap;
  evictLocked();
  publishGaugeLocked();
}

void BufferPool::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& bucket : buckets_) bucket.clear();
  pooledBytes_ = 0;
  stats_.pooledBytes = 0;
  publishGaugeLocked();
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t BufferPool::pooledBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pooledBytes_;
}

void BufferPool::resetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t parked = pooledBytes_;
  stats_ = Stats{};
  stats_.pooledBytes = parked;
}

// ---- graph arenas --------------------------------------------------------

BufferPool::ArenaId BufferPool::createArena() {
  std::lock_guard<std::mutex> lock(mu_);
  const ArenaId id = nextArenaId_++;
  arenas_[id];
  return id;
}

void BufferPool::destroyArena(ArenaId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = arenas_.find(id);
  if (it == arenas_.end()) return;
  arenaBytes_ -= it->second.stats.bytes;
  arenas_.erase(it);
  for (auto lit = loans_.begin(); lit != loans_.end();) {
    lit = lit->second.id == id ? loans_.erase(lit) : std::next(lit);
  }
  arenaBytesGauge().set(static_cast<std::int64_t>(arenaBytes_));
}

void BufferPool::arenaReserve(ArenaId id, std::size_t elems, int count) {
  if (elems == 0 || count <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = arenas_.find(id);
  if (it == arenas_.end()) return;
  const int b = bucketForRequest(elems);
  if (b >= kBuckets) return;
  Arena& a = it->second;
  for (int i = 0; i < count; ++i) {
    std::vector<float> slot;
    slot.reserve(std::size_t{1} << b);
    a.stats.bytes += slot.capacity() * sizeof(float);
    arenaBytes_ += slot.capacity() * sizeof(float);
    a.free[b].push_back(std::move(slot));
  }
  arenaBytesGauge().set(static_cast<std::int64_t>(arenaBytes_));
}

void BufferPool::bindArena(ArenaId id) { boundArena_ = id; }

void BufferPool::unbindArena() { boundArena_ = 0; }

BufferPool::ArenaStats BufferPool::arenaStats(ArenaId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = arenas_.find(id);
  return it == arenas_.end() ? ArenaStats{} : it->second.stats;
}

bool BufferPool::arenaAcquireLocked(ArenaId id, std::size_t n,
                                    std::vector<float>* out) {
  auto it = arenas_.find(id);
  if (it == arenas_.end()) return false;
  const int b = bucketForRequest(n);
  if (b >= kBuckets) return false;
  Arena& a = it->second;
  if (a.free[b].empty()) return false;
  *out = std::move(a.free[b].back());
  a.free[b].pop_back();
  ++a.stats.hits;
  loans_[out->data()] = Loan{id, /*fresh=*/false};
  return true;
}

bool BufferPool::arenaReleaseLocked(std::vector<float>& v) {
  if (loans_.empty()) return false;
  auto it = loans_.find(v.data());
  if (it == loans_.end()) return false;
  const Loan loan = it->second;
  loans_.erase(it);
  auto ait = arenas_.find(loan.id);
  if (ait == arenas_.end()) return false;  // destroyed: park in shared pool
  const int b = bucketForCapacity(v.capacity());
  if (b < 0 || b >= kBuckets) return true;  // never pooled: just free
  Arena& a = ait->second;
  if (loan.fresh) {
    ++a.stats.adopted;
    a.stats.bytes += v.capacity() * sizeof(float);
    arenaBytes_ += v.capacity() * sizeof(float);
    arenaBytesGauge().set(static_cast<std::int64_t>(arenaBytes_));
  }
  a.free[b].push_back(std::move(v));
  return true;
}

}  // namespace tfjs::core
