// Tracing: a low-overhead, process-wide stream of timestamped events
// (spans, instants, counters) with kernel metadata attached.
//
// Design (paper section 3.8, extended):
//  * Producers — the engine's kernel-dispatch hook, backend kernels, the
//    WebGL-sim command queue, the thread pool and the event loop — emit
//    Events only when at least one consumer is active. The gate is a single
//    relaxed atomic load (trace::active()), so a fully-disabled build path
//    costs one predictable branch per candidate event.
//  * Consumers are (a) the global ring-buffer Recorder, enabled explicitly
//    or via the TFJS_TRACE=<file.json> environment variable, and (b) any
//    live tfjs::instrumentation::Scope, the RAII type that time()/profile()
//    are built on. Every recorded event is fanned out to all consumers.
//  * The Recorder keeps a bounded ring (default 65536 events); old events
//    are overwritten and counted in dropped().
//  * TraceExporter renders events as chrome://tracing-compatible JSON
//    (load via chrome://tracing or https://ui.perfetto.dev).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/shape.h"

namespace tfjs {

namespace instrumentation {
class Scope;
}  // namespace instrumentation

namespace trace {

/// One trace event. `category` must point to a string literal (it is stored
/// unowned); `name` is owned. Span events carry a duration; counter events
/// carry a value; instant events carry neither.
struct Event {
  enum class Type { kSpan, kInstant, kCounter };
  Type type = Type::kSpan;
  /// Static category string: "op", "kernel", "gpu", "pool", "loop", "io",
  /// "api", "metric".
  const char* category = "";
  std::string name;
  /// Microseconds since the process trace origin (steady clock).
  double tsUs = 0;
  /// Span duration in microseconds (0 for instants/counters).
  double durUs = 0;
  /// Dense per-thread id (0 = first thread to emit, usually the main thread).
  int tid = 0;
  /// Kernel metadata, populated for "op" events.
  Shape shape;
  std::uint64_t bytes = 0;
  int threads = 0;
  std::string backend;
  /// Counter payload.
  double value = 0;
};

namespace internal {
/// Number of active consumers: 1 for the enabled ring buffer plus one per
/// registered instrumentation::Scope. Maintained under the Recorder mutex;
/// read lock-free by active().
extern std::atomic<int> gActiveSources;
}  // namespace internal

/// True when at least one consumer (ring buffer or Scope) wants events.
/// This is the producer-side fast gate: a relaxed load and a compare.
inline bool active() {
  return internal::gActiveSources.load(std::memory_order_relaxed) > 0;
}

/// Microseconds since the process trace origin (monotonic).
double nowUs();

/// Dense thread id for trace events: 0, 1, 2, ... in order of first use.
int currentThreadId();

/// The process-wide event sink: a bounded ring buffer plus the registry of
/// live instrumentation Scopes. Leaked singleton, same lifetime idiom as
/// Engine and ThreadPool.
class Recorder {
 public:
  static Recorder& get();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Turns the ring buffer on/off. Independent of Scope-based consumers.
  void setEnabled(bool on);
  bool enabled() const;

  /// Resizes the ring (discards buffered events). Default 65536.
  void setCapacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Discards buffered events and the dropped counter.
  void clear();

  /// Fans `e` out to every registered Scope and, if enabled, the ring.
  /// Producers should gate calls on trace::active().
  void record(Event e);

  /// Buffered events, oldest first.
  std::vector<Event> snapshot() const;

  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const;

 private:
  friend class tfjs::instrumentation::Scope;
  Recorder();

  void registerScope(instrumentation::Scope* s);
  void unregisterScope(instrumentation::Scope* s);
  /// Recomputes gActiveSources. Caller holds mu_.
  void refreshActiveLocked();

  mutable std::mutex mu_;
  bool enabled_ = false;
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  std::vector<instrumentation::Scope*> scopes_;
};

/// RAII span: captures liveness and the start timestamp at construction and
/// records a kSpan event at destruction. When tracing is inactive at
/// construction the span is inert (no timestamps, no allocation).
class Span {
 public:
  /// A null name yields an inert span (callers can pass a conditional name).
  Span(const char* category, const char* name)
      : live_(name != nullptr && active()) {
    if (live_) begin(category, name);
  }
  Span(const char* category, const std::string& name) : live_(active()) {
    if (live_) begin(category, name.c_str());
  }
  ~Span() {
    if (live_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool live() const { return live_; }
  /// Metadata hook; null when the span is inert.
  Event* mutableEvent() { return live_ ? &event_ : nullptr; }

 private:
  void begin(const char* category, const char* name);
  void end();

  bool live_;
  Event event_;
};

/// Records a zero-duration instant event (gated on active()).
void instant(const char* category, const std::string& name);

/// Records a counter sample (gated on active()).
void counter(const char* name, double value);

/// Renders events as chrome://tracing JSON ("traceEvents" array of complete
/// "X" spans, "i" instants and "C" counters, timestamps in microseconds)
/// with the current metrics registry snapshot under otherData.metrics.
class TraceExporter {
 public:
  static std::string toJson(const std::vector<Event>& events);
  /// Writes toJson(events) to `path`. Returns false on I/O failure.
  static bool writeFile(const std::string& path,
                        const std::vector<Event>& events);
  /// Convenience: exports the Recorder's current buffer.
  static bool writeFile(const std::string& path);
};

/// Reads TFJS_TRACE (output path; enables the ring and registers an atexit
/// exporter) and TFJS_TRACE_CAPACITY (ring size). Idempotent; called from
/// Engine::get() so any program touching the engine honours the variables.
void initFromEnv();

}  // namespace trace

namespace instrumentation {

/// The single RAII instrumentation primitive: while alive, every trace
/// event recorded anywhere in the process is also delivered to this Scope.
/// Engine::time() and Engine::profile() are thin views over one Scope —
/// this type replaces the engine's former activeProfile_ pointer plumbing.
/// Destruction records an "api" span covering the scope's lifetime.
class Scope {
 public:
  explicit Scope(std::string name);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  const std::string& name() const { return name_; }
  /// Trace-origin timestamp of construction, microseconds.
  double beginUs() const { return beginUs_; }
  /// Wall time since construction, milliseconds.
  double elapsedMs() const;
  /// Snapshot of the events delivered so far.
  std::vector<trace::Event> events() const;

 private:
  friend class trace::Recorder;
  /// Called by the Recorder with its mutex held.
  void deliver(const trace::Event& e) { events_.push_back(e); }

  std::string name_;
  double beginUs_;
  std::vector<trace::Event> events_;  // guarded by the Recorder mutex
};

}  // namespace instrumentation
}  // namespace tfjs
