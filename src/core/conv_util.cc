#include "core/conv_util.h"

namespace tfjs::conv_util {

Conv2DInfo computeConv2DInfo(const Shape& x, const Shape& filter, int strideH,
                             int strideW, PadMode pad, int dilationH,
                             int dilationW, bool depthwise) {
  TFJS_ARG_CHECK(x.rank() == 4, "conv2d expects NHWC input, got rank "
                                    << x.rank());
  TFJS_ARG_CHECK(filter.rank() == 4,
                 "conv2d expects rank-4 filter, got rank " << filter.rank());
  TFJS_ARG_CHECK(strideH > 0 && strideW > 0, "strides must be positive");
  TFJS_ARG_CHECK(dilationH > 0 && dilationW > 0, "dilations must be positive");

  Conv2DInfo info;
  info.batch = x[0];
  info.inH = x[1];
  info.inW = x[2];
  info.inC = x[3];
  info.filterH = filter[0];
  info.filterW = filter[1];
  info.strideH = strideH;
  info.strideW = strideW;
  info.dilationH = dilationH;
  info.dilationW = dilationW;

  TFJS_ARG_CHECK(filter[2] == info.inC,
                 "filter in-channels " << filter[2]
                     << " != input channels " << info.inC);
  if (depthwise) {
    info.channelMult = filter[3];
    info.outC = info.inC * info.channelMult;
  } else {
    info.outC = filter[3];
  }

  info.outH = outputSize(info.inH, info.filterH, strideH, dilationH, pad);
  info.outW = outputSize(info.inW, info.filterW, strideW, dilationW, pad);
  info.padTop =
      padBefore(info.inH, info.outH, info.filterH, strideH, dilationH, pad);
  info.padLeft =
      padBefore(info.inW, info.outW, info.filterW, strideW, dilationW, pad);
  return info;
}

Pool2DInfo computePool2DInfo(const Shape& x, int filterH, int filterW,
                             int strideH, int strideW, PadMode pad) {
  TFJS_ARG_CHECK(x.rank() == 4, "pool2d expects NHWC input, got rank "
                                    << x.rank());
  TFJS_ARG_CHECK(filterH > 0 && filterW > 0, "pool filter must be positive");
  TFJS_ARG_CHECK(strideH > 0 && strideW > 0, "pool strides must be positive");
  Pool2DInfo info;
  info.batch = x[0];
  info.inH = x[1];
  info.inW = x[2];
  info.channels = x[3];
  info.filterH = filterH;
  info.filterW = filterW;
  info.strideH = strideH;
  info.strideW = strideW;
  info.outH = outputSize(info.inH, filterH, strideH, 1, pad);
  info.outW = outputSize(info.inW, filterW, strideW, 1, pad);
  info.padTop = padBefore(info.inH, info.outH, filterH, strideH, 1, pad);
  info.padLeft = padBefore(info.inW, info.outW, filterW, strideW, 1, pad);
  return info;
}

}  // namespace tfjs::conv_util
