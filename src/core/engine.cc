#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <unordered_set>

#include "core/buffer_pool.h"
#include "core/metrics.h"
#include "core/thread_pool.h"
#include "core/trace.h"

namespace tfjs {

thread_local std::vector<std::vector<std::shared_ptr<internal::TensorInfo>>>
    Engine::scopes_;

thread_local OpObserver* Engine::opObserver_ = nullptr;

void Engine::setOpObserver(OpObserver* o) { opObserver_ = o; }
OpObserver* Engine::opObserver() const { return opObserver_; }

Engine& Engine::get() {
  // Leaked singleton: backends (and their worker threads) live for the whole
  // process so tensors in static storage never dangle. Engine creation is
  // the natural process-init point, so TFJS_TRACE / TFJS_TRACE_CAPACITY are
  // honoured from here.
  static Engine* engine = [] {
    trace::initFromEnv();
    return new Engine();
  }();
  return *engine;
}

// ------------------------------------------------------------- backends

void Engine::registerBackend(const std::string& name, BackendFactory factory,
                             int priority) {
  auto& slot = backends_[name];
  slot.factory = std::move(factory);
  slot.priority = priority;
}

void Engine::setBackend(const std::string& name) {
  auto it = backends_.find(name);
  TFJS_ARG_CHECK(it != backends_.end(), "Unknown backend '" << name << "'");
  if (!it->second.instance) it->second.instance = it->second.factory();
  activeBackend_ = name;
}

Backend& Engine::backend() {
  if (activeBackend_.empty()) {
    // Elect the highest-priority registered backend (paper: webgl, then
    // node/native, then plain cpu fallback).
    TFJS_ARG_CHECK(!backends_.empty(), "No backends registered");
    const std::string* best = nullptr;
    int bestPriority = -1;
    for (const auto& [name, reg] : backends_) {
      if (reg.priority > bestPriority) {
        bestPriority = reg.priority;
        best = &name;
      }
    }
    setBackend(*best);
  }
  return *backends_.at(activeBackend_).instance;
}

const std::string& Engine::backendName() {
  backend();  // force election
  return activeBackend_;
}

std::vector<std::string> Engine::registeredBackends() const {
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& [name, reg] : backends_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void Engine::removeBackendInstance(const std::string& name) {
  auto it = backends_.find(name);
  if (it == backends_.end()) return;
  it->second.instance.reset();
  if (activeBackend_ == name) activeBackend_.clear();
}

// ------------------------------------------------- creation & tracking

void Engine::trackTensor(const std::shared_ptr<internal::TensorInfo>& info) {
  {
    std::lock_guard<std::mutex> lock(memMu_);
    ++memory_.numTensors;
  }
  // scopes_ is thread-local: the tensor joins the creating thread's
  // innermost tidy scope (if any) without synchronization.
  if (!scopes_.empty()) scopes_.back().push_back(info);
}

Tensor Engine::makeTensorFromHost(std::span<const float> values,
                                  const Shape& shape, DType dtype) {
  TFJS_ARG_CHECK(values.size() == shape.size(),
                 "Data length " << values.size() << " does not match shape "
                                << shape.toString());
  Backend& b = backend();
  const DataId id = b.write(values, shape);
  return makeTensorFromDataId(id, shape, dtype, &b);
}

Tensor Engine::makeTensorFromDataId(DataId id, const Shape& shape, DType dtype,
                                    Backend* owner) {
  if (owner == nullptr) owner = &backend();
  auto container = std::make_shared<internal::DataContainer>();
  container->backend = owner;
  container->dataId = id;
  container->sizeElems = shape.size();
  container->bytes = shape.size() * dtypeBytes(dtype);
  container->refCount = 1;

  {
    std::lock_guard<std::mutex> lock(memMu_);
    ++memory_.numDataBuffers;
    memory_.numBytes += container->bytes;
    peakBytes_ = std::max(peakBytes_, memory_.numBytes);
  }

  auto info = std::make_shared<internal::TensorInfo>();
  info->id = nextTensorId();
  info->shape = shape;
  info->dtype = dtype;
  info->container = std::move(container);
  trackTensor(info);
  return Tensor(info);
}

Tensor Engine::makeAlias(const Tensor& t, const Shape& shape, DType dtype) {
  const auto& src = t.infoPtr();
  TFJS_CHECK(src && !src->disposed);
  auto info = std::make_shared<internal::TensorInfo>();
  info->id = nextTensorId();
  info->shape = shape;
  info->dtype = dtype;
  // Quantization metadata follows int8 aliases (clone, reshape) as long as
  // the channel axis survives: per-tensor params always do; per-channel
  // params require the trailing dimension (the quantized axis of weight
  // tensors) to be unchanged — e.g. the ops layer's [k,n] -> [1,k,n]
  // normalization.
  if (dtype == DType::i8 && src->quant != nullptr) {
    const bool lastDimKept =
        shape.rank() > 0 && src->shape.rank() > 0 &&
        shape[shape.rank() - 1] == src->shape[src->shape.rank() - 1];
    if (!src->quant->perChannel() || lastDimKept) info->quant = src->quant;
  }
  info->container = src->container;
  {
    std::lock_guard<std::mutex> lock(memMu_);
    ++info->container->refCount;
  }
  trackTensor(info);
  Tensor alias(info);
  // Aliases (clone/reshape/widening cast) are differentiable identities:
  // record them centrally so gradients flow through Tensor::clone() and
  // Tensor::reshape() without each op layer re-recording.
  if (tape_ != nullptr) {
    const Tensor source(src);
    if (tape_->watched(std::span<const Tensor>(&source, 1))) {
      const Shape srcShape = src->shape;
      tape_->record("alias", std::span<const Tensor>(&source, 1), alias,
                    [srcShape](const Tensor& dy) {
                      return std::vector<Tensor>{dy.reshape(srcShape)};
                    });
    }
  }
  // Graph capture tracks aliases so value numbering follows reshape/clone
  // chains (the recorder ignores aliases made inside a composite op).
  if (opObserver_ != nullptr) opObserver_->onAlias(t, alias);
  return alias;
}

void Engine::disposeTensor(const internal::TensorInfo& constInfo) {
  auto& info = const_cast<internal::TensorInfo&>(constInfo);
  bool releaseData = false;
  auto& c = *info.container;
  {
    std::lock_guard<std::mutex> lock(memMu_);
    if (info.disposed) return;
    // A tensor referenced by the active gradient tape must stay alive until
    // backward has consumed it; the disposal request is deferred — the grad
    // API clears the flag and its scope collects the tensor afterwards.
    if (info.taped && tape_ != nullptr) return;
    info.disposed = true;
    TFJS_CHECK(memory_.numTensors > 0);
    --memory_.numTensors;

    TFJS_CHECK(c.refCount > 0);
    if (--c.refCount == 0 && !c.released) {
      c.released = true;
      releaseData = true;
      TFJS_CHECK(memory_.numDataBuffers > 0);
      --memory_.numDataBuffers;
      TFJS_CHECK(memory_.numBytes >= c.bytes);
      memory_.numBytes -= c.bytes;
    }
  }
  // The backend call happens outside the accounting lock: disposeData takes
  // the backend storage mutex and may cascade into the buffer pool, and
  // exactly one thread can reach here per container (released flips once).
  if (releaseData) c.backend->disposeData(c.dataId);
}

MemoryInfo Engine::memory() const {
  MemoryInfo m;
  {
    std::lock_guard<std::mutex> lock(memMu_);
    m = memory_;
  }
  m.pooledBytes = core::BufferPool::get().pooledBytes();
  return m;
}

bool Engine::canReuseInput(const Tensor& t) {
  if (!t.defined() || t.isDisposed()) return false;
  const auto& info = *t.infoPtr();
  if (info.kept || info.taped) return false;
  const auto& c = *info.container;
  {
    std::lock_guard<std::mutex> lock(memMu_);
    if (c.refCount != 1 || c.released) return false;
  }
  // The tape saves watched tensors for backward — overwriting one would
  // corrupt the gradient computation.
  if (tape_ != nullptr &&
      tape_->watched(std::span<const Tensor>(&t, 1))) {
    return false;
  }
  return true;
}

Tensor Engine::reuseInputAsOutput(const Tensor& t, const Shape& shape,
                                  DType dtype) {
  static metrics::Counter& inplaceReuses =
      metrics::Registry::get().counter("engine.inplace_reuses");
  const auto& src = t.infoPtr();
  TFJS_CHECK(src && !src->disposed && src->container->refCount == 1);
  TFJS_CHECK(shape.size() * dtypeBytes(dtype) == src->container->bytes);
  auto info = std::make_shared<internal::TensorInfo>();
  info->id = nextTensorId();
  info->shape = shape;
  info->dtype = dtype;
  info->container = src->container;
  {
    std::lock_guard<std::mutex> lock(memMu_);
    ++info->container->refCount;
  }
  trackTensor(info);
  disposeTensor(*src);  // refCount 2 -> 1: container and its bytes survive
  inplaceReuses.inc();
  return Tensor(info);
}

TensorSpec Engine::prepareInput(const Tensor& t) {
  TFJS_ARG_CHECK(t.defined(), "Op received a null Tensor");
  if (t.isDisposed()) {
    throw DisposedError("Op received a disposed tensor");
  }
  auto& info = *t.infoPtr();
  Backend& active = backend();
  auto& c = *info.container;
  if (c.backend != &active) {
    // Cross-backend migration: download from the owning backend and upload
    // to the active one. All aliases of the container migrate together.
    const std::vector<float> host = c.backend->read(c.dataId);
    c.backend->disposeData(c.dataId);
    c.dataId = active.write(host, info.shape);
    c.backend = &active;
  }
  return TensorSpec{c.dataId, info.shape, info.dtype};
}

// ----------------------------------------------------------------- scopes

void Engine::startScope() { scopes_.emplace_back(); }

void Engine::endScope(std::span<const Tensor> escaping) {
  TFJS_CHECK_MSG(!scopes_.empty(), "endScope without startScope");
  auto scope = std::move(scopes_.back());
  scopes_.pop_back();

  std::unordered_set<std::int64_t> escapeIds;
  for (const auto& t : escaping) {
    if (t.defined() && !t.isDisposed()) escapeIds.insert(t.infoPtr()->id);
  }

  for (auto& info : scope) {
    if (info->disposed) continue;
    if (info->kept || info->taped || escapeIds.count(info->id)) {
      // Survivors transfer to the parent scope (if any). Taped tensors are
      // needed by pending gradient computation; the grad API clears the
      // flag and re-collects them after backward.
      if (!scopes_.empty() && !info->kept) scopes_.back().push_back(info);
      continue;
    }
    disposeTensor(*info);
  }
}

namespace {
/// Ends the engine scope on scope exit even when f throws.
class ScopeGuard {
 public:
  explicit ScopeGuard(Engine& e) : engine_(e) { engine_.startScope(); }
  ~ScopeGuard() {
    if (!done_) engine_.endScope({});
  }
  void finish(std::span<const Tensor> escaping) {
    engine_.endScope(escaping);
    done_ = true;
  }

 private:
  Engine& engine_;
  bool done_ = false;
};
}  // namespace

Tensor Engine::tidy(const std::function<Tensor()>& f) {
  ScopeGuard guard(*this);
  Tensor result = f();
  if (result.defined() && !result.isDisposed()) {
    guard.finish(std::span<const Tensor>(&result, 1));
  } else {
    guard.finish({});
  }
  return result;
}

std::vector<Tensor> Engine::tidy(
    const std::function<std::vector<Tensor>()>& f) {
  ScopeGuard guard(*this);
  std::vector<Tensor> results = f();
  guard.finish(results);
  return results;
}

void Engine::tidyVoid(const std::function<void()>& f) {
  ScopeGuard guard(*this);
  f();
  guard.finish({});
}

// --------------------------------------------- debugging and profiling

void Engine::notifyKernel(const std::string& opName, const Tensor& output,
                          double startUs) {
  static metrics::Counter& kernelsDispatched =
      metrics::Registry::get().counter("engine.kernels_dispatched");
  kernelsDispatched.inc();
  // Consume the thread-pool parallelism watermark per kernel whether or not
  // anyone is listening, so the first traced kernel never reports a stale
  // high-water mark from earlier untraced work.
  const int threads = core::ThreadPool::get().takeLastParallelism();
  if (trace::active()) {
    trace::Event e;
    e.type = trace::Event::Type::kSpan;
    e.category = "op";
    e.name = opName;
    const double now = trace::nowUs();
    e.tsUs = startUs >= 0 ? startUs : now;
    e.durUs = startUs >= 0 ? now - startUs : 0;
    e.tid = trace::currentThreadId();
    e.shape = output.shape();
    e.bytes = output.size() * dtypeBytes(output.dtype());
    e.threads = threads;
    e.backend = activeBackend_;
    trace::Recorder::get().record(std::move(e));
  }
  if (debug_) {
    // Debug mode (section 3.8): download every kernel output and throw at
    // the first op that introduces a NaN or Inf.
    const auto vals = output.dataSync();
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (std::isnan(vals[i]) || std::isinf(vals[i])) {
        throw NumericError("Numeric instability: op '" + opName +
                           "' produced " +
                           (std::isnan(vals[i]) ? "NaN" : "Inf") +
                           " at flat index " + std::to_string(i) +
                           " (output shape " + output.shape().toString() +
                           ")");
      }
    }
  }
}

TimingInfo Engine::time(const std::function<void()>& f) {
  Backend& b = backend();
  b.flush();
  const double kernelMsBefore = b.kernelTimeMs();
  // The Scope both provides the wall clock and lands a "time" span in the
  // trace stream, so timed regions are visible in TFJS_TRACE exports.
  instrumentation::Scope scope("time");
  f();
  b.flush();
  TimingInfo t;
  t.wallMs = scope.elapsedMs();
  t.kernelMs = b.kernelTimeMs() - kernelMsBefore;
  return t;
}

ProfileInfo Engine::profile(const std::function<void()>& f) {
  ProfileInfo info;
  std::size_t tensorsBefore, bytesBefore;
  {
    std::lock_guard<std::mutex> lock(memMu_);
    tensorsBefore = memory_.numTensors;
    bytesBefore = memory_.numBytes;
    peakBytes_ = memory_.numBytes;
  }

  {
    // The Scope subscribes to the trace stream; kernel records are the "op"
    // events notifyKernel emitted while f ran. RAII unsubscribes even when
    // f throws (the former activeProfile_ pointer dance).
    instrumentation::Scope scope("profile");
    f();
    info.wallMs = scope.elapsedMs();
    for (const trace::Event& e : scope.events()) {
      if (e.type != trace::Event::Type::kSpan ||
          std::string_view(e.category) != "op") {
        continue;
      }
      ProfileInfo::KernelRecord r;
      r.name = e.name;
      r.outputShape = e.shape;
      r.outputBytes = static_cast<std::size_t>(e.bytes);
      r.threads = e.threads > 0 ? e.threads : 1;
      r.startMs = (e.tsUs - scope.beginUs()) / 1000.0;
      r.wallMs = e.durUs / 1000.0;
      r.backend = e.backend;
      info.kernels.push_back(std::move(r));
    }
  }

  {
    std::lock_guard<std::mutex> lock(memMu_);
    info.newTensors = memory_.numTensors > tensorsBefore
                          ? memory_.numTensors - tensorsBefore
                          : 0;
    info.newBytes =
        memory_.numBytes > bytesBefore ? memory_.numBytes - bytesBefore : 0;
    info.peakBytes = peakBytes_;
  }
  return info;
}

std::string ProfileInfo::toString() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "profile: %.3f ms wall, %zu new tensors, %zu new bytes, "
                "%zu peak bytes, %zu kernels\n",
                wallMs, newTensors, newBytes, peakBytes, kernels.size());
  out += buf;
  for (const auto& k : kernels) {
    std::snprintf(buf, sizeof(buf),
                  "  %-16s %-14s %8zu B  x%d  @%8.3f ms  %7.3f ms  %s\n",
                  k.name.c_str(), k.outputShape.toString().c_str(),
                  k.outputBytes, k.threads, k.startMs, k.wallMs,
                  k.backend.c_str());
    out += buf;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const ProfileInfo& p) {
  return os << p.toString();
}

void Engine::setNumThreads(int n) { core::ThreadPool::get().setNumThreads(n); }

int Engine::numThreads() const { return core::ThreadPool::get().numThreads(); }

// -------------------------------------------------------------- variables

void Engine::registerVariable(const std::string& name, const Variable& v) {
  for (auto& [n, var] : variables_) {
    if (n == name) {
      var = v;
      return;
    }
  }
  variables_.emplace_back(name, v);
}

std::vector<Variable> Engine::trainableVariables() const {
  std::vector<Variable> out;
  for (const auto& [name, v] : variables_) {
    if (v.defined() && v.trainable()) out.push_back(v);
  }
  return out;
}

}  // namespace tfjs
