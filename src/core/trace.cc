#include "core/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/metrics.h"

namespace tfjs::trace {

namespace internal {
std::atomic<int> gActiveSources{0};
}  // namespace internal

namespace {

constexpr std::size_t kDefaultCapacity = 65536;

std::chrono::steady_clock::time_point traceOrigin() {
  // Pinned at first use; Recorder's constructor touches it so the origin
  // predates every recorded event.
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

/// TFJS_TRACE output path captured by initFromEnv for the atexit exporter
/// (atexit takes a capture-less function).
std::string& tracePath() {
  static std::string path;
  return path;
}

}  // namespace

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - traceOrigin())
      .count();
}

int currentThreadId() {
  static std::atomic<int> nextId{0};
  thread_local const int id = nextId.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ------------------------------------------------------------- Recorder

Recorder& Recorder::get() {
  // Leaked singleton: producers on backend worker threads may emit events
  // during process teardown.
  static Recorder* recorder = new Recorder();
  return *recorder;
}

Recorder::Recorder() : capacity_(kDefaultCapacity) {
  ring_.reserve(256);
  traceOrigin();
}

void Recorder::setEnabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
  refreshActiveLocked();
}

bool Recorder::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void Recorder::setCapacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

std::size_t Recorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Recorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

void Recorder::record(Event e) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto* scope : scopes_) scope->deliver(e);
  if (!enabled_) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  // Ring full: overwrite the oldest slot.
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<Event> Recorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<Event> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

std::uint64_t Recorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Recorder::registerScope(tfjs::instrumentation::Scope* s) {
  std::lock_guard<std::mutex> lock(mu_);
  scopes_.push_back(s);
  refreshActiveLocked();
}

void Recorder::unregisterScope(tfjs::instrumentation::Scope* s) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase(scopes_, s);
  refreshActiveLocked();
}

void Recorder::refreshActiveLocked() {
  internal::gActiveSources.store(
      (enabled_ ? 1 : 0) + static_cast<int>(scopes_.size()),
      std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Span

void Span::begin(const char* category, const char* name) {
  event_.type = Event::Type::kSpan;
  event_.category = category;
  event_.name = name;
  event_.tid = currentThreadId();
  event_.tsUs = nowUs();
}

void Span::end() {
  event_.durUs = nowUs() - event_.tsUs;
  Recorder::get().record(std::move(event_));
}

void instant(const char* category, const std::string& name) {
  if (!active()) return;
  Event e;
  e.type = Event::Type::kInstant;
  e.category = category;
  e.name = name;
  e.tsUs = nowUs();
  e.tid = currentThreadId();
  Recorder::get().record(std::move(e));
}

void counter(const char* name, double value) {
  if (!active()) return;
  Event e;
  e.type = Event::Type::kCounter;
  e.category = "metric";
  e.name = name;
  e.tsUs = nowUs();
  e.tid = currentThreadId();
  e.value = value;
  Recorder::get().record(std::move(e));
}

// --------------------------------------------------------- TraceExporter

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendNumber(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

std::string TraceExporter::toJson(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    appendNumber(out, e.tsUs);
    out += ",\"cat\":\"";
    appendEscaped(out, e.category);
    out += "\",\"name\":\"";
    appendEscaped(out, e.name);
    out += "\"";
    switch (e.type) {
      case Event::Type::kSpan: {
        out += ",\"ph\":\"X\",\"dur\":";
        appendNumber(out, e.durUs);
        // Kernel metadata rides in args, where chrome://tracing shows it in
        // the selection pane.
        std::string args;
        if (e.shape.rank() > 0 || e.bytes > 0) {
          args += "\"shape\":\"" + e.shape.toString() + "\",\"bytes\":" +
                  std::to_string(e.bytes);
        }
        if (e.threads > 0) {
          if (!args.empty()) args += ",";
          args += "\"threads\":" + std::to_string(e.threads);
        }
        if (!e.backend.empty()) {
          if (!args.empty()) args += ",";
          args += "\"backend\":\"";
          appendEscaped(args, e.backend);
          args += "\"";
        }
        if (!args.empty()) out += ",\"args\":{" + args + "}";
        break;
      }
      case Event::Type::kInstant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case Event::Type::kCounter: {
        out += ",\"ph\":\"C\",\"args\":{\"";
        appendEscaped(out, e.name);
        out += "\":";
        appendNumber(out, e.value);
        out += "}";
        break;
      }
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":";
  out += std::to_string(Recorder::get().dropped());
  out += ",\"metrics\":";
  out += metrics::Registry::get().toJsonString();
  out += "}}";
  return out;
}

bool TraceExporter::writeFile(const std::string& path,
                              const std::vector<Event>& events) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string json = toJson(events);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

bool TraceExporter::writeFile(const std::string& path) {
  return writeFile(path, Recorder::get().snapshot());
}

void initFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* cap = std::getenv("TFJS_TRACE_CAPACITY")) {
      const long n = std::strtol(cap, nullptr, 10);
      if (n > 0) Recorder::get().setCapacity(static_cast<std::size_t>(n));
    }
    if (const char* path = std::getenv("TFJS_TRACE")) {
      if (path[0] != '\0') {
        tracePath() = path;
        Recorder::get().setEnabled(true);
        std::atexit([] { TraceExporter::writeFile(tracePath()); });
      }
    }
  });
}

}  // namespace tfjs::trace

namespace tfjs::instrumentation {

Scope::Scope(std::string name)
    : name_(std::move(name)), beginUs_(trace::nowUs()) {
  trace::Recorder::get().registerScope(this);
}

Scope::~Scope() {
  trace::Recorder::get().unregisterScope(this);
  // Record the scope's own lifetime as an "api" span (after unregistering,
  // so a scope never captures itself).
  if (trace::active()) {
    trace::Event e;
    e.type = trace::Event::Type::kSpan;
    e.category = "api";
    e.name = name_;
    e.tsUs = beginUs_;
    e.durUs = trace::nowUs() - beginUs_;
    e.tid = trace::currentThreadId();
    trace::Recorder::get().record(std::move(e));
  }
}

double Scope::elapsedMs() const { return (trace::nowUs() - beginUs_) / 1000.0; }

std::vector<trace::Event> Scope::events() const {
  // events_ is mutated under the Recorder mutex; take it for the snapshot.
  std::lock_guard<std::mutex> lock(trace::Recorder::get().mu_);
  return events_;
}

}  // namespace tfjs::instrumentation
