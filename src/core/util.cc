#include "core/util.h"

#include <algorithm>
#include <set>

namespace tfjs::util {

Shape broadcastShapes(const Shape& a, const Shape& b) {
  const int rank = std::max(a.rank(), b.rank());
  std::vector<int> out(static_cast<std::size_t>(rank), 1);
  for (int i = 0; i < rank; ++i) {
    const int ai = i < rank - a.rank() ? 1 : a[i - (rank - a.rank())];
    const int bi = i < rank - b.rank() ? 1 : b[i - (rank - b.rank())];
    TFJS_ARG_CHECK(ai == bi || ai == 1 || bi == 1,
                   "Shapes " << a.toString() << " and " << b.toString()
                             << " are not broadcast-compatible");
    // A size-1 dim stretches to the other dim — including to 0 (max() would
    // wrongly promote a zero-sized dim to 1).
    out[static_cast<std::size_t>(i)] = ai == 1 ? bi : ai;
  }
  return Shape(std::move(out));
}

bool broadcastsTo(const Shape& from, const Shape& to) {
  if (from.rank() > to.rank()) return false;
  const int pad = to.rank() - from.rank();
  for (int i = 0; i < from.rank(); ++i) {
    if (from[i] != to[i + pad] && from[i] != 1) return false;
  }
  return true;
}

std::vector<int> broadcastedAxes(const Shape& inShape, const Shape& outShape) {
  std::vector<int> axes;
  const int pad = outShape.rank() - inShape.rank();
  for (int i = 0; i < outShape.rank(); ++i) {
    const int inDim = i < pad ? 1 : inShape[i - pad];
    if (inDim == 1 && outShape[i] != 1) axes.push_back(i);
  }
  return axes;
}

void unravelIndex(std::size_t flat, const Shape& shape,
                  std::span<int> coords) {
  TFJS_CHECK(static_cast<int>(coords.size()) == shape.rank());
  for (int i = shape.rank() - 1; i >= 0; --i) {
    const auto dim = static_cast<std::size_t>(shape[i]);
    coords[static_cast<std::size_t>(i)] = static_cast<int>(flat % dim);
    flat /= dim;
  }
}

std::size_t ravelIndex(std::span<const int> coords, const Shape& shape) {
  TFJS_CHECK(static_cast<int>(coords.size()) == shape.rank());
  std::size_t flat = 0;
  for (int i = 0; i < shape.rank(); ++i) {
    flat = flat * static_cast<std::size_t>(shape[i]) +
           static_cast<std::size_t>(coords[static_cast<std::size_t>(i)]);
  }
  return flat;
}

std::size_t broadcastIndex(std::span<const int> outCoords,
                           const Shape& inShape, const Shape& outShape) {
  const int pad = outShape.rank() - inShape.rank();
  std::size_t flat = 0;
  for (int i = 0; i < inShape.rank(); ++i) {
    const int dim = inShape[i];
    const int c = dim == 1 ? 0 : outCoords[static_cast<std::size_t>(i + pad)];
    flat = flat * static_cast<std::size_t>(dim) + static_cast<std::size_t>(c);
  }
  return flat;
}

std::vector<int> normalizeAxes(std::span<const int> axes, int rank) {
  std::vector<int> out;
  std::set<int> seen;
  for (int a : axes) {
    const int norm = a < 0 ? a + rank : a;
    TFJS_ARG_CHECK(norm >= 0 && norm < rank,
                   "Axis " << a << " out of range for rank " << rank);
    TFJS_ARG_CHECK(seen.insert(norm).second, "Duplicate axis " << norm);
    out.push_back(norm);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Shape reducedShape(const Shape& shape, std::span<const int> axes,
                   bool keepDims) {
  std::set<int> reduce(axes.begin(), axes.end());
  std::vector<int> out;
  for (int i = 0; i < shape.rank(); ++i) {
    if (reduce.count(i)) {
      if (keepDims) out.push_back(1);
    } else {
      out.push_back(shape[i]);
    }
  }
  return Shape(std::move(out));
}

}  // namespace tfjs::util
