// Scalar quantization math shared by the reference oracle and the native
// SIMD kernels. Both backends call these exact functions for everything that
// is not the integer dot product itself — row quantization, zero-point
// correction, the f32 epilogue and int8 requantization — and the integer
// accumulation is exact under any ordering, so ref and native results are
// bitwise identical by construction (DESIGN.md "Quantized execution").
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "backends/common/ref_backend.h"  // applyFusedActivation
#include "core/backend.h"
#include "core/quant.h"

namespace tfjs::backends::qmath {

/// Largest K for which the worst-case u8*s8 dot product (255 * 127 per term)
/// cannot overflow the i32 accumulator. Kernels with a longer inner
/// dimension fall back to the dequantized f32 path.
inline constexpr int kMaxAccumK =
    std::numeric_limits<std::int32_t>::max() / (255 * 127);  // 66310

/// Dynamic per-row activation quantization: asymmetric uint8 codes
///   q = round(clamp(x * (1/scale), -zp, 255 - zp)) + zp
/// over a range nudged to include 0, so a 0.0 input (e.g. conv zero padding)
/// maps exactly to the zero point and contributes exactly nothing after the
/// zero-point correction. Multiply-by-inverse (not division) and
/// round-to-nearest-even, with the clamp done in float space *before* the
/// rounding: every step is a single IEEE operation with an exact SIMD
/// counterpart (mul / min / max / cvtps), so the native backend's vector
/// row quantizer reproduces these codes bit-for-bit.
struct RowQuant {
  float scale = 1.f;
  float invScale = 1.f;
  std::int32_t zp = 0;
};

inline bool allFinite(const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) return false;
  }
  return true;
}

/// Derives the row parameters from a [lo, hi] range that includes 0 (both
/// seeds are 0, so lo <= 0 <= hi by construction). Split out so a SIMD
/// min/max scan can feed the same derivation as the scalar scan — min/max
/// are exact at any association, so the reduced range is identical.
inline RowQuant chooseFromMinMax(float lo, float hi) {
  RowQuant rq;
  const float scale = (hi - lo) / 255.f;
  rq.scale = scale > 0 ? scale : 1.f;
  rq.invScale = 1.f / rq.scale;
  rq.zp = static_cast<std::int32_t>(std::lround(-lo / rq.scale));
  rq.zp = std::clamp(rq.zp, std::int32_t{0}, std::int32_t{255});
  return rq;
}

/// Chooses the row's quantization from its min/max (assumes finite input;
/// callers pre-scan with allFinite and fall back to f32 otherwise). An
/// all-zero row degenerates to scale 1 / zp 0, which encodes it exactly.
inline RowQuant chooseRowQuant(const float* row, std::size_t k) {
  float lo = 0.f, hi = 0.f;
  for (std::size_t i = 0; i < k; ++i) {
    lo = std::min(lo, row[i]);
    hi = std::max(hi, row[i]);
  }
  return chooseFromMinMax(lo, hi);
}

inline std::uint8_t quantizeActivation(float v, const RowQuant& rq) {
  // Clamping in float space keeps the rounded value inside [0, 255], so the
  // i32 cast is always in range (and matches a saturating SIMD narrowing).
  const float t = std::min(std::max(v * rq.invScale,
                                    static_cast<float>(-rq.zp)),
                           static_cast<float>(255 - rq.zp));
  return static_cast<std::uint8_t>(
      static_cast<std::int32_t>(std::nearbyintf(t)) + rq.zp);
}

inline void quantizeRow(const float* row, std::size_t k, const RowQuant& rq,
                        std::uint8_t* q) {
  for (std::size_t i = 0; i < k; ++i) q[i] = quantizeActivation(row[i], rq);
}

/// Converts weight codes held in float storage (see core/dtype.h: int8
/// elements are stored as float) to raw int8.
inline void weightsToInt8(const float* w, std::size_t n, std::int8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::int8_t>(std::lrintf(w[i]));
  }
}

/// Per-output-channel weight code sums, used for the activation zero-point
/// correction below.
inline void colSums(const std::int8_t* w, int k, int n, std::int32_t* sums) {
  std::fill(sums, sums + n, 0);
  for (int p = 0; p < k; ++p) {
    const std::int8_t* row = w + static_cast<std::size_t>(p) * n;
    for (int j = 0; j < n; ++j) sums[j] += row[j];
  }
}

/// Dequantizes one i32 accumulator:
///   real = (acc - zpA * colSum[j]) * (scaleA * scaleW[j])
/// The centered term is computed in 64-bit (zpA*colSum can reach
/// 255*127*K ~ 2^31) and converted to float once — deterministic across
/// backends and SIMD widths.
inline float dequantAcc(std::int32_t acc, const RowQuant& rq,
                        std::int32_t colSum, float wScale) {
  const std::int64_t centered =
      static_cast<std::int64_t>(acc) -
      static_cast<std::int64_t>(rq.zp) * static_cast<std::int64_t>(colSum);
  return static_cast<float>(centered) * (rq.scale * wScale);
}

/// Requantizes an epilogue result to int8 codes (returned as the float the
/// storage layer holds): round(clamp(y * (1/scale), -127 - zp, 127 - zp))
/// + zp. Same mul / clamp-in-float / round-to-nearest-even recipe as
/// quantizeActivation, for the same SIMD-exactness reason.
inline float requantToInt8(float v, const OutQuant& oq) {
  const float inv = 1.f / oq.scale;
  const float t =
      std::min(std::max(v * inv, static_cast<float>(kInt8Min - oq.zeroPoint)),
               static_cast<float>(kInt8Max - oq.zeroPoint));
  return static_cast<float>(static_cast<std::int32_t>(std::nearbyintf(t)) +
                            oq.zeroPoint);
}

/// Full scalar epilogue of a quantized GEMM output element.
inline float quantEpilogue(std::int32_t acc, const RowQuant& rq,
                           std::int32_t colSum, float wScale, const float* bias,
                           int j, FusedActivation act, const OutQuant* outQ) {
  float v = dequantAcc(acc, rq, colSum, wScale);
  if (bias != nullptr) v += bias[j];
  v = applyFusedActivation(act, v);
  return outQ != nullptr ? requantToInt8(v, *outQ) : v;
}

}  // namespace tfjs::backends::qmath
