// RefBackend: host-memory reference implementation of every kernel.
//
// Three roles:
//  * ground truth for tests (every other backend is checked against it);
//  * base class for the plain-CPU backend (which overrides hot kernels with
//    deliberately interpreter-style versions, the "plain JS" analogue) and
//    for the native backend (which overrides them with blocked/vectorized
//    versions, the "TensorFlow C binding" analogue);
//  * CPU-forwarding substrate for the WebGL-sim backend's long-tail ops,
//    mirroring how the real WebGL backend forwards un-shaderized kernels.
//
// Storage is a map from DataId to a float vector; all dtypes are stored as
// float (see core/dtype.h).
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/backend.h"

namespace tfjs::backends {

class RefBackend : public Backend {
 public:
  std::string name() const override { return "ref"; }

  // ---- storage
  DataId write(std::span<const float> values, const Shape& shape) override;
  std::vector<float> read(DataId id) override;
  std::future<std::vector<float>> readAsync(DataId id) override;
  void disposeData(DataId id) override;
  /// Kernels run synchronously on the calling thread, so there is never
  /// queued work to wait for (the Backend::flush contract holds trivially).
  void flush() override {}
  double kernelTimeMs() const override { return kernelMs_; }
  std::size_t memoryBytes() const override {
    std::lock_guard<std::mutex> lock(storageMu_);
    return bytes_;
  }

  // ---- kernels
  DataId binary(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                const Shape& outShape) override;
  DataId unary(UnaryOp op, const TensorSpec& x, float alpha,
               float beta) override;
  DataId unaryInto(UnaryOp op, const TensorSpec& x, float alpha, float beta,
                   DataId dst) override;
  DataId binaryInto(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                    const Shape& outShape, DataId dst) override;
  bool supportsFusedKernels() const override { return true; }
  bool supportsFusedRegions() const override { return true; }
  /// Single-pass fused elementwise region. Every scalar step goes through
  /// applyUnary/applyBinary (select: the same `c != 0 ? a : b` as the
  /// standalone kernel), so the fused value at each output element is
  /// bit-identical to the op-by-op chain on any backend sharing those
  /// scalar formulas — which is all of them, by construction.
  DataId fusedRegion(const RegionProgram& program,
                     std::span<const TensorSpec> inputs, const Shape& outShape,
                     DataId dst) override;
  /// Runs the *virtual* matMul (so a derived backend's own accumulation
  /// order is used) and applies the bias+activation epilogue in place —
  /// bit-identical to matMul + add + activation on the same backend.
  DataId fusedMatMul(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                     bool transposeB, const TensorSpec* bias,
                     FusedActivation act) override;
  DataId fusedConv2d(const TensorSpec& x, const TensorSpec& filter,
                     const Conv2DInfo& info, const TensorSpec* bias,
                     FusedActivation act) override;
  bool supportsQuantizedKernels() const override { return true; }
  /// Scalar int8 oracle: u8 dynamic per-row activation codes x s8 weight
  /// codes, exact i32 accumulation, shared scalar epilogue
  /// (backends/common/quant_math.h). Derived backends' SIMD kernels must
  /// match it bitwise. Falls back to the dequantized f32 fused path (via the
  /// virtual fusedMatMul/fusedConv2d) when k could overflow i32, the
  /// activations are non-finite, or the weights are not symmetric.
  DataId quantizedMatMul(const TensorSpec& a, const TensorSpec& b,
                         const QuantParams& wq, const TensorSpec* bias,
                         FusedActivation act, const OutQuant* outQ) override;
  DataId quantizedConv2d(const TensorSpec& x, const TensorSpec& filter,
                         const Conv2DInfo& info, const QuantParams& wq,
                         const TensorSpec* bias, FusedActivation act,
                         const OutQuant* outQ) override;
  DataId select(const TensorSpec& cond, const TensorSpec& a,
                const TensorSpec& b, const Shape& outShape) override;
  DataId matMul(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                bool transposeB) override;
  DataId conv2d(const TensorSpec& x, const TensorSpec& filter,
                const Conv2DInfo& info) override;
  DataId conv2dBackpropInput(const TensorSpec& dy, const TensorSpec& filter,
                             const Conv2DInfo& info) override;
  DataId conv2dBackpropFilter(const TensorSpec& x, const TensorSpec& dy,
                              const Conv2DInfo& info) override;
  DataId depthwiseConv2d(const TensorSpec& x, const TensorSpec& filter,
                         const Conv2DInfo& info) override;
  DataId depthwiseConv2dBackpropInput(const TensorSpec& dy,
                                      const TensorSpec& filter,
                                      const Conv2DInfo& info) override;
  DataId depthwiseConv2dBackpropFilter(const TensorSpec& x,
                                       const TensorSpec& dy,
                                       const Conv2DInfo& info) override;
  DataId pool2d(PoolMode mode, const TensorSpec& x,
                const Pool2DInfo& info) override;
  DataId maxPoolBackprop(const TensorSpec& dy, const TensorSpec& x,
                         const Pool2DInfo& info) override;
  DataId avgPoolBackprop(const TensorSpec& dy,
                         const Pool2DInfo& info) override;
  DataId reduce(ReduceOp op, const TensorSpec& x, std::size_t outer,
                std::size_t inner) override;
  DataId arg(ArgOp op, const TensorSpec& x, std::size_t outer,
             std::size_t inner) override;
  DataId transpose(const TensorSpec& x, std::span<const int> perm,
                   const Shape& outShape) override;
  DataId slice(const TensorSpec& x, std::span<const int> begin,
               const Shape& outShape) override;
  DataId concat(std::span<const TensorSpec> xs, int axis,
                const Shape& outShape) override;
  DataId pad(const TensorSpec& x,
             std::span<const std::pair<int, int>> paddings,
             float constantValue, const Shape& outShape) override;
  DataId gather(const TensorSpec& x, const TensorSpec& indices, int axis,
                const Shape& outShape) override;
  DataId tile(const TensorSpec& x, std::span<const int> reps,
              const Shape& outShape) override;
  DataId reverse(const TensorSpec& x, std::span<const int> axes) override;
  DataId resizeBilinear(const TensorSpec& x, int newH, int newW,
                        bool alignCorners) override;
  DataId oneHot(const TensorSpec& indices, int depth, float onValue,
                float offValue) override;
  DataId fill(std::size_t n, float value) override;
  DataId topkValues(const TensorSpec& x, std::size_t outer, std::size_t inner,
                    int k) override;
  DataId topkIndices(const TensorSpec& x, std::size_t outer,
                     std::size_t inner, int k) override;
  DataId cumsum(const TensorSpec& x, std::size_t outer, std::size_t inner,
                bool exclusive, bool reverse) override;

  /// Number of live buffers (test hook).
  std::size_t numBuffers() const {
    std::lock_guard<std::mutex> lock(storageMu_);
    return buffers_.size();
  }

 protected:
  const std::vector<float>& buf(DataId id) const;
  std::vector<float>& mutableBuf(DataId id);
  DataId store(std::vector<float> v);

  // Shared f32 fallback of the quantized kernels: dequantizes the weight
  // codes, dispatches the backend's own (virtual) fused kernel, and
  // requantizes the result in place when outQ is set. Also the reason a
  // quantized kernel's fallback stays bit-identical across backends that
  // share an f32 GEMM accumulation order.
  DataId quantizedMatMulFallback(const TensorSpec& a, const TensorSpec& b,
                                 const QuantParams& wq, const TensorSpec* bias,
                                 FusedActivation act, const OutQuant* outQ);
  DataId quantizedConv2dFallback(const TensorSpec& x, const TensorSpec& filter,
                                 const Conv2DInfo& info, const QuantParams& wq,
                                 const TensorSpec* bias, FusedActivation act,
                                 const OutQuant* outQ);
  /// True when the quantized fast path applies: symmetric weights and an
  /// inner dimension short enough for exact i32 accumulation.
  static bool quantFastPathOk(const QuantParams& wq, int k);

  // Pooled allocation (core::BufferPool). allocBuffer's contents are
  // unspecified on a pool hit — only kernels that overwrite every element
  // may use it; accumulators and fill-style kernels take the Filled/Zeroed
  // variants. disposeData() routes freed vectors back into the pool.
  static std::vector<float> allocBuffer(std::size_t n);
  static std::vector<float> allocZeroed(std::size_t n);
  static std::vector<float> allocFilled(std::size_t n, float value);

  /// Accumulates kernel wall time; derived backends reuse it. When given a
  /// name it also emits a "kernel" trace span (if tracing is active), so
  /// backend-level execution shows up nested under the op-level span.
  class KernelTimer {
   public:
    explicit KernelTimer(double& acc, const char* name = nullptr);
    ~KernelTimer();

   private:
    double& acc_;
    const char* name_;
    double traceStartUs_ = -1;
    std::chrono::steady_clock::time_point start_;
  };

  double kernelMs_ = 0;

 private:
  // Guards the storage map and its byte/id accounting: write / read /
  // disposeData are called from client threads while the scheduler thread
  // stores kernel outputs. unordered_map references are stable across
  // rehash, so buf()/mutableBuf() results stay valid outside the lock for
  // as long as the engine's refcount keeps the id alive.
  mutable std::mutex storageMu_;
  std::unordered_map<DataId, std::vector<float>> buffers_;
  DataId nextId_ = 1;
  std::size_t bytes_ = 0;
};

/// Scalar semantics of each BinaryOp / UnaryOp — shared by every backend so
/// they cannot drift apart (the WebGL "shader" bodies call these too).
float applyBinary(BinaryOp op, float a, float b);
float applyUnary(UnaryOp op, float x, float alpha, float beta);
/// Fused-epilogue activation, defined as the matching applyUnary formula so
/// fused and unfused results cannot drift apart bitwise.
float applyFusedActivation(FusedActivation act, float v);

/// True when broadcasting `s` against `out` replicates s's elements as a
/// contiguous trailing block (e.g. a [C] bias against an NHWC tensor):
/// s, with leading 1s stripped, equals the trailing dims of out. Lets
/// binary kernels replace per-element coordinate decoding with a dense
/// row loop — same scalar op per element, so values are unchanged.
bool broadcastsAsSuffix(const Shape& s, const Shape& out);

}  // namespace tfjs::backends
