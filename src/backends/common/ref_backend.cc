#include "backends/common/ref_backend.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "backends/common/quant_math.h"
#include "core/buffer_pool.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "core/util.h"

namespace tfjs::backends {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Floored modulo, matching TensorFlow's tf.mod semantics.
inline float floorMod(float a, float b) {
  const float r = std::fmod(a, b);
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}
}  // namespace

float applyBinary(BinaryOp op, float a, float b) {
  switch (op) {
    case BinaryOp::kAdd: return a + b;
    case BinaryOp::kSub: return a - b;
    case BinaryOp::kMul: return a * b;
    case BinaryOp::kDiv: return a / b;
    case BinaryOp::kFloorDiv: return std::floor(a / b);
    case BinaryOp::kMod: return floorMod(a, b);
    case BinaryOp::kPow: return std::pow(a, b);
    case BinaryOp::kMaximum: return std::max(a, b);
    case BinaryOp::kMinimum: return std::min(a, b);
    case BinaryOp::kSquaredDiff: return (a - b) * (a - b);
    case BinaryOp::kAtan2: return std::atan2(a, b);
    case BinaryOp::kEqual: return a == b ? 1.f : 0.f;
    case BinaryOp::kNotEqual: return a != b ? 1.f : 0.f;
    case BinaryOp::kGreater: return a > b ? 1.f : 0.f;
    case BinaryOp::kGreaterEqual: return a >= b ? 1.f : 0.f;
    case BinaryOp::kLess: return a < b ? 1.f : 0.f;
    case BinaryOp::kLessEqual: return a <= b ? 1.f : 0.f;
    case BinaryOp::kLogicalAnd: return (a != 0 && b != 0) ? 1.f : 0.f;
    case BinaryOp::kLogicalOr: return (a != 0 || b != 0) ? 1.f : 0.f;
    case BinaryOp::kLogicalXor: return ((a != 0) != (b != 0)) ? 1.f : 0.f;
  }
  throw InternalError("Unhandled BinaryOp");
}

float applyUnary(UnaryOp op, float x, float alpha, float beta) {
  switch (op) {
    case UnaryOp::kNeg: return -x;
    case UnaryOp::kAbs: return std::fabs(x);
    case UnaryOp::kExp: return std::exp(x);
    case UnaryOp::kExpm1: return std::expm1(x);
    case UnaryOp::kLog: return std::log(x);
    case UnaryOp::kLog1p: return std::log1p(x);
    case UnaryOp::kSqrt: return std::sqrt(x);
    case UnaryOp::kRsqrt: return 1.0f / std::sqrt(x);
    case UnaryOp::kSquare: return x * x;
    case UnaryOp::kReciprocal: return 1.0f / x;
    case UnaryOp::kFloor: return std::floor(x);
    case UnaryOp::kCeil: return std::ceil(x);
    case UnaryOp::kRound: return std::nearbyint(x);
    case UnaryOp::kSign: return x > 0 ? 1.f : (x < 0 ? -1.f : 0.f);
    case UnaryOp::kTrunc: return std::trunc(x);
    case UnaryOp::kSin: return std::sin(x);
    case UnaryOp::kCos: return std::cos(x);
    case UnaryOp::kTan: return std::tan(x);
    case UnaryOp::kAsin: return std::asin(x);
    case UnaryOp::kAcos: return std::acos(x);
    case UnaryOp::kAtan: return std::atan(x);
    case UnaryOp::kSinh: return std::sinh(x);
    case UnaryOp::kCosh: return std::cosh(x);
    case UnaryOp::kTanh: return std::tanh(x);
    case UnaryOp::kRelu: return x > 0 ? x : 0;
    case UnaryOp::kRelu6: return std::min(std::max(x, 0.f), 6.f);
    case UnaryOp::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
    case UnaryOp::kSoftplus: return std::log1p(std::exp(-std::fabs(x))) +
                                    std::max(x, 0.f);
    case UnaryOp::kElu: return x >= 0 ? x : std::expm1(x);
    case UnaryOp::kSelu: {
      constexpr float kAlpha = 1.6732632423543772f;
      constexpr float kScale = 1.0507009873554805f;
      return x >= 0 ? kScale * x : kScale * kAlpha * std::expm1(x);
    }
    case UnaryOp::kErf: return std::erf(x);
    case UnaryOp::kLogicalNot: return x == 0 ? 1.f : 0.f;
    case UnaryOp::kIsNan: return std::isnan(x) ? 1.f : 0.f;
    case UnaryOp::kIsFinite: return std::isfinite(x) ? 1.f : 0.f;
    case UnaryOp::kNotZero: return x != 0 ? 1.f : 0.f;
    case UnaryOp::kLeakyRelu: return x >= 0 ? x : alpha * x;
    case UnaryOp::kClipByValue:
      return std::min(std::max(x, alpha), beta);
    case UnaryOp::kStep: return x > 0 ? 1.f : (x < 0 ? 0.f : alpha);
    case UnaryOp::kPowScalar: return std::pow(x, alpha);
    case UnaryOp::kAddScalar: return x + alpha;
    case UnaryOp::kMulScalar: return x * alpha;
  }
  throw InternalError("Unhandled UnaryOp");
}

float applyFusedActivation(FusedActivation act, float v) {
  switch (act) {
    case FusedActivation::kNone: return v;
    case FusedActivation::kRelu: return applyUnary(UnaryOp::kRelu, v, 0, 0);
    case FusedActivation::kRelu6: return applyUnary(UnaryOp::kRelu6, v, 0, 0);
    case FusedActivation::kSigmoid:
      return applyUnary(UnaryOp::kSigmoid, v, 0, 0);
  }
  throw InternalError("Unhandled FusedActivation");
}

bool broadcastsAsSuffix(const Shape& s, const Shape& out) {
  // Right-align s with out; the trailing non-1 dims of s must match out
  // exactly, and everything to their left in s must be 1.
  int i = s.rank() - 1, j = out.rank() - 1;
  for (; i >= 0 && s[i] != 1; --i, --j) {
    if (j < 0 || s[i] != out[j]) return false;
  }
  for (; i >= 0; --i) {
    if (s[i] != 1) return false;
  }
  return true;
}

// ------------------------------------------------------------------ timer

RefBackend::KernelTimer::KernelTimer(double& acc, const char* name)
    : acc_(acc), name_(name), start_(std::chrono::steady_clock::now()) {
  if (name_ != nullptr && trace::active()) traceStartUs_ = trace::nowUs();
}

RefBackend::KernelTimer::~KernelTimer() {
  acc_ += std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start_)
              .count();
  if (traceStartUs_ >= 0) {
    trace::Event e;
    e.type = trace::Event::Type::kSpan;
    e.category = "kernel";
    e.name = name_;
    e.tsUs = traceStartUs_;
    e.durUs = trace::nowUs() - traceStartUs_;
    e.tid = trace::currentThreadId();
    trace::Recorder::get().record(std::move(e));
  }
}

// ---------------------------------------------------------------- storage

DataId RefBackend::write(std::span<const float> values, const Shape&) {
  static metrics::Counter& bytesUploaded =
      metrics::Registry::get().counter("backend.bytes_uploaded");
  bytesUploaded.inc(values.size() * sizeof(float));
  std::vector<float> v = allocBuffer(values.size());
  std::copy(values.begin(), values.end(), v.begin());
  return store(std::move(v));
}

std::vector<float> RefBackend::read(DataId id) {
  static metrics::Counter& bytesDownloaded =
      metrics::Registry::get().counter("backend.bytes_downloaded");
  const auto& v = buf(id);
  bytesDownloaded.inc(v.size() * sizeof(float));
  return v;
}

std::future<std::vector<float>> RefBackend::readAsync(DataId id) {
  std::promise<std::vector<float>> p;
  p.set_value(read(id));
  return p.get_future();
}

void RefBackend::disposeData(DataId id) {
  std::vector<float> freed;
  {
    std::lock_guard<std::mutex> lock(storageMu_);
    auto it = buffers_.find(id);
    if (it == buffers_.end()) return;
    bytes_ -= it->second.size() * sizeof(float);
    freed = std::move(it->second);
    buffers_.erase(it);
  }
  // The storage cycles back through the pool instead of the heap; bytes_
  // keeps counting live buffers only (pooled bytes are reported separately
  // by engine.memory()). Released outside the storage lock — the pool has
  // its own mutex.
  core::BufferPool::get().release(std::move(freed));
}

const std::vector<float>& RefBackend::buf(DataId id) const {
  std::lock_guard<std::mutex> lock(storageMu_);
  auto it = buffers_.find(id);
  if (it == buffers_.end()) {
    // A storage lookup miss is a backend failure, not a caller error: the
    // ops layer validated the request, the device layer cannot serve it.
    throw BackendError("ref backend: unknown DataId " + std::to_string(id));
  }
  return it->second;
}

std::vector<float>& RefBackend::mutableBuf(DataId id) {
  std::lock_guard<std::mutex> lock(storageMu_);
  auto it = buffers_.find(id);
  if (it == buffers_.end()) {
    throw BackendError("ref backend: unknown DataId " + std::to_string(id));
  }
  return it->second;
}

DataId RefBackend::store(std::vector<float> v) {
  std::lock_guard<std::mutex> lock(storageMu_);
  const DataId id = nextId_++;
  bytes_ += v.size() * sizeof(float);
  buffers_.emplace(id, std::move(v));
  return id;
}

std::vector<float> RefBackend::allocBuffer(std::size_t n) {
  return core::BufferPool::get().acquire(n);
}

std::vector<float> RefBackend::allocZeroed(std::size_t n) {
  return core::BufferPool::get().acquireFilled(n, 0.f);
}

std::vector<float> RefBackend::allocFilled(std::size_t n, float value) {
  return core::BufferPool::get().acquireFilled(n, value);
}

// ---------------------------------------------------------------- kernels

DataId RefBackend::binary(BinaryOp op, const TensorSpec& a,
                          const TensorSpec& b, const Shape& outShape) {
  KernelTimer t(kernelMs_);
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  std::vector<float> out = allocBuffer(outShape.size());
  if (a.shape == outShape && b.shape == outShape) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = applyBinary(op, av[i], bv[i]);
    }
  } else if (b.shape.size() == 1) {  // tensor (op) scalar fast path
    const float s = bv[0];
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = applyBinary(op, av[i], s);
    }
  } else if (a.shape.size() == 1) {
    const float s = av[0];
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = applyBinary(op, s, bv[i]);
    }
  } else if (a.shape == outShape && broadcastsAsSuffix(b.shape, outShape)) {
    const std::size_t span = bv.size();
    for (std::size_t base = 0; base < out.size(); base += span) {
      for (std::size_t i = 0; i < span; ++i) {
        out[base + i] = applyBinary(op, av[base + i], bv[i]);
      }
    }
  } else if (b.shape == outShape && broadcastsAsSuffix(a.shape, outShape)) {
    const std::size_t span = av.size();
    for (std::size_t base = 0; base < out.size(); base += span) {
      for (std::size_t i = 0; i < span; ++i) {
        out[base + i] = applyBinary(op, av[i], bv[base + i]);
      }
    }
  } else {
    std::vector<int> coords(static_cast<std::size_t>(outShape.rank()));
    for (std::size_t i = 0; i < out.size(); ++i) {
      util::unravelIndex(i, outShape, coords);
      const float x = av[util::broadcastIndex(coords, a.shape, outShape)];
      const float y = bv[util::broadcastIndex(coords, b.shape, outShape)];
      out[i] = applyBinary(op, x, y);
    }
  }
  return store(std::move(out));
}

DataId RefBackend::unary(UnaryOp op, const TensorSpec& x, float alpha,
                         float beta) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(xv.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = applyUnary(op, xv[i], alpha, beta);
  }
  return store(std::move(out));
}

DataId RefBackend::select(const TensorSpec& cond, const TensorSpec& a,
                          const TensorSpec& b, const Shape& outShape) {
  KernelTimer t(kernelMs_);
  const auto& cv = buf(cond.id);
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  std::vector<float> out = allocBuffer(outShape.size());
  std::vector<int> coords(static_cast<std::size_t>(outShape.rank()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    util::unravelIndex(i, outShape, coords);
    const float c = cv[util::broadcastIndex(coords, cond.shape, outShape)];
    out[i] = c != 0
                 ? av[util::broadcastIndex(coords, a.shape, outShape)]
                 : bv[util::broadcastIndex(coords, b.shape, outShape)];
  }
  return store(std::move(out));
}

DataId RefBackend::matMul(const TensorSpec& a, const TensorSpec& b,
                          bool transposeA, bool transposeB) {
  KernelTimer t(kernelMs_);
  // Inputs are rank-3: [batch, m, k] x [batch, k, n] (batch broadcasts).
  const int bA = a.shape[0], bB = b.shape[0];
  const int m = transposeA ? a.shape[2] : a.shape[1];
  const int k = transposeA ? a.shape[1] : a.shape[2];
  const int n = transposeB ? b.shape[1] : b.shape[2];
  const int batch = std::max(bA, bB);
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  std::vector<float> out =
      allocZeroed(static_cast<std::size_t>(batch) * m * n);

  for (int bi = 0; bi < batch; ++bi) {
    const float* A = av.data() +
                     static_cast<std::size_t>(bA == 1 ? 0 : bi) * m * k;
    const float* B = bv.data() +
                     static_cast<std::size_t>(bB == 1 ? 0 : bi) * k * n;
    float* C = out.data() + static_cast<std::size_t>(bi) * m * n;
    for (int i = 0; i < m; ++i) {
      for (int p = 0; p < k; ++p) {
        const float aval = transposeA ? A[p * m + i] : A[i * k + p];
        const float* Brow = transposeB ? nullptr : B + static_cast<std::size_t>(p) * n;
        if (!transposeB) {
          float* Crow = C + static_cast<std::size_t>(i) * n;
          for (int j = 0; j < n; ++j) Crow[j] += aval * Brow[j];
        } else {
          float* Crow = C + static_cast<std::size_t>(i) * n;
          for (int j = 0; j < n; ++j) Crow[j] += aval * B[j * k + p];
        }
      }
    }
  }
  return store(std::move(out));
}

DataId RefBackend::conv2d(const TensorSpec& x, const TensorSpec& filter,
                          const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  const auto& fv = buf(filter.id);
  std::vector<float> out = allocZeroed(static_cast<std::size_t>(ci.batch) *
                                       ci.outH * ci.outW * ci.outC);
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      const int inYOrigin = oy * ci.strideH - ci.padTop;
      for (int ox = 0; ox < ci.outW; ++ox) {
        const int inXOrigin = ox * ci.strideW - ci.padLeft;
        for (int fy = 0; fy < ci.filterH; ++fy) {
          const int iy = inYOrigin + fy * ci.dilationH;
          if (iy < 0 || iy >= ci.inH) continue;
          for (int fx = 0; fx < ci.filterW; ++fx) {
            const int ix = inXOrigin + fx * ci.dilationW;
            if (ix < 0 || ix >= ci.inW) continue;
            const float* xRow =
                xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC;
            const float* fRow =
                fv.data() + (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                                ci.inC * ci.outC;
            float* oRow =
                out.data() + ((static_cast<std::size_t>(b) * ci.outH + oy) *
                                  ci.outW +
                              ox) *
                                 ci.outC;
            for (int ic = 0; ic < ci.inC; ++ic) {
              const float xval = xRow[ic];
              const float* fCol = fRow + static_cast<std::size_t>(ic) * ci.outC;
              for (int oc = 0; oc < ci.outC; ++oc) {
                oRow[oc] += xval * fCol[oc];
              }
            }
          }
        }
      }
    }
  }
  return store(std::move(out));
}

DataId RefBackend::conv2dBackpropInput(const TensorSpec& dy,
                                       const TensorSpec& filter,
                                       const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_);
  const auto& dyv = buf(dy.id);
  const auto& fv = buf(filter.id);
  std::vector<float> dx = allocZeroed(static_cast<std::size_t>(ci.batch) *
                                      ci.inH * ci.inW * ci.inC);
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      const int inYOrigin = oy * ci.strideH - ci.padTop;
      for (int ox = 0; ox < ci.outW; ++ox) {
        const int inXOrigin = ox * ci.strideW - ci.padLeft;
        const float* dyRow =
            dyv.data() + ((static_cast<std::size_t>(b) * ci.outH + oy) *
                              ci.outW +
                          ox) *
                             ci.outC;
        for (int fy = 0; fy < ci.filterH; ++fy) {
          const int iy = inYOrigin + fy * ci.dilationH;
          if (iy < 0 || iy >= ci.inH) continue;
          for (int fx = 0; fx < ci.filterW; ++fx) {
            const int ix = inXOrigin + fx * ci.dilationW;
            if (ix < 0 || ix >= ci.inW) continue;
            float* dxRow =
                dx.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC;
            const float* fRow =
                fv.data() + (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                                ci.inC * ci.outC;
            for (int ic = 0; ic < ci.inC; ++ic) {
              const float* fCol = fRow + static_cast<std::size_t>(ic) * ci.outC;
              float acc = 0;
              for (int oc = 0; oc < ci.outC; ++oc) {
                acc += dyRow[oc] * fCol[oc];
              }
              dxRow[ic] += acc;
            }
          }
        }
      }
    }
  }
  return store(std::move(dx));
}

DataId RefBackend::conv2dBackpropFilter(const TensorSpec& x,
                                        const TensorSpec& dy,
                                        const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  const auto& dyv = buf(dy.id);
  std::vector<float> df = allocZeroed(static_cast<std::size_t>(ci.filterH) *
                                      ci.filterW * ci.inC * ci.outC);
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      const int inYOrigin = oy * ci.strideH - ci.padTop;
      for (int ox = 0; ox < ci.outW; ++ox) {
        const int inXOrigin = ox * ci.strideW - ci.padLeft;
        const float* dyRow =
            dyv.data() + ((static_cast<std::size_t>(b) * ci.outH + oy) *
                              ci.outW +
                          ox) *
                             ci.outC;
        for (int fy = 0; fy < ci.filterH; ++fy) {
          const int iy = inYOrigin + fy * ci.dilationH;
          if (iy < 0 || iy >= ci.inH) continue;
          for (int fx = 0; fx < ci.filterW; ++fx) {
            const int ix = inXOrigin + fx * ci.dilationW;
            if (ix < 0 || ix >= ci.inW) continue;
            const float* xRow =
                xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC;
            float* fRow =
                df.data() + (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                                ci.inC * ci.outC;
            for (int ic = 0; ic < ci.inC; ++ic) {
              const float xval = xRow[ic];
              float* fCol = fRow + static_cast<std::size_t>(ic) * ci.outC;
              for (int oc = 0; oc < ci.outC; ++oc) {
                fCol[oc] += xval * dyRow[oc];
              }
            }
          }
        }
      }
    }
  }
  return store(std::move(df));
}

DataId RefBackend::depthwiseConv2d(const TensorSpec& x,
                                   const TensorSpec& filter,
                                   const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  const auto& fv = buf(filter.id);
  const int mult = ci.channelMult;
  std::vector<float> out = allocZeroed(static_cast<std::size_t>(ci.batch) *
                                       ci.outH * ci.outW * ci.outC);
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      const int inYOrigin = oy * ci.strideH - ci.padTop;
      for (int ox = 0; ox < ci.outW; ++ox) {
        const int inXOrigin = ox * ci.strideW - ci.padLeft;
        float* oRow =
            out.data() + ((static_cast<std::size_t>(b) * ci.outH + oy) *
                              ci.outW +
                          ox) *
                             ci.outC;
        for (int fy = 0; fy < ci.filterH; ++fy) {
          const int iy = inYOrigin + fy * ci.dilationH;
          if (iy < 0 || iy >= ci.inH) continue;
          for (int fx = 0; fx < ci.filterW; ++fx) {
            const int ix = inXOrigin + fx * ci.dilationW;
            if (ix < 0 || ix >= ci.inW) continue;
            const float* xRow =
                xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC;
            const float* fRow =
                fv.data() + (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                                ci.inC * mult;
            for (int ic = 0; ic < ci.inC; ++ic) {
              for (int q = 0; q < mult; ++q) {
                oRow[ic * mult + q] += xRow[ic] * fRow[ic * mult + q];
              }
            }
          }
        }
      }
    }
  }
  return store(std::move(out));
}

DataId RefBackend::depthwiseConv2dBackpropInput(const TensorSpec& dy,
                                                const TensorSpec& filter,
                                                const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_);
  const auto& dyv = buf(dy.id);
  const auto& fv = buf(filter.id);
  const int mult = ci.channelMult;
  std::vector<float> dx = allocZeroed(static_cast<std::size_t>(ci.batch) *
                                      ci.inH * ci.inW * ci.inC);
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      const int inYOrigin = oy * ci.strideH - ci.padTop;
      for (int ox = 0; ox < ci.outW; ++ox) {
        const int inXOrigin = ox * ci.strideW - ci.padLeft;
        const float* dyRow =
            dyv.data() + ((static_cast<std::size_t>(b) * ci.outH + oy) *
                              ci.outW +
                          ox) *
                             ci.outC;
        for (int fy = 0; fy < ci.filterH; ++fy) {
          const int iy = inYOrigin + fy * ci.dilationH;
          if (iy < 0 || iy >= ci.inH) continue;
          for (int fx = 0; fx < ci.filterW; ++fx) {
            const int ix = inXOrigin + fx * ci.dilationW;
            if (ix < 0 || ix >= ci.inW) continue;
            float* dxRow =
                dx.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC;
            const float* fRow =
                fv.data() + (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                                ci.inC * mult;
            for (int ic = 0; ic < ci.inC; ++ic) {
              float acc = 0;
              for (int q = 0; q < mult; ++q) {
                acc += dyRow[ic * mult + q] * fRow[ic * mult + q];
              }
              dxRow[ic] += acc;
            }
          }
        }
      }
    }
  }
  return store(std::move(dx));
}

DataId RefBackend::depthwiseConv2dBackpropFilter(const TensorSpec& x,
                                                 const TensorSpec& dy,
                                                 const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  const auto& dyv = buf(dy.id);
  const int mult = ci.channelMult;
  std::vector<float> df = allocZeroed(static_cast<std::size_t>(ci.filterH) *
                                      ci.filterW * ci.inC * mult);
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      const int inYOrigin = oy * ci.strideH - ci.padTop;
      for (int ox = 0; ox < ci.outW; ++ox) {
        const int inXOrigin = ox * ci.strideW - ci.padLeft;
        const float* dyRow =
            dyv.data() + ((static_cast<std::size_t>(b) * ci.outH + oy) *
                              ci.outW +
                          ox) *
                             ci.outC;
        for (int fy = 0; fy < ci.filterH; ++fy) {
          const int iy = inYOrigin + fy * ci.dilationH;
          if (iy < 0 || iy >= ci.inH) continue;
          for (int fx = 0; fx < ci.filterW; ++fx) {
            const int ix = inXOrigin + fx * ci.dilationW;
            if (ix < 0 || ix >= ci.inW) continue;
            const float* xRow =
                xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC;
            float* fRow =
                df.data() + (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                                ci.inC * mult;
            for (int ic = 0; ic < ci.inC; ++ic) {
              for (int q = 0; q < mult; ++q) {
                fRow[ic * mult + q] += xRow[ic] * dyRow[ic * mult + q];
              }
            }
          }
        }
      }
    }
  }
  return store(std::move(df));
}

DataId RefBackend::pool2d(PoolMode mode, const TensorSpec& x,
                          const Pool2DInfo& pi) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(static_cast<std::size_t>(pi.batch) *
                                       pi.outH * pi.outW * pi.channels);
  for (int b = 0; b < pi.batch; ++b) {
    for (int oy = 0; oy < pi.outH; ++oy) {
      for (int ox = 0; ox < pi.outW; ++ox) {
        for (int c = 0; c < pi.channels; ++c) {
          float acc = mode == PoolMode::kMax ? -kInf : 0.f;
          int count = 0;
          for (int fy = 0; fy < pi.filterH; ++fy) {
            const int iy = oy * pi.strideH - pi.padTop + fy;
            if (iy < 0 || iy >= pi.inH) continue;
            for (int fx = 0; fx < pi.filterW; ++fx) {
              const int ix = ox * pi.strideW - pi.padLeft + fx;
              if (ix < 0 || ix >= pi.inW) continue;
              const float v =
                  xv[((static_cast<std::size_t>(b) * pi.inH + iy) * pi.inW +
                      ix) *
                         pi.channels +
                     c];
              if (mode == PoolMode::kMax) {
                acc = std::max(acc, v);
              } else {
                acc += v;
              }
              ++count;
            }
          }
          out[((static_cast<std::size_t>(b) * pi.outH + oy) * pi.outW + ox) *
                  pi.channels +
              c] = mode == PoolMode::kMax ? acc : acc / std::max(count, 1);
        }
      }
    }
  }
  return store(std::move(out));
}

DataId RefBackend::maxPoolBackprop(const TensorSpec& dy, const TensorSpec& x,
                                   const Pool2DInfo& pi) {
  KernelTimer t(kernelMs_);
  const auto& dyv = buf(dy.id);
  const auto& xv = buf(x.id);
  std::vector<float> dx = allocZeroed(static_cast<std::size_t>(pi.batch) *
                                      pi.inH * pi.inW * pi.channels);
  for (int b = 0; b < pi.batch; ++b) {
    for (int oy = 0; oy < pi.outH; ++oy) {
      for (int ox = 0; ox < pi.outW; ++ox) {
        for (int c = 0; c < pi.channels; ++c) {
          // Re-find the argmax of the window; route the gradient there.
          float best = -kInf;
          int bestIy = -1, bestIx = -1;
          for (int fy = 0; fy < pi.filterH; ++fy) {
            const int iy = oy * pi.strideH - pi.padTop + fy;
            if (iy < 0 || iy >= pi.inH) continue;
            for (int fx = 0; fx < pi.filterW; ++fx) {
              const int ix = ox * pi.strideW - pi.padLeft + fx;
              if (ix < 0 || ix >= pi.inW) continue;
              const float v =
                  xv[((static_cast<std::size_t>(b) * pi.inH + iy) * pi.inW +
                      ix) *
                         pi.channels +
                     c];
              if (v > best) {
                best = v;
                bestIy = iy;
                bestIx = ix;
              }
            }
          }
          if (bestIy >= 0) {
            dx[((static_cast<std::size_t>(b) * pi.inH + bestIy) * pi.inW +
                bestIx) *
                   pi.channels +
               c] +=
                dyv[((static_cast<std::size_t>(b) * pi.outH + oy) * pi.outW +
                     ox) *
                        pi.channels +
                    c];
          }
        }
      }
    }
  }
  return store(std::move(dx));
}

DataId RefBackend::avgPoolBackprop(const TensorSpec& dy,
                                   const Pool2DInfo& pi) {
  KernelTimer t(kernelMs_);
  const auto& dyv = buf(dy.id);
  std::vector<float> dx = allocZeroed(static_cast<std::size_t>(pi.batch) *
                                      pi.inH * pi.inW * pi.channels);
  for (int b = 0; b < pi.batch; ++b) {
    for (int oy = 0; oy < pi.outH; ++oy) {
      for (int ox = 0; ox < pi.outW; ++ox) {
        // Count of in-bounds cells in this window (padding excluded), which
        // matches the forward average's denominator.
        int count = 0;
        for (int fy = 0; fy < pi.filterH; ++fy) {
          const int iy = oy * pi.strideH - pi.padTop + fy;
          if (iy < 0 || iy >= pi.inH) continue;
          for (int fx = 0; fx < pi.filterW; ++fx) {
            const int ix = ox * pi.strideW - pi.padLeft + fx;
            if (ix >= 0 && ix < pi.inW) ++count;
          }
        }
        if (count == 0) continue;
        for (int c = 0; c < pi.channels; ++c) {
          const float g =
              dyv[((static_cast<std::size_t>(b) * pi.outH + oy) * pi.outW +
                   ox) *
                      pi.channels +
                  c] /
              static_cast<float>(count);
          for (int fy = 0; fy < pi.filterH; ++fy) {
            const int iy = oy * pi.strideH - pi.padTop + fy;
            if (iy < 0 || iy >= pi.inH) continue;
            for (int fx = 0; fx < pi.filterW; ++fx) {
              const int ix = ox * pi.strideW - pi.padLeft + fx;
              if (ix < 0 || ix >= pi.inW) continue;
              dx[((static_cast<std::size_t>(b) * pi.inH + iy) * pi.inW + ix) *
                     pi.channels +
                 c] += g;
            }
          }
        }
      }
    }
  }
  return store(std::move(dx));
}

DataId RefBackend::reduce(ReduceOp op, const TensorSpec& x, std::size_t outer,
                          std::size_t inner) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  TFJS_CHECK(xv.size() == outer * inner);
  std::vector<float> out = allocBuffer(outer);
  for (std::size_t o = 0; o < outer; ++o) {
    const float* row = xv.data() + o * inner;
    float acc;
    switch (op) {
      case ReduceOp::kSum:
      case ReduceOp::kMean: {
        acc = 0;
        for (std::size_t i = 0; i < inner; ++i) acc += row[i];
        if (op == ReduceOp::kMean) acc /= static_cast<float>(inner);
        break;
      }
      case ReduceOp::kProd: {
        acc = 1;
        for (std::size_t i = 0; i < inner; ++i) acc *= row[i];
        break;
      }
      case ReduceOp::kMax: {
        acc = -kInf;
        for (std::size_t i = 0; i < inner; ++i) acc = std::max(acc, row[i]);
        break;
      }
      case ReduceOp::kMin: {
        acc = kInf;
        for (std::size_t i = 0; i < inner; ++i) acc = std::min(acc, row[i]);
        break;
      }
      case ReduceOp::kAny: {
        acc = 0;
        for (std::size_t i = 0; i < inner; ++i) {
          if (row[i] != 0) {
            acc = 1;
            break;
          }
        }
        break;
      }
      case ReduceOp::kAll: {
        acc = 1;
        for (std::size_t i = 0; i < inner; ++i) {
          if (row[i] == 0) {
            acc = 0;
            break;
          }
        }
        break;
      }
      default:
        throw InternalError("Unhandled ReduceOp");
    }
    out[o] = acc;
  }
  return store(std::move(out));
}

DataId RefBackend::arg(ArgOp op, const TensorSpec& x, std::size_t outer,
                       std::size_t inner) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(outer);
  for (std::size_t o = 0; o < outer; ++o) {
    const float* row = xv.data() + o * inner;
    std::size_t best = 0;
    for (std::size_t i = 1; i < inner; ++i) {
      const bool better =
          op == ArgOp::kArgMax ? row[i] > row[best] : row[i] < row[best];
      if (better) best = i;
    }
    out[o] = static_cast<float>(best);
  }
  return store(std::move(out));
}

DataId RefBackend::transpose(const TensorSpec& x, std::span<const int> perm,
                             const Shape& outShape) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(outShape.size());
  const int rank = outShape.rank();
  std::vector<int> outCoords(static_cast<std::size_t>(rank));
  std::vector<int> inCoords(static_cast<std::size_t>(rank));
  for (std::size_t i = 0; i < out.size(); ++i) {
    util::unravelIndex(i, outShape, outCoords);
    for (int d = 0; d < rank; ++d) {
      inCoords[static_cast<std::size_t>(perm[static_cast<std::size_t>(d)])] =
          outCoords[static_cast<std::size_t>(d)];
    }
    out[i] = xv[util::ravelIndex(inCoords, x.shape)];
  }
  return store(std::move(out));
}

DataId RefBackend::slice(const TensorSpec& x, std::span<const int> begin,
                         const Shape& outShape) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(outShape.size());
  const int rank = outShape.rank();
  std::vector<int> coords(static_cast<std::size_t>(rank));
  for (std::size_t i = 0; i < out.size(); ++i) {
    util::unravelIndex(i, outShape, coords);
    std::vector<int> src(coords.begin(), coords.end());
    for (int d = 0; d < rank; ++d) {
      src[static_cast<std::size_t>(d)] += begin[static_cast<std::size_t>(d)];
    }
    out[i] = xv[util::ravelIndex(src, x.shape)];
  }
  return store(std::move(out));
}

DataId RefBackend::concat(std::span<const TensorSpec> xs, int axis,
                          const Shape& outShape) {
  KernelTimer t(kernelMs_);
  // View each input as [outer, innerI]; outputs interleave the inner blocks.
  std::size_t outer = 1;
  for (int d = 0; d < axis; ++d) outer *= static_cast<std::size_t>(outShape[d]);
  std::vector<float> out = allocBuffer(outShape.size());
  std::vector<std::size_t> inners(xs.size());
  std::size_t innerTotal = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::size_t inner = 1;
    for (int d = axis; d < xs[i].shape.rank(); ++d) {
      inner *= static_cast<std::size_t>(xs[i].shape[d]);
    }
    inners[i] = inner;
    innerTotal += inner;
  }
  for (std::size_t o = 0; o < outer; ++o) {
    std::size_t offset = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const auto& xv = buf(xs[i].id);
      std::copy_n(xv.data() + o * inners[i], inners[i],
                  out.data() + o * innerTotal + offset);
      offset += inners[i];
    }
  }
  return store(std::move(out));
}

DataId RefBackend::pad(const TensorSpec& x,
                       std::span<const std::pair<int, int>> paddings,
                       float constantValue, const Shape& outShape) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocFilled(outShape.size(), constantValue);
  const int rank = outShape.rank();
  std::vector<int> coords(static_cast<std::size_t>(rank));
  for (std::size_t i = 0; i < xv.size(); ++i) {
    util::unravelIndex(i, x.shape, coords);
    for (int d = 0; d < rank; ++d) {
      coords[static_cast<std::size_t>(d)] +=
          paddings[static_cast<std::size_t>(d)].first;
    }
    out[util::ravelIndex(coords, outShape)] = xv[i];
  }
  return store(std::move(out));
}

DataId RefBackend::gather(const TensorSpec& x, const TensorSpec& indices,
                          int axis, const Shape& outShape) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  const auto& iv = buf(indices.id);
  // x viewed as [outer, axisDim, inner]; indices flat.
  std::size_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= static_cast<std::size_t>(x.shape[d]);
  for (int d = axis + 1; d < x.shape.rank(); ++d) {
    inner *= static_cast<std::size_t>(x.shape[d]);
  }
  const std::size_t axisDim = static_cast<std::size_t>(x.shape[axis]);
  std::vector<float> out = allocBuffer(outShape.size());
  for (std::size_t o = 0; o < outer; ++o) {
    for (std::size_t j = 0; j < iv.size(); ++j) {
      const auto idx = static_cast<std::size_t>(iv[j]);
      TFJS_ARG_CHECK(idx < axisDim, "gather index " << iv[j]
                                        << " out of range [0, " << axisDim
                                        << ")");
      std::copy_n(xv.data() + (o * axisDim + idx) * inner, inner,
                  out.data() + (o * iv.size() + j) * inner);
    }
  }
  return store(std::move(out));
}

DataId RefBackend::tile(const TensorSpec& x, std::span<const int> reps,
                        const Shape& outShape) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(outShape.size());
  const int rank = outShape.rank();
  std::vector<int> coords(static_cast<std::size_t>(rank));
  std::vector<int> src(static_cast<std::size_t>(rank));
  for (std::size_t i = 0; i < out.size(); ++i) {
    util::unravelIndex(i, outShape, coords);
    for (int d = 0; d < rank; ++d) {
      src[static_cast<std::size_t>(d)] =
          coords[static_cast<std::size_t>(d)] % x.shape[d];
    }
    out[i] = xv[util::ravelIndex(src, x.shape)];
  }
  (void)reps;
  return store(std::move(out));
}

DataId RefBackend::reverse(const TensorSpec& x, std::span<const int> axes) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(xv.size());
  const int rank = x.shape.rank();
  std::vector<int> coords(static_cast<std::size_t>(rank));
  std::vector<bool> flip(static_cast<std::size_t>(rank), false);
  for (int a : axes) flip[static_cast<std::size_t>(a)] = true;
  for (std::size_t i = 0; i < out.size(); ++i) {
    util::unravelIndex(i, x.shape, coords);
    for (int d = 0; d < rank; ++d) {
      if (flip[static_cast<std::size_t>(d)]) {
        coords[static_cast<std::size_t>(d)] =
            x.shape[d] - 1 - coords[static_cast<std::size_t>(d)];
      }
    }
    out[util::ravelIndex(coords, x.shape)] = xv[i];
  }
  return store(std::move(out));
}

DataId RefBackend::resizeBilinear(const TensorSpec& x, int newH, int newW,
                                  bool alignCorners) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  const int batch = x.shape[0], inH = x.shape[1], inW = x.shape[2],
            c = x.shape[3];
  std::vector<float> out =
      allocBuffer(static_cast<std::size_t>(batch) * newH * newW * c);
  const float hScale =
      alignCorners && newH > 1
          ? static_cast<float>(inH - 1) / static_cast<float>(newH - 1)
          : static_cast<float>(inH) / static_cast<float>(newH);
  const float wScale =
      alignCorners && newW > 1
          ? static_cast<float>(inW - 1) / static_cast<float>(newW - 1)
          : static_cast<float>(inW) / static_cast<float>(newW);
  for (int b = 0; b < batch; ++b) {
    for (int y = 0; y < newH; ++y) {
      const float srcY = alignCorners ? y * hScale : (y + 0.5f) * hScale - 0.5f;
      const float cy = std::clamp(srcY, 0.f, static_cast<float>(inH - 1));
      const int y0 = static_cast<int>(std::floor(cy));
      const int y1 = std::min(y0 + 1, inH - 1);
      const float fy = cy - static_cast<float>(y0);
      for (int xo = 0; xo < newW; ++xo) {
        const float srcX =
            alignCorners ? xo * wScale : (xo + 0.5f) * wScale - 0.5f;
        const float cx = std::clamp(srcX, 0.f, static_cast<float>(inW - 1));
        const int x0 = static_cast<int>(std::floor(cx));
        const int x1 = std::min(x0 + 1, inW - 1);
        const float fx = cx - static_cast<float>(x0);
        for (int ch = 0; ch < c; ++ch) {
          auto at = [&](int yy, int xx) {
            return xv[((static_cast<std::size_t>(b) * inH + yy) * inW + xx) *
                          c +
                      ch];
          };
          const float top = at(y0, x0) * (1 - fx) + at(y0, x1) * fx;
          const float bot = at(y1, x0) * (1 - fx) + at(y1, x1) * fx;
          out[((static_cast<std::size_t>(b) * newH + y) * newW + xo) * c +
              ch] = top * (1 - fy) + bot * fy;
        }
      }
    }
  }
  return store(std::move(out));
}

DataId RefBackend::oneHot(const TensorSpec& indices, int depth, float onValue,
                          float offValue) {
  KernelTimer t(kernelMs_);
  const auto& iv = buf(indices.id);
  std::vector<float> out =
      allocFilled(iv.size() * static_cast<std::size_t>(depth), offValue);
  for (std::size_t i = 0; i < iv.size(); ++i) {
    const int idx = static_cast<int>(iv[i]);
    if (idx >= 0 && idx < depth) {
      out[i * static_cast<std::size_t>(depth) +
          static_cast<std::size_t>(idx)] = onValue;
    }
  }
  return store(std::move(out));
}

DataId RefBackend::fill(std::size_t n, float value) {
  KernelTimer t(kernelMs_);
  return store(allocFilled(n, value));
}

namespace {
/// Indices of the k largest elements of row, sorted by descending value
/// (ties broken by lower index, matching TensorFlow).
std::vector<std::size_t> topkOrder(const float* row, std::size_t inner,
                                   int k) {
  std::vector<std::size_t> idx(inner);
  for (std::size_t i = 0; i < inner; ++i) idx[i] = i;
  const auto kk = static_cast<std::size_t>(k);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(kk),
                    idx.end(), [row](std::size_t a, std::size_t b) {
                      if (row[a] != row[b]) return row[a] > row[b];
                      return a < b;
                    });
  idx.resize(kk);
  return idx;
}
}  // namespace

DataId RefBackend::topkValues(const TensorSpec& x, std::size_t outer,
                              std::size_t inner, int k) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(outer * static_cast<std::size_t>(k));
  for (std::size_t o = 0; o < outer; ++o) {
    const float* row = xv.data() + o * inner;
    const auto order = topkOrder(row, inner, k);
    for (int i = 0; i < k; ++i) {
      out[o * static_cast<std::size_t>(k) + static_cast<std::size_t>(i)] =
          row[order[static_cast<std::size_t>(i)]];
    }
  }
  return store(std::move(out));
}

DataId RefBackend::topkIndices(const TensorSpec& x, std::size_t outer,
                               std::size_t inner, int k) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(outer * static_cast<std::size_t>(k));
  for (std::size_t o = 0; o < outer; ++o) {
    const auto order = topkOrder(xv.data() + o * inner, inner, k);
    for (int i = 0; i < k; ++i) {
      out[o * static_cast<std::size_t>(k) + static_cast<std::size_t>(i)] =
          static_cast<float>(order[static_cast<std::size_t>(i)]);
    }
  }
  return store(std::move(out));
}

DataId RefBackend::unaryInto(UnaryOp op, const TensorSpec& x, float alpha,
                             float beta, DataId dst) {
  if (dst != x.id) return unary(op, x, alpha, beta);
  KernelTimer t(kernelMs_);
  auto& v = mutableBuf(dst);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = applyUnary(op, v[i], alpha, beta);
  }
  return dst;
}

DataId RefBackend::binaryInto(BinaryOp op, const TensorSpec& a,
                              const TensorSpec& b, const Shape& outShape,
                              DataId dst) {
  // The in-place contract requires dst to alias the full-output operand;
  // anything else falls back to the allocating kernel.
  if (dst != a.id || !(a.shape == outShape)) {
    return binary(op, a, b, outShape);
  }
  KernelTimer t(kernelMs_);
  auto& av = mutableBuf(dst);
  const auto& bv = buf(b.id);
  if (b.shape == outShape) {
    for (std::size_t i = 0; i < av.size(); ++i) {
      av[i] = applyBinary(op, av[i], bv[i]);
    }
  } else if (b.shape.size() == 1) {
    const float s = bv[0];
    for (std::size_t i = 0; i < av.size(); ++i) {
      av[i] = applyBinary(op, av[i], s);
    }
  } else if (broadcastsAsSuffix(b.shape, outShape)) {
    const std::size_t span = bv.size();
    for (std::size_t base = 0; base < av.size(); base += span) {
      for (std::size_t i = 0; i < span; ++i) {
        av[base + i] = applyBinary(op, av[base + i], bv[i]);
      }
    }
  } else {
    std::vector<int> coords(static_cast<std::size_t>(outShape.rank()));
    for (std::size_t i = 0; i < av.size(); ++i) {
      util::unravelIndex(i, outShape, coords);
      av[i] = applyBinary(
          op, av[i], bv[util::broadcastIndex(coords, b.shape, outShape)]);
    }
  }
  return dst;
}

namespace {

/// How a region input's element maps to the output's flat index. Mirrors
/// the broadcast paths of RefBackend::binary so fused loads read exactly
/// the element the standalone kernel would have.
enum class RegionAccess { kDense, kScalar, kSuffix, kGeneric };

RegionAccess classifyRegionInput(const Shape& s, const Shape& out) {
  if (s == out) return RegionAccess::kDense;
  if (s.size() == 1) return RegionAccess::kScalar;
  if (broadcastsAsSuffix(s, out)) return RegionAccess::kSuffix;
  return RegionAccess::kGeneric;
}

}  // namespace

DataId RefBackend::fusedRegion(const RegionProgram& program,
                               std::span<const TensorSpec> inputs,
                               const Shape& outShape, DataId dst) {
  if (program.instrs.empty() ||
      inputs.size() != static_cast<std::size_t>(program.numInputs)) {
    throw BackendError("fusedRegion: malformed program");
  }
  KernelTimer t(kernelMs_);
  const std::size_t n = outShape.size();

  struct In {
    const float* p;
    std::size_t span;
    RegionAccess mode;
    const Shape* shape;
  };
  std::vector<In> ins(inputs.size());
  bool anyGeneric = false;
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    const auto& v = buf(inputs[j].id);
    ins[j] = {v.data(), v.size(), classifyRegionInput(inputs[j].shape, outShape),
              &inputs[j].shape};
    anyGeneric |= ins[j].mode == RegionAccess::kGeneric;
  }

  // In-place only when dst aliases exactly one input and that input is
  // dense: a second spec sharing the id (an alias view) or a broadcast
  // operand would re-read indices the loop already overwrote.
  bool inPlace = false;
  if (dst != 0) {
    int matches = 0;
    std::size_t di = 0;
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      if (inputs[j].id == dst) {
        ++matches;
        di = j;
      }
    }
    inPlace = matches == 1 && ins[di].mode == RegionAccess::kDense;
  }

  std::vector<float> fresh;
  float* o;
  if (inPlace) {
    o = mutableBuf(dst).data();
  } else {
    fresh = allocBuffer(n);
    o = fresh.data();
  }

  std::vector<int> coords(static_cast<std::size_t>(outShape.rank()));
  std::vector<float> inVals(inputs.size());
  std::vector<float> vals(program.instrs.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (anyGeneric) util::unravelIndex(i, outShape, coords);
    for (std::size_t j = 0; j < ins.size(); ++j) {
      const In& in = ins[j];
      switch (in.mode) {
        case RegionAccess::kDense: inVals[j] = in.p[i]; break;
        case RegionAccess::kScalar: inVals[j] = in.p[0]; break;
        case RegionAccess::kSuffix: inVals[j] = in.p[i % in.span]; break;
        case RegionAccess::kGeneric:
          inVals[j] = in.p[util::broadcastIndex(coords, *in.shape, outShape)];
          break;
      }
    }
    const auto arg = [&](int r) { return r < 0 ? inVals[-1 - r] : vals[r]; };
    for (std::size_t k = 0; k < program.instrs.size(); ++k) {
      const RegionInstr& si = program.instrs[k];
      switch (si.kind) {
        case RegionInstr::Kind::kUnary:
          vals[k] = applyUnary(static_cast<UnaryOp>(si.op), arg(si.a),
                               si.alpha, si.beta);
          break;
        case RegionInstr::Kind::kBinary:
          vals[k] =
              applyBinary(static_cast<BinaryOp>(si.op), arg(si.a), arg(si.b));
          break;
        case RegionInstr::Kind::kSelect:
          vals[k] = arg(si.a) != 0 ? arg(si.b) : arg(si.c);
          break;
      }
    }
    o[i] = vals.back();
  }
  return inPlace ? dst : store(std::move(fresh));
}

DataId RefBackend::fusedMatMul(const TensorSpec& a, const TensorSpec& b,
                               bool transposeA, bool transposeB,
                               const TensorSpec* bias, FusedActivation act) {
  // Virtual dispatch: a derived backend's own GEMM produces the product, so
  // the fused result differs from that backend's unfused chain by nothing —
  // the epilogue below applies the very same scalar formulas the unfused
  // add/activation kernels would.
  const DataId c = matMul(a, b, transposeA, transposeB);
  const int n = transposeB ? b.shape[1] : b.shape[2];
  KernelTimer t(kernelMs_);
  auto& out = mutableBuf(c);
  const float* bv = bias != nullptr ? buf(bias->id).data() : nullptr;
  for (std::size_t i = 0; i < out.size(); ++i) {
    float v = out[i];
    if (bv != nullptr) v += bv[i % static_cast<std::size_t>(n)];
    out[i] = applyFusedActivation(act, v);
  }
  return c;
}

DataId RefBackend::fusedConv2d(const TensorSpec& x, const TensorSpec& filter,
                               const Conv2DInfo& ci, const TensorSpec* bias,
                               FusedActivation act) {
  const DataId c = conv2d(x, filter, ci);
  KernelTimer t(kernelMs_);
  auto& out = mutableBuf(c);
  const float* bv = bias != nullptr ? buf(bias->id).data() : nullptr;
  const auto outC = static_cast<std::size_t>(ci.outC);
  for (std::size_t i = 0; i < out.size(); ++i) {
    float v = out[i];
    if (bv != nullptr) v += bv[i % outC];
    out[i] = applyFusedActivation(act, v);
  }
  return c;
}

// ------------------------------------------------- quantized kernels (int8)

bool RefBackend::quantFastPathOk(const QuantParams& wq, int k) {
  return wq.symmetric() && k <= qmath::kMaxAccumK;
}

DataId RefBackend::quantizedMatMulFallback(const TensorSpec& a,
                                           const TensorSpec& b,
                                           const QuantParams& wq,
                                           const TensorSpec* bias,
                                           FusedActivation act,
                                           const OutQuant* outQ) {
  const int k = b.shape[1], n = b.shape[2];
  std::vector<float> wf;
  {
    KernelTimer t(kernelMs_);
    const auto& bv = buf(b.id);
    wf = allocBuffer(bv.size());
    for (std::size_t i = 0; i < bv.size(); ++i) {
      const std::size_t j = i % static_cast<std::size_t>(n);
      wf[i] = (bv[i] - static_cast<float>(wq.zeroPointFor(j))) *
              wq.scaleFor(j);
    }
  }
  const DataId tmp = store(std::move(wf));
  const TensorSpec bf{tmp, Shape{1, k, n}, DType::f32};
  const DataId y = fusedMatMul(a, bf, false, false, bias, act);
  disposeData(tmp);
  if (outQ != nullptr) {
    KernelTimer t(kernelMs_);
    auto& yv = mutableBuf(y);
    for (float& v : yv) v = qmath::requantToInt8(v, *outQ);
  }
  return y;
}

DataId RefBackend::quantizedConv2dFallback(const TensorSpec& x,
                                           const TensorSpec& filter,
                                           const Conv2DInfo& ci,
                                           const QuantParams& wq,
                                           const TensorSpec* bias,
                                           FusedActivation act,
                                           const OutQuant* outQ) {
  const int n = ci.outC;
  std::vector<float> wf;
  {
    KernelTimer t(kernelMs_);
    const auto& fv = buf(filter.id);
    wf = allocBuffer(fv.size());
    for (std::size_t i = 0; i < fv.size(); ++i) {
      const std::size_t j = i % static_cast<std::size_t>(n);
      wf[i] = (fv[i] - static_cast<float>(wq.zeroPointFor(j))) *
              wq.scaleFor(j);
    }
  }
  const DataId tmp = store(std::move(wf));
  const TensorSpec ff{tmp, filter.shape, DType::f32};
  const DataId y = fusedConv2d(x, ff, ci, bias, act);
  disposeData(tmp);
  if (outQ != nullptr) {
    KernelTimer t(kernelMs_);
    auto& yv = mutableBuf(y);
    for (float& v : yv) v = qmath::requantToInt8(v, *outQ);
  }
  return y;
}

DataId RefBackend::quantizedMatMul(const TensorSpec& a, const TensorSpec& b,
                                   const QuantParams& wq,
                                   const TensorSpec* bias, FusedActivation act,
                                   const OutQuant* outQ) {
  wq.validate();
  const int batch = a.shape[0];
  const int m = a.shape[1], k = a.shape[2];
  const int n = b.shape[2];
  TFJS_ARG_CHECK(b.shape[0] == 1 && b.shape[1] == k,
                 "quantizedMatMul expects weights [1, k, n] matching a's k");
  TFJS_ARG_CHECK(!wq.perChannel() ||
                     wq.channels() == static_cast<std::size_t>(n),
                 "quantizedMatMul weight scales must have one entry per "
                 "output channel");
  {
    KernelTimer t(kernelMs_);
    const auto& av = buf(a.id);
    if (!qmath::allFinite(av.data(), av.size()) || !quantFastPathOk(wq, k)) {
      // Fall through to the f32 path outside the timer scope.
    } else {
      const auto& bv = buf(b.id);
      std::vector<std::int8_t> w8(static_cast<std::size_t>(k) * n);
      qmath::weightsToInt8(bv.data(), w8.size(), w8.data());
      std::vector<std::int32_t> cs(static_cast<std::size_t>(n));
      qmath::colSums(w8.data(), k, n, cs.data());
      const float* biasv = bias != nullptr ? buf(bias->id).data() : nullptr;
      std::vector<float> out =
          allocBuffer(static_cast<std::size_t>(batch) * m * n);
      std::vector<std::uint8_t> qrow(static_cast<std::size_t>(k));
      for (int bi = 0; bi < batch; ++bi) {
        for (int i = 0; i < m; ++i) {
          const float* Arow =
              av.data() + (static_cast<std::size_t>(bi) * m + i) * k;
          const qmath::RowQuant rq = qmath::chooseRowQuant(Arow, k);
          qmath::quantizeRow(Arow, k, rq, qrow.data());
          float* Crow =
              out.data() + (static_cast<std::size_t>(bi) * m + i) * n;
          for (int j = 0; j < n; ++j) {
            std::int32_t acc = 0;
            for (int p = 0; p < k; ++p) {
              acc += static_cast<std::int32_t>(qrow[p]) *
                     static_cast<std::int32_t>(
                         w8[static_cast<std::size_t>(p) * n + j]);
            }
            Crow[j] = qmath::quantEpilogue(acc, rq, cs[j], wq.scaleFor(j),
                                           biasv, j, act, outQ);
          }
        }
      }
      return store(std::move(out));
    }
  }
  return quantizedMatMulFallback(a, b, wq, bias, act, outQ);
}

DataId RefBackend::quantizedConv2d(const TensorSpec& x,
                                   const TensorSpec& filter,
                                   const Conv2DInfo& ci, const QuantParams& wq,
                                   const TensorSpec* bias, FusedActivation act,
                                   const OutQuant* outQ) {
  wq.validate();
  const int patch = ci.filterH * ci.filterW * ci.inC;
  const int n = ci.outC;
  TFJS_ARG_CHECK(!wq.perChannel() ||
                     wq.channels() == static_cast<std::size_t>(n),
                 "quantizedConv2d weight scales must have one entry per "
                 "output channel");
  {
    KernelTimer t(kernelMs_);
    const auto& xv = buf(x.id);
    if (!qmath::allFinite(xv.data(), xv.size()) ||
        !quantFastPathOk(wq, patch)) {
      // Fall through to the f32 path outside the timer scope.
    } else {
      const auto& fv = buf(filter.id);
      std::vector<std::int8_t> w8(static_cast<std::size_t>(patch) * n);
      qmath::weightsToInt8(fv.data(), w8.size(), w8.data());
      std::vector<std::int32_t> cs(static_cast<std::size_t>(n));
      qmath::colSums(w8.data(), patch, n, cs.data());
      const float* biasv = bias != nullptr ? buf(bias->id).data() : nullptr;
      std::vector<float> out = allocBuffer(
          static_cast<std::size_t>(ci.batch) * ci.outH * ci.outW * n);
      // Each output pixel materializes its full im2col patch row (zeros for
      // out-of-bounds taps) and quantizes it as one GEMM row — exactly what
      // the native backend's chunked im2col does, so results match bitwise.
      std::vector<float> prow(static_cast<std::size_t>(patch));
      std::vector<std::uint8_t> qrow(static_cast<std::size_t>(patch));
      for (int b = 0; b < ci.batch; ++b) {
        for (int oy = 0; oy < ci.outH; ++oy) {
          for (int ox = 0; ox < ci.outW; ++ox) {
            std::fill(prow.begin(), prow.end(), 0.f);
            for (int fy = 0; fy < ci.filterH; ++fy) {
              const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
              if (iy < 0 || iy >= ci.inH) continue;
              for (int fx = 0; fx < ci.filterW; ++fx) {
                const int ix =
                    ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
                if (ix < 0 || ix >= ci.inW) continue;
                std::memcpy(
                    prow.data() +
                        (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                            ci.inC,
                    xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                     ci.inW +
                                 ix) *
                                    ci.inC,
                    static_cast<std::size_t>(ci.inC) * sizeof(float));
              }
            }
            const qmath::RowQuant rq =
                qmath::chooseRowQuant(prow.data(), prow.size());
            qmath::quantizeRow(prow.data(), prow.size(), rq, qrow.data());
            float* oRow =
                out.data() + ((static_cast<std::size_t>(b) * ci.outH + oy) *
                                  ci.outW +
                              ox) *
                                 n;
            for (int oc = 0; oc < n; ++oc) {
              std::int32_t acc = 0;
              for (int p = 0; p < patch; ++p) {
                acc += static_cast<std::int32_t>(qrow[p]) *
                       static_cast<std::int32_t>(
                           w8[static_cast<std::size_t>(p) * n + oc]);
              }
              oRow[oc] = qmath::quantEpilogue(acc, rq, cs[oc], wq.scaleFor(oc),
                                              biasv, oc, act, outQ);
            }
          }
        }
      }
      return store(std::move(out));
    }
  }
  return quantizedConv2dFallback(x, filter, ci, wq, bias, act, outQ);
}

DataId RefBackend::cumsum(const TensorSpec& x, std::size_t outer,
                          std::size_t inner, bool exclusive, bool reverse) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(xv.size());
  for (std::size_t o = 0; o < outer; ++o) {
    const float* row = xv.data() + o * inner;
    float* dst = out.data() + o * inner;
    float acc = 0;
    for (std::size_t j = 0; j < inner; ++j) {
      const std::size_t i = reverse ? inner - 1 - j : j;
      if (exclusive) {
        dst[i] = acc;
        acc += row[i];
      } else {
        acc += row[i];
        dst[i] = acc;
      }
    }
  }
  return store(std::move(out));
}

}  // namespace tfjs::backends
