// The shader compiler of paper section 4.1.
//
// In the real library, kernels are GLSL fragment shaders whose authoring is
// made tractable by a compiler that generates high-level sampler functions
// (getA(batch, row, col, depth), getOutputCoords(), setOutput(v)) hiding the
// logical→physical texture mapping. Here a "shader" is a C++ callable with
// exactly the same contract: it runs once per output value, in parallel
// semantics (no shared state between invocations), addressing inputs in
// logical N-D space through compiled Samplers.
//
// The compiler reproduces the paper's three optimizations:
//  * logical/physical separation — tensors of any rank map onto 2-D
//    textures capped at the device limit (tex_util);
//  * squeezed coordinate mapping — samplers for shapes with size-1
//    dimensions skip those dimensions' index arithmetic entirely (the 1.3x
//    optimization: getA(a,b,c,d) ignores a and c for a 1x3x1x2 tensor);
//  * packing — RGBA texels hold 4 consecutive values, quartering texel
//    fetches and (for element-wise programs) shader invocations.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "backends/webgl/device_model.h"
#include "backends/webgl/texture.h"
#include "core/half.h"
#include "core/shape.h"

namespace tfjs::backends::webgl {

/// The compiled, texture-independent part of a Sampler: the strides of the
/// dimensions that participate in addressing (with squeezing, size-1
/// dimensions are dropped) and the resulting index-op count. This is the
/// artifact the program cache shares — the analogue of a compiled+linked
/// GLSL program, which upstream caches keyed on op + shape signature
/// because compilation dominates first-call latency.
struct SamplerLayout {
  std::vector<std::pair<int, std::size_t>> dimStrides;  // (axis, stride)
  int indexOps = 0;
};

/// Compiles the addressing layout for a logical shape; `squeeze` enables
/// the squeezed-coordinate optimization.
SamplerLayout compileSamplerLayout(const Shape& logical, bool squeeze);

/// Process-wide cache of compiled sampler layouts keyed on
/// (op, logical shape, squeeze, packed) — the shape-class signature the
/// upstream shader cache uses. Thread-safe; hit/miss counts are published
/// as webgl.shader_cache_hits / webgl.shader_cache_misses.
class ProgramCache {
 public:
  static ProgramCache& get();

  std::shared_ptr<const SamplerLayout> layout(const std::string& opName,
                                              const Shape& logical,
                                              bool squeeze, bool packed);
  void clear();
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const SamplerLayout>>
      cache_;
};

/// A compiled input sampler: logical coordinates → texel fetch.
class Sampler {
 public:
  Sampler() = default;
  /// Compiles a fresh layout; `squeeze` enables the squeezed-coordinate
  /// optimization.
  Sampler(const GlTexture* tex, const Shape& logical, bool squeeze);
  /// Binds a texture to a pre-compiled (cached) layout — the program-cache
  /// hit path recompiles nothing.
  Sampler(const GlTexture* tex, std::shared_ptr<const SamplerLayout> layout);

  /// Fetch by full-rank logical coordinates.
  float get(std::span<const int> coords) const;
  /// Fetch by flat logical index (element-wise programs).
  float getFlat(std::size_t flat) const;

  /// Index-arithmetic operations per get() — the quantity the squeezed
  /// mapping reduces; feeds the device cost model.
  int indexOpsPerFetch() const { return layout_ ? layout_->indexOps : 0; }

  /// Texel fetches issued through this sampler (single worker thread).
  mutable std::uint64_t fetchCount = 0;

 private:
  const GlTexture* tex_ = nullptr;
  std::shared_ptr<const SamplerLayout> layout_;
};

/// Execution context handed to a shader's main(); mirrors the generated
/// GLSL helpers (getOutputCoords / getA / setOutput).
class ShaderContext {
 public:
  /// Logical coordinates of the output value being computed.
  std::span<const int> outputCoords() const {
    return {coords_.data(), coords_.size()};
  }
  int coord(int d) const { return coords_[static_cast<std::size_t>(d)]; }
  std::size_t outFlat() const { return flat_; }

  /// Sample input i at the given logical coordinates.
  float get(int input, std::span<const int> coords) const {
    return samplers_[static_cast<std::size_t>(input)].get(coords);
  }
  float get(int input, std::initializer_list<int> coords) const {
    return get(input, std::span<const int>(coords.begin(), coords.size()));
  }
  float getFlat(int input, std::size_t flat) const {
    return samplers_[static_cast<std::size_t>(input)].getFlat(flat);
  }

  /// The browser-specific write: fp16 devices round through half precision
  /// (paper: "in iOS Safari we render to a 16bit ... texture. In both cases
  /// the user code is the same, using the high-level setOutput(value)").
  void setOutput(float v) {
    out_[flat_] = fp16_ ? roundTripHalf(v) : v;
  }

 private:
  friend class ShaderExecutor;
  std::vector<int> coords_;
  std::size_t flat_ = 0;
  std::vector<Sampler> samplers_;
  float* out_ = nullptr;
  bool fp16_ = false;
};

/// A shader program plus everything needed to run it.
struct ShaderRun {
  std::string name;
  Shape outputShape;
  std::shared_ptr<GlTexture> output;
  struct Input {
    std::shared_ptr<GlTexture> tex;
    Shape logicalShape;
  };
  std::vector<Input> inputs;
  std::function<void(ShaderContext&)> main;
  ProgramCost cost;
  bool squeeze = true;
};

/// Executes a ShaderRun on the calling (GPU worker) thread: loops every
/// logical output element, invoking main() with fresh output coordinates —
/// the sequential emulation of the per-pixel parallel fragment pipeline.
class ShaderExecutor {
 public:
  /// Returns the total texel fetches actually issued (for cost-model
  /// validation in tests).
  static std::uint64_t execute(ShaderRun& run);
};

}  // namespace tfjs::backends::webgl
