// Logical-shape → physical-texture-shape mapping (paper section 4.1).
//
// The shader compiler separates the logical N-D space user code addresses
// from the physical 2-D texel space, which lets the framework (a) respect
// device texture-size limits and (b) optimize the coordinate mapping — e.g.
// a 1x3x1x2 tensor maps to a 3x2 texture and the generated sampler ignores
// the size-1 dimensions entirely (the "squeezed" optimization the paper
// credits with a 1.3x average speedup).
#pragma once

#include <cstdint>

#include "backends/webgl/texture.h"
#include "core/shape.h"

namespace tfjs::backends::webgl::tex_util {

/// WebGL 1.0-era guaranteed texture limit we simulate.
constexpr int kMaxTextureSize = 4096;

/// Physical texel extent for a tensor with `elems` logical values. Packed
/// textures hold 4 values per texel.
PhysShape physShapeForSize(std::size_t elems, bool packed);

/// Preferred physical shape for a logical shape: when the squeezed shape is
/// rank <= 2 and fits the device limit, rows/cols mirror the logical
/// dimensions (enabling the direct coordinate mapping); otherwise a
/// near-square layout of the flat size is used.
PhysShape physShapeForLogical(const Shape& logical, bool packed);

}  // namespace tfjs::backends::webgl::tex_util
