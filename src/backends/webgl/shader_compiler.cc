#include "backends/webgl/shader_compiler.h"

#include "core/error.h"

namespace tfjs::backends::webgl {

Sampler::Sampler(const GlTexture* tex, const Shape& logical, bool squeeze)
    : tex_(tex) {
  const auto strides = logical.strides();
  for (int d = 0; d < logical.rank(); ++d) {
    if (squeeze && logical[d] == 1) continue;  // squeezed mapping: skip
    dimStrides_.emplace_back(d, strides[static_cast<std::size_t>(d)]);
  }
  // One multiply + one add per participating dimension.
  indexOps_ = 2 * static_cast<int>(dimStrides_.size());
}

float Sampler::get(std::span<const int> coords) const {
  std::size_t flat = 0;
  for (const auto& [axis, stride] : dimStrides_) {
    flat += static_cast<std::size_t>(coords[static_cast<std::size_t>(axis)]) *
            stride;
  }
  return getFlat(flat);
}

float Sampler::getFlat(std::size_t flat) const {
  ++fetchCount;
  // Packed and unpacked textures share the same linear value layout; only
  // the physical texel metadata (and hence fetch/byte accounting) differs.
  TFJS_CHECK_MSG(flat < tex_->data().size(),
                 "texel fetch out of bounds: " << flat << " >= "
                                               << tex_->data().size());
  return tex_->data()[flat];
}

std::uint64_t ShaderExecutor::execute(ShaderRun& run) {
  ShaderContext ctx;
  const Shape& outShape = run.outputShape;
  const int rank = outShape.rank();
  ctx.coords_.assign(static_cast<std::size_t>(rank), 0);
  ctx.samplers_.reserve(run.inputs.size());
  for (const auto& in : run.inputs) {
    TFJS_CHECK_MSG(!in.tex->pagedOut(),
                   "shader input texture is paged out (touch() missing)");
    ctx.samplers_.emplace_back(in.tex.get(), in.logicalShape, run.squeeze);
  }
  TFJS_CHECK(!run.output->pagedOut());
  ctx.out_ = run.output->data().data();
  ctx.fp16_ = run.output->config().precision == TexPrecision::fp16;

  const std::size_t n = outShape.size();
  TFJS_CHECK_MSG(run.output->data().size() >= n,
                 "output texture too small: " << run.output->data().size()
                                              << " < " << n);
  for (std::size_t flat = 0; flat < n; ++flat) {
    ctx.flat_ = flat;
    run.main(ctx);
    // Odometer increment of the logical output coordinates.
    for (int d = rank - 1; d >= 0; --d) {
      auto& c = ctx.coords_[static_cast<std::size_t>(d)];
      if (++c < outShape[d]) break;
      c = 0;
    }
  }

  std::uint64_t fetches = 0;
  for (const auto& s : ctx.samplers_) fetches += s.fetchCount;
  return fetches;
}

}  // namespace tfjs::backends::webgl
