#include "backends/webgl/shader_compiler.h"

#include <sstream>
#include <utility>

#include "core/error.h"
#include "core/metrics.h"

namespace tfjs::backends::webgl {

SamplerLayout compileSamplerLayout(const Shape& logical, bool squeeze) {
  SamplerLayout layout;
  const auto strides = logical.strides();
  for (int d = 0; d < logical.rank(); ++d) {
    if (squeeze && logical[d] == 1) continue;  // squeezed mapping: skip
    layout.dimStrides.emplace_back(d, strides[static_cast<std::size_t>(d)]);
  }
  // One multiply + one add per participating dimension.
  layout.indexOps = 2 * static_cast<int>(layout.dimStrides.size());
  return layout;
}

ProgramCache& ProgramCache::get() {
  static ProgramCache* cache = new ProgramCache();  // leaked singleton
  return *cache;
}

std::shared_ptr<const SamplerLayout> ProgramCache::layout(
    const std::string& opName, const Shape& logical, bool squeeze,
    bool packed) {
  static metrics::Counter& hits =
      metrics::Registry::get().counter("webgl.shader_cache_hits");
  static metrics::Counter& misses =
      metrics::Registry::get().counter("webgl.shader_cache_misses");
  std::ostringstream key;
  key << opName << (packed ? "|p" : "|u") << (squeeze ? "|s" : "|n");
  for (int d = 0; d < logical.rank(); ++d) key << '|' << logical[d];
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key.str());
  if (it != cache_.end()) {
    hits.inc();
    return it->second;
  }
  misses.inc();
  auto compiled =
      std::make_shared<const SamplerLayout>(compileSamplerLayout(logical,
                                                                 squeeze));
  cache_.emplace(key.str(), compiled);
  return compiled;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

Sampler::Sampler(const GlTexture* tex, const Shape& logical, bool squeeze)
    : tex_(tex),
      layout_(std::make_shared<const SamplerLayout>(
          compileSamplerLayout(logical, squeeze))) {}

Sampler::Sampler(const GlTexture* tex,
                 std::shared_ptr<const SamplerLayout> layout)
    : tex_(tex), layout_(std::move(layout)) {}

float Sampler::get(std::span<const int> coords) const {
  std::size_t flat = 0;
  for (const auto& [axis, stride] : layout_->dimStrides) {
    flat += static_cast<std::size_t>(coords[static_cast<std::size_t>(axis)]) *
            stride;
  }
  return getFlat(flat);
}

float Sampler::getFlat(std::size_t flat) const {
  ++fetchCount;
  // Packed and unpacked textures share the same linear value layout; only
  // the physical texel metadata (and hence fetch/byte accounting) differs.
  TFJS_CHECK_MSG(flat < tex_->data().size(),
                 "texel fetch out of bounds: " << flat << " >= "
                                               << tex_->data().size());
  return tex_->data()[flat];
}

std::uint64_t ShaderExecutor::execute(ShaderRun& run) {
  ShaderContext ctx;
  const Shape& outShape = run.outputShape;
  const int rank = outShape.rank();
  ctx.coords_.assign(static_cast<std::size_t>(rank), 0);
  ctx.samplers_.reserve(run.inputs.size());
  for (const auto& in : run.inputs) {
    TFJS_CHECK_MSG(!in.tex->pagedOut(),
                   "shader input texture is paged out (touch() missing)");
    // Program-cache lookup: a repeat of (op, shape-class, packed) rebinds
    // the cached layout instead of recompiling index arithmetic.
    ctx.samplers_.emplace_back(
        in.tex.get(),
        ProgramCache::get().layout(run.name, in.logicalShape, run.squeeze,
                                   in.tex->config().packed));
  }
  TFJS_CHECK(!run.output->pagedOut());
  ctx.out_ = run.output->data().data();
  ctx.fp16_ = run.output->config().precision == TexPrecision::fp16;

  const std::size_t n = outShape.size();
  TFJS_CHECK_MSG(run.output->data().size() >= n,
                 "output texture too small: " << run.output->data().size()
                                              << " < " << n);
  for (std::size_t flat = 0; flat < n; ++flat) {
    ctx.flat_ = flat;
    run.main(ctx);
    // Odometer increment of the logical output coordinates.
    for (int d = rank - 1; d >= 0; --d) {
      auto& c = ctx.coords_[static_cast<std::size_t>(d)];
      if (++c < outShape[d]) break;
      c = 0;
    }
  }

  std::uint64_t fetches = 0;
  for (const auto& s : ctx.samplers_) fetches += s.fetchCount;
  return fetches;
}

}  // namespace tfjs::backends::webgl
