#include "backends/webgl/gpgpu_context.h"

#include <utility>

#include "core/error.h"
#include "core/half.h"
#include "core/metrics.h"
#include "core/trace.h"

namespace tfjs::backends::webgl {

GPGPUContext::GPGPUContext(DeviceModel model, TextureManager* textures)
    : model_(std::move(model)), textures_(textures) {
  worker_ = std::thread([this] { workerLoop(); });
}

GPGPUContext::~GPGPUContext() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void GPGPUContext::post(std::function<void()> cmd) {
  static metrics::Counter& commands =
      metrics::Registry::get().counter("webgl.commands");
  static metrics::Gauge& queueDepth =
      metrics::Registry::get().gauge("webgl.queue_depth");
  commands.inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(cmd));
    queueDepth.set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_all();
}

void GPGPUContext::workerLoop() {
  for (;;) {
    std::function<void()> cmd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      cmd = std::move(queue_.front());
      queue_.pop_front();
      metrics::Registry::get()
          .gauge("webgl.queue_depth")
          .set(static_cast<std::int64_t>(queue_.size()));
    }
    try {
      cmd();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!pendingError_) pendingError_ = std::current_exception();
    }
    cv_.notify_all();  // wake waitForIdle watchers
  }
}

std::exception_ptr GPGPUContext::takeError() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(pendingError_, nullptr);
}

void GPGPUContext::enqueueUpload(std::shared_ptr<GlTexture> tex,
                                 std::vector<float> values) {
  post([this, tex = std::move(tex), values = std::move(values)]() mutable {
    static metrics::Counter& bytesUploaded =
        metrics::Registry::get().counter("backend.bytes_uploaded");
    bytesUploaded.inc(values.size() * 4);
    trace::Span span("gpu", "upload");
    textures_->pin(tex);
    auto& data = tex->data();
    TFJS_CHECK(data.size() >= values.size());
    const bool fp16 = tex->config().precision == TexPrecision::fp16;
    for (std::size_t i = 0; i < values.size(); ++i) {
      data[i] = fp16 ? roundTripHalf(values[i]) : values[i];
    }
    textures_->unpin(tex);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.uploads;
    // Host→GPU transfer modeled at PCIe-class bandwidth (8 GB/s).
    stats_.uploadTimeMs +=
        static_cast<double>(values.size() * 4) / (8.0 * 1e6);
  });
}

void GPGPUContext::enqueueProgram(ShaderRun run) {
  post([this, run = std::move(run)]() mutable {
    trace::Span span("gpu", run.name.empty() ? "program" : run.name);
    for (auto& in : run.inputs) textures_->pin(in.tex);
    textures_->pin(run.output);
    const std::uint64_t fetches = ShaderExecutor::execute(run);
    for (auto& in : run.inputs) textures_->unpin(in.tex);
    textures_->unpin(run.output);
    const bool packed = run.output->config().packed;
    const double ms = model_.timeMs(run.cost, packed);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.programsRun;
    stats_.texelFetches += fetches;
    stats_.gpuTimeMs += ms;
  });
}

std::future<void> GPGPUContext::insertFence() {
  auto p = std::make_shared<std::promise<void>>();
  auto f = p->get_future();
  post([this, p = std::move(p)] {
    static metrics::Counter& fences =
        metrics::Registry::get().counter("webgl.fences");
    fences.inc();
    trace::instant("gpu", "fence");
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fences;
    }
    p->set_value();
  });
  return f;
}

std::future<std::vector<float>> GPGPUContext::readbackAsync(
    std::shared_ptr<GlTexture> tex, std::size_t n) {
  auto p = std::make_shared<std::promise<std::vector<float>>>();
  auto f = p->get_future();
  post([this, tex = std::move(tex), n, p = std::move(p)] {
    // Deliver any earlier device error through this readback (the analogue
    // of a lost WebGL context surfacing on the next gl call).
    if (auto err = takeError()) {
      p->set_exception(err);
      return;
    }
    static metrics::Counter& bytesDownloaded =
        metrics::Registry::get().counter("backend.bytes_downloaded");
    bytesDownloaded.inc(n * 4);
    trace::Span span("gpu", "readback");
    textures_->pin(tex);
    const auto& data = tex->data();
    TFJS_CHECK(data.size() >= n);
    std::vector<float> out(data.begin(),
                           data.begin() + static_cast<std::ptrdiff_t>(n));
    textures_->unpin(tex);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.readbacks;
      stats_.readbackTimeMs +=
          model_.readbackLatencyMs +
          static_cast<double>(n * 4) / (8.0 * 1e6);
    }
    p->set_value(std::move(out));
  });
  return f;
}

std::vector<float> GPGPUContext::readPixels(std::shared_ptr<GlTexture> tex,
                                            std::size_t n) {
  // gl.readPixels is blocking: it drains the pipeline, then copies.
  return readbackAsync(std::move(tex), n).get();
}

void GPGPUContext::waitForIdle() {
  // A fence retires only after every previously enqueued command (single
  // in-order worker), so waiting on it is an exact pipeline drain.
  insertFence().get();
}

GpgpuStats GPGPUContext::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tfjs::backends::webgl
