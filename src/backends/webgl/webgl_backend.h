// WebGLBackend: the simulated-WebGL backend — the paper's highest-complexity
// component (section 4.1), reproduced end to end:
//
//   tensor data lives in 2-D textures (GlTexture) laid out by the shader
//   compiler's logical→physical mapping; kernels are per-output-element
//   shader programs enqueued on a command queue drained by a GPU worker
//   thread; fences implement async readback; a texture recycler and a
//   GPU→CPU paging heuristic manage memory; RGBA packing and the squeezed
//   coordinate mapping are the section 3.9 / 4.1 optimizations; fp16 texture
//   mode reproduces the iOS numerical-precision behaviour of section 4.1.3.
//
// Timing: kernelTimeMs() is the modeled GPU busy time from the DeviceModel
// (see device_model.h), the analogue of EXT_disjoint_timer_query.
#pragma once

#include <memory>
#include <unordered_map>

#include "backends/webgl/gpgpu_context.h"
#include "core/backend.h"

namespace tfjs::backends::webgl {

struct WebGLOptions {
  DeviceModel device = irisProWebGL();
  /// RGBA texel packing (section 3.9; 1.3-1.4x on PoseNet-class models).
  bool packed = true;
  /// Squeezed coordinate mapping (section 4.1; 1.3x average).
  bool squeeze = true;
  /// fp16 simulates the iOS Safari 16-bit float texture path.
  TexPrecision precision = TexPrecision::fp32;
  /// GPU memory budget before paging kicks in ("estimated from the screen
  /// size" in the paper).
  std::size_t gpuBudgetBytes = 256ull * 1024 * 1024;
  /// Texture recycling (section 4.1.2); off only for ablation.
  bool recycleTextures = true;
};

class WebGLBackend : public Backend {
 public:
  explicit WebGLBackend(WebGLOptions opts = {});

  std::string name() const override { return "webgl"; }

  // ---- storage
  DataId write(std::span<const float> values, const Shape& shape) override;
  std::vector<float> read(DataId id) override;
  std::future<std::vector<float>> readAsync(DataId id) override;
  void disposeData(DataId id) override;
  void flush() override;
  double kernelTimeMs() const override;
  std::size_t memoryBytes() const override;
  float epsilon() const override {
    return opts_.precision == TexPrecision::fp16 ? 1e-4f : 1e-7f;
  }

  // ---- kernels
  DataId binary(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                const Shape& outShape) override;
  DataId unary(UnaryOp op, const TensorSpec& x, float alpha,
               float beta) override;
  DataId select(const TensorSpec& cond, const TensorSpec& a,
                const TensorSpec& b, const Shape& outShape) override;
  DataId matMul(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                bool transposeB) override;
  DataId conv2d(const TensorSpec& x, const TensorSpec& filter,
                const Conv2DInfo& info) override;
  DataId conv2dBackpropInput(const TensorSpec& dy, const TensorSpec& filter,
                             const Conv2DInfo& info) override;
  DataId conv2dBackpropFilter(const TensorSpec& x, const TensorSpec& dy,
                              const Conv2DInfo& info) override;
  DataId depthwiseConv2d(const TensorSpec& x, const TensorSpec& filter,
                         const Conv2DInfo& info) override;
  DataId depthwiseConv2dBackpropInput(const TensorSpec& dy,
                                      const TensorSpec& filter,
                                      const Conv2DInfo& info) override;
  DataId depthwiseConv2dBackpropFilter(const TensorSpec& x,
                                       const TensorSpec& dy,
                                       const Conv2DInfo& info) override;
  DataId pool2d(PoolMode mode, const TensorSpec& x,
                const Pool2DInfo& info) override;
  DataId maxPoolBackprop(const TensorSpec& dy, const TensorSpec& x,
                         const Pool2DInfo& info) override;
  DataId avgPoolBackprop(const TensorSpec& dy,
                         const Pool2DInfo& info) override;
  DataId reduce(ReduceOp op, const TensorSpec& x, std::size_t outer,
                std::size_t inner) override;
  DataId arg(ArgOp op, const TensorSpec& x, std::size_t outer,
             std::size_t inner) override;
  DataId transpose(const TensorSpec& x, std::span<const int> perm,
                   const Shape& outShape) override;
  DataId slice(const TensorSpec& x, std::span<const int> begin,
               const Shape& outShape) override;
  DataId concat(std::span<const TensorSpec> xs, int axis,
                const Shape& outShape) override;
  DataId pad(const TensorSpec& x,
             std::span<const std::pair<int, int>> paddings,
             float constantValue, const Shape& outShape) override;
  DataId gather(const TensorSpec& x, const TensorSpec& indices, int axis,
                const Shape& outShape) override;
  DataId tile(const TensorSpec& x, std::span<const int> reps,
              const Shape& outShape) override;
  DataId reverse(const TensorSpec& x, std::span<const int> axes) override;
  DataId resizeBilinear(const TensorSpec& x, int newH, int newW,
                        bool alignCorners) override;
  DataId oneHot(const TensorSpec& indices, int depth, float onValue,
                float offValue) override;
  DataId fill(std::size_t n, float value) override;
  DataId topkValues(const TensorSpec& x, std::size_t outer, std::size_t inner,
                    int k) override;
  DataId topkIndices(const TensorSpec& x, std::size_t outer,
                     std::size_t inner, int k) override;
  DataId cumsum(const TensorSpec& x, std::size_t outer, std::size_t inner,
                bool exclusive, bool reverse) override;

  // ---- introspection (tests / benches)
  GpgpuStats gpuStats() const { return ctx_.stats(); }
  TextureManagerStats textureStats() const { return textures_.stats(); }
  const WebGLOptions& options() const { return opts_; }
  GPGPUContext& context() { return ctx_; }

 private:
  struct Binding {
    std::shared_ptr<GlTexture> tex;
    std::size_t size = 0;
  };

  /// Index-op count the cost model charges per fetch of this shape.
  int idxOps(const Shape& s) const {
    return 2 * (opts_.squeeze ? s.squeezed().rank() : s.rank());
  }
  /// Element-wise invocation count: packing processes 4 values per texel.
  std::size_t elemInvocations(std::size_t n) const {
    return opts_.packed ? (n + 3) / 4 : n;
  }
  /// Packing also divides per-invocation fetches (vec4 loads, Listing 2).
  double fetchScale() const { return opts_.packed ? 0.25 : 1.0; }

  const Binding& binding(DataId id) const;
  /// Allocates the output texture for a logical shape and registers it.
  std::pair<DataId, std::shared_ptr<GlTexture>> makeOutput(
      const Shape& logical);
  ShaderRun::Input input(const TensorSpec& spec) const;
  DataId run(ShaderRun run);

  WebGLOptions opts_;
  TextureManager textures_;
  GPGPUContext ctx_;
  std::unordered_map<DataId, Binding> bindings_;
  DataId nextId_ = 1;
};

/// Registers "webgl" (highest priority, as in the paper's backend election).
void registerBackend();
/// Registers a configured variant under a custom name (benches use this for
/// unpacked / fp16 / GTX-1080-model instances).
void registerBackendVariant(const std::string& name, WebGLOptions opts,
                            int priority = 0);

}  // namespace tfjs::backends::webgl
