#include "backends/webgl/webgl_backend.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "backends/common/ref_backend.h"  // applyBinary/applyUnary semantics
#include "backends/webgl/tex_util.h"
#include "core/engine.h"
#include "core/util.h"

namespace tfjs::backends::webgl {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}

WebGLBackend::WebGLBackend(WebGLOptions opts)
    : opts_(opts),
      textures_(opts.gpuBudgetBytes, opts.recycleTextures),
      ctx_(opts.device, &textures_) {}

// ------------------------------------------------------------------ storage

const WebGLBackend::Binding& WebGLBackend::binding(DataId id) const {
  auto it = bindings_.find(id);
  TFJS_CHECK_MSG(it != bindings_.end(), "Unknown webgl DataId " << id);
  return it->second;
}

std::pair<DataId, std::shared_ptr<GlTexture>> WebGLBackend::makeOutput(
    const Shape& logical) {
  const PhysShape phys = tex_util::physShapeForLogical(logical, opts_.packed);
  auto tex = textures_.acquire(
      phys, TexConfig{opts_.packed, opts_.precision});
  const DataId id = nextId_++;
  bindings_[id] = Binding{tex, logical.size()};
  return {id, std::move(tex)};
}

ShaderRun::Input WebGLBackend::input(const TensorSpec& spec) const {
  return ShaderRun::Input{binding(spec.id).tex, spec.shape};
}

DataId WebGLBackend::run(ShaderRun r) {
  // Find the DataId we just allocated for the output texture.
  // (makeOutput/run are always paired by the kernel builders.)
  ctx_.enqueueProgram(std::move(r));
  return nextId_ - 1;
}

DataId WebGLBackend::write(std::span<const float> values, const Shape& shape) {
  auto [id, tex] = makeOutput(shape);
  ctx_.enqueueUpload(tex, std::vector<float>(values.begin(), values.end()));
  return id;
}

std::vector<float> WebGLBackend::read(DataId id) {
  const Binding& b = binding(id);
  return ctx_.readPixels(b.tex, b.size);
}

std::future<std::vector<float>> WebGLBackend::readAsync(DataId id) {
  const Binding& b = binding(id);
  return ctx_.readbackAsync(b.tex, b.size);
}

void WebGLBackend::disposeData(DataId id) {
  auto it = bindings_.find(id);
  if (it == bindings_.end()) return;
  textures_.release(it->second.tex);
  bindings_.erase(it);
}

void WebGLBackend::flush() { ctx_.waitForIdle(); }

double WebGLBackend::kernelTimeMs() const { return ctx_.stats().gpuTimeMs; }

std::size_t WebGLBackend::memoryBytes() const {
  return textures_.stats().gpuBytes;
}

// ------------------------------------------------------------------ kernels

DataId WebGLBackend::binary(BinaryOp op, const TensorSpec& a,
                            const TensorSpec& b, const Shape& outShape) {
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "binary";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(a), input(b)};
  r.squeeze = opts_.squeeze;
  const bool same = a.shape == outShape && b.shape == outShape;
  if (same) {
    r.main = [op](ShaderContext& ctx) {
      const std::size_t i = ctx.outFlat();
      ctx.setOutput(applyBinary(op, ctx.getFlat(0, i), ctx.getFlat(1, i)));
    };
  } else {
    const Shape aShape = a.shape, bShape = b.shape, oShape = outShape;
    r.main = [op, aShape, bShape, oShape](ShaderContext& ctx) {
      const auto coords = ctx.outputCoords();
      const float x =
          ctx.getFlat(0, util::broadcastIndex(coords, aShape, oShape));
      const float y =
          ctx.getFlat(1, util::broadcastIndex(coords, bShape, oShape));
      ctx.setOutput(applyBinary(op, x, y));
    };
  }
  r.cost.invocations = elemInvocations(outShape.size());
  r.cost.fetchesPerInvocation = 2;
  r.cost.flopsPerInvocation =
      (opts_.packed ? 4.0 : 1.0) + idxOps(a.shape) + idxOps(b.shape);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::unary(UnaryOp op, const TensorSpec& x, float alpha,
                           float beta) {
  auto [id, outTex] = makeOutput(x.shape);
  ShaderRun r;
  r.name = "unary";
  r.outputShape = x.shape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  r.main = [op, alpha, beta](ShaderContext& ctx) {
    ctx.setOutput(applyUnary(op, ctx.getFlat(0, ctx.outFlat()), alpha, beta));
  };
  r.cost.invocations = elemInvocations(x.shape.size());
  r.cost.fetchesPerInvocation = 1;
  r.cost.flopsPerInvocation = (opts_.packed ? 4.0 : 1.0) + idxOps(x.shape);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::select(const TensorSpec& cond, const TensorSpec& a,
                            const TensorSpec& b, const Shape& outShape) {
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "select";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(cond), input(a), input(b)};
  r.squeeze = opts_.squeeze;
  const Shape cShape = cond.shape, aShape = a.shape, bShape = b.shape,
              oShape = outShape;
  r.main = [cShape, aShape, bShape, oShape](ShaderContext& ctx) {
    const auto coords = ctx.outputCoords();
    const float c =
        ctx.getFlat(0, util::broadcastIndex(coords, cShape, oShape));
    ctx.setOutput(
        c != 0 ? ctx.getFlat(1, util::broadcastIndex(coords, aShape, oShape))
               : ctx.getFlat(2, util::broadcastIndex(coords, bShape, oShape)));
  };
  r.cost.invocations = elemInvocations(outShape.size());
  r.cost.fetchesPerInvocation = 2;  // cond + one branch
  r.cost.flopsPerInvocation = (opts_.packed ? 4.0 : 1.0) + 3 * idxOps(oShape);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::matMul(const TensorSpec& a, const TensorSpec& b,
                            bool transposeA, bool transposeB) {
  const int bA = a.shape[0], bB = b.shape[0];
  const int m = transposeA ? a.shape[2] : a.shape[1];
  const int k = transposeA ? a.shape[1] : a.shape[2];
  const int n = transposeB ? b.shape[1] : b.shape[2];
  const int batch = std::max(bA, bB);
  const Shape outShape{batch, m, n};

  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "matMul";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(a), input(b)};
  r.squeeze = opts_.squeeze;
  // The Listing-2 shader: each output value loops over the shared dimension
  // sampling A's row and B's column through the compiled getters.
  r.main = [=](ShaderContext& ctx) {
    const int bi = ctx.coord(0), i = ctx.coord(1), j = ctx.coord(2);
    const int ba = bA == 1 ? 0 : bi;
    const int bb = bB == 1 ? 0 : bi;
    float acc = 0;
    for (int p = 0; p < k; ++p) {
      const std::array<int, 3> ac =
          transposeA ? std::array<int, 3>{ba, p, i}
                     : std::array<int, 3>{ba, i, p};
      const std::array<int, 3> bc =
          transposeB ? std::array<int, 3>{bb, j, p}
                     : std::array<int, 3>{bb, p, j};
      acc += ctx.get(0, std::span<const int>(ac)) *
             ctx.get(1, std::span<const int>(bc));
    }
    ctx.setOutput(acc);
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 2.0 * k * fetchScale();
  r.cost.flopsPerInvocation = 2.0 * k;
  r.cost.reusable = true;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::conv2d(const TensorSpec& x, const TensorSpec& filter,
                            const Conv2DInfo& ci) {
  const Shape outShape{ci.batch, ci.outH, ci.outW, ci.outC};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "conv2d";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x), input(filter)};
  r.squeeze = opts_.squeeze;
  r.main = [ci](ShaderContext& ctx) {
    const int b = ctx.coord(0), oy = ctx.coord(1), ox = ctx.coord(2),
              oc = ctx.coord(3);
    float acc = 0;
    for (int fy = 0; fy < ci.filterH; ++fy) {
      const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
      if (iy < 0 || iy >= ci.inH) continue;
      for (int fx = 0; fx < ci.filterW; ++fx) {
        const int ix = ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
        if (ix < 0 || ix >= ci.inW) continue;
        for (int ic = 0; ic < ci.inC; ++ic) {
          const std::array<int, 4> xc{b, iy, ix, ic};
          const std::array<int, 4> fc{fy, fx, ic, oc};
          acc += ctx.get(0, std::span<const int>(xc)) *
                 ctx.get(1, std::span<const int>(fc));
        }
      }
    }
    ctx.setOutput(acc);
  };
  const double macs = static_cast<double>(ci.filterH) * ci.filterW * ci.inC;
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 2.0 * macs * fetchScale();
  r.cost.flopsPerInvocation = 2.0 * macs;
  r.cost.reusable = true;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::conv2dBackpropInput(const TensorSpec& dy,
                                         const TensorSpec& filter,
                                         const Conv2DInfo& ci) {
  const Shape outShape{ci.batch, ci.inH, ci.inW, ci.inC};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "conv2dBackpropInput";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(dy), input(filter)};
  r.squeeze = opts_.squeeze;
  r.main = [ci](ShaderContext& ctx) {
    const int b = ctx.coord(0), iy = ctx.coord(1), ix = ctx.coord(2),
              ic = ctx.coord(3);
    float acc = 0;
    for (int fy = 0; fy < ci.filterH; ++fy) {
      const int oyNum = iy + ci.padTop - fy * ci.dilationH;
      if (oyNum % ci.strideH != 0) continue;
      const int oy = oyNum / ci.strideH;
      if (oy < 0 || oy >= ci.outH) continue;
      for (int fx = 0; fx < ci.filterW; ++fx) {
        const int oxNum = ix + ci.padLeft - fx * ci.dilationW;
        if (oxNum % ci.strideW != 0) continue;
        const int ox = oxNum / ci.strideW;
        if (ox < 0 || ox >= ci.outW) continue;
        for (int oc = 0; oc < ci.outC; ++oc) {
          const std::array<int, 4> dyc{b, oy, ox, oc};
          const std::array<int, 4> fc{fy, fx, ic, oc};
          acc += ctx.get(0, std::span<const int>(dyc)) *
                 ctx.get(1, std::span<const int>(fc));
        }
      }
    }
    ctx.setOutput(acc);
  };
  const double cover =
      std::ceil(static_cast<double>(ci.filterH) / ci.strideH) *
      std::ceil(static_cast<double>(ci.filterW) / ci.strideW);
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 2.0 * cover * ci.outC * fetchScale();
  r.cost.flopsPerInvocation = 2.0 * cover * ci.outC;
  r.cost.reusable = true;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::conv2dBackpropFilter(const TensorSpec& x,
                                          const TensorSpec& dy,
                                          const Conv2DInfo& ci) {
  const Shape outShape{ci.filterH, ci.filterW, ci.inC, ci.outC};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "conv2dBackpropFilter";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x), input(dy)};
  r.squeeze = opts_.squeeze;
  r.main = [ci](ShaderContext& ctx) {
    const int fy = ctx.coord(0), fx = ctx.coord(1), ic = ctx.coord(2),
              oc = ctx.coord(3);
    float acc = 0;
    for (int b = 0; b < ci.batch; ++b) {
      for (int oy = 0; oy < ci.outH; ++oy) {
        const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
        if (iy < 0 || iy >= ci.inH) continue;
        for (int ox = 0; ox < ci.outW; ++ox) {
          const int ix = ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
          if (ix < 0 || ix >= ci.inW) continue;
          const std::array<int, 4> xc{b, iy, ix, ic};
          const std::array<int, 4> dyc{b, oy, ox, oc};
          acc += ctx.get(0, std::span<const int>(xc)) *
                 ctx.get(1, std::span<const int>(dyc));
        }
      }
    }
    ctx.setOutput(acc);
  };
  const double spatial = static_cast<double>(ci.batch) * ci.outH * ci.outW;
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 2.0 * spatial * fetchScale();
  r.cost.flopsPerInvocation = 2.0 * spatial;
  r.cost.reusable = true;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::depthwiseConv2d(const TensorSpec& x,
                                     const TensorSpec& filter,
                                     const Conv2DInfo& ci) {
  const Shape outShape{ci.batch, ci.outH, ci.outW, ci.outC};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "depthwiseConv2d";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x), input(filter)};
  r.squeeze = opts_.squeeze;
  r.main = [ci](ShaderContext& ctx) {
    const int b = ctx.coord(0), oy = ctx.coord(1), ox = ctx.coord(2),
              oc = ctx.coord(3);
    const int ic = oc / ci.channelMult;
    const int q = oc % ci.channelMult;
    float acc = 0;
    for (int fy = 0; fy < ci.filterH; ++fy) {
      const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
      if (iy < 0 || iy >= ci.inH) continue;
      for (int fx = 0; fx < ci.filterW; ++fx) {
        const int ix = ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
        if (ix < 0 || ix >= ci.inW) continue;
        const std::array<int, 4> xc{b, iy, ix, ic};
        const std::array<int, 4> fc{fy, fx, ic, q};
        acc += ctx.get(0, std::span<const int>(xc)) *
               ctx.get(1, std::span<const int>(fc));
      }
    }
    ctx.setOutput(acc);
  };
  const double macs = static_cast<double>(ci.filterH) * ci.filterW;
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 2.0 * macs * fetchScale();
  r.cost.flopsPerInvocation = 2.0 * macs;
  r.cost.reusable = true;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::depthwiseConv2dBackpropInput(const TensorSpec& dy,
                                                  const TensorSpec& filter,
                                                  const Conv2DInfo& ci) {
  const Shape outShape{ci.batch, ci.inH, ci.inW, ci.inC};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "depthwiseConv2dBackpropInput";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(dy), input(filter)};
  r.squeeze = opts_.squeeze;
  r.main = [ci](ShaderContext& ctx) {
    const int b = ctx.coord(0), iy = ctx.coord(1), ix = ctx.coord(2),
              ic = ctx.coord(3);
    float acc = 0;
    for (int fy = 0; fy < ci.filterH; ++fy) {
      const int oyNum = iy + ci.padTop - fy * ci.dilationH;
      if (oyNum % ci.strideH != 0) continue;
      const int oy = oyNum / ci.strideH;
      if (oy < 0 || oy >= ci.outH) continue;
      for (int fx = 0; fx < ci.filterW; ++fx) {
        const int oxNum = ix + ci.padLeft - fx * ci.dilationW;
        if (oxNum % ci.strideW != 0) continue;
        const int ox = oxNum / ci.strideW;
        if (ox < 0 || ox >= ci.outW) continue;
        for (int q = 0; q < ci.channelMult; ++q) {
          const std::array<int, 4> dyc{b, oy, ox, ic * ci.channelMult + q};
          const std::array<int, 4> fc{fy, fx, ic, q};
          acc += ctx.get(0, std::span<const int>(dyc)) *
                 ctx.get(1, std::span<const int>(fc));
        }
      }
    }
    ctx.setOutput(acc);
  };
  const double cover =
      std::ceil(static_cast<double>(ci.filterH) / ci.strideH) *
      std::ceil(static_cast<double>(ci.filterW) / ci.strideW);
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 2.0 * cover * ci.channelMult * fetchScale();
  r.cost.flopsPerInvocation = 2.0 * cover * ci.channelMult;
  r.cost.reusable = true;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::depthwiseConv2dBackpropFilter(const TensorSpec& x,
                                                   const TensorSpec& dy,
                                                   const Conv2DInfo& ci) {
  const Shape outShape{ci.filterH, ci.filterW, ci.inC, ci.channelMult};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "depthwiseConv2dBackpropFilter";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x), input(dy)};
  r.squeeze = opts_.squeeze;
  r.main = [ci](ShaderContext& ctx) {
    const int fy = ctx.coord(0), fx = ctx.coord(1), ic = ctx.coord(2),
              q = ctx.coord(3);
    float acc = 0;
    for (int b = 0; b < ci.batch; ++b) {
      for (int oy = 0; oy < ci.outH; ++oy) {
        const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
        if (iy < 0 || iy >= ci.inH) continue;
        for (int ox = 0; ox < ci.outW; ++ox) {
          const int ix = ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
          if (ix < 0 || ix >= ci.inW) continue;
          const std::array<int, 4> xc{b, iy, ix, ic};
          const std::array<int, 4> dyc{b, oy, ox, ic * ci.channelMult + q};
          acc += ctx.get(0, std::span<const int>(xc)) *
                 ctx.get(1, std::span<const int>(dyc));
        }
      }
    }
    ctx.setOutput(acc);
  };
  const double spatial = static_cast<double>(ci.batch) * ci.outH * ci.outW;
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 2.0 * spatial * fetchScale();
  r.cost.flopsPerInvocation = 2.0 * spatial;
  r.cost.reusable = true;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::pool2d(PoolMode mode, const TensorSpec& x,
                            const Pool2DInfo& pi) {
  const Shape outShape{pi.batch, pi.outH, pi.outW, pi.channels};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = mode == PoolMode::kMax ? "maxPool" : "avgPool";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  r.main = [mode, pi](ShaderContext& ctx) {
    const int b = ctx.coord(0), oy = ctx.coord(1), ox = ctx.coord(2),
              c = ctx.coord(3);
    float acc = mode == PoolMode::kMax ? -kInf : 0.f;
    int count = 0;
    for (int fy = 0; fy < pi.filterH; ++fy) {
      const int iy = oy * pi.strideH - pi.padTop + fy;
      if (iy < 0 || iy >= pi.inH) continue;
      for (int fx = 0; fx < pi.filterW; ++fx) {
        const int ix = ox * pi.strideW - pi.padLeft + fx;
        if (ix < 0 || ix >= pi.inW) continue;
        const std::array<int, 4> xc{b, iy, ix, c};
        const float v = ctx.get(0, std::span<const int>(xc));
        if (mode == PoolMode::kMax) {
          acc = std::max(acc, v);
        } else {
          acc += v;
        }
        ++count;
      }
    }
    ctx.setOutput(mode == PoolMode::kMax
                      ? acc
                      : acc / static_cast<float>(std::max(count, 1)));
  };
  const double window = static_cast<double>(pi.filterH) * pi.filterW;
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = window * fetchScale();
  r.cost.flopsPerInvocation = window;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::maxPoolBackprop(const TensorSpec& dy,
                                     const TensorSpec& x,
                                     const Pool2DInfo& pi) {
  const Shape outShape{pi.batch, pi.inH, pi.inW, pi.channels};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "maxPoolBackprop";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(dy), input(x)};
  r.squeeze = opts_.squeeze;
  r.main = [pi](ShaderContext& ctx) {
    const int b = ctx.coord(0), iy = ctx.coord(1), ix = ctx.coord(2),
              c = ctx.coord(3);
    float acc = 0;
    // Visit every window covering (iy, ix); credit dy when this position is
    // the window's (first) argmax, recomputed from x.
    for (int fy = 0; fy < pi.filterH; ++fy) {
      const int oyNum = iy + pi.padTop - fy;
      if (oyNum % pi.strideH != 0) continue;
      const int oy = oyNum / pi.strideH;
      if (oy < 0 || oy >= pi.outH) continue;
      for (int fx = 0; fx < pi.filterW; ++fx) {
        const int oxNum = ix + pi.padLeft - fx;
        if (oxNum % pi.strideW != 0) continue;
        const int ox = oxNum / pi.strideW;
        if (ox < 0 || ox >= pi.outW) continue;
        float best = -kInf;
        int bestIy = -1, bestIx = -1;
        for (int wy = 0; wy < pi.filterH; ++wy) {
          const int yy = oy * pi.strideH - pi.padTop + wy;
          if (yy < 0 || yy >= pi.inH) continue;
          for (int wx = 0; wx < pi.filterW; ++wx) {
            const int xx = ox * pi.strideW - pi.padLeft + wx;
            if (xx < 0 || xx >= pi.inW) continue;
            const std::array<int, 4> xc{b, yy, xx, c};
            const float v = ctx.get(1, std::span<const int>(xc));
            if (v > best) {
              best = v;
              bestIy = yy;
              bestIx = xx;
            }
          }
        }
        if (bestIy == iy && bestIx == ix) {
          const std::array<int, 4> dyc{b, oy, ox, c};
          acc += ctx.get(0, std::span<const int>(dyc));
        }
      }
    }
    ctx.setOutput(acc);
  };
  const double window = static_cast<double>(pi.filterH) * pi.filterW;
  const double cover = std::ceil(window / (pi.strideH * pi.strideW));
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = cover * (window + 1) * fetchScale();
  r.cost.flopsPerInvocation = cover * (window + 1);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::avgPoolBackprop(const TensorSpec& dy,
                                     const Pool2DInfo& pi) {
  const Shape outShape{pi.batch, pi.inH, pi.inW, pi.channels};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "avgPoolBackprop";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(dy)};
  r.squeeze = opts_.squeeze;
  r.main = [pi](ShaderContext& ctx) {
    const int b = ctx.coord(0), iy = ctx.coord(1), ix = ctx.coord(2),
              c = ctx.coord(3);
    float acc = 0;
    for (int fy = 0; fy < pi.filterH; ++fy) {
      const int oyNum = iy + pi.padTop - fy;
      if (oyNum % pi.strideH != 0) continue;
      const int oy = oyNum / pi.strideH;
      if (oy < 0 || oy >= pi.outH) continue;
      for (int fx = 0; fx < pi.filterW; ++fx) {
        const int oxNum = ix + pi.padLeft - fx;
        if (oxNum % pi.strideW != 0) continue;
        const int ox = oxNum / pi.strideW;
        if (ox < 0 || ox >= pi.outW) continue;
        // Forward divides by the count of in-bounds cells of the window.
        int count = 0;
        for (int wy = 0; wy < pi.filterH; ++wy) {
          const int yy = oy * pi.strideH - pi.padTop + wy;
          if (yy < 0 || yy >= pi.inH) continue;
          for (int wx = 0; wx < pi.filterW; ++wx) {
            const int xx = ox * pi.strideW - pi.padLeft + wx;
            if (xx >= 0 && xx < pi.inW) ++count;
          }
        }
        const std::array<int, 4> dyc{b, oy, ox, c};
        acc += ctx.get(0, std::span<const int>(dyc)) /
               static_cast<float>(std::max(count, 1));
      }
    }
    ctx.setOutput(acc);
  };
  const double window = static_cast<double>(pi.filterH) * pi.filterW;
  const double cover = std::ceil(window / (pi.strideH * pi.strideW));
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = cover * fetchScale();
  r.cost.flopsPerInvocation = cover * (window + 2);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::reduce(ReduceOp op, const TensorSpec& x,
                            std::size_t outer, std::size_t inner) {
  const Shape outShape{static_cast<int>(outer)};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "reduce";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  r.main = [op, inner](ShaderContext& ctx) {
    const std::size_t base = ctx.outFlat() * inner;
    float acc;
    switch (op) {
      case ReduceOp::kSum:
      case ReduceOp::kMean: {
        acc = 0;
        for (std::size_t i = 0; i < inner; ++i) acc += ctx.getFlat(0, base + i);
        if (op == ReduceOp::kMean) acc /= static_cast<float>(inner);
        break;
      }
      case ReduceOp::kProd: {
        acc = 1;
        for (std::size_t i = 0; i < inner; ++i) acc *= ctx.getFlat(0, base + i);
        break;
      }
      case ReduceOp::kMax: {
        acc = -kInf;
        for (std::size_t i = 0; i < inner; ++i) {
          acc = std::max(acc, ctx.getFlat(0, base + i));
        }
        break;
      }
      case ReduceOp::kMin: {
        acc = kInf;
        for (std::size_t i = 0; i < inner; ++i) {
          acc = std::min(acc, ctx.getFlat(0, base + i));
        }
        break;
      }
      case ReduceOp::kAny: {
        acc = 0;
        for (std::size_t i = 0; i < inner; ++i) {
          if (ctx.getFlat(0, base + i) != 0) {
            acc = 1;
            break;
          }
        }
        break;
      }
      case ReduceOp::kAll: {
        acc = 1;
        for (std::size_t i = 0; i < inner; ++i) {
          if (ctx.getFlat(0, base + i) == 0) {
            acc = 0;
            break;
          }
        }
        break;
      }
      default:
        acc = 0;
    }
    ctx.setOutput(acc);
  };
  r.cost.invocations = outer;
  r.cost.fetchesPerInvocation = static_cast<double>(inner) * fetchScale();
  r.cost.flopsPerInvocation = static_cast<double>(inner);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::arg(ArgOp op, const TensorSpec& x, std::size_t outer,
                         std::size_t inner) {
  const Shape outShape{static_cast<int>(outer)};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "arg";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  r.main = [op, inner](ShaderContext& ctx) {
    const std::size_t base = ctx.outFlat() * inner;
    std::size_t best = 0;
    float bestVal = ctx.getFlat(0, base);
    for (std::size_t i = 1; i < inner; ++i) {
      const float v = ctx.getFlat(0, base + i);
      const bool better = op == ArgOp::kArgMax ? v > bestVal : v < bestVal;
      if (better) {
        best = i;
        bestVal = v;
      }
    }
    ctx.setOutput(static_cast<float>(best));
  };
  r.cost.invocations = outer;
  r.cost.fetchesPerInvocation = static_cast<double>(inner) * fetchScale();
  r.cost.flopsPerInvocation = static_cast<double>(inner);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::transpose(const TensorSpec& x, std::span<const int> perm,
                               const Shape& outShape) {
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "transpose";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  const std::vector<int> p(perm.begin(), perm.end());
  const int rank = outShape.rank();
  r.main = [p, rank](ShaderContext& ctx) {
    std::array<int, 8> inCoords{};
    for (int d = 0; d < rank; ++d) {
      inCoords[static_cast<std::size_t>(p[static_cast<std::size_t>(d)])] =
          ctx.coord(d);
    }
    ctx.setOutput(ctx.get(
        0, std::span<const int>(inCoords.data(),
                                static_cast<std::size_t>(rank))));
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 1;
  r.cost.flopsPerInvocation = idxOps(x.shape);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::slice(const TensorSpec& x, std::span<const int> begin,
                           const Shape& outShape) {
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "slice";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  const std::vector<int> b(begin.begin(), begin.end());
  const int rank = outShape.rank();
  r.main = [b, rank](ShaderContext& ctx) {
    std::array<int, 8> c{};
    for (int d = 0; d < rank; ++d) {
      c[static_cast<std::size_t>(d)] =
          ctx.coord(d) + b[static_cast<std::size_t>(d)];
    }
    ctx.setOutput(ctx.get(
        0, std::span<const int>(c.data(), static_cast<std::size_t>(rank))));
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 1;
  r.cost.flopsPerInvocation = idxOps(x.shape);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::concat(std::span<const TensorSpec> xs, int axis,
                            const Shape& outShape) {
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "concat";
  r.outputShape = outShape;
  r.output = outTex;
  std::vector<int> axisOffsets;
  int offset = 0;
  for (const auto& spec : xs) {
    r.inputs.push_back(input(spec));
    axisOffsets.push_back(offset);
    offset += spec.shape[axis];
  }
  r.squeeze = opts_.squeeze;
  const int rank = outShape.rank();
  const int nInputs = static_cast<int>(xs.size());
  r.main = [axisOffsets, axis, rank, nInputs](ShaderContext& ctx) {
    const int pos = ctx.coord(axis);
    int which = nInputs - 1;
    for (int i = 1; i < nInputs; ++i) {
      if (pos < axisOffsets[static_cast<std::size_t>(i)]) {
        which = i - 1;
        break;
      }
    }
    std::array<int, 8> c{};
    for (int d = 0; d < rank; ++d) c[static_cast<std::size_t>(d)] = ctx.coord(d);
    c[static_cast<std::size_t>(axis)] -=
        axisOffsets[static_cast<std::size_t>(which)];
    ctx.setOutput(ctx.get(
        which,
        std::span<const int>(c.data(), static_cast<std::size_t>(rank))));
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 1;
  r.cost.flopsPerInvocation = idxOps(outShape) + nInputs;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::pad(const TensorSpec& x,
                         std::span<const std::pair<int, int>> paddings,
                         float constantValue, const Shape& outShape) {
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "pad";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  const std::vector<std::pair<int, int>> pads(paddings.begin(),
                                              paddings.end());
  const Shape xShape = x.shape;
  const int rank = outShape.rank();
  r.main = [pads, xShape, constantValue, rank](ShaderContext& ctx) {
    std::array<int, 8> c{};
    for (int d = 0; d < rank; ++d) {
      const int v = ctx.coord(d) - pads[static_cast<std::size_t>(d)].first;
      if (v < 0 || v >= xShape[d]) {
        ctx.setOutput(constantValue);
        return;
      }
      c[static_cast<std::size_t>(d)] = v;
    }
    ctx.setOutput(ctx.get(
        0, std::span<const int>(c.data(), static_cast<std::size_t>(rank))));
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 1;
  r.cost.flopsPerInvocation = idxOps(xShape) + rank;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::gather(const TensorSpec& x, const TensorSpec& indices,
                            int axis, const Shape& outShape) {
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "gather";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x), input(indices)};
  r.squeeze = opts_.squeeze;
  const Shape xShape = x.shape;
  const int rank = xShape.rank();
  const int nIndices = static_cast<int>(indices.shape.size());
  r.main = [xShape, axis, rank, nIndices](ShaderContext& ctx) {
    (void)nIndices;
    std::array<int, 8> c{};
    for (int d = 0; d < rank; ++d) c[static_cast<std::size_t>(d)] = ctx.coord(d);
    const auto idx = static_cast<int>(
        ctx.getFlat(1, static_cast<std::size_t>(ctx.coord(axis))));
    c[static_cast<std::size_t>(axis)] = idx;
    ctx.setOutput(ctx.get(
        0, std::span<const int>(c.data(), static_cast<std::size_t>(rank))));
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 2;
  r.cost.flopsPerInvocation = idxOps(xShape);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::tile(const TensorSpec& x, std::span<const int> reps,
                          const Shape& outShape) {
  (void)reps;
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "tile";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  const Shape xShape = x.shape;
  const int rank = outShape.rank();
  r.main = [xShape, rank](ShaderContext& ctx) {
    std::array<int, 8> c{};
    for (int d = 0; d < rank; ++d) {
      c[static_cast<std::size_t>(d)] = ctx.coord(d) % xShape[d];
    }
    ctx.setOutput(ctx.get(
        0, std::span<const int>(c.data(), static_cast<std::size_t>(rank))));
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 1;
  r.cost.flopsPerInvocation = idxOps(xShape) + rank;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::reverse(const TensorSpec& x, std::span<const int> axes) {
  const Shape outShape = x.shape;
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "reverse";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  const Shape xShape = x.shape;
  const int rank = outShape.rank();
  std::array<bool, 8> flip{};
  for (int a : axes) flip[static_cast<std::size_t>(a)] = true;
  r.main = [xShape, rank, flip](ShaderContext& ctx) {
    std::array<int, 8> c{};
    for (int d = 0; d < rank; ++d) {
      c[static_cast<std::size_t>(d)] =
          flip[static_cast<std::size_t>(d)] ? xShape[d] - 1 - ctx.coord(d)
                                            : ctx.coord(d);
    }
    ctx.setOutput(ctx.get(
        0, std::span<const int>(c.data(), static_cast<std::size_t>(rank))));
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 1;
  r.cost.flopsPerInvocation = idxOps(xShape) + rank;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::resizeBilinear(const TensorSpec& x, int newH, int newW,
                                    bool alignCorners) {
  const int batch = x.shape[0], inH = x.shape[1], inW = x.shape[2],
            c = x.shape[3];
  (void)batch;
  const Shape outShape{x.shape[0], newH, newW, c};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "resizeBilinear";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  const float hScale =
      alignCorners && newH > 1
          ? static_cast<float>(inH - 1) / static_cast<float>(newH - 1)
          : static_cast<float>(inH) / static_cast<float>(newH);
  const float wScale =
      alignCorners && newW > 1
          ? static_cast<float>(inW - 1) / static_cast<float>(newW - 1)
          : static_cast<float>(inW) / static_cast<float>(newW);
  r.main = [=](ShaderContext& ctx) {
    const int b = ctx.coord(0), y = ctx.coord(1), xo = ctx.coord(2),
              ch = ctx.coord(3);
    const float srcY = alignCorners ? y * hScale : (y + 0.5f) * hScale - 0.5f;
    const float cy = std::clamp(srcY, 0.f, static_cast<float>(inH - 1));
    const int y0 = static_cast<int>(std::floor(cy));
    const int y1 = std::min(y0 + 1, inH - 1);
    const float fy = cy - static_cast<float>(y0);
    const float srcX =
        alignCorners ? xo * wScale : (xo + 0.5f) * wScale - 0.5f;
    const float cx = std::clamp(srcX, 0.f, static_cast<float>(inW - 1));
    const int x0 = static_cast<int>(std::floor(cx));
    const int x1 = std::min(x0 + 1, inW - 1);
    const float fx = cx - static_cast<float>(x0);
    auto at = [&](int yy, int xx) {
      const std::array<int, 4> cc{b, yy, xx, ch};
      return ctx.get(0, std::span<const int>(cc));
    };
    const float top = at(y0, x0) * (1 - fx) + at(y0, x1) * fx;
    const float bot = at(y1, x0) * (1 - fx) + at(y1, x1) * fx;
    ctx.setOutput(top * (1 - fy) + bot * fy);
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 4;
  r.cost.flopsPerInvocation = 16 + idxOps(x.shape);
  run(std::move(r));
  return id;
}

DataId WebGLBackend::oneHot(const TensorSpec& indices, int depth,
                            float onValue, float offValue) {
  const Shape outShape{static_cast<int>(indices.shape.size()), depth};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "oneHot";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(indices)};
  r.squeeze = opts_.squeeze;
  r.main = [onValue, offValue](ShaderContext& ctx) {
    const auto idx = static_cast<int>(
        ctx.getFlat(0, static_cast<std::size_t>(ctx.coord(0))));
    ctx.setOutput(idx == ctx.coord(1) ? onValue : offValue);
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = 1;
  r.cost.flopsPerInvocation = 2;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::fill(std::size_t n, float value) {
  const Shape outShape{static_cast<int>(n)};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "fill";
  r.outputShape = outShape;
  r.output = outTex;
  r.squeeze = opts_.squeeze;
  r.main = [value](ShaderContext& ctx) { ctx.setOutput(value); };
  r.cost.invocations = elemInvocations(n);
  r.cost.fetchesPerInvocation = 0;
  r.cost.flopsPerInvocation = 1;
  run(std::move(r));
  return id;
}

namespace {
/// Rank-selection shader body shared by the two topk kernels: finds the
/// element of rank `want` (0 = largest) in a row by counting, per output —
/// the shared-memory-free formulation a fragment shader is limited to.
struct RankSelect {
  std::size_t inner;
  int k;
  /// Returns (value, index) of the rank-(flat % k) element of row flat/k.
  std::pair<float, std::size_t> operator()(const ShaderContext& ctx) const {
    const std::size_t flat = ctx.outFlat();
    const std::size_t o = flat / static_cast<std::size_t>(k);
    const std::size_t want = flat % static_cast<std::size_t>(k);
    const std::size_t base = o * inner;
    for (std::size_t j = 0; j < inner; ++j) {
      const float e = ctx.getFlat(0, base + j);
      std::size_t rank = 0;
      for (std::size_t m = 0; m < inner; ++m) {
        const float v = ctx.getFlat(0, base + m);
        if (v > e || (v == e && m < j)) ++rank;
      }
      if (rank == want) return {e, j};
    }
    return {0.f, 0};  // unreachable for valid inputs
  }
};
}  // namespace

DataId WebGLBackend::topkValues(const TensorSpec& x, std::size_t outer,
                                std::size_t inner, int k) {
  const Shape outShape{static_cast<int>(outer), k};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "topkValues";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  const RankSelect select{inner, k};
  r.main = [select](ShaderContext& ctx) { ctx.setOutput(select(ctx).first); };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation =
      static_cast<double>(inner) * static_cast<double>(inner) * fetchScale();
  r.cost.flopsPerInvocation = static_cast<double>(inner) * inner;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::topkIndices(const TensorSpec& x, std::size_t outer,
                                 std::size_t inner, int k) {
  const Shape outShape{static_cast<int>(outer), k};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "topkIndices";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  const RankSelect select{inner, k};
  r.main = [select](ShaderContext& ctx) {
    ctx.setOutput(static_cast<float>(select(ctx).second));
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation =
      static_cast<double>(inner) * static_cast<double>(inner) * fetchScale();
  r.cost.flopsPerInvocation = static_cast<double>(inner) * inner;
  run(std::move(r));
  return id;
}

DataId WebGLBackend::cumsum(const TensorSpec& x, std::size_t outer,
                            std::size_t inner, bool exclusive, bool reverse) {
  const Shape outShape{static_cast<int>(outer), static_cast<int>(inner)};
  auto [id, outTex] = makeOutput(outShape);
  ShaderRun r;
  r.name = "cumsum";
  r.outputShape = outShape;
  r.output = outTex;
  r.inputs = {input(x)};
  r.squeeze = opts_.squeeze;
  r.main = [inner, exclusive, reverse](ShaderContext& ctx) {
    const std::size_t flat = ctx.outFlat();
    const std::size_t o = flat / inner;
    const std::size_t i = flat % inner;
    const std::size_t base = o * inner;
    float acc = 0;
    // Position i sums the prefix (or suffix when reversed); exclusive
    // drops its own element — each output independent, shader style.
    for (std::size_t j = 0; j < inner; ++j) {
      const bool include =
          reverse ? (exclusive ? j > i : j >= i) : (exclusive ? j < i : j <= i);
      if (include) acc += ctx.getFlat(0, base + j);
    }
    ctx.setOutput(acc);
  };
  r.cost.invocations = outShape.size();
  r.cost.fetchesPerInvocation = static_cast<double>(inner) * fetchScale() / 2;
  r.cost.flopsPerInvocation = static_cast<double>(inner) / 2;
  run(std::move(r));
  return id;
}

// ------------------------------------------------------------- registration

void registerBackend() {
  Engine::get().registerBackend(
      "webgl", [] { return std::make_unique<WebGLBackend>(); },
      /*priority=*/3);
}

void registerBackendVariant(const std::string& name, WebGLOptions opts,
                            int priority) {
  Engine::get().registerBackend(
      name, [opts] { return std::make_unique<WebGLBackend>(opts); }, priority);
}

}  // namespace tfjs::backends::webgl
