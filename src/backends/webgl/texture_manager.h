// TextureManager: texture recycling and GPU→CPU paging (paper section 4.1.2).
//
// "Disposing and re-allocating WebGL textures is relatively expensive, so we
//  don't release memory when a tensor gets disposed. Instead, we mark the
//  texture for reuse." — released textures go to a free list keyed by
// (physical shape, config) and are recycled when a same-shaped allocation
// arrives, which repeated passes of the same model hit constantly.
//
// Paging: when total GPU bytes exceed a budget (the paper estimates it from
// the screen size), least-recently-used live textures are paged to the CPU
// and transparently restored on next use.
//
// Thread-safety: the manager is called from the main thread (acquire/release)
// and from the GPGPU worker thread (recency touches, page-in); a mutex
// protects all state.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "backends/webgl/texture.h"

namespace tfjs::backends::webgl {

struct TextureManagerStats {
  std::size_t texturesCreated = 0;   ///< fresh allocations
  std::size_t texturesRecycled = 0;  ///< served from the free list
  std::size_t texturesReleased = 0;
  std::size_t pageOuts = 0;
  std::size_t pageIns = 0;
  std::size_t gpuBytes = 0;       ///< resident GPU bytes (live + free lists)
  std::size_t peakGpuBytes = 0;
};

class TextureManager {
 public:
  explicit TextureManager(std::size_t gpuBudgetBytes, bool recycle = true)
      : budget_(gpuBudgetBytes), recycle_(recycle) {}

  /// Returns a texture of the given physical shape/config — recycled when a
  /// compatible free texture exists, freshly allocated otherwise. May page
  /// out LRU textures to stay under budget.
  std::shared_ptr<GlTexture> acquire(PhysShape phys, TexConfig config);

  /// Marks a texture reusable (called when the owning tensor is disposed).
  void release(const std::shared_ptr<GlTexture>& tex);

  /// Pins a texture for the duration of a device command: pages it in if
  /// needed, stamps recency, and protects it from page-out. Must be paired
  /// with unpin(). Called only from the GPU worker thread, which is also the
  /// only thread that triggers page-outs — so an executing command's
  /// textures can never be evicted under it.
  void pin(const std::shared_ptr<GlTexture>& tex);
  void unpin(const std::shared_ptr<GlTexture>& tex);

  void setRecycling(bool on) { recycle_ = on; }
  void setBudget(std::size_t bytes) { budget_ = bytes; }

  TextureManagerStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  using Key = std::tuple<int, int, bool, int>;  // rows, cols, packed, precision
  static Key keyOf(const PhysShape& p, const TexConfig& c) {
    return {p.rows, p.cols, c.packed, static_cast<int>(c.precision)};
  }

  void maybePageOutLocked();

  mutable std::mutex mu_;
  std::size_t budget_;
  bool recycle_;
  std::map<Key, std::vector<std::shared_ptr<GlTexture>>> freeLists_;
  /// All live (acquired, not released) textures, for LRU scans.
  std::list<std::weak_ptr<GlTexture>> live_;
  std::uint64_t clock_ = 0;
  TextureManagerStats stats_;
};

}  // namespace tfjs::backends::webgl
