// DeviceModel: the discrete-event GPU cost model (DESIGN.md substitution for
// real GPU hardware).
//
// Each shader dispatch is costed as
//     dispatchOverheadMs
//   + max(flops / flopsPerMs, fetchBytes / bytesPerMs, fetches / fetchesPerMs)
// with constants taken from public hardware specifications — NOT fitted to
// the paper's Table 1. The CUDA-class model additionally credits on-chip
// reuse (shared memory / workgroups) on data-reusing programs, which is the
// paper's own explanation (section 3.9) for the 3–10x WebGL-vs-CUDA gap:
// WebGL fragment shaders must refetch operands from texture memory because
// they have "no shared memory access".
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

namespace tfjs::backends::webgl {

/// Per-dispatch cost declaration produced by each kernel builder.
struct ProgramCost {
  std::size_t invocations = 0;        ///< shader main() executions
  double flopsPerInvocation = 0;      ///< arithmetic per invocation
  double fetchesPerInvocation = 0;    ///< texel fetches per invocation
  /// True for programs with heavy operand reuse across invocations
  /// (matmul/conv): a GPGPU framework with shared memory can tile them.
  bool reusable = false;
};

struct DeviceModel {
  std::string name;
  double gflops = 0;          ///< peak fp32 throughput
  double gbytesPerSec = 0;    ///< memory bandwidth
  double gtexelsPerSec = 0;   ///< texture sampler throughput
  double dispatchOverheadMs = 0;  ///< per draw-call / kernel-launch cost
  double readbackLatencyMs = 0;   ///< fixed gl.readPixels stall
  /// >1 when the programming model exposes shared memory; divides the fetch
  /// and byte traffic of reusable programs (tiling reuse factor).
  double sharedMemoryReuse = 1.0;
  /// Fraction of texel fetches served by the GPU's texture cache rather
  /// than DRAM (neighbouring shader invocations sample overlapping data).
  /// Applies to the bandwidth term only — sampler instruction throughput is
  /// paid per fetch regardless of where the data comes from.
  double textureCacheHitRate = 0.85;

  double timeMs(const ProgramCost& c, bool packedTexel) const {
    const double inv = static_cast<double>(c.invocations);
    const double flops = inv * c.flopsPerInvocation;
    double fetches = inv * c.fetchesPerInvocation;
    // A packed RGBA texel carries 16 bytes, an unpacked R32F texel 4 — the
    // same bytes per useful value; packing's win is the fetch count.
    double bytes = fetches * (packedTexel ? 16.0 : 4.0);
    if (c.reusable && sharedMemoryReuse > 1.0) {
      fetches /= sharedMemoryReuse;
      bytes /= sharedMemoryReuse;
    }
    bytes *= 1.0 - textureCacheHitRate;  // DRAM sees only cache misses
    const double computeMs = flops / (gflops * 1e6);
    const double bandwidthMs = bytes / (gbytesPerSec * 1e6);
    const double samplerMs = fetches / (gtexelsPerSec * 1e6);
    return dispatchOverheadMs +
           std::max({computeMs, bandwidthMs, samplerMs});
  }
};

/// Intel Iris Pro (MacBook Pro 2014) — the paper's laptop WebGL entry.
inline DeviceModel irisProWebGL() {
  return DeviceModel{"webgl(Intel Iris Pro)", 832.0, 25.6, 20.0, 0.10, 1.0,
                     1.0, 0.85};
}

/// NVIDIA GTX 1080 driven through WebGL (no workgroups / shared memory).
inline DeviceModel gtx1080WebGL() {
  return DeviceModel{"webgl(GTX 1080)", 8873.0, 320.0, 277.0, 0.05, 0.5, 1.0,
                     0.85};
}

/// NVIDIA GTX 1080 driven through CUDA (the paper's Node.js CUDA entry):
/// same silicon, lower launch overhead, shared-memory tiling.
inline DeviceModel gtx1080Cuda() {
  return DeviceModel{"cuda(GTX 1080)", 8873.0, 320.0, 277.0, 0.005, 0.2, 8.0,
                     0.85};
}

}  // namespace tfjs::backends::webgl
