#include "backends/webgl/texture_manager.h"

#include <algorithm>

#include "core/metrics.h"
#include "core/trace.h"

namespace tfjs::backends::webgl {

std::shared_ptr<GlTexture> TextureManager::acquire(PhysShape phys,
                                                   TexConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<GlTexture> tex;
  if (recycle_) {
    auto it = freeLists_.find(keyOf(phys, config));
    if (it != freeLists_.end() && !it->second.empty()) {
      tex = std::move(it->second.back());
      it->second.pop_back();
      ++stats_.texturesRecycled;
      static metrics::Counter& recyclerHits =
          metrics::Registry::get().counter("webgl.recycler_hits");
      recyclerHits.inc();
      if (tex->pagedOut()) {
        tex->pageIn();
        ++stats_.pageIns;
        metrics::Registry::get().counter("webgl.page_ins").inc();
        stats_.gpuBytes += tex->gpuBytes();
      }
    }
  }
  if (!tex) {
    tex = std::make_shared<GlTexture>(phys, config);
    ++stats_.texturesCreated;
    static metrics::Counter& recyclerMisses =
        metrics::Registry::get().counter("webgl.recycler_misses");
    recyclerMisses.inc();
    stats_.gpuBytes += tex->gpuBytes();
    stats_.peakGpuBytes = std::max(stats_.peakGpuBytes, stats_.gpuBytes);
  }
  tex->lastUse = ++clock_;
  if (!tex->inLiveList) {
    tex->inLiveList = true;
    live_.push_back(tex);
  }
  if (live_.size() > 4096) {
    live_.remove_if([](const std::weak_ptr<GlTexture>& w) {
      return w.expired();
    });
  }
  // Page-out decisions happen only on the GPU worker thread (pin()); the
  // main thread only allocates, so it can never evict a texture the worker
  // is reading.
  return tex;
}

void TextureManager::release(const std::shared_ptr<GlTexture>& tex) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.texturesReleased;
  if (recycle_) {
    freeLists_[keyOf(tex->phys(), tex->config())].push_back(tex);
  } else {
    if (!tex->pagedOut()) stats_.gpuBytes -= tex->gpuBytes();
    // dropped: the shared_ptr in queue items / callers keeps it alive until
    // pending GPU work retires, then memory is returned to the host.
  }
  // Live-list entries expire lazily via weak_ptr.
}

void TextureManager::pin(const std::shared_ptr<GlTexture>& tex) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tex->pagedOut()) {
    tex->pageIn();
    ++stats_.pageIns;
    metrics::Registry::get().counter("webgl.page_ins").inc();
    trace::instant("gpu", "page_in");
    stats_.gpuBytes += tex->gpuBytes();
    stats_.peakGpuBytes = std::max(stats_.peakGpuBytes, stats_.gpuBytes);
  }
  tex->lastUse = ++clock_;
  ++tex->pinCount;
  maybePageOutLocked();
}

void TextureManager::unpin(const std::shared_ptr<GlTexture>& tex) {
  std::lock_guard<std::mutex> lock(mu_);
  --tex->pinCount;
}

void TextureManager::maybePageOutLocked() {
  if (stats_.gpuBytes <= budget_) return;
  // Collect live textures, oldest first.
  std::vector<std::shared_ptr<GlTexture>> candidates;
  for (auto it = live_.begin(); it != live_.end();) {
    if (auto sp = it->lock()) {
      candidates.push_back(std::move(sp));
      ++it;
    } else {
      it = live_.erase(it);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a->lastUse < b->lastUse; });
  for (const auto& tex : candidates) {
    if (stats_.gpuBytes <= budget_) break;
    if (tex->pagedOut()) continue;
    if (tex->pinCount > 0) continue;  // in use by the executing command
    tex->pageOut();
    ++stats_.pageOuts;
    metrics::Registry::get().counter("webgl.page_outs").inc();
    trace::instant("gpu", "page_out");
    stats_.gpuBytes -= tex->gpuBytes();
  }
}

}  // namespace tfjs::backends::webgl
