// GlTexture: the simulated WebGL texture that backs a tensor on the
// "webgl-sim" backend (paper section 4.1).
//
// A logical N-D tensor is stored in a physical 2-D texture. In unpacked mode
// each texel holds one value in its red channel (the paper's gl.R32F path);
// in packed mode all four RGBA channels hold consecutive values (the packing
// optimization of section 3.9). Precision is fp32 (Chrome) or fp16 (iOS
// Safari, section 4.1.3) — fp16 textures round every stored value through
// IEEE half precision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tfjs::backends::webgl {

enum class TexPrecision { fp32, fp16 };

struct TexConfig {
  bool packed = false;
  TexPrecision precision = TexPrecision::fp32;

  bool operator==(const TexConfig& o) const {
    return packed == o.packed && precision == o.precision;
  }
};

/// Physical texture extent, in texels.
struct PhysShape {
  int rows = 0;
  int cols = 0;
  bool operator==(const PhysShape& o) const {
    return rows == o.rows && cols == o.cols;
  }
  std::size_t texels() const {
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }
};

class GlTexture {
 public:
  GlTexture(PhysShape phys, TexConfig config)
      : phys_(phys), config_(config) {
    allocate();
  }

  const PhysShape& phys() const { return phys_; }
  const TexConfig& config() const { return config_; }
  int channels() const { return config_.packed ? 4 : 1; }

  /// Values stored per texel row-major, `channels()` floats per texel.
  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// GPU memory footprint in bytes. Unpacked R32F textures allocate one
  /// channel (4 B/texel); packed RGBA allocate four. fp16 halves both.
  std::size_t gpuBytes() const {
    const std::size_t perChannel =
        config_.precision == TexPrecision::fp16 ? 2 : 4;
    return phys_.texels() * static_cast<std::size_t>(channels()) * perChannel;
  }

  // ---- paging state (section 4.1.2) ----
  bool pagedOut() const { return pagedOut_; }
  /// Moves texel data to the CPU-side store and frees the "GPU" copy.
  void pageOut() {
    cpuCopy_ = std::move(data_);
    data_.clear();
    data_.shrink_to_fit();
    pagedOut_ = true;
  }
  /// Restores texel data from the CPU-side store.
  void pageIn() {
    data_ = std::move(cpuCopy_);
    cpuCopy_.clear();
    pagedOut_ = false;
  }

  /// Monotonic recency stamp maintained by the texture manager (for LRU
  /// page-out decisions).
  std::uint64_t lastUse = 0;
  /// Whether the manager already tracks this texture in its live list.
  bool inLiveList = false;
  /// Pinned textures (inputs/outputs of an executing command) are never
  /// paged out. Guarded by the TextureManager mutex.
  int pinCount = 0;

 private:
  void allocate() {
    data_.assign(phys_.texels() * static_cast<std::size_t>(channels()), 0.f);
  }

  PhysShape phys_;
  TexConfig config_;
  std::vector<float> data_;
  std::vector<float> cpuCopy_;
  bool pagedOut_ = false;
};

}  // namespace tfjs::backends::webgl
