#include "backends/webgl/tex_util.h"

#include <cmath>

namespace tfjs::backends::webgl::tex_util {

PhysShape physShapeForSize(std::size_t elems, bool packed) {
  std::size_t texels = packed ? (elems + 3) / 4 : elems;
  if (texels == 0) texels = 1;
  // Near-square layout capped by the device texture limit.
  auto cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(texels))));
  cols = std::min(cols, kMaxTextureSize);
  const int rows =
      static_cast<int>((texels + static_cast<std::size_t>(cols) - 1) /
                       static_cast<std::size_t>(cols));
  TFJS_ARG_CHECK(rows <= kMaxTextureSize,
                 "Tensor with " << elems
                     << " elements exceeds the simulated device texture limit");
  return PhysShape{rows, cols};
}

PhysShape physShapeForLogical(const Shape& logical, bool packed) {
  if (packed) {
    // Packed textures always use the flat near-square layout: four
    // consecutive logical values share one RGBA texel.
    return physShapeForSize(logical.size(), true);
  }
  const Shape sq = logical.squeezed();
  if (sq.rank() == 0) return PhysShape{1, 1};
  if (sq.rank() == 1 && sq[0] <= kMaxTextureSize) return PhysShape{1, sq[0]};
  if (sq.rank() == 2 && sq[0] <= kMaxTextureSize &&
      sq[1] <= kMaxTextureSize) {
    return PhysShape{sq[0], sq[1]};
  }
  return physShapeForSize(logical.size(), false);
}

}  // namespace tfjs::backends::webgl::tex_util
