// GPGPUContext: the simulated WebGL device of paper sections 4.1 and 4.1.1.
//
// "When the user calls an operation, we enqueue a program onto the GPU
//  command queue ... and immediately return a handle to the resulting tensor
//  despite the computation not being done."
//
// A dedicated worker thread drains the command queue in order (the GPU). The
// main thread enqueues uploads/programs/readbacks and continues immediately —
// so tensor.dataSync() really blocks the caller while tensor.data() really
// lets the caller keep running (Figures 2 and 3). Fences mirror
// gl.fenceSync(): a marker command whose promise resolves when the queue
// reaches it. readPixels mirrors the blocking WebGL readback.
//
// Alongside real execution, a DeviceModel advances a simulated GPU clock per
// program; gpuTimeMs() is the modeled busy time, which time(f) reports as
// kernelMs (the EXT_disjoint_timer_query analogue — excludes upload and
// download, as in the paper's section 3.8).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "backends/webgl/device_model.h"
#include "backends/webgl/shader_compiler.h"
#include "backends/webgl/texture_manager.h"

namespace tfjs::backends::webgl {

struct GpgpuStats {
  std::uint64_t programsRun = 0;
  std::uint64_t uploads = 0;
  std::uint64_t readbacks = 0;
  std::uint64_t fences = 0;
  std::uint64_t texelFetches = 0;   ///< actual fetches issued by shaders
  double gpuTimeMs = 0;             ///< modeled kernel time
  double uploadTimeMs = 0;          ///< modeled transfer time (excluded
  double readbackTimeMs = 0;        ///<   from gpuTimeMs, as in the paper)
};

class GPGPUContext {
 public:
  GPGPUContext(DeviceModel model, TextureManager* textures);
  ~GPGPUContext();

  GPGPUContext(const GPGPUContext&) = delete;
  GPGPUContext& operator=(const GPGPUContext&) = delete;

  /// Enqueues a texture upload (texSubImage2D analogue). Returns at once.
  void enqueueUpload(std::shared_ptr<GlTexture> tex, std::vector<float> values);

  /// Enqueues a shader program execution. Returns at once.
  void enqueueProgram(ShaderRun run);

  /// Inserts a fence (gl.fenceSync analogue) whose future resolves when the
  /// device reaches it.
  std::future<void> insertFence();

  /// Asynchronous readback: resolves with the first `n` logical values of
  /// the texture once all previously enqueued work has retired.
  std::future<std::vector<float>> readbackAsync(std::shared_ptr<GlTexture> tex,
                                                std::size_t n);

  /// Blocking gl.readPixels analogue.
  std::vector<float> readPixels(std::shared_ptr<GlTexture> tex,
                                std::size_t n);

  /// Blocks until the queue is empty.
  void waitForIdle();

  GpgpuStats stats() const;
  const DeviceModel& device() const { return model_; }

 private:
  void workerLoop();
  void post(std::function<void()> cmd);

  DeviceModel model_;
  TextureManager* textures_;

  /// Takes (and clears) the first error raised by a device command, if any.
  std::exception_ptr takeError();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  /// First exception thrown by a command on the worker (a "device error",
  /// e.g. an out-of-bounds texel fetch); delivered at the next readback.
  std::exception_ptr pendingError_;

  GpgpuStats stats_;

  std::thread worker_;
};

}  // namespace tfjs::backends::webgl
