#include "backends/cpu/cpu_backend.h"

#include <algorithm>

#include "core/engine.h"
#include "core/util.h"

namespace tfjs::backends::cpu {

float ScalarVM::run(const std::vector<Instr>& program, float x, float y) {
  float stack[8];
  int sp = 0;
  for (const Instr& ins : program) {
    switch (ins.code) {
      case Instr::Code::kPushX:
        stack[sp++] = x;
        break;
      case Instr::Code::kPushY:
        stack[sp++] = y;
        break;
      case Instr::Code::kPushConst:
        stack[sp++] = ins.imm;
        break;
      case Instr::Code::kBinary: {
        const float b = stack[--sp];
        const float a = stack[--sp];
        stack[sp++] = applyBinary(ins.bop, a, b);
        break;
      }
      case Instr::Code::kUnary: {
        const float a = stack[--sp];
        stack[sp++] = applyUnary(ins.uop, a, ins.imm, ins.imm2);
        break;
      }
      case Instr::Code::kRet:
        return stack[sp - 1];
    }
  }
  return stack[sp - 1];
}

namespace {

std::vector<Instr> binaryProgram(BinaryOp op) {
  return {Instr{Instr::Code::kPushX, op, UnaryOp::kNeg, 0, 0},
          Instr{Instr::Code::kPushY, op, UnaryOp::kNeg, 0, 0},
          Instr{Instr::Code::kBinary, op, UnaryOp::kNeg, 0, 0},
          Instr{Instr::Code::kRet, op, UnaryOp::kNeg, 0, 0}};
}

std::vector<Instr> unaryProgram(UnaryOp op, float alpha, float beta) {
  return {Instr{Instr::Code::kPushX, BinaryOp::kAdd, op, 0, 0},
          Instr{Instr::Code::kUnary, BinaryOp::kAdd, op, alpha, beta},
          Instr{Instr::Code::kRet, BinaryOp::kAdd, op, 0, 0}};
}

const std::vector<Instr>& macProgram() {
  // x * y, accumulated by the caller: the per-MAC interpreted dispatch.
  static const std::vector<Instr> prog = binaryProgram(BinaryOp::kMul);
  return prog;
}

}  // namespace

DataId PlainCpuBackend::binary(BinaryOp op, const TensorSpec& a,
                               const TensorSpec& b, const Shape& outShape) {
  KernelTimer t(kernelMs_, "cpu.binary");
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  const auto prog = binaryProgram(op);
  std::vector<float> out = allocBuffer(outShape.size());
  if (a.shape == outShape && b.shape == outShape) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = ScalarVM::run(prog, av[i], bv[i]);
    }
  } else {
    std::vector<int> coords(static_cast<std::size_t>(outShape.rank()));
    for (std::size_t i = 0; i < out.size(); ++i) {
      util::unravelIndex(i, outShape, coords);
      out[i] = ScalarVM::run(
          prog, av[util::broadcastIndex(coords, a.shape, outShape)],
          bv[util::broadcastIndex(coords, b.shape, outShape)]);
    }
  }
  return store(std::move(out));
}

DataId PlainCpuBackend::unary(UnaryOp op, const TensorSpec& x, float alpha,
                              float beta) {
  KernelTimer t(kernelMs_, "cpu.unary");
  const auto& xv = buf(x.id);
  const auto prog = unaryProgram(op, alpha, beta);
  std::vector<float> out = allocBuffer(xv.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = ScalarVM::run(prog, xv[i], 0);
  }
  return store(std::move(out));
}

DataId PlainCpuBackend::unaryInto(UnaryOp op, const TensorSpec& x,
                                  float alpha, float beta, DataId dst) {
  if (dst != x.id) return unary(op, x, alpha, beta);
  KernelTimer t(kernelMs_, "cpu.unary");
  auto& v = mutableBuf(dst);
  const auto prog = unaryProgram(op, alpha, beta);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = ScalarVM::run(prog, v[i], 0);
  }
  return dst;
}

DataId PlainCpuBackend::binaryInto(BinaryOp op, const TensorSpec& a,
                                   const TensorSpec& b, const Shape& outShape,
                                   DataId dst) {
  if (dst != a.id || !(a.shape == outShape)) {
    return binary(op, a, b, outShape);
  }
  KernelTimer t(kernelMs_, "cpu.binary");
  auto& av = mutableBuf(dst);
  const auto& bv = buf(b.id);
  const auto prog = binaryProgram(op);
  if (b.shape == outShape) {
    for (std::size_t i = 0; i < av.size(); ++i) {
      av[i] = ScalarVM::run(prog, av[i], bv[i]);
    }
  } else {
    std::vector<int> coords(static_cast<std::size_t>(outShape.rank()));
    for (std::size_t i = 0; i < av.size(); ++i) {
      util::unravelIndex(i, outShape, coords);
      av[i] = ScalarVM::run(
          prog, av[i], bv[util::broadcastIndex(coords, b.shape, outShape)]);
    }
  }
  return dst;
}

DataId PlainCpuBackend::matMul(const TensorSpec& a, const TensorSpec& b,
                               bool transposeA, bool transposeB) {
  KernelTimer t(kernelMs_, "cpu.matMul");
  const int bA = a.shape[0], bB = b.shape[0];
  const int m = transposeA ? a.shape[2] : a.shape[1];
  const int k = transposeA ? a.shape[1] : a.shape[2];
  const int n = transposeB ? b.shape[1] : b.shape[2];
  const int batch = std::max(bA, bB);
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  const auto& prog = macProgram();
  std::vector<float> out =
      allocZeroed(static_cast<std::size_t>(batch) * m * n);
  for (int bi = 0; bi < batch; ++bi) {
    const float* A =
        av.data() + static_cast<std::size_t>(bA == 1 ? 0 : bi) * m * k;
    const float* B =
        bv.data() + static_cast<std::size_t>(bB == 1 ? 0 : bi) * k * n;
    float* C = out.data() + static_cast<std::size_t>(bi) * m * n;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        float acc = 0;
        for (int p = 0; p < k; ++p) {
          const float x = transposeA ? A[p * m + i] : A[i * k + p];
          const float y = transposeB ? B[j * k + p] : B[p * n + j];
          acc += ScalarVM::run(prog, x, y);
        }
        C[static_cast<std::size_t>(i) * n + j] = acc;
      }
    }
  }
  return store(std::move(out));
}

DataId PlainCpuBackend::conv2d(const TensorSpec& x, const TensorSpec& filter,
                               const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_, "cpu.conv2d");
  const auto& xv = buf(x.id);
  const auto& fv = buf(filter.id);
  const auto& prog = macProgram();
  std::vector<float> out = allocZeroed(static_cast<std::size_t>(ci.batch) *
                                       ci.outH * ci.outW * ci.outC);
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      for (int ox = 0; ox < ci.outW; ++ox) {
        for (int oc = 0; oc < ci.outC; ++oc) {
          float acc = 0;
          for (int fy = 0; fy < ci.filterH; ++fy) {
            const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
            if (iy < 0 || iy >= ci.inH) continue;
            for (int fx = 0; fx < ci.filterW; ++fx) {
              const int ix = ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
              if (ix < 0 || ix >= ci.inW) continue;
              for (int ic = 0; ic < ci.inC; ++ic) {
                const float xval =
                    xv[((static_cast<std::size_t>(b) * ci.inH + iy) * ci.inW +
                        ix) *
                           ci.inC +
                       ic];
                const float fval =
                    fv[((static_cast<std::size_t>(fy) * ci.filterW + fx) *
                            ci.inC +
                        ic) *
                           ci.outC +
                       oc];
                acc += ScalarVM::run(prog, xval, fval);
              }
            }
          }
          out[((static_cast<std::size_t>(b) * ci.outH + oy) * ci.outW + ox) *
                  ci.outC +
              oc] = acc;
        }
      }
    }
  }
  return store(std::move(out));
}

DataId PlainCpuBackend::depthwiseConv2d(const TensorSpec& x,
                                        const TensorSpec& filter,
                                        const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_, "cpu.depthwiseConv2d");
  const auto& xv = buf(x.id);
  const auto& fv = buf(filter.id);
  const auto& prog = macProgram();
  const int mult = ci.channelMult;
  std::vector<float> out = allocZeroed(static_cast<std::size_t>(ci.batch) *
                                       ci.outH * ci.outW * ci.outC);
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      for (int ox = 0; ox < ci.outW; ++ox) {
        for (int ic = 0; ic < ci.inC; ++ic) {
          for (int q = 0; q < mult; ++q) {
            float acc = 0;
            for (int fy = 0; fy < ci.filterH; ++fy) {
              const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
              if (iy < 0 || iy >= ci.inH) continue;
              for (int fx = 0; fx < ci.filterW; ++fx) {
                const int ix =
                    ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
                if (ix < 0 || ix >= ci.inW) continue;
                const float xval =
                    xv[((static_cast<std::size_t>(b) * ci.inH + iy) * ci.inW +
                        ix) *
                           ci.inC +
                       ic];
                const float fval =
                    fv[((static_cast<std::size_t>(fy) * ci.filterW + fx) *
                            ci.inC +
                        ic) *
                           mult +
                       q];
                acc += ScalarVM::run(prog, xval, fval);
              }
            }
            out[((static_cast<std::size_t>(b) * ci.outH + oy) * ci.outW +
                 ox) *
                    ci.outC +
                ic * mult + q] = acc;
          }
        }
      }
    }
  }
  return store(std::move(out));
}

DataId PlainCpuBackend::reduce(ReduceOp op, const TensorSpec& x,
                               std::size_t outer, std::size_t inner) {
  KernelTimer t(kernelMs_, "cpu.reduce");
  const auto& xv = buf(x.id);
  // Sum-like reductions pay per-element interpreted adds; min/max/any/all
  // reuse the reference path (they are not hot in the paper's workloads).
  if (op != ReduceOp::kSum && op != ReduceOp::kMean) {
    return RefBackend::reduce(op, x, outer, inner);
  }
  static const std::vector<Instr> prog = binaryProgram(BinaryOp::kAdd);
  std::vector<float> out = allocBuffer(outer);
  for (std::size_t o = 0; o < outer; ++o) {
    const float* row = xv.data() + o * inner;
    float acc = 0;
    for (std::size_t i = 0; i < inner; ++i) {
      acc = ScalarVM::run(prog, acc, row[i]);
    }
    out[o] = op == ReduceOp::kMean ? acc / static_cast<float>(inner) : acc;
  }
  return store(std::move(out));
}

void registerBackend() {
  Engine::get().registerBackend(
      "cpu", [] { return std::make_unique<PlainCpuBackend>(); },
      /*priority=*/1);
}

}  // namespace tfjs::backends::cpu
