// PlainCpuBackend: the analogue of the paper's "plain JS" fallback backend.
//
// The upstream plain-JS backend executes math as interpreted per-element
// loops, ~2 orders of magnitude slower than native code (paper Table 1).
// C++ has no interpreter, so we model that cost mechanism honestly: each
// scalar operation of a hot kernel executes through a small stack-based
// bytecode VM (ScalarVM). The work per element is identical to the reference
// backend — only the dispatch cost differs, exactly the difference between
// interpreted and compiled numeric code.
#pragma once

#include <cstdint>
#include <vector>

#include "backends/common/ref_backend.h"

namespace tfjs::backends::cpu {

/// Bytecode executed once per scalar by the plain backend.
struct Instr {
  enum class Code : std::uint8_t {
    kPushX,      ///< push first operand
    kPushY,      ///< push second operand
    kPushConst,  ///< push imm
    kBinary,     ///< pop two, apply bop, push
    kUnary,      ///< pop one, apply uop(alpha=imm, beta=imm2), push
    kRet,        ///< pop and return
  };
  Code code = Code::kRet;
  BinaryOp bop = BinaryOp::kAdd;
  UnaryOp uop = UnaryOp::kNeg;
  float imm = 0;
  float imm2 = 0;
};

/// Interprets a scalar program. Deliberately not inlined so every element
/// pays a real dispatch cost, like an interpreter would.
class ScalarVM {
 public:
  [[gnu::noinline]] static float run(const std::vector<Instr>& program,
                                     float x, float y);
};

class PlainCpuBackend : public RefBackend {
 public:
  std::string name() const override { return "cpu"; }

  DataId binary(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                const Shape& outShape) override;
  DataId unary(UnaryOp op, const TensorSpec& x, float alpha,
               float beta) override;
  // In-place variants still run through the ScalarVM: in-place reuse saves
  // the allocation, never the interpreted per-element cost this backend
  // models. (fusedMatMul/fusedConv2d inherit from RefBackend, whose virtual
  // matMul/conv2d dispatch lands back here, keeping results bit-identical
  // to this backend's unfused chain.)
  DataId unaryInto(UnaryOp op, const TensorSpec& x, float alpha, float beta,
                   DataId dst) override;
  DataId binaryInto(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                    const Shape& outShape, DataId dst) override;
  DataId matMul(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                bool transposeB) override;
  DataId conv2d(const TensorSpec& x, const TensorSpec& filter,
                const Conv2DInfo& info) override;
  DataId depthwiseConv2d(const TensorSpec& x, const TensorSpec& filter,
                         const Conv2DInfo& info) override;
  DataId reduce(ReduceOp op, const TensorSpec& x, std::size_t outer,
                std::size_t inner) override;
};

/// Registers the "cpu" backend with the engine (lowest priority — the
/// universal fallback, as in the paper).
void registerBackend();

}  // namespace tfjs::backends::cpu
