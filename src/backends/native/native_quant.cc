// Int8 quantized GEMM / conv kernels for the native backend.
//
// The hot loop is a u8(activations) x s8(weights) dot product with i32
// accumulators, blocked kRowBlock GEMM rows at a time so each packed weight
// panel is loaded once per row block instead of once per row. Three
// compile-time variants:
//   * AVX-512 VNNI: weights packed as [nPad/16][kPad/4] panels of 16 columns
//     x 4 consecutive k values; one _mm512_dpbusd_epi32 does 64 MACs.
//   * AVX2: weights pre-widened to i16 and packed as [nPad/8][kPad/2] panels
//     of 8 columns x 2 k values; _mm256_madd_epi16 does 16 MACs. (maddubs is
//     avoided: its i16 intermediate saturates at 255*127*2 > 32767.)
//   * scalar: plain loop over row-major codes.
// Every variant accumulates the same exact integers per row (padding
// contributes 0 * w = 0, and blocking never reorders a row's own chain).
//
// The float stages around the dot product — the row min/max scan, the row
// quantizer and the dequantize/bias/activation/requantize epilogue — are
// vectorized here too (AVX-512F), but each vector lane performs exactly the
// IEEE operation sequence of the scalar helpers in
// backends/common/quant_math.h: mul / min / max / cvtps-to-i32 round to
// nearest-even, and the i32 zero-point correction uses 32-bit wraparound
// arithmetic whose result provably fits (see kMaxAccumK). This TU is built
// with -ffp-contract=off (see CMakeLists.txt) so -march=native cannot fuse
// the epilogue's mul+add into an FMA the reference backend doesn't perform.
// Results are therefore bit-identical to RefBackend's scalar oracle at any
// SIMD width and any thread count.
#include <algorithm>
#include <cstring>

#include "backends/common/quant_math.h"
#include "backends/native/native_backend.h"
#include "core/buffer_pool.h"
#include "core/thread_pool.h"
#include "core/util.h"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace tfjs::backends::native {

namespace {
using core::ThreadPool;

#if defined(__AVX512VNNI__) && defined(__AVX512F__)
constexpr int kPanelN = 16;  // columns per VNNI register
constexpr int kPanelK = 4;   // k values per dpbusd quad
#elif defined(__AVX2__)
constexpr int kPanelN = 8;  // columns per madd_epi16 register
constexpr int kPanelK = 2;  // k values per i16 pair
#else
constexpr int kPanelN = 1;
constexpr int kPanelK = 1;
#endif

/// GEMM rows quantized and multiplied together per weight-panel pass. The
/// packed weights stream from cache once per block instead of once per row;
/// each row still owns an independent accumulator chain, so the results are
/// bitwise identical to row-at-a-time execution.
constexpr int kRowBlock = 4;

int roundUp(int v, int to) { return (v + to - 1) / to * to; }

/// qmath::allFinite, SIMD: finite iff the exponent bits are not all ones.
/// A pure predicate, so any evaluation strategy gives the same answer.
bool allFiniteFast(const float* x, std::size_t n) {
#if defined(__AVX512F__)
  const __m512i expMask = _mm512_set1_epi32(0x7f800000);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i bits =
        _mm512_loadu_si512(reinterpret_cast<const void*>(x + i));
    if (_mm512_cmpeq_epi32_mask(_mm512_and_si512(bits, expMask), expMask)) {
      return false;
    }
  }
  return qmath::allFinite(x + i, n - i);
#else
  return qmath::allFinite(x, n);
#endif
}

/// qmath::chooseRowQuant with a SIMD min/max scan. Both seeds are 0 like the
/// scalar scan, and min/max are exact at any association, so the reduced
/// range — and hence the derived RowQuant — is identical.
qmath::RowQuant chooseRowQuantFast(const float* row, int k) {
#if defined(__AVX512F__)
  __m512 lov = _mm512_setzero_ps();
  __m512 hiv = _mm512_setzero_ps();
  int i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m512 v = _mm512_loadu_ps(row + i);
    lov = _mm512_min_ps(lov, v);
    hiv = _mm512_max_ps(hiv, v);
  }
  float lo = _mm512_reduce_min_ps(lov);
  float hi = _mm512_reduce_max_ps(hiv);
  for (; i < k; ++i) {
    lo = std::min(lo, row[i]);
    hi = std::max(hi, row[i]);
  }
  return qmath::chooseFromMinMax(lo, hi);
#else
  return qmath::chooseRowQuant(row, static_cast<std::size_t>(k));
#endif
}

/// qmath::quantizeRow, SIMD: per lane the exact scalar sequence
/// mul(invScale) -> clamp in float -> cvtps (round to nearest even) -> +zp.
/// The clamp guarantees codes land in [0, 255], so the epi32->epi8
/// truncating narrow equals the scalar u8 cast.
void quantizeRowFast(const float* row, int k, const qmath::RowQuant& rq,
                     std::uint8_t* q) {
#if defined(__AVX512F__)
  const __m512 inv = _mm512_set1_ps(rq.invScale);
  const __m512 lov = _mm512_set1_ps(static_cast<float>(-rq.zp));
  const __m512 hiv = _mm512_set1_ps(static_cast<float>(255 - rq.zp));
  const __m512i zpv = _mm512_set1_epi32(rq.zp);
  int i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m512 t = _mm512_min_ps(
        _mm512_max_ps(_mm512_mul_ps(_mm512_loadu_ps(row + i), inv), lov),
        hiv);
    const __m512i c = _mm512_add_epi32(_mm512_cvtps_epi32(t), zpv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                     _mm512_cvtepi32_epi8(c));
  }
  for (; i < k; ++i) q[i] = qmath::quantizeActivation(row[i], rq);
#else
  qmath::quantizeRow(row, static_cast<std::size_t>(k), rq, q);
#endif
}

/// qmath::quantEpilogue over one output row, SIMD. Lane-exact against the
/// scalar helper:
///   * centered = acc - zp*colSum in 32-bit wraparound arithmetic — the
///     true value fits i32 (kMaxAccumK guard), so the wrap is harmless and
///     cvtepi32_ps equals the scalar i64->float conversion;
///   * the float chain mirrors dequantAcc's association exactly:
///     float(centered) * (rq.scale * wScale[j]), then + bias, activation
///     via min/max in applyUnary's operand order, then the requantize
///     mul/clamp/round. No FMA (this TU: -ffp-contract=off).
/// kSigmoid is transcendental, so that row falls back to the scalar loop.
void epilogueRowFast(const std::int32_t* acc, int n,
                     const qmath::RowQuant& rq, const std::int32_t* colSums,
                     const float* wScale, const float* bias,
                     FusedActivation act, const OutQuant* outQ, float* Crow) {
#if defined(__AVX512F__)
  if (act != FusedActivation::kSigmoid) {
    const __m512i zpv = _mm512_set1_epi32(rq.zp);
    const __m512 sv = _mm512_set1_ps(rq.scale);
    const __m512 zero = _mm512_setzero_ps();
    const __m512 six = _mm512_set1_ps(6.f);
    __m512 oinv = zero, olo = zero, ohi = zero;
    __m512i ozp = _mm512_setzero_si512();
    if (outQ != nullptr) {
      oinv = _mm512_set1_ps(1.f / outQ->scale);
      olo = _mm512_set1_ps(static_cast<float>(kInt8Min - outQ->zeroPoint));
      ohi = _mm512_set1_ps(static_cast<float>(kInt8Max - outQ->zeroPoint));
      ozp = _mm512_set1_epi32(outQ->zeroPoint);
    }
    int j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m512i accv =
          _mm512_loadu_si512(reinterpret_cast<const void*>(acc + j));
      const __m512i csv =
          _mm512_loadu_si512(reinterpret_cast<const void*>(colSums + j));
      const __m512i centered =
          _mm512_sub_epi32(accv, _mm512_mullo_epi32(zpv, csv));
      __m512 v = _mm512_mul_ps(_mm512_cvtepi32_ps(centered),
                               _mm512_mul_ps(sv, _mm512_loadu_ps(wScale + j)));
      if (bias != nullptr) v = _mm512_add_ps(v, _mm512_loadu_ps(bias + j));
      if (act == FusedActivation::kRelu) {
        v = _mm512_max_ps(v, zero);  // x > 0 ? x : 0
      } else if (act == FusedActivation::kRelu6) {
        v = _mm512_min_ps(six, _mm512_max_ps(zero, v));  // min(max(x,0),6)
      }
      if (outQ != nullptr) {
        const __m512 t = _mm512_min_ps(
            _mm512_max_ps(_mm512_mul_ps(v, oinv), olo), ohi);
        v = _mm512_cvtepi32_ps(_mm512_add_epi32(_mm512_cvtps_epi32(t), ozp));
      }
      _mm512_storeu_ps(Crow + j, v);
    }
    for (; j < n; ++j) {
      Crow[j] = qmath::quantEpilogue(acc[j], rq, colSums[j], wScale[j], bias,
                                     j, act, outQ);
    }
    return;
  }
#endif
  for (int j = 0; j < n; ++j) {
    Crow[j] = qmath::quantEpilogue(acc[j], rq, colSums[j], wScale[j], bias, j,
                                   act, outQ);
  }
}

/// Integer dot products of R quantized activation rows (kPad u8 codes each,
/// zero-padded past k, qStride bytes apart) against every weight column;
/// writes R x n i32 sums, aStride apart. Each weight panel is loaded once
/// and reused across the R rows.
template <int R>
void dotRows(const PackedQuantWeights& pw, const std::uint8_t* qrows,
             std::size_t qStride, std::int32_t* acc, std::size_t aStride) {
#if defined(__AVX512VNNI__) && defined(__AVX512F__)
  const int kQuads = pw.kPad / kPanelK;
  for (int j0 = 0; j0 < pw.nPad; j0 += kPanelN) {
    const std::int8_t* panel =
        pw.panels.data() +
        (static_cast<std::size_t>(j0 / kPanelN) * kQuads) * 64;
    __m512i sum[R];
    for (int t = 0; t < R; ++t) sum[t] = _mm512_setzero_si512();
    for (int q = 0; q < kQuads; ++q) {
      const __m512i wv = _mm512_loadu_si512(panel + q * 64);
      for (int t = 0; t < R; ++t) {
        // Broadcast 4 consecutive activation bytes to every lane; each
        // lane's 4 weight bytes are that lane's column at the same 4 k
        // positions.
        std::int32_t aq;
        std::memcpy(&aq, qrows + t * qStride + q * kPanelK, sizeof(aq));
        sum[t] = _mm512_dpbusd_epi32(sum[t], _mm512_set1_epi32(aq), wv);
      }
    }
    const int jMax = std::min(j0 + kPanelN, pw.n);
    for (int t = 0; t < R; ++t) {
      alignas(64) std::int32_t lane[16];
      _mm512_store_si512(lane, sum[t]);
      for (int j = j0; j < jMax; ++j) acc[t * aStride + j] = lane[j - j0];
    }
  }
#elif defined(__AVX2__)
  const int kPairs = pw.kPad / kPanelK;
  for (int j0 = 0; j0 < pw.nPad; j0 += kPanelN) {
    const std::int16_t* panel =
        pw.panels16.data() +
        (static_cast<std::size_t>(j0 / kPanelN) * kPairs) * 16;
    __m256i sum[R];
    for (int t = 0; t < R; ++t) sum[t] = _mm256_setzero_si256();
    for (int q = 0; q < kPairs; ++q) {
      const __m256i wv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(panel + q * 16));
      for (int t = 0; t < R; ++t) {
        const std::uint8_t* qr = qrows + t * qStride + q * kPanelK;
        // i16 lanes [a0, a1] x8; madd pairs them with [w(p), w(p+1)] per
        // column. 255 * 127 * 2 fits i32, so the pairwise sum is exact.
        const std::int32_t a0 = qr[0];
        const std::int32_t a1 = qr[1];
        const __m256i av = _mm256_set1_epi32(a0 | (a1 << 16));
        sum[t] = _mm256_add_epi32(sum[t], _mm256_madd_epi16(av, wv));
      }
    }
    const int jMax = std::min(j0 + kPanelN, pw.n);
    for (int t = 0; t < R; ++t) {
      alignas(32) std::int32_t lane[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lane), sum[t]);
      for (int j = j0; j < jMax; ++j) acc[t * aStride + j] = lane[j - j0];
    }
  }
#else
  for (int t = 0; t < R; ++t) {
    const std::uint8_t* qrow = qrows + t * qStride;
    std::int32_t* arow = acc + t * aStride;
    for (int j = 0; j < pw.n; ++j) arow[j] = 0;
    for (int p = 0; p < pw.k; ++p) {
      const std::int32_t a = qrow[p];
      const std::int8_t* wrow =
          pw.w8.data() + static_cast<std::size_t>(p) * pw.n;
      for (int j = 0; j < pw.n; ++j) arow[j] += a * wrow[j];
    }
  }
#endif
}

/// Serial core over a row range: quantize each f32 row of A, run the integer
/// dot products (kRowBlock rows per weight-panel pass), and apply the shared
/// epilogue. Rows are independent, so any partition of the row space
/// (threads, batching, blocking) is bit-identical.
void quantRows(const PackedQuantWeights& pw, const QuantParams& wq,
               const float* A, std::size_t rowBegin, std::size_t rowEnd,
               const float* bias, FusedActivation act, const OutQuant* outQ,
               float* out) {
  const int k = pw.k, n = pw.n;
  std::vector<float> wScale(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) wScale[j] = wq.scaleFor(j);
  std::vector<std::uint8_t> qrows(
      static_cast<std::size_t>(kRowBlock) * pw.kPad, 0);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(kRowBlock) * n);
  qmath::RowQuant rqs[kRowBlock];
  const auto prep = [&](std::size_t row, int t) {
    const float* Arow = A + row * static_cast<std::size_t>(k);
    rqs[t] = chooseRowQuantFast(Arow, k);
    quantizeRowFast(Arow, k, rqs[t],
                    qrows.data() + static_cast<std::size_t>(t) * pw.kPad);
    // pad bytes past k stay 0
  };
  std::size_t r = rowBegin;
  for (; r + kRowBlock <= rowEnd; r += kRowBlock) {
    for (int t = 0; t < kRowBlock; ++t) prep(r + t, t);
    dotRows<kRowBlock>(pw, qrows.data(), pw.kPad, acc.data(),
                       static_cast<std::size_t>(n));
    for (int t = 0; t < kRowBlock; ++t) {
      epilogueRowFast(acc.data() + static_cast<std::size_t>(t) * n, n, rqs[t],
                      pw.colSums.data(), wScale.data(), bias, act, outQ,
                      out + (r + t) * static_cast<std::size_t>(n));
    }
  }
  for (; r < rowEnd; ++r) {
    prep(r, 0);
    dotRows<1>(pw, qrows.data(), pw.kPad, acc.data(),
               static_cast<std::size_t>(n));
    epilogueRowFast(acc.data(), n, rqs[0], pw.colSums.data(), wScale.data(),
                    bias, act, outQ, out + r * static_cast<std::size_t>(n));
  }
}

/// Row grain targeting ~256K MACs per chunk — same fixed-partition scheme as
/// the f32 kernels (independent of thread count).
std::size_t quantGrain(int k, int n) {
  const std::size_t work = std::max<std::size_t>(
      1, static_cast<std::size_t>(k) * static_cast<std::size_t>(n));
  return std::max<std::size_t>(1, (std::size_t{1} << 18) / work);
}
}  // namespace

std::shared_ptr<const PackedQuantWeights> NativeBackend::packedWeights(
    DataId id, int k, int n) {
  {
    std::lock_guard<std::mutex> lock(qmu_);
    auto it = qcache_.find(id);
    if (it != qcache_.end() && it->second->k == k && it->second->n == n) {
      return it->second;
    }
  }
  const auto& wv = buf(id);
  auto pw = std::make_shared<PackedQuantWeights>();
  pw->k = k;
  pw->n = n;
  pw->kPad = roundUp(std::max(k, 1), kPanelK);
  pw->nPad = roundUp(std::max(n, 1), kPanelN);
  pw->w8.resize(static_cast<std::size_t>(k) * n);
  qmath::weightsToInt8(wv.data(), pw->w8.size(), pw->w8.data());
  pw->colSums.resize(static_cast<std::size_t>(n));
  qmath::colSums(pw->w8.data(), k, n, pw->colSums.data());
  auto code = [&](int p, int j) -> std::int8_t {
    return (p < k && j < n) ? pw->w8[static_cast<std::size_t>(p) * n + j] : 0;
  };
#if defined(__AVX512VNNI__) && defined(__AVX512F__)
  pw->panels.assign(static_cast<std::size_t>(pw->nPad / kPanelN) *
                        (pw->kPad / kPanelK) * 64,
                    0);
  for (int j0 = 0; j0 < pw->nPad; j0 += kPanelN) {
    for (int p0 = 0; p0 < pw->kPad; p0 += kPanelK) {
      std::int8_t* dst =
          pw->panels.data() +
          (static_cast<std::size_t>(j0 / kPanelN) * (pw->kPad / kPanelK) +
           p0 / kPanelK) *
              64;
      for (int c = 0; c < kPanelN; ++c) {
        for (int q = 0; q < kPanelK; ++q) {
          dst[c * kPanelK + q] = code(p0 + q, j0 + c);
        }
      }
    }
  }
#elif defined(__AVX2__)
  pw->panels16.assign(static_cast<std::size_t>(pw->nPad / kPanelN) *
                          (pw->kPad / kPanelK) * 16,
                      0);
  for (int j0 = 0; j0 < pw->nPad; j0 += kPanelN) {
    for (int p0 = 0; p0 < pw->kPad; p0 += kPanelK) {
      std::int16_t* dst =
          pw->panels16.data() +
          (static_cast<std::size_t>(j0 / kPanelN) * (pw->kPad / kPanelK) +
           p0 / kPanelK) *
              16;
      for (int c = 0; c < kPanelN; ++c) {
        for (int q = 0; q < kPanelK; ++q) {
          dst[c * kPanelK + q] = code(p0 + q, j0 + c);
        }
      }
    }
  }
#endif
  {
    std::lock_guard<std::mutex> lock(qmu_);
    qcache_[id] = pw;
  }
  return pw;
}

void NativeBackend::disposeData(DataId id) {
  {
    std::lock_guard<std::mutex> lock(qmu_);
    qcache_.erase(id);
  }
  RefBackend::disposeData(id);
}

DataId NativeBackend::quantizedMatMul(const TensorSpec& a, const TensorSpec& b,
                                      const QuantParams& wq,
                                      const TensorSpec* bias,
                                      FusedActivation act,
                                      const OutQuant* outQ) {
  wq.validate();
  const int batch = a.shape[0];
  const int m = a.shape[1], k = a.shape[2];
  const int n = b.shape[2];
  TFJS_ARG_CHECK(b.shape[0] == 1 && b.shape[1] == k,
                 "quantizedMatMul expects weights [1, k, n] matching a's k");
  TFJS_ARG_CHECK(!wq.perChannel() ||
                     wq.channels() == static_cast<std::size_t>(n),
                 "quantizedMatMul weight scales must have one entry per "
                 "output channel");
  {
    KernelTimer t(kernelMs_, "native.quantizedMatMul");
    const auto& av = buf(a.id);
    if (allFiniteFast(av.data(), av.size()) && quantFastPathOk(wq, k)) {
      auto pw = packedWeights(b.id, k, n);
      const float* biasv = bias != nullptr ? buf(bias->id).data() : nullptr;
      std::vector<float> out =
          allocBuffer(static_cast<std::size_t>(batch) * m * n);
      const std::size_t rows = static_cast<std::size_t>(batch) * m;
      ThreadPool::get().parallelFor(
          rows, quantGrain(k, n), [&](std::size_t begin, std::size_t end) {
            quantRows(*pw, wq, av.data(), begin, end, biasv, act, outQ,
                      out.data());
          });
      return store(std::move(out));
    }
  }
  return quantizedMatMulFallback(a, b, wq, bias, act, outQ);
}

DataId NativeBackend::quantizedConv2d(const TensorSpec& x,
                                      const TensorSpec& filter,
                                      const Conv2DInfo& ci,
                                      const QuantParams& wq,
                                      const TensorSpec* bias,
                                      FusedActivation act,
                                      const OutQuant* outQ) {
  wq.validate();
  const int patch = ci.filterH * ci.filterW * ci.inC;
  const int n = ci.outC;
  TFJS_ARG_CHECK(!wq.perChannel() ||
                     wq.channels() == static_cast<std::size_t>(n),
                 "quantizedConv2d weight scales must have one entry per "
                 "output channel");
  {
    KernelTimer t(kernelMs_, "native.quantizedConv2d");
    const auto& xv = buf(x.id);
    if (allFiniteFast(xv.data(), xv.size()) && quantFastPathOk(wq, patch)) {
      auto pw = packedWeights(filter.id, patch, n);
      const float* biasv = bias != nullptr ? buf(bias->id).data() : nullptr;
      const std::size_t outSpatial =
          static_cast<std::size_t>(ci.outH) * ci.outW;
      std::vector<float> out = allocBuffer(
          static_cast<std::size_t>(ci.batch) * outSpatial * n);

      if (ci.filterH == 1 && ci.filterW == 1 && ci.strideH == 1 &&
          ci.strideW == 1 && ci.padTop == 0 && ci.padLeft == 0) {
        // 1x1 convolution: every output pixel's "patch row" is just its
        // input pixel, contiguous across the whole batch — one quantized
        // GEMM over [batch*spatial, inC] (the MobileNet-dominant case).
        const std::size_t rows =
            static_cast<std::size_t>(ci.batch) * outSpatial;
        ThreadPool::get().parallelFor(
            rows, quantGrain(patch, n),
            [&](std::size_t begin, std::size_t end) {
              quantRows(*pw, wq, xv.data(), begin, end, biasv, act, outQ,
                        out.data());
            });
        return store(std::move(out));
      }

      // General path: chunked im2col (zero-filled, same as the f32 conv),
      // then the quantized GEMM core on the chunk's patch rows. The patch
      // rows equal the oracle's per-pixel materialization exactly, so the
      // dynamic row quantization — and hence the output — matches bitwise.
      const std::size_t totalRows =
          static_cast<std::size_t>(ci.batch) * ci.outH;
      const std::size_t grain = std::max<std::size_t>(
          1, quantGrain(patch, n) / std::max(ci.outW, 1));
      ThreadPool::get().parallelFor(
          totalRows, grain, [&](std::size_t rBegin, std::size_t rEnd) {
            std::vector<float> col = core::BufferPool::get().acquireFilled(
                (rEnd - rBegin) * ci.outW * patch, 0.f);
            for (std::size_t r = rBegin; r < rEnd; ++r) {
              const int b = static_cast<int>(r) / ci.outH;
              const int oy = static_cast<int>(r) % ci.outH;
              float* colRow =
                  col.data() + (r - rBegin) * ci.outW * patch;
              for (int ox = 0; ox < ci.outW; ++ox) {
                float* dst = colRow + static_cast<std::size_t>(ox) * patch;
                for (int fy = 0; fy < ci.filterH; ++fy) {
                  const int iy =
                      oy * ci.strideH - ci.padTop + fy * ci.dilationH;
                  if (iy < 0 || iy >= ci.inH) continue;
                  for (int fx = 0; fx < ci.filterW; ++fx) {
                    const int ix =
                        ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
                    if (ix < 0 || ix >= ci.inW) continue;
                    std::memcpy(
                        dst + (static_cast<std::size_t>(fy) * ci.filterW +
                               fx) *
                                  ci.inC,
                        xv.data() +
                            ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC,
                        static_cast<std::size_t>(ci.inC) * sizeof(float));
                  }
                }
              }
            }
            quantRows(*pw, wq, col.data(), 0, (rEnd - rBegin) * ci.outW,
                      biasv, act, outQ,
                      out.data() + rBegin * ci.outW * n);
            core::BufferPool::get().release(std::move(col));
          });
      return store(std::move(out));
    }
  }
  return quantizedConv2dFallback(x, filter, ci, wq, bias, act, outQ);
}

}  // namespace tfjs::backends::native
