#include "backends/native/native_backend.h"

#include <algorithm>
#include <cstring>

#include "core/engine.h"
#include "core/util.h"

namespace tfjs::backends::native {

namespace {
// Cache-blocking parameters: the k×n panel of B (kKC*kNC floats) fits in L2;
// the m×k panel of A (kMC*kKC) in L1-adjacent space.
constexpr int kMC = 64;
constexpr int kKC = 256;
constexpr int kNC = 512;
}  // namespace

void NativeBackend::gemm(const float* A, const float* B, float* C, int m,
                         int k, int n) {
  for (int j0 = 0; j0 < n; j0 += kNC) {
    const int jMax = std::min(j0 + kNC, n);
    for (int p0 = 0; p0 < k; p0 += kKC) {
      const int pMax = std::min(p0 + kKC, k);
      for (int i0 = 0; i0 < m; i0 += kMC) {
        const int iMax = std::min(i0 + kMC, m);
        for (int i = i0; i < iMax; ++i) {
          float* __restrict Crow = C + static_cast<std::size_t>(i) * n;
          for (int p = p0; p < pMax; ++p) {
            const float aval = A[static_cast<std::size_t>(i) * k + p];
            const float* __restrict Brow =
                B + static_cast<std::size_t>(p) * n;
            // Inner loop over j autovectorizes to AVX fma.
            for (int j = j0; j < jMax; ++j) {
              Crow[j] += aval * Brow[j];
            }
          }
        }
      }
    }
  }
}

DataId NativeBackend::binary(BinaryOp op, const TensorSpec& a,
                             const TensorSpec& b, const Shape& outShape) {
  KernelTimer t(kernelMs_);
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  std::vector<float> out(outShape.size());
  const bool same = a.shape == outShape && b.shape == outShape;
  if (same) {
    const float* __restrict x = av.data();
    const float* __restrict y = bv.data();
    float* __restrict o = out.data();
    const std::size_t nElems = out.size();
    // Specialize the four arithmetic ops so the loops autovectorize; the
    // rest fall through to the shared scalar kernel.
    switch (op) {
      case BinaryOp::kAdd:
        for (std::size_t i = 0; i < nElems; ++i) o[i] = x[i] + y[i];
        break;
      case BinaryOp::kSub:
        for (std::size_t i = 0; i < nElems; ++i) o[i] = x[i] - y[i];
        break;
      case BinaryOp::kMul:
        for (std::size_t i = 0; i < nElems; ++i) o[i] = x[i] * y[i];
        break;
      case BinaryOp::kDiv:
        for (std::size_t i = 0; i < nElems; ++i) o[i] = x[i] / y[i];
        break;
      default:
        for (std::size_t i = 0; i < nElems; ++i) {
          o[i] = applyBinary(op, x[i], y[i]);
        }
    }
    return store(std::move(out));
  }
  // Broadcast path: delegate to the reference implementation's logic by
  // re-dispatching (it handles scalar fast paths and generic broadcast).
  return RefBackend::binary(op, a, b, outShape);
}

DataId NativeBackend::unary(UnaryOp op, const TensorSpec& x, float alpha,
                            float beta) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  std::vector<float> out(xv.size());
  const float* __restrict in = xv.data();
  float* __restrict o = out.data();
  const std::size_t n = out.size();
  switch (op) {
    case UnaryOp::kRelu:
      for (std::size_t i = 0; i < n; ++i) o[i] = in[i] > 0 ? in[i] : 0;
      break;
    case UnaryOp::kRelu6:
      for (std::size_t i = 0; i < n; ++i) {
        o[i] = std::min(std::max(in[i], 0.f), 6.f);
      }
      break;
    case UnaryOp::kNeg:
      for (std::size_t i = 0; i < n; ++i) o[i] = -in[i];
      break;
    case UnaryOp::kSquare:
      for (std::size_t i = 0; i < n; ++i) o[i] = in[i] * in[i];
      break;
    case UnaryOp::kAddScalar:
      for (std::size_t i = 0; i < n; ++i) o[i] = in[i] + alpha;
      break;
    case UnaryOp::kMulScalar:
      for (std::size_t i = 0; i < n; ++i) o[i] = in[i] * alpha;
      break;
    default:
      for (std::size_t i = 0; i < n; ++i) {
        o[i] = applyUnary(op, in[i], alpha, beta);
      }
  }
  return store(std::move(out));
}

DataId NativeBackend::matMul(const TensorSpec& a, const TensorSpec& b,
                             bool transposeA, bool transposeB) {
  KernelTimer t(kernelMs_);
  const int bA = a.shape[0], bB = b.shape[0];
  const int m = transposeA ? a.shape[2] : a.shape[1];
  const int k = transposeA ? a.shape[1] : a.shape[2];
  const int n = transposeB ? b.shape[1] : b.shape[2];
  const int batch = std::max(bA, bB);
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  std::vector<float> out(static_cast<std::size_t>(batch) * m * n, 0.f);

  // Materialize transposed operands once so the GEMM core runs on
  // contiguous row-major panels (what a native BLAS would do when packing).
  std::vector<float> aT, bT;
  for (int bi = 0; bi < batch; ++bi) {
    const float* A =
        av.data() + static_cast<std::size_t>(bA == 1 ? 0 : bi) * m * k;
    const float* B =
        bv.data() + static_cast<std::size_t>(bB == 1 ? 0 : bi) * k * n;
    if (transposeA) {
      aT.resize(static_cast<std::size_t>(m) * k);
      for (int p = 0; p < k; ++p) {
        for (int i = 0; i < m; ++i) {
          aT[static_cast<std::size_t>(i) * k + p] =
              A[static_cast<std::size_t>(p) * m + i];
        }
      }
      A = aT.data();
    }
    if (transposeB) {
      bT.resize(static_cast<std::size_t>(k) * n);
      for (int j = 0; j < n; ++j) {
        for (int p = 0; p < k; ++p) {
          bT[static_cast<std::size_t>(p) * n + j] =
              B[static_cast<std::size_t>(j) * k + p];
        }
      }
      B = bT.data();
    }
    gemm(A, B, out.data() + static_cast<std::size_t>(bi) * m * n, m, k, n);
  }
  return store(std::move(out));
}

DataId NativeBackend::conv2d(const TensorSpec& x, const TensorSpec& filter,
                             const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  const auto& fv = buf(filter.id);
  const std::size_t outSpatial =
      static_cast<std::size_t>(ci.outH) * ci.outW;
  const std::size_t patch =
      static_cast<std::size_t>(ci.filterH) * ci.filterW * ci.inC;
  std::vector<float> out(static_cast<std::size_t>(ci.batch) * outSpatial *
                             ci.outC,
                         0.f);

  if (ci.filterH == 1 && ci.filterW == 1 && ci.strideH == 1 &&
      ci.strideW == 1 && ci.padTop == 0 && ci.padLeft == 0) {
    // 1x1 convolution IS a GEMM over [spatial, inC] x [inC, outC] — the
    // dominant op in MobileNet.
    for (int b = 0; b < ci.batch; ++b) {
      gemm(xv.data() + static_cast<std::size_t>(b) * outSpatial * ci.inC,
           fv.data(),
           out.data() + static_cast<std::size_t>(b) * outSpatial * ci.outC,
           static_cast<int>(outSpatial), ci.inC, ci.outC);
    }
    return store(std::move(out));
  }

  // General path: im2col + GEMM per batch element.
  std::vector<float> col(outSpatial * patch);
  for (int b = 0; b < ci.batch; ++b) {
    std::fill(col.begin(), col.end(), 0.f);
    for (int oy = 0; oy < ci.outH; ++oy) {
      for (int ox = 0; ox < ci.outW; ++ox) {
        float* dst =
            col.data() + (static_cast<std::size_t>(oy) * ci.outW + ox) * patch;
        for (int fy = 0; fy < ci.filterH; ++fy) {
          const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
          if (iy < 0 || iy >= ci.inH) continue;
          for (int fx = 0; fx < ci.filterW; ++fx) {
            const int ix = ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
            if (ix < 0 || ix >= ci.inW) continue;
            std::memcpy(
                dst + (static_cast<std::size_t>(fy) * ci.filterW + fx) * ci.inC,
                xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC,
                static_cast<std::size_t>(ci.inC) * sizeof(float));
          }
        }
      }
    }
    gemm(col.data(), fv.data(),
         out.data() + static_cast<std::size_t>(b) * outSpatial * ci.outC,
         static_cast<int>(outSpatial), static_cast<int>(patch), ci.outC);
  }
  return store(std::move(out));
}

DataId NativeBackend::depthwiseConv2d(const TensorSpec& x,
                                      const TensorSpec& filter,
                                      const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_);
  const auto& xv = buf(x.id);
  const auto& fv = buf(filter.id);
  const int mult = ci.channelMult;
  std::vector<float> out(static_cast<std::size_t>(ci.batch) * ci.outH *
                             ci.outW * ci.outC,
                         0.f);
  // Channel-inner loops are contiguous in NHWC, so they autovectorize.
  for (int b = 0; b < ci.batch; ++b) {
    for (int oy = 0; oy < ci.outH; ++oy) {
      for (int ox = 0; ox < ci.outW; ++ox) {
        float* __restrict oRow =
            out.data() + ((static_cast<std::size_t>(b) * ci.outH + oy) *
                              ci.outW +
                          ox) *
                             ci.outC;
        for (int fy = 0; fy < ci.filterH; ++fy) {
          const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
          if (iy < 0 || iy >= ci.inH) continue;
          for (int fx = 0; fx < ci.filterW; ++fx) {
            const int ix = ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
            if (ix < 0 || ix >= ci.inW) continue;
            const float* __restrict xRow =
                xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                 ci.inW +
                             ix) *
                                ci.inC;
            const float* __restrict fRow =
                fv.data() + (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                                ci.inC * mult;
            if (mult == 1) {
              for (int ic = 0; ic < ci.inC; ++ic) {
                oRow[ic] += xRow[ic] * fRow[ic];
              }
            } else {
              for (int ic = 0; ic < ci.inC; ++ic) {
                for (int q = 0; q < mult; ++q) {
                  oRow[ic * mult + q] += xRow[ic] * fRow[ic * mult + q];
                }
              }
            }
          }
        }
      }
    }
  }
  return store(std::move(out));
}

DataId NativeBackend::reduce(ReduceOp op, const TensorSpec& x,
                             std::size_t outer, std::size_t inner) {
  KernelTimer t(kernelMs_);
  if (op != ReduceOp::kSum && op != ReduceOp::kMean) {
    return RefBackend::reduce(op, x, outer, inner);
  }
  const auto& xv = buf(x.id);
  std::vector<float> out(outer);
  for (std::size_t o = 0; o < outer; ++o) {
    const float* __restrict row = xv.data() + o * inner;
    // Four parallel accumulators break the dependency chain for SIMD.
    float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= inner; i += 4) {
      acc0 += row[i];
      acc1 += row[i + 1];
      acc2 += row[i + 2];
      acc3 += row[i + 3];
    }
    float acc = acc0 + acc1 + acc2 + acc3;
    for (; i < inner; ++i) acc += row[i];
    out[o] = op == ReduceOp::kMean ? acc / static_cast<float>(inner) : acc;
  }
  return store(std::move(out));
}

void registerBackend() {
  Engine::get().registerBackend(
      "native", [] { return std::make_unique<NativeBackend>(); },
      /*priority=*/2);
}

}  // namespace tfjs::backends::native
