#include "backends/native/native_backend.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "core/buffer_pool.h"
#include "core/engine.h"
#include "core/thread_pool.h"
#include "core/util.h"

namespace tfjs::backends::native {

namespace {
using core::ThreadPool;

// Cache-blocking parameters: the k×n panel of B (kKC*kNC floats) fits in L2;
// the m×k panel of A (kMC*kKC) in L1-adjacent space. They double as the
// parallel grain: one GEMM chunk is a kMC-row (or kNC-column) panel, so each
// worker keeps the original blocked loop structure.
constexpr int kMC = 64;
constexpr int kKC = 256;
constexpr int kNC = 512;

/// Elementwise parallel grain: 32K floats (128 KB) per chunk amortizes
/// dispatch while still splitting the 16M-element benchmark ~500 ways.
constexpr std::size_t kElemGrain = std::size_t{1} << 15;

/// Fixed grain for row-sliced spatial kernels (conv/pool/depthwise/reduce):
/// enough rows that one chunk touches ~`target` scalars. Depends only on
/// the problem shape, never the thread count — chunk boundaries (and thus
/// results) are identical at any parallelism.
std::size_t rowsPerChunk(std::size_t scalarsPerRow, std::size_t target) {
  return std::max<std::size_t>(1, target / std::max<std::size_t>(1,
                                                                 scalarsPerRow));
}

/// The blocked GEMM core restricted to rows [rowBegin, rowEnd) and columns
/// [colBegin, colEnd) of C. For every C element the accumulation over p runs
/// ascending regardless of how the row/column space is partitioned, so any
/// tiling of disjoint tiles is bit-identical to the full serial sweep.
///
/// When `bias`/`act` request a fused epilogue it runs per column panel right
/// after the k loop finishes — every C element in the panel is fully
/// accumulated and still cache-hot. The scalar math is applyBinary(kAdd) /
/// applyUnary of the matching activation, so the fused result is bitwise the
/// unfused matMul + add + activation chain.
void gemmTile(const float* A, const float* B, float* C, int k, int n,
              int rowBegin, int rowEnd, int colBegin, int colEnd,
              const float* bias = nullptr,
              FusedActivation act = FusedActivation::kNone) {
  for (int j0 = colBegin; j0 < colEnd; j0 += kNC) {
    const int jMax = std::min(j0 + kNC, colEnd);
    for (int p0 = 0; p0 < k; p0 += kKC) {
      const int pMax = std::min(p0 + kKC, k);
      for (int i0 = rowBegin; i0 < rowEnd; i0 += kMC) {
        const int iMax = std::min(i0 + kMC, rowEnd);
        for (int i = i0; i < iMax; ++i) {
          float* __restrict Crow = C + static_cast<std::size_t>(i) * n;
          for (int p = p0; p < pMax; ++p) {
            const float aval = A[static_cast<std::size_t>(i) * k + p];
            const float* __restrict Brow =
                B + static_cast<std::size_t>(p) * n;
            // Inner loop over j autovectorizes to AVX fma.
            for (int j = j0; j < jMax; ++j) {
              Crow[j] += aval * Brow[j];
            }
          }
        }
      }
    }
    if (bias != nullptr || act != FusedActivation::kNone) {
      for (int i = rowBegin; i < rowEnd; ++i) {
        float* __restrict Crow = C + static_cast<std::size_t>(i) * n;
        for (int j = j0; j < jMax; ++j) {
          float v = Crow[j];
          if (bias != nullptr) v += bias[j];
          Crow[j] = applyFusedActivation(act, v);
        }
      }
    }
  }
}
}  // namespace

void NativeBackend::gemm(const float* A, const float* B, float* C, int m,
                         int k, int n, const float* bias,
                         FusedActivation act) {
  // Split along whichever axis yields more panels: row panels of kMC for
  // tall/square C, column panels of kNC when C is short and wide (e.g. the
  // [spatial, outC] GEMM of a 1x1 conv on a small image).
  const std::size_t rowPanels = (static_cast<std::size_t>(m) + kMC - 1) / kMC;
  const std::size_t colPanels = (static_cast<std::size_t>(n) + kNC - 1) / kNC;
  if (rowPanels >= colPanels) {
    ThreadPool::get().parallelFor(
        static_cast<std::size_t>(m), kMC,
        [&](std::size_t begin, std::size_t end) {
          gemmTile(A, B, C, k, n, static_cast<int>(begin),
                   static_cast<int>(end), 0, n, bias, act);
        });
  } else {
    ThreadPool::get().parallelFor(
        static_cast<std::size_t>(n), kNC,
        [&](std::size_t begin, std::size_t end) {
          gemmTile(A, B, C, k, n, 0, m, static_cast<int>(begin),
                   static_cast<int>(end), bias, act);
        });
  }
}

void NativeBackend::gemm(const float* A, const float* B, float* C, int m,
                         int k, int n) {
  gemm(A, B, C, m, k, n, nullptr, FusedActivation::kNone);
}

namespace {
// Shared elementwise cores for the allocating and in-place entry points.
// `o` may alias `x` (same-index reads before writes are safe), so no
// __restrict here; each chunk writes a disjoint output range and each
// element depends only on its own inputs — any partition is bit-identical.
void binaryLoopSame(BinaryOp op, const float* x, const float* y, float* o,
                    std::size_t size) {
  ThreadPool::get().parallelFor(
      size, kElemGrain, [&](std::size_t begin, std::size_t end) {
        // Specialize the four arithmetic ops so the loops autovectorize;
        // the rest fall through to the shared scalar kernel.
        switch (op) {
          case BinaryOp::kAdd:
            for (std::size_t i = begin; i < end; ++i) o[i] = x[i] + y[i];
            break;
          case BinaryOp::kSub:
            for (std::size_t i = begin; i < end; ++i) o[i] = x[i] - y[i];
            break;
          case BinaryOp::kMul:
            for (std::size_t i = begin; i < end; ++i) o[i] = x[i] * y[i];
            break;
          case BinaryOp::kDiv:
            for (std::size_t i = begin; i < end; ++i) o[i] = x[i] / y[i];
            break;
          default:
            for (std::size_t i = begin; i < end; ++i) {
              o[i] = applyBinary(op, x[i], y[i]);
            }
        }
      });
}

// Second operand broadcasts as a contiguous suffix (the per-channel bias
// against an NHWC tensor is the hot case): one parallel sweep over the
// leading rows with a dense, autovectorizable inner loop. Applies the same
// scalar op per element as the reference broadcast path, so values are
// bit-identical — only the per-element coordinate decoding is gone. `o` may
// alias `x` for the in-place entry point.
void binaryLoopSuffix(BinaryOp op, const float* x, const float* y, float* o,
                      std::size_t rows, std::size_t span) {
  ThreadPool::get().parallelFor(
      rows, std::max<std::size_t>(1, kElemGrain / std::max<std::size_t>(span, 1)),
      [&](std::size_t rb, std::size_t re) {
        switch (op) {
          case BinaryOp::kAdd:
            for (std::size_t r = rb; r < re; ++r) {
              const float* xr = x + r * span;
              float* orow = o + r * span;
              for (std::size_t i = 0; i < span; ++i) orow[i] = xr[i] + y[i];
            }
            break;
          case BinaryOp::kSub:
            for (std::size_t r = rb; r < re; ++r) {
              const float* xr = x + r * span;
              float* orow = o + r * span;
              for (std::size_t i = 0; i < span; ++i) orow[i] = xr[i] - y[i];
            }
            break;
          case BinaryOp::kMul:
            for (std::size_t r = rb; r < re; ++r) {
              const float* xr = x + r * span;
              float* orow = o + r * span;
              for (std::size_t i = 0; i < span; ++i) orow[i] = xr[i] * y[i];
            }
            break;
          case BinaryOp::kDiv:
            for (std::size_t r = rb; r < re; ++r) {
              const float* xr = x + r * span;
              float* orow = o + r * span;
              for (std::size_t i = 0; i < span; ++i) orow[i] = xr[i] / y[i];
            }
            break;
          default:
            for (std::size_t r = rb; r < re; ++r) {
              const float* xr = x + r * span;
              float* orow = o + r * span;
              for (std::size_t i = 0; i < span; ++i) {
                orow[i] = applyBinary(op, xr[i], y[i]);
              }
            }
        }
      });
}

void unaryLoop(UnaryOp op, const float* in, float* o, std::size_t size,
               float alpha, float beta) {
  ThreadPool::get().parallelFor(
      size, kElemGrain, [&](std::size_t begin, std::size_t end) {
        switch (op) {
          case UnaryOp::kRelu:
            for (std::size_t i = begin; i < end; ++i) {
              o[i] = in[i] > 0 ? in[i] : 0;
            }
            break;
          case UnaryOp::kRelu6:
            for (std::size_t i = begin; i < end; ++i) {
              o[i] = std::min(std::max(in[i], 0.f), 6.f);
            }
            break;
          case UnaryOp::kNeg:
            for (std::size_t i = begin; i < end; ++i) o[i] = -in[i];
            break;
          case UnaryOp::kSquare:
            for (std::size_t i = begin; i < end; ++i) o[i] = in[i] * in[i];
            break;
          case UnaryOp::kAddScalar:
            for (std::size_t i = begin; i < end; ++i) o[i] = in[i] + alpha;
            break;
          case UnaryOp::kMulScalar:
            for (std::size_t i = begin; i < end; ++i) o[i] = in[i] * alpha;
            break;
          default:
            for (std::size_t i = begin; i < end; ++i) {
              o[i] = applyUnary(op, in[i], alpha, beta);
            }
        }
      });
}
}  // namespace

DataId NativeBackend::binary(BinaryOp op, const TensorSpec& a,
                             const TensorSpec& b, const Shape& outShape) {
  KernelTimer t(kernelMs_, "native.binary");
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  const bool same = a.shape == outShape && b.shape == outShape;
  if (same) {
    std::vector<float> out = allocBuffer(outShape.size());
    binaryLoopSame(op, av.data(), bv.data(), out.data(), out.size());
    return store(std::move(out));
  }
  if (a.shape == outShape && bv.size() > 1 &&
      broadcastsAsSuffix(b.shape, outShape)) {
    std::vector<float> out = allocBuffer(outShape.size());
    binaryLoopSuffix(op, av.data(), bv.data(), out.data(),
                     out.size() / bv.size(), bv.size());
    return store(std::move(out));
  }
  // Remaining broadcast shapes: delegate to the reference implementation by
  // re-dispatching (it handles scalar fast paths and generic broadcast).
  return RefBackend::binary(op, a, b, outShape);
}

DataId NativeBackend::binaryInto(BinaryOp op, const TensorSpec& a,
                                 const TensorSpec& b, const Shape& outShape,
                                 DataId dst) {
  if (dst != a.id || !(a.shape == outShape)) {
    return binary(op, a, b, outShape);
  }
  if (!(b.shape == outShape)) {
    const auto& bcast = buf(b.id);
    if (bcast.size() > 1 && broadcastsAsSuffix(b.shape, outShape)) {
      KernelTimer t(kernelMs_, "native.binary");
      auto& av = mutableBuf(dst);
      binaryLoopSuffix(op, av.data(), bcast.data(), av.data(),
                       av.size() / bcast.size(), bcast.size());
      return dst;
    }
    // Scalar / remaining broadcast second operands: the serial reference
    // in-place kernel, matching this backend's own unfused broadcast path
    // (which also delegates to the reference implementation).
    return RefBackend::binaryInto(op, a, b, outShape, dst);
  }
  KernelTimer t(kernelMs_, "native.binary");
  auto& av = mutableBuf(dst);
  const auto& bv = buf(b.id);
  binaryLoopSame(op, av.data(), bv.data(), av.data(), av.size());
  return dst;
}

DataId NativeBackend::fusedRegion(const RegionProgram& program,
                                  std::span<const TensorSpec> inputs,
                                  const Shape& outShape, DataId dst) {
  if (program.instrs.empty() ||
      inputs.size() != static_cast<std::size_t>(program.numInputs)) {
    throw BackendError("fusedRegion: malformed program");
  }
  KernelTimer t(kernelMs_, "native.fusedRegion");
  const std::size_t n = outShape.size();

  enum class Access { kDense, kScalar, kSuffix, kGeneric };
  struct In {
    const float* p;
    std::size_t span;
    Access mode;
    const Shape* shape;
  };
  std::vector<In> ins(inputs.size());
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    const auto& v = buf(inputs[j].id);
    Access mode = Access::kGeneric;
    if (inputs[j].shape == outShape) {
      mode = Access::kDense;
    } else if (v.size() == 1) {
      mode = Access::kScalar;
    } else if (broadcastsAsSuffix(inputs[j].shape, outShape)) {
      mode = Access::kSuffix;
    }
    ins[j] = {v.data(), v.size(), mode, &inputs[j].shape};
  }

  // Same in-place guard as the reference kernel: dst must alias exactly one
  // input, and that input must be dense (each chunk then only overwrites
  // indices it has already loaded into its block).
  bool inPlace = false;
  if (dst != 0) {
    int matches = 0;
    std::size_t di = 0;
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      if (inputs[j].id == dst) {
        ++matches;
        di = j;
      }
    }
    inPlace = matches == 1 && ins[di].mode == Access::kDense;
  }

  std::vector<float> fresh;
  float* o;
  if (inPlace) {
    o = mutableBuf(dst).data();
  } else {
    fresh = allocBuffer(n);
    o = fresh.data();
  }

  // Strip-mined interpretation: each block resolves every input to a row
  // pointer (dense and block-aligned suffix inputs alias backing storage
  // directly — zero copies), then every instruction runs as a dense loop
  // over the block, non-terminal results landing in L1-resident scratch
  // rows and the terminal storing straight into the output. Per-element op
  // order is the program order either way, so blocking (and the fixed
  // parallel partition) cannot change a single bit.
  constexpr std::size_t kBlock = 512;
  const std::size_t numInstrs = program.instrs.size();
  const std::size_t numIns = ins.size();
  ThreadPool::get().parallelFor(
      n, kElemGrain, [&](std::size_t begin, std::size_t end) {
        // Reused per-thread scratch: one row per input that may need
        // materializing plus one per non-terminal instruction. resize()
        // only pays on first growth, not per chunk.
        static thread_local std::vector<float> scratch;
        static thread_local std::vector<const float*> rowPtr;
        if (scratch.size() < (numIns + numInstrs) * kBlock) {
          scratch.resize((numIns + numInstrs) * kBlock);
        }
        if (rowPtr.size() < numIns) rowPtr.resize(numIns);
        float* inRows = scratch.data();
        float* valRows = scratch.data() + numIns * kBlock;
        std::vector<int> coords(static_cast<std::size_t>(outShape.rank()));
        // A scalar broadcasts the same value into every block: fill once.
        for (std::size_t j = 0; j < numIns; ++j) {
          if (ins[j].mode == Access::kScalar) {
            float* r = inRows + j * kBlock;
            std::fill(r, r + kBlock, ins[j].p[0]);
            rowPtr[j] = r;
          }
        }
        for (std::size_t b0 = begin; b0 < end; b0 += kBlock) {
          const std::size_t c = std::min(kBlock, end - b0);
          for (std::size_t j = 0; j < numIns; ++j) {
            const In& in = ins[j];
            float* r = inRows + j * kBlock;
            switch (in.mode) {
              case Access::kDense:
                rowPtr[j] = in.p + b0;
                break;
              case Access::kScalar:
                break;  // prefilled above
              case Access::kSuffix: {
                const std::size_t off = b0 % in.span;
                if (off + c <= in.span) {
                  rowPtr[j] = in.p + off;  // block within one repeat
                } else {
                  // Wrap-around fill (a counter, not a per-element modulo —
                  // spans like a channel count of 8 make div cost dominate).
                  std::size_t idx = off;
                  for (std::size_t i = 0; i < c; ++i) {
                    r[i] = in.p[idx];
                    if (++idx == in.span) idx = 0;
                  }
                  rowPtr[j] = r;
                }
                break;
              }
              case Access::kGeneric:
                for (std::size_t i = 0; i < c; ++i) {
                  util::unravelIndex(b0 + i, outShape, coords);
                  r[i] = in.p[util::broadcastIndex(coords, *in.shape,
                                                   outShape)];
                }
                rowPtr[j] = r;
                break;
            }
          }
          const auto row = [&](int r) {
            return r < 0 ? rowPtr[static_cast<std::size_t>(-1 - r)]
                         : static_cast<const float*>(
                               valRows + static_cast<std::size_t>(r) * kBlock);
          };
          for (std::size_t k = 0; k < numInstrs; ++k) {
            const RegionInstr& si = program.instrs[k];
            const float* A = row(si.a);
            // The terminal (nothing ever references it) stores straight to
            // the output; everything else lands in its scratch row.
            float* R = k + 1 == numInstrs ? o + b0 : valRows + k * kBlock;
            switch (si.kind) {
              case RegionInstr::Kind::kUnary: {
                const auto op = static_cast<UnaryOp>(si.op);
                // Same specializations (and formulas) as unaryLoop.
                switch (op) {
                  case UnaryOp::kRelu:
                    for (std::size_t i = 0; i < c; ++i) {
                      R[i] = A[i] > 0 ? A[i] : 0;
                    }
                    break;
                  case UnaryOp::kRelu6:
                    for (std::size_t i = 0; i < c; ++i) {
                      R[i] = std::min(std::max(A[i], 0.f), 6.f);
                    }
                    break;
                  case UnaryOp::kNeg:
                    for (std::size_t i = 0; i < c; ++i) R[i] = -A[i];
                    break;
                  case UnaryOp::kSquare:
                    for (std::size_t i = 0; i < c; ++i) R[i] = A[i] * A[i];
                    break;
                  case UnaryOp::kAddScalar:
                    for (std::size_t i = 0; i < c; ++i) R[i] = A[i] + si.alpha;
                    break;
                  case UnaryOp::kMulScalar:
                    for (std::size_t i = 0; i < c; ++i) R[i] = A[i] * si.alpha;
                    break;
                  default:
                    for (std::size_t i = 0; i < c; ++i) {
                      R[i] = applyUnary(op, A[i], si.alpha, si.beta);
                    }
                }
                break;
              }
              case RegionInstr::Kind::kBinary: {
                const auto op = static_cast<BinaryOp>(si.op);
                const float* B = row(si.b);
                // Same specializations as binaryLoopSame.
                switch (op) {
                  case BinaryOp::kAdd:
                    for (std::size_t i = 0; i < c; ++i) R[i] = A[i] + B[i];
                    break;
                  case BinaryOp::kSub:
                    for (std::size_t i = 0; i < c; ++i) R[i] = A[i] - B[i];
                    break;
                  case BinaryOp::kMul:
                    for (std::size_t i = 0; i < c; ++i) R[i] = A[i] * B[i];
                    break;
                  case BinaryOp::kDiv:
                    for (std::size_t i = 0; i < c; ++i) R[i] = A[i] / B[i];
                    break;
                  default:
                    for (std::size_t i = 0; i < c; ++i) {
                      R[i] = applyBinary(op, A[i], B[i]);
                    }
                }
                break;
              }
              case RegionInstr::Kind::kSelect: {
                const float* B = row(si.b);
                const float* C = row(si.c);
                for (std::size_t i = 0; i < c; ++i) {
                  R[i] = A[i] != 0 ? B[i] : C[i];
                }
                break;
              }
            }
          }
        }
      });
  return inPlace ? dst : store(std::move(fresh));
}

DataId NativeBackend::unary(UnaryOp op, const TensorSpec& x, float alpha,
                            float beta) {
  KernelTimer t(kernelMs_, "native.unary");
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(xv.size());
  unaryLoop(op, xv.data(), out.data(), out.size(), alpha, beta);
  return store(std::move(out));
}

DataId NativeBackend::unaryInto(UnaryOp op, const TensorSpec& x, float alpha,
                                float beta, DataId dst) {
  if (dst != x.id) return unary(op, x, alpha, beta);
  KernelTimer t(kernelMs_, "native.unary");
  auto& v = mutableBuf(dst);
  unaryLoop(op, v.data(), v.data(), v.size(), alpha, beta);
  return dst;
}

DataId NativeBackend::matMul(const TensorSpec& a, const TensorSpec& b,
                             bool transposeA, bool transposeB) {
  KernelTimer t(kernelMs_, "native.matMul");
  return matMulImpl(a, b, transposeA, transposeB, nullptr,
                    FusedActivation::kNone);
}

DataId NativeBackend::fusedMatMul(const TensorSpec& a, const TensorSpec& b,
                                  bool transposeA, bool transposeB,
                                  const TensorSpec* bias,
                                  FusedActivation act) {
  KernelTimer t(kernelMs_, "native.fusedMatMul");
  const float* bv = bias != nullptr ? buf(bias->id).data() : nullptr;
  return matMulImpl(a, b, transposeA, transposeB, bv, act);
}

DataId NativeBackend::matMulImpl(const TensorSpec& a, const TensorSpec& b,
                                 bool transposeA, bool transposeB,
                                 const float* bias, FusedActivation act) {
  const int bA = a.shape[0], bB = b.shape[0];
  const int m = transposeA ? a.shape[2] : a.shape[1];
  const int k = transposeA ? a.shape[1] : a.shape[2];
  const int n = transposeB ? b.shape[1] : b.shape[2];
  const int batch = std::max(bA, bB);
  const auto& av = buf(a.id);
  const auto& bv = buf(b.id);
  std::vector<float> out =
      allocZeroed(static_cast<std::size_t>(batch) * m * n);

  // Materialize transposed operands once so the GEMM core runs on
  // contiguous row-major panels (what a native BLAS would do when packing).
  // The batch loop stays serial; each per-batch GEMM fans out on the pool.
  std::vector<float> aT, bT;
  for (int bi = 0; bi < batch; ++bi) {
    const float* A =
        av.data() + static_cast<std::size_t>(bA == 1 ? 0 : bi) * m * k;
    const float* B =
        bv.data() + static_cast<std::size_t>(bB == 1 ? 0 : bi) * k * n;
    if (transposeA) {
      aT.resize(static_cast<std::size_t>(m) * k);
      for (int p = 0; p < k; ++p) {
        for (int i = 0; i < m; ++i) {
          aT[static_cast<std::size_t>(i) * k + p] =
              A[static_cast<std::size_t>(p) * m + i];
        }
      }
      A = aT.data();
    }
    if (transposeB) {
      bT.resize(static_cast<std::size_t>(k) * n);
      for (int j = 0; j < n; ++j) {
        for (int p = 0; p < k; ++p) {
          bT[static_cast<std::size_t>(p) * n + j] =
              B[static_cast<std::size_t>(j) * k + p];
        }
      }
      B = bT.data();
    }
    gemm(A, B, out.data() + static_cast<std::size_t>(bi) * m * n, m, k, n,
         bias, act);
  }
  return store(std::move(out));
}

DataId NativeBackend::conv2d(const TensorSpec& x, const TensorSpec& filter,
                             const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_, "native.conv2d");
  return conv2dImpl(x, filter, ci, nullptr, FusedActivation::kNone);
}

DataId NativeBackend::fusedConv2d(const TensorSpec& x,
                                  const TensorSpec& filter,
                                  const Conv2DInfo& ci, const TensorSpec* bias,
                                  FusedActivation act) {
  KernelTimer t(kernelMs_, "native.fusedConv2d");
  const float* bv = bias != nullptr ? buf(bias->id).data() : nullptr;
  return conv2dImpl(x, filter, ci, bv, act);
}

DataId NativeBackend::conv2dImpl(const TensorSpec& x, const TensorSpec& filter,
                                 const Conv2DInfo& ci, const float* bias,
                                 FusedActivation act) {
  const auto& xv = buf(x.id);
  const auto& fv = buf(filter.id);
  const std::size_t outSpatial =
      static_cast<std::size_t>(ci.outH) * ci.outW;
  const std::size_t patch =
      static_cast<std::size_t>(ci.filterH) * ci.filterW * ci.inC;
  std::vector<float> out = allocZeroed(static_cast<std::size_t>(ci.batch) *
                                       outSpatial * ci.outC);

  if (ci.filterH == 1 && ci.filterW == 1 && ci.strideH == 1 &&
      ci.strideW == 1 && ci.padTop == 0 && ci.padLeft == 0) {
    // 1x1 convolution IS a GEMM over [spatial, inC] x [inC, outC] — the
    // dominant op in MobileNet. Input and output are contiguous across the
    // batch, so all batches fold into one [batch*spatial, inC] GEMM whose
    // row panels parallelise across the pool.
    gemm(xv.data(), fv.data(), out.data(),
         static_cast<int>(static_cast<std::size_t>(ci.batch) * outSpatial),
         ci.inC, ci.outC, bias, act);
    return store(std::move(out));
  }

  // General path: im2col + GEMM, sliced over the batch×outH row space. Each
  // chunk packs its own rows into a private col buffer and runs the GEMM
  // core on them (nested parallelFor runs inline on the worker). Per-element
  // accumulation order matches the serial im2col+GEMM exactly.
  const std::size_t totalRows = static_cast<std::size_t>(ci.batch) * ci.outH;
  const std::size_t grain =
      rowsPerChunk(static_cast<std::size_t>(ci.outW) * patch, 1 << 16);
  ThreadPool::get().parallelFor(
      totalRows, grain, [&](std::size_t rBegin, std::size_t rEnd) {
        // Per-chunk im2col scratch comes from the pool too (it is by far
        // the heaviest transient allocation in a conv-heavy model).
        std::vector<float> col = core::BufferPool::get().acquireFilled(
            (rEnd - rBegin) * ci.outW * patch, 0.f);
        for (std::size_t r = rBegin; r < rEnd; ++r) {
          const int b = static_cast<int>(r) / ci.outH;
          const int oy = static_cast<int>(r) % ci.outH;
          float* colRow = col.data() + (r - rBegin) * ci.outW * patch;
          for (int ox = 0; ox < ci.outW; ++ox) {
            float* dst = colRow + static_cast<std::size_t>(ox) * patch;
            for (int fy = 0; fy < ci.filterH; ++fy) {
              const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
              if (iy < 0 || iy >= ci.inH) continue;
              for (int fx = 0; fx < ci.filterW; ++fx) {
                const int ix =
                    ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
                if (ix < 0 || ix >= ci.inW) continue;
                std::memcpy(
                    dst + (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                              ci.inC,
                    xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                     ci.inW +
                                 ix) *
                                    ci.inC,
                    static_cast<std::size_t>(ci.inC) * sizeof(float));
              }
            }
          }
        }
        gemm(col.data(), fv.data(),
             out.data() + rBegin * ci.outW * ci.outC,
             static_cast<int>((rEnd - rBegin) * ci.outW),
             static_cast<int>(patch), ci.outC, bias, act);
        core::BufferPool::get().release(std::move(col));
      });
  return store(std::move(out));
}

DataId NativeBackend::depthwiseConv2d(const TensorSpec& x,
                                      const TensorSpec& filter,
                                      const Conv2DInfo& ci) {
  KernelTimer t(kernelMs_, "native.depthwiseConv2d");
  const auto& xv = buf(x.id);
  const auto& fv = buf(filter.id);
  const int mult = ci.channelMult;
  std::vector<float> out = allocZeroed(static_cast<std::size_t>(ci.batch) *
                                       ci.outH * ci.outW * ci.outC);
  // Sliced over batch×outH output rows; channel-inner loops are contiguous
  // in NHWC, so they autovectorize within each chunk.
  const std::size_t totalRows = static_cast<std::size_t>(ci.batch) * ci.outH;
  const std::size_t grain = rowsPerChunk(
      static_cast<std::size_t>(ci.outW) * ci.filterH * ci.filterW * ci.inC *
          mult,
      1 << 14);
  ThreadPool::get().parallelFor(
      totalRows, grain, [&](std::size_t rBegin, std::size_t rEnd) {
        for (std::size_t r = rBegin; r < rEnd; ++r) {
          const int b = static_cast<int>(r) / ci.outH;
          const int oy = static_cast<int>(r) % ci.outH;
          for (int ox = 0; ox < ci.outW; ++ox) {
            float* __restrict oRow =
                out.data() + (r * ci.outW + ox) * ci.outC;
            for (int fy = 0; fy < ci.filterH; ++fy) {
              const int iy = oy * ci.strideH - ci.padTop + fy * ci.dilationH;
              if (iy < 0 || iy >= ci.inH) continue;
              for (int fx = 0; fx < ci.filterW; ++fx) {
                const int ix =
                    ox * ci.strideW - ci.padLeft + fx * ci.dilationW;
                if (ix < 0 || ix >= ci.inW) continue;
                const float* __restrict xRow =
                    xv.data() + ((static_cast<std::size_t>(b) * ci.inH + iy) *
                                     ci.inW +
                                 ix) *
                                    ci.inC;
                const float* __restrict fRow =
                    fv.data() +
                    (static_cast<std::size_t>(fy) * ci.filterW + fx) *
                        ci.inC * mult;
                if (mult == 1) {
                  for (int ic = 0; ic < ci.inC; ++ic) {
                    oRow[ic] += xRow[ic] * fRow[ic];
                  }
                } else {
                  for (int ic = 0; ic < ci.inC; ++ic) {
                    for (int q = 0; q < mult; ++q) {
                      oRow[ic * mult + q] += xRow[ic] * fRow[ic * mult + q];
                    }
                  }
                }
              }
            }
          }
        }
      });
  return store(std::move(out));
}

DataId NativeBackend::pool2d(PoolMode mode, const TensorSpec& x,
                             const Pool2DInfo& pi) {
  KernelTimer t(kernelMs_, "native.pool2d");
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(static_cast<std::size_t>(pi.batch) *
                                       pi.outH * pi.outW * pi.channels);
  // Per-window logic matches RefBackend::pool2d element-for-element; only
  // the batch×outH outer space is sliced across the pool.
  const std::size_t totalRows = static_cast<std::size_t>(pi.batch) * pi.outH;
  const std::size_t grain = rowsPerChunk(
      static_cast<std::size_t>(pi.outW) * pi.channels * pi.filterH *
          pi.filterW,
      1 << 14);
  ThreadPool::get().parallelFor(
      totalRows, grain, [&](std::size_t rBegin, std::size_t rEnd) {
        for (std::size_t r = rBegin; r < rEnd; ++r) {
          const int b = static_cast<int>(r) / pi.outH;
          const int oy = static_cast<int>(r) % pi.outH;
          for (int ox = 0; ox < pi.outW; ++ox) {
            for (int c = 0; c < pi.channels; ++c) {
              float acc = mode == PoolMode::kMax ? -kInf : 0.f;
              int count = 0;
              for (int fy = 0; fy < pi.filterH; ++fy) {
                const int iy = oy * pi.strideH - pi.padTop + fy;
                if (iy < 0 || iy >= pi.inH) continue;
                for (int fx = 0; fx < pi.filterW; ++fx) {
                  const int ix = ox * pi.strideW - pi.padLeft + fx;
                  if (ix < 0 || ix >= pi.inW) continue;
                  const float v =
                      xv[((static_cast<std::size_t>(b) * pi.inH + iy) *
                              pi.inW +
                          ix) *
                             pi.channels +
                         c];
                  if (mode == PoolMode::kMax) {
                    acc = std::max(acc, v);
                  } else {
                    acc += v;
                  }
                  ++count;
                }
              }
              out[(r * pi.outW + ox) * pi.channels + c] =
                  mode == PoolMode::kMax ? acc : acc / std::max(count, 1);
            }
          }
        }
      });
  return store(std::move(out));
}

DataId NativeBackend::reduce(ReduceOp op, const TensorSpec& x,
                             std::size_t outer, std::size_t inner) {
  KernelTimer t(kernelMs_, "native.reduce");
  if (op != ReduceOp::kSum && op != ReduceOp::kMean) {
    return RefBackend::reduce(op, x, outer, inner);
  }
  const auto& xv = buf(x.id);
  std::vector<float> out = allocBuffer(outer);
  // Parallel over output rows only; each row's accumulation stays serial
  // (4-way split), so the parallel result is bit-identical to 1 thread.
  ThreadPool::get().parallelFor(
      outer, rowsPerChunk(inner, 1 << 14),
      [&](std::size_t oBegin, std::size_t oEnd) {
        for (std::size_t o = oBegin; o < oEnd; ++o) {
          const float* __restrict row = xv.data() + o * inner;
          // Four parallel accumulators break the dependency chain for SIMD.
          float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
          std::size_t i = 0;
          for (; i + 4 <= inner; i += 4) {
            acc0 += row[i];
            acc1 += row[i + 1];
            acc2 += row[i + 2];
            acc3 += row[i + 3];
          }
          float acc = acc0 + acc1 + acc2 + acc3;
          for (; i < inner; ++i) acc += row[i];
          out[o] =
              op == ReduceOp::kMean ? acc / static_cast<float>(inner) : acc;
        }
      });
  return store(std::move(out));
}

void registerBackend() {
  Engine::get().registerBackend(
      "native", [] { return std::make_unique<NativeBackend>(); },
      /*priority=*/2);
}

}  // namespace tfjs::backends::native
