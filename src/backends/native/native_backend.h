// NativeBackend: the analogue of the paper's Node.js backend, which binds to
// the TensorFlow C library and uses AVX on the CPU (paper section 4.2).
//
// Instead of binding to an external library we implement the same role from
// scratch: cache-blocked, vectorization-friendly kernels compiled with
// -O3 -march=native, parallelised across cores with the shared intra-op
// thread pool (core/thread_pool.h) — the same two mechanisms (SIMD + an
// Eigen-style intra-op pool) the TF C library uses. conv2d lowers to
// im2col + GEMM, the standard native-CPU strategy. Long-tail data-movement
// kernels inherit the reference implementations.
//
// Every parallel kernel uses a fixed chunk partition (independent of the
// thread count), so results are bit-identical to the single-threaded path;
// see DESIGN.md "Threading model".
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "backends/common/ref_backend.h"

namespace tfjs::backends::native {

/// Int8 weight matrix packed for the SIMD microkernel (native_quant.cc):
/// raw row-major codes plus the ISA-specific panel layout, padded so the
/// inner loop needs no tail handling. Built once per weight tensor and
/// cached on the backend — this is the "int8 at rest" representation shared
/// by every serving session that references the same weight DataId.
struct PackedQuantWeights {
  int k = 0, n = 0;        ///< logical dims ([k, n], channels on n)
  int kPad = 0, nPad = 0;  ///< padded dims (panel multiples)
  std::vector<std::int8_t> panels;    ///< AVX-512 VNNI quad-k panel layout
  std::vector<std::int16_t> panels16; ///< AVX2 pre-widened pair-k layout
  std::vector<std::int8_t> w8;        ///< row-major codes (scalar fallback)
  std::vector<std::int32_t> colSums;  ///< per-column code sums (zp correction)
};

class NativeBackend : public RefBackend {
 public:
  std::string name() const override { return "native"; }

  /// Drops the packed-weight cache entry (if any) along with the buffer.
  void disposeData(DataId id) override;

  DataId binary(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                const Shape& outShape) override;
  DataId unary(UnaryOp op, const TensorSpec& x, float alpha,
               float beta) override;
  DataId unaryInto(UnaryOp op, const TensorSpec& x, float alpha, float beta,
                   DataId dst) override;
  DataId binaryInto(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                    const Shape& outShape, DataId dst) override;
  DataId matMul(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                bool transposeB) override;
  /// Bias + activation applied inside the GEMM tile loop, per column panel
  /// after the full k accumulation — bit-identical to matMul + add + act.
  DataId fusedMatMul(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                     bool transposeB, const TensorSpec* bias,
                     FusedActivation act) override;
  DataId conv2d(const TensorSpec& x, const TensorSpec& filter,
                const Conv2DInfo& info) override;
  DataId fusedConv2d(const TensorSpec& x, const TensorSpec& filter,
                     const Conv2DInfo& info, const TensorSpec* bias,
                     FusedActivation act) override;
  /// Strip-mined fused-region interpreter: per block of output elements,
  /// inputs load once into dense rows, then each instruction runs as a
  /// dense (autovectorizable) loop over the block, instruction by
  /// instruction — the per-element op order is unchanged, so values are
  /// bit-identical to the reference per-element interpreter. Parallelised
  /// with the fixed kElemGrain partition.
  DataId fusedRegion(const RegionProgram& program,
                     std::span<const TensorSpec> inputs, const Shape& outShape,
                     DataId dst) override;
  /// SIMD int8 GEMM (AVX-512 VNNI / AVX2 / scalar, chosen at compile time).
  /// All three variants accumulate the same exact i32 values and share the
  /// scalar epilogue with the reference oracle, so results are bit-identical
  /// to RefBackend::quantizedMatMul at any thread count.
  DataId quantizedMatMul(const TensorSpec& a, const TensorSpec& b,
                         const QuantParams& wq, const TensorSpec* bias,
                         FusedActivation act, const OutQuant* outQ) override;
  DataId quantizedConv2d(const TensorSpec& x, const TensorSpec& filter,
                         const Conv2DInfo& info, const QuantParams& wq,
                         const TensorSpec* bias, FusedActivation act,
                         const OutQuant* outQ) override;
  DataId depthwiseConv2d(const TensorSpec& x, const TensorSpec& filter,
                         const Conv2DInfo& info) override;
  DataId pool2d(PoolMode mode, const TensorSpec& x,
                const Pool2DInfo& info) override;
  DataId reduce(ReduceOp op, const TensorSpec& x, std::size_t outer,
                std::size_t inner) override;

  /// Single-matrix GEMM C[m,n] += A[m,k] * B[k,n], parallelised over row or
  /// column panels on the shared pool; exposed for tests.
  static void gemm(const float* A, const float* B, float* C, int m, int k,
                   int n);
  /// GEMM with an optional fused epilogue: after the k loop finishes for a
  /// column panel, adds bias[j] (when non-null) and applies `act` to each
  /// element of that panel.
  static void gemm(const float* A, const float* B, float* C, int m, int k,
                   int n, const float* bias, FusedActivation act);

 private:
  DataId matMulImpl(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                    bool transposeB, const float* bias, FusedActivation act);
  DataId conv2dImpl(const TensorSpec& x, const TensorSpec& filter,
                    const Conv2DInfo& info, const float* bias,
                    FusedActivation act);

  /// Returns the cached panel packing of the [k, n] weight codes stored
  /// under `id`, building it on first use. Weight tensors are Variables the
  /// engine never mutates in place, so an entry stays valid until the
  /// DataId is disposed.
  std::shared_ptr<const PackedQuantWeights> packedWeights(DataId id, int k,
                                                          int n);

  /// Guards qcache_: kernels run on the scheduler thread but disposeData is
  /// called from client threads (and serving sessions share one backend).
  std::mutex qmu_;
  std::unordered_map<DataId, std::shared_ptr<const PackedQuantWeights>>
      qcache_;
};

/// Registers the "native" backend (priority between webgl-sim and cpu).
void registerBackend();

}  // namespace tfjs::backends::native
