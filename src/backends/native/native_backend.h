// NativeBackend: the analogue of the paper's Node.js backend, which binds to
// the TensorFlow C library and uses AVX on the CPU (paper section 4.2).
//
// Instead of binding to an external library we implement the same role from
// scratch: cache-blocked, vectorization-friendly kernels compiled with
// -O3 -march=native, parallelised across cores with the shared intra-op
// thread pool (core/thread_pool.h) — the same two mechanisms (SIMD + an
// Eigen-style intra-op pool) the TF C library uses. conv2d lowers to
// im2col + GEMM, the standard native-CPU strategy. Long-tail data-movement
// kernels inherit the reference implementations.
//
// Every parallel kernel uses a fixed chunk partition (independent of the
// thread count), so results are bit-identical to the single-threaded path;
// see DESIGN.md "Threading model".
#pragma once

#include "backends/common/ref_backend.h"

namespace tfjs::backends::native {

class NativeBackend : public RefBackend {
 public:
  std::string name() const override { return "native"; }

  DataId binary(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                const Shape& outShape) override;
  DataId unary(UnaryOp op, const TensorSpec& x, float alpha,
               float beta) override;
  DataId unaryInto(UnaryOp op, const TensorSpec& x, float alpha, float beta,
                   DataId dst) override;
  DataId binaryInto(BinaryOp op, const TensorSpec& a, const TensorSpec& b,
                    const Shape& outShape, DataId dst) override;
  DataId matMul(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                bool transposeB) override;
  /// Bias + activation applied inside the GEMM tile loop, per column panel
  /// after the full k accumulation — bit-identical to matMul + add + act.
  DataId fusedMatMul(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                     bool transposeB, const TensorSpec* bias,
                     FusedActivation act) override;
  DataId conv2d(const TensorSpec& x, const TensorSpec& filter,
                const Conv2DInfo& info) override;
  DataId fusedConv2d(const TensorSpec& x, const TensorSpec& filter,
                     const Conv2DInfo& info, const TensorSpec* bias,
                     FusedActivation act) override;
  DataId depthwiseConv2d(const TensorSpec& x, const TensorSpec& filter,
                         const Conv2DInfo& info) override;
  DataId pool2d(PoolMode mode, const TensorSpec& x,
                const Pool2DInfo& info) override;
  DataId reduce(ReduceOp op, const TensorSpec& x, std::size_t outer,
                std::size_t inner) override;

  /// Single-matrix GEMM C[m,n] += A[m,k] * B[k,n], parallelised over row or
  /// column panels on the shared pool; exposed for tests.
  static void gemm(const float* A, const float* B, float* C, int m, int k,
                   int n);
  /// GEMM with an optional fused epilogue: after the k loop finishes for a
  /// column panel, adds bias[j] (when non-null) and applies `act` to each
  /// element of that panel.
  static void gemm(const float* A, const float* B, float* C, int m, int k,
                   int n, const float* bias, FusedActivation act);

 private:
  DataId matMulImpl(const TensorSpec& a, const TensorSpec& b, bool transposeA,
                    bool transposeB, const float* bias, FusedActivation act);
  DataId conv2dImpl(const TensorSpec& x, const TensorSpec& filter,
                    const Conv2DInfo& info, const float* bias,
                    FusedActivation act);
};

/// Registers the "native" backend (priority between webgl-sim and cpu).
void registerBackend();

}  // namespace tfjs::backends::native
