// One-call registration of every built-in backend, in the paper's fallback
// priority order: webgl-sim (3) > native (2) > plain cpu (1).
#pragma once

#include "backends/cpu/cpu_backend.h"
#include "backends/native/native_backend.h"
#include "backends/webgl/webgl_backend.h"

namespace tfjs::backends {

inline void registerAll() {
  cpu::registerBackend();
  native::registerBackend();
  webgl::registerBackend();
}

}  // namespace tfjs::backends
