// A host-side image — the stand-in for the browser's HTMLImageElement in the
// friendly model-wrapper APIs (paper Listing 3), which take native objects
// rather than tensors.
#pragma once

#include <vector>

#include "core/error.h"
#include "core/tensor.h"

namespace tfjs::data {

struct Image {
  int height = 0;
  int width = 0;
  int channels = 3;
  /// Row-major HWC pixel values in [0, 255].
  std::vector<float> pixels;

  float& at(int y, int x, int c) {
    return pixels[(static_cast<std::size_t>(y) * width + x) * channels + c];
  }
  float at(int y, int x, int c) const {
    return pixels[(static_cast<std::size_t>(y) * width + x) * channels + c];
  }

  static Image filled(int height, int width, int channels, float value) {
    Image img;
    img.height = height;
    img.width = width;
    img.channels = channels;
    img.pixels.assign(
        static_cast<std::size_t>(height) * width * channels, value);
    return img;
  }
};

/// tf.fromPixels analogue: uploads an image as a [1, h, w, c] tensor with
/// values normalized to [-1, 1] (the MobileNet preprocessing convention).
Tensor fromPixels(const Image& img, bool normalize = true);

}  // namespace tfjs::data
