// A tf.data-style input pipeline — the paper's stated future work ("we see
// a need to provide support for full machine learning workflows, including
// data input, output, and transformation", section 7), realized the way
// tfjs-data later did: lazy, pull-based datasets with functional combinators.
//
// A Pipeline yields Examples (feature tensor + label tensor) one at a time;
// combinators (map / filter / take / shuffle / batch / repeat) wrap the
// source without materializing it. forEach / toBatches drive the pipeline.
// All tensors yielded to user callbacks are owned by the callback.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/random.h"
#include "core/tensor.h"

namespace tfjs::data {

/// One element of a dataset stream.
struct Example {
  Tensor features;
  Tensor label;

  void dispose() {
    if (features.defined()) features.dispose();
    if (label.defined()) label.dispose();
  }
};

/// Pull-based element source; next() returns nullopt when exhausted.
class ExampleIterator {
 public:
  virtual ~ExampleIterator() = default;
  virtual std::optional<Example> next() = 0;
};

class Pipeline;
using PipelinePtr = std::shared_ptr<Pipeline>;

class Pipeline : public std::enable_shared_from_this<Pipeline> {
 public:
  using IteratorFactory = std::function<std::unique_ptr<ExampleIterator>()>;

  explicit Pipeline(IteratorFactory factory) : factory_(std::move(factory)) {}

  /// Fresh iterator over the (possibly transformed) stream. Each call
  /// restarts the pipeline — sources must be re-iterable.
  std::unique_ptr<ExampleIterator> iterator() const { return factory_(); }

  // ---- combinators (lazy; each returns a new pipeline) ----
  /// Applies f to every example. f owns the input and returns a new example.
  PipelinePtr map(std::function<Example(Example)> f);
  /// Keeps examples for which pred is true (pred must not dispose).
  PipelinePtr filter(std::function<bool(const Example&)> pred);
  /// First n examples.
  PipelinePtr take(std::size_t n);
  /// Repeats the stream `count` times (count >= 1).
  PipelinePtr repeat(int count);
  /// Shuffles with a reservoir of `bufferSize` elements (tf.data semantics).
  PipelinePtr shuffle(std::size_t bufferSize, std::uint64_t seed = 42);
  /// Groups `size` consecutive examples into one Example whose tensors gain
  /// a leading batch dimension (the final partial batch is kept).
  PipelinePtr batch(int size);

  // ---- sinks ----
  /// Drives the pipeline; the callback owns each example.
  void forEach(const std::function<void(Example)>& f) const;
  /// Materializes everything (convenience for tests / small data).
  std::vector<Example> collect() const;
  /// Number of examples (consumes one pass).
  std::size_t count() const;

  // ---- sources ----
  /// From parallel tensors: element i is (features[i], labels[i]).
  static PipelinePtr fromTensors(const Tensor& features, const Tensor& labels);
  /// From a generator function returning nullopt when done; `reset` is
  /// called at the start of each iteration.
  static PipelinePtr fromGenerator(
      std::function<std::optional<Example>(std::size_t index)> gen);

 private:
  IteratorFactory factory_;
};

}  // namespace tfjs::data
