#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/random.h"
#include "ops/ops.h"

namespace tfjs::data {

namespace o = tfjs::ops;

Tensor fromPixels(const Image& img, bool normalize) {
  std::vector<float> values = img.pixels;
  if (normalize) {
    for (auto& v : values) v = v / 127.5f - 1.0f;
  }
  return o::tensor(values, Shape{1, img.height, img.width, img.channels});
}

namespace {

/// Draws one of a few fixed stroke patterns (per class) onto a canvas.
void drawPattern(std::vector<float>& canvas, int size, int cls, int dy,
                 int dx) {
  auto set = [&](int y, int x) {
    y = std::clamp(y + dy, 0, size - 1);
    x = std::clamp(x + dx, 0, size - 1);
    canvas[static_cast<std::size_t>(y) * size + x] = 1.0f;
  };
  const int mid = size / 2;
  switch (cls % 4) {
    case 0:  // vertical bar
      for (int y = 1; y < size - 1; ++y) set(y, mid);
      break;
    case 1:  // horizontal bar
      for (int x = 1; x < size - 1; ++x) set(mid, x);
      break;
    case 2:  // diagonal
      for (int i = 1; i < size - 1; ++i) set(i, i);
      break;
    case 3:  // box outline
      for (int i = 2; i < size - 2; ++i) {
        set(2, i);
        set(size - 3, i);
        set(i, 2);
        set(i, size - 3);
      }
      break;
  }
}

}  // namespace

Dataset makeSyntheticDigits(int numExamples, int size, int numClasses,
                            float noiseStddev, std::uint64_t seed) {
  TFJS_ARG_CHECK(numClasses >= 2 && numClasses <= 4,
                 "makeSyntheticDigits supports 2-4 classes");
  Random rng(seed);
  const std::size_t pixelsPer = static_cast<std::size_t>(size) * size;
  std::vector<float> images(static_cast<std::size_t>(numExamples) * pixelsPer);
  std::vector<float> labels(
      static_cast<std::size_t>(numExamples) * numClasses, 0.f);

  for (int i = 0; i < numExamples; ++i) {
    const int cls = static_cast<int>(rng.below(static_cast<std::uint32_t>(
        numClasses)));
    std::vector<float> canvas(pixelsPer, 0.f);
    const int dy = static_cast<int>(rng.below(3)) - 1;  // jitter +-1 px
    const int dx = static_cast<int>(rng.below(3)) - 1;
    drawPattern(canvas, size, cls, dy, dx);
    for (std::size_t p = 0; p < pixelsPer; ++p) {
      images[static_cast<std::size_t>(i) * pixelsPer + p] =
          canvas[p] + rng.normal(0, noiseStddev);
    }
    labels[static_cast<std::size_t>(i) * numClasses + cls] = 1.0f;
  }

  Dataset ds;
  ds.images = o::tensor(images, Shape{numExamples, size, size, 1});
  ds.labels = o::tensor(labels, Shape{numExamples, numClasses});
  ds.numClasses = numClasses;
  return ds;
}

std::pair<Tensor, Tensor> makeLinearData(int n, float slope, float intercept,
                                         float noiseStddev,
                                         std::uint64_t seed) {
  Random rng(seed);
  std::vector<float> xs(static_cast<std::size_t>(n));
  std::vector<float> ys(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const float x = rng.uniform(-1, 1);
    xs[static_cast<std::size_t>(i)] = x;
    ys[static_cast<std::size_t>(i)] =
        slope * x + intercept + rng.normal(0, noiseStddev);
  }
  return {o::tensor(xs, Shape{n, 1}), o::tensor(ys, Shape{n, 1})};
}

Image makeTestImage(int height, int width, float blobY, float blobX,
                    std::uint64_t seed) {
  Random rng(seed);
  Image img = Image::filled(height, width, 3, 0);
  const float sigma = static_cast<float>(std::min(height, width)) / 10.0f;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Smooth background gradients plus noise.
      const float gy = static_cast<float>(y) / static_cast<float>(height);
      const float gx = static_cast<float>(x) / static_cast<float>(width);
      const float dy = (static_cast<float>(y) - blobY) / sigma;
      const float dx = (static_cast<float>(x) - blobX) / sigma;
      const float blob = 200.0f * std::exp(-0.5f * (dy * dy + dx * dx));
      img.at(y, x, 0) = std::clamp(40 * gy + blob + rng.normal(0, 4), 0.f,
                                   255.f);
      img.at(y, x, 1) = std::clamp(40 * gx + blob + rng.normal(0, 4), 0.f,
                                   255.f);
      img.at(y, x, 2) = std::clamp(30 + 0.5f * blob + rng.normal(0, 4), 0.f,
                                   255.f);
    }
  }
  return img;
}

}  // namespace tfjs::data
