#include "data/pipeline.h"

#include "ops/ops.h"

namespace tfjs::data {

namespace o = tfjs::ops;

namespace {

/// Adapts a std::function into an ExampleIterator.
class FnIterator : public ExampleIterator {
 public:
  explicit FnIterator(std::function<std::optional<Example>()> fn)
      : fn_(std::move(fn)) {}
  std::optional<Example> next() override { return fn_(); }

 private:
  std::function<std::optional<Example>()> fn_;
};

}  // namespace

PipelinePtr Pipeline::map(std::function<Example(Example)> f) {
  auto self = shared_from_this();
  return std::make_shared<Pipeline>([self, f = std::move(f)]() {
    auto it = std::make_shared<std::unique_ptr<ExampleIterator>>(
        self->iterator());
    return std::make_unique<FnIterator>([it, f]() -> std::optional<Example> {
      auto e = (*it)->next();
      if (!e) return std::nullopt;
      return f(std::move(*e));
    });
  });
}

PipelinePtr Pipeline::filter(std::function<bool(const Example&)> pred) {
  auto self = shared_from_this();
  return std::make_shared<Pipeline>([self, pred = std::move(pred)]() {
    auto it = std::make_shared<std::unique_ptr<ExampleIterator>>(
        self->iterator());
    return std::make_unique<FnIterator>(
        [it, pred]() -> std::optional<Example> {
          for (;;) {
            auto e = (*it)->next();
            if (!e) return std::nullopt;
            if (pred(*e)) return e;
            e->dispose();
          }
        });
  });
}

PipelinePtr Pipeline::take(std::size_t n) {
  auto self = shared_from_this();
  return std::make_shared<Pipeline>([self, n]() {
    auto it = std::make_shared<std::unique_ptr<ExampleIterator>>(
        self->iterator());
    auto remaining = std::make_shared<std::size_t>(n);
    return std::make_unique<FnIterator>(
        [it, remaining]() -> std::optional<Example> {
          if (*remaining == 0) return std::nullopt;
          auto e = (*it)->next();
          if (e) --*remaining;
          return e;
        });
  });
}

PipelinePtr Pipeline::repeat(int count) {
  TFJS_ARG_CHECK(count >= 1, "repeat count must be >= 1");
  auto self = shared_from_this();
  return std::make_shared<Pipeline>([self, count]() {
    auto it = std::make_shared<std::unique_ptr<ExampleIterator>>(
        self->iterator());
    auto left = std::make_shared<int>(count);
    return std::make_unique<FnIterator>(
        [self, it, left]() -> std::optional<Example> {
          for (;;) {
            auto e = (*it)->next();
            if (e) return e;
            if (--*left <= 0) return std::nullopt;
            *it = self->iterator();
          }
        });
  });
}

PipelinePtr Pipeline::shuffle(std::size_t bufferSize, std::uint64_t seed) {
  TFJS_ARG_CHECK(bufferSize >= 1, "shuffle buffer must be >= 1");
  auto self = shared_from_this();
  return std::make_shared<Pipeline>([self, bufferSize, seed]() {
    auto it = std::make_shared<std::unique_ptr<ExampleIterator>>(
        self->iterator());
    auto buffer = std::make_shared<std::vector<Example>>();
    auto rng = std::make_shared<Random>(seed);
    return std::make_unique<FnIterator>(
        [it, buffer, rng, bufferSize]() -> std::optional<Example> {
          while (buffer->size() < bufferSize) {
            auto e = (*it)->next();
            if (!e) break;
            buffer->push_back(std::move(*e));
          }
          if (buffer->empty()) return std::nullopt;
          const std::size_t pick =
              rng->below(static_cast<std::uint32_t>(buffer->size()));
          Example out = std::move((*buffer)[pick]);
          (*buffer)[pick] = std::move(buffer->back());
          buffer->pop_back();
          return out;
        });
  });
}

PipelinePtr Pipeline::batch(int size) {
  TFJS_ARG_CHECK(size >= 1, "batch size must be >= 1");
  auto self = shared_from_this();
  return std::make_shared<Pipeline>([self, size]() {
    auto it = std::make_shared<std::unique_ptr<ExampleIterator>>(
        self->iterator());
    return std::make_unique<FnIterator>(
        [it, size]() -> std::optional<Example> {
          std::vector<Tensor> feats, labels;
          for (int i = 0; i < size; ++i) {
            auto e = (*it)->next();
            if (!e) break;
            feats.push_back(o::expandDims(e->features, 0));
            labels.push_back(o::expandDims(e->label, 0));
            e->dispose();
          }
          if (feats.empty()) return std::nullopt;
          Example out;
          out.features = o::concat(feats, 0);
          out.label = o::concat(labels, 0);
          for (auto& t : feats) t.dispose();
          for (auto& t : labels) t.dispose();
          return out;
        });
  });
}

void Pipeline::forEach(const std::function<void(Example)>& f) const {
  auto it = iterator();
  while (auto e = it->next()) f(std::move(*e));
}

std::vector<Example> Pipeline::collect() const {
  std::vector<Example> out;
  forEach([&](Example e) { out.push_back(std::move(e)); });
  return out;
}

std::size_t Pipeline::count() const {
  std::size_t n = 0;
  forEach([&](Example e) {
    ++n;
    e.dispose();
  });
  return n;
}

PipelinePtr Pipeline::fromTensors(const Tensor& features,
                                  const Tensor& labels) {
  TFJS_ARG_CHECK(features.shape()[0] == labels.shape()[0],
                 "fromTensors: feature/label counts differ");
  // Keep handles alive inside the pipeline.
  const Tensor f = features.clone();
  const Tensor l = labels.clone();
  f.keep();
  l.keep();
  const int n = features.shape()[0];
  return std::make_shared<Pipeline>([f, l, n]() {
    auto index = std::make_shared<int>(0);
    return std::make_unique<FnIterator>(
        [f, l, n, index]() -> std::optional<Example> {
          if (*index >= n) return std::nullopt;
          const int i = (*index)++;
          std::vector<int> fBegin(static_cast<std::size_t>(f.rank()), 0);
          std::vector<int> fSize = f.shape().dims();
          fBegin[0] = i;
          fSize[0] = 1;
          std::vector<int> lBegin(static_cast<std::size_t>(l.rank()), 0);
          std::vector<int> lSize = l.shape().dims();
          lBegin[0] = i;
          lSize[0] = 1;
          Example e;
          Tensor fs = ops::slice(f, fBegin, fSize);
          Tensor ls = ops::slice(l, lBegin, lSize);
          // Drop the leading singleton: elements are single examples.
          e.features = fs.reshape(
              Shape(std::vector<int>(fSize.begin() + 1, fSize.end())));
          e.label = ls.reshape(
              Shape(std::vector<int>(lSize.begin() + 1, lSize.end())));
          fs.dispose();
          ls.dispose();
          return e;
        });
  });
}

PipelinePtr Pipeline::fromGenerator(
    std::function<std::optional<Example>(std::size_t)> gen) {
  return std::make_shared<Pipeline>([gen = std::move(gen)]() {
    auto index = std::make_shared<std::size_t>(0);
    return std::make_unique<FnIterator>(
        [gen, index]() -> std::optional<Example> {
          return gen((*index)++);
        });
  });
}

}  // namespace tfjs::data
