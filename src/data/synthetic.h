// Synthetic datasets (DESIGN.md substitution for proprietary data): seeded,
// structured generators whose classes are genuinely separable, so training
// experiments measure the framework rather than the data.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/image.h"
#include "core/tensor.h"

namespace tfjs::data {

/// A labelled image-classification dataset held as two tensors.
struct Dataset {
  Tensor images;  ///< [n, h, w, c]
  Tensor labels;  ///< [n, numClasses] one-hot
  int numClasses = 0;

  void dispose() {
    images.dispose();
    labels.dispose();
  }
};

/// MNIST-like synthetic digits: each class is a fixed stroke pattern on a
/// `size`x`size` canvas, rendered with per-example jitter and pixel noise.
/// Classes are separable but not trivially so (noise ~ N(0, noiseStddev)).
Dataset makeSyntheticDigits(int numExamples, int size = 12,
                            int numClasses = 4, float noiseStddev = 0.25f,
                            std::uint64_t seed = 42);

/// Linear-regression toy data: y = slope*x + intercept + noise (Listing 1's
/// "synthetic data" workload).
std::pair<Tensor, Tensor> makeLinearData(int n, float slope, float intercept,
                                         float noiseStddev = 0,
                                         std::uint64_t seed = 42);

/// A photo-like test image with smooth gradients and a bright blob at a
/// controllable position (used by the PoseNet demo and benches).
Image makeTestImage(int height, int width, float blobY, float blobX,
                    std::uint64_t seed = 42);

}  // namespace tfjs::data
