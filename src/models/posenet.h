// PoseNet (Oved 2018): human pose estimation, the paper's flagship hosted
// model. Reproduces the friendly API of Listing 3 — the caller passes an
// image and receives a plain Pose struct of named keypoints; tensors never
// appear in the interface ("wrapper APIs that hide tensors from the user",
// section 5.2).
//
// Architecture: a truncated MobileNet backbone at output stride 16, with two
// 1x1-conv heads producing keypoint heatmaps [h', w', 17] and per-keypoint
// (dy, dx) offsets [h', w', 34]. Single-pose decoding takes each heatmap's
// argmax and refines it with the offset vector, as in the original release.
// Weights are synthetic (DESIGN.md substitution) — the decode pipeline,
// shapes, and op mix are the real ones.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "data/image.h"
#include "layers/conv_layers.h"
#include "layers/sequential.h"

namespace tfjs::models {

inline constexpr int kNumKeypoints = 17;

/// The 17 COCO keypoint names, in heatmap-channel order.
const std::array<const char*, kNumKeypoints>& posenetPartNames();

struct Keypoint {
  std::string part;
  float x = 0;  ///< pixel position in the input image
  float y = 0;
  float score = 0;
};

struct Pose {
  float score = 0;
  std::vector<Keypoint> keypoints;

  /// Console-output rendering in the spirit of Listing 3.
  std::string toJsonString() const;
};

struct PoseNetOptions {
  float alpha = 0.5f;   ///< MobileNet width multiplier (0.5 is the web default)
  int inputSize = 225;  ///< resized square input
  int outputStride = 16;
  std::uint64_t seed = 42;
};

class PoseNet {
 public:
  explicit PoseNet(PoseNetOptions opts = {});

  /// Listing 3: posenet.estimateSinglePose(imageElement) -> pose.
  Pose estimateSinglePose(const data::Image& img);

  layers::Sequential& backbone() { return *backbone_; }

 private:
  PoseNetOptions opts_;
  std::unique_ptr<layers::Sequential> backbone_;
  std::shared_ptr<layers::Conv2D> heatmapHead_;
  std::shared_ptr<layers::Conv2D> offsetHead_;
};

}  // namespace tfjs::models
