#include "models/posenet.h"

#include <sstream>

#include "core/engine.h"
#include "models/mobilenet.h"
#include "ops/ops.h"

namespace tfjs::models {

namespace o = tfjs::ops;

const std::array<const char*, kNumKeypoints>& posenetPartNames() {
  static const std::array<const char*, kNumKeypoints> kParts = {
      "nose", "leftEye", "rightEye", "leftEar", "rightEar",
      "leftShoulder", "rightShoulder", "leftElbow", "rightElbow",
      "leftWrist", "rightWrist", "leftHip", "rightHip",
      "leftKnee", "rightKnee", "leftAnkle", "rightAnkle"};
  return kParts;
}

std::string Pose::toJsonString() const {
  std::ostringstream os;
  os << "{\n  \"score\": " << score << ",\n  \"keypoints\": [\n";
  for (std::size_t i = 0; i < keypoints.size(); ++i) {
    const auto& k = keypoints[i];
    os << "    {\"position\": {\"x\": " << k.x << ", \"y\": " << k.y
       << "}, \"part\": \"" << k.part << "\", \"score\": " << k.score << "}";
    if (i + 1 < keypoints.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}";
  return os.str();
}

PoseNet::PoseNet(PoseNetOptions opts) : opts_(std::move(opts)) {
  TFJS_ARG_CHECK(opts_.outputStride == 8 || opts_.outputStride == 16 ||
                     opts_.outputStride == 32,
                 "PoseNet outputStride must be 8, 16 or 32");
  // Truncated MobileNet: keep blocks until the spatial stride reaches
  // outputStride (stride 16 = conv1 + first 5 separable blocks).
  MobileNetOptions mn;
  mn.alpha = opts_.alpha;
  mn.inputSize = opts_.inputSize;
  mn.includeTop = false;
  mn.seed = opts_.seed;
  auto full = buildMobileNetV1(mn);
  backbone_ = std::make_unique<layers::Sequential>("posenet_backbone");
  int stride = 1;
  for (const auto& layer : full->layers()) {
    // Track the cumulative stride by inspecting layer config.
    const io::Json cfg = layer->getConfig();
    if (cfg.has("strides")) {
      stride *= cfg.at("strides").asArray()[0].asInt();
    }
    if (stride > opts_.outputStride) break;
    backbone_->add(layer);
  }

  layers::Conv2DOptions hm;
  hm.filters = kNumKeypoints;
  hm.kernelH = hm.kernelW = 1;
  hm.padding = "same";
  hm.activation = "sigmoid";
  hm.name = "heatmap";
  heatmapHead_ = std::make_shared<layers::Conv2D>(hm);

  layers::Conv2DOptions of;
  of.filters = 2 * kNumKeypoints;
  of.kernelH = of.kernelW = 1;
  of.padding = "same";
  of.name = "offset";
  offsetHead_ = std::make_shared<layers::Conv2D>(of);
}

Pose PoseNet::estimateSinglePose(const data::Image& img) {
  Pose pose;
  Engine::get().tidyVoid([&] {
    Tensor x = data::fromPixels(img);
    if (img.height != opts_.inputSize || img.width != opts_.inputSize) {
      x = o::resizeBilinear(x, opts_.inputSize, opts_.inputSize);
    }
    Tensor features = backbone_->apply(x, /*training=*/false);
    Tensor heatmaps = heatmapHead_->apply(features);   // [1,h,w,17]
    Tensor offsets = offsetHead_->apply(features);     // [1,h,w,34]

    const int h = heatmaps.shape()[1];
    const int w = heatmaps.shape()[2];
    const auto hm = heatmaps.dataSync();
    const auto off = offsets.dataSync();

    // Rescale decoded positions from the network's input space back to the
    // caller's image space.
    const float scaleY =
        static_cast<float>(img.height) / static_cast<float>(opts_.inputSize);
    const float scaleX =
        static_cast<float>(img.width) / static_cast<float>(opts_.inputSize);

    float total = 0;
    for (int k = 0; k < kNumKeypoints; ++k) {
      // argmax over the k-th heatmap channel
      int bestY = 0, bestX = 0;
      float best = -1;
      for (int y = 0; y < h; ++y) {
        for (int xx = 0; xx < w; ++xx) {
          const float v =
              hm[(static_cast<std::size_t>(y) * w + xx) * kNumKeypoints + k];
          if (v > best) {
            best = v;
            bestY = y;
            bestX = xx;
          }
        }
      }
      const std::size_t offBase =
          (static_cast<std::size_t>(bestY) * w + bestX) * 2 * kNumKeypoints;
      const float dy = off[offBase + static_cast<std::size_t>(k)];
      const float dx = off[offBase + static_cast<std::size_t>(kNumKeypoints + k)];
      Keypoint kp;
      kp.part = posenetPartNames()[static_cast<std::size_t>(k)];
      kp.y = (static_cast<float>(bestY * opts_.outputStride) + dy) * scaleY;
      kp.x = (static_cast<float>(bestX * opts_.outputStride) + dx) * scaleX;
      kp.score = best;
      total += best;
      pose.keypoints.push_back(std::move(kp));
    }
    pose.score = total / kNumKeypoints;
  });
  return pose;
}

}  // namespace tfjs::models
