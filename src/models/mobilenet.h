// MobileNet v1 (Howard et al. 2017) — the paper's benchmark workload
// (Table 1) and the backbone of its hosted-models story (section 5.2).
//
// Weights are synthetic (seeded initializers): experiments here measure
// execution, and FLOP counts / tensor shapes are architecture-determined
// (DESIGN.md substitution table). The width multiplier (alpha) and input
// size follow the upstream naming: MobileNet v1 1.0_224 is alpha=1,
// inputSize=224.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/image.h"
#include "layers/sequential.h"

namespace tfjs::models {

struct MobileNetOptions {
  float alpha = 1.0f;   ///< width multiplier
  int inputSize = 224;  ///< square input resolution
  int numClasses = 1000;
  bool includeTop = true;
  /// true adds BatchNormalization after every conv (trainable graph);
  /// false emits the converter-style folded graph (conv + bias only).
  bool withBatchNorm = false;
  /// true quantizes every pointwise/dense kernel to per-channel int8 after
  /// the model is built (layers::quantizeWeightsInt8) — the classifier does
  /// it in its constructor; buildMobileNetV1 callers must build first.
  bool quantizeInt8 = false;
  std::uint64_t seed = 42;
};

/// Builds the network; the returned model is unbuilt until first use.
std::unique_ptr<layers::Sequential> buildMobileNetV1(
    const MobileNetOptions& opts = {});

/// Analytic multiply-add based FLOP count of one inference (used to sanity-
/// check the device cost model).
std::size_t mobileNetV1Flops(const MobileNetOptions& opts = {});

/// Friendly classification wrapper (section 5.2): accepts a host Image and
/// returns human-readable predictions — no tensors in the API.
class MobileNetClassifier {
 public:
  explicit MobileNetClassifier(MobileNetOptions opts = {});

  struct Prediction {
    std::string className;
    float probability = 0;
  };
  /// Resizes, normalizes, runs the network, and returns the top-k classes.
  std::vector<Prediction> classify(const data::Image& img, int topK = 3);

  /// Tensor-level escape hatch for expert users (transfer learning): the
  /// activations of the layer before the classification head.
  Tensor infer(const data::Image& img);

  layers::Sequential& model() { return *model_; }

 private:
  MobileNetOptions opts_;
  std::unique_ptr<layers::Sequential> model_;
};

}  // namespace tfjs::models
