#include "models/mobilenet.h"

#include <algorithm>
#include <cmath>

#include "core/conv_util.h"
#include "core/engine.h"
#include "layers/conv_layers.h"
#include "layers/core_layers.h"
#include "layers/quantize.h"
#include "ops/ops.h"

namespace tfjs::models {

namespace o = tfjs::ops;
using layers::BatchNormalization;
using layers::BatchNormOptions;
using layers::Conv2D;
using layers::Conv2DOptions;
using layers::Dense;
using layers::DenseOptions;
using layers::DepthwiseConv2D;
using layers::DepthwiseConv2DOptions;
using layers::GlobalAveragePooling2D;
using layers::Sequential;

namespace {

/// (pointwise filters, stride) for the 13 depthwise-separable blocks.
constexpr std::pair<int, int> kBlocks[] = {
    {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
    {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
    {512, 1}, {1024, 2}, {1024, 1},
};

int scaled(int channels, float alpha) {
  return std::max(8, static_cast<int>(std::lround(channels * alpha)));
}

void addConvUnit(Sequential& m, const MobileNetOptions& opts, int filters,
                 int kernel, int stride, const std::string& name) {
  Conv2DOptions c;
  c.filters = filters;
  c.kernelH = c.kernelW = kernel;
  c.strideH = c.strideW = stride;
  c.padding = "same";
  c.useBias = !opts.withBatchNorm;  // folded graphs carry the bias
  c.activation = opts.withBatchNorm ? "linear" : "relu6";
  // He init keeps activation variance stable through the 27-layer ReLU
  // stack; with Glorot the folded (BN-less) graph collapses to ~0 features.
  c.kernelInitializer = "heNormal";
  c.name = name;
  m.add(std::make_shared<Conv2D>(c));
  if (opts.withBatchNorm) {
    BatchNormOptions bn;
    bn.name = name + "_bn";
    m.add(std::make_shared<BatchNormalization>(bn));
    m.add(std::make_shared<layers::Activation>("relu6", name + "_relu"));
  }
}

void addDepthwiseUnit(Sequential& m, const MobileNetOptions& opts, int stride,
                      const std::string& name) {
  DepthwiseConv2DOptions d;
  d.kernelH = d.kernelW = 3;
  d.strideH = d.strideW = stride;
  d.padding = "same";
  d.useBias = !opts.withBatchNorm;
  d.activation = opts.withBatchNorm ? "linear" : "relu6";
  d.kernelInitializer = "heNormal";
  d.name = name;
  m.add(std::make_shared<DepthwiseConv2D>(d));
  if (opts.withBatchNorm) {
    BatchNormOptions bn;
    bn.name = name + "_bn";
    m.add(std::make_shared<BatchNormalization>(bn));
    m.add(std::make_shared<layers::Activation>("relu6", name + "_relu"));
  }
}

}  // namespace

std::unique_ptr<Sequential> buildMobileNetV1(const MobileNetOptions& opts) {
  TFJS_ARG_CHECK(opts.alpha > 0, "MobileNet alpha must be positive");
  TFJS_ARG_CHECK(opts.inputSize >= 32, "MobileNet input must be >= 32");
  auto model = std::make_unique<Sequential>(
      "mobilenet_v1_" + std::to_string(opts.alpha) + "_" +
      std::to_string(opts.inputSize));

  addConvUnit(*model, opts, scaled(32, opts.alpha), 3, 2, "conv1");
  int blockIdx = 1;
  for (const auto& [filters, stride] : kBlocks) {
    const std::string base = "conv_dw_" + std::to_string(blockIdx);
    addDepthwiseUnit(*model, opts, stride, base);
    addConvUnit(*model, opts, scaled(filters, opts.alpha), 1, 1,
                "conv_pw_" + std::to_string(blockIdx));
    ++blockIdx;
  }
  if (opts.includeTop) {
    model->add(std::make_shared<GlobalAveragePooling2D>("global_pool"));
    DenseOptions d;
    d.units = opts.numClasses;
    d.activation = "softmax";
    d.name = "predictions";
    model->add(std::make_shared<Dense>(d));
  }
  return model;
}

std::size_t mobileNetV1Flops(const MobileNetOptions& opts) {
  std::size_t flops = 0;
  int size = opts.inputSize;
  int channels = 3;

  auto convFlops = [&](int outC, int kernel, int stride) {
    size = (size + stride - 1) / stride;  // SAME padding
    flops += 2ull * static_cast<std::size_t>(size) * size * outC * kernel *
             kernel * channels;
    channels = outC;
  };
  auto dwFlops = [&](int stride) {
    size = (size + stride - 1) / stride;
    flops += 2ull * static_cast<std::size_t>(size) * size * channels * 9;
  };

  convFlops(scaled(32, opts.alpha), 3, 2);
  for (const auto& [filters, stride] : kBlocks) {
    dwFlops(stride);
    convFlops(scaled(filters, opts.alpha), 1, 1);
  }
  if (opts.includeTop) {
    flops += 2ull * static_cast<std::size_t>(channels) * opts.numClasses;
  }
  return flops;
}

// ------------------------------------------------------------- classifier

MobileNetClassifier::MobileNetClassifier(MobileNetOptions opts)
    : opts_(std::move(opts)), model_(buildMobileNetV1(opts_)) {
  model_->build(Shape{1, opts_.inputSize, opts_.inputSize, 3});
  if (opts_.quantizeInt8) layers::quantizeWeightsInt8(*model_);
}

Tensor MobileNetClassifier::infer(const data::Image& img) {
  return Engine::get().tidy([&] {
    Tensor x = data::fromPixels(img);
    if (img.height != opts_.inputSize || img.width != opts_.inputSize) {
      x = o::resizeBilinear(x, opts_.inputSize, opts_.inputSize);
    }
    return model_->apply(x, /*training=*/false);
  });
}

std::vector<MobileNetClassifier::Prediction> MobileNetClassifier::classify(
    const data::Image& img, int topK) {
  Tensor probs = infer(img);
  const auto v = probs.dataSync();
  probs.dispose();

  std::vector<int> idx(v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  const int k = std::min<int>(topK, static_cast<int>(v.size()));
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](int a, int b) {
                      return v[static_cast<std::size_t>(a)] >
                             v[static_cast<std::size_t>(b)];
                    });
  std::vector<Prediction> out;
  for (int i = 0; i < k; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "class_%04d", idx[static_cast<std::size_t>(i)]);
    out.push_back(Prediction{name, v[static_cast<std::size_t>(idx[
        static_cast<std::size_t>(i)])]});
  }
  return out;
}

}  // namespace tfjs::models
