#include "serving/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/engine.h"
#include "core/error.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "ops/ops.h"

namespace tfjs::serving {

namespace o = ops;
using Clock = std::chrono::steady_clock;

namespace {

double msBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// [n, ...example] — the example shape with a batch dimension prepended.
Shape batchShape(const Shape& example, int n) {
  std::vector<int> dims;
  dims.reserve(static_cast<std::size_t>(example.rank()) + 1);
  dims.push_back(n);
  for (int d : example.dims()) dims.push_back(d);
  return Shape(std::move(dims));
}

int nextPowerOfTwo(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

metrics::Gauge& queueDepthGauge() {
  static metrics::Gauge& g =
      metrics::Registry::get().gauge("serving.queue_depth");
  return g;
}

}  // namespace

// ---------------------------------------------------------------- Session

std::future<InferenceResult> Session::infer(std::vector<float> input,
                                            const Shape& exampleShape) {
  bool accepted = false;
  auto fut = server_->submit(*this, std::move(input), exampleShape,
                             /*blocking=*/true, accepted);
  if (!accepted) {
    throw Error("serving: session '" + name_ +
                "' submitted to a stopped server");
  }
  return fut;
}

std::optional<std::future<InferenceResult>> Session::tryInfer(
    std::vector<float> input, const Shape& exampleShape) {
  bool accepted = false;
  auto fut = server_->submit(*this, std::move(input), exampleShape,
                             /*blocking=*/false, accepted);
  if (!accepted) return std::nullopt;
  return fut;
}

InferenceResult Session::inferSync(std::vector<float> input,
                                   const Shape& exampleShape) {
  return infer(std::move(input), exampleShape).get();
}

// --------------------------------------------------------- InferenceServer

InferenceServer::InferenceServer(std::unique_ptr<layers::Sequential> model,
                                 ServerOptions opts)
    : opts_(std::move(opts)),
      model_(std::move(model)),
      queue_(opts_.queueCapacity) {
  TFJS_ARG_CHECK(model_ != nullptr, "InferenceServer needs a model");
  TFJS_ARG_CHECK(opts_.maxBatch >= 1,
                 "maxBatch must be >= 1, got " << opts_.maxBatch);
  scheduler_ = std::thread([this] { schedulerMain(); });
}

InferenceServer::~InferenceServer() { stop(); }

std::shared_ptr<Session> InferenceServer::createSession(std::string name) {
  const int id = nextSessionId_.fetch_add(1, std::memory_order_relaxed);
  if (name.empty()) name = "session-" + std::to_string(id);
  // Session's constructor is private; sessions only come from a server.
  return std::shared_ptr<Session>(new Session(this, std::move(name), id));
}

void InferenceServer::stop() {
  queue_.close();
  // Two concurrent callers (an explicit stop() racing the destructor) must
  // not both join: call_once lets exactly one caller join while late
  // callers block until the drain completes.
  std::call_once(joinOnce_, [this] { scheduler_.join(); });
}

InferenceServer::Stats InferenceServer::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.paddedRows = paddedRows_.load(std::memory_order_relaxed);
  s.maxBatchSize = maxBatchSize_.load(std::memory_order_relaxed);
  const std::uint64_t served = served_.load(std::memory_order_relaxed);
  s.inFlightAtSnapshot = s.requests > served ? s.requests - served : 0;
  return s;
}

std::future<InferenceResult> InferenceServer::submit(
    Session& session, std::vector<float> input, const Shape& exampleShape,
    bool blocking, bool& accepted) {
  static metrics::Counter& requestsCounter =
      metrics::Registry::get().counter("serving.requests");
  static metrics::Counter& rejectedCounter =
      metrics::Registry::get().counter("serving.rejected");
  TFJS_ARG_CHECK(input.size() == exampleShape.size(),
                 "serving: input length " << input.size()
                                          << " does not match example shape "
                                          << exampleShape.toString());
  internal::Request req;
  req.promise = std::make_shared<std::promise<InferenceResult>>();
  req.input = std::move(input);
  req.exampleShape = exampleShape;
  req.submitted = Clock::now();
  req.sessionId = session.id();
  auto fut = req.promise->get_future();

  accepted = blocking ? queue_.push(std::move(req))
                      : queue_.tryPush(std::move(req));
  if (accepted) {
    session.submitted_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    requestsCounter.inc();
    queueDepthGauge().set(static_cast<std::int64_t>(queue_.size()));
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    rejectedCounter.inc();
  }
  return fut;
}

void InferenceServer::schedulerMain() {
  // All tensor work is confined to this thread; the backend choice is the
  // engine-global active backend (the serving process serves one device).
  // Any exception escaping a std::thread is std::terminate for the whole
  // process, so a bad backend name must not leak out of here: fail every
  // request with the error until the server is stopped instead.
  try {
    setBackend(opts_.backend);
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    while (true) {
      auto r = queue_.popFor(std::chrono::milliseconds(20));
      if (!r) {
        if (queue_.closed() && queue_.size() == 0) return;
        continue;
      }
      std::vector<internal::Request> one;
      one.push_back(std::move(*r));
      failGroup(one, err);
    }
  }

  const auto sameShape = [](const internal::Request& a, const Shape& s) {
    return a.exampleShape == s;
  };

  while (true) {
    if (pending_.empty()) {
      auto r = queue_.popFor(std::chrono::milliseconds(20));
      if (!r) {
        if (queue_.closed() && queue_.size() == 0) break;
        continue;
      }
      pending_.push_back(std::move(*r));
    }

    // Form a batch around the oldest deferred request: linger up to
    // batchDelayMs for shape-mates, bounded by maxBatch.
    const Shape shape = pending_.front().exampleShape;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               opts_.batchDelayMs));
    auto countMates = [&] {
      return std::count_if(pending_.begin(), pending_.end(),
                           [&](const internal::Request& p) {
                             return sameShape(p, shape);
                           });
    };
    while (countMates() < opts_.maxBatch) {
      auto r = queue_.popUntil(deadline);
      if (!r) break;
      pending_.push_back(std::move(*r));
    }
    queueDepthGauge().set(static_cast<std::int64_t>(queue_.size()));

    // Extract up to maxBatch shape-mates, preserving arrival order; other
    // shapes stay deferred and lead the next batch.
    std::vector<internal::Request> group;
    group.reserve(static_cast<std::size_t>(opts_.maxBatch));
    for (auto it = pending_.begin();
         it != pending_.end() &&
         group.size() < static_cast<std::size_t>(opts_.maxBatch);) {
      if (sameShape(*it, shape)) {
        group.push_back(std::move(*it));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    runBatch(group);
  }

  // Closed and drained: anything still deferred is served before exit.
  while (!pending_.empty()) {
    const Shape shape = pending_.front().exampleShape;
    std::vector<internal::Request> group;
    for (auto it = pending_.begin();
         it != pending_.end() &&
         group.size() < static_cast<std::size_t>(opts_.maxBatch);) {
      if (it->exampleShape == shape) {
        group.push_back(std::move(*it));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    runBatch(group);
  }
}

void InferenceServer::runBatch(std::vector<internal::Request>& group) {
  static metrics::Counter& batchesCounter =
      metrics::Registry::get().counter("serving.batches");
  static metrics::Counter& paddedCounter =
      metrics::Registry::get().counter("serving.padded_rows");
  static metrics::Histogram& batchSizeHist =
      metrics::Registry::get().histogram("serving.batch_size");
  static metrics::Histogram& queueHist =
      metrics::Registry::get().histogram("serving.queue_ms");

  if (group.empty()) return;
  trace::Span span("serving", "batch");
  const auto formed = Clock::now();
  const int batch = static_cast<int>(group.size());
  const Shape& example = group.front().exampleShape;

  int padRows = 0;
  if (opts_.padToPowerOfTwo) {
    padRows = std::min(nextPowerOfTwo(batch), opts_.maxBatch) - batch;
    if (padRows < 0) padRows = 0;
  }

  Engine& engine = Engine::get();
  // One tensor per request, concatenated along the batch axis — the batch
  // concat / output slice pair is the serving hot path. Everything that can
  // throw (a request shape the model rejects, a kernel failure) stays
  // inside the try: an exception escaping the scheduler's std::thread would
  // std::terminate the whole server, so a failed pass must reject only this
  // group's promises and leave the scheduler serving other tenants.
  std::vector<Tensor> inputs;
  Tensor batched;
  Tensor out;
  try {
    inputs.reserve(static_cast<std::size_t>(batch) + (padRows > 0 ? 1 : 0));
    for (auto& req : group) {
      inputs.push_back(
          engine.makeTensorFromHost(req.input, batchShape(example, 1)));
    }
    if (padRows > 0) {
      inputs.push_back(o::zeros(batchShape(example, padRows)));
      paddedRows_.fetch_add(static_cast<std::uint64_t>(padRows),
                            std::memory_order_relaxed);
      paddedCounter.inc(static_cast<std::uint64_t>(padRows));
    }
    batched = inputs.size() == 1 ? inputs.front() : o::concat(inputs, 0);

    out = model_->predict(batched);

    std::vector<int> sliceSize = out.shape().dims();
    sliceSize[0] = 1;
    const Shape exampleOut{std::vector<int>(sliceSize)};
    for (int i = 0; i < batch; ++i) {
      std::vector<int> begin(static_cast<std::size_t>(out.rank()), 0);
      begin[0] = i;
      InferenceResult res;
      if (batch + padRows == 1) {
        // Single-request pass: the output is already this request's result;
        // skipping the slice keeps the unbatched path allocation-minimal.
        res.values = out.dataSync();
      } else {
        Tensor s = o::slice(out, begin, sliceSize);
        res.values = s.dataSync();
        s.dispose();
      }
      res.shape = exampleOut;
      res.batchSize = batch;
      res.batchPadding = padRows;
      res.queueMs = msBetween(group[static_cast<std::size_t>(i)].submitted,
                              formed);
      res.totalMs = msBetween(group[static_cast<std::size_t>(i)].submitted,
                              Clock::now());
      queueHist.observe(res.queueMs);
      fulfill(group[static_cast<std::size_t>(i)], std::move(res));
    }
  } catch (...) {
    if (out.defined()) out.dispose();
    if (inputs.size() > 1 && batched.defined()) batched.dispose();
    for (Tensor& t : inputs) {
      if (t.defined()) t.dispose();
    }
    failGroup(group, std::current_exception());
    return;
  }

  out.dispose();
  if (inputs.size() > 1) {
    batched.dispose();
    for (Tensor& t : inputs) t.dispose();
  } else {
    batched.dispose();  // same handle as inputs.front()
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  served_.fetch_add(static_cast<std::uint64_t>(batch),
                    std::memory_order_relaxed);
  batchesCounter.inc();
  batchSizeHist.observe(batch);
  int prevMax = maxBatchSize_.load(std::memory_order_relaxed);
  while (batch > prevMax &&
         !maxBatchSize_.compare_exchange_weak(prevMax, batch,
                                              std::memory_order_relaxed)) {
  }
}

void InferenceServer::fulfill(internal::Request& req, InferenceResult result) {
  static metrics::Histogram& latencyHist =
      metrics::Registry::get().histogram("serving.latency_ms");
  latencyHist.observe(result.totalMs);
  if (opts_.responseLoop != nullptr) {
    // Route the completion through the event loop: the promise resolves on
    // the loop thread, like a browser promise resolving on the JS main
    // thread. This is the cross-thread postTask path.
    auto promise = req.promise;
    auto shared = std::make_shared<InferenceResult>(std::move(result));
    opts_.responseLoop->postTask(
        [promise, shared] { promise->set_value(std::move(*shared)); });
  } else {
    req.promise->set_value(std::move(result));
  }
  // A null promise marks the request settled, so a failure later in the
  // same batch (failGroup) knows not to touch it again.
  req.promise.reset();
}

void InferenceServer::failGroup(std::vector<internal::Request>& group,
                                const std::exception_ptr& err) {
  static metrics::Counter& failedCounter =
      metrics::Registry::get().counter("serving.failed");
  for (auto& req : group) {
    if (!req.promise) continue;  // settled before the failure
    req.promise->set_exception(err);
    req.promise.reset();
    failed_.fetch_add(1, std::memory_order_relaxed);
    failedCounter.inc();
    // Failed requests are settled, not in flight: count them served so
    // Stats::inFlightAtSnapshot stays accurate.
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace tfjs::serving
