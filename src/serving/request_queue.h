// RequestQueue: the bounded MPSC queue between client sessions and the
// serving scheduler (the "many independent clients, one shared engine"
// architecture of the TensorFlow whitepaper, applied to this runtime).
//
// Many producer threads (sessions) push; one consumer (the scheduler
// thread) pops. Capacity is the backpressure mechanism: push() blocks the
// client until space frees (bounding queueing delay by Little's law),
// tryPush() rejects instead for callers that prefer load shedding. close()
// wakes everyone; pops keep draining what was accepted before the close so
// in-flight requests are never dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace tfjs::serving {

template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) when
  /// the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    notFull_.wait(lock,
                  [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed (load shedding).
  bool tryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    notEmpty_.notify_one();
    return true;
  }

  /// Waits up to `timeout` for an item. nullopt on timeout, or when the
  /// queue is closed and drained.
  template <typename Rep, typename Period>
  std::optional<T> popFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    notEmpty_.wait_for(lock, timeout,
                       [this] { return closed_ || !items_.empty(); });
    return popLocked(lock);
  }

  /// Waits until `deadline` for an item (same contract as popFor).
  std::optional<T> popUntil(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    notEmpty_.wait_until(lock, deadline,
                         [this] { return closed_ || !items_.empty(); });
    return popLocked(lock);
  }

  /// Immediate pop; nullopt when empty.
  std::optional<T> tryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    return popLocked(lock);
  }

  /// Stops accepting pushes and wakes all waiters. Items already queued
  /// remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::optional<T> popLocked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    notFull_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tfjs::serving
