// Multi-tenant inference serving with dynamic batching.
//
// The paper's thesis is that one shared engine can serve many independent
// clients on commodity hardware; this module is that claim turned into a
// subsystem. N client sessions submit single-example requests into a
// bounded MPSC RequestQueue; one scheduler thread coalesces shape-
// compatible requests into a single batched forward pass over one shared
// set of loaded weights (batching amortizes per-op dispatch overhead — the
// reason TF Eager keeps per-request dispatch cheap), then slices the
// batched output back into per-request results.
//
// Threading contract:
//  * all tensor/op work happens on the scheduler thread (the engine's op
//    path is single-threaded by design — see core/engine.h);
//  * clients cross the boundary with host float vectors only, never
//    tensors;
//  * completions are fulfilled on the scheduler thread, or routed through
//    an async::EventLoop (ServerOptions::responseLoop) the way browser
//    promise resolutions land on the JS main thread — which is exactly the
//    cross-thread postTask path that demanded the thread-safe EventLoop;
//  * a failed forward pass (e.g. the model rejects a request's shape)
//    rejects only that batch's promises — the exception is delivered
//    through each affected future, always on the scheduler thread, and the
//    scheduler keeps serving other tenants.
//
// Batching policy: requests are bucketed by example shape (no cross-shape
// padding — a [32,32,3] image never pays for a [224,224,3] neighbour). The
// scheduler takes the oldest request, lingers up to batchDelayMs for
// shape-mates (up to maxBatch), optionally zero-pads the batch dimension up
// to the next power of two (padToPowerOfTwo — bucketed batch sizes keep
// downstream kernel shapes canonical), runs one forward pass, and slices.
// Backpressure: the queue is bounded; Session::infer blocks when it is
// full, Session::tryInfer sheds load instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/event_loop.h"
#include "core/shape.h"
#include "layers/sequential.h"
#include "serving/request_queue.h"

namespace tfjs::serving {

struct ServerOptions {
  /// Backend the scheduler thread activates before serving.
  std::string backend = "native";
  /// Largest number of requests coalesced into one forward pass. 1 disables
  /// batching (the unbatched baseline configuration).
  int maxBatch = 8;
  /// After the first request of a batch arrives, linger this long for
  /// shape-compatible company before dispatching a partial batch.
  double batchDelayMs = 1.0;
  /// Bound of the MPSC request queue (the backpressure knob).
  std::size_t queueCapacity = 256;
  /// Zero-pad the batch dimension up to the next power of two (<= maxBatch)
  /// so kernels see canonical batch sizes; padded rows are dropped before
  /// results are returned.
  bool padToPowerOfTwo = false;
  /// When set, each completion is posted to this loop as a task (the
  /// promise resolves on the loop thread). Null fulfills promises directly
  /// on the scheduler thread.
  async::EventLoop* responseLoop = nullptr;
};

/// What a client gets back: host values plus per-request telemetry.
struct InferenceResult {
  std::vector<float> values;  ///< output values of this request's example
  Shape shape;                ///< per-example output shape (leading dim 1)
  int batchSize = 0;          ///< real requests in the shared forward pass
  int batchPadding = 0;       ///< zero rows appended by padToPowerOfTwo
  double queueMs = 0;         ///< submit -> batch formation
  double totalMs = 0;         ///< submit -> result ready
};

namespace internal {
struct Request {
  std::shared_ptr<std::promise<InferenceResult>> promise;
  std::vector<float> input;
  Shape exampleShape;  ///< without the batch dimension
  std::chrono::steady_clock::time_point submitted;
  int sessionId = 0;
};
}  // namespace internal

class InferenceServer;

/// A client handle. Sessions are cheap, thread-safe, and share the server's
/// single copy of the model weights; each session may be driven from its
/// own thread.
///
/// Lifetime: a Session holds a non-owning pointer to its InferenceServer.
/// Drop every session (or at least stop calling infer/tryInfer through it)
/// and quiesce all client threads before destroying the server — a session
/// that outlives its server dangles, and a client still blocked inside
/// infer() while the server is destroyed races its queue teardown. Calling
/// InferenceServer::stop() first unblocks queued pushes (infer then throws,
/// tryInfer returns nullopt), which makes the quiesce straightforward.
class Session {
 public:
  /// Submits one example (shape given WITHOUT the batch dimension) and
  /// returns a future for its result. Blocks while the request queue is
  /// full; throws Error if the server has been stopped.
  std::future<InferenceResult> infer(std::vector<float> input,
                                     const Shape& exampleShape);

  /// Non-blocking variant: false (and no future) when the queue is full.
  std::optional<std::future<InferenceResult>> tryInfer(
      std::vector<float> input, const Shape& exampleShape);

  /// infer() + wait.
  InferenceResult inferSync(std::vector<float> input,
                            const Shape& exampleShape);

  const std::string& name() const { return name_; }
  int id() const { return id_; }
  std::uint64_t requestsSubmitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }

 private:
  friend class InferenceServer;
  Session(InferenceServer* server, std::string name, int id)
      : server_(server), name_(std::move(name)), id_(id) {}

  InferenceServer* server_;
  std::string name_;
  int id_;
  std::atomic<std::uint64_t> submitted_{0};
};

class InferenceServer {
 public:
  /// Takes ownership of the model; its weights are the one shared copy
  /// every session reads. The scheduler thread starts immediately.
  InferenceServer(std::unique_ptr<layers::Sequential> model,
                  ServerOptions opts = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  std::shared_ptr<Session> createSession(std::string name = "");

  /// Stops accepting new requests, serves everything already queued, and
  /// joins the scheduler thread. Idempotent and safe for concurrent
  /// callers (e.g. an explicit stop() racing the destructor on another
  /// thread): exactly one caller joins, the rest block until it finishes.
  void stop();

  bool stopped() const { return queue_.closed(); }

  /// Requests currently waiting in the queue (not yet batched).
  std::size_t queueDepth() const { return queue_.size(); }

  const ServerOptions& options() const { return opts_; }
  layers::Sequential& model() { return *model_; }

  struct Stats {
    std::uint64_t requests = 0;  ///< accepted into the queue
    std::uint64_t rejected = 0;  ///< shed by tryInfer on a full queue
    std::uint64_t batches = 0;   ///< forward passes executed
    std::uint64_t failed = 0;    ///< promises rejected by a failed batch
    std::uint64_t paddedRows = 0;
    int maxBatchSize = 0;
    double meanBatchSize() const {
      const std::uint64_t ok = requests - inFlightAtSnapshot - failed;
      return batches ? static_cast<double>(ok) / static_cast<double>(batches)
                     : 0;
    }
    std::uint64_t inFlightAtSnapshot = 0;  ///< accepted but not yet settled
  };
  Stats stats() const;

 private:
  friend class Session;
  std::future<InferenceResult> submit(Session& session,
                                      std::vector<float> input,
                                      const Shape& exampleShape,
                                      bool blocking, bool& accepted);

  void schedulerMain();
  void runBatch(std::vector<internal::Request>& group);
  void fulfill(internal::Request& req, InferenceResult result);
  /// Rejects every not-yet-fulfilled promise in the group with `err`.
  void failGroup(std::vector<internal::Request>& group,
                 const std::exception_ptr& err);

  ServerOptions opts_;
  std::unique_ptr<layers::Sequential> model_;
  RequestQueue<internal::Request> queue_;
  /// Requests popped but deferred because their shape did not match the
  /// batch being formed (scheduler-thread only).
  std::vector<internal::Request> pending_;
  std::thread scheduler_;
  std::once_flag joinOnce_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> paddedRows_{0};
  std::atomic<int> maxBatchSize_{0};
  std::atomic<int> nextSessionId_{1};
};

}  // namespace tfjs::serving
