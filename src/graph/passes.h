// Optimization passes over the Graph IR (DESIGN.md "Graph capture &
// optimization"). Each pass is a pure Graph -> Graph function with a trace
// span ("graph" category) and graph.* metrics; optimize() runs the enabled
// pipeline fold -> fuse -> fuseElementwise -> dce (memory planning happens
// per shape-class signature inside the executor).
//
// Correctness contract: an optimized graph must replay BIT-IDENTICALLY to
// the eager chain it was captured from, on every CPU backend. The passes
// lean on two existing kernel contracts: fused epilogues are bit-identical
// to the unfused chain, and folding evaluates the folded subgraph on the
// *running* backend (lazily, per backend) with the very kernels eager would
// have used.
//
// `TFJS_GRAPH_OPT` env toggle: unset/"1"/"on" = all passes; "0"/"off" =
// none; a comma list ("fold,dce") enables just those passes.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "graph/ir.h"

namespace tfjs::graph {

struct PassOptions {
  bool fold = true;
  bool fuse = true;
  bool dce = true;
  bool plan = true;
  /// Cross-op elementwise fusion (env token "fuse_elementwise").
  bool fuseElementwise = true;

  static PassOptions all() { return {}; }
  static PassOptions none() { return {false, false, false, false, false}; }
  /// Reads TFJS_GRAPH_OPT (see file comment).
  static PassOptions fromEnv();
};

/// Replaces every node whose transitive inputs are all constants with a
/// folded-constant marker. Structural only: the value materializes lazily,
/// per backend, by evaluating `foldedFrom` in the pre-optimization graph —
/// so each backend folds with its own kernels and stays bit-identical to
/// its eager run. Node ids are preserved (dead producers are left for dce).
Graph foldConstants(const Graph& g);

/// Rewrites matMul/conv2d + add(bias) [+ relu/relu6/sigmoid] chains onto
/// the fused kernel epilogues. Conservative: the intermediate values must
/// be f32, single-use, and not graph outputs; the bias must be rank-1 and
/// match the output's last dimension; the epilogue activations are the
/// FusedActivation subset. Node ids are preserved.
Graph fuse(const Graph& g);

/// Greedily clusters chains/DAGs of elementwise ops (kUnary / kBinary /
/// kSelect) into kFusedRegion nodes that the executor lowers to a single
/// loop over the output. A region grows from its terminal node backwards;
/// a producer joins only when it is elementwise, its output shape equals
/// the terminal's (so only external leaf inputs broadcast), it is not a
/// graph output, and every one of its consumers is already in the region
/// (diamond sharing is fine — the shared value becomes one instruction
/// referenced twice). The region node keeps the terminal's id, shape, and
/// dtype; absorbed interiors become dead and are left for dce. Replay is
/// bit-identical to the op-by-op chain: the backends evaluate the same
/// scalar formulas per element in the same order (see DESIGN.md).
Graph fuseElementwise(const Graph& g);

/// Drops nodes no graph output depends on (kInput placeholders always
/// survive — feed order is part of the graph's signature). Ids are
/// compacted; `inputs`/`outputs` are remapped.
Graph dce(const Graph& g);

/// fold -> fuse -> fuseElementwise -> dce, honoring the enabled flags.
Graph optimize(const Graph& g, const PassOptions& opts = PassOptions::all());

/// Static memory plan: per-node liveness plus the arena working set (how
/// many buffers of each size class are live at once). The executor seeds
/// its per-(graph, backend) arena from `reservations` and disposes each
/// value right after `lastUse`.
struct MemoryPlan {
  /// Last node id consuming each value; graph outputs (and constants) get
  /// kLiveToEnd. kAlias consumers extend the aliased storage's lifetime.
  std::vector<int> lastUse;
  static constexpr int kLiveToEnd = 1 << 30;
  /// (elems, count): peak number of simultaneously-live buffers per
  /// power-of-two size class, keyed by the largest request in the class.
  std::vector<std::pair<std::size_t, int>> reservations;
  std::size_t peakBytes = 0;  ///< peak planned live bytes (f32)

  std::string toString() const;
};

MemoryPlan planMemory(const Graph& g);

}  // namespace tfjs::graph
