#include "graph/passes.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "core/backend.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "ops/ops.h"

namespace tfjs::graph {

namespace {

metrics::Counter& foldedCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("graph.folded_nodes");
  return c;
}
metrics::Counter& fusedCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("graph.fused_nodes");
  return c;
}
metrics::Counter& dceCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("graph.dce_removed");
  return c;
}
metrics::Counter& fusedRegionsCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("graph.fused_regions");
  return c;
}
metrics::Counter& regionOpsCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("graph.region_ops");
  return c;
}

bool isConstLike(const Node& n) { return n.op == ops::OpId::kConst; }

}  // namespace

PassOptions PassOptions::fromEnv() {
  const char* v = std::getenv("TFJS_GRAPH_OPT");
  if (v == nullptr || std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0) {
    return all();
  }
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0) return none();
  PassOptions o = none();
  std::string s(v);
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    const std::string tok = s.substr(pos, comma - pos);
    if (tok == "fold") o.fold = true;
    if (tok == "fuse") o.fuse = true;
    if (tok == "dce") o.dce = true;
    if (tok == "plan") o.plan = true;
    if (tok == "fuse_elementwise") o.fuseElementwise = true;
    pos = comma + 1;
  }
  return o;
}

Graph foldConstants(const Graph& g) {
  trace::Span span("graph", "fold");
  Graph out = g;
  std::vector<char> constLike(out.nodes.size(), 0);
  for (std::size_t i = 0; i < out.nodes.size(); ++i) {
    Node& n = out.nodes[i];
    if (isConstLike(n)) {
      constLike[i] = 1;
      continue;
    }
    if (n.op == ops::OpId::kInput || n.inputs.empty()) continue;
    bool allConst = true;
    for (int in : n.inputs) {
      if (!constLike[static_cast<std::size_t>(in)]) {
        allConst = false;
        break;
      }
    }
    if (!allConst) continue;
    Node folded;
    folded.op = ops::OpId::kConst;
    folded.foldedConst = true;
    // Folds of folds still point into the pre-optimization graph: ids are
    // preserved, and a folded node's original inputs are themselves
    // const-computable there by induction.
    folded.foldedFrom = n.foldedFrom >= 0 ? n.foldedFrom : static_cast<int>(i);
    folded.outShape = n.outShape;
    folded.outDtype = n.outDtype;
    folded.name = n.name;
    n = std::move(folded);
    constLike[i] = 1;
    foldedCounter().inc();
  }
  return out;
}

namespace {

/// kUnary attr code -> fused epilogue, or kNone when not fusable.
FusedActivation fusableActivation(const Node& n) {
  if (n.op != ops::OpId::kUnary || n.attrs.size() < 3) return FusedActivation::kNone;
  // Parameterized unaries (alpha/beta) never map to an epilogue.
  if (n.attrs[1] != 0 || n.attrs[2] != 0) return FusedActivation::kNone;
  switch (static_cast<UnaryOp>(static_cast<int>(n.attrs[0]))) {
    case UnaryOp::kRelu: return FusedActivation::kRelu;
    case UnaryOp::kRelu6: return FusedActivation::kRelu6;
    case UnaryOp::kSigmoid: return FusedActivation::kSigmoid;
    default: return FusedActivation::kNone;
  }
}

bool isAdd(const Node& n) {
  return n.op == ops::OpId::kBinary && !n.attrs.empty() &&
         static_cast<int>(n.attrs[0]) == static_cast<int>(BinaryOp::kAdd) &&
         n.outDtype == DType::f32;
}

/// Builds the fused node for base (kMatMul/kConv2d) with an optional bias.
Node makeFused(const Node& base, int biasId, FusedActivation act) {
  Node f;
  f.inputs = base.inputs;
  const bool hasBias = biasId >= 0;
  if (hasBias) f.inputs.push_back(biasId);
  if (base.op == ops::OpId::kMatMul) {
    f.op = ops::OpId::kFusedMatMul;
    // kMatMul attrs {tA, tB} -> kFusedMatMul {act, tA, tB, hasBias}.
    f.attrs = {static_cast<double>(act), base.attrs[0], base.attrs[1],
               hasBias ? 1.0 : 0.0};
  } else {
    f.op = ops::OpId::kFusedConv2d;
    // kConv2d attrs {sH, sW, pad, dH, dW} -> {act, hasBias, sH, sW, pad,
    // dH, dW}.
    f.attrs = {static_cast<double>(act), hasBias ? 1.0 : 0.0, base.attrs[0],
               base.attrs[1], base.attrs[2], base.attrs[3], base.attrs[4]};
  }
  f.outShape = base.outShape;
  f.outDtype = base.outDtype;
  return f;
}

}  // namespace

Graph fuse(const Graph& g) {
  trace::Span span("graph", "fuse");
  Graph out = g;
  const std::vector<int> uses = g.useCounts();
  std::vector<char> isOutput(out.nodes.size(), 0);
  for (int o : out.outputs) isOutput[static_cast<std::size_t>(o)] = 1;

  // An intermediate may be consumed only by the node that absorbs it.
  auto absorbable = [&](int id) {
    return uses[static_cast<std::size_t>(id)] == 1 &&
           !isOutput[static_cast<std::size_t>(id)];
  };
  auto isBase = [&](const Node& n) {
    return (n.op == ops::OpId::kMatMul || n.op == ops::OpId::kConv2d) &&
           n.outDtype == DType::f32;
  };
  auto biasMatches = [&](const Node& bias, const Node& result) {
    return bias.outDtype == DType::f32 && bias.outShape.rank() == 1 &&
           result.outShape.rank() >= 1 &&
           bias.outShape[0] == result.outShape[result.outShape.rank() - 1];
  };

  for (std::size_t i = 0; i < out.nodes.size(); ++i) {
    const Node n = out.nodes[i];  // copy: the slot may be overwritten below
    if (isAdd(n) && n.inputs.size() == 2) {
      const int m = n.inputs[0];
      const Node& base = out.nodes[static_cast<std::size_t>(m)];
      // add(base, bias) with base first only: the fused kernel computes
      // base + bias, and add is commutative but we stay conservative.
      if (isBase(base) && absorbable(m) &&
          biasMatches(out.nodes[static_cast<std::size_t>(n.inputs[1])], n) &&
          base.outShape == n.outShape) {
        out.nodes[i] = makeFused(base, n.inputs[1], FusedActivation::kNone);
        fusedCounter().inc();
      }
      continue;
    }
    const FusedActivation act = fusableActivation(n);
    if (act == FusedActivation::kNone || n.inputs.size() != 1) continue;
    const int m = n.inputs[0];
    const Node& prev = out.nodes[static_cast<std::size_t>(m)];
    if (!absorbable(m)) continue;
    if (isBase(prev)) {
      out.nodes[i] = makeFused(prev, /*biasId=*/-1, act);
      fusedCounter().inc();
    } else if ((prev.op == ops::OpId::kFusedMatMul &&
                static_cast<int>(prev.attrs[0]) ==
                    static_cast<int>(FusedActivation::kNone)) ||
               (prev.op == ops::OpId::kFusedConv2d &&
                static_cast<int>(prev.attrs[0]) ==
                    static_cast<int>(FusedActivation::kNone))) {
      // act(fused-with-no-act): absorb the epilogue into the fused node.
      Node f = prev;
      f.attrs[0] = static_cast<double>(act);
      f.outShape = n.outShape;
      f.outDtype = n.outDtype;
      out.nodes[i] = std::move(f);
      fusedCounter().inc();
    }
  }
  return out;
}

namespace {

/// Region-eligible ops: pure elementwise, one output element per
/// coordinate, scalar semantics shared by every backend.
bool isElementwise(const Node& n) {
  switch (n.op) {
    case ops::OpId::kUnary:
      return n.attrs.size() >= 4;
    case ops::OpId::kBinary:
      return n.attrs.size() >= 2;
    case ops::OpId::kSelect:
      return n.inputs.size() == 3;
    default:
      return false;
  }
}

/// Largest region a single node may absorb. Caps compile time and the
/// per-element scratch of the fused interpreters; 64 covers every chain the
/// models here produce with slack.
constexpr std::size_t kMaxRegionOps = 64;

}  // namespace

Graph fuseElementwise(const Graph& g) {
  trace::Span span("graph", "fuse_elementwise");
  Graph out = g;

  // Consumer lists (node id -> ids of nodes reading it) plus output flags:
  // a producer may join a region only when the region covers all of its
  // consumers and it is not itself a graph output.
  std::vector<std::vector<int>> consumers(out.nodes.size());
  for (std::size_t i = 0; i < out.nodes.size(); ++i) {
    for (int in : out.nodes[i].inputs) {
      consumers[static_cast<std::size_t>(in)].push_back(static_cast<int>(i));
    }
  }
  std::vector<char> isOutput(out.nodes.size(), 0);
  for (int o : out.outputs) isOutput[static_cast<std::size_t>(o)] = 1;
  std::vector<char> taken(out.nodes.size(), 0);

  // Reverse order: the deepest terminal claims the longest chain, and every
  // absorbed interior is marked taken so regions never overlap.
  for (int i = static_cast<int>(out.nodes.size()) - 1; i >= 0; --i) {
    const auto ui = static_cast<std::size_t>(i);
    if (taken[ui] || !isElementwise(out.nodes[ui])) continue;
    const Shape& shape = out.nodes[ui].outShape;

    std::set<int> members{i};
    // Fixpoint growth: a shared producer (diamond) may fail the
    // all-consumers check on the first visit and pass once its other
    // consumer joins, so sweep until no candidate is added.
    bool grew = true;
    while (grew && members.size() < kMaxRegionOps) {
      grew = false;
      for (int m : std::vector<int>(members.begin(), members.end())) {
        for (int in : out.nodes[static_cast<std::size_t>(m)].inputs) {
          const auto uin = static_cast<std::size_t>(in);
          if (members.count(in) || taken[uin] || isOutput[uin]) continue;
          const Node& cand = out.nodes[uin];
          if (!isElementwise(cand) || !(cand.outShape == shape)) continue;
          bool allInside = true;
          for (int c : consumers[uin]) {
            if (!members.count(c)) {
              allInside = false;
              break;
            }
          }
          if (!allInside) continue;
          members.insert(in);
          grew = true;
          if (members.size() >= kMaxRegionOps) break;
        }
        if (members.size() >= kMaxRegionOps) break;
      }
    }
    if (members.size() < 2) continue;

    // Lower members (ascending id = original per-element order) to a
    // RegionProgram. External operands dedupe into input slots in
    // first-use order.
    RegionProgram program;
    std::map<int, int> instrIndex;   // node id -> instruction index
    std::map<int, int> inputSlot;    // node id -> external slot
    std::vector<int> externals;
    const auto operand = [&](int id) {
      if (auto it = instrIndex.find(id); it != instrIndex.end()) {
        return it->second;
      }
      auto [it, fresh] =
          inputSlot.emplace(id, static_cast<int>(externals.size()));
      if (fresh) externals.push_back(id);
      return -1 - it->second;
    };
    for (int m : members) {
      const Node& n = out.nodes[static_cast<std::size_t>(m)];
      RegionInstr si;
      switch (n.op) {
        case ops::OpId::kUnary:
          si.kind = RegionInstr::Kind::kUnary;
          si.op = static_cast<int>(n.attrs[0]);
          si.alpha = static_cast<float>(n.attrs[1]);
          si.beta = static_cast<float>(n.attrs[2]);
          si.a = operand(n.inputs[0]);
          break;
        case ops::OpId::kBinary:
          si.kind = RegionInstr::Kind::kBinary;
          si.op = static_cast<int>(n.attrs[0]);
          si.a = operand(n.inputs[0]);
          si.b = operand(n.inputs[1]);
          break;
        default:  // kSelect
          si.kind = RegionInstr::Kind::kSelect;
          si.a = operand(n.inputs[0]);
          si.b = operand(n.inputs[1]);
          si.c = operand(n.inputs[2]);
          break;
      }
      instrIndex[m] = static_cast<int>(program.instrs.size());
      program.instrs.push_back(si);
    }
    program.numInputs = static_cast<int>(externals.size());

    Node region;
    region.op = ops::OpId::kFusedRegion;
    region.inputs = externals;
    region.attrs = ops::encodeRegionProgram(program);
    region.outShape = out.nodes[ui].outShape;
    region.outDtype = out.nodes[ui].outDtype;
    region.name = out.nodes[ui].name;
    out.nodes[ui] = std::move(region);
    for (int m : members) taken[static_cast<std::size_t>(m)] = 1;
    fusedRegionsCounter().inc();
    regionOpsCounter().inc(members.size());
  }
  return out;
}

Graph dce(const Graph& g) {
  trace::Span span("graph", "dce");
  std::vector<char> live(g.nodes.size(), 0);
  std::vector<int> stack(g.outputs);
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (live[static_cast<std::size_t>(id)]) continue;
    live[static_cast<std::size_t>(id)] = 1;
    for (int in : g.nodes[static_cast<std::size_t>(id)].inputs) {
      stack.push_back(in);
    }
  }
  // Placeholders always survive: feed order is part of the signature.
  for (int in : g.inputs) live[static_cast<std::size_t>(in)] = 1;

  Graph out;
  std::vector<int> remap(g.nodes.size(), -1);
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (!live[i]) {
      dceCounter().inc();
      continue;
    }
    Node n = g.nodes[i];
    for (int& in : n.inputs) in = remap[static_cast<std::size_t>(in)];
    remap[i] = static_cast<int>(out.nodes.size());
    out.nodes.push_back(std::move(n));
  }
  for (int in : g.inputs) {
    out.inputs.push_back(remap[static_cast<std::size_t>(in)]);
  }
  for (int o : g.outputs) {
    out.outputs.push_back(remap[static_cast<std::size_t>(o)]);
  }
  return out;
}

Graph optimize(const Graph& g, const PassOptions& opts) {
  Graph out = g;
  if (opts.fold) out = foldConstants(out);
  if (opts.fuse) out = fuse(out);
  if (opts.fuseElementwise) out = fuseElementwise(out);
  if (opts.dce) out = dce(out);
  return out;
}

MemoryPlan planMemory(const Graph& g) {
  trace::Span span("graph", "plan");
  MemoryPlan plan;
  plan.lastUse.assign(g.nodes.size(), -1);
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    for (int in : g.nodes[i].inputs) {
      plan.lastUse[static_cast<std::size_t>(in)] =
          std::max(plan.lastUse[static_cast<std::size_t>(in)],
                   static_cast<int>(i));
    }
  }
  for (int o : g.outputs) {
    plan.lastUse[static_cast<std::size_t>(o)] = MemoryPlan::kLiveToEnd;
  }
  // Constants materialize once and live with the graph, not the run.
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].op == ops::OpId::kConst ||
        g.nodes[i].op == ops::OpId::kInput) {
      plan.lastUse[i] = MemoryPlan::kLiveToEnd;
    }
  }

  // Sweep definition order, tracking live buffers per power-of-two class.
  // kAlias defines no buffer; aliases can outlive their source's handle
  // because containers are refcounted, so this undercounts rarely and the
  // arena self-heals by adoption.
  struct ClassState {
    int liveNow = 0;
    int peak = 0;
    std::size_t maxElems = 0;
  };
  std::map<int, ClassState> classes;
  std::size_t liveBytes = 0;
  std::vector<std::vector<int>> freeAt(g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const int last = plan.lastUse[i];
    if (last >= 0 && last != MemoryPlan::kLiveToEnd) {
      freeAt[static_cast<std::size_t>(last)].push_back(static_cast<int>(i));
    }
  }
  auto classOf = [](std::size_t elems) {
    return elems <= 1 ? 0 : static_cast<int>(std::bit_width(elems - 1));
  };
  auto allocates = [](const Node& n) {
    return n.op != ops::OpId::kConst && n.op != ops::OpId::kInput &&
           n.op != ops::OpId::kAlias && n.outShape.size() > 0;
  };
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const Node& n = g.nodes[i];
    if (allocates(n)) {
      ClassState& cs = classes[classOf(n.outShape.size())];
      cs.maxElems = std::max(cs.maxElems, n.outShape.size());
      cs.peak = std::max(cs.peak, ++cs.liveNow);
      liveBytes += n.outShape.size() * sizeof(float);
      plan.peakBytes = std::max(plan.peakBytes, liveBytes);
    }
    for (int dead : freeAt[i]) {
      const Node& d = g.nodes[static_cast<std::size_t>(dead)];
      if (!allocates(d)) continue;
      --classes[classOf(d.outShape.size())].liveNow;
      liveBytes -= d.outShape.size() * sizeof(float);
    }
  }
  for (const auto& [cls, cs] : classes) {
    if (cs.peak > 0) plan.reservations.emplace_back(cs.maxElems, cs.peak);
  }
  return plan;
}

std::string MemoryPlan::toString() const {
  std::ostringstream os;
  os << "plan(peak " << peakBytes << " bytes;";
  for (const auto& [elems, count] : reservations) {
    os << " " << count << "x" << elems;
  }
  os << ")";
  return os.str();
}

}  // namespace tfjs::graph
