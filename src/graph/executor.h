// CapturedGraph: the optimizing executor over the Graph IR (DESIGN.md
// "Graph capture & optimization"). One executor serves both graph sources —
// capture(fn) and io::GraphExecutor's imported GraphDefs.
//
// Construction runs the enabled pass pipeline (fold -> fuse -> dce) and the
// static memory plan. run(feeds) then replays the optimized graph through
// the public ops layer, so every kernel, rounding step, and fallback is the
// one eager would have dispatched: outputs are bit-identical to the eager
// chain on every backend, including int8-routed weights.
//
// Per-backend state (populated lazily, cached for the graph's lifetime):
//   * folded constants materialize by evaluating their pre-fold subgraph
//     with the running backend's own kernels (graph.const_decodes counts
//     these one-time evaluations — a warm run does zero);
// Per-(backend, shape-class) state:
//   * a BufferPool arena seeded from the static plan (when the feeds match
//     the capture example) and self-sized by adoption, so warm runs do no
//     shared-pool or heap traffic. Shape-classes are symbolic — backend +
//     per-feed (dtype, rank, dims==1 bitmask) — so a server receiving many
//     batch sizes reuses one arena and one set of compiled regions instead
//     of recompiling per concrete shape (graph.plan_compiles counts class
//     instantiations). The class map is LRU-capped (kMaxArenas); evictions
//     destroy the arena and count into pool.arena_evictions.
#pragma once

#include <list>
#include <map>
#include <string>
#include <vector>

#include "core/buffer_pool.h"
#include "graph/ir.h"
#include "graph/passes.h"

namespace tfjs::graph {

class CapturedGraph {
 public:
  CapturedGraph() = default;
  /// Takes ownership of `g` (and its constant snapshots). Passes run here,
  /// once.
  explicit CapturedGraph(Graph g, const PassOptions& opts = PassOptions::fromEnv());

  /// Replays the graph on the active backend. `feeds` pair up with the
  /// graph's inputs in order (shapes may differ from the capture example —
  /// the plan then seeds nothing and the arena self-sizes). Returned
  /// tensors are the caller's to dispose.
  std::vector<Tensor> run(const std::vector<Tensor>& feeds);

  const Graph& original() const { return original_; }
  const Graph& optimized() const { return optimized_; }
  const MemoryPlan& plan() const { return plan_; }
  const PassOptions& options() const { return opts_; }

  /// Releases constants, per-backend caches, and arenas. The graph is
  /// unusable afterwards.
  void dispose();

  /// Captured graphs reject feeds whose dtype differs from the capture
  /// example (dtype changes op routing — e.g. int8 weights). Imported
  /// GraphDefs don't declare placeholder dtypes, so io turns the check off.
  void setStrictFeedDtypes(bool strict) { strictFeedDtypes_ = strict; }

  /// Cap on live per-(backend, shape-class) arenas. Serving workloads with
  /// unbounded shape diversity evict least-recently-used classes instead of
  /// accumulating arenas forever.
  static constexpr std::size_t kMaxArenas = 8;
  /// Live per-(backend, shape-class) arena count (test hook).
  std::size_t numArenas() const { return arenas_.size(); }

 private:
  struct BackendState {
    /// optimized node id -> materialized folded constant (kept).
    std::map<int, Tensor> foldCache;
  };

  Tensor materializeFold(int optimizedId, BackendState& bs);
  Tensor evalOriginal(int id, std::map<int, Tensor>& memo);
  /// Replays one non-const node through the public ops layer.
  Tensor replayNode(const Node& n, const std::vector<Tensor>& ins);

  Graph original_;
  Graph optimized_;
  PassOptions opts_;
  bool strictFeedDtypes_ = true;
  MemoryPlan plan_;
  /// Nodes to dispose right after executing node i (from plan_.lastUse).
  std::vector<std::vector<int>> freeAt_;
  /// Optimized node ids with foldedConst set (materialized per backend).
  std::vector<int> foldedIds_;
  /// Optimized node id -> feed position, -1 for non-inputs.
  std::vector<int> feedIndex_;
  std::map<std::string, BackendState> backends_;
  /// Shape-class sig -> (arena, position in lru_). lru_ keeps sigs most-
  /// recently-used first; inserting past kMaxArenas destroys the back.
  struct ArenaEntry {
    core::BufferPool::ArenaId arena = 0;
    std::list<std::string>::iterator lruPos;
  };
  std::map<std::string, ArenaEntry> arenas_;
  std::list<std::string> lru_;
  /// Pre-decoded RegionProgram per optimized kFusedRegion node (empty
  /// instrs otherwise): compiled once, reused across every backend and
  /// feed shape — the program is shape-agnostic by construction.
  std::vector<RegionProgram> regionPrograms_;
  /// One-entry cache for the steady-state case: repeated runs with the same
  /// backend and feed shape-class skip the arena map lookup.
  std::string lastSig_;
  core::BufferPool::ArenaId lastArena_ = 0;
};

}  // namespace tfjs::graph
