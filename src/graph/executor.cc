#include "graph/executor.h"

#include <algorithm>
#include <utility>

#include "core/conv_util.h"
#include "core/engine.h"
#include "core/error.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "ops/common.h"
#include "ops/ops.h"

namespace tfjs::graph {

namespace {

metrics::Counter& runsCounter() {
  static metrics::Counter& c = metrics::Registry::get().counter("graph.runs");
  return c;
}
metrics::Counter& constDecodesCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("graph.const_decodes");
  return c;
}
metrics::Counter& planCompilesCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("graph.plan_compiles");
  return c;
}
metrics::Counter& arenaEvictionsCounter() {
  static metrics::Counter& c =
      metrics::Registry::get().counter("pool.arena_evictions");
  return c;
}

int iattr(const Node& n, std::size_t i) {
  return static_cast<int>(n.attrs[i]);
}

std::vector<int> intAttrs(const Node& n, std::size_t from, std::size_t count) {
  std::vector<int> v;
  v.reserve(count);
  for (std::size_t i = from; i < from + count; ++i) v.push_back(iattr(n, i));
  return v;
}

/// Resolves a view shape against the input's element count (imported
/// Reshape nodes may carry a -1 wildcard dimension).
Shape resolveView(const Shape& target, std::size_t elems) {
  int wildcard = -1;
  std::size_t known = 1;
  for (int i = 0; i < target.rank(); ++i) {
    if (target[i] < 0) {
      wildcard = i;
    } else {
      known *= static_cast<std::size_t>(target[i]);
    }
  }
  if (wildcard < 0) return target;
  std::vector<int> dims = target.dims();
  dims[static_cast<std::size_t>(wildcard)] =
      known == 0 ? 0 : static_cast<int>(elems / known);
  return Shape(std::move(dims));
}

Tensor replayUnary(const Node& n, const Tensor& x) {
  const float alpha = static_cast<float>(n.attrs[1]);
  const float beta = static_cast<float>(n.attrs[2]);
  switch (static_cast<UnaryOp>(iattr(n, 0))) {
    case UnaryOp::kNeg: return ops::neg(x);
    case UnaryOp::kAbs: return ops::abs(x);
    case UnaryOp::kExp: return ops::exp(x);
    case UnaryOp::kExpm1: return ops::expm1(x);
    case UnaryOp::kLog: return ops::log(x);
    case UnaryOp::kLog1p: return ops::log1p(x);
    case UnaryOp::kSqrt: return ops::sqrt(x);
    case UnaryOp::kRsqrt: return ops::rsqrt(x);
    case UnaryOp::kSquare: return ops::square(x);
    case UnaryOp::kReciprocal: return ops::reciprocal(x);
    case UnaryOp::kFloor: return ops::floor(x);
    case UnaryOp::kCeil: return ops::ceil(x);
    case UnaryOp::kRound: return ops::round(x);
    case UnaryOp::kSign: return ops::sign(x);
    case UnaryOp::kSin: return ops::sin(x);
    case UnaryOp::kCos: return ops::cos(x);
    case UnaryOp::kTan: return ops::tan(x);
    case UnaryOp::kAsin: return ops::asin(x);
    case UnaryOp::kAcos: return ops::acos(x);
    case UnaryOp::kAtan: return ops::atan(x);
    case UnaryOp::kSinh: return ops::sinh(x);
    case UnaryOp::kCosh: return ops::cosh(x);
    case UnaryOp::kTanh: return ops::tanh(x);
    case UnaryOp::kRelu: return ops::relu(x);
    case UnaryOp::kRelu6: return ops::relu6(x);
    case UnaryOp::kSigmoid: return ops::sigmoid(x);
    case UnaryOp::kSoftplus: return ops::softplus(x);
    case UnaryOp::kElu: return ops::elu(x);
    case UnaryOp::kSelu: return ops::selu(x);
    case UnaryOp::kErf: return ops::erf(x);
    case UnaryOp::kLogicalNot: return ops::logicalNot(x);
    case UnaryOp::kIsNan: return ops::isNaN(x);
    case UnaryOp::kIsFinite: return ops::isFinite(x);
    case UnaryOp::kLeakyRelu: return ops::leakyRelu(x, alpha);
    case UnaryOp::kClipByValue: return ops::clipByValue(x, alpha, beta);
    case UnaryOp::kStep: return ops::step(x, alpha);
    case UnaryOp::kPowScalar: return ops::powScalar(x, alpha);
    case UnaryOp::kAddScalar: return ops::addScalar(x, alpha);
    case UnaryOp::kMulScalar: return ops::mulScalar(x, alpha);
    default:
      throw UnimplementedError("graph: unary op code " +
                               std::to_string(iattr(n, 0)) +
                               " has no replayable public op");
  }
}

Tensor replayBinary(const Node& n, const Tensor& a, const Tensor& b) {
  switch (static_cast<BinaryOp>(iattr(n, 0))) {
    case BinaryOp::kAdd: return ops::add(a, b);
    case BinaryOp::kSub: return ops::sub(a, b);
    case BinaryOp::kMul: return ops::mul(a, b);
    case BinaryOp::kDiv: return ops::div(a, b);
    case BinaryOp::kFloorDiv: return ops::floorDiv(a, b);
    case BinaryOp::kMod: return ops::mod(a, b);
    case BinaryOp::kPow: return ops::pow(a, b);
    case BinaryOp::kMaximum: return ops::maximum(a, b);
    case BinaryOp::kMinimum: return ops::minimum(a, b);
    case BinaryOp::kSquaredDiff: return ops::squaredDifference(a, b);
    case BinaryOp::kAtan2: return ops::atan2(a, b);
    case BinaryOp::kEqual: return ops::equal(a, b);
    case BinaryOp::kNotEqual: return ops::notEqual(a, b);
    case BinaryOp::kGreater: return ops::greater(a, b);
    case BinaryOp::kGreaterEqual: return ops::greaterEqual(a, b);
    case BinaryOp::kLess: return ops::less(a, b);
    case BinaryOp::kLessEqual: return ops::lessEqual(a, b);
    case BinaryOp::kLogicalAnd: return ops::logicalAnd(a, b);
    case BinaryOp::kLogicalOr: return ops::logicalOr(a, b);
    case BinaryOp::kLogicalXor: return ops::logicalXor(a, b);
  }
  throw UnimplementedError("graph: binary op code " +
                           std::to_string(iattr(n, 0)) +
                           " has no replayable public op");
}

Tensor replayReduce(const Node& n, const Tensor& x) {
  const bool keepDims = n.attrs[1] != 0;
  const std::vector<int> axes = intAttrs(n, 3, n.attrs.size() - 3);
  switch (static_cast<ReduceOp>(iattr(n, 0))) {
    case ReduceOp::kSum: return ops::sum(x, axes, keepDims);
    case ReduceOp::kMean: return ops::mean(x, axes, keepDims);
    case ReduceOp::kProd: return ops::prod(x, axes, keepDims);
    case ReduceOp::kMax: return ops::max(x, axes, keepDims);
    case ReduceOp::kMin: return ops::min(x, axes, keepDims);
    case ReduceOp::kAny: return ops::any(x, axes, keepDims);
    case ReduceOp::kAll: return ops::all(x, axes, keepDims);
  }
  throw UnimplementedError("graph: reduce op code " +
                           std::to_string(iattr(n, 0)));
}

/// Move-consuming replay for ops with an in-place public overload. The
/// planner proved the first input dies at this node, so the handle can be
/// consumed — the engine then overwrites sole-owner storage in place
/// (bit-identical: same kernel, different destination buffer). Returns an
/// undefined Tensor when the op has no move overload.
Tensor replayMoveFirst(const Node& n, Tensor&& a,
                       const std::vector<Tensor>& ins) {
  using ops::OpId;
  if (n.op == OpId::kUnary) {
    const float alpha = static_cast<float>(n.attrs[1]);
    const float beta = static_cast<float>(n.attrs[2]);
    switch (static_cast<UnaryOp>(iattr(n, 0))) {
      case UnaryOp::kNeg: return ops::neg(std::move(a));
      case UnaryOp::kExp: return ops::exp(std::move(a));
      case UnaryOp::kSqrt: return ops::sqrt(std::move(a));
      case UnaryOp::kSquare: return ops::square(std::move(a));
      case UnaryOp::kTanh: return ops::tanh(std::move(a));
      case UnaryOp::kRelu: return ops::relu(std::move(a));
      case UnaryOp::kRelu6: return ops::relu6(std::move(a));
      case UnaryOp::kSigmoid: return ops::sigmoid(std::move(a));
      case UnaryOp::kClipByValue:
        return ops::clipByValue(std::move(a), alpha, beta);
      default: break;
    }
  } else if (n.op == OpId::kBinary) {
    switch (static_cast<BinaryOp>(iattr(n, 0))) {
      case BinaryOp::kAdd: return ops::add(std::move(a), ins[1]);
      case BinaryOp::kSub: return ops::sub(std::move(a), ins[1]);
      case BinaryOp::kMul: return ops::mul(std::move(a), ins[1]);
      case BinaryOp::kDiv: return ops::div(std::move(a), ins[1]);
      default: break;
    }
  }
  return Tensor();
}

}  // namespace

CapturedGraph::CapturedGraph(Graph g, const PassOptions& opts)
    : original_(std::move(g)), opts_(opts) {
  optimized_ = optimize(original_, opts_);
  plan_ = planMemory(optimized_);
  freeAt_.assign(optimized_.nodes.size(), {});
  for (std::size_t i = 0; i < optimized_.nodes.size(); ++i) {
    const int last = plan_.lastUse[i];
    if (last >= 0 && last != MemoryPlan::kLiveToEnd) {
      freeAt_[static_cast<std::size_t>(last)].push_back(static_cast<int>(i));
    }
    if (optimized_.nodes[i].foldedConst) {
      foldedIds_.push_back(static_cast<int>(i));
    }
  }
  feedIndex_.assign(optimized_.nodes.size(), -1);
  for (std::size_t k = 0; k < optimized_.inputs.size(); ++k) {
    feedIndex_[static_cast<std::size_t>(optimized_.inputs[k])] =
        static_cast<int>(k);
  }
  // Decode fused-region programs once; the program is shape-agnostic, so
  // this is the only "compile" a region ever needs.
  regionPrograms_.resize(optimized_.nodes.size());
  for (std::size_t i = 0; i < optimized_.nodes.size(); ++i) {
    if (optimized_.nodes[i].op == ops::OpId::kFusedRegion) {
      regionPrograms_[i] = ops::decodeRegionProgram(optimized_.nodes[i].attrs);
    }
  }
}

Tensor CapturedGraph::replayNode(const Node& n, const std::vector<Tensor>& ins) {
  using ops::OpId;
  switch (n.op) {
    case OpId::kAlias: {
      // View kind (attrs[0], default 0): 0 = reshape to shapeAttr + cast to
      // outDtype (capture, shapes/dtypes concrete), 1 = squeeze,
      // 2 = identity, 3 = reshape to shapeAttr with -1 inference (io
      // import; kinds 1-3 preserve the input's dtype, which import time
      // cannot know).
      const int kind = n.attrs.empty() ? 0 : iattr(n, 0);
      const Shape view = kind == 1   ? ins[0].shape().squeezed()
                         : kind == 2 ? ins[0].shape()
                                     : resolveView(n.shapeAttr, ins[0].size());
      Tensor v = ins[0].reshape(view);
      if (kind == 0 && v.dtype() != n.outDtype) {
        // Recorded aliases only widen (b8 -> i32 -> f32): metadata-only.
        Tensor c = v.cast(n.outDtype);
        v.dispose();
        return c;
      }
      return v;
    }
    case OpId::kUnary:
      return replayUnary(n, ins[0]);
    case OpId::kBinary:
      return replayBinary(n, ins[0], ins[1]);
    case OpId::kSelect:
      return ops::where(ins[0], ins[1], ins[2]);
    case OpId::kMatMul:
      return ops::matMul(ins[0], ins[1], n.attrs[0] != 0, n.attrs[1] != 0);
    case OpId::kFusedMatMul: {
      const bool hasBias = n.attrs[3] != 0;
      return ops::fusedMatMul(ins[0], ins[1], hasBias ? ins[2] : Tensor(),
                              static_cast<FusedActivation>(iattr(n, 0)),
                              n.attrs[1] != 0, n.attrs[2] != 0);
    }
    case OpId::kQuantMatMul: {
      const bool hasBias = n.attrs[1] != 0;
      OutQuant outQ{static_cast<float>(n.attrs[3]), iattr(n, 4)};
      return ops::quantizedMatMul(ins[0], ins[1],
                                  hasBias ? ins[2] : Tensor(),
                                  static_cast<FusedActivation>(iattr(n, 0)),
                                  n.attrs[2] != 0 ? &outQ : nullptr);
    }
    case OpId::kConv2d:
      return ops::conv2d(ins[0], ins[1], iattr(n, 0), iattr(n, 1),
                         static_cast<PadMode>(iattr(n, 2)), iattr(n, 3),
                         iattr(n, 4));
    case OpId::kFusedConv2d: {
      const bool hasBias = n.attrs[1] != 0;
      return ops::fusedConv2d(ins[0], ins[1], hasBias ? ins[2] : Tensor(),
                              static_cast<FusedActivation>(iattr(n, 0)),
                              iattr(n, 2), iattr(n, 3),
                              static_cast<PadMode>(iattr(n, 4)), iattr(n, 5),
                              iattr(n, 6));
    }
    case OpId::kQuantConv2d: {
      const bool hasBias = n.attrs[1] != 0;
      OutQuant outQ{static_cast<float>(n.attrs[3]), iattr(n, 4)};
      return ops::quantizedConv2d(ins[0], ins[1],
                                  hasBias ? ins[2] : Tensor(),
                                  static_cast<FusedActivation>(iattr(n, 0)),
                                  iattr(n, 5), iattr(n, 6),
                                  static_cast<PadMode>(iattr(n, 7)),
                                  iattr(n, 8), iattr(n, 9),
                                  n.attrs[2] != 0 ? &outQ : nullptr);
    }
    case OpId::kDepthwiseConv2d:
      return ops::depthwiseConv2d(ins[0], ins[1], iattr(n, 0), iattr(n, 1),
                                  static_cast<PadMode>(iattr(n, 2)),
                                  iattr(n, 3), iattr(n, 4));
    case OpId::kPool: {
      const PoolMode mode = static_cast<PoolMode>(iattr(n, 0));
      if (mode == PoolMode::kMax) {
        return ops::maxPool(ins[0], iattr(n, 1), iattr(n, 2), iattr(n, 3),
                            iattr(n, 4), static_cast<PadMode>(iattr(n, 5)));
      }
      return ops::avgPool(ins[0], iattr(n, 1), iattr(n, 2), iattr(n, 3),
                          iattr(n, 4), static_cast<PadMode>(iattr(n, 5)));
    }
    case OpId::kReduce:
      return replayReduce(n, ins[0]);
    case OpId::kArg:
      return static_cast<ArgOp>(iattr(n, 0)) == ArgOp::kArgMax
                 ? ops::argMax(ins[0], iattr(n, 1))
                 : ops::argMin(ins[0], iattr(n, 1));
    case OpId::kSoftmax:
      return ops::softmax(ins[0], iattr(n, 0));
    case OpId::kLogSoftmax:
      return ops::logSoftmax(ins[0], iattr(n, 0));
    case OpId::kTranspose:
      return ops::transpose(ins[0], intAttrs(n, 0, n.attrs.size()));
    case OpId::kConcat:
      return ops::concat(std::span<const Tensor>(ins), iattr(n, 0));
    case OpId::kSlice: {
      const std::size_t rank = n.attrs.size() / 2;
      return ops::slice(ins[0], intAttrs(n, 0, rank), intAttrs(n, rank, rank));
    }
    case OpId::kPad: {
      std::vector<std::pair<int, int>> paddings;
      for (std::size_t i = 1; i + 1 < n.attrs.size(); i += 2) {
        paddings.emplace_back(iattr(n, i), iattr(n, i + 1));
      }
      return ops::pad(ins[0], paddings, static_cast<float>(n.attrs[0]));
    }
    case OpId::kFusedRegion:
      // Rare path (captured replays of an already-optimized graph); the
      // executor's own run loop uses the pre-decoded program instead.
      return ops::fusedRegion(ops::decodeRegionProgram(n.attrs),
                              std::span<const Tensor>(ins), n.outDtype);
    case OpId::kCast:
      return ops::cast(ins[0], static_cast<DType>(iattr(n, 0)));
    case OpId::kQuantize:
      return ops::quantize(ins[0], static_cast<float>(n.attrs[0]),
                           iattr(n, 1));
    case OpId::kDequantize:
      return ops::dequantize(ins[0]);
    default:
      throw UnimplementedError(std::string("graph: op \"") +
                               ops::opIdName(n.op) + "\" is not replayable");
  }
}

Tensor CapturedGraph::evalOriginal(int id, std::map<int, Tensor>& memo) {
  if (auto it = memo.find(id); it != memo.end()) return it->second;
  const Node& n = original_.nodes[static_cast<std::size_t>(id)];
  if (n.op == ops::OpId::kInput) {
    throw InternalError("graph: folded constant depends on a graph input");
  }
  Tensor v;
  if (n.op == ops::OpId::kConst) {
    v = n.constant;
  } else {
    std::vector<Tensor> ins;
    ins.reserve(n.inputs.size());
    for (int in : n.inputs) ins.push_back(evalOriginal(in, memo));
    v = replayNode(n, ins);
  }
  memo.emplace(id, v);
  return v;
}

Tensor CapturedGraph::materializeFold(int optimizedId, BackendState& bs) {
  trace::Span span("graph", "materializeFold");
  Engine& e = Engine::get();
  OpObserver* prev = e.opObserver();
  e.setOpObserver(nullptr);
  e.startScope();
  Tensor out;
  try {
    ops::internal::TapePause pause;
    std::map<int, Tensor> memo;
    out = evalOriginal(
        optimized_.nodes[static_cast<std::size_t>(optimizedId)].foldedFrom,
        memo);
    // The fold target may itself be a plain constant view in the memo; the
    // cache needs its own handle so graph disposal stays single-owner.
    out = out.clone();
  } catch (...) {
    e.endScope({});
    e.setOpObserver(prev);
    throw;
  }
  e.endScope(std::span<const Tensor>(&out, 1));
  e.setOpObserver(prev);
  out.keep();
  bs.foldCache[optimizedId] = out;
  constDecodesCounter().inc();
  return out;
}

std::vector<Tensor> CapturedGraph::run(const std::vector<Tensor>& feeds) {
  trace::Span span("graph", "run");
  Engine& e = Engine::get();
  if (feeds.size() != optimized_.inputs.size()) {
    throw InvalidArgumentError(
        "graph: expected " + std::to_string(optimized_.inputs.size()) +
        " feeds, got " + std::to_string(feeds.size()));
  }
  for (std::size_t k = 0; strictFeedDtypes_ && k < feeds.size(); ++k) {
    const Node& in =
        optimized_.nodes[static_cast<std::size_t>(optimized_.inputs[k])];
    if (feeds[k].dtype() != in.outDtype) {
      throw InvalidArgumentError(
          std::string("graph: feed ") + std::to_string(k) + " is " +
          dtypeName(feeds[k].dtype()) + ", captured as " +
          dtypeName(in.outDtype));
    }
  }

  BackendState& bs = backends_[e.backendName()];
  // Folded constants materialize outside the run scope and outside the
  // arena: they live with the graph, not the run.
  if (bs.foldCache.size() != foldedIds_.size()) {
    for (int id : foldedIds_) {
      if (bs.foldCache.find(id) == bs.foldCache.end()) {
        materializeFold(id, bs);
      }
    }
  }

  core::BufferPool::ArenaId arena = 0;
  if (opts_.plan) {
    // Symbolic shape-class, not concrete shapes: backend + per-feed
    // (dtype, rank, which dims are 1). Broadcast semantics depend only on
    // ranks and the positions of 1-dims, so every concrete shape in a
    // class replays through identical kernel paths — batch sizes 4, 7, 16
    // share one arena and zero recompiles; batch 1 is its own class
    // because a leading 1 changes how the feed broadcasts.
    std::string sig = e.backendName();
    for (const Tensor& f : feeds) {
      sig += '|';
      sig += dtypeName(f.dtype());
      sig += ':';
      const Shape& s = f.shape();
      for (int d = 0; d < s.rank(); ++d) sig += s[d] == 1 ? '1' : 'n';
    }
    if (sig == lastSig_) {
      arena = lastArena_;  // steady-state: same backend + class as last run
    } else if (auto it = arenas_.find(sig); it != arenas_.end()) {
      arena = it->second.arena;
      lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    } else {
      if (arenas_.size() >= kMaxArenas) {
        // Evict the least-recently-used class; its buffers go back to the
        // OS, and a future run with that class pays one re-instantiation.
        const std::string& victim = lru_.back();
        core::BufferPool::get().destroyArena(arenas_[victim].arena);
        arenaEvictionsCounter().inc();
        if (victim == lastSig_) {
          lastSig_.clear();
          lastArena_ = 0;
        }
        arenas_.erase(victim);
        lru_.pop_back();
      }
      arena = core::BufferPool::get().createArena();
      planCompilesCounter().inc();
      bool exampleShapes = true;
      for (std::size_t k = 0; k < feeds.size(); ++k) {
        const Node& in =
            optimized_.nodes[static_cast<std::size_t>(optimized_.inputs[k])];
        if (!(feeds[k].shape() == in.outShape)) {
          exampleShapes = false;
          break;
        }
      }
      // The static plan only describes the capture-example shapes; other
      // classes start empty and self-size by adoption.
      if (exampleShapes) {
        for (const auto& [elems, count] : plan_.reservations) {
          core::BufferPool::get().arenaReserve(arena, elems, count);
        }
      }
      lru_.push_front(sig);
      arenas_[sig] = ArenaEntry{arena, lru_.begin()};
    }
    lastSig_ = std::move(sig);
    lastArena_ = arena;
  }

  OpObserver* prevObs = e.opObserver();
  e.setOpObserver(nullptr);
  e.startScope();
  std::vector<Tensor> outs;
  if (arena != 0) core::BufferPool::get().bindArena(arena);
  try {
    ops::internal::TapePause pause;
    std::vector<Tensor> vals(optimized_.nodes.size());
    std::vector<Tensor> ins;  // reused across nodes: one warm-run heap alloc
    for (std::size_t i = 0; i < optimized_.nodes.size(); ++i) {
      const Node& n = optimized_.nodes[i];
      switch (n.op) {
        case ops::OpId::kInput:
          vals[i] = feeds[static_cast<std::size_t>(feedIndex_[i])];
          break;
        case ops::OpId::kConst:
          vals[i] = n.foldedConst ? bs.foldCache[static_cast<int>(i)]
                                  : n.constant;
          break;
        default: {
          ins.clear();
          for (int in : n.inputs) {
            ins.push_back(vals[static_cast<std::size_t>(in)]);
          }
          // Liveness-driven in-place: when the planner says input 0 dies
          // here (sole use, intermediate — never a feed, constant, or
          // alias whose storage outlives its handle count), hand its
          // handle to a move-consuming overload so the kernel can
          // overwrite the buffer instead of cycling it through the arena.
          // Eager can't do this: its intermediates stay live to scope end.
          Tensor moved;
          if ((n.op == ops::OpId::kUnary || n.op == ops::OpId::kBinary ||
               n.op == ops::OpId::kFusedRegion) &&
              !n.inputs.empty()) {
            const int in0 = n.inputs[0];
            const Node& src =
                optimized_.nodes[static_cast<std::size_t>(in0)];
            const bool dies =
                plan_.lastUse[static_cast<std::size_t>(in0)] ==
                    static_cast<int>(i) &&
                std::count(n.inputs.begin(), n.inputs.end(), in0) == 1 &&
                src.op != ops::OpId::kInput && src.op != ops::OpId::kConst;
            if (dies) {
              if (n.op == ops::OpId::kFusedRegion) {
                // The move overload always produces a value (it falls back
                // to the allocating path itself when reuse is unsafe).
                moved = ops::fusedRegion(
                    regionPrograms_[i],
                    std::move(vals[static_cast<std::size_t>(in0)]),
                    std::span<const Tensor>(ins).subspan(1), n.outDtype);
              } else {
                moved = replayMoveFirst(
                    n, std::move(vals[static_cast<std::size_t>(in0)]), ins);
              }
              if (moved.defined()) {
                vals[static_cast<std::size_t>(in0)] = Tensor();
              }
            }
          }
          if (!moved.defined()) {
            moved = n.op == ops::OpId::kFusedRegion
                        ? ops::fusedRegion(regionPrograms_[i],
                                           std::span<const Tensor>(ins),
                                           n.outDtype)
                        : replayNode(n, ins);
          }
          vals[i] = moved;
        }
      }
      // Planned eager disposal: a value goes back to the arena right after
      // its last consumer instead of at scope teardown.
      for (int dead : freeAt_[i]) {
        const ops::OpId op = optimized_.nodes[static_cast<std::size_t>(dead)].op;
        if (op == ops::OpId::kInput || op == ops::OpId::kConst) continue;
        Tensor& t = vals[static_cast<std::size_t>(dead)];
        if (t.defined() && !t.isDisposed()) t.dispose();
        t = Tensor();
      }
    }
    std::vector<int> seen;  // outputs are few: linear scan beats a set
    for (int o : optimized_.outputs) {
      const ops::OpId op = optimized_.nodes[static_cast<std::size_t>(o)].op;
      const bool repeat =
          std::find(seen.begin(), seen.end(), o) != seen.end();
      if (!repeat) seen.push_back(o);
      // Feeds, constants, and repeated outputs get fresh handles so the
      // caller can dispose every returned tensor exactly once.
      if (op == ops::OpId::kInput || op == ops::OpId::kConst || repeat) {
        outs.push_back(vals[static_cast<std::size_t>(o)].clone());
      } else {
        outs.push_back(vals[static_cast<std::size_t>(o)]);
      }
    }
  } catch (...) {
    if (arena != 0) core::BufferPool::get().unbindArena();
    e.endScope({});
    e.setOpObserver(prevObs);
    throw;
  }
  if (arena != 0) core::BufferPool::get().unbindArena();
  e.endScope(outs);
  e.setOpObserver(prevObs);
  runsCounter().inc();
  return outs;
}

void CapturedGraph::dispose() {
  for (auto& [name, bs] : backends_) {
    for (auto& [id, t] : bs.foldCache) {
      if (t.defined() && !t.isDisposed()) t.dispose();
    }
  }
  backends_.clear();
  for (auto& [sig, entry] : arenas_) {
    core::BufferPool::get().destroyArena(entry.arena);
  }
  arenas_.clear();
  lru_.clear();
  lastSig_.clear();
  lastArena_ = 0;
  original_.disposeConstants();
  optimized_.disposeConstants();
}

}  // namespace tfjs::graph
