// Graph capture (DESIGN.md "Graph capture & optimization"): runs an eager
// function once while recording every engine dispatch into the Graph IR.
//
// The recorder hooks the engine's OpObserver: instrumented ops report
// themselves after dispatch (op id + inputs + output + attrs), composites
// record as their elementary steps, fused ops as single fused nodes, and
// reshape/clone/widening-cast as alias nodes. Any tensor consumed by a
// recorded op that was created outside the capture — weights, pre-computed
// masks, random tensors — is snapshotted into a constant node (int8 weights
// keep their quantization parameters; the snapshot is an alias, so no data
// is copied and later disposal of the original is safe).
//
// Capture fails LOUDLY: a kernel that fires without an op-level recording
// (gather, topk, ...) would silently bake a data-dependent value into the
// graph, so the recorder throws CaptureError instead unless the kernel is
// explicitly allowlisted.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/ir.h"

namespace tfjs::graph {

/// A kernel fired during capture that the recorder cannot represent.
class CaptureError : public std::runtime_error {
 public:
  explicit CaptureError(const std::string& what) : std::runtime_error(what) {}
};

struct CaptureOptions {
  /// Kernel names allowed to fire unrecorded during capture; their outputs
  /// enter the graph as constants when consumed. "fill" (zeros/ones/fill/
  /// zerosLike/onesLike) is always allowed — creation ops are
  /// input-independent, so snapshotting them is exact.
  std::vector<std::string> allowUnrecordedKernels;
};

/// Runs `fn` once eagerly on `exampleInputs` under the recorder and returns
/// the captured IR. Intermediates (and the trace run's outputs) are
/// disposed; the returned graph retains its constant snapshots — release
/// them with Graph::disposeConstants() (CapturedGraph does this on
/// dispose()).
Graph capture(
    const std::function<std::vector<Tensor>(const std::vector<Tensor>&)>& fn,
    const std::vector<Tensor>& exampleInputs, const CaptureOptions& opts = {});

}  // namespace tfjs::graph
