#include "graph/capture.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <unordered_map>

#include "core/engine.h"

namespace tfjs::graph {

namespace {

/// Exact textual encoding of a double for value-numbering keys: %a hex
/// floats are bit-faithful, so attrs that differ in the last ulp never
/// collide.
void appendNum(std::string& key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a,", v);
  key += buf;
}

class Recorder final : public OpObserver {
 public:
  Recorder(Graph* g, const CaptureOptions& opts) : graph_(g) {
    allow_.push_back("fill");
    for (const std::string& k : opts.allowUnrecordedKernels) {
      allow_.push_back(k);
    }
  }

  /// Pre-maps an example input to a kInput placeholder node.
  void addInput(const Tensor& t) {
    Node n;
    n.op = ops::OpId::kInput;
    n.outShape = t.shape();
    n.outDtype = t.dtype();
    const int id = append(std::move(n));
    graph_->inputs.push_back(id);
    valueByTensor_[t.id()] = id;
  }

  /// Value id producing `t`, minting a constant node when the tensor was
  /// created outside the capture.
  int valueFor(const Tensor& t) {
    auto it = valueByTensor_.find(t.id());
    if (it != valueByTensor_.end()) return it->second;

    // Dedup distinct views of the same storage with equal metadata.
    std::string ckey = std::to_string(t.dataId());
    ckey += t.shape().toString();
    ckey += dtypeName(t.dtype());
    if (auto cit = constByKey_.find(ckey); cit != constByKey_.end()) {
      valueByTensor_[t.id()] = cit->second;
      return cit->second;
    }

    Node n;
    n.op = ops::OpId::kConst;
    n.outShape = t.shape();
    n.outDtype = t.dtype();
    {
      // clone() fires onAlias; the guard keeps the recorder from seeing
      // its own snapshot.
      Reentry guard(this);
      n.constant = t.clone().keep();
    }
    const int id = append(std::move(n));
    valueByTensor_[t.id()] = id;
    constByKey_[ckey] = id;
    return id;
  }

  void onOp(int opId, std::span<const Tensor> inputs, const Tensor& output,
            std::span<const double> attrs, const Shape* shapeAttr) override {
    if (reentry_ > 0) return;
    Node n;
    n.op = static_cast<ops::OpId>(opId);
    for (const Tensor& in : inputs) n.inputs.push_back(valueFor(in));
    n.attrs.assign(attrs.begin(), attrs.end());
    if (shapeAttr != nullptr) n.shapeAttr = *shapeAttr;
    n.outShape = output.shape();
    n.outDtype = output.dtype();
    valueByTensor_[output.id()] = intern(std::move(n));
  }

  void onAlias(const Tensor& src, const Tensor& alias) override {
    if (reentry_ > 0) return;
    auto it = valueByTensor_.find(src.id());
    // An alias of an outside tensor is itself outside: it becomes a
    // constant if a recorded op ever consumes it.
    if (it == valueByTensor_.end()) return;
    Node n;
    n.op = ops::OpId::kAlias;
    n.inputs.push_back(it->second);
    n.shapeAttr = alias.shape();
    n.outShape = alias.shape();
    n.outDtype = alias.dtype();
    valueByTensor_[alias.id()] = intern(std::move(n));
  }

  void onUnrecordedKernel(const char* name) override {
    if (reentry_ > 0) return;
    for (const std::string& ok : allow_) {
      if (ok == name) return;
    }
    std::ostringstream os;
    os << "capture: kernel \"" << name
       << "\" fired without an op-level recording; replaying the graph "
          "would silently bake its output into a constant. Compute it "
          "before capture() or allowlist it via "
          "CaptureOptions.allowUnrecordedKernels.";
    throw CaptureError(os.str());
  }

 private:
  struct Reentry {
    explicit Reentry(Recorder* r) : r_(r) { ++r_->reentry_; }
    ~Reentry() { --r_->reentry_; }
    Recorder* r_;
  };

  int append(Node n) {
    graph_->nodes.push_back(std::move(n));
    return static_cast<int>(graph_->nodes.size()) - 1;
  }

  /// Value numbering: identical (op, inputs, attrs, view) re-uses the
  /// existing node. All recorded ops are pure, so CSE is always sound.
  int intern(Node n) {
    std::string key = std::to_string(static_cast<int>(n.op));
    key += '(';
    for (int in : n.inputs) {
      key += std::to_string(in);
      key += ',';
    }
    key += ')';
    for (double a : n.attrs) appendNum(key, a);
    key += n.shapeAttr.toString();
    key += dtypeName(n.outDtype);
    auto [it, inserted] = nodeByKey_.try_emplace(key, 0);
    if (inserted) it->second = append(std::move(n));
    return it->second;
  }

  Graph* graph_;
  std::vector<std::string> allow_;
  std::unordered_map<std::int64_t, int> valueByTensor_;
  std::unordered_map<std::string, int> constByKey_;
  std::unordered_map<std::string, int> nodeByKey_;
  int reentry_ = 0;

  friend struct Reentry;
};

}  // namespace

Graph capture(
    const std::function<std::vector<Tensor>(const std::vector<Tensor>&)>& fn,
    const std::vector<Tensor>& exampleInputs, const CaptureOptions& opts) {
  Graph g;
  Recorder rec(&g, opts);
  for (const Tensor& t : exampleInputs) rec.addInput(t);

  Engine& e = Engine::get();
  OpObserver* prev = e.opObserver();
  e.startScope();
  e.setOpObserver(&rec);
  std::vector<Tensor> traceOutputs;
  try {
    traceOutputs = fn(exampleInputs);
    for (const Tensor& out : traceOutputs) {
      g.outputs.push_back(rec.valueFor(out));
    }
  } catch (...) {
    e.setOpObserver(prev);
    e.endScope({});
    g.disposeConstants();
    throw;
  }
  e.setOpObserver(prev);
  // Intermediates and the trace outputs die with the scope; the constant
  // snapshots are kept.
  e.endScope({});
  return g;
}

}  // namespace tfjs::graph
