#include "graph/ir.h"

#include <cstdio>
#include <sstream>

#include "ops/ops.h"

namespace tfjs::graph {

std::vector<int> Graph::useCounts() const {
  std::vector<int> uses(nodes.size(), 0);
  for (const Node& n : nodes) {
    for (int in : n.inputs) ++uses[static_cast<std::size_t>(in)];
  }
  for (int out : outputs) ++uses[static_cast<std::size_t>(out)];
  return uses;
}

namespace {

/// %g formatting keeps integral attrs short ("2", not "2.000000") so the
/// golden strings stay readable.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Compact program dump for kFusedRegion nodes: one entry per instruction,
/// kind letter + op code, operands as i<slot> (external) / t<k> (prior
/// instruction) — the raw attr doubles would be unreadable in goldens.
std::string regionString(const std::vector<double>& attrs) {
  const RegionProgram p = ops::decodeRegionProgram(attrs);
  std::ostringstream os;
  const auto ref = [](int r) {
    std::ostringstream o;
    if (r < 0) {
      o << "i" << (-1 - r);
    } else {
      o << "t" << r;
    }
    return o.str();
  };
  os << " [";
  for (std::size_t k = 0; k < p.instrs.size(); ++k) {
    const RegionInstr& si = p.instrs[k];
    if (k) os << "; ";
    switch (si.kind) {
      case RegionInstr::Kind::kUnary:
        os << "u" << si.op << "(" << ref(si.a);
        if (si.alpha != 0 || si.beta != 0) {
          os << "," << num(si.alpha) << "," << num(si.beta);
        }
        os << ")";
        break;
      case RegionInstr::Kind::kBinary:
        os << "b" << si.op << "(" << ref(si.a) << "," << ref(si.b) << ")";
        break;
      case RegionInstr::Kind::kSelect:
        os << "sel(" << ref(si.a) << "," << ref(si.b) << "," << ref(si.c)
           << ")";
        break;
    }
  }
  os << "]";
  return os.str();
}

}  // namespace

std::string Graph::toString() const {
  std::ostringstream os;
  os << "graph(" << inputs.size() << " inputs, " << nodes.size()
     << " nodes, " << outputs.size() << " outputs)\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    os << "%" << i << " = " << ops::opIdName(n.op);
    if (n.foldedConst) os << "(folded)";
    if (!n.inputs.empty()) {
      os << "(";
      for (std::size_t j = 0; j < n.inputs.size(); ++j) {
        os << (j ? ", " : "") << "%" << n.inputs[j];
      }
      os << ")";
    }
    if (n.op == ops::OpId::kFusedRegion) {
      os << regionString(n.attrs);
    } else if (!n.attrs.empty()) {
      os << " {";
      for (std::size_t j = 0; j < n.attrs.size(); ++j) {
        os << (j ? "," : "") << num(n.attrs[j]);
      }
      os << "}";
    }
    if (n.op == ops::OpId::kAlias) os << " view" << n.shapeAttr.toString();
    os << " -> " << dtypeName(n.outDtype) << n.outShape.toString();
    if (!n.name.empty()) os << "  # " << n.name;
    os << "\n";
  }
  os << "outputs:";
  for (int out : outputs) os << " %" << out;
  os << "\n";
  return os.str();
}

void Graph::disposeConstants() {
  for (Node& n : nodes) {
    if (n.constant.defined() && !n.constant.isDisposed()) {
      n.constant.dispose();
    }
    n.constant = Tensor();
  }
}

}  // namespace tfjs::graph
