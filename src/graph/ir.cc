#include "graph/ir.h"

#include <cstdio>
#include <sstream>

namespace tfjs::graph {

std::vector<int> Graph::useCounts() const {
  std::vector<int> uses(nodes.size(), 0);
  for (const Node& n : nodes) {
    for (int in : n.inputs) ++uses[static_cast<std::size_t>(in)];
  }
  for (int out : outputs) ++uses[static_cast<std::size_t>(out)];
  return uses;
}

namespace {

/// %g formatting keeps integral attrs short ("2", not "2.000000") so the
/// golden strings stay readable.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string Graph::toString() const {
  std::ostringstream os;
  os << "graph(" << inputs.size() << " inputs, " << nodes.size()
     << " nodes, " << outputs.size() << " outputs)\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    os << "%" << i << " = " << ops::opIdName(n.op);
    if (n.foldedConst) os << "(folded)";
    if (!n.inputs.empty()) {
      os << "(";
      for (std::size_t j = 0; j < n.inputs.size(); ++j) {
        os << (j ? ", " : "") << "%" << n.inputs[j];
      }
      os << ")";
    }
    if (!n.attrs.empty()) {
      os << " {";
      for (std::size_t j = 0; j < n.attrs.size(); ++j) {
        os << (j ? "," : "") << num(n.attrs[j]);
      }
      os << "}";
    }
    if (n.op == ops::OpId::kAlias) os << " view" << n.shapeAttr.toString();
    os << " -> " << dtypeName(n.outDtype) << n.outShape.toString();
    if (!n.name.empty()) os << "  # " << n.name;
    os << "\n";
  }
  os << "outputs:";
  for (int out : outputs) os << " %" << out;
  os << "\n";
  return os.str();
}

void Graph::disposeConstants() {
  for (Node& n : nodes) {
    if (n.constant.defined() && !n.constant.isDisposed()) {
      n.constant.dispose();
    }
    n.constant = Tensor();
  }
}

}  // namespace tfjs::graph
