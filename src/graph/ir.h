// Graph IR (DESIGN.md "Graph capture & optimization").
//
// A Graph is a topologically-ordered list of value-numbered nodes: node id
// == index into `nodes`, and every input reference points at a smaller id.
// The same IR backs both sources of graphs:
//   * capture(fn)            — records eager dispatches (graph/capture.h);
//   * io::GraphExecutor      — imports converter GraphDefs (a thin
//                              translation into this IR).
// Ops are identified by ops::OpId (stable codes; elementwise families carry
// the backend enum code in attrs), so the IR never re-invents kernel
// identity. Constants (captured closure tensors, imported weights) live in
// the nodes themselves as kept tensors — the graph's constant table.
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"
#include "ops/op_id.h"

namespace tfjs::graph {

struct Node {
  ops::OpId op = ops::OpId::kConst;
  std::vector<int> inputs;    ///< producer value ids (always < this id)
  std::vector<double> attrs;  ///< op-specific scalars (see ops/op_id.h)
  Shape shapeAttr;            ///< kAlias: view target (may hold -1 when
                              ///< imported; resolved at run time)
  Shape outShape;             ///< example/observed output shape
  DType outDtype = DType::f32;
  Tensor constant;            ///< kConst payload (kept by the owner)
  bool foldedConst = false;   ///< kConst minted by the folding pass; its
                              ///< value materializes lazily per backend
                              ///< from the pre-fold graph
  int foldedFrom = -1;        ///< node id in the pre-optimization graph
                              ///< whose (all-constant) evaluation produces
                              ///< this folded constant
  std::string name;           ///< imported node name ("" when captured)
};

struct Graph {
  std::vector<Node> nodes;  ///< topological order, id == index
  std::vector<int> inputs;  ///< kInput ids in feed order
  std::vector<int> outputs; ///< values returned by run(), in order

  /// Per-node consumer count (input references + graph outputs).
  std::vector<int> useCounts() const;

  /// Stable human-readable dump, used by the pass golden tests:
  ///   %2 = matMul(%0, %1) {0,0} -> f32[2,4]
  std::string toString() const;

  /// Releases every node's constant snapshot (capture keeps them alive past
  /// tidy scopes). The graph is unusable for execution afterwards.
  void disposeConstants();
};

}  // namespace tfjs::graph
