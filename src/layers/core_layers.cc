#include "layers/core_layers.h"

#include "core/engine.h"
#include "ops/ops.h"

namespace tfjs::layers {

namespace o = tfjs::ops;

// -------------------------------------------------------------------- Dense

Dense::Dense(DenseOptions opts)
    : Layer(opts.name), opts_(std::move(opts)),
      activation_(makeActivation(opts_.activation)) {
  TFJS_ARG_CHECK(opts_.units > 0, "Dense requires units > 0");
}

void Dense::build(const Shape& inputShape) {
  TFJS_ARG_CHECK(inputShape.rank() >= 2,
                 "Dense expects at least rank-2 input (batch, features), got "
                     << inputShape.toString());
  const int inFeatures = inputShape[inputShape.rank() - 1];
  kernel_ = addWeight("kernel", Shape{inFeatures, opts_.units},
                      *makeInitializer(opts_.kernelInitializer), inFeatures,
                      opts_.units);
  if (opts_.useBias) {
    bias_ = addWeight("bias", Shape{opts_.units},
                      *makeInitializer(opts_.biasInitializer), inFeatures,
                      opts_.units);
  }
  built_ = true;
}

Tensor Dense::call(const Tensor& x, bool) {
  return Engine::get().tidy([&] {
    // matMul -> add -> activation is the pattern the fused kernel covers;
    // route through it when the activation is fusible (bit-identical either
    // way — fusedMatMul falls back to this composition on backends without
    // fused kernels).
    if (auto act = o::fusibleActivation(opts_.activation)) {
      return o::fusedMatMul(x, kernel_.value(),
                            opts_.useBias ? bias_.value() : Tensor(), *act);
    }
    Tensor y = o::matMul(x, kernel_.value());
    if (opts_.useBias) y = o::add(y, bias_.value());
    return activation_(y);
  });
}

Shape Dense::computeOutputShape(const Shape& inputShape) const {
  std::vector<int> dims = inputShape.dims();
  dims.back() = opts_.units;
  return Shape(dims);
}

io::Json Dense::getConfig() const {
  io::Json j = Layer::getConfig();
  j["units"] = opts_.units;
  j["activation"] = opts_.activation;
  j["use_bias"] = opts_.useBias;
  return j;
}

// ------------------------------------------------------------------ Flatten

Flatten::Flatten(std::string name) : Layer(std::move(name)) {}

Tensor Flatten::call(const Tensor& x, bool) {
  return x.reshape(computeOutputShape(x.shape()));
}

Shape Flatten::computeOutputShape(const Shape& inputShape) const {
  int features = 1;
  for (int d = 1; d < inputShape.rank(); ++d) features *= inputShape[d];
  return Shape{inputShape[0], features};
}

// ------------------------------------------------------------------ Reshape

Reshape::Reshape(Shape targetShape, std::string name)
    : Layer(std::move(name)), target_(std::move(targetShape)) {}

Tensor Reshape::call(const Tensor& x, bool) {
  return x.reshape(computeOutputShape(x.shape()));
}

Shape Reshape::computeOutputShape(const Shape& inputShape) const {
  std::vector<int> dims{inputShape[0]};
  for (int d : target_.dims()) dims.push_back(d);
  return Shape(dims);
}

io::Json Reshape::getConfig() const {
  io::Json j = Layer::getConfig();
  io::JsonArray dims;
  for (int d : target_.dims()) dims.emplace_back(d);
  j["target_shape"] = io::Json(std::move(dims));
  return j;
}

// --------------------------------------------------------------- Activation

Activation::Activation(std::string activation, std::string name)
    : Layer(std::move(name)), activationName_(std::move(activation)),
      activation_(makeActivation(activationName_)) {}

Tensor Activation::call(const Tensor& x, bool) { return activation_(x); }

Shape Activation::computeOutputShape(const Shape& inputShape) const {
  return inputShape;
}

io::Json Activation::getConfig() const {
  io::Json j = Layer::getConfig();
  j["activation"] = activationName_;
  return j;
}

// ------------------------------------------------------------------ Dropout

Dropout::Dropout(float rate, std::string name)
    : Layer(std::move(name)), rate_(rate) {
  TFJS_ARG_CHECK(rate >= 0 && rate < 1, "Dropout rate must be in [0, 1)");
}

Tensor Dropout::call(const Tensor& x, bool training) {
  if (!training || rate_ == 0) return x.clone();
  return o::dropout(x, rate_, /*seed=*/0x5eed + step_++);
}

Shape Dropout::computeOutputShape(const Shape& inputShape) const {
  return inputShape;
}

io::Json Dropout::getConfig() const {
  io::Json j = Layer::getConfig();
  j["rate"] = static_cast<double>(rate_);
  return j;
}

}  // namespace tfjs::layers
