#include "layers/initializers.h"

#include <cmath>

#include "ops/ops.h"

namespace tfjs::layers {

namespace o = tfjs::ops;

namespace {

class Zeros : public Initializer {
 public:
  Tensor init(const Shape& s, int, int, std::uint64_t) const override {
    return o::zeros(s);
  }
  std::string name() const override { return "zeros"; }
};

class Ones : public Initializer {
 public:
  Tensor init(const Shape& s, int, int, std::uint64_t) const override {
    return o::ones(s);
  }
  std::string name() const override { return "ones"; }
};

class Constant : public Initializer {
 public:
  explicit Constant(float v) : v_(v) {}
  Tensor init(const Shape& s, int, int, std::uint64_t) const override {
    return o::fill(s, v_);
  }
  std::string name() const override { return "constant"; }

 private:
  float v_;
};

class RandomNormal : public Initializer {
 public:
  RandomNormal(float mean, float stddev) : mean_(mean), stddev_(stddev) {}
  Tensor init(const Shape& s, int, int, std::uint64_t seed) const override {
    return o::randomNormal(s, mean_, stddev_, seed);
  }
  std::string name() const override { return "randomNormal"; }

 private:
  float mean_, stddev_;
};

class RandomUniform : public Initializer {
 public:
  RandomUniform(float lo, float hi) : lo_(lo), hi_(hi) {}
  Tensor init(const Shape& s, int, int, std::uint64_t seed) const override {
    return o::randomUniform(s, lo_, hi_, seed);
  }
  std::string name() const override { return "randomUniform"; }

 private:
  float lo_, hi_;
};

class GlorotUniform : public Initializer {
 public:
  Tensor init(const Shape& s, int fanIn, int fanOut,
              std::uint64_t seed) const override {
    const float limit = std::sqrt(6.0f / static_cast<float>(fanIn + fanOut));
    return o::randomUniform(s, -limit, limit, seed);
  }
  std::string name() const override { return "glorotUniform"; }
};

class GlorotNormal : public Initializer {
 public:
  Tensor init(const Shape& s, int fanIn, int fanOut,
              std::uint64_t seed) const override {
    const float stddev = std::sqrt(2.0f / static_cast<float>(fanIn + fanOut));
    return o::randomNormal(s, 0, stddev, seed);
  }
  std::string name() const override { return "glorotNormal"; }
};

class HeNormal : public Initializer {
 public:
  Tensor init(const Shape& s, int fanIn, int, std::uint64_t seed) const override {
    const float stddev = std::sqrt(2.0f / static_cast<float>(fanIn));
    return o::randomNormal(s, 0, stddev, seed);
  }
  std::string name() const override { return "heNormal"; }
};

class HeUniform : public Initializer {
 public:
  Tensor init(const Shape& s, int fanIn, int, std::uint64_t seed) const override {
    const float limit = std::sqrt(6.0f / static_cast<float>(fanIn));
    return o::randomUniform(s, -limit, limit, seed);
  }
  std::string name() const override { return "heUniform"; }
};

}  // namespace

std::unique_ptr<Initializer> zerosInitializer() {
  return std::make_unique<Zeros>();
}
std::unique_ptr<Initializer> onesInitializer() {
  return std::make_unique<Ones>();
}
std::unique_ptr<Initializer> constantInitializer(float v) {
  return std::make_unique<Constant>(v);
}
std::unique_ptr<Initializer> randomNormalInitializer(float mean,
                                                     float stddev) {
  return std::make_unique<RandomNormal>(mean, stddev);
}
std::unique_ptr<Initializer> randomUniformInitializer(float lo, float hi) {
  return std::make_unique<RandomUniform>(lo, hi);
}
std::unique_ptr<Initializer> glorotUniformInitializer() {
  return std::make_unique<GlorotUniform>();
}
std::unique_ptr<Initializer> glorotNormalInitializer() {
  return std::make_unique<GlorotNormal>();
}
std::unique_ptr<Initializer> heNormalInitializer() {
  return std::make_unique<HeNormal>();
}
std::unique_ptr<Initializer> heUniformInitializer() {
  return std::make_unique<HeUniform>();
}

std::unique_ptr<Initializer> makeInitializer(const std::string& name) {
  if (name == "zeros") return zerosInitializer();
  if (name == "ones") return onesInitializer();
  if (name == "randomNormal") return randomNormalInitializer();
  if (name == "randomUniform") return randomUniformInitializer();
  if (name == "glorotUniform") return glorotUniformInitializer();
  if (name == "glorotNormal") return glorotNormalInitializer();
  if (name == "heNormal") return heNormalInitializer();
  if (name == "heUniform") return heUniformInitializer();
  throw InvalidArgumentError("Unknown initializer: " + name);
}

}  // namespace tfjs::layers
