// Weight initializers (Keras-compatible names), used by the Layers API's
// "reasonable defaults" philosophy (paper section 3.2).
#pragma once

#include <memory>
#include <string>

#include "core/shape.h"
#include "core/tensor.h"

namespace tfjs::layers {

class Initializer {
 public:
  virtual ~Initializer() = default;
  /// fanIn/fanOut let variance-scaling initializers adapt to the weight's
  /// role; element count alone is not enough for conv filters.
  virtual Tensor init(const Shape& shape, int fanIn, int fanOut,
                      std::uint64_t seed) const = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<Initializer> zerosInitializer();
std::unique_ptr<Initializer> onesInitializer();
std::unique_ptr<Initializer> constantInitializer(float value);
std::unique_ptr<Initializer> randomNormalInitializer(float mean = 0,
                                                     float stddev = 0.05f);
std::unique_ptr<Initializer> randomUniformInitializer(float lo = -0.05f,
                                                      float hi = 0.05f);
/// Glorot/Xavier: uniform in ±sqrt(6 / (fanIn + fanOut)).
std::unique_ptr<Initializer> glorotUniformInitializer();
/// Glorot/Xavier: normal with stddev sqrt(2 / (fanIn + fanOut)).
std::unique_ptr<Initializer> glorotNormalInitializer();
/// He: normal with stddev sqrt(2 / fanIn) — the ReLU-era default.
std::unique_ptr<Initializer> heNormalInitializer();
std::unique_ptr<Initializer> heUniformInitializer();

/// Factory by Keras-style name ("glorotUniform", "zeros", ...).
std::unique_ptr<Initializer> makeInitializer(const std::string& name);

}  // namespace tfjs::layers
