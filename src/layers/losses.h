// Loss functions and metrics for model.compile (paper Listing 1:
// {loss: 'meanSquaredError', optimizer: 'sgd'}).
#pragma once

#include <functional>
#include <string>

#include "core/tensor.h"

namespace tfjs::layers {

/// A loss maps (yTrue, yPred) to a scalar tensor.
using LossFn = std::function<Tensor(const Tensor& yTrue, const Tensor& yPred)>;
/// A metric maps (yTrue, yPred) to a scalar tensor (not differentiated).
using MetricFn =
    std::function<Tensor(const Tensor& yTrue, const Tensor& yPred)>;

Tensor meanSquaredError(const Tensor& yTrue, const Tensor& yPred);
Tensor meanAbsoluteError(const Tensor& yTrue, const Tensor& yPred);
/// Cross-entropy over probabilities in yPred (post-softmax), clipped for
/// stability using the active backend's epsilon (paper section 4.1.3).
Tensor categoricalCrossentropy(const Tensor& yTrue, const Tensor& yPred);
Tensor binaryCrossentropy(const Tensor& yTrue, const Tensor& yPred);
Tensor huberLoss(const Tensor& yTrue, const Tensor& yPred, float delta = 1.0f);

/// Fraction of rows whose argmax matches (one-hot labels).
Tensor categoricalAccuracy(const Tensor& yTrue, const Tensor& yPred);
/// Fraction of elements where round(yPred) == yTrue (binary labels).
Tensor binaryAccuracy(const Tensor& yTrue, const Tensor& yPred);

LossFn makeLoss(const std::string& name);
MetricFn makeMetric(const std::string& name);

}  // namespace tfjs::layers
