#include "layers/layer.h"

#include "core/engine.h"
#include "layers/conv_layers.h"
#include "layers/core_layers.h"
#include "layers/rnn_layers.h"
#include "ops/ops.h"

namespace tfjs::layers {

namespace o = tfjs::ops;

int Layer::nextId_ = 0;

std::function<Tensor(const Tensor&)> makeActivation(const std::string& name) {
  if (name.empty() || name == "linear") {
    return [](const Tensor& x) { return x.clone(); };
  }
  if (name == "relu") return [](const Tensor& x) { return o::relu(x); };
  if (name == "relu6") return [](const Tensor& x) { return o::relu6(x); };
  if (name == "sigmoid") return [](const Tensor& x) { return o::sigmoid(x); };
  if (name == "tanh") return [](const Tensor& x) { return o::tanh(x); };
  if (name == "softmax") return [](const Tensor& x) { return o::softmax(x); };
  if (name == "softplus") {
    return [](const Tensor& x) { return o::softplus(x); };
  }
  if (name == "elu") return [](const Tensor& x) { return o::elu(x); };
  if (name == "selu") return [](const Tensor& x) { return o::selu(x); };
  throw InvalidArgumentError("Unknown activation: " + name);
}

Layer::Layer(std::string name) : name_(std::move(name)) {
  if (name_.empty()) name_ = "layer_" + std::to_string(nextId_++);
}

Tensor Layer::apply(const Tensor& x, bool training) {
  if (!built_) build(x.shape());
  return call(x, training);
}

io::Json Layer::getConfig() const {
  io::JsonObject o;
  o["name"] = name_;
  return io::Json(std::move(o));
}

std::vector<Variable> Layer::trainableWeights() const {
  std::vector<Variable> out;
  for (const auto& w : weights_) {
    if (w.trainable()) out.push_back(w);
  }
  return out;
}

void Layer::setWeightValues(std::span<const Tensor> values) {
  TFJS_ARG_CHECK(values.size() == weights_.size(),
                 "Layer '" << name_ << "' has " << weights_.size()
                           << " weights; got " << values.size() << " values");
  for (std::size_t i = 0; i < values.size(); ++i) {
    weights_[i].assign(values[i]);
  }
}

void Layer::dispose() {
  for (auto& w : weights_) w.dispose();
  weights_.clear();
  built_ = false;
}

Variable Layer::addWeight(const std::string& weightName, const Shape& shape,
                          const Initializer& init, int fanIn, int fanOut,
                          bool trainable) {
  // Deterministic per-weight seed: stable across runs, distinct per weight.
  const std::uint64_t seed =
      std::hash<std::string>{}(name_ + "/" + weightName) & 0xFFFFFFu;
  Tensor value = init.init(shape, fanIn, fanOut, seed);
  Variable v(value, name_ + "/" + weightName, trainable);
  weights_.push_back(v);
  return v;
}

Variable Layer::addWeightWithValue(const std::string& weightName,
                                   const Tensor& value, bool trainable) {
  Variable v(value, name_ + "/" + weightName, trainable);
  weights_.push_back(v);
  return v;
}

// ---------------------------------------------------------- deserialization

LayerPtr layerFromConfig(const io::Json& spec) {
  const std::string& cls = spec.at("class_name").asString();
  const io::Json& cfg = spec.at("config");
  const std::string name = cfg.has("name") ? cfg.at("name").asString() : "";

  if (cls == "Dense") {
    DenseOptions o;
    o.units = cfg.at("units").asInt();
    if (cfg.has("activation")) o.activation = cfg.at("activation").asString();
    if (cfg.has("use_bias")) o.useBias = cfg.at("use_bias").asBool();
    o.name = name;
    return std::make_shared<Dense>(o);
  }
  if (cls == "Flatten") return std::make_shared<Flatten>(name);
  if (cls == "Reshape") {
    std::vector<int> dims;
    for (const auto& d : cfg.at("target_shape").asArray()) {
      dims.push_back(d.asInt());
    }
    return std::make_shared<Reshape>(Shape(dims), name);
  }
  if (cls == "Activation") {
    return std::make_shared<Activation>(cfg.at("activation").asString(), name);
  }
  if (cls == "Dropout") {
    return std::make_shared<Dropout>(
        static_cast<float>(cfg.at("rate").asDouble()), name);
  }
  if (cls == "Conv2D" || cls == "DepthwiseConv2D") {
    const auto& ks = cfg.at("kernel_size").asArray();
    const auto& st = cfg.at("strides").asArray();
    if (cls == "Conv2D") {
      Conv2DOptions o;
      o.filters = cfg.at("filters").asInt();
      o.kernelH = ks[0].asInt();
      o.kernelW = ks[1].asInt();
      o.strideH = st[0].asInt();
      o.strideW = st[1].asInt();
      o.padding = cfg.at("padding").asString();
      if (cfg.has("activation")) o.activation = cfg.at("activation").asString();
      if (cfg.has("use_bias")) o.useBias = cfg.at("use_bias").asBool();
      o.name = name;
      return std::make_shared<Conv2D>(o);
    }
    DepthwiseConv2DOptions o;
    o.kernelH = ks[0].asInt();
    o.kernelW = ks[1].asInt();
    o.strideH = st[0].asInt();
    o.strideW = st[1].asInt();
    if (cfg.has("depth_multiplier")) {
      o.depthMultiplier = cfg.at("depth_multiplier").asInt();
    }
    o.padding = cfg.at("padding").asString();
    if (cfg.has("activation")) o.activation = cfg.at("activation").asString();
    if (cfg.has("use_bias")) o.useBias = cfg.at("use_bias").asBool();
    o.name = name;
    return std::make_shared<DepthwiseConv2D>(o);
  }
  if (cls == "MaxPooling2D" || cls == "AveragePooling2D") {
    Pool2DOptions o;
    const auto& ps = cfg.at("pool_size").asArray();
    const auto& st = cfg.at("strides").asArray();
    o.poolH = ps[0].asInt();
    o.poolW = ps[1].asInt();
    o.strideH = st[0].asInt();
    o.strideW = st[1].asInt();
    o.padding = cfg.at("padding").asString();
    o.name = name;
    if (cls == "MaxPooling2D") return std::make_shared<MaxPooling2D>(o);
    return std::make_shared<AveragePooling2D>(o);
  }
  if (cls == "GlobalAveragePooling2D") {
    return std::make_shared<GlobalAveragePooling2D>(name);
  }
  if (cls == "SimpleRNN" || cls == "GRU" || cls == "LSTM") {
    RNNOptions o;
    o.units = cfg.at("units").asInt();
    if (cfg.has("activation")) o.activation = cfg.at("activation").asString();
    if (cfg.has("recurrent_activation")) {
      o.recurrentActivation = cfg.at("recurrent_activation").asString();
    }
    if (cfg.has("return_sequences")) {
      o.returnSequences = cfg.at("return_sequences").asBool();
    }
    if (cfg.has("use_bias")) o.useBias = cfg.at("use_bias").asBool();
    o.name = name;
    if (cls == "SimpleRNN") return std::make_shared<SimpleRNN>(o);
    if (cls == "GRU") return std::make_shared<GRU>(o);
    return std::make_shared<LSTM>(o);
  }
  if (cls == "Embedding") {
    return std::make_shared<Embedding>(cfg.at("input_dim").asInt(),
                                       cfg.at("output_dim").asInt(), name);
  }
  if (cls == "BatchNormalization") {
    BatchNormOptions o;
    if (cfg.has("momentum")) {
      o.momentum = static_cast<float>(cfg.at("momentum").asDouble());
    }
    if (cfg.has("epsilon")) {
      o.epsilon = static_cast<float>(cfg.at("epsilon").asDouble());
    }
    o.name = name;
    return std::make_shared<BatchNormalization>(o);
  }
  throw InvalidArgumentError("Unknown layer class: " + cls);
}

}  // namespace tfjs::layers
