// Core layers: Dense, Flatten, Reshape, Activation, Dropout.
#pragma once

#include "layers/layer.h"

namespace tfjs::layers {

struct DenseOptions {
  int units = 0;
  std::string activation = "linear";
  bool useBias = true;
  std::string kernelInitializer = "glorotUniform";
  std::string biasInitializer = "zeros";
  std::string name;
};

/// Fully connected layer: y = activation(x · W + b).
class Dense : public Layer {
 public:
  explicit Dense(DenseOptions opts);
  void build(const Shape& inputShape) override;
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "Dense"; }
  io::Json getConfig() const override;

  const Variable& kernel() const { return kernel_; }
  const Variable& bias() const { return bias_; }

 private:
  DenseOptions opts_;
  std::function<Tensor(const Tensor&)> activation_;
  Variable kernel_, bias_;
};

/// Flattens all non-batch dimensions.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name = "");
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "Flatten"; }
};

/// Reshapes non-batch dimensions to a fixed target.
class Reshape : public Layer {
 public:
  Reshape(Shape targetShape, std::string name = "");
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "Reshape"; }
  io::Json getConfig() const override;

 private:
  Shape target_;  ///< without batch dim
};

/// Applies a named activation function element-wise.
class Activation : public Layer {
 public:
  explicit Activation(std::string activation, std::string name = "");
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "Activation"; }
  io::Json getConfig() const override;

 private:
  std::string activationName_;
  std::function<Tensor(const Tensor&)> activation_;
};

/// Inverted dropout; identity at inference (paper section 3.2 layers with
/// train/test behaviour).
class Dropout : public Layer {
 public:
  explicit Dropout(float rate, std::string name = "");
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "Dropout"; }
  io::Json getConfig() const override;

 private:
  float rate_;
  std::uint64_t step_ = 0;  ///< varies the mask between calls
};

}  // namespace tfjs::layers
