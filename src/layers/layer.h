// Layer base class — the heart of the Layers API (paper section 3.2): users
// assemble models from pre-defined layers with reasonable defaults, mirroring
// Keras (including the serialization format, enabling the paper's "two-way
// door" between Keras Python and this library).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "io/json.h"
#include "layers/initializers.h"

namespace tfjs::layers {

/// Activation function by Keras name ("linear", "relu", "softmax", ...).
std::function<Tensor(const Tensor&)> makeActivation(const std::string& name);

class Layer {
 public:
  explicit Layer(std::string name);
  virtual ~Layer() = default;

  const std::string& name() const { return name_; }
  bool built() const { return built_; }

  /// Creates the layer's weights for the given input shape (with batch dim).
  /// Called automatically on first apply().
  virtual void build(const Shape& /*inputShape*/) { built_ = true; }

  /// Runs the layer, building on first use. `training` toggles
  /// train-vs-inference behaviour (dropout, batch norm).
  Tensor apply(const Tensor& x, bool training = false);

  /// The layer computation; inputs are guaranteed built.
  virtual Tensor call(const Tensor& x, bool training) = 0;

  /// Output shape for a given input shape (batch dim included).
  virtual Shape computeOutputShape(const Shape& inputShape) const = 0;

  /// Keras-style class name ("Dense", "Conv2D", ...).
  virtual std::string className() const = 0;
  /// Constructor arguments as JSON (merged into the topology file).
  virtual io::Json getConfig() const;

  /// All weights, trainable first (order is the serialization order).
  const std::vector<Variable>& weights() const { return weights_; }
  std::vector<Variable> trainableWeights() const;

  /// Replaces weight values in weights() order (model loading).
  void setWeightValues(std::span<const Tensor> values);

  /// Frees all weight tensors.
  void dispose();

 protected:
  /// Registers a weight variable created from `init`.
  Variable addWeight(const std::string& weightName, const Shape& shape,
                     const Initializer& init, int fanIn, int fanOut,
                     bool trainable = true);
  /// Registers a weight with an explicit initial value (takes ownership).
  Variable addWeightWithValue(const std::string& weightName,
                              const Tensor& value, bool trainable = true);

  bool built_ = false;

 private:
  std::string name_;
  std::vector<Variable> weights_;
  static int nextId_;
};

using LayerPtr = std::shared_ptr<Layer>;

/// Deserializes a layer from {"class_name": ..., "config": {...}} — the
/// registry behind model loading (io/model_io).
LayerPtr layerFromConfig(const io::Json& spec);

}  // namespace tfjs::layers
