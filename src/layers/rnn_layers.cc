#include "layers/rnn_layers.h"

#include "core/engine.h"
#include "ops/ops.h"

namespace tfjs::layers {

namespace o = tfjs::ops;

namespace {

/// x[:, t, :] as [batch, features]; slicing records gradients, so BPTT
/// flows back into the sequence input too.
Tensor timeStep(const Tensor& x, int t) {
  const int batch = x.shape()[0], features = x.shape()[2];
  const std::array<int, 3> begin{0, t, 0};
  const std::array<int, 3> size{batch, 1, features};
  Tensor sliced = o::slice(x, begin, size);
  Tensor flat = sliced.reshape(Shape{batch, features});
  sliced.dispose();
  return flat;
}

/// Stacks per-step outputs [batch, units] into [batch, time, units].
Tensor stackTime(std::span<const Tensor> steps) {
  std::vector<Tensor> expanded;
  expanded.reserve(steps.size());
  for (const auto& s : steps) expanded.push_back(o::expandDims(s, 1));
  Tensor out = o::concat(expanded, 1);
  for (auto& t : expanded) t.dispose();
  return out;
}

/// Column block g (of `blocks`) from a [batch, units*blocks] matrix.
Tensor gate(const Tensor& z, int g, int units) {
  const std::array<int, 2> begin{0, g * units};
  const std::array<int, 2> size{z.shape()[0], units};
  return o::slice(z, begin, size);
}

void validateSequenceInput(const Shape& s, const char* who) {
  TFJS_ARG_CHECK(s.rank() == 3,
                 who << " expects [batch, time, features] input, got "
                     << s.toString());
}

}  // namespace

// --------------------------------------------------------------- SimpleRNN

SimpleRNN::SimpleRNN(RNNOptions opts)
    : Layer(opts.name), opts_(std::move(opts)),
      activation_(makeActivation(opts_.activation)) {
  TFJS_ARG_CHECK(opts_.units > 0, "SimpleRNN requires units > 0");
}

void SimpleRNN::build(const Shape& inputShape) {
  validateSequenceInput(inputShape, "SimpleRNN");
  const int features = inputShape[2];
  kernel_ = addWeight("kernel", Shape{features, opts_.units},
                      *makeInitializer(opts_.kernelInitializer), features,
                      opts_.units);
  // Orthogonal-ish: glorot keeps the recurrent spectrum tame enough here.
  recurrentKernel_ = addWeight("recurrent_kernel",
                               Shape{opts_.units, opts_.units},
                               *glorotUniformInitializer(), opts_.units,
                               opts_.units);
  if (opts_.useBias) {
    bias_ = addWeight("bias", Shape{opts_.units}, *zerosInitializer(),
                      features, opts_.units);
  }
  built_ = true;
}

Tensor SimpleRNN::call(const Tensor& x, bool) {
  validateSequenceInput(x.shape(), "SimpleRNN");
  const int batch = x.shape()[0], steps = x.shape()[1];
  Tensor h = o::zeros(Shape{batch, opts_.units});
  std::vector<Tensor> outputs;
  for (int t = 0; t < steps; ++t) {
    Tensor xt = timeStep(x, t);
    Tensor z = o::add(o::matMul(xt, kernel_.value()),
                      o::matMul(h, recurrentKernel_.value()));
    if (opts_.useBias) z = o::add(z, bias_.value());
    Tensor next = activation_(z);
    h.dispose();
    h = next;
    if (opts_.returnSequences) outputs.push_back(h.clone());
    xt.dispose();
    z.dispose();
  }
  if (!opts_.returnSequences) return h;
  Tensor seq = stackTime(outputs);
  for (auto& t : outputs) t.dispose();
  h.dispose();
  return seq;
}

Shape SimpleRNN::computeOutputShape(const Shape& in) const {
  return opts_.returnSequences ? Shape{in[0], in[1], opts_.units}
                               : Shape{in[0], opts_.units};
}

io::Json SimpleRNN::getConfig() const {
  io::Json j = Layer::getConfig();
  j["units"] = opts_.units;
  j["activation"] = opts_.activation;
  j["return_sequences"] = opts_.returnSequences;
  j["use_bias"] = opts_.useBias;
  return j;
}

// --------------------------------------------------------------------- GRU

GRU::GRU(RNNOptions opts)
    : Layer(opts.name), opts_(std::move(opts)),
      activation_(makeActivation(opts_.activation)),
      recurrentActivation_(makeActivation(opts_.recurrentActivation)) {
  TFJS_ARG_CHECK(opts_.units > 0, "GRU requires units > 0");
}

void GRU::build(const Shape& inputShape) {
  validateSequenceInput(inputShape, "GRU");
  const int features = inputShape[2];
  kernel_ = addWeight("kernel", Shape{features, 3 * opts_.units},
                      *makeInitializer(opts_.kernelInitializer), features,
                      3 * opts_.units);
  recurrentKernel_ = addWeight("recurrent_kernel",
                               Shape{opts_.units, 3 * opts_.units},
                               *glorotUniformInitializer(), opts_.units,
                               3 * opts_.units);
  if (opts_.useBias) {
    bias_ = addWeight("bias", Shape{3 * opts_.units}, *zerosInitializer(),
                      features, 3 * opts_.units);
  }
  built_ = true;
}

Tensor GRU::call(const Tensor& x, bool) {
  validateSequenceInput(x.shape(), "GRU");
  const int batch = x.shape()[0], steps = x.shape()[1];
  const int u = opts_.units;
  Tensor h = o::zeros(Shape{batch, u});
  std::vector<Tensor> outputs;
  for (int t = 0; t < steps; ++t) {
    Tensor xt = timeStep(x, t);
    Tensor zx = o::matMul(xt, kernel_.value());        // [b, 3u]
    Tensor zh = o::matMul(h, recurrentKernel_.value());  // [b, 3u]
    if (opts_.useBias) zx = o::add(zx, bias_.value());
    // Gates: update z, reset r, candidate n (reset applies to the recurrent
    // contribution, the Keras v3 "reset_after=false" formulation).
    Tensor zGate = recurrentActivation_(o::add(gate(zx, 0, u), gate(zh, 0, u)));
    Tensor rGate = recurrentActivation_(o::add(gate(zx, 1, u), gate(zh, 1, u)));
    Tensor nGate = activation_(
        o::add(gate(zx, 2, u), o::mul(rGate, gate(zh, 2, u))));
    // h' = (1 - z) * n + z * h
    Tensor one = o::scalar(1);
    Tensor next = o::add(o::mul(o::sub(one, zGate), nGate), o::mul(zGate, h));
    h.dispose();
    h = next;
    if (opts_.returnSequences) outputs.push_back(h.clone());
    for (Tensor tt : {xt, zx, zh, zGate, rGate, nGate, one}) tt.dispose();
  }
  if (!opts_.returnSequences) return h;
  Tensor seq = stackTime(outputs);
  for (auto& t : outputs) t.dispose();
  h.dispose();
  return seq;
}

Shape GRU::computeOutputShape(const Shape& in) const {
  return opts_.returnSequences ? Shape{in[0], in[1], opts_.units}
                               : Shape{in[0], opts_.units};
}

io::Json GRU::getConfig() const {
  io::Json j = Layer::getConfig();
  j["units"] = opts_.units;
  j["activation"] = opts_.activation;
  j["recurrent_activation"] = opts_.recurrentActivation;
  j["return_sequences"] = opts_.returnSequences;
  j["use_bias"] = opts_.useBias;
  return j;
}

// -------------------------------------------------------------------- LSTM

LSTM::LSTM(RNNOptions opts)
    : Layer(opts.name), opts_(std::move(opts)),
      activation_(makeActivation(opts_.activation)),
      recurrentActivation_(makeActivation(opts_.recurrentActivation)) {
  TFJS_ARG_CHECK(opts_.units > 0, "LSTM requires units > 0");
}

void LSTM::build(const Shape& inputShape) {
  validateSequenceInput(inputShape, "LSTM");
  const int features = inputShape[2];
  kernel_ = addWeight("kernel", Shape{features, 4 * opts_.units},
                      *makeInitializer(opts_.kernelInitializer), features,
                      4 * opts_.units);
  recurrentKernel_ = addWeight("recurrent_kernel",
                               Shape{opts_.units, 4 * opts_.units},
                               *glorotUniformInitializer(), opts_.units,
                               4 * opts_.units);
  if (opts_.useBias) {
    // Forget-gate bias of 1: the standard trick to keep early gradients
    // flowing; matches Keras unit_forget_bias.
    std::vector<float> b(static_cast<std::size_t>(4 * opts_.units), 0.f);
    for (int i = opts_.units; i < 2 * opts_.units; ++i) {
      b[static_cast<std::size_t>(i)] = 1.f;
    }
    Tensor init = o::tensor(b, Shape{4 * opts_.units});
    bias_ = addWeightWithValue("bias", init);
  }
  built_ = true;
}

Tensor LSTM::call(const Tensor& x, bool) {
  validateSequenceInput(x.shape(), "LSTM");
  const int batch = x.shape()[0], steps = x.shape()[1];
  const int u = opts_.units;
  Tensor h = o::zeros(Shape{batch, u});
  Tensor c = o::zeros(Shape{batch, u});
  std::vector<Tensor> outputs;
  for (int t = 0; t < steps; ++t) {
    Tensor xt = timeStep(x, t);
    Tensor z = o::add(o::matMul(xt, kernel_.value()),
                      o::matMul(h, recurrentKernel_.value()));
    if (opts_.useBias) z = o::add(z, bias_.value());
    Tensor i = recurrentActivation_(gate(z, 0, u));
    Tensor f = recurrentActivation_(gate(z, 1, u));
    Tensor g = activation_(gate(z, 2, u));
    Tensor oGate = recurrentActivation_(gate(z, 3, u));
    Tensor nextC = o::add(o::mul(f, c), o::mul(i, g));
    Tensor nextH = o::mul(oGate, activation_(nextC));
    h.dispose();
    c.dispose();
    h = nextH;
    c = nextC;
    if (opts_.returnSequences) outputs.push_back(h.clone());
    for (Tensor tt : {xt, z, i, f, g, oGate}) tt.dispose();
  }
  c.dispose();
  if (!opts_.returnSequences) return h;
  Tensor seq = stackTime(outputs);
  for (auto& t : outputs) t.dispose();
  h.dispose();
  return seq;
}

Shape LSTM::computeOutputShape(const Shape& in) const {
  return opts_.returnSequences ? Shape{in[0], in[1], opts_.units}
                               : Shape{in[0], opts_.units};
}

io::Json LSTM::getConfig() const {
  io::Json j = Layer::getConfig();
  j["units"] = opts_.units;
  j["activation"] = opts_.activation;
  j["recurrent_activation"] = opts_.recurrentActivation;
  j["return_sequences"] = opts_.returnSequences;
  j["use_bias"] = opts_.useBias;
  return j;
}

// --------------------------------------------------------------- Embedding

Embedding::Embedding(int vocabSize, int outputDim, std::string name)
    : Layer(std::move(name)), vocabSize_(vocabSize), outputDim_(outputDim) {
  TFJS_ARG_CHECK(vocabSize > 0 && outputDim > 0,
                 "Embedding requires positive vocabSize and outputDim");
}

void Embedding::build(const Shape&) {
  table_ = addWeight("embeddings", Shape{vocabSize_, outputDim_},
                     *randomUniformInitializer(-0.05f, 0.05f), vocabSize_,
                     outputDim_);
  built_ = true;
}

Tensor Embedding::call(const Tensor& x, bool) {
  TFJS_ARG_CHECK(x.rank() == 2,
                 "Embedding expects [batch, time] indices, got "
                     << x.shape().toString());
  Tensor flat = x.flatten();
  Tensor gathered = o::gather(table_.value(), flat, 0);
  Tensor out = gathered.reshape(
      Shape{x.shape()[0], x.shape()[1], outputDim_});
  flat.dispose();
  gathered.dispose();
  return out;
}

Shape Embedding::computeOutputShape(const Shape& in) const {
  return Shape{in[0], in[1], outputDim_};
}

io::Json Embedding::getConfig() const {
  io::Json j = Layer::getConfig();
  j["input_dim"] = vocabSize_;
  j["output_dim"] = outputDim_;
  return j;
}

}  // namespace tfjs::layers
