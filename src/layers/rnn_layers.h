// Recurrent layers (SimpleRNN, GRU, LSTM) — part of the Keras-parity layer
// set the Layers API mirrors (paper section 3.2). Sequence processing runs
// as native C++ loops over time steps; because the autodiff engine is eager
// (section 3.5), backpropagation-through-time falls out of the tape with no
// special casing — the exact benefit the paper claims for eager engines.
//
// Inputs are [batch, time, features]; output is [batch, units], or
// [batch, time, units] with returnSequences.
#pragma once

#include "layers/layer.h"

namespace tfjs::layers {

struct RNNOptions {
  int units = 0;
  std::string activation = "tanh";
  std::string recurrentActivation = "sigmoid";  // GRU/LSTM gates
  bool returnSequences = false;
  bool useBias = true;
  std::string kernelInitializer = "glorotUniform";
  std::string name;
};

class SimpleRNN : public Layer {
 public:
  explicit SimpleRNN(RNNOptions opts);
  void build(const Shape& inputShape) override;
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "SimpleRNN"; }
  io::Json getConfig() const override;

 private:
  RNNOptions opts_;
  std::function<Tensor(const Tensor&)> activation_;
  Variable kernel_, recurrentKernel_, bias_;
};

class GRU : public Layer {
 public:
  explicit GRU(RNNOptions opts);
  void build(const Shape& inputShape) override;
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "GRU"; }
  io::Json getConfig() const override;

 private:
  RNNOptions opts_;
  std::function<Tensor(const Tensor&)> activation_;
  std::function<Tensor(const Tensor&)> recurrentActivation_;
  Variable kernel_, recurrentKernel_, bias_;
};

class LSTM : public Layer {
 public:
  explicit LSTM(RNNOptions opts);
  void build(const Shape& inputShape) override;
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "LSTM"; }
  io::Json getConfig() const override;

 private:
  RNNOptions opts_;
  std::function<Tensor(const Tensor&)> activation_;
  std::function<Tensor(const Tensor&)> recurrentActivation_;
  Variable kernel_, recurrentKernel_, bias_;
};

/// Token embedding lookup: i32 indices [batch, time] -> [batch, time, dim].
/// Trainable: the gather op's axis-0 gradient scatter-adds into the table.
class Embedding : public Layer {
 public:
  Embedding(int vocabSize, int outputDim, std::string name = "");
  void build(const Shape& inputShape) override;
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "Embedding"; }
  io::Json getConfig() const override;

 private:
  int vocabSize_, outputDim_;
  Variable table_;
};

}  // namespace tfjs::layers
