// Convolutional and pooling layers (NHWC).
#pragma once

#include "layers/layer.h"

namespace tfjs::layers {

struct Conv2DOptions {
  int filters = 0;
  int kernelH = 3, kernelW = 3;
  int strideH = 1, strideW = 1;
  std::string padding = "valid";  // "valid" | "same"
  std::string activation = "linear";
  bool useBias = true;
  std::string kernelInitializer = "glorotUniform";
  std::string name;
};

class Conv2D : public Layer {
 public:
  explicit Conv2D(Conv2DOptions opts);
  void build(const Shape& inputShape) override;
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "Conv2D"; }
  io::Json getConfig() const override;

 private:
  Conv2DOptions opts_;
  std::function<Tensor(const Tensor&)> activation_;
  Variable kernel_, bias_;
};

struct DepthwiseConv2DOptions {
  int kernelH = 3, kernelW = 3;
  int strideH = 1, strideW = 1;
  int depthMultiplier = 1;
  std::string padding = "valid";
  std::string activation = "linear";
  bool useBias = true;
  std::string kernelInitializer = "glorotUniform";
  std::string name;
};

class DepthwiseConv2D : public Layer {
 public:
  explicit DepthwiseConv2D(DepthwiseConv2DOptions opts);
  void build(const Shape& inputShape) override;
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "DepthwiseConv2D"; }
  io::Json getConfig() const override;

 private:
  DepthwiseConv2DOptions opts_;
  std::function<Tensor(const Tensor&)> activation_;
  Variable kernel_, bias_;
};

struct Pool2DOptions {
  int poolH = 2, poolW = 2;
  int strideH = 2, strideW = 2;
  std::string padding = "valid";
  std::string name;
};

class MaxPooling2D : public Layer {
 public:
  explicit MaxPooling2D(Pool2DOptions opts = {});
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "MaxPooling2D"; }
  io::Json getConfig() const override;

 private:
  Pool2DOptions opts_;
};

class AveragePooling2D : public Layer {
 public:
  explicit AveragePooling2D(Pool2DOptions opts = {});
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "AveragePooling2D"; }
  io::Json getConfig() const override;

 private:
  Pool2DOptions opts_;
};

/// Averages over all spatial positions: [b,h,w,c] -> [b,c].
class GlobalAveragePooling2D : public Layer {
 public:
  explicit GlobalAveragePooling2D(std::string name = "");
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "GlobalAveragePooling2D"; }
};

struct BatchNormOptions {
  float momentum = 0.99f;
  float epsilon = 1e-3f;
  bool center = true;
  bool scale = true;
  std::string name;
};

/// Batch normalization over the trailing (channel) axis. In training mode
/// batch statistics are used and the moving averages updated; at inference
/// the moving averages are used.
class BatchNormalization : public Layer {
 public:
  explicit BatchNormalization(BatchNormOptions opts = {});
  void build(const Shape& inputShape) override;
  Tensor call(const Tensor& x, bool training) override;
  Shape computeOutputShape(const Shape& inputShape) const override;
  std::string className() const override { return "BatchNormalization"; }
  io::Json getConfig() const override;

 private:
  BatchNormOptions opts_;
  Variable gamma_, beta_, movingMean_, movingVar_;
};

}  // namespace tfjs::layers
