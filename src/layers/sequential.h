// Sequential model (paper Listing 1): assemble layers, compile with a loss
// and optimizer, then fit/predict/evaluate. Model-level methods manage
// memory internally so Layers-API users never call dispose()/tidy()
// themselves (paper section 3.7).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autodiff/optimizers.h"
#include "data/pipeline.h"
#include "layers/layer.h"
#include "layers/losses.h"

namespace tfjs::layers {

struct CompileOptions {
  std::string optimizer = "sgd";
  float learningRate = 0.01f;
  std::string loss = "meanSquaredError";
  std::vector<std::string> metrics;
};

struct FitOptions {
  int epochs = 1;
  int batchSize = 32;
  bool shuffle = true;
  /// Fraction of the data held out for validation at the end of each epoch.
  float validationSplit = 0;
  bool verbose = false;
  std::uint64_t seed = 42;
};

/// Per-epoch training record returned by fit() (the History object).
struct History {
  std::vector<float> loss;
  std::vector<float> valLoss;
  /// One series per compiled metric, indexed like CompileOptions::metrics.
  std::vector<std::vector<float>> metrics;
  std::vector<std::vector<float>> valMetrics;
};

struct EvalResult {
  float loss = 0;
  std::vector<float> metrics;
};

class Sequential {
 public:
  explicit Sequential(std::string name = "sequential");
  ~Sequential();

  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  /// Appends a layer (Listing 1: model.add(tf.layers.dense({...}))).
  void add(LayerPtr layer);

  const std::string& name() const { return name_; }
  const std::vector<LayerPtr>& layers() const { return layers_; }

  /// Builds all layers for the given input shape (batch dim may be any
  /// positive placeholder). Called automatically by fit/predict.
  void build(const Shape& inputShape);

  /// Specifies the loss and optimizer (Listing 1: model.compile(...)).
  void compile(CompileOptions opts);

  /// Forward pass in inference mode; memory-managed internally.
  Tensor predict(const Tensor& x);
  /// Forward pass with training-mode layer behaviour.
  Tensor apply(const Tensor& x, bool training);

  /// Trains with mini-batch gradient descent (Listing 1: model.fit(...)).
  History fit(const Tensor& x, const Tensor& y, const FitOptions& opts = {});

  /// Trains from a pipeline of already-batched Examples — the
  /// model.fitDataset analogue closing the section 7 "data input" loop.
  /// The model must be built (or the first batch builds it).
  History fitDataset(const data::Pipeline& dataset, int epochs = 1,
                     bool verbose = false);

  /// Mean loss (and metrics) over the given data.
  EvalResult evaluate(const Tensor& x, const Tensor& y, int batchSize = 32);

  /// All weights in layer order (trainable and not).
  std::vector<Variable> weights() const;
  std::vector<Variable> trainableWeights() const;

  /// Keras-style textual summary (layer, output shape, params).
  std::string summary() const;
  std::size_t countParams() const;

  /// Keras-compatible topology JSON ({"class_name": "Sequential", ...}).
  io::Json toConfig() const;
  /// Rebuilds a model (unbuilt, weights uninitialized) from topology JSON.
  static std::unique_ptr<Sequential> fromConfig(const io::Json& config);

  const CompileOptions& compileOptions() const { return compileOpts_; }
  bool compiled() const { return optimizer_ != nullptr; }

  /// Frees all layer weights.
  void dispose();

 private:
  EvalResult evaluateRange(const Tensor& x, const Tensor& y,
                           std::span<const std::size_t> indices,
                           int batchSize);

  std::string name_;
  std::vector<LayerPtr> layers_;
  CompileOptions compileOpts_;
  std::unique_ptr<autodiff::Optimizer> optimizer_;
  LossFn loss_;
  std::vector<MetricFn> metricFns_;
};

}  // namespace tfjs::layers

namespace tfjs {
/// tf.sequential() analogue.
inline std::unique_ptr<layers::Sequential> sequential(
    std::string name = "sequential") {
  return std::make_unique<layers::Sequential>(std::move(name));
}
}  // namespace tfjs
