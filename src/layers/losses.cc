#include "layers/losses.h"

#include "core/engine.h"
#include "ops/ops.h"

namespace tfjs::layers {

namespace o = tfjs::ops;

Tensor meanSquaredError(const Tensor& yTrue, const Tensor& yPred) {
  return Engine::get().tidy(
      [&] { return o::mean(o::squaredDifference(yTrue, yPred)); });
}

Tensor meanAbsoluteError(const Tensor& yTrue, const Tensor& yPred) {
  return Engine::get().tidy(
      [&] { return o::mean(o::abs(o::sub(yTrue, yPred))); });
}

Tensor categoricalCrossentropy(const Tensor& yTrue, const Tensor& yPred) {
  return Engine::get().tidy([&] {
    const float eps = Engine::get().backend().epsilon();
    Tensor clipped = o::clipByValue(yPred, eps, 1.0f);
    Tensor perExample =
        o::neg(o::sum(o::mul(yTrue, o::log(clipped)), std::array<int, 1>{-1}));
    return o::mean(perExample);
  });
}

Tensor binaryCrossentropy(const Tensor& yTrue, const Tensor& yPred) {
  return Engine::get().tidy([&] {
    const float eps = Engine::get().backend().epsilon();
    Tensor p = o::clipByValue(yPred, eps, 1.0f - eps);
    Tensor one = o::scalar(1);
    Tensor loss = o::add(o::mul(yTrue, o::log(p)),
                         o::mul(o::sub(one, yTrue), o::log(o::sub(one, p))));
    return o::neg(o::mean(loss));
  });
}

Tensor huberLoss(const Tensor& yTrue, const Tensor& yPred, float delta) {
  return Engine::get().tidy([&] {
    Tensor err = o::abs(o::sub(yTrue, yPred));
    Tensor quadratic = o::minimum(err, o::scalar(delta));
    Tensor linear = o::sub(err, quadratic);
    // 0.5 q^2 + delta * l
    return o::mean(o::add(o::mulScalar(o::square(quadratic), 0.5f),
                          o::mulScalar(linear, delta)));
  });
}

Tensor categoricalAccuracy(const Tensor& yTrue, const Tensor& yPred) {
  return Engine::get().tidy([&] {
    Tensor predIdx = o::argMax(yPred, -1);
    Tensor trueIdx = o::argMax(yTrue, -1);
    return o::mean(o::cast(o::equal(predIdx, trueIdx), DType::f32));
  });
}

Tensor binaryAccuracy(const Tensor& yTrue, const Tensor& yPred) {
  return Engine::get().tidy([&] {
    Tensor rounded = o::round(yPred);
    return o::mean(o::cast(o::equal(rounded, yTrue), DType::f32));
  });
}

LossFn makeLoss(const std::string& name) {
  if (name == "meanSquaredError" || name == "mse") return meanSquaredError;
  if (name == "meanAbsoluteError" || name == "mae") return meanAbsoluteError;
  if (name == "categoricalCrossentropy") return categoricalCrossentropy;
  if (name == "binaryCrossentropy") return binaryCrossentropy;
  if (name == "huber") {
    return [](const Tensor& t, const Tensor& p) { return huberLoss(t, p); };
  }
  throw InvalidArgumentError("Unknown loss: " + name);
}

MetricFn makeMetric(const std::string& name) {
  if (name == "accuracy" || name == "categoricalAccuracy") {
    return categoricalAccuracy;
  }
  if (name == "binaryAccuracy") return binaryAccuracy;
  if (name == "mse") return meanSquaredError;
  if (name == "mae") return meanAbsoluteError;
  throw InvalidArgumentError("Unknown metric: " + name);
}

}  // namespace tfjs::layers
