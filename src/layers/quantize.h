// Post-training weight quantization of a built Layers model (DESIGN.md
// "Quantized execution").
#pragma once

#include "layers/sequential.h"

namespace tfjs::layers {

/// Replaces the kernel weight of every Dense and Conv2D layer in a *built*
/// model with its symmetric per-channel int8 codes
/// (ops::quantizePerChannel); matMul/conv2d route those weights through the
/// backend's quantized kernels from then on. Biases, batch-norm parameters
/// and DepthwiseConv2D kernels stay f32 (a depthwise filter's arithmetic
/// intensity is too low for the codec to pay off). Returns the number of
/// kernels quantized.
int quantizeWeightsInt8(Sequential& model);

}  // namespace tfjs::layers
