#include "layers/quantize.h"

#include <string>

#include "core/util.h"
#include "ops/ops.h"

namespace tfjs::layers {

namespace o = tfjs::ops;

int quantizeWeightsInt8(Sequential& model) {
  int count = 0;
  for (const LayerPtr& layer : model.layers()) {
    const std::string cls = layer->className();
    if (cls != "Dense" && cls != "Conv2D") continue;
    TFJS_ARG_CHECK(layer->built(),
                   "quantizeWeightsInt8 requires a built model (layer "
                       << layer->name() << " has no weights yet)");
    for (const Variable& w : layer->weights()) {
      const std::string& name = w.name();
      if (!name.ends_with("/kernel")) continue;
      if (w.dtype() != DType::f32 || w.value().rank() < 2) continue;
      Tensor q = o::quantizePerChannel(w.value());
      w.assign(q);  // assign() keeps q; the variable now owns it
      ++count;
    }
  }
  return count;
}

}  // namespace tfjs::layers
