#include "layers/sequential.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/engine.h"
#include "core/random.h"
#include "ops/ops.h"

namespace tfjs::layers {

namespace o = tfjs::ops;

Sequential::Sequential(std::string name) : name_(std::move(name)) {}

Sequential::~Sequential() = default;

void Sequential::add(LayerPtr layer) {
  TFJS_ARG_CHECK(layer != nullptr, "add() requires a layer");
  layers_.push_back(std::move(layer));
}

void Sequential::build(const Shape& inputShape) {
  Shape shape = inputShape;
  for (auto& layer : layers_) {
    if (!layer->built()) layer->build(shape);
    shape = layer->computeOutputShape(shape);
  }
}

void Sequential::compile(CompileOptions opts) {
  compileOpts_ = std::move(opts);
  optimizer_ = autodiff::makeOptimizer(compileOpts_.optimizer,
                                       compileOpts_.learningRate);
  loss_ = makeLoss(compileOpts_.loss);
  metricFns_.clear();
  for (const auto& m : compileOpts_.metrics) {
    metricFns_.push_back(makeMetric(m));
  }
}

Tensor Sequential::apply(const Tensor& x, bool training) {
  TFJS_ARG_CHECK(!layers_.empty(), "Model '" << name_ << "' has no layers");
  build(x.shape());
  Tensor current = x.clone();
  for (auto& layer : layers_) {
    Tensor next = layer->apply(current, training);
    current.dispose();
    current = next;
  }
  return current;
}

Tensor Sequential::predict(const Tensor& x) {
  // Model-level memory management (paper section 3.7): users of the Layers
  // API never call tidy() themselves.
  return Engine::get().tidy([&] { return apply(x, /*training=*/false); });
}

namespace {

/// Rows of t at the given indices, as a new tensor.
Tensor takeRows(const Tensor& t, std::span<const std::size_t> indices) {
  std::vector<float> idx(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    idx[i] = static_cast<float>(indices[i]);
  }
  return Engine::get().tidy([&] {
    Tensor idxT = o::tensor1d(idx, DType::i32);
    return o::gather(t, idxT, 0);
  });
}

}  // namespace

History Sequential::fit(const Tensor& x, const Tensor& y,
                        const FitOptions& opts) {
  TFJS_ARG_CHECK(compiled(), "Call compile() before fit()");
  TFJS_ARG_CHECK(x.shape()[0] == y.shape()[0],
                 "fit: x and y must have the same number of examples");
  TFJS_ARG_CHECK(opts.epochs > 0 && opts.batchSize > 0,
                 "fit: epochs and batchSize must be positive");
  TFJS_ARG_CHECK(opts.validationSplit >= 0 && opts.validationSplit < 1,
                 "fit: validationSplit must be in [0, 1)");
  build(x.shape());

  const std::size_t total = static_cast<std::size_t>(x.shape()[0]);
  const std::size_t valCount =
      static_cast<std::size_t>(static_cast<float>(total) *
                               opts.validationSplit);
  const std::size_t trainCount = total - valCount;
  TFJS_ARG_CHECK(trainCount > 0, "fit: no training examples left after split");

  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::size_t> valIdx(order.begin() + static_cast<std::ptrdiff_t>(
                                                      trainCount),
                                  order.end());
  order.resize(trainCount);

  Random rng(opts.seed);
  History history;
  history.metrics.resize(metricFns_.size());
  history.valMetrics.resize(metricFns_.size());
  const std::vector<Variable> vars = trainableWeights();

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    if (opts.shuffle) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.below(static_cast<std::uint32_t>(i))]);
      }
    }
    double epochLoss = 0;
    for (std::size_t start = 0; start < trainCount;
         start += static_cast<std::size_t>(opts.batchSize)) {
      const std::size_t end = std::min(
          start + static_cast<std::size_t>(opts.batchSize), trainCount);
      std::span<const std::size_t> batchIdx(order.data() + start, end - start);
      Tensor batchX = takeRows(x, batchIdx);
      Tensor batchY = takeRows(y, batchIdx);
      Tensor cost = optimizer_->minimize(
          [&] {
            Tensor pred = apply(batchX, /*training=*/true);
            return loss_(batchY, pred);
          },
          /*returnCost=*/true, vars);
      epochLoss += static_cast<double>(cost.scalarSync()) *
                   static_cast<double>(end - start);
      cost.dispose();
      batchX.dispose();
      batchY.dispose();
    }
    history.loss.push_back(
        static_cast<float>(epochLoss / static_cast<double>(trainCount)));

    if (!metricFns_.empty()) {
      EvalResult train = evaluateRange(x, y, order, opts.batchSize);
      for (std::size_t m = 0; m < metricFns_.size(); ++m) {
        history.metrics[m].push_back(train.metrics[m]);
      }
    }
    if (valCount > 0) {
      EvalResult val = evaluateRange(x, y, valIdx, opts.batchSize);
      history.valLoss.push_back(val.loss);
      for (std::size_t m = 0; m < metricFns_.size(); ++m) {
        history.valMetrics[m].push_back(val.metrics[m]);
      }
    }
    if (opts.verbose) {
      std::printf("epoch %d/%d - loss %.5f%s\n", epoch + 1, opts.epochs,
                  history.loss.back(),
                  valCount > 0
                      ? (" - val_loss " + std::to_string(history.valLoss.back()))
                            .c_str()
                      : "");
    }
  }
  return history;
}

History Sequential::fitDataset(const data::Pipeline& dataset, int epochs,
                               bool verbose) {
  TFJS_ARG_CHECK(compiled(), "Call compile() before fitDataset()");
  TFJS_ARG_CHECK(epochs > 0, "fitDataset: epochs must be positive");
  History history;
  std::vector<Variable> vars;  // resolved after the first batch builds
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double lossSum = 0;
    std::size_t exampleCount = 0;
    dataset.forEach([&](data::Example batch) {
      build(batch.features.shape());
      if (vars.empty()) vars = trainableWeights();
      const auto n = static_cast<std::size_t>(batch.features.shape()[0]);
      Tensor cost = optimizer_->minimize(
          [&] {
            Tensor pred = apply(batch.features, /*training=*/true);
            return loss_(batch.label, pred);
          },
          /*returnCost=*/true, vars);
      lossSum += static_cast<double>(cost.scalarSync()) *
                 static_cast<double>(n);
      exampleCount += n;
      cost.dispose();
      batch.dispose();
    });
    TFJS_ARG_CHECK(exampleCount > 0, "fitDataset: dataset produced no batches");
    history.loss.push_back(
        static_cast<float>(lossSum / static_cast<double>(exampleCount)));
    if (verbose) {
      std::printf("epoch %d/%d - loss %.5f (%zu examples)\n", epoch + 1,
                  epochs, history.loss.back(), exampleCount);
    }
  }
  return history;
}

EvalResult Sequential::evaluateRange(const Tensor& x, const Tensor& y,
                                     std::span<const std::size_t> indices,
                                     int batchSize) {
  EvalResult result;
  result.metrics.assign(metricFns_.size(), 0);
  double lossSum = 0;
  std::vector<double> metricSums(metricFns_.size(), 0);
  for (std::size_t start = 0; start < indices.size();
       start += static_cast<std::size_t>(batchSize)) {
    const std::size_t end =
        std::min(start + static_cast<std::size_t>(batchSize), indices.size());
    std::span<const std::size_t> batchIdx(indices.data() + start, end - start);
    const auto n = static_cast<double>(end - start);
    Engine::get().tidyVoid([&] {
      Tensor batchX = takeRows(x, batchIdx);
      Tensor batchY = takeRows(y, batchIdx);
      Tensor pred = apply(batchX, /*training=*/false);
      Tensor l = loss_(batchY, pred);
      lossSum += static_cast<double>(l.scalarSync()) * n;
      for (std::size_t m = 0; m < metricFns_.size(); ++m) {
        Tensor mv = metricFns_[m](batchY, pred);
        metricSums[m] += static_cast<double>(mv.scalarSync()) * n;
      }
    });
  }
  const auto total = static_cast<double>(indices.size());
  result.loss = static_cast<float>(lossSum / total);
  for (std::size_t m = 0; m < metricFns_.size(); ++m) {
    result.metrics[m] = static_cast<float>(metricSums[m] / total);
  }
  return result;
}

EvalResult Sequential::evaluate(const Tensor& x, const Tensor& y,
                                int batchSize) {
  TFJS_ARG_CHECK(compiled(), "Call compile() before evaluate()");
  build(x.shape());
  std::vector<std::size_t> all(static_cast<std::size_t>(x.shape()[0]));
  std::iota(all.begin(), all.end(), 0);
  return evaluateRange(x, y, all, batchSize);
}

std::vector<Variable> Sequential::weights() const {
  std::vector<Variable> out;
  for (const auto& layer : layers_) {
    for (const auto& w : layer->weights()) out.push_back(w);
  }
  return out;
}

std::vector<Variable> Sequential::trainableWeights() const {
  std::vector<Variable> out;
  for (const auto& layer : layers_) {
    for (const auto& w : layer->trainableWeights()) out.push_back(w);
  }
  return out;
}

std::size_t Sequential::countParams() const {
  std::size_t n = 0;
  for (const auto& w : weights()) n += w.value().size();
  return n;
}

std::string Sequential::summary() const {
  std::ostringstream os;
  os << "Model: " << name_ << "\n";
  os << "_________________________________________________________________\n";
  os << "Layer (type)                 Params\n";
  os << "=================================================================\n";
  for (const auto& layer : layers_) {
    std::size_t params = 0;
    for (const auto& w : layer->weights()) params += w.value().size();
    std::string label = layer->name() + " (" + layer->className() + ")";
    if (label.size() < 29) label.resize(29, ' ');
    os << label << params << "\n";
  }
  os << "=================================================================\n";
  os << "Total params: " << countParams() << "\n";
  return os.str();
}

io::Json Sequential::toConfig() const {
  io::JsonArray layerSpecs;
  for (const auto& layer : layers_) {
    io::JsonObject spec;
    spec["class_name"] = layer->className();
    spec["config"] = layer->getConfig();
    layerSpecs.emplace_back(std::move(spec));
  }
  io::JsonObject cfg;
  cfg["name"] = name_;
  cfg["layers"] = io::Json(std::move(layerSpecs));
  io::JsonObject root;
  root["class_name"] = "Sequential";
  root["config"] = io::Json(std::move(cfg));
  return io::Json(std::move(root));
}

std::unique_ptr<Sequential> Sequential::fromConfig(const io::Json& config) {
  TFJS_ARG_CHECK(config.at("class_name").asString() == "Sequential",
                 "Expected a Sequential topology");
  const io::Json& cfg = config.at("config");
  auto model = std::make_unique<Sequential>(
      cfg.has("name") ? cfg.at("name").asString() : "sequential");
  for (const auto& spec : cfg.at("layers").asArray()) {
    model->add(layerFromConfig(spec));
  }
  return model;
}

void Sequential::dispose() {
  for (auto& layer : layers_) layer->dispose();
}

}  // namespace tfjs::layers
