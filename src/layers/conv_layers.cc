#include "layers/conv_layers.h"

#include "core/conv_util.h"
#include "core/engine.h"
#include "ops/common.h"
#include "ops/ops.h"

namespace tfjs::layers {

namespace o = tfjs::ops;

namespace {
io::JsonArray pair(int a, int b) {
  io::JsonArray arr;
  arr.emplace_back(a);
  arr.emplace_back(b);
  return arr;
}
}  // namespace

// ------------------------------------------------------------------- Conv2D

Conv2D::Conv2D(Conv2DOptions opts)
    : Layer(opts.name), opts_(std::move(opts)),
      activation_(makeActivation(opts_.activation)) {
  TFJS_ARG_CHECK(opts_.filters > 0, "Conv2D requires filters > 0");
  TFJS_ARG_CHECK(opts_.kernelH > 0 && opts_.kernelW > 0,
                 "Conv2D kernel size must be positive");
}

void Conv2D::build(const Shape& inputShape) {
  TFJS_ARG_CHECK(inputShape.rank() == 4,
                 "Conv2D expects NHWC input, got " << inputShape.toString());
  const int inC = inputShape[3];
  const int fanIn = opts_.kernelH * opts_.kernelW * inC;
  const int fanOut = opts_.kernelH * opts_.kernelW * opts_.filters;
  kernel_ = addWeight("kernel",
                      Shape{opts_.kernelH, opts_.kernelW, inC, opts_.filters},
                      *makeInitializer(opts_.kernelInitializer), fanIn, fanOut);
  if (opts_.useBias) {
    bias_ = addWeight("bias", Shape{opts_.filters}, *zerosInitializer(),
                      fanIn, fanOut);
  }
  built_ = true;
}

Tensor Conv2D::call(const Tensor& x, bool) {
  return Engine::get().tidy([&] {
    // conv2d -> add -> activation matches the fused kernel's epilogue;
    // see Dense::call for the fallback/bit-identity contract.
    if (auto act = o::fusibleActivation(opts_.activation)) {
      return o::fusedConv2d(x, kernel_.value(),
                            opts_.useBias ? bias_.value() : Tensor(), *act,
                            opts_.strideH, opts_.strideW,
                            padModeFromName(opts_.padding));
    }
    Tensor y = o::conv2d(x, kernel_.value(), opts_.strideH, opts_.strideW,
                         padModeFromName(opts_.padding));
    if (opts_.useBias) y = o::add(y, bias_.value());
    return activation_(y);
  });
}

Shape Conv2D::computeOutputShape(const Shape& in) const {
  const PadMode pad = padModeFromName(opts_.padding);
  const int outH = conv_util::outputSize(in[1], opts_.kernelH, opts_.strideH,
                                         1, pad);
  const int outW = conv_util::outputSize(in[2], opts_.kernelW, opts_.strideW,
                                         1, pad);
  return Shape{in[0], outH, outW, opts_.filters};
}

io::Json Conv2D::getConfig() const {
  io::Json j = Layer::getConfig();
  j["filters"] = opts_.filters;
  j["kernel_size"] = io::Json(pair(opts_.kernelH, opts_.kernelW));
  j["strides"] = io::Json(pair(opts_.strideH, opts_.strideW));
  j["padding"] = opts_.padding;
  j["activation"] = opts_.activation;
  j["use_bias"] = opts_.useBias;
  return j;
}

// ---------------------------------------------------------- DepthwiseConv2D

DepthwiseConv2D::DepthwiseConv2D(DepthwiseConv2DOptions opts)
    : Layer(opts.name), opts_(std::move(opts)),
      activation_(makeActivation(opts_.activation)) {
  TFJS_ARG_CHECK(opts_.depthMultiplier > 0,
                 "DepthwiseConv2D depthMultiplier must be > 0");
}

void DepthwiseConv2D::build(const Shape& inputShape) {
  TFJS_ARG_CHECK(inputShape.rank() == 4, "DepthwiseConv2D expects NHWC input");
  const int inC = inputShape[3];
  const int fanIn = opts_.kernelH * opts_.kernelW;
  const int fanOut = fanIn * opts_.depthMultiplier;
  kernel_ = addWeight(
      "depthwise_kernel",
      Shape{opts_.kernelH, opts_.kernelW, inC, opts_.depthMultiplier},
      *makeInitializer(opts_.kernelInitializer), fanIn, fanOut);
  if (opts_.useBias) {
    bias_ = addWeight("bias", Shape{inC * opts_.depthMultiplier},
                      *zerosInitializer(), fanIn, fanOut);
  }
  built_ = true;
}

Tensor DepthwiseConv2D::call(const Tensor& x, bool) {
  return Engine::get().tidy([&] {
    Tensor y = o::depthwiseConv2d(x, kernel_.value(), opts_.strideH,
                                  opts_.strideW,
                                  padModeFromName(opts_.padding));
    if (opts_.useBias) y = o::add(y, bias_.value());
    return activation_(y);
  });
}

Shape DepthwiseConv2D::computeOutputShape(const Shape& in) const {
  const PadMode pad = padModeFromName(opts_.padding);
  const int outH = conv_util::outputSize(in[1], opts_.kernelH, opts_.strideH,
                                         1, pad);
  const int outW = conv_util::outputSize(in[2], opts_.kernelW, opts_.strideW,
                                         1, pad);
  return Shape{in[0], outH, outW, in[3] * opts_.depthMultiplier};
}

io::Json DepthwiseConv2D::getConfig() const {
  io::Json j = Layer::getConfig();
  j["kernel_size"] = io::Json(pair(opts_.kernelH, opts_.kernelW));
  j["strides"] = io::Json(pair(opts_.strideH, opts_.strideW));
  j["depth_multiplier"] = opts_.depthMultiplier;
  j["padding"] = opts_.padding;
  j["activation"] = opts_.activation;
  j["use_bias"] = opts_.useBias;
  return j;
}

// ------------------------------------------------------------------ pooling

MaxPooling2D::MaxPooling2D(Pool2DOptions opts)
    : Layer(opts.name), opts_(std::move(opts)) {}

Tensor MaxPooling2D::call(const Tensor& x, bool) {
  return o::maxPool(x, opts_.poolH, opts_.poolW, opts_.strideH, opts_.strideW,
                    padModeFromName(opts_.padding));
}

Shape MaxPooling2D::computeOutputShape(const Shape& in) const {
  const PadMode pad = padModeFromName(opts_.padding);
  return Shape{in[0],
               conv_util::outputSize(in[1], opts_.poolH, opts_.strideH, 1, pad),
               conv_util::outputSize(in[2], opts_.poolW, opts_.strideW, 1, pad),
               in[3]};
}

io::Json MaxPooling2D::getConfig() const {
  io::Json j = Layer::getConfig();
  j["pool_size"] = io::Json(pair(opts_.poolH, opts_.poolW));
  j["strides"] = io::Json(pair(opts_.strideH, opts_.strideW));
  j["padding"] = opts_.padding;
  return j;
}

AveragePooling2D::AveragePooling2D(Pool2DOptions opts)
    : Layer(opts.name), opts_(std::move(opts)) {}

Tensor AveragePooling2D::call(const Tensor& x, bool) {
  return o::avgPool(x, opts_.poolH, opts_.poolW, opts_.strideH, opts_.strideW,
                    padModeFromName(opts_.padding));
}

Shape AveragePooling2D::computeOutputShape(const Shape& in) const {
  const PadMode pad = padModeFromName(opts_.padding);
  return Shape{in[0],
               conv_util::outputSize(in[1], opts_.poolH, opts_.strideH, 1, pad),
               conv_util::outputSize(in[2], opts_.poolW, opts_.strideW, 1, pad),
               in[3]};
}

io::Json AveragePooling2D::getConfig() const {
  io::Json j = Layer::getConfig();
  j["pool_size"] = io::Json(pair(opts_.poolH, opts_.poolW));
  j["strides"] = io::Json(pair(opts_.strideH, opts_.strideW));
  j["padding"] = opts_.padding;
  return j;
}

GlobalAveragePooling2D::GlobalAveragePooling2D(std::string name)
    : Layer(std::move(name)) {}

Tensor GlobalAveragePooling2D::call(const Tensor& x, bool) {
  TFJS_ARG_CHECK(x.rank() == 4, "GlobalAveragePooling2D expects NHWC input");
  return o::mean(x, std::array<int, 2>{1, 2});
}

Shape GlobalAveragePooling2D::computeOutputShape(const Shape& in) const {
  return Shape{in[0], in[3]};
}

// ------------------------------------------------------- BatchNormalization

BatchNormalization::BatchNormalization(BatchNormOptions opts)
    : Layer(opts.name), opts_(std::move(opts)) {}

void BatchNormalization::build(const Shape& inputShape) {
  const int channels = inputShape[inputShape.rank() - 1];
  const Shape s{channels};
  gamma_ = addWeight("gamma", s, *onesInitializer(), channels, channels,
                     opts_.scale);
  beta_ = addWeight("beta", s, *zerosInitializer(), channels, channels,
                    opts_.center);
  movingMean_ = addWeight("moving_mean", s, *zerosInitializer(), channels,
                          channels, /*trainable=*/false);
  movingVar_ = addWeight("moving_variance", s, *onesInitializer(), channels,
                         channels, /*trainable=*/false);
  built_ = true;
}

Tensor BatchNormalization::call(const Tensor& x, bool training) {
  if (!training) {
    return o::batchNorm(x, movingMean_.value(), movingVar_.value(),
                        beta_.value(), gamma_.value(), opts_.epsilon);
  }
  // Training: normalize with batch statistics; update moving averages as a
  // side effect (outside the gradient tape — they are not differentiated).
  // Intermediates are NOT disposed here: when a tape is active they feed
  // backward; otherwise the caller's tidy scope collects them.
  std::vector<int> reduceAxes;
  for (int d = 0; d < x.rank() - 1; ++d) reduceAxes.push_back(d);
  Tensor batchMean = o::mean(x, reduceAxes);
  Tensor centered = o::sub(x, batchMean);
  Tensor batchVar = o::mean(o::square(centered), reduceAxes);

  {
    // Moving-average update: m = momentum*m + (1-momentum)*batch.
    ops::internal::TapePause pause;
    Tensor newMean = Engine::get().tidy([&] {
      return o::add(o::mulScalar(movingMean_.value(), opts_.momentum),
                    o::mulScalar(batchMean, 1 - opts_.momentum));
    });
    Tensor newVar = Engine::get().tidy([&] {
      return o::add(o::mulScalar(movingVar_.value(), opts_.momentum),
                    o::mulScalar(batchVar, 1 - opts_.momentum));
    });
    movingMean_.assign(newMean);
    movingVar_.assign(newVar);
  }

  return o::batchNorm(x, batchMean, batchVar, beta_.value(), gamma_.value(),
                      opts_.epsilon);
}

Shape BatchNormalization::computeOutputShape(const Shape& in) const {
  return in;
}

io::Json BatchNormalization::getConfig() const {
  io::Json j = Layer::getConfig();
  j["momentum"] = static_cast<double>(opts_.momentum);
  j["epsilon"] = static_cast<double>(opts_.epsilon);
  return j;
}

}  // namespace tfjs::layers
