#include "autodiff/optimizers.h"

#include <cmath>

#include "ops/ops.h"

namespace tfjs::autodiff {

namespace o = tfjs::ops;

Tensor Optimizer::minimize(const std::function<Tensor()>& f, bool returnCost,
                           std::span<const Variable> varList) {
  VariableGradients vg = variableGrads(f, varList);
  applyGradients(vg.grads);
  for (auto& [v, g] : vg.grads) g.dispose();
  if (returnCost) {
    vg.value.keep();
    return vg.value;
  }
  vg.value.dispose();
  return Tensor();
}

Tensor& Optimizer::slot(const Variable& v, const std::string& slotName) {
  return slots_[v.name() + "/" + slotName];
}

void Optimizer::setSlot(const Variable& v, const std::string& slotName,
                        const Tensor& t) {
  auto& s = slots_[v.name() + "/" + slotName];
  if (s.defined() && !s.isDisposed()) s.dispose();
  t.keep();
  s = t;
}

bool Optimizer::hasSlot(const Variable& v, const std::string& slotName) const {
  auto it = slots_.find(v.name() + "/" + slotName);
  return it != slots_.end() && it->second.defined() &&
         !it->second.isDisposed();
}

void SGDOptimizer::applyGradients(
    std::span<const std::pair<Variable, Tensor>> grads) {
  for (const auto& [v, g] : grads) {
    Tensor next = Engine::get().tidy(
        [&] { return o::sub(v.value(), o::mulScalar(g, lr_)); });
    v.assign(next);
  }
}

void MomentumOptimizer::applyGradients(
    std::span<const std::pair<Variable, Tensor>> grads) {
  for (const auto& [v, g] : grads) {
    if (!hasSlot(v, "m")) setSlot(v, "m", o::zerosLike(v.value()));
    Tensor& m = slot(v, "m");
    Tensor newM = Engine::get().tidy(
        [&] { return o::add(o::mulScalar(m, momentum_), g); });
    Tensor next = Engine::get().tidy(
        [&] { return o::sub(v.value(), o::mulScalar(newM, lr_)); });
    setSlot(v, "m", newM);
    v.assign(next);
  }
}

void RMSPropOptimizer::applyGradients(
    std::span<const std::pair<Variable, Tensor>> grads) {
  for (const auto& [v, g] : grads) {
    if (!hasSlot(v, "ms")) setSlot(v, "ms", o::zerosLike(v.value()));
    Tensor& ms = slot(v, "ms");
    Tensor newMs = Engine::get().tidy([&] {
      return o::add(o::mulScalar(ms, decay_),
                    o::mulScalar(o::square(g), 1.0f - decay_));
    });
    Tensor next = Engine::get().tidy([&] {
      Tensor denom = o::sqrt(o::addScalar(newMs, eps_));
      return o::sub(v.value(), o::div(o::mulScalar(g, lr_), denom));
    });
    setSlot(v, "ms", newMs);
    v.assign(next);
  }
}

void AdamOptimizer::applyGradients(
    std::span<const std::pair<Variable, Tensor>> grads) {
  ++step_;
  const float correction1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float correction2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (const auto& [v, g] : grads) {
    if (!hasSlot(v, "m")) setSlot(v, "m", o::zerosLike(v.value()));
    if (!hasSlot(v, "v")) setSlot(v, "v", o::zerosLike(v.value()));
    Tensor& m = slot(v, "m");
    Tensor& vv = slot(v, "v");
    Tensor newM = Engine::get().tidy([&] {
      return o::add(o::mulScalar(m, beta1_), o::mulScalar(g, 1.0f - beta1_));
    });
    Tensor newV = Engine::get().tidy([&] {
      return o::add(o::mulScalar(vv, beta2_),
                    o::mulScalar(o::square(g), 1.0f - beta2_));
    });
    Tensor next = Engine::get().tidy([&] {
      Tensor mHat = o::divScalar(newM, correction1);
      Tensor vHat = o::divScalar(newV, correction2);
      return o::sub(v.value(),
                    o::div(o::mulScalar(mHat, lr_),
                           o::addScalar(o::sqrt(vHat), eps_)));
    });
    setSlot(v, "m", newM);
    setSlot(v, "v", newV);
    v.assign(next);
  }
}

void AdagradOptimizer::applyGradients(
    std::span<const std::pair<Variable, Tensor>> grads) {
  for (const auto& [v, g] : grads) {
    if (!hasSlot(v, "acc")) {
      setSlot(v, "acc", o::fill(v.value().shape(), initial_));
    }
    Tensor& acc = slot(v, "acc");
    Tensor newAcc =
        Engine::get().tidy([&] { return o::add(acc, o::square(g)); });
    Tensor next = Engine::get().tidy([&] {
      return o::sub(v.value(), o::div(o::mulScalar(g, lr_),
                                      o::addScalar(o::sqrt(newAcc), 1e-7f)));
    });
    setSlot(v, "acc", newAcc);
    v.assign(next);
  }
}

std::unique_ptr<Optimizer> makeOptimizer(const std::string& name,
                                         float learningRate) {
  if (name == "sgd") return std::make_unique<SGDOptimizer>(learningRate);
  if (name == "momentum") {
    return std::make_unique<MomentumOptimizer>(learningRate, 0.9f);
  }
  if (name == "rmsprop") return std::make_unique<RMSPropOptimizer>(learningRate);
  if (name == "adam") return std::make_unique<AdamOptimizer>(learningRate);
  if (name == "adagrad") return std::make_unique<AdagradOptimizer>(learningRate);
  throw InvalidArgumentError("Unknown optimizer: " + name);
}

}  // namespace tfjs::autodiff
