#include "autodiff/tape.h"

#include "ops/ops.h"

namespace tfjs::autodiff {

void GradientTape::watch(const Tensor& t) {
  TFJS_ARG_CHECK(t.defined(), "watch() requires a defined tensor");
  watched_.insert(t.id());
}

bool GradientTape::watched(std::span<const Tensor> inputs) const {
  for (const auto& t : inputs) {
    if (t.defined() && !t.isDisposed() && watched_.count(t.id())) return true;
  }
  return false;
}

void GradientTape::record(const std::string& opName,
                          std::span<const Tensor> inputs, const Tensor& output,
                          GradFunc gradFunc) {
  Node n;
  n.op = opName;
  n.inputs.assign(inputs.begin(), inputs.end());
  n.output = output;
  n.grad = std::move(gradFunc);
  // The output becomes watched so downstream ops keep recording; all
  // involved tensors are protected from scope disposal until backward.
  watched_.insert(output.id());
  for (auto& t : n.inputs) t.infoPtr()->taped = true;
  output.infoPtr()->taped = true;
  nodes_.push_back(std::move(n));
}

void GradientTape::releaseTensors() {
  for (auto& n : nodes_) {
    for (auto& t : n.inputs) {
      if (t.defined()) t.infoPtr()->taped = false;
    }
    if (n.output.defined()) n.output.infoPtr()->taped = false;
  }
}

std::vector<Tensor> GradientTape::gradient(const Tensor& y,
                                           std::span<const Tensor> xs,
                                           const Tensor& dySeed) {
  TFJS_ARG_CHECK(y.defined(), "gradient() requires a defined output tensor");
  // Backward runs with the tape uninstalled so pullbacks are not re-recorded
  // (first-order gradients only, as in TensorFlow.js 0.x).
  Engine& engine = Engine::get();
  TapeRecorder* saved = engine.tape();
  engine.setTape(nullptr);

  std::unordered_map<std::int64_t, Tensor> accum;
  accum[y.id()] = dySeed.defined() ? dySeed.clone() : ops::onesLike(y);

  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    auto found = accum.find(it->output.id());
    if (found == accum.end()) continue;
    const Tensor dy = found->second;
    std::vector<Tensor> inputGrads = it->grad(dy);
    TFJS_CHECK_MSG(inputGrads.size() == it->inputs.size(),
                   "op '" << it->op << "' returned " << inputGrads.size()
                          << " gradients for " << it->inputs.size()
                          << " inputs");
    for (std::size_t i = 0; i < inputGrads.size(); ++i) {
      if (!inputGrads[i].defined()) continue;  // non-differentiable input
      const std::int64_t id = it->inputs[i].id();
      auto existing = accum.find(id);
      if (existing == accum.end()) {
        accum[id] = inputGrads[i];
      } else {
        Tensor summed = ops::add(existing->second, inputGrads[i]);
        existing->second.dispose();
        inputGrads[i].dispose();
        existing->second = summed;
      }
    }
  }

  std::vector<Tensor> result;
  result.reserve(xs.size());
  std::unordered_set<std::int64_t> returned;
  for (const auto& x : xs) {
    auto found = accum.find(x.id());
    if (found != accum.end()) {
      result.push_back(found->second);
      returned.insert(x.id());
    } else {
      result.push_back(ops::zerosLike(x));
    }
  }
  // Dispose accumulated adjoints that are not being returned.
  for (auto& [id, t] : accum) {
    if (!returned.count(id) && !t.isDisposed()) t.dispose();
  }
  engine.setTape(saved);
  return result;
}

// ------------------------------------------------------- functional API

std::pair<Tensor, std::vector<Tensor>> valueAndGrads(
    const std::function<Tensor()>& f, std::span<const Tensor> xs) {
  Engine& engine = Engine::get();
  TFJS_ARG_CHECK(engine.tape() == nullptr,
                 "nested grad()/valueAndGrads() is not supported");
  GradientTape tape;
  for (const auto& x : xs) tape.watch(x);

  engine.startScope();
  engine.setTape(&tape);
  Tensor y;
  std::vector<Tensor> gradients;
  try {
    y = f();
    TFJS_ARG_CHECK(y.defined(), "traced function returned a null tensor");
    gradients = tape.gradient(y, xs);
  } catch (...) {
    engine.setTape(nullptr);
    tape.releaseTensors();
    engine.endScope({});
    throw;
  }
  engine.setTape(nullptr);
  tape.releaseTensors();

  std::vector<Tensor> escaping = gradients;
  escaping.push_back(y);
  engine.endScope(escaping);
  return {y, std::move(gradients)};
}

Tensor grad(const std::function<Tensor(const Tensor&)>& f, const Tensor& x) {
  auto [y, gs] = valueAndGrads([&] { return f(x); },
                               std::span<const Tensor>(&x, 1));
  y.dispose();
  return gs[0];
}

std::vector<Tensor> grads(
    const std::function<Tensor(std::span<const Tensor>)>& f,
    std::span<const Tensor> xs) {
  auto [y, gs] = valueAndGrads([&] { return f(xs); }, xs);
  y.dispose();
  return gs;
}

VariableGradients variableGrads(const std::function<Tensor()>& f,
                                std::span<const Variable> varList) {
  std::vector<Variable> vars(varList.begin(), varList.end());
  if (vars.empty()) vars = Engine::get().trainableVariables();
  TFJS_ARG_CHECK(!vars.empty(),
                 "variableGrads: no trainable variables registered");
  std::vector<Tensor> values;
  values.reserve(vars.size());
  for (const auto& v : vars) values.push_back(v.value());

  auto [y, gs] = valueAndGrads(f, values);
  TFJS_ARG_CHECK(y.size() == 1,
                 "variableGrads expects f to return a scalar loss, got shape "
                     << y.shape().toString());
  VariableGradients out;
  out.value = y;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    out.grads.emplace_back(vars[i], gs[i]);
  }
  return out;
}

}  // namespace tfjs::autodiff
