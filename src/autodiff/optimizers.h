// Optimizers (tf.train.* analogues) used by the Layers API's model.fit and
// directly by expert users via minimize().
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "autodiff/tape.h"
#include "core/tensor.h"

namespace tfjs::autodiff {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step. Does not dispose the gradient tensors.
  virtual void applyGradients(
      std::span<const std::pair<Variable, Tensor>> grads) = 0;

  /// Computes variable gradients of f, applies them, disposes them, and
  /// returns the (kept) loss when returnCost is true.
  Tensor minimize(const std::function<Tensor()>& f, bool returnCost = false,
                  std::span<const Variable> varList = {});

  virtual std::string name() const = 0;

 protected:
  /// Slot storage (momentum/rms accumulators), keyed by variable name.
  Tensor& slot(const Variable& v, const std::string& slotName);
  void setSlot(const Variable& v, const std::string& slotName,
               const Tensor& t);
  bool hasSlot(const Variable& v, const std::string& slotName) const;

 private:
  std::unordered_map<std::string, Tensor> slots_;
};

class SGDOptimizer : public Optimizer {
 public:
  explicit SGDOptimizer(float learningRate) : lr_(learningRate) {}
  void applyGradients(
      std::span<const std::pair<Variable, Tensor>> grads) override;
  std::string name() const override { return "sgd"; }
  float learningRate() const { return lr_; }
  void setLearningRate(float lr) { lr_ = lr; }

 private:
  float lr_;
};

class MomentumOptimizer : public Optimizer {
 public:
  MomentumOptimizer(float learningRate, float momentum)
      : lr_(learningRate), momentum_(momentum) {}
  void applyGradients(
      std::span<const std::pair<Variable, Tensor>> grads) override;
  std::string name() const override { return "momentum"; }

 private:
  float lr_, momentum_;
};

class RMSPropOptimizer : public Optimizer {
 public:
  explicit RMSPropOptimizer(float learningRate, float decay = 0.9f,
                            float epsilon = 1e-7f)
      : lr_(learningRate), decay_(decay), eps_(epsilon) {}
  void applyGradients(
      std::span<const std::pair<Variable, Tensor>> grads) override;
  std::string name() const override { return "rmsprop"; }

 private:
  float lr_, decay_, eps_;
};

class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(float learningRate = 0.001f, float beta1 = 0.9f,
                         float beta2 = 0.999f, float epsilon = 1e-7f)
      : lr_(learningRate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}
  void applyGradients(
      std::span<const std::pair<Variable, Tensor>> grads) override;
  std::string name() const override { return "adam"; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int step_ = 0;
};

class AdagradOptimizer : public Optimizer {
 public:
  explicit AdagradOptimizer(float learningRate,
                            float initialAccumulator = 0.1f)
      : lr_(learningRate), initial_(initialAccumulator) {}
  void applyGradients(
      std::span<const std::pair<Variable, Tensor>> grads) override;
  std::string name() const override { return "adagrad"; }

 private:
  float lr_, initial_;
};

/// Factory by name ("sgd", "adam", ...), mirroring model.compile strings.
std::unique_ptr<Optimizer> makeOptimizer(const std::string& name,
                                         float learningRate = 0.01f);

}  // namespace tfjs::autodiff
