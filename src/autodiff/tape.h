// Eager automatic differentiation (paper section 3.5).
//
// TensorFlow.js chose the eager style: computation happens immediately when
// an op is called, and a tape records (inputs, output, pullback) triples for
// ops whose inputs are watched. grad()/valueAndGrads() replay the tape in
// reverse, accumulating adjoints — native C++ control flow (if/while) inside
// the traced function Just Works, exactly the benefit the paper cites.
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/engine.h"
#include "core/tensor.h"

namespace tfjs::autodiff {

class GradientTape : public TapeRecorder {
 public:
  /// Marks a tensor as a differentiation root; ops consuming it (directly
  /// or transitively) are recorded.
  void watch(const Tensor& t);

  // TapeRecorder:
  void record(const std::string& opName, std::span<const Tensor> inputs,
              const Tensor& output, GradFunc gradFunc) override;
  bool watched(std::span<const Tensor> inputs) const override;

  /// Backpropagates from y (seeded with dy, or ones if undefined) and
  /// returns the gradient for each tensor in xs (zeros when disconnected).
  /// Gradients are freshly created tensors owned by the caller.
  std::vector<Tensor> gradient(const Tensor& y, std::span<const Tensor> xs,
                               const Tensor& dy = {});

  /// Clears the `taped` protection flag from every recorded tensor so an
  /// enclosing scope can dispose intermediates (see engine.cc::endScope).
  void releaseTensors();

  std::size_t numNodes() const { return nodes_.size(); }

 private:
  struct Node {
    std::string op;
    std::vector<Tensor> inputs;
    Tensor output;
    GradFunc grad;
  };
  std::vector<Node> nodes_;
  std::unordered_set<std::int64_t> watched_;
};

/// Runs f with a fresh tape installed and returns (value, gradients w.r.t.
/// xs). Intermediates created by f are disposed before returning; the value
/// and gradients are owned by the caller.
std::pair<Tensor, std::vector<Tensor>> valueAndGrads(
    const std::function<Tensor()>& f, std::span<const Tensor> xs);

/// Gradient of a scalar-valued f at x (tf.grad analogue).
Tensor grad(const std::function<Tensor(const Tensor&)>& f, const Tensor& x);

/// Gradients of scalar-valued f w.r.t. several inputs (tf.grads).
std::vector<Tensor> grads(
    const std::function<Tensor(std::span<const Tensor>)>& f,
    std::span<const Tensor> xs);

/// Result of variableGrads: the loss value plus named variable gradients.
struct VariableGradients {
  Tensor value;
  std::vector<std::pair<Variable, Tensor>> grads;
};

/// Computes gradients of f() w.r.t. the given variables (or, if empty, all
/// registered trainable variables) — the training workhorse.
VariableGradients variableGrads(const std::function<Tensor()>& f,
                                std::span<const Variable> varList = {});

}  // namespace tfjs::autodiff
