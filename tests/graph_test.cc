// Graph capture + optimizing executor tests (DESIGN.md "Graph capture &
// optimization"): recorder behavior (value numbering, constant snapshots,
// loud failure on unrecorded kernels), per-pass IR goldens (fold / fuse /
// dce) with the TFJS_GRAPH_OPT bypass, the static memory plan, the
// fold-once-per-backend regression (a warm run does zero weight decodes),
// and the arena contract (a warm run does no shared-pool traffic).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "backends/common/ref_backend.h"
#include "core/buffer_pool.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "graph/capture.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "io/graph_executor.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
using graph::CapturedGraph;
using graph::Graph;
using graph::Node;
using graph::PassOptions;
using ops::OpId;

/// Registers the scalar reference backend (test_main registers
/// cpu/native/webgl only).
void ensureRefRegistered() {
  static const bool once = [] {
    Engine::get().registerBackend(
        "ref", [] { return std::make_unique<backends::RefBackend>(); },
        /*priority=*/0);
    return true;
  }();
  (void)once;
}

void expectBitwiseEqual(const Tensor& a, const Tensor& b) {
  const auto av = a.dataSync();
  const auto bv = b.dataSync();
  ASSERT_EQ(av.size(), bv.size());
  if (std::memcmp(av.data(), bv.data(), av.size() * sizeof(float)) == 0) {
    return;
  }
  for (std::size_t i = 0; i < av.size(); ++i) {
    EXPECT_EQ(av[i], bv[i]) << "first mismatch at flat index " << i;
  }
}

std::uint64_t counterValue(const char* name) {
  return metrics::Registry::get().counter(name).value();
}

Node inputNode(const Shape& s, DType d = DType::f32) {
  Node n;
  n.op = OpId::kInput;
  n.outShape = s;
  n.outDtype = d;
  return n;
}

Node constNode(const Shape& s, DType d = DType::f32) {
  Node n;
  n.op = OpId::kConst;
  n.outShape = s;
  n.outDtype = d;
  return n;
}

Node opNode(OpId op, std::vector<int> inputs, std::vector<double> attrs,
            const Shape& s, DType d = DType::f32) {
  Node n;
  n.op = op;
  n.inputs = std::move(inputs);
  n.attrs = std::move(attrs);
  n.outShape = s;
  n.outDtype = d;
  return n;
}

constexpr double kAddCode = static_cast<double>(BinaryOp::kAdd);
constexpr double kReluCode = static_cast<double>(UnaryOp::kRelu);
constexpr double kF32Code = static_cast<double>(DType::f32);

// ---- capture ------------------------------------------------------------

TEST(GraphCapture, RecordsChainAndSnapshotsConstants) {
  setBackend("cpu");
  Tensor w = o::randomNormal(Shape{3, 4}, 0, 1, 11);
  Tensor b = o::randomNormal(Shape{4}, 0, 1, 12);
  Tensor x = o::randomNormal(Shape{2, 3}, 0, 1, 13);

  Graph g = graph::capture(
      [&](const std::vector<Tensor>& ins) {
        return std::vector<Tensor>{o::relu(o::add(o::matMul(ins[0], w), b))};
      },
      {x});

  // 1 input + 2 constant snapshots + matMul + add + relu. (matMul's
  // internal batched-rank-3 view of the input records a dead alias node;
  // dce sweeps it.)
  EXPECT_EQ(graph::dce(g).nodes.size(), 6u) << g.toString();
  ASSERT_EQ(g.inputs.size(), 1u);
  ASSERT_EQ(g.outputs.size(), 1u);
  const std::string ir = g.toString();
  EXPECT_NE(ir.find("matMul"), std::string::npos) << ir;
  EXPECT_NE(ir.find("binary"), std::string::npos) << ir;
  EXPECT_NE(ir.find("unary"), std::string::npos) << ir;
  EXPECT_NE(ir.find("const"), std::string::npos) << ir;

  // The snapshots alias the originals: same storage, kept alive.
  int constCount = 0;
  for (const Node& n : g.nodes) {
    if (n.op != OpId::kConst) continue;
    ++constCount;
    ASSERT_TRUE(n.constant.defined());
    EXPECT_TRUE(n.constant.dataId() == w.dataId() ||
                n.constant.dataId() == b.dataId());
  }
  EXPECT_EQ(constCount, 2);

  g.disposeConstants();
  for (Tensor t : {w, b, x}) t.dispose();
}

TEST(GraphCapture, ValueNumberingDedupsRepeatedSubexpressions) {
  setBackend("cpu");
  Tensor w = o::randomNormal(Shape{2, 2}, 0, 1, 21);
  Tensor x = o::randomNormal(Shape{2, 2}, 0, 1, 22);

  Graph g = graph::capture(
      [&](const std::vector<Tensor>& ins) {
        Tensor a = o::add(ins[0], w);
        Tensor b = o::add(ins[0], w);  // same (op, inputs, attrs): one node
        return std::vector<Tensor>{o::mul(a, b)};
      },
      {x});

  // input + const + ONE add + mul.
  EXPECT_EQ(g.nodes.size(), 4u) << g.toString();

  g.disposeConstants();
  for (Tensor t : {w, x}) t.dispose();
}

TEST(GraphCapture, ThrowsOnUnrecordedKernel) {
  setBackend("cpu");
  Tensor x = o::randomNormal(Shape{4, 2}, 0, 1, 31);
  Tensor idx = o::tensor1d({2, 0}, DType::i32);

  EXPECT_THROW(
      graph::capture(
          [&](const std::vector<Tensor>& ins) {
            return std::vector<Tensor>{o::gather(ins[0], idx)};
          },
          {x}),
      graph::CaptureError);

  // Allowlisted: the gather output is baked in as a constant and replay
  // still matches eager (the indices are part of the snapshot).
  graph::CaptureOptions opts;
  opts.allowUnrecordedKernels = {"gather"};
  Graph g = graph::capture(
      [&](const std::vector<Tensor>& ins) {
        return std::vector<Tensor>{o::addScalar(o::gather(ins[0], idx), 1)};
      },
      {x}, opts);
  Tensor eager = o::addScalar(o::gather(x, idx), 1);
  CapturedGraph cg(std::move(g));
  std::vector<Tensor> out = cg.run({x});
  expectBitwiseEqual(out[0], eager);

  out[0].dispose();
  cg.dispose();
  for (Tensor t : {x, idx, eager}) t.dispose();
}

TEST(GraphCapture, LeavesNoLiveTensorsBehind) {
  setBackend("cpu");
  Tensor w = o::randomNormal(Shape{2, 2}, 0, 1, 41);
  Tensor x = o::randomNormal(Shape{2, 2}, 0, 1, 42);
  const std::size_t before = memory().numTensors;

  Graph g = graph::capture(
      [&](const std::vector<Tensor>& ins) {
        return std::vector<Tensor>{o::relu(o::matMul(ins[0], w))};
      },
      {x});
  // Only the constant snapshot survives the capture scope.
  EXPECT_EQ(memory().numTensors, before + 1);
  g.disposeConstants();
  EXPECT_EQ(memory().numTensors, before);

  for (Tensor t : {w, x}) t.dispose();
}

// ---- pass goldens -------------------------------------------------------

/// x + (c1 + c2): the constant add folds; dce then drops its operands.
Graph foldFixture() {
  Graph g;
  g.nodes.push_back(inputNode(Shape{2, 2}));
  g.nodes.push_back(constNode(Shape{2, 2}));
  g.nodes.push_back(constNode(Shape{2, 2}));
  g.nodes.push_back(
      opNode(OpId::kBinary, {1, 2}, {kAddCode, kF32Code}, Shape{2, 2}));
  g.nodes.push_back(
      opNode(OpId::kBinary, {0, 3}, {kAddCode, kF32Code}, Shape{2, 2}));
  g.inputs = {0};
  g.outputs = {4};
  return g;
}

TEST(GraphPasses, FoldGolden) {
  Graph g = foldFixture();
  EXPECT_EQ(g.toString(),
            "graph(1 inputs, 5 nodes, 1 outputs)\n"
            "%0 = input -> float32[2,2]\n"
            "%1 = const -> float32[2,2]\n"
            "%2 = const -> float32[2,2]\n"
            "%3 = binary(%1, %2) {0,0} -> float32[2,2]\n"
            "%4 = binary(%0, %3) {0,0} -> float32[2,2]\n"
            "outputs: %4\n");

  Graph folded = graph::foldConstants(g);
  EXPECT_EQ(folded.toString(),
            "graph(1 inputs, 5 nodes, 1 outputs)\n"
            "%0 = input -> float32[2,2]\n"
            "%1 = const -> float32[2,2]\n"
            "%2 = const -> float32[2,2]\n"
            "%3 = const(folded) -> float32[2,2]\n"
            "%4 = binary(%0, %3) {0,0} -> float32[2,2]\n"
            "outputs: %4\n");
  // The marker points at the pre-optimization node that computes the value.
  EXPECT_EQ(folded.nodes[3].foldedFrom, 3);

  Graph swept = graph::dce(folded);
  EXPECT_EQ(swept.toString(),
            "graph(1 inputs, 3 nodes, 1 outputs)\n"
            "%0 = input -> float32[2,2]\n"
            "%1 = const(folded) -> float32[2,2]\n"
            "%2 = binary(%0, %1) {0,0} -> float32[2,2]\n"
            "outputs: %2\n");
  EXPECT_EQ(swept.nodes[1].foldedFrom, 3);  // still a pre-opt id
}

/// relu(matMul(x, w) + b): the canonical dense layer, fully fusable.
Graph fuseFixture() {
  Graph g;
  g.nodes.push_back(inputNode(Shape{2, 3}));
  g.nodes.push_back(constNode(Shape{3, 4}));
  g.nodes.push_back(constNode(Shape{4}));
  g.nodes.push_back(opNode(OpId::kMatMul, {0, 1}, {0, 0}, Shape{2, 4}));
  g.nodes.push_back(
      opNode(OpId::kBinary, {3, 2}, {kAddCode, kF32Code}, Shape{2, 4}));
  g.nodes.push_back(
      opNode(OpId::kUnary, {4}, {kReluCode, 0, 0, kF32Code}, Shape{2, 4}));
  g.inputs = {0};
  g.outputs = {5};
  return g;
}

TEST(GraphPasses, FuseGolden) {
  Graph fused = graph::fuse(fuseFixture());
  // The add absorbs the matMul as a bias epilogue, then the relu absorbs
  // the act=kNone fused node; dead intermediates remain for dce.
  EXPECT_EQ(fused.toString(),
            "graph(1 inputs, 6 nodes, 1 outputs)\n"
            "%0 = input -> float32[2,3]\n"
            "%1 = const -> float32[3,4]\n"
            "%2 = const -> float32[4]\n"
            "%3 = matMul(%0, %1) {0,0} -> float32[2,4]\n"
            "%4 = fusedMatMul(%0, %1, %2) {0,0,0,1} -> float32[2,4]\n"
            "%5 = fusedMatMul(%0, %1, %2) {1,0,0,1} -> float32[2,4]\n"
            "outputs: %5\n");

  Graph swept = graph::dce(fused);
  EXPECT_EQ(swept.toString(),
            "graph(1 inputs, 4 nodes, 1 outputs)\n"
            "%0 = input -> float32[2,3]\n"
            "%1 = const -> float32[3,4]\n"
            "%2 = const -> float32[4]\n"
            "%3 = fusedMatMul(%0, %1, %2) {1,0,0,1} -> float32[2,4]\n"
            "outputs: %3\n");
}

TEST(GraphPasses, FuseDeclinesMultiUseAndOutputIntermediates) {
  // The matMul result is also a graph output: fusing it away would change
  // what the caller gets back.
  Graph g = fuseFixture();
  g.outputs = {3, 5};
  Graph fused = graph::fuse(g);
  EXPECT_EQ(fused.nodes[3].op, OpId::kMatMul);
  EXPECT_EQ(fused.nodes[4].op, OpId::kBinary);

  // Bias rank mismatch (rank-2 addend): not an epilogue.
  Graph g2 = fuseFixture();
  g2.nodes[2].outShape = Shape{2, 4};
  Graph fused2 = graph::fuse(g2);
  EXPECT_EQ(fused2.nodes[4].op, OpId::kBinary);
}

/// mulScalar(relu(x + y), 2) with y broadcasting from the leaves: the whole
/// chain is one region; only the external leaf broadcasts.
Graph elemChainFixture() {
  Graph g;
  g.nodes.push_back(inputNode(Shape{2, 3}));
  g.nodes.push_back(inputNode(Shape{3}));
  g.nodes.push_back(
      opNode(OpId::kBinary, {0, 1}, {kAddCode, kF32Code}, Shape{2, 3}));
  g.nodes.push_back(
      opNode(OpId::kUnary, {2}, {kReluCode, 0, 0, kF32Code}, Shape{2, 3}));
  g.nodes.push_back(opNode(
      OpId::kUnary, {3},
      {static_cast<double>(UnaryOp::kMulScalar), 2, 0, kF32Code},
      Shape{2, 3}));
  g.inputs = {0, 1};
  g.outputs = {4};
  return g;
}

TEST(GraphPasses, FuseElementwiseGolden) {
  Graph fused = graph::fuseElementwise(elemChainFixture());
  // The terminal keeps its id; absorbed interiors stay behind for dce.
  ASSERT_EQ(fused.nodes.size(), 5u);
  const Node& region = fused.nodes[4];
  ASSERT_EQ(region.op, OpId::kFusedRegion) << fused.toString();
  EXPECT_EQ(region.inputs, (std::vector<int>{0, 1}));
  EXPECT_EQ(region.outShape, (Shape{2, 3}));

  const RegionProgram p = o::decodeRegionProgram(region.attrs);
  EXPECT_EQ(p.numInputs, 2);
  ASSERT_EQ(p.instrs.size(), 3u);
  // t0 = add(i0, i1); t1 = relu(t0); t2 = mulScalar(t1, 2)
  EXPECT_EQ(p.instrs[0].kind, RegionInstr::Kind::kBinary);
  EXPECT_EQ(p.instrs[0].op, static_cast<int>(BinaryOp::kAdd));
  EXPECT_EQ(p.instrs[0].a, -1);
  EXPECT_EQ(p.instrs[0].b, -2);
  EXPECT_EQ(p.instrs[1].kind, RegionInstr::Kind::kUnary);
  EXPECT_EQ(p.instrs[1].op, static_cast<int>(UnaryOp::kRelu));
  EXPECT_EQ(p.instrs[1].a, 0);
  EXPECT_EQ(p.instrs[2].op, static_cast<int>(UnaryOp::kMulScalar));
  EXPECT_EQ(p.instrs[2].a, 1);
  EXPECT_EQ(p.instrs[2].alpha, 2.0f);

  // The IR dump prints the program, not 23 raw attr doubles.
  EXPECT_NE(fused.toString().find("fusedRegion(%0, %1) ["),
            std::string::npos)
      << fused.toString();

  Graph swept = graph::dce(fused);
  EXPECT_EQ(swept.nodes.size(), 3u) << swept.toString();
  EXPECT_EQ(swept.nodes[2].op, OpId::kFusedRegion);
}

TEST(GraphPasses, FuseElementwiseDiamondSharesOneInstruction) {
  // s = x*x; out = s + s: the shared producer joins once its only consumer
  // is in the region, and becomes ONE instruction referenced twice.
  Graph g;
  g.nodes.push_back(inputNode(Shape{4}));
  g.nodes.push_back(
      opNode(OpId::kBinary, {0, 0}, {static_cast<double>(BinaryOp::kMul),
                                     kF32Code}, Shape{4}));
  g.nodes.push_back(
      opNode(OpId::kBinary, {1, 1}, {kAddCode, kF32Code}, Shape{4}));
  g.inputs = {0};
  g.outputs = {2};

  Graph fused = graph::fuseElementwise(g);
  const Node& region = fused.nodes[2];
  ASSERT_EQ(region.op, OpId::kFusedRegion) << fused.toString();
  const RegionProgram p = o::decodeRegionProgram(region.attrs);
  EXPECT_EQ(p.numInputs, 1);
  ASSERT_EQ(p.instrs.size(), 2u);
  EXPECT_EQ(p.instrs[1].a, 0);
  EXPECT_EQ(p.instrs[1].b, 0);
}

TEST(GraphPasses, FuseElementwiseRespectsOutputsAndShapes) {
  // An interior that is also a graph output cannot be absorbed — but it can
  // itself terminate a (smaller) region.
  Graph g = elemChainFixture();
  g.outputs = {3, 4};
  Graph fused = graph::fuseElementwise(g);
  EXPECT_EQ(fused.nodes[4].op, OpId::kUnary);  // mulScalar left alone
  EXPECT_EQ(fused.nodes[3].op, OpId::kFusedRegion);  // add+relu fused
  EXPECT_EQ(o::decodeRegionProgram(fused.nodes[3].attrs).instrs.size(), 2u);

  // A producer with a different output shape (interior broadcast) stays
  // outside: only leaf inputs may broadcast into a region.
  Graph g2;
  g2.nodes.push_back(inputNode(Shape{2, 3}));
  g2.nodes.push_back(inputNode(Shape{3}));
  g2.nodes.push_back(
      opNode(OpId::kUnary, {1}, {kReluCode, 0, 0, kF32Code}, Shape{3}));
  g2.nodes.push_back(
      opNode(OpId::kBinary, {0, 2}, {kAddCode, kF32Code}, Shape{2, 3}));
  g2.inputs = {0, 1};
  g2.outputs = {3};
  Graph fused2 = graph::fuseElementwise(g2);
  EXPECT_EQ(fused2.nodes[2].op, OpId::kUnary);
  EXPECT_EQ(fused2.nodes[3].op, OpId::kBinary);
}

TEST(GraphPasses, DceKeepsPlaceholdersAlive) {
  Graph g;
  g.nodes.push_back(inputNode(Shape{2}));
  g.nodes.push_back(inputNode(Shape{2}));  // never consumed
  g.nodes.push_back(
      opNode(OpId::kUnary, {0}, {kReluCode, 0, 0, kF32Code}, Shape{2}));
  g.inputs = {0, 1};
  g.outputs = {2};
  Graph swept = graph::dce(g);
  // Feed order is part of the signature: the unused placeholder survives.
  EXPECT_EQ(swept.nodes.size(), 3u);
  EXPECT_EQ(swept.inputs.size(), 2u);
}

// ---- TFJS_GRAPH_OPT -----------------------------------------------------

TEST(GraphPasses, PassOptionsFromEnv) {
  ::unsetenv("TFJS_GRAPH_OPT");
  PassOptions all = PassOptions::fromEnv();
  EXPECT_TRUE(all.fold && all.fuse && all.dce && all.plan &&
              all.fuseElementwise);

  ::setenv("TFJS_GRAPH_OPT", "0", 1);
  PassOptions none = PassOptions::fromEnv();
  EXPECT_FALSE(none.fold || none.fuse || none.dce || none.plan ||
               none.fuseElementwise);

  ::setenv("TFJS_GRAPH_OPT", "off", 1);
  none = PassOptions::fromEnv();
  EXPECT_FALSE(none.fold || none.fuse || none.dce || none.plan ||
               none.fuseElementwise);

  ::setenv("TFJS_GRAPH_OPT", "fold,dce", 1);
  PassOptions subset = PassOptions::fromEnv();
  EXPECT_TRUE(subset.fold);
  EXPECT_TRUE(subset.dce);
  EXPECT_FALSE(subset.fuse);
  EXPECT_FALSE(subset.plan);
  EXPECT_FALSE(subset.fuseElementwise);

  ::setenv("TFJS_GRAPH_OPT", "fuse_elementwise,dce", 1);
  subset = PassOptions::fromEnv();
  EXPECT_TRUE(subset.fuseElementwise);
  EXPECT_TRUE(subset.dce);
  EXPECT_FALSE(subset.fold || subset.fuse || subset.plan);

  ::setenv("TFJS_GRAPH_OPT", "1", 1);
  all = PassOptions::fromEnv();
  EXPECT_TRUE(all.fold && all.fuse && all.dce && all.plan &&
              all.fuseElementwise);

  ::unsetenv("TFJS_GRAPH_OPT");
}

TEST(GraphPasses, OptToggleBypassesPipeline) {
  setBackend("cpu");
  Tensor w = o::randomNormal(Shape{3, 3}, 0, 1, 51);
  Tensor b = o::randomNormal(Shape{3}, 0, 1, 52);
  Tensor x = o::randomNormal(Shape{2, 3}, 0, 1, 53);
  auto fn = [&](const std::vector<Tensor>& ins) {
    return std::vector<Tensor>{o::relu(o::add(o::matMul(ins[0], w), b))};
  };
  Tensor eager = fn({x})[0];

  ::setenv("TFJS_GRAPH_OPT", "0", 1);
  CapturedGraph off(graph::capture(fn, {x}));  // default opts read the env
  ::unsetenv("TFJS_GRAPH_OPT");
  // Bypassed: the optimized graph is the captured graph, verbatim.
  EXPECT_EQ(off.optimized().toString(), off.original().toString());

  CapturedGraph on(graph::capture(fn, {x}), PassOptions::all());
  EXPECT_LT(on.optimized().nodes.size(), on.original().nodes.size());

  // Both replays are bit-identical to eager (the fused epilogue contract).
  std::vector<Tensor> a = off.run({x});
  std::vector<Tensor> c = on.run({x});
  expectBitwiseEqual(a[0], eager);
  expectBitwiseEqual(c[0], eager);

  a[0].dispose();
  c[0].dispose();
  off.dispose();
  on.dispose();
  for (Tensor t : {w, b, x, eager}) t.dispose();
}

// ---- memory plan --------------------------------------------------------

TEST(GraphPlan, LivenessAndReservations) {
  Graph g;
  g.nodes.push_back(inputNode(Shape{2, 2}));
  g.nodes.push_back(
      opNode(OpId::kUnary, {0}, {kReluCode, 0, 0, kF32Code}, Shape{2, 2}));
  g.nodes.push_back(
      opNode(OpId::kUnary, {1}, {kReluCode, 0, 0, kF32Code}, Shape{2, 2}));
  g.nodes.push_back(
      opNode(OpId::kUnary, {2}, {kReluCode, 0, 0, kF32Code}, Shape{2, 2}));
  g.inputs = {0};
  g.outputs = {3};

  graph::MemoryPlan plan = graph::planMemory(g);
  ASSERT_EQ(plan.lastUse.size(), 4u);
  EXPECT_EQ(plan.lastUse[1], 2);
  EXPECT_EQ(plan.lastUse[2], 3);
  EXPECT_EQ(plan.lastUse[3], graph::MemoryPlan::kLiveToEnd);
  // At most two 4-element buffers live at once; 32 bytes peak.
  EXPECT_EQ(plan.toString(), "plan(peak 32 bytes; 2x4)");
}

// ---- executor -----------------------------------------------------------

TEST(GraphExec, CapturedMatchesEagerBitwiseOnAllBackends) {
  ensureRefRegistered();
  Tensor w = o::randomNormal(Shape{6, 8}, 0, 0.5f, 61);
  Tensor b = o::randomNormal(Shape{8}, 0, 0.5f, 62);
  Tensor w2 = o::randomNormal(Shape{8, 3}, 0, 0.5f, 63);
  Tensor x = o::randomNormal(Shape{4, 6}, 0, 1, 64);
  auto fn = [&](const std::vector<Tensor>& ins) {
    Tensor h = o::relu(o::add(o::matMul(ins[0], w), b));
    return std::vector<Tensor>{o::softmax(o::matMul(h, w2))};
  };

  for (const char* backend : {"ref", "cpu", "native"}) {
    setBackend(backend);
    Tensor eager = tidy([&] { return fn({x})[0]; });
    CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());
    std::vector<Tensor> cold = cg.run({x});
    std::vector<Tensor> warm = cg.run({x});
    expectBitwiseEqual(cold[0], eager);
    expectBitwiseEqual(warm[0], eager);
    cold[0].dispose();
    warm[0].dispose();
    cg.dispose();
    eager.dispose();
  }
  setBackend("cpu");
  for (Tensor t : {w, b, w2, x}) t.dispose();
}

TEST(GraphExec, Int8RoutedWeightsStayBitwise) {
  ensureRefRegistered();
  setBackend("cpu");
  Tensor w = o::randomNormal(Shape{5, 7}, 0, 1, 71);
  Tensor w8 = o::quantizePerChannel(w);
  Tensor b = o::randomNormal(Shape{7}, 0, 1, 72);
  Tensor x = o::randomNormal(Shape{3, 5}, 0, 1, 73);
  auto fn = [&](const std::vector<Tensor>& ins) {
    // int8 weights: matMul routes to the quantized kernel; the capture
    // must preserve that routing (and its quantization parameters).
    return std::vector<Tensor>{o::add(o::matMul(ins[0], w8), b)};
  };

  for (const char* backend : {"ref", "cpu", "native"}) {
    setBackend(backend);
    Tensor eager = tidy([&] { return fn({x})[0]; });
    CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());
    std::vector<Tensor> out = cg.run({x});
    expectBitwiseEqual(out[0], eager);
    out[0].dispose();
    cg.dispose();
    eager.dispose();
  }
  setBackend("cpu");
  for (Tensor t : {w, w8, b, x}) t.dispose();
}

TEST(GraphExec, FoldedConstantsMaterializeOncePerBackend) {
  ensureRefRegistered();
  setBackend("cpu");
  Tensor a = o::randomNormal(Shape{4, 4}, 0, 1, 81);
  Tensor c = o::randomNormal(Shape{4, 4}, 0, 1, 82);
  Tensor x = o::randomNormal(Shape{2, 4}, 0, 1, 83);
  auto fn = [&](const std::vector<Tensor>& ins) {
    Tensor folded = o::mul(a, c);  // constant subexpression
    return std::vector<Tensor>{o::matMul(ins[0], folded)};
  };
  Tensor eagerCpu = tidy([&] { return fn({x})[0]; });

  CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());

  const std::uint64_t d0 = counterValue("graph.const_decodes");
  std::vector<Tensor> r1 = cg.run({x});
  EXPECT_EQ(counterValue("graph.const_decodes"), d0 + 1);  // cold: one fold
  std::vector<Tensor> r2 = cg.run({x});
  EXPECT_EQ(counterValue("graph.const_decodes"), d0 + 1);  // warm: zero
  expectBitwiseEqual(r1[0], eagerCpu);
  expectBitwiseEqual(r2[0], eagerCpu);
  r1[0].dispose();
  r2[0].dispose();

  // A new backend folds once with its own kernels, then caches too.
  setBackend("native");
  Tensor eagerNative = tidy([&] { return fn({x})[0]; });
  std::vector<Tensor> n1 = cg.run({x});
  EXPECT_EQ(counterValue("graph.const_decodes"), d0 + 2);
  std::vector<Tensor> n2 = cg.run({x});
  EXPECT_EQ(counterValue("graph.const_decodes"), d0 + 2);
  expectBitwiseEqual(n1[0], eagerNative);
  expectBitwiseEqual(n2[0], eagerNative);
  n1[0].dispose();
  n2[0].dispose();
  eagerNative.dispose();

  setBackend("cpu");
  cg.dispose();
  for (Tensor t : {a, c, x, eagerCpu}) t.dispose();
}

TEST(GraphExec, WarmRunUsesArenaNotSharedPool) {
  setBackend("cpu");
  Tensor w1 = o::randomNormal(Shape{16, 32}, 0, 0.5f, 91);
  Tensor w2 = o::randomNormal(Shape{32, 16}, 0, 0.5f, 92);
  Tensor x = o::randomNormal(Shape{8, 16}, 0, 1, 93);
  auto fn = [&](const std::vector<Tensor>& ins) {
    Tensor h = o::relu(o::matMul(ins[0], w1));
    return std::vector<Tensor>{o::sigmoid(o::matMul(h, w2))};
  };

  CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());
  EXPECT_FALSE(cg.plan().reservations.empty());
  std::vector<Tensor> cold = cg.run({x});
  cold[0].dispose();

  const auto pool0 = core::BufferPool::get().stats();
  const std::uint64_t miss0 = counterValue("pool.arena_misses");
  const std::uint64_t hit0 = counterValue("pool.arena_hits");
  std::vector<Tensor> warm = cg.run({x});
  const auto pool1 = core::BufferPool::get().stats();

  // Every allocation in the warm run came out of the graph's arena: no
  // arena misses, no shared-pool hits or misses.
  EXPECT_GT(counterValue("pool.arena_hits"), hit0);
  EXPECT_EQ(counterValue("pool.arena_misses"), miss0);
  EXPECT_EQ(pool1.hits, pool0.hits);
  EXPECT_EQ(pool1.misses, pool0.misses);

  warm[0].dispose();
  cg.dispose();
  for (Tensor t : {w1, w2, x}) t.dispose();
}

TEST(GraphExec, RunLeavesNoLiveTensorsBehind) {
  setBackend("cpu");
  Tensor w = o::randomNormal(Shape{4, 4}, 0, 1, 101);
  Tensor x = o::randomNormal(Shape{2, 4}, 0, 1, 102);
  auto fn = [&](const std::vector<Tensor>& ins) {
    return std::vector<Tensor>{o::relu(o::matMul(ins[0], w))};
  };
  CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());

  const std::size_t before = memory().numTensors;
  std::vector<Tensor> out = cg.run({x});
  EXPECT_EQ(memory().numTensors, before + 1);  // just the output
  out[0].dispose();
  EXPECT_EQ(memory().numTensors, before);

  cg.dispose();
  for (Tensor t : {w, x}) t.dispose();
}

TEST(GraphExec, FeedValidation) {
  setBackend("cpu");
  Tensor x = o::randomNormal(Shape{2, 2}, 0, 1, 111);
  auto fn = [&](const std::vector<Tensor>& ins) {
    return std::vector<Tensor>{o::relu(ins[0])};
  };
  CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());

  EXPECT_THROW(cg.run({}), InvalidArgumentError);
  Tensor wrongDtype = o::cast(x, DType::i32);
  EXPECT_THROW(cg.run({wrongDtype}), InvalidArgumentError);
  // io imports don't know placeholder dtypes; the check is optional.
  cg.setStrictFeedDtypes(false);
  std::vector<Tensor> out = cg.run({wrongDtype});
  out[0].dispose();

  cg.dispose();
  for (Tensor t : {x, wrongDtype}) t.dispose();
}

TEST(GraphExec, PassthroughOutputsGetFreshHandles) {
  setBackend("cpu");
  Tensor x = o::randomNormal(Shape{2, 2}, 0, 1, 121);
  auto fn = [&](const std::vector<Tensor>& ins) {
    Tensor y = o::relu(ins[0]);
    return std::vector<Tensor>{ins[0], y, y};  // feed + repeated output
  };
  CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());
  std::vector<Tensor> out = cg.run({x});
  ASSERT_EQ(out.size(), 3u);
  expectBitwiseEqual(out[0], x);
  expectBitwiseEqual(out[1], out[2]);
  // Every returned handle is disposable exactly once, and the feed
  // survives.
  for (Tensor& t : out) t.dispose();
  EXPECT_FALSE(x.isDisposed());

  cg.dispose();
  x.dispose();
}

TEST(GraphExec, FusedRegionBitwiseOnAllBackends) {
  ensureRefRegistered();
  setBackend("cpu");
  Tensor b = o::randomNormal(Shape{8}, 0, 0.5f, 141);
  Tensor x = o::randomNormal(Shape{4, 8}, 0, 1, 142);
  auto fn = [&](const std::vector<Tensor>& ins) {
    // Broadcast leaf, diamond sharing, comparison + select, scalar tail:
    // everything the fuser claims to fuse, in one chain.
    Tensor h = o::mul(o::add(ins[0], b), ins[0]);
    Tensor t = o::relu(h);
    Tensor s = o::where(o::greater(t, o::mulScalar(t, 0.5f)), t, o::neg(t));
    return std::vector<Tensor>{o::addScalar(s, 0.5f)};
  };

  const std::uint64_t r0 = counterValue("graph.fused_regions");
  for (const char* backend : {"ref", "cpu", "native"}) {
    setBackend(backend);
    Tensor eager = tidy([&] { return fn({x})[0]; });
    CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());
    std::vector<Tensor> cold = cg.run({x});
    std::vector<Tensor> warm = cg.run({x});
    expectBitwiseEqual(cold[0], eager);
    expectBitwiseEqual(warm[0], eager);
    cold[0].dispose();
    warm[0].dispose();
    cg.dispose();
    eager.dispose();
  }
  EXPECT_GT(counterValue("graph.fused_regions"), r0);
  setBackend("cpu");
  for (Tensor t : {b, x}) t.dispose();
}

TEST(GraphExec, ShapeClassReusesPlanAcrossBatchSizes) {
  setBackend("cpu");
  Tensor w = o::randomNormal(Shape{6}, 0, 0.5f, 151);
  Tensor x4 = o::randomNormal(Shape{4, 6}, 0, 1, 152);
  auto fn = [&](const std::vector<Tensor>& ins) {
    return std::vector<Tensor>{o::mulScalar(o::relu(o::add(ins[0], w)), 3)};
  };
  CapturedGraph cg(graph::capture(fn, {x4}), PassOptions::all());

  // Batches 4, 7, 16 share one symbolic shape-class (rank 2, no 1-dims):
  // the plan instantiates once and every later batch reuses it. Batch 1 is
  // a separate class — a leading 1 changes broadcast semantics.
  const std::uint64_t c0 = counterValue("graph.plan_compiles");
  for (int batch : {4, 7, 16, 7, 4}) {
    Tensor x = o::randomNormal(Shape{batch, 6}, 0, 1, 160 + batch);
    Tensor eager = tidy([&] { return fn({x})[0]; });
    std::vector<Tensor> out = cg.run({x});
    expectBitwiseEqual(out[0], eager);
    out[0].dispose();
    eager.dispose();
    x.dispose();
  }
  EXPECT_EQ(counterValue("graph.plan_compiles"), c0 + 1);
  EXPECT_EQ(cg.numArenas(), 1u);

  Tensor x1 = o::randomNormal(Shape{1, 6}, 0, 1, 159);
  std::vector<Tensor> out1 = cg.run({x1});
  EXPECT_EQ(counterValue("graph.plan_compiles"), c0 + 2);
  EXPECT_EQ(cg.numArenas(), 2u);
  out1[0].dispose();
  x1.dispose();

  cg.dispose();
  for (Tensor t : {w, x4}) t.dispose();
}

TEST(GraphExec, ArenaCacheEvictsLeastRecentShapeClass) {
  setBackend("cpu");
  Tensor x = o::randomNormal(Shape{2, 2}, 0, 1, 171);
  auto fn = [&](const std::vector<Tensor>& ins) {
    return std::vector<Tensor>{o::relu(ins[0])};
  };
  CapturedGraph cg(graph::capture(fn, {x}), PassOptions::all());

  // kMaxArenas + 1 distinct shape-classes: the first one (the capture
  // example, least recently used) is evicted; the map stays capped.
  const std::vector<Shape> classes = {
      Shape{2, 2},    Shape{1, 2},    Shape{2, 1},
      Shape{1, 1},    Shape{2, 2, 2}, Shape{1, 2, 2},
      Shape{2, 1, 2}, Shape{2, 2, 1}, Shape{1, 1, 2}};
  ASSERT_EQ(classes.size(), CapturedGraph::kMaxArenas + 1);
  const std::uint64_t e0 = counterValue("pool.arena_evictions");
  const std::uint64_t c0 = counterValue("graph.plan_compiles");
  for (const Shape& s : classes) {
    Tensor f = o::randomNormal(s, 0, 1, 180);
    std::vector<Tensor> out = cg.run({f});
    out[0].dispose();
    f.dispose();
  }
  EXPECT_EQ(cg.numArenas(), CapturedGraph::kMaxArenas);
  EXPECT_EQ(counterValue("pool.arena_evictions"), e0 + 1);
  EXPECT_EQ(counterValue("graph.plan_compiles"), c0 + classes.size());

  // The evicted class pays one re-instantiation on its next run.
  std::vector<Tensor> again = cg.run({x});
  EXPECT_EQ(counterValue("graph.plan_compiles"), c0 + classes.size() + 1);
  EXPECT_EQ(counterValue("pool.arena_evictions"), e0 + 2);
  again[0].dispose();

  cg.dispose();
  x.dispose();
}

// ---- io::GraphExecutor regression ---------------------------------------

TEST(GraphExec, ImportedGraphDecodesWeightsOnce) {
  setBackend("native");
  // x + (w * s): the weight product is const-folded at import, so the
  // decode happens on the first execute only — the old executor re-resolved
  // weights on every run.
  io::GraphDef def;
  Tensor w = o::randomNormal(Shape{2, 3}, 0, 1, 131);
  Tensor s = o::randomNormal(Shape{2, 3}, 0, 1, 132);
  def.nodes.push_back({"x", "Placeholder", {}, Tensor(), io::Json()});
  def.nodes.push_back({"w", "VariableV2", {}, w, io::Json()});
  def.nodes.push_back({"s", "Const", {}, s, io::Json()});
  def.nodes.push_back({"ws", "Mul", {"w", "s"}, Tensor(), io::Json()});
  def.nodes.push_back({"out", "Add", {"x", "ws"}, Tensor(), io::Json()});
  def.outputs = {"out"};
  io::GraphExecutor exec(std::move(def));

  Tensor x = o::randomNormal(Shape{2, 3}, 0, 1, 133);
  const std::uint64_t d0 = counterValue("graph.const_decodes");
  Tensor r1 = exec.execute({{"x", x}});
  const std::uint64_t afterCold = counterValue("graph.const_decodes");
  EXPECT_GT(afterCold, d0);
  Tensor r2 = exec.execute({{"x", x}});
  // Warm execute: zero weight re-decodes.
  EXPECT_EQ(counterValue("graph.const_decodes"), afterCold);
  expectBitwiseEqual(r1, r2);

  Tensor expected = o::add(x, o::mul(w, s));
  test::expectClose(r1, expected, 1e-6f);
  for (Tensor t : {x, r1, r2, expected, w, s}) t.dispose();
  setBackend("cpu");
}

}  // namespace
}  // namespace tfjs
