// Long-tail coverage: conv geometry math, JSON and half-precision edges,
// Random determinism, Tensor printing, engine backend management, gather
// gradients (embedding training), and the device cost model's invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.h"
#include "backends/webgl/device_model.h"
#include "core/conv_util.h"
#include "core/engine.h"
#include "core/half.h"
#include "core/random.h"
#include "core/scoped.h"
#include "io/json.h"
#include "layers/rnn_layers.h"
#include "layers/sequential.h"
#include "layers/core_layers.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;

class MiscTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }
};

// ------------------------------------------------------------- conv_util

TEST_F(MiscTest, OutputSizeValidAndSame) {
  using conv_util::outputSize;
  // VALID: floor((in - filter)/stride) + 1
  EXPECT_EQ(outputSize(224, 3, 2, 1, PadMode::kValid), 111);
  EXPECT_EQ(outputSize(5, 3, 1, 1, PadMode::kValid), 3);
  EXPECT_EQ(outputSize(5, 5, 1, 1, PadMode::kValid), 1);
  // SAME: ceil(in/stride), independent of filter size
  EXPECT_EQ(outputSize(224, 3, 2, 1, PadMode::kSame), 112);
  EXPECT_EQ(outputSize(5, 3, 2, 1, PadMode::kSame), 3);
  // Dilation enlarges the effective filter.
  EXPECT_EQ(outputSize(7, 3, 1, 2, PadMode::kValid), 3);  // effective 5
  // VALID with a filter larger than the input throws.
  EXPECT_THROW(outputSize(2, 3, 1, 1, PadMode::kValid), InvalidArgumentError);
}

TEST_F(MiscTest, ComputeConv2DInfoGeometry) {
  const Conv2DInfo info = conv_util::computeConv2DInfo(
      Shape{1, 224, 224, 3}, Shape{3, 3, 3, 32}, 2, 2, PadMode::kSame);
  EXPECT_EQ(info.outH, 112);
  EXPECT_EQ(info.outW, 112);
  EXPECT_EQ(info.outC, 32);
  EXPECT_EQ(info.padTop, 0);  // 111*2+3-224 = 1 -> pad 0 before, 1 after
  EXPECT_EQ(info.channelMult, 0);
  // FLOP count: 2 * outElems * kH*kW*inC
  EXPECT_EQ(info.flops(), 2ull * 112 * 112 * 32 * 27);
  // Channel mismatch rejected.
  EXPECT_THROW(conv_util::computeConv2DInfo(Shape{1, 8, 8, 4},
                                            Shape{3, 3, 3, 8}, 1, 1,
                                            PadMode::kSame),
               InvalidArgumentError);
}

TEST_F(MiscTest, DepthwiseInfoChannelMultiplier) {
  const Conv2DInfo info = conv_util::computeConv2DInfo(
      Shape{1, 8, 8, 4}, Shape{3, 3, 4, 2}, 1, 1, PadMode::kSame, 1, 1,
      /*depthwise=*/true);
  EXPECT_EQ(info.channelMult, 2);
  EXPECT_EQ(info.outC, 8);
}

// ------------------------------------------------------------ half / rng

TEST_F(MiscTest, HalfSubnormals) {
  // Smallest positive subnormal half is 2^-24 ~ 5.96e-8.
  const float tiny = 5.9604645e-8f;
  EXPECT_GT(roundTripHalf(tiny), 0.f);
  EXPECT_FLOAT_EQ(roundTripHalf(tiny), tiny);
  // Half of it flushes to zero.
  EXPECT_FLOAT_EQ(roundTripHalf(tiny / 4), 0.f);
  // Negative values keep their sign through subnormal range.
  EXPECT_LT(roundTripHalf(-tiny), 0.f);
}

TEST_F(MiscTest, HalfPreservesInfAndNaN) {
  EXPECT_TRUE(std::isinf(roundTripHalf(std::numeric_limits<float>::infinity())));
  EXPECT_TRUE(std::isnan(roundTripHalf(std::nanf(""))));
}

TEST_F(MiscTest, RandomIsDeterministicPerSeed) {
  Random a(123), b(123), c(124);
  bool anyDiff = false;
  for (int i = 0; i < 100; ++i) {
    const float va = a.uniform();
    EXPECT_FLOAT_EQ(va, b.uniform());
    anyDiff |= va != c.uniform();
    EXPECT_GE(va, 0.f);
    EXPECT_LT(va, 1.f);
  }
  EXPECT_TRUE(anyDiff);
}

TEST_F(MiscTest, RandomNormalMoments) {
  Random rng(9);
  double sum = 0, sumSq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float v = rng.normal();
    sum += v;
    sumSq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumSq / n, 1.0, 0.1);
}

// -------------------------------------------------------------- printing

TEST_F(MiscTest, TensorToStringTruncatesLargeTensors) {
  Tensor small = o::tensor({1.5f, 2.5f}, Shape{2});
  const std::string s = small.toString();
  EXPECT_NE(s.find("[2]"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  Tensor big = o::zeros(Shape{100});
  EXPECT_NE(big.toString().find("..."), std::string::npos);
  EXPECT_EQ(big.toString(true).find("..."), std::string::npos);
  small.dispose();
  big.dispose();
}

// ------------------------------------------------------ backend lifecycle

TEST_F(MiscTest, RemoveBackendInstanceRecreatesOnDemand) {
  setBackend("cpu");
  Tensor t = o::scalar(1);
  t.dispose();
  Engine::get().removeBackendInstance("cpu");
  // Setting it again instantiates a fresh backend.
  setBackend("cpu");
  Tensor u = o::scalar(2);
  EXPECT_FLOAT_EQ(u.scalarSync(), 2);
  u.dispose();
  setBackend("native");
}

TEST_F(MiscTest, BackendElectionPrefersHighestPriority) {
  // webgl registered at priority 3 wins the default election.
  Engine::get().removeBackendInstance("does-not-matter");
  // The active backend after explicit set in SetUp is native; verify the
  // registry still knows all three.
  auto names = Engine::get().registeredBackends();
  EXPECT_GE(names.size(), 3u);
}

// ----------------------------------------------------- gather gradients

TEST_F(MiscTest, GatherAxis0GradientScatters) {
  Tensor table = o::tensor({1, 2, 3, 4, 5, 6}, Shape{3, 2});
  Tensor idx = o::tensor({2, 0, 2}, Shape{3}, DType::i32);
  idx.keep();
  Tensor g = autodiff::grad(
      [&](const Tensor& t) { return o::sum(o::gather(t, idx, 0)); }, table);
  // Row 0 gathered once, row 1 never, row 2 twice.
  test::expectValues(g, {1, 1, 0, 0, 2, 2});
  g.dispose();
  table.dispose();
  idx.dispose();
}

TEST_F(MiscTest, EmbeddingTrainsEndToEnd) {
  // Two tokens must map to two different classes; only the embedding table
  // and the dense head are trainable.
  setBackend("native");
  auto model = sequential("embed_train");
  model->add(std::make_shared<layers::Embedding>(4, 8, "emb_train"));
  model->add(std::make_shared<layers::Flatten>());
  layers::DenseOptions d;
  d.units = 2;
  d.activation = "softmax";
  model->add(std::make_shared<layers::Dense>(d));
  layers::CompileOptions c;
  c.optimizer = "adam";
  c.learningRate = 0.05f;
  c.loss = "categoricalCrossentropy";
  c.metrics = {"accuracy"};
  model->compile(c);

  // Sequences [t, t] with label = token parity.
  std::vector<float> xs, ys;
  for (int i = 0; i < 32; ++i) {
    const int tok = i % 4;
    xs.push_back(static_cast<float>(tok));
    xs.push_back(static_cast<float>(tok));
    ys.push_back(tok % 2 == 0 ? 1.f : 0.f);
    ys.push_back(tok % 2 == 0 ? 0.f : 1.f);
  }
  Tensor x = o::tensor(xs, Shape{32, 2}, DType::i32);
  Tensor y = o::tensor(ys, Shape{32, 2});
  layers::FitOptions fit;
  fit.epochs = 15;
  fit.batchSize = 8;
  layers::History h = model->fit(x, y, fit);
  EXPECT_GT(h.metrics[0].back(), 0.95f)
      << "embedding gradients not reaching the table";
  x.dispose();
  y.dispose();
  model->dispose();
}

// ------------------------------------------------------ device model math

TEST_F(MiscTest, PackingSpeedupBoundedByFour) {
  using namespace backends::webgl;
  const DeviceModel dev = irisProWebGL();
  // A fetch-bound elementwise program: packed quarters both invocations and
  // fetches -> asymptotic 4x, minus the fixed dispatch overhead.
  ProgramCost unpacked;
  unpacked.invocations = 1 << 22;
  unpacked.fetchesPerInvocation = 2;
  unpacked.flopsPerInvocation = 1;
  ProgramCost packed = unpacked;
  packed.invocations /= 4;
  packed.flopsPerInvocation = 4;
  const double s = dev.timeMs(unpacked, false) / dev.timeMs(packed, true);
  EXPECT_GT(s, 1.0);
  EXPECT_LE(s, 4.0);
}

TEST_F(MiscTest, SharedMemoryOnlyHelpsReusablePrograms) {
  using namespace backends::webgl;
  DeviceModel cuda = gtx1080Cuda();
  ProgramCost elementwise;
  elementwise.invocations = 1 << 20;
  elementwise.fetchesPerInvocation = 2;
  elementwise.flopsPerInvocation = 1;
  elementwise.reusable = false;
  ProgramCost matmulish = elementwise;
  matmulish.reusable = true;
  EXPECT_LT(cuda.timeMs(matmulish, false), cuda.timeMs(elementwise, false));
}

// ------------------------------------------------------------- json edges

TEST_F(MiscTest, JsonUnicodeEscapes) {
  io::Json j = io::Json::parse(R"({"s": "aéb"})");
  const std::string& s = j.at("s").asString();
  EXPECT_EQ(s.size(), 4u);  // 'a' + 2-byte UTF-8 + 'b'
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s[3], 'b');
}

TEST_F(MiscTest, JsonNumbersWithExponents) {
  io::Json j = io::Json::parse(R"([1e3, -2.5E-2, 0.125])");
  EXPECT_DOUBLE_EQ(j.asArray()[0].asDouble(), 1000);
  EXPECT_DOUBLE_EQ(j.asArray()[1].asDouble(), -0.025);
  EXPECT_DOUBLE_EQ(j.asArray()[2].asDouble(), 0.125);
}

TEST_F(MiscTest, JsonObjectBracketBuildsNested) {
  io::Json j;
  j["a"]["b"] = 3;
  EXPECT_EQ(j.at("a").at("b").asInt(), 3);
}

// --------------------------------------------------------- tensor algebra

TEST_F(MiscTest, ChainAliasesShareOneBuffer) {
  const auto before = memory();
  Tensor t = o::range(0, 24);
  Tensor a = t.reshape(Shape{2, 12});
  Tensor b = a.reshape(Shape{2, 3, 4});
  Tensor c = b.flatten();
  Tensor d = c.clone();
  EXPECT_EQ(memory().numDataBuffers, before.numDataBuffers + 1);
  EXPECT_EQ(memory().numTensors, before.numTensors + 5);
  for (Tensor x : {t, a, b, c}) x.dispose();
  // Last alias still reads the shared buffer.
  EXPECT_FLOAT_EQ(d.dataSync()[23], 23);
  d.dispose();
  EXPECT_EQ(memory().numDataBuffers, before.numDataBuffers);
}

// ---------------------------------------------------------- ScopedTensor

TEST_F(MiscTest, ScopedTensorDisposesAtScopeExit) {
  const auto before = memory();
  {
    ScopedTensor s(o::tensor({1, 2, 3}, Shape{3}));
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(memory().numTensors, before.numTensors + 1);
    test::expectValues(s.get(), {1, 2, 3});
  }
  EXPECT_EQ(memory().numTensors, before.numTensors);
  EXPECT_EQ(memory().numBytes, before.numBytes);
}

TEST_F(MiscTest, ScopedTensorMoveAndReleaseSemantics) {
  const auto before = memory();
  ScopedTensor a(o::scalar(1));
  ScopedTensor b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  // reset replaces and disposes the old value.
  b.reset(o::scalar(2));
  EXPECT_FLOAT_EQ(b.get().scalarSync(), 2);
  EXPECT_EQ(memory().numTensors, before.numTensors + 1);
  // release opts back into manual management.
  Tensor manual = b.release();
  EXPECT_FALSE(static_cast<bool>(b));
  EXPECT_FLOAT_EQ(manual.scalarSync(), 2);
  manual.dispose();
  EXPECT_EQ(memory().numTensors, before.numTensors);
}

TEST_F(MiscTest, ZeroSizedTensors) {
  Tensor empty = o::tensor(std::vector<float>{}, Shape{0, 3});
  EXPECT_EQ(empty.size(), 0u);
  Tensor doubled = o::mulScalar(empty, 2);
  EXPECT_EQ(doubled.dataSync().size(), 0u);
  empty.dispose();
  doubled.dispose();
}

}  // namespace
}  // namespace tfjs
