// Int8 quantized inference tests (DESIGN.md "Quantized execution").
//
// The contract under test: the scalar reference oracle (cpu backend) and the
// SIMD native kernels produce *bitwise identical* results — both quantize
// activations per GEMM row with the same math, accumulate in i32 (exact, in
// any order), and share the scalar epilogue — so parity is EXPECT_EQ on
// floats, not EXPECT_NEAR. Edge cases: code saturation at +/-127, dead
// channels (scale 0), odd K not divisible by the SIMD panel width, the i32
// accumulator overflow guard on huge K, and the NaN-activation fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "backends/common/quant_math.h"
#include "core/engine.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;

/// Deterministic values in [-1, 1] (LCG; independent of libc rand).
std::vector<float> randomData(std::size_t n, std::uint32_t seed) {
  std::vector<float> v(n);
  std::uint32_t s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    v[i] = static_cast<float>(s >> 8) / static_cast<float>(1u << 24) * 2.f -
           1.f;
  }
  return v;
}

/// Bitwise equality (distinguishes NaN payloads and -0 from +0 equality
/// classes the way the determinism guarantee means it).
void expectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(0,
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

class QuantTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }
};

// ------------------------------------------------------------ quantize ops

TEST_F(QuantTest, QuantizePerChannelRoundTrip) {
  tidyVoid([] {
    const auto wv = randomData(7 * 5, 11);
    Tensor w = o::tensor(wv, Shape{7, 5});
    Tensor q = o::quantizePerChannel(w);
    EXPECT_EQ(q.dtype(), DType::i8);
    ASSERT_NE(q.quantParams(), nullptr);
    const QuantParams& qp = *q.quantParams();
    EXPECT_EQ(qp.axis, 1);
    ASSERT_EQ(qp.channels(), 5u);
    EXPECT_TRUE(qp.symmetric());

    const auto codes = q.dataSync();
    for (float c : codes) {
      EXPECT_GE(c, -127.f);
      EXPECT_LE(c, 127.f);
      EXPECT_EQ(c, std::nearbyint(c)) << "codes must be integer-valued";
    }
    // Round-trip error is at most half a step per channel.
    const auto back = o::dequantize(q).dataSync();
    for (std::size_t i = 0; i < wv.size(); ++i) {
      EXPECT_NEAR(back[i], wv[i], qp.scale[i % 5] * 0.5f + 1e-7f);
    }
  });
}

TEST_F(QuantTest, ZeroPointSaturationAt127) {
  tidyVoid([] {
    // With zero point 50, codes 150 / -150 must clamp to the symmetric
    // +/-127 range, never wrap.
    Tensor x = o::tensor({100.f, -200.f, 0.4f, -0.4f}, Shape{4});
    Tensor q = o::quantize(x, /*scale=*/1.f, /*zeroPoint=*/50);
    test::expectValues(q, {127.f, -127.f, 50.f, 50.f}, 0.f);
    // Dequantization sees the saturated codes.
    test::expectValues(o::dequantize(q), {77.f, -177.f, 0.f, 0.f}, 0.f);
  });
}

TEST_F(QuantTest, DeadChannelScaleZeroProducesExactZeros) {
  tidyVoid([] {
    // Column 0 is identically zero: its scale must be 0 (not a division
    // hazard) and every output in that column exactly 0.
    Tensor w = o::tensor({0.f, 1.f, 0.f, -2.f, 0.f, 0.5f}, Shape{3, 2});
    Tensor q = o::quantizePerChannel(w);
    EXPECT_EQ(q.quantParams()->scale[0], 0.f);
    EXPECT_GT(q.quantParams()->scale[1], 0.f);

    Tensor a = o::tensor(randomData(4 * 3, 3), Shape{4, 3});
    const auto y = o::quantizedMatMul(a, q, Tensor{}).dataSync();
    for (std::size_t i = 0; i < y.size(); i += 2) {
      EXPECT_EQ(y[i], 0.f) << "dead channel must dequantize to exactly 0";
    }
  });
}

// ------------------------------------------------------- ref<->native parity

/// Runs f32-out and requantized-i8-out quantizedMatMul on the active
/// backend; returns {f32 values, i8 codes}.
std::pair<std::vector<float>, std::vector<float>> matMulOn(
    const char* backend, int m, int k, int n, FusedActivation act) {
  setBackend(backend);
  std::pair<std::vector<float>, std::vector<float>> out;
  tidyVoid([&] {
    Tensor a = o::tensor(randomData(static_cast<std::size_t>(m) * k, 5),
                         Shape{m, k});
    Tensor w = o::tensor(randomData(static_cast<std::size_t>(k) * n, 7),
                         Shape{k, n});
    Tensor bias = o::tensor(randomData(static_cast<std::size_t>(n), 9),
                            Shape{n});
    Tensor q = o::quantizePerChannel(w);
    out.first = o::quantizedMatMul(a, q, bias, act).dataSync();
    const OutQuant oq{0.05f, 3};
    Tensor y8 = o::quantizedMatMul(a, q, bias, act, &oq);
    EXPECT_EQ(y8.dtype(), DType::i8);
    out.second = y8.dataSync();
  });
  return out;
}

TEST_F(QuantTest, RefNativeMatMulParityOddK) {
  // K values straddle the SIMD panel widths (VNNI packs K in 4s, AVX2 in
  // 2s, column panels 16/8 wide): 1, primes, and one just past a multiple.
  for (int k : {1, 13, 17, 67}) {
    const auto ref = matMulOn("cpu", 3, k, 21, FusedActivation::kRelu);
    const auto nat = matMulOn("native", 3, k, 21, FusedActivation::kRelu);
    expectBitwiseEqual(ref.first, nat.first);
    expectBitwiseEqual(ref.second, nat.second);
  }
}

TEST_F(QuantTest, RefNativeMatMulParityWiderThanPanels) {
  const auto ref = matMulOn("cpu", 5, 40, 50, FusedActivation::kNone);
  const auto nat = matMulOn("native", 5, 40, 50, FusedActivation::kNone);
  expectBitwiseEqual(ref.first, nat.first);
  expectBitwiseEqual(ref.second, nat.second);
}

/// Conv analogue of matMulOn: NHWC input against a quantized HWIO filter.
std::pair<std::vector<float>, std::vector<float>> convOn(
    const char* backend, int size, int inC, int outC, int kernel, int stride,
    PadMode pad) {
  setBackend(backend);
  std::pair<std::vector<float>, std::vector<float>> out;
  tidyVoid([&] {
    const std::size_t xN = static_cast<std::size_t>(size) * size * inC;
    const std::size_t fN =
        static_cast<std::size_t>(kernel) * kernel * inC * outC;
    Tensor x = o::tensor(randomData(xN, 21), Shape{1, size, size, inC});
    Tensor f = o::tensor(randomData(fN, 23),
                         Shape{kernel, kernel, inC, outC});
    Tensor bias = o::tensor(randomData(static_cast<std::size_t>(outC), 25),
                            Shape{outC});
    Tensor q = o::quantizePerChannel(f);
    out.first = o::quantizedConv2d(x, q, bias, FusedActivation::kRelu6,
                                   stride, stride, pad)
                    .dataSync();
    const OutQuant oq{0.04f, -5};
    Tensor y8 = o::quantizedConv2d(x, q, bias, FusedActivation::kRelu6,
                                   stride, stride, pad, 1, 1, &oq);
    EXPECT_EQ(y8.dtype(), DType::i8);
    out.second = y8.dataSync();
  });
  return out;
}

TEST_F(QuantTest, RefNativeConvParity3x3Strided) {
  // 3x3 stride-2 SAME: zero padding must map exactly onto the row zero
  // point; 9x9 spatial does not divide the parallel chunking evenly.
  const auto ref = convOn("cpu", 9, 6, 8, 3, 2, PadMode::kSame);
  const auto nat = convOn("native", 9, 6, 8, 3, 2, PadMode::kSame);
  expectBitwiseEqual(ref.first, nat.first);
  expectBitwiseEqual(ref.second, nat.second);
}

TEST_F(QuantTest, RefNativeConvParity1x1) {
  // 1x1 stride-1 exercises the native backend's im2col-free fast path.
  const auto ref = convOn("cpu", 7, 5, 19, 1, 1, PadMode::kValid);
  const auto nat = convOn("native", 7, 5, 19, 1, 1, PadMode::kValid);
  expectBitwiseEqual(ref.first, nat.first);
  expectBitwiseEqual(ref.second, nat.second);
}

// ------------------------------------------------------------ approximation

TEST_F(QuantTest, QuantizedMatMulTracksF32) {
  tidyVoid([] {
    const int m = 4, k = 64, n = 12;
    Tensor a = o::tensor(randomData(static_cast<std::size_t>(m) * k, 31),
                         Shape{m, k});
    Tensor w = o::tensor(randomData(static_cast<std::size_t>(k) * n, 33),
                         Shape{k, n});
    Tensor q = o::quantizePerChannel(w);
    Tensor yq = o::quantizedMatMul(a, q, Tensor{});
    Tensor yf = o::matMul(a, w);
    // Error budget: one half-step of activation plus weight quantization
    // noise per accumulated term; random errors mostly cancel, the bound
    // does not assume they do.
    test::expectClose(yq, yf, 0.01f * static_cast<float>(k));
  });
}

// ------------------------------------------------------------ fallback paths

TEST_F(QuantTest, OverflowGuardHugeKMatchesDequantizedPath) {
  tidyVoid([] {
    // k beyond kMaxAccumK (255*127 worst-case products no longer fit i32)
    // must take the dequantized f32 fallback — bitwise equal to computing
    // it explicitly.
    const int k = backends::qmath::kMaxAccumK + 1;
    Tensor a = o::tensor(randomData(static_cast<std::size_t>(k), 41),
                         Shape{1, k});
    Tensor w = o::tensor(randomData(static_cast<std::size_t>(k) * 3, 43),
                         Shape{k, 3});
    Tensor q = o::quantizePerChannel(w);
    Tensor bias = o::tensor({0.1f, -0.2f, 0.3f}, Shape{3});
    const auto viaQuant =
        o::quantizedMatMul(a, q, bias, FusedActivation::kRelu).dataSync();
    Tensor wDeq = o::dequantize(q);
    const auto viaF32 =
        o::fusedMatMul(a, wDeq, bias, FusedActivation::kRelu).dataSync();
    expectBitwiseEqual(viaQuant, viaF32);
  });
}

TEST_F(QuantTest, NaNActivationFallsBackToF32) {
  tidyVoid([] {
    auto av = randomData(2 * 8, 51);
    av[5] = std::nanf("");
    Tensor a = o::tensor(av, Shape{2, 8});
    Tensor w = o::tensor(randomData(8 * 4, 53), Shape{8, 4});
    Tensor q = o::quantizePerChannel(w);
    const auto viaQuant = o::quantizedMatMul(a, q, Tensor{}).dataSync();
    Tensor wDeq = o::dequantize(q);
    const auto viaF32 = o::matMul(a, wDeq).dataSync();
    expectBitwiseEqual(viaQuant, viaF32);
    // Row 0 contains the NaN: it must propagate, not quantize to garbage.
    EXPECT_TRUE(std::isnan(viaQuant[0]));
    // Row 1 is clean and still correct.
    EXPECT_FALSE(std::isnan(viaQuant[4]));
  });
}

// --------------------------------------------------------------- routing

TEST_F(QuantTest, MatMulRoutesInt8Weights) {
  tidyVoid([] {
    Tensor a = o::tensor(randomData(3 * 16, 61), Shape{3, 16});
    Tensor w = o::tensor(randomData(16 * 5, 63), Shape{16, 5});
    Tensor q = o::quantizePerChannel(w);
    // matMul with an int8 weight routes through quantizedMatMul.
    const auto routed = o::matMul(a, q).dataSync();
    const auto direct = o::quantizedMatMul(a, q, Tensor{}).dataSync();
    expectBitwiseEqual(routed, direct);
  });
}

}  // namespace
}  // namespace tfjs
