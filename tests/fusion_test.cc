// Fused kernel parity: fusedMatMul / fusedConv2d must be *bit-identical*
// to the unfused matMul -> add -> activation chain on every CPU backend
// (the epilogue runs after the full accumulation using the same scalar
// formulas), including the gradients (activation masks are computed from
// the fused output). The webgl backend has no fused kernels; there the ops
// compose from the public ops, which is trivially identical — covered by
// the WebglComposition tests at the bottom.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "autodiff/tape.h"
#include "backends/common/ref_backend.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "layers/core_layers.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;

const FusedActivation kAllActs[] = {
    FusedActivation::kNone, FusedActivation::kRelu, FusedActivation::kRelu6,
    FusedActivation::kSigmoid};

/// Registers the reference backend under its own name so the parity suite
/// can run on it directly (test_main registers cpu/native/webgl only).
void ensureRefRegistered() {
  static const bool once = [] {
    Engine::get().registerBackend(
        "ref", [] { return std::make_unique<backends::RefBackend>(); },
        /*priority=*/0);
    return true;
  }();
  (void)once;
}

void expectBitwiseEqual(const Tensor& a, const Tensor& b) {
  const auto av = a.dataSync();
  const auto bv = b.dataSync();
  ASSERT_EQ(av.size(), bv.size());
  if (std::memcmp(av.data(), bv.data(), av.size() * sizeof(float)) == 0) {
    return;
  }
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(av[i], bv[i]) << "bitwise mismatch at flat index " << i;
  }
}

/// The manual unfused chain the fused kernels must reproduce exactly.
Tensor unfusedChain(Tensor y, const Tensor& bias, FusedActivation act) {
  if (bias.defined()) {
    Tensor withBias = o::add(y, bias);
    y.dispose();
    y = withBias;
  }
  Tensor out;
  switch (act) {
    case FusedActivation::kNone:
      return y;
    case FusedActivation::kRelu:
      out = o::relu(y);
      break;
    case FusedActivation::kRelu6:
      out = o::relu6(y);
      break;
    case FusedActivation::kSigmoid:
      out = o::sigmoid(y);
      break;
  }
  y.dispose();
  return out;
}

class FusionTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ensureRefRegistered();
    setBackend(GetParam());
  }
};

TEST_P(FusionTest, FusedMatMulBitwiseParity) {
  for (const bool tA : {false, true}) {
    for (const bool tB : {false, true}) {
      Tensor a = o::randomNormal(tA ? Shape{9, 7} : Shape{7, 9}, 0, 1, 11);
      Tensor b = o::randomNormal(tB ? Shape{5, 9} : Shape{9, 5}, 0, 1, 12);
      Tensor bias = o::randomNormal(Shape{5}, 0, 1, 13);
      for (const bool useBias : {false, true}) {
        for (const FusedActivation act : kAllActs) {
          const Tensor biasArg = useBias ? bias : Tensor();
          Tensor fused = o::fusedMatMul(a, b, biasArg, act, tA, tB);
          Tensor unfused = unfusedChain(o::matMul(a, b, tA, tB), biasArg, act);
          expectBitwiseEqual(fused, unfused);
          fused.dispose();
          unfused.dispose();
        }
      }
      a.dispose();
      b.dispose();
      bias.dispose();
    }
  }
}

TEST_P(FusionTest, FusedMatMulBatchedBroadcast) {
  Tensor a = o::randomNormal(Shape{3, 4, 6}, 0, 1, 14);
  Tensor b = o::randomNormal(Shape{1, 6, 5}, 0, 1, 15);
  Tensor bias = o::randomNormal(Shape{5}, 0, 1, 16);
  for (const FusedActivation act : kAllActs) {
    Tensor fused = o::fusedMatMul(a, b, bias, act);
    Tensor unfused = unfusedChain(o::matMul(a, b), bias, act);
    expectBitwiseEqual(fused, unfused);
    fused.dispose();
    unfused.dispose();
  }
  a.dispose();
  b.dispose();
  bias.dispose();
}

TEST_P(FusionTest, FusedConv2dBitwiseParity) {
  // 16 output rows stress the native backend's chunked im2col path; the
  // second config takes its 1x1 GEMM fast path.
  struct Config {
    Shape x, f;
    int stride;
    PadMode pad;
  };
  const Config configs[] = {
      {Shape{2, 16, 8, 3}, Shape{3, 3, 3, 4}, 1, PadMode::kSame},
      {Shape{2, 9, 7, 5}, Shape{1, 1, 5, 6}, 1, PadMode::kValid},
      {Shape{1, 13, 11, 2}, Shape{3, 5, 2, 7}, 2, PadMode::kSame},
  };
  for (const auto& cfg : configs) {
    Tensor x = o::randomNormal(cfg.x, 0, 1, 17);
    Tensor f = o::randomNormal(cfg.f, 0, 1, 18);
    Tensor bias = o::randomNormal(Shape{cfg.f[3]}, 0, 1, 19);
    for (const bool useBias : {false, true}) {
      for (const FusedActivation act : kAllActs) {
        const Tensor biasArg = useBias ? bias : Tensor();
        Tensor fused = o::fusedConv2d(x, f, biasArg, act, cfg.stride,
                                      cfg.stride, cfg.pad);
        Tensor unfused = unfusedChain(
            o::conv2d(x, f, cfg.stride, cfg.stride, cfg.pad), biasArg, act);
        expectBitwiseEqual(fused, unfused);
        fused.dispose();
        unfused.dispose();
      }
    }
    x.dispose();
    f.dispose();
    bias.dispose();
  }
}

TEST_P(FusionTest, FusedMatMulGradientsBitwiseParity) {
  Tensor a = o::randomNormal(Shape{6, 8}, 0, 1, 20);
  Tensor b = o::randomNormal(Shape{8, 4}, 0, 1, 21);
  Tensor bias = o::randomNormal(Shape{4}, 0, 1, 22);
  const Tensor xs[] = {a, b, bias};
  for (const FusedActivation act : kAllActs) {
    auto [fv, fg] = autodiff::valueAndGrads(
        [&] {
          Tensor y = o::fusedMatMul(a, b, bias, act);
          Tensor loss = o::sum(y);
          y.dispose();
          return loss;
        },
        xs);
    auto [uv, ug] = autodiff::valueAndGrads(
        [&] {
          Tensor y = unfusedChain(o::matMul(a, b), bias, act);
          Tensor loss = o::sum(y);
          y.dispose();
          return loss;
        },
        xs);
    expectBitwiseEqual(fv, uv);
    ASSERT_EQ(fg.size(), ug.size());
    for (std::size_t i = 0; i < fg.size(); ++i) {
      expectBitwiseEqual(fg[i], ug[i]);
      fg[i].dispose();
      ug[i].dispose();
    }
    fv.dispose();
    uv.dispose();
  }
  a.dispose();
  b.dispose();
  bias.dispose();
}

TEST_P(FusionTest, FusedConv2dGradientsBitwiseParity) {
  Tensor x = o::randomNormal(Shape{1, 6, 6, 2}, 0, 1, 23);
  Tensor f = o::randomNormal(Shape{3, 3, 2, 3}, 0, 1, 24);
  Tensor bias = o::randomNormal(Shape{3}, 0, 1, 25);
  const Tensor xs[] = {x, f, bias};
  for (const FusedActivation act : kAllActs) {
    auto [fv, fg] = autodiff::valueAndGrads(
        [&] {
          Tensor y = o::fusedConv2d(x, f, bias, act, 1, 1, PadMode::kSame);
          Tensor loss = o::sum(y);
          y.dispose();
          return loss;
        },
        xs);
    auto [uv, ug] = autodiff::valueAndGrads(
        [&] {
          Tensor y =
              unfusedChain(o::conv2d(x, f, 1, 1, PadMode::kSame), bias, act);
          Tensor loss = o::sum(y);
          y.dispose();
          return loss;
        },
        xs);
    expectBitwiseEqual(fv, uv);
    ASSERT_EQ(fg.size(), ug.size());
    for (std::size_t i = 0; i < fg.size(); ++i) {
      expectBitwiseEqual(fg[i], ug[i]);
      fg[i].dispose();
      ug[i].dispose();
    }
    fv.dispose();
    uv.dispose();
  }
  x.dispose();
  f.dispose();
  bias.dispose();
}

TEST_P(FusionTest, DenseLayerRoutesThroughFusedPath) {
  auto& fusions = metrics::Registry::get().counter("fusion.matmul");
  const auto before = fusions.value();
  layers::DenseOptions opts;
  opts.units = 5;
  opts.activation = "relu";
  layers::Dense dense(opts);
  Tensor x = o::randomNormal(Shape{4, 7}, 0, 1, 26);
  Tensor y = dense.apply(x);
  EXPECT_EQ(fusions.value(), before + 1)
      << "Dense with a fusible activation should hit the fused kernel";
  // Manual composition from the layer's weights, in weights() order
  // (kernel, bias).
  const auto& weights = dense.weights();
  ASSERT_EQ(weights.size(), 2u);
  Tensor manual = unfusedChain(o::matMul(x, weights[0].value()),
                               weights[1].value(), FusedActivation::kRelu);
  expectBitwiseEqual(y, manual);
  y.dispose();
  manual.dispose();
  x.dispose();
}

TEST_P(FusionTest, TapedInputRefusesInPlaceButGradsCorrect) {
  // Under a tape, an intermediate is tape-referenced: the move-consuming
  // overload must refuse the in-place takeover (the pullback needs the
  // pre-activation values) and the recorded gradient must stay correct.
  Tensor x = o::tensor({-2.f, -0.5f, 0.5f, 2.f}, Shape{4});
  const Tensor xs[] = {x};
  auto [v, grads] = autodiff::valueAndGrads(
      [&] {
        Tensor pre = o::mulScalar(x, 3.f);
        const DataId preId = pre.dataId();
        Tensor y = o::relu(std::move(pre));
        EXPECT_NE(y.dataId(), preId)
            << "taped tensor must not be overwritten in place";
        Tensor loss = o::sum(y);
        y.dispose();
        return loss;
      },
      xs);
  // d/dx sum(relu(3x)) = 3 * [3x > 0]
  test::expectValues(grads[0], {0.f, 0.f, 3.f, 3.f});
  v.dispose();
  grads[0].dispose();
  x.dispose();
}

INSTANTIATE_TEST_SUITE_P(AllCpuBackends, FusionTest,
                         ::testing::Values("ref", "cpu", "native"));

// The webgl backend reports supportsFusedKernels() == false: the fused ops
// compose from public ops (keeping GPU-queue lifetimes correct) and the
// fusion counter must not move.
TEST(FusionWebglTest, ComposesWhenBackendHasNoFusedKernels) {
  setBackend("webgl");
  auto& fusions = metrics::Registry::get().counter("fusion.matmul");
  const auto before = fusions.value();
  Tensor a = o::randomNormal(Shape{4, 6}, 0, 1, 27);
  Tensor b = o::randomNormal(Shape{6, 3}, 0, 1, 28);
  Tensor bias = o::randomNormal(Shape{3}, 0, 1, 29);
  Tensor fused = o::fusedMatMul(a, b, bias, FusedActivation::kRelu);
  Tensor unfused = unfusedChain(o::matMul(a, b), bias, FusedActivation::kRelu);
  expectBitwiseEqual(fused, unfused);
  EXPECT_EQ(fusions.value(), before);
  fused.dispose();
  unfused.dispose();
  a.dispose();
  b.dispose();
  bias.dispose();
}

}  // namespace
}  // namespace tfjs
