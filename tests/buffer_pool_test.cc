// BufferPool tests: bucket round-trips, the byte-cap LRU eviction, the
// TFJS_BUFFER_POOL=0 bypass, thread-safety of concurrent acquire/release,
// and the engine-level integration — dispose (including under tidy())
// parks storage in the pool, engine.memory() reports it as pooledBytes,
// and move-consuming ops take over their input's buffer in place.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "core/buffer_pool.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
using core::BufferPool;

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& pool = BufferPool::get();
    pool.setEnabled(true);
    pool.clear();
    pool.resetStats();
  }
  void TearDown() override {
    auto& pool = BufferPool::get();
    pool.setEnabled(true);
    pool.setCapBytes(std::size_t{256} << 20);
    pool.clear();
  }
};

// ------------------------------------------------------------- direct pool

TEST_F(BufferPoolTest, MissThenHitRoundTrip) {
  auto& pool = BufferPool::get();
  std::vector<float> v = pool.acquire(100);
  EXPECT_EQ(v.size(), 100u);
  // Capacity is rounded to the bucket's power of two, so the buffer can
  // serve any request that maps to the same bucket.
  EXPECT_EQ(v.capacity(), 128u);
  const float* data = v.data();
  pool.release(std::move(v));
  EXPECT_GT(pool.pooledBytes(), 0u);

  // Any size in (64, 128] maps to the same bucket and reuses the storage.
  std::vector<float> w = pool.acquire(65);
  EXPECT_EQ(w.data(), data);
  EXPECT_EQ(w.size(), 65u);
  pool.release(std::move(w));

  const auto s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.returns, 2u);
  EXPECT_EQ(s.bypasses, 0u);
}

TEST_F(BufferPoolTest, DifferentBucketDoesNotReuse) {
  auto& pool = BufferPool::get();
  std::vector<float> small = pool.acquire(100);  // bucket 7 (128)
  pool.release(std::move(small));
  std::vector<float> large = pool.acquire(1000);  // bucket 10 (1024)
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 2u);
  pool.release(std::move(large));
}

TEST_F(BufferPoolTest, ByteCapEvictsLeastRecentlyReturned) {
  auto& pool = BufferPool::get();
  // Three *distinct* 1024-float buffers = 12 KiB parked: hold all three
  // live before releasing, otherwise the pool would round-trip one buffer.
  std::vector<std::vector<float>> live;
  std::vector<const float*> ptrs;
  for (int i = 0; i < 3; ++i) {
    live.push_back(pool.acquire(1024));
    ptrs.push_back(live.back().data());
  }
  for (auto& v : live) pool.release(std::move(v));
  EXPECT_EQ(pool.pooledBytes(), 3 * 1024 * sizeof(float));
  // Cap to two buffers' worth: the oldest return must be evicted.
  pool.setCapBytes(2 * 1024 * sizeof(float));
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_LE(pool.pooledBytes(), pool.capBytes());
  // MRU reuse: the most recently returned buffer comes back first.
  std::vector<float> v = pool.acquire(1024);
  EXPECT_EQ(v.data(), ptrs[2]);
  pool.release(std::move(v));
}

TEST_F(BufferPoolTest, DisabledPoolBypassesAndFrees) {
  auto& pool = BufferPool::get();
  std::vector<float> parked = pool.acquire(256);
  pool.release(std::move(parked));
  ASSERT_GT(pool.pooledBytes(), 0u);

  pool.setEnabled(false);  // also drops everything parked
  EXPECT_EQ(pool.pooledBytes(), 0u);
  std::vector<float> v = pool.acquire(256);
  EXPECT_EQ(v.size(), 256u);
  pool.release(std::move(v));
  EXPECT_EQ(pool.pooledBytes(), 0u);  // release frees instead of parking
  const auto s = pool.stats();
  EXPECT_EQ(s.bypasses, 1u);
  pool.setEnabled(true);
}

TEST_F(BufferPoolTest, InitFromEnvTogglesAndSizes) {
  auto& pool = BufferPool::get();
  ::setenv("TFJS_BUFFER_POOL", "0", 1);
  pool.initFromEnv();
  EXPECT_FALSE(pool.enabled());

  ::setenv("TFJS_BUFFER_POOL", "1", 1);
  ::setenv("TFJS_BUFFER_POOL_MB", "1", 1);
  pool.initFromEnv();
  EXPECT_TRUE(pool.enabled());
  EXPECT_EQ(pool.capBytes(), std::size_t{1} << 20);

  ::unsetenv("TFJS_BUFFER_POOL");
  ::unsetenv("TFJS_BUFFER_POOL_MB");
  pool.initFromEnv();
  EXPECT_TRUE(pool.enabled());
  EXPECT_EQ(pool.capBytes(), std::size_t{256} << 20);
}

TEST_F(BufferPoolTest, ConcurrentAcquireRelease) {
  // Exercised under TSan by tools/run_tsan.sh: workers release scratch
  // buffers from pool threads while others acquire.
  auto& pool = BufferPool::get();
  constexpr int kThreads = 4, kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        std::vector<float> v = pool.acquire(64 + 64 * t);
        v[0] = static_cast<float>(i);
        pool.release(std::move(v));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.hits + s.misses + s.bypasses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(pool.pooledBytes(), pool.capBytes());
}

// --------------------------------------------------------- engine coupling

TEST_F(BufferPoolTest, DisposeUnderTidyReturnsToPool) {
  setBackend("cpu");
  auto& pool = BufferPool::get();
  pool.clear();
  pool.resetStats();
  const auto before = Engine::get().memory();
  Tensor kept = Engine::get().tidy([] {
    Tensor a = o::fill(Shape{64, 64}, 1.f);
    Tensor b = o::add(a, a);    // intermediate, disposed by tidy
    Tensor c = o::mul(b, b);    // intermediate, disposed by tidy
    return o::sum(c);
  });
  // tidy's dispose of the intermediates parked their buffers.
  EXPECT_GT(pool.stats().returns, 0u);
  EXPECT_GT(pool.pooledBytes(), 0u);
  // Pooled bytes are reported separately from live bytes.
  const auto after = Engine::get().memory();
  EXPECT_EQ(after.pooledBytes, pool.pooledBytes());
  EXPECT_EQ(after.numBytes, before.numBytes + kept.size() * sizeof(float));
  kept.dispose();
}

TEST_F(BufferPoolTest, SteadyStateChainHitsPool) {
  setBackend("cpu");
  auto& pool = BufferPool::get();
  Tensor x = o::fill(Shape{128, 128}, 0.5f);
  // Warm-up allocates; afterwards each op's output reuses the buffer the
  // previous iteration's dispose parked.
  for (int i = 0; i < 3; ++i) {
    Tensor y = o::relu(x);
    y.dispose();
  }
  pool.resetStats();
  for (int i = 0; i < 5; ++i) {
    Tensor y = o::relu(x);
    y.dispose();
  }
  const auto s = pool.stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u) << "steady-state chain should be allocation-free";
  x.dispose();
}

TEST_F(BufferPoolTest, MoveConsumingOpReusesBufferInPlace) {
  setBackend("native");
  auto& inplace = metrics::Registry::get().counter("engine.inplace_reuses");
  const auto reusesBefore = inplace.value();
  Tensor a = o::tensor({-2.f, -1.f, 0.f, 1.f, 2.f, 3.f}, Shape{6});
  const DataId id = a.dataId();
  Tensor y = o::relu(std::move(a));
  EXPECT_EQ(y.dataId(), id) << "sole owner: relu should write in place";
  EXPECT_EQ(inplace.value(), reusesBefore + 1);
  test::expectValues(y, {0.f, 0.f, 0.f, 1.f, 2.f, 3.f});

  // Binary in-place with a broadcast (scalar) second operand.
  const DataId yId = y.dataId();
  Tensor s = o::scalar(10.f);
  Tensor z = o::add(std::move(y), s);
  EXPECT_EQ(z.dataId(), yId);
  test::expectValues(z, {10.f, 10.f, 10.f, 11.f, 12.f, 13.f});
  z.dispose();
  s.dispose();
}

TEST_F(BufferPoolTest, SharedTensorRefusesInPlace) {
  setBackend("native");
  Tensor a = o::tensor({1.f, -2.f, 3.f}, Shape{3});
  Tensor alias = a.clone();  // second reference to the same container
  const DataId id = a.dataId();
  Tensor y = o::relu(std::move(a));
  EXPECT_NE(y.dataId(), id) << "shared container must not be overwritten";
  test::expectValues(alias, {1.f, -2.f, 3.f});
  test::expectValues(y, {1.f, 0.f, 3.f});
  y.dispose();
  alias.dispose();
}

TEST_F(BufferPoolTest, KeptTensorRefusesInPlace) {
  setBackend("native");
  Tensor a = o::tensor({-1.f, 2.f}, Shape{2});
  a.keep();
  const DataId id = a.dataId();
  Tensor y = o::relu(std::move(a));
  EXPECT_NE(y.dataId(), id);
  test::expectValues(y, {0.f, 2.f});
  y.dispose();
}

TEST_F(BufferPoolTest, BroadcastGrowthRefusesBinaryInPlace) {
  setBackend("native");
  // First operand [1,3] broadcasts up to [2,3]: its buffer cannot hold the
  // output, so the move overload must fall back to allocating.
  Tensor a = o::tensor({1.f, 2.f, 3.f}, Shape{1, 3});
  Tensor b = o::fill(Shape{2, 3}, 10.f);
  const DataId id = a.dataId();
  Tensor y = o::add(std::move(a), b);
  EXPECT_NE(y.dataId(), id);
  test::expectValues(y, {11.f, 12.f, 13.f, 11.f, 12.f, 13.f});
  y.dispose();
  b.dispose();
}

// --------------------------------------------- concurrent-session accounting

TEST_F(BufferPoolTest, ConcurrentDisposeAllocKeepsAccountingConsistent) {
  // Serving runs dispose/alloc from several threads at once (client threads
  // dispose their tensors while the scheduler allocates). Accounting —
  // engine.memory(), the pool counters, and the pooled-bytes gauge — must
  // not drift. Exercised under TSan by tools/run_tsan.sh.
  setBackend("native");
  Engine& engine = Engine::get();
  auto& pool = BufferPool::get();
  const auto before = engine.memory();

  constexpr int kThreads = 4, kIters = 150;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      std::vector<float> host(64, static_cast<float>(t));
      for (int i = 0; i < kIters; ++i) {
        Tensor a = engine.makeTensorFromHost(host, Shape{64});
        Tensor alias = a.clone();  // refcount traffic on the same container
        ASSERT_EQ(a.dataSync()[0], static_cast<float>(t));
        a.dispose();      // alias keeps the storage alive...
        alias.dispose();  // ...and this release parks it in the pool
      }
    });
  }
  for (auto& th : threads) th.join();

  // Everything created was disposed: live tensor/byte counts return to the
  // baseline exactly — no drift from racing decrements.
  const auto after = engine.memory();
  EXPECT_EQ(after.numTensors, before.numTensors);
  EXPECT_EQ(after.numDataBuffers, before.numDataBuffers);
  EXPECT_EQ(after.numBytes, before.numBytes);
  // The pool's own view and the engine's view of parked storage agree.
  EXPECT_EQ(after.pooledBytes, pool.pooledBytes());
  const auto s = pool.stats();
  EXPECT_EQ(s.returns, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(pool.pooledBytes(), pool.capBytes());
}

TEST_F(BufferPoolTest, CrossThreadAliasDisposeReleasesOnce) {
  // M containers, each with aliases spread across threads: exactly one
  // disposer per container observes refcount zero and releases the storage.
  setBackend("native");
  Engine& engine = Engine::get();
  const auto before = engine.memory();

  constexpr int kTensors = 32, kAliases = 4;
  std::vector<std::vector<Tensor>> aliases(kAliases);
  for (int i = 0; i < kTensors; ++i) {
    std::vector<float> host(16, static_cast<float>(i));
    Tensor t = engine.makeTensorFromHost(host, Shape{16});
    for (int a = 1; a < kAliases; ++a) {
      aliases[static_cast<std::size_t>(a)].push_back(t.clone());
    }
    aliases[0].push_back(t);
  }
  ASSERT_EQ(engine.memory().numDataBuffers,
            before.numDataBuffers + kTensors);

  std::vector<std::thread> threads;
  for (int a = 0; a < kAliases; ++a) {
    threads.emplace_back([&aliases, a] {
      for (Tensor& t : aliases[static_cast<std::size_t>(a)]) t.dispose();
    });
  }
  for (auto& th : threads) th.join();

  const auto after = engine.memory();
  EXPECT_EQ(after.numTensors, before.numTensors);
  EXPECT_EQ(after.numDataBuffers, before.numDataBuffers);
  EXPECT_EQ(after.numBytes, before.numBytes);
}

}  // namespace
}  // namespace tfjs
