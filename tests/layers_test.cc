// Layers API tests (paper section 3.2): layer math, building, the Listing-1
// linear-regression workflow, CNN training on separable synthetic data,
// serialization configs, and model-level memory management.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "data/synthetic.h"
#include "layers/conv_layers.h"
#include "layers/core_layers.h"
#include "layers/losses.h"
#include "layers/sequential.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
namespace L = layers;

class LayersTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }
};

TEST_F(LayersTest, DenseForwardKnownWeights) {
  L::DenseOptions opts;
  opts.units = 2;
  opts.name = "dense_known";
  L::Dense dense(opts);
  Tensor x = o::tensor({1, 2, 3}, Shape{1, 3});
  Tensor y = dense.apply(x);
  test::expectShape(y, Shape{1, 2});
  // Set explicit weights and re-check the math.
  Tensor w = o::tensor({1, 0, 0, 1, 1, 1}, Shape{3, 2});
  Tensor b = o::tensor({10, 20}, Shape{2});
  dense.setWeightValues(std::array<Tensor, 2>{w, b});
  Tensor y2 = dense.apply(x);
  test::expectValues(y2, {1 + 3 + 10, 2 + 3 + 20});
  x.dispose();
  y.dispose();
  y2.dispose();
  dense.dispose();
}

TEST_F(LayersTest, DenseActivationAndShapes) {
  L::DenseOptions opts;
  opts.units = 4;
  opts.activation = "relu";
  L::Dense dense(opts);
  Tensor x = o::randomNormal(Shape{5, 3}, 0, 1, 3);
  Tensor y = dense.apply(x);
  test::expectShape(y, Shape{5, 4});
  for (float v : y.dataSync()) EXPECT_GE(v, 0);
  EXPECT_EQ(dense.weights().size(), 2u);
  x.dispose();
  y.dispose();
  dense.dispose();
}

TEST_F(LayersTest, FlattenReshapeActivationDropout) {
  Tensor x = o::tensor({1, 2, 3, 4, 5, 6}, Shape{1, 2, 3, 1});
  L::Flatten flatten;
  test::expectShape(flatten.apply(x), Shape{1, 6});

  L::Reshape reshape(Shape{3, 2});
  test::expectShape(reshape.apply(x), Shape{1, 3, 2});

  L::Activation act("relu");
  Tensor neg = o::tensor({-1, 2}, Shape{1, 2});
  test::expectValues(act.apply(neg), {0, 2});

  L::Dropout drop(0.5f);
  Tensor ones = o::ones(Shape{1, 100});
  Tensor inference = drop.apply(ones, /*training=*/false);
  test::expectClose(inference, ones);
  Tensor training = drop.apply(ones, /*training=*/true);
  int zeros = 0;
  for (float v : training.dataSync()) zeros += v == 0.f;
  EXPECT_GT(zeros, 20);
  for (Tensor t : {x, neg, ones, inference, training}) t.dispose();
}

TEST_F(LayersTest, Conv2DAndPoolingLayers) {
  L::Conv2DOptions c;
  c.filters = 4;
  c.kernelH = c.kernelW = 3;
  c.padding = "same";
  L::Conv2D conv(c);
  Tensor x = o::randomNormal(Shape{2, 8, 8, 3}, 0, 1, 5);
  Tensor y = conv.apply(x);
  test::expectShape(y, Shape{2, 8, 8, 4});
  EXPECT_EQ(conv.computeOutputShape(x.shape()).toString(), "[2,8,8,4]");

  L::MaxPooling2D pool;
  Tensor p = pool.apply(y);
  test::expectShape(p, Shape{2, 4, 4, 4});

  L::GlobalAveragePooling2D gap;
  Tensor g = gap.apply(y);
  test::expectShape(g, Shape{2, 4});

  for (Tensor t : {x, y, p, g}) t.dispose();
  conv.dispose();
}

TEST_F(LayersTest, BatchNormTrainingNormalizesBatch) {
  L::BatchNormalization bn;
  Tensor x = o::tensor({0, 2, 4, 6}, Shape{4, 1});  // mean 3, var 5
  Tensor y = bn.apply(x, /*training=*/true);
  const auto v = y.dataSync();
  float mean = 0;
  for (float f : v) mean += f / 4;
  EXPECT_NEAR(mean, 0, 1e-4f);
  // Moving stats moved toward the batch statistics.
  const auto movingMean = bn.weights()[2].value().dataSync();
  EXPECT_GT(movingMean[0], 0);
  x.dispose();
  y.dispose();
  bn.dispose();
}

TEST_F(LayersTest, Listing1LinearRegression) {
  // The paper's Listing 1: one dense unit, sgd + meanSquaredError, trained
  // on y = 2x - 1; predict(5) ~ 9.
  auto model = sequential("listing1");
  L::DenseOptions d;
  d.units = 1;
  model->add(std::make_shared<L::Dense>(d));
  L::CompileOptions c;
  c.optimizer = "sgd";
  c.learningRate = 0.1f;
  c.loss = "meanSquaredError";
  model->compile(c);

  Tensor xs = o::tensor({1, 2, 3, 4}, Shape{4, 1});
  Tensor ys = o::tensor({1, 3, 5, 7}, Shape{4, 1});
  L::FitOptions fit;
  fit.epochs = 200;
  fit.batchSize = 4;
  L::History h = model->fit(xs, ys, fit);
  EXPECT_LT(h.loss.back(), 1e-3f);
  EXPECT_LT(h.loss.back(), h.loss.front());

  Tensor x = o::tensor({5.f}, Shape{1, 1});
  Tensor pred = model->predict(x);
  EXPECT_NEAR(pred.scalarSync(), 9.0f, 0.2f);
  for (Tensor t : {xs, ys, x, pred}) t.dispose();
  model->dispose();
}

TEST_F(LayersTest, CnnLearnsSyntheticDigits) {
  auto ds = data::makeSyntheticDigits(/*numExamples=*/160, /*size=*/12,
                                      /*numClasses=*/4);
  auto model = sequential("digits_cnn");
  L::Conv2DOptions c1;
  c1.filters = 8;
  c1.kernelH = c1.kernelW = 3;
  c1.activation = "relu";
  c1.padding = "same";
  model->add(std::make_shared<L::Conv2D>(c1));
  model->add(std::make_shared<L::MaxPooling2D>());
  model->add(std::make_shared<L::Flatten>());
  L::DenseOptions d;
  d.units = 4;
  d.activation = "softmax";
  model->add(std::make_shared<L::Dense>(d));

  L::CompileOptions c;
  c.optimizer = "adam";
  c.learningRate = 0.01f;
  c.loss = "categoricalCrossentropy";
  c.metrics = {"accuracy"};
  model->compile(c);

  L::FitOptions fit;
  fit.epochs = 6;
  fit.batchSize = 16;
  L::History h = model->fit(ds.images, ds.labels, fit);
  EXPECT_GT(h.metrics[0].back(), 0.9f)
      << "CNN failed to learn separable synthetic digits";
  EXPECT_LT(h.loss.back(), h.loss.front());

  L::EvalResult eval = model->evaluate(ds.images, ds.labels);
  EXPECT_GT(eval.metrics[0], 0.9f);

  ds.dispose();
  model->dispose();
}

TEST_F(LayersTest, FitWithValidationSplit) {
  auto [xs, ys] = data::makeLinearData(100, 2, -1, 0.05f);
  auto model = sequential();
  L::DenseOptions d;
  d.units = 1;
  model->add(std::make_shared<L::Dense>(d));
  L::CompileOptions c;
  c.learningRate = 0.2f;
  model->compile(c);
  L::FitOptions fit;
  fit.epochs = 20;
  fit.batchSize = 16;
  fit.validationSplit = 0.25f;
  L::History h = model->fit(xs, ys, fit);
  ASSERT_EQ(h.valLoss.size(), 20u);
  EXPECT_LT(h.valLoss.back(), h.valLoss.front());
  xs.dispose();
  ys.dispose();
  model->dispose();
}

TEST_F(LayersTest, FitDoesNotLeakTensors) {
  auto [xs, ys] = data::makeLinearData(32, 1, 0);
  auto model = sequential();
  L::DenseOptions d;
  d.units = 1;
  model->add(std::make_shared<L::Dense>(d));
  model->compile({});
  L::FitOptions fit;
  fit.epochs = 1;
  fit.batchSize = 8;
  model->fit(xs, ys, fit);  // builds weights + optimizer slots
  const auto before = memory();
  model->fit(xs, ys, fit);
  EXPECT_EQ(memory().numTensors, before.numTensors);
  EXPECT_EQ(memory().numBytes, before.numBytes);
  xs.dispose();
  ys.dispose();
  model->dispose();
}

TEST_F(LayersTest, PredictManagesMemory) {
  auto model = sequential();
  L::DenseOptions d;
  d.units = 2;
  model->add(std::make_shared<L::Dense>(d));
  Tensor x = o::randomNormal(Shape{4, 3}, 0, 1, 9);
  Tensor warm = model->predict(x);
  warm.dispose();
  const auto before = memory();
  Tensor y = model->predict(x);
  EXPECT_EQ(memory().numTensors, before.numTensors + 1);
  y.dispose();
  EXPECT_EQ(memory().numTensors, before.numTensors);
  x.dispose();
  model->dispose();
}

TEST_F(LayersTest, UncompiledFitThrows) {
  auto model = sequential();
  L::DenseOptions d;
  d.units = 1;
  model->add(std::make_shared<L::Dense>(d));
  Tensor x = o::ones(Shape{2, 1});
  EXPECT_THROW(model->fit(x, x), InvalidArgumentError);
  x.dispose();
  model->dispose();
}

TEST_F(LayersTest, SummaryAndParamCount) {
  auto model = sequential("summary_model");
  L::DenseOptions d;
  d.units = 4;
  model->add(std::make_shared<L::Dense>(d));
  model->build(Shape{1, 3});
  EXPECT_EQ(model->countParams(), 3u * 4 + 4);
  const std::string s = model->summary();
  EXPECT_NE(s.find("Dense"), std::string::npos);
  EXPECT_NE(s.find("16"), std::string::npos);
  model->dispose();
}

TEST_F(LayersTest, ConfigRoundTrip) {
  auto model = sequential("roundtrip");
  L::Conv2DOptions c1;
  c1.filters = 2;
  c1.kernelH = c1.kernelW = 3;
  c1.padding = "same";
  c1.activation = "relu";
  model->add(std::make_shared<L::Conv2D>(c1));
  model->add(std::make_shared<L::MaxPooling2D>());
  model->add(std::make_shared<L::Flatten>());
  L::DenseOptions d;
  d.units = 3;
  d.activation = "softmax";
  model->add(std::make_shared<L::Dense>(d));

  const io::Json config = model->toConfig();
  auto clone = L::Sequential::fromConfig(config);
  ASSERT_EQ(clone->layers().size(), model->layers().size());
  // Same config serializes identically (deterministic JSON).
  EXPECT_EQ(clone->toConfig().dump(), config.dump());
  // And the clone is runnable.
  Tensor x = o::randomNormal(Shape{1, 8, 8, 1}, 0, 1, 21);
  Tensor y = clone->predict(x);
  test::expectShape(y, Shape{1, 3});
  x.dispose();
  y.dispose();
  model->dispose();
  clone->dispose();
}

TEST_F(LayersTest, LossFunctions) {
  Tensor yTrue = o::tensor({1, 0, 0, 1}, Shape{2, 2});
  Tensor yPred = o::tensor({0.9f, 0.1f, 0.2f, 0.8f}, Shape{2, 2});
  EXPECT_NEAR(L::meanSquaredError(yTrue, yPred).scalarSync(),
              (0.01f + 0.01f + 0.04f + 0.04f) / 4, 1e-5f);
  EXPECT_NEAR(L::meanAbsoluteError(yTrue, yPred).scalarSync(), 0.15f, 1e-5f);
  EXPECT_NEAR(L::categoricalCrossentropy(yTrue, yPred).scalarSync(),
              -(std::log(0.9f) + std::log(0.8f)) / 2, 1e-4f);
  EXPECT_NEAR(L::categoricalAccuracy(yTrue, yPred).scalarSync(), 1.0f, 1e-6f);
  Tensor bad = o::tensor({0.1f, 0.9f, 0.2f, 0.8f}, Shape{2, 2});
  EXPECT_NEAR(L::categoricalAccuracy(yTrue, bad).scalarSync(), 0.5f, 1e-6f);
  for (Tensor t : {yTrue, yPred, bad}) t.dispose();
}

TEST_F(LayersTest, BinaryLossesAndHuber) {
  Tensor yTrue = o::tensor({1, 0}, Shape{2, 1});
  Tensor yPred = o::tensor({0.8f, 0.3f}, Shape{2, 1});
  const float expected =
      -(std::log(0.8f) + std::log(0.7f)) / 2;
  EXPECT_NEAR(L::binaryCrossentropy(yTrue, yPred).scalarSync(), expected,
              1e-4f);
  EXPECT_NEAR(L::binaryAccuracy(yTrue, yPred).scalarSync(), 1.0f, 1e-6f);
  // Huber: small errors quadratic, large linear.
  Tensor t2 = o::tensor({0, 0}, Shape{2, 1});
  Tensor p2 = o::tensor({0.5f, 3}, Shape{2, 1});
  EXPECT_NEAR(L::huberLoss(t2, p2).scalarSync(),
              (0.5f * 0.25f + (0.5f + 2.0f)) / 2, 1e-4f);
  for (Tensor t : {yTrue, yPred, t2, p2}) t.dispose();
}

TEST_F(LayersTest, InitializersStatistics) {
  auto glorot = L::glorotUniformInitializer();
  Tensor w = glorot->init(Shape{100, 100}, 100, 100, 7);
  const float limit = std::sqrt(6.0f / 200);
  for (float v : w.dataSync()) {
    EXPECT_LE(std::fabs(v), limit + 1e-5f);
  }
  auto he = L::heNormalInitializer();
  Tensor h = he->init(Shape{200, 50}, 200, 50, 8);
  float mean = 0;
  for (float v : h.dataSync()) mean += v / 10000;
  EXPECT_NEAR(mean, 0, 0.02f);
  EXPECT_THROW(L::makeInitializer("bogus"), InvalidArgumentError);
  w.dispose();
  h.dispose();
}

}  // namespace
}  // namespace tfjs
