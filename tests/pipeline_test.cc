// Input-pipeline tests (the section 7 "full ML workflow" extension):
// combinator semantics, laziness, memory discipline, and end-to-end training
// from a pipeline.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/pipeline.h"
#include "data/synthetic.h"
#include "layers/core_layers.h"
#include "layers/sequential.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
using data::Example;
using data::Pipeline;

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }

  /// Source 0..n-1 as scalar feature == label.
  data::PipelinePtr counter(int n) {
    return Pipeline::fromGenerator(
        [n](std::size_t i) -> std::optional<Example> {
          if (i >= static_cast<std::size_t>(n)) return std::nullopt;
          Example e;
          e.features = o::scalar(static_cast<float>(i));
          e.label = o::scalar(static_cast<float>(i));
          return e;
        });
  }
};

TEST_F(PipelineTest, GeneratorSourceYieldsAll) {
  auto p = counter(5);
  std::vector<float> seen;
  p->forEach([&](Example e) {
    seen.push_back(e.features.scalarSync());
    e.dispose();
  });
  EXPECT_EQ(seen, (std::vector<float>{0, 1, 2, 3, 4}));
  // Re-iterable: a second pass yields the same stream.
  EXPECT_EQ(p->count(), 5u);
}

TEST_F(PipelineTest, MapTransformsEveryExample) {
  auto doubled = counter(4)->map([](Example e) {
    Example out;
    out.features = o::mulScalar(e.features, 2);
    out.label = e.label.clone();
    e.dispose();
    return out;
  });
  std::vector<float> seen;
  doubled->forEach([&](Example e) {
    seen.push_back(e.features.scalarSync());
    e.dispose();
  });
  EXPECT_EQ(seen, (std::vector<float>{0, 2, 4, 6}));
}

TEST_F(PipelineTest, FilterDropsAndTakeTruncates) {
  auto evens = counter(10)->filter([](const Example& e) {
    return static_cast<int>(e.features.scalarSync()) % 2 == 0;
  });
  EXPECT_EQ(evens->count(), 5u);
  EXPECT_EQ(evens->take(2)->count(), 2u);
  EXPECT_EQ(counter(3)->take(100)->count(), 3u);
}

TEST_F(PipelineTest, RepeatConcatenatesStreams) {
  EXPECT_EQ(counter(3)->repeat(3)->count(), 9u);
  EXPECT_THROW(counter(3)->repeat(0), InvalidArgumentError);
}

TEST_F(PipelineTest, ShuffleIsAPermutation) {
  auto shuffled = counter(20)->shuffle(8, /*seed=*/3);
  std::vector<float> seen;
  shuffled->forEach([&](Example e) {
    seen.push_back(e.features.scalarSync());
    e.dispose();
  });
  ASSERT_EQ(seen.size(), 20u);
  std::vector<float> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 20; ++i) {
    EXPECT_FLOAT_EQ(sorted[static_cast<std::size_t>(i)],
                    static_cast<float>(i));
  }
  EXPECT_NE(seen, sorted) << "shuffle produced the identity order";
}

TEST_F(PipelineTest, BatchStacksWithPartialTail) {
  auto batches = counter(7)->batch(3)->collect();
  ASSERT_EQ(batches.size(), 3u);
  test::expectShape(batches[0].features, Shape{3});
  test::expectShape(batches[2].features, Shape{1});  // partial tail
  test::expectValues(batches[1].features, {3, 4, 5});
  for (auto& b : batches) b.dispose();
}

TEST_F(PipelineTest, FromTensorsSlicesRows) {
  Tensor feats = o::tensor({1, 2, 3, 4, 5, 6}, Shape{3, 2});
  Tensor labels = o::tensor({0, 1, 0}, Shape{3, 1});
  auto p = Pipeline::fromTensors(feats, labels);
  auto all = p->collect();
  ASSERT_EQ(all.size(), 3u);
  test::expectShape(all[0].features, Shape{2});
  test::expectValues(all[1].features, {3, 4});
  test::expectValues(all[2].label, {0});
  for (auto& e : all) e.dispose();
  feats.dispose();
  labels.dispose();
}

TEST_F(PipelineTest, ChainedCombinatorsCompose) {
  // take(evens . doubled, 3) == [0, 4, 8]
  auto p = counter(20)
               ->filter([](const Example& e) {
                 return static_cast<int>(e.features.scalarSync()) % 2 == 0;
               })
               ->map([](Example e) {
                 Example out;
                 out.features = o::mulScalar(e.features, 2);
                 out.label = e.label.clone();
                 e.dispose();
                 return out;
               })
               ->take(3);
  std::vector<float> seen;
  p->forEach([&](Example e) {
    seen.push_back(e.features.scalarSync());
    e.dispose();
  });
  EXPECT_EQ(seen, (std::vector<float>{0, 4, 8}));
}

TEST_F(PipelineTest, NoTensorLeaksWhenConsumerDisposes) {
  auto p = counter(16)->shuffle(4)->batch(4);
  p->count();  // warm-up (keeps nothing)
  const auto before = memory();
  p->forEach([](Example e) { e.dispose(); });
  EXPECT_EQ(memory().numTensors, before.numTensors);
}

TEST_F(PipelineTest, TrainingFromPipelineBatches) {
  // End-to-end: a model trained from pipeline batches learns y = 3x.
  auto src = Pipeline::fromGenerator(
      [](std::size_t i) -> std::optional<Example> {
        if (i >= 64) return std::nullopt;
        const float x = static_cast<float>(i % 16) / 8.0f - 1.0f;
        Example e;
        e.features = o::tensor({x}, Shape{1});
        e.label = o::tensor({3 * x}, Shape{1});
        return e;
      });
  auto model = sequential("pipeline_train");
  layers::DenseOptions d;
  d.units = 1;
  model->add(std::make_shared<layers::Dense>(d));
  model->compile({});
  model->build(Shape{1, 1});  // weights must exist before minimize()
  auto optimizer = autodiff::makeOptimizer("sgd", 0.2f);

  auto batches = src->shuffle(16)->batch(8);
  float lastLoss = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    batches->forEach([&](Example batch) {
      Tensor cost = optimizer->minimize(
          [&] {
            Tensor pred = model->apply(batch.features, true);
            return layers::meanSquaredError(batch.label, pred);
          },
          true, model->trainableWeights());
      lastLoss = cost.scalarSync();
      cost.dispose();
      batch.dispose();
    });
  }
  EXPECT_LT(lastLoss, 0.05f);
  model->dispose();
}

TEST_F(PipelineTest, FitDatasetTrainsModel) {
  // model.fitDataset: the Layers API consuming a pipeline directly.
  auto [xs, ys] = data::makeLinearData(64, -2, 0.5f);
  auto batches = Pipeline::fromTensors(xs, ys)->shuffle(32)->batch(16);
  auto model = sequential("fit_dataset");
  layers::DenseOptions d;
  d.units = 1;
  model->add(std::make_shared<layers::Dense>(d));
  layers::CompileOptions c;
  c.learningRate = 0.3f;
  model->compile(c);
  layers::History h = model->fitDataset(*batches, /*epochs=*/15);
  ASSERT_EQ(h.loss.size(), 15u);
  EXPECT_LT(h.loss.back(), 0.01f);
  EXPECT_LT(h.loss.back(), h.loss.front());
  // The learned weight approximates the generating slope.
  const auto w = model->weights()[0].value().dataSync();
  EXPECT_NEAR(w[0], -2.0f, 0.2f);
  xs.dispose();
  ys.dispose();
  model->dispose();
}

TEST_F(PipelineTest, FitDatasetRequiresCompileAndData) {
  auto model = sequential();
  layers::DenseOptions d;
  d.units = 1;
  model->add(std::make_shared<layers::Dense>(d));
  auto empty = Pipeline::fromGenerator(
      [](std::size_t) -> std::optional<Example> { return std::nullopt; });
  EXPECT_THROW(model->fitDataset(*empty), InvalidArgumentError);
  model->compile({});
  EXPECT_THROW(model->fitDataset(*empty), InvalidArgumentError);
  model->dispose();
}

}  // namespace
}  // namespace tfjs
