// Assertion helpers shared by all test suites.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/tensor.h"

namespace tfjs::test {

/// Expects tensor values to match `expected` element-wise within tol.
inline void expectValues(const Tensor& t, const std::vector<float>& expected,
                         float tol = 1e-5f) {
  const auto vals = t.dataSync();
  ASSERT_EQ(vals.size(), expected.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_NEAR(vals[i], expected[i], tol) << "at flat index " << i;
  }
}

inline void expectShape(const Tensor& t, const Shape& s) {
  EXPECT_EQ(t.shape().toString(), s.toString());
}

/// Expects two tensors to hold the same values within tol.
inline void expectClose(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  const auto av = a.dataSync();
  const auto bv = b.dataSync();
  ASSERT_EQ(av.size(), bv.size());
  for (std::size_t i = 0; i < av.size(); ++i) {
    EXPECT_NEAR(av[i], bv[i], tol) << "at flat index " << i;
  }
}

}  // namespace tfjs::test
