// Property-based test sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//  * cross-backend agreement: every backend must produce the reference
//    backend's results over randomized inputs — the invariant behind the
//    paper's cross-browser testing story;
//  * broadcasting algebra (commutativity, identity, shape laws);
//  * convolution parameter grid vs the reference backend;
//  * gradient-vs-numerical checks over an op grid;
//  * serialization round-trip over quantization modes and shard limits.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "autodiff/tape.h"
#include "backends/common/ref_backend.h"
#include "core/engine.h"
#include "core/util.h"
#include "io/weights.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;

// ---------------------------------------------- cross-backend agreement

using BackendOpParam = std::tuple<const char*, const char*>;  // backend, op

class BackendAgreementTest
    : public ::testing::TestWithParam<BackendOpParam> {};

Tensor applyNamedOp(const std::string& op, const Tensor& a, const Tensor& b) {
  if (op == "add") return o::add(a, b);
  if (op == "sub") return o::sub(a, b);
  if (op == "mul") return o::mul(a, b);
  if (op == "div") return o::div(a, b);
  if (op == "maximum") return o::maximum(a, b);
  if (op == "squaredDifference") return o::squaredDifference(a, b);
  if (op == "sigmoid") return o::sigmoid(a);
  if (op == "tanh") return o::tanh(a);
  if (op == "relu") return o::relu(a);
  if (op == "exp") return o::exp(a);
  if (op == "softmax") return o::softmax(a);
  if (op == "matMul") return o::matMul(a, b);
  if (op == "transpose") return o::transpose(a);
  throw InvalidArgumentError("unknown op " + op);
}

TEST_P(BackendAgreementTest, MatchesNativeBackend) {
  const auto& [backend, op] = GetParam();
  // Reference values computed on native.
  setBackend("native");
  Tensor a = o::randomNormal(Shape{12, 12}, 0, 1, 101);
  // Divisor bounded away from zero for div.
  Tensor b = o::addScalar(o::abs(o::randomNormal(Shape{12, 12}, 0, 1, 102)),
                          0.5f);
  Tensor expected = applyNamedOp(op, a, b);
  const auto expectedVals = expected.dataSync();

  setBackend(backend);
  Tensor got = applyNamedOp(op, a, b);
  const auto gotVals = got.dataSync();
  ASSERT_EQ(gotVals.size(), expectedVals.size());
  for (std::size_t i = 0; i < gotVals.size(); ++i) {
    EXPECT_NEAR(gotVals[i], expectedVals[i], 1e-4f) << op << " at " << i;
  }
  setBackend("native");
  for (Tensor t : {a, b, expected, got}) t.dispose();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackendAgreementTest,
    ::testing::Combine(
        ::testing::Values("cpu", "webgl"),
        ::testing::Values("add", "sub", "mul", "div", "maximum",
                          "squaredDifference", "sigmoid", "tanh", "relu",
                          "exp", "softmax", "matMul", "transpose")),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

// -------------------------------------------------- broadcasting algebra

struct BroadcastCase {
  const char* name;
  Shape a, b;
};

class BroadcastPropertyTest
    : public ::testing::TestWithParam<BroadcastCase> {
 protected:
  void SetUp() override { setBackend("native"); }
};

TEST_P(BroadcastPropertyTest, AddCommutesAndZeroIsIdentity) {
  const auto& p = GetParam();
  Tensor a = o::randomNormal(p.a, 0, 1, 7);
  Tensor b = o::randomNormal(p.b, 0, 1, 8);
  Tensor ab = o::add(a, b);
  Tensor ba = o::add(b, a);
  test::expectClose(ab, ba, 0);
  // The result broadcasts to the documented shape.
  EXPECT_EQ(ab.shape().toString(),
            util::broadcastShapes(p.a, p.b).toString());
  // x + 0 == x under any broadcast.
  Tensor zero = o::zeros(p.b);
  Tensor aPlus0 = o::add(a, zero);
  std::vector<int> coords(static_cast<std::size_t>(aPlus0.rank()));
  const auto av = a.dataSync();
  const auto sv = aPlus0.dataSync();
  for (std::size_t i = 0; i < sv.size(); ++i) {
    util::unravelIndex(i, aPlus0.shape(), coords);
    EXPECT_FLOAT_EQ(
        sv[i], av[util::broadcastIndex(coords, p.a, aPlus0.shape())]);
  }
  for (Tensor t : {a, b, ab, ba, zero, aPlus0}) t.dispose();
}

TEST_P(BroadcastPropertyTest, MulDistributesOverAdd) {
  const auto& p = GetParam();
  Tensor a = o::randomNormal(p.a, 0, 1, 9);
  Tensor b = o::randomNormal(p.b, 0, 1, 10);
  Tensor c = o::randomNormal(p.b, 0, 1, 11);
  Tensor lhs = o::mul(a, o::add(b, c));
  Tensor rhs = o::add(o::mul(a, b), o::mul(a, c));
  test::expectClose(lhs, rhs, 1e-4f);
  for (Tensor t : {a, b, c, lhs, rhs}) t.dispose();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastPropertyTest,
    ::testing::Values(BroadcastCase{"same", Shape{4, 5}, Shape{4, 5}},
                      BroadcastCase{"row", Shape{4, 5}, Shape{5}},
                      BroadcastCase{"col", Shape{4, 5}, Shape{4, 1}},
                      BroadcastCase{"scalar", Shape{3, 2, 4}, Shape{}},
                      BroadcastCase{"midUnit", Shape{2, 1, 3}, Shape{2, 4, 1}},
                      BroadcastCase{"rankUp", Shape{2, 3, 4}, Shape{3, 1}}),
    [](const auto& info) { return info.param.name; });

// --------------------------------------------------- conv parameter grid

// (filterSize, stride, pad, channels, backend)
using ConvParam = std::tuple<int, int, PadMode, int, const char*>;

class ConvGridTest : public ::testing::TestWithParam<ConvParam> {};

TEST_P(ConvGridTest, MatchesReferenceBackend) {
  const auto& [filter, stride, pad, channels, backend] = GetParam();
  setBackend("native");
  Tensor x = o::randomNormal(Shape{2, 9, 9, channels}, 0, 1, 20);
  Tensor f = o::randomNormal(Shape{filter, filter, channels, 3}, 0, 0.5f, 21);
  Tensor expected = o::conv2d(x, f, stride, stride, pad);
  const auto expectedVals = expected.dataSync();

  setBackend(backend);
  Tensor got = o::conv2d(x, f, stride, stride, pad);
  const auto gotVals = got.dataSync();
  ASSERT_EQ(gotVals.size(), expectedVals.size());
  for (std::size_t i = 0; i < gotVals.size(); ++i) {
    EXPECT_NEAR(gotVals[i], expectedVals[i], 1e-3f) << "at " << i;
  }
  setBackend("native");
  for (Tensor t : {x, f, expected, got}) t.dispose();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvGridTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 2),
                       ::testing::Values(PadMode::kValid, PadMode::kSame),
                       ::testing::Values(1, 4),
                       ::testing::Values("cpu", "webgl")),
    [](const auto& info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_" +
             (std::get<2>(info.param) == PadMode::kValid ? "valid" : "same") +
             "_c" + std::to_string(std::get<3>(info.param)) + "_" +
             std::get<4>(info.param);
    });

// --------------------------------------------- gradient-vs-numerical grid

class GradCheckTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { setBackend("native"); }
};

TEST_P(GradCheckTest, AnalyticMatchesNumerical) {
  const std::string op = GetParam();
  auto f = [&op](const Tensor& t) {
    Tensor y;
    if (op == "sigmoid") {
      y = o::sigmoid(t);
    } else if (op == "tanh") {
      y = o::tanh(t);
    } else if (op == "exp") {
      y = o::exp(t);
    } else if (op == "softplus") {
      y = o::softplus(t);
    } else if (op == "square") {
      y = o::square(t);
    } else if (op == "sqrtAbs") {
      y = o::sqrt(o::addScalar(o::abs(t), 1));
    } else if (op == "logistic_loss") {
      y = o::log1p(o::exp(o::neg(t)));
    } else if (op == "swish") {
      y = o::mul(t, o::sigmoid(t));
    } else if (op == "softmaxEntropy") {
      Tensor s = o::softmax(t.reshape(Shape{1, static_cast<int>(t.size())}));
      y = o::neg(o::mul(s, o::log(o::maximum(s, o::scalar(1e-7f)))));
    } else {
      throw InvalidArgumentError("unknown " + op);
    }
    return o::sum(y);
  };
  Tensor x = o::tensor({0.3f, -0.7f, 1.2f, -0.1f, 0.9f}, Shape{5});
  Tensor analytic = autodiff::grad(f, x);

  // Central differences.
  const float eps = 1e-2f;
  const auto xv = x.dataSync();
  const auto gv = analytic.dataSync();
  for (std::size_t i = 0; i < xv.size(); ++i) {
    auto perturbed = xv;
    perturbed[i] += eps;
    Tensor xp = o::tensor(perturbed, x.shape());
    perturbed[i] -= 2 * eps;
    Tensor xm = o::tensor(perturbed, x.shape());
    Tensor yp = f(xp);
    Tensor ym = f(xm);
    const float numeric = (yp.scalarSync() - ym.scalarSync()) / (2 * eps);
    EXPECT_NEAR(gv[i], numeric, 5e-2f) << op << " at " << i;
    for (Tensor t : {xp, xm, yp, ym}) t.dispose();
  }
  x.dispose();
  analytic.dispose();
}

INSTANTIATE_TEST_SUITE_P(Ops, GradCheckTest,
                         ::testing::Values("sigmoid", "tanh", "exp",
                                           "softplus", "square", "sqrtAbs",
                                           "logistic_loss", "swish",
                                           "softmaxEntropy"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------- serialization property sweep

using SerdeParam = std::tuple<io::Quantization, std::size_t>;

class SerdePropertyTest : public ::testing::TestWithParam<SerdeParam> {
 protected:
  void SetUp() override { setBackend("native"); }
};

TEST_P(SerdePropertyTest, RoundTripPreservesValuesWithinQuantError) {
  const auto& [quant, shardLimit] = GetParam();
  Tensor w1 = o::randomUniform(Shape{37, 11}, -3, 3, 30);
  Tensor w2 = o::randomNormal(Shape{129}, 5, 0.1f, 31);
  Tensor w3 = o::tensor({1, 2, 3}, Shape{3}, DType::i32);
  std::vector<std::pair<std::string, Tensor>> named = {
      {"a", w1}, {"b", w2}, {"c", w3}};
  io::WeightsManifest m = io::encodeWeights(named, quant, shardLimit);
  // Shard-size invariant: every shard except the last is exactly full.
  for (std::size_t i = 0; i + 1 < m.shards.size(); ++i) {
    EXPECT_EQ(m.shards[i].size(), shardLimit);
  }
  auto decoded = io::decodeWeights(m);
  ASSERT_EQ(decoded.size(), 3u);
  float tol = 0;
  if (quant == io::Quantization::kUint8) tol = 6.0f / 255 + 1e-5f;
  if (quant == io::Quantization::kUint16) tol = 6.0f / 65535 + 1e-6f;
  test::expectClose(decoded[0].second, w1, tol);
  test::expectClose(decoded[1].second, w2, tol);
  // Integer weights are never quantized.
  test::expectClose(decoded[2].second, w3, 0);
  EXPECT_EQ(decoded[2].second.dtype(), DType::i32);
  for (auto& [n, t] : decoded) t.dispose();
  for (Tensor t : {w1, w2, w3}) t.dispose();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerdePropertyTest,
    ::testing::Combine(::testing::Values(io::Quantization::kNone,
                                         io::Quantization::kUint8,
                                         io::Quantization::kUint16),
                       ::testing::Values(std::size_t{64}, std::size_t{1000},
                                         io::kDefaultShardBytes)),
    [](const auto& info) {
      return std::string(io::quantizationName(std::get<0>(info.param))) +
             "_shard" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- reduction shape sweep

using ReduceParam = std::tuple<int, bool>;  // axis, keepDims

class ReduceShapeTest : public ::testing::TestWithParam<ReduceParam> {
 protected:
  void SetUp() override { setBackend("native"); }
};

TEST_P(ReduceShapeTest, SumMatchesManualAccumulation) {
  const auto& [axis, keepDims] = GetParam();
  const Shape shape{3, 4, 5};
  Tensor x = o::randomNormal(shape, 0, 1, 40);
  const std::array<int, 1> axes{axis};
  Tensor s = o::sum(x, axes, keepDims);
  // reducedShape takes canonical axes (ops normalize negatives first).
  const auto canonical = util::normalizeAxes(axes, 3);
  EXPECT_EQ(s.shape().toString(),
            util::reducedShape(shape, canonical, keepDims).toString());
  // Manual accumulation over the reduced axis.
  const auto xv = x.dataSync();
  const auto sv = s.dataSync();
  const int norm = axis < 0 ? axis + 3 : axis;
  std::vector<int> coords(3);
  std::vector<float> manual(sv.size(), 0.f);
  for (std::size_t i = 0; i < xv.size(); ++i) {
    util::unravelIndex(i, shape, coords);
    std::vector<int> out;
    for (int d = 0; d < 3; ++d) {
      if (d == norm) {
        if (keepDims) out.push_back(0);
        continue;
      }
      out.push_back(coords[static_cast<std::size_t>(d)]);
    }
    manual[util::ravelIndex(out, s.shape())] += xv[i];
  }
  for (std::size_t i = 0; i < sv.size(); ++i) {
    EXPECT_NEAR(sv[i], manual[i], 1e-4f);
  }
  x.dispose();
  s.dispose();
}

INSTANTIATE_TEST_SUITE_P(
    AxesByKeep, ReduceShapeTest,
    ::testing::Combine(::testing::Values(0, 1, 2, -1),
                       ::testing::Bool()),
    [](const auto& info) {
      const int axis = std::get<0>(info.param);
      return std::string("axis") + (axis < 0 ? "neg1" : std::to_string(axis)) +
             (std::get<1>(info.param) ? "_keep" : "_drop");
    });

}  // namespace
}  // namespace tfjs
